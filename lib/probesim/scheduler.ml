type phase = Traceroute | Alias | Prefixscan

type t = {
  pps : float;
  mutable trace : int;
  mutable alias : int;
  mutable pscan : int;
}

let create ~pps = { pps; trace = 0; alias = 0; pscan = 0 }

let note t phase n =
  match phase with
  | Traceroute -> t.trace <- t.trace + n
  | Alias -> t.alias <- t.alias + n
  | Prefixscan -> t.pscan <- t.pscan + n

let count t = function
  | Traceroute -> t.trace
  | Alias -> t.alias
  | Prefixscan -> t.pscan

let total t = t.trace + t.alias + t.pscan
let duration_s t = float_of_int (total t) /. t.pps
let duration_h t = duration_s t /. 3600.0
let pps t = t.pps

let pp ppf t =
  Format.fprintf ppf
    "probes: trace=%d alias=%d prefixscan=%d total=%d (%.1f h at %.0f pps)" t.trace
    t.alias t.pscan (total t) (duration_h t) t.pps
