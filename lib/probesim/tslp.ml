module Gen = Topogen.Gen
module Net = Topogen.Net
module Fwd = Routing.Forwarding

type episode = { peak_start_s : float; peak_end_s : float; extra_ms : float }

type t = {
  engine : Engine.t;
  fwd : Fwd.t;
  episodes : (int, episode) Hashtbl.t;
}

let create engine fwd = { engine; fwd; episodes = Hashtbl.create 16 }

let congest t ~lid ~peak_start_s ~peak_end_s ~extra_ms =
  Hashtbl.replace t.episodes lid { peak_start_s; peak_end_s; extra_ms }

let day_s = 86_400.0

let episode_active ep now =
  let tod = Float.rem now day_s in
  tod >= ep.peak_start_s && tod < ep.peak_end_s

(* Propagation: IGP weight approximates distance; 1 weight unit ~ 1 ms
   round trip, plus a small per-hop forwarding cost. *)
let base_rtt steps =
  List.fold_left
    (fun acc (s : Fwd.step) ->
      let w =
        match s.Fwd.in_link with
        | Some l -> l.Net.weight
        | None -> 0.0
      in
      acc +. w +. 0.05)
    0.0 steps

let queueing t now steps =
  List.fold_left
    (fun acc (s : Fwd.step) ->
      match s.Fwd.in_link with
      | Some l when l.Net.kind <> Net.Internal -> (
        match Hashtbl.find_opt t.episodes l.Net.lid with
        | Some ep when episode_active ep now -> acc +. ep.extra_ms
        | _ -> acc)
      | _ -> acc)
    0.0 steps

let rtt t ~vp ~dst =
  let w = Engine.world t.engine in
  match Engine.ping t.engine ~dst with
  | None -> (
    (* Interfaces that do not answer direct probes may still answer
       TTL-limited probes when they respond to traceroute; model the
       reply gate with one probe at high TTL. *)
    ignore w;
    None)
  | Some _ ->
    let steps = Fwd.path t.fwd ~src_rid:vp.Gen.vp_rid ~dst () in
    let now = Engine.now t.engine in
    Some (base_rtt steps +. queueing t now steps)

type sample = { at_s : float; near_ms : float option; far_ms : float option }

let monitor t ~vp ~near ~far ~interval_s ~samples =
  List.init samples (fun _ ->
      let at_s = Engine.now t.engine in
      let near_ms = rtt t ~vp ~dst:near in
      let far_ms = rtt t ~vp ~dst:far in
      Engine.advance t.engine interval_s;
      { at_s; near_ms; far_ms })

let diagnose samples =
  let diffs =
    List.filter_map
      (fun s ->
        match (s.near_ms, s.far_ms) with
        | Some n, Some f -> Some (f -. n)
        | _ -> None)
      samples
  in
  if List.length diffs < 8 then None
  else
    let sorted = List.sort Float.compare diffs in
    let nth q =
      List.nth sorted
        (min (List.length sorted - 1)
           (int_of_float (q *. float_of_int (List.length sorted))))
    in
    let baseline = nth 0.25 in
    let elevated = nth 0.9 in
    (* A sustained level shift: the top decile sits well above the
       baseline, and enough samples share the elevation. *)
    let shift = elevated -. baseline in
    let n_elevated =
      List.length (List.filter (fun d -> d > baseline +. (shift /. 2.0)) diffs)
    in
    if shift > 5.0 && n_elevated * 6 >= List.length diffs then Some shift else None
