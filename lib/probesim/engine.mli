(** The probing surface of the simulated Internet. This is the only
    interface the inference pipeline may use to interact with the world:
    it issues the probe types scamper issues (Paris traceroute, ICMP
    echo, UDP to unused ports) and receives replies shaped by the
    response pathologies of §4:

    - TTL-expired source selection: inbound interface (common),
      transmit-interface toward the reply destination (third-party
      addresses), or the would-be forwarding interface (virtual routers);
    - echo replies always sourced from the probed address;
    - firewalled edges: the neighbor's border router answers but probes
      never travel deeper (§5.4.2);
    - echo-only edges: no TTL-expired at all, but echo/unreachable
      replies from the border (§5.4.8 step 8.2);
    - fully silent networks (§5.4.8 step 8.1);
    - per-router IP-ID behaviour for alias resolution.

    A simulated clock advances by [1/pps] per probe; drivers can also
    advance it explicitly (Ally repeats its trials at 5-minute spacing). *)

open Netcore
module Net = Topogen.Net
module Gen = Topogen.Gen

type t

(** Deprecated legacy knob, kept only so old drivers keep their exact
    fixed-seed byte stream. The type is opaque and its sole constructor
    carries a deprecation alert: every remaining caller gets a
    compile-time warning pointing at the {!Fault} replacement. *)
type legacy_rate_limit

val rate_limit_p : float -> legacy_rate_limit
[@@ocaml.deprecated
  "uniform reply rate-limiting predates the fault layer; pass \
   ~fault:{(Fault.of_profile w) with Fault.legacy_rl_p = p} (or model \
   real per-router limiting with rl_share/rl_rate token buckets). The \
   RNG stream is identical either way."]

(** [create ?pps ?rate_limit_p ?fault ?cache_cap w fwd] builds the
    probing surface over [w].

    [fault] is the impairment overlay (default:
    [Fault.of_profile w], i.e. whatever [w.params.fault] asks for —
    nothing, for {!Gen.zero_fault}). [rate_limit_p] is {b deprecated}
    (see {!rate_limit_p}): a uniform per-reply drop probability kept
    for compatibility, routed through the fault layer's dedicated
    legacy RNG stream so fixed-seed outputs are byte-identical to the
    historical behaviour. [cache_cap] bounds each generation of the
    forward-path cache (default 30_000; lower it only to exercise
    eviction in tests). *)
val create :
  ?pps:float ->
  ?rate_limit_p:legacy_rate_limit ->
  ?fault:Fault.config ->
  ?cache_cap:int ->
  Gen.world ->
  Routing.Forwarding.t ->
  t

val world : t -> Gen.world
val now : t -> float
val advance : t -> float -> unit
val probe_count : t -> int
val pps : t -> float

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;  (** entries discarded by generation rotation *)
  entries : int;  (** currently cached forward paths (both generations) *)
}

(** Forward-path cache counters. The cache keeps two bounded
    generations and rotates instead of resetting, so the hot working
    set survives collection-long runs. *)
val stats : t -> cache_stats

(** The impairment config this engine runs under (after legacy
    [rate_limit_p] folding) and the drop counters it has accumulated. *)
val fault_config : t -> Fault.config

val fault_stats : t -> Fault.stats

type icmp_kind = Ttl_expired | Echo_reply | Dest_unreach

type reply = { src : Ipv4.t; kind : icmp_kind; ipid : int; responder : int }
(** [responder] is the true router id — ground truth carried for
    validation and debugging only; inference code must not read it. *)

(** [trace_probe ?flow t ~vp ~dst ~ttl] sends one traceroute probe.
    [flow] is the five-tuple stand-in hashed by ECMP (default 0 = the
    Paris-traceroute fixed flow). *)
val trace_probe : ?flow:int -> t -> vp:Gen.vp -> dst:Ipv4.t -> ttl:int -> reply option

type hop = { ttl : int; reply : reply option }

(** [traceroute ?paris t ~vp ~dst ()] probes ttl 1.. with a gap limit:
    the trace stops after [gap_limit] consecutive unresponsive hops
    (default 5) or when an echo/unreachable reply arrives, mirroring
    scamper. [paris] (default true) keeps the flow identifier constant;
    [false] models classic traceroute, whose per-probe flows wobble
    across load-balanced equal-cost paths [Augustin et al. 2006]. *)
val traceroute :
  ?paris:bool ->
  t -> vp:Gen.vp -> dst:Ipv4.t -> ?max_ttl:int -> ?gap_limit:int -> unit -> hop list

(** [ping t ~dst] sends an ICMP echo to [dst] directly. *)
val ping : t -> dst:Ipv4.t -> reply option

(** [udp_probe t ~dst] sends a UDP probe to an unused port (Mercator). *)
val udp_probe : t -> dst:Ipv4.t -> reply option
