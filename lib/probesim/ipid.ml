open Netcore
module Net = Topogen.Net

type counter = { base : int; rate : float; mutable sent : int }

type t = {
  seed : int;
  shared : (int, counter) Hashtbl.t;  (* router id *)
  per_iface : (int * Ipv4.t, counter) Hashtbl.t;
  rng : Rng.t;
}

let create ~seed =
  { seed; shared = Hashtbl.create 256; per_iface = Hashtbl.create 256;
    rng = Rng.create (seed lxor 0x1b9d) }

(* Deterministic per-key parameters so repeated runs agree. A sizeable
   share of routers rebooted recently, so their counters cluster near
   zero: two such counters advance close together for a while, which is
   what makes single-trial ID comparisons false-positive and why bdrmap
   repeats Ally at five-minute spacing (5.3). *)
let fresh_counter seed key =
  let r = Rng.create (seed lxor (key * 2654435761)) in
  if Rng.bool r ~p:0.35 then
    (* Recently rebooted, lightly loaded: counter still near zero. *)
    { base = Rng.int r 1500; rate = 0.3 +. Rng.float r *. 2.0; sent = 0 }
  else { base = Rng.int r 65536; rate = 2.0 +. Rng.float r *. 300.0; sent = 0 }

let counter_for t router ~addr =
  match router.Net.behavior.ipid with
  | Net.Shared_counter -> (
    match Hashtbl.find_opt t.shared router.Net.rid with
    | Some c -> Some c
    | None ->
      let c = fresh_counter t.seed router.Net.rid in
      Hashtbl.add t.shared router.Net.rid c;
      Some c)
  | Net.Per_iface -> (
    let key = (router.Net.rid, addr) in
    match Hashtbl.find_opt t.per_iface key with
    | Some c -> Some c
    | None ->
      let c = fresh_counter t.seed (router.Net.rid lxor (Ipv4.to_int addr * 31)) in
      Hashtbl.add t.per_iface key c;
      Some c)
  | Net.Random_id | Net.Zero_id -> None

let sample t router ~addr ~now =
  match router.Net.behavior.ipid with
  | Net.Random_id -> Rng.int t.rng 65536
  | Net.Zero_id -> 0
  | Net.Shared_counter | Net.Per_iface -> (
    match counter_for t router ~addr with
    | None -> 0
    | Some c ->
      c.sent <- c.sent + 1;
      (c.base + c.sent + int_of_float (c.rate *. now)) land 0xFFFF)
