(** IP-ID assignment state for the simulated routers. A router with a
    shared central counter stamps every reply from one sequence that also
    advances with background traffic; this is the signal Ally [40] and
    MIDAR [21] exploit, and the per-interface/random/zero modes are the
    cases that defeat them (§5.3). *)

open Netcore
module Net = Topogen.Net

type t

(** [create ~seed] initializes counter state; base values and background
    rates are drawn deterministically per router. *)
val create : seed:int -> t

(** [sample t router ~addr ~now] is the IP-ID the router places in a
    reply sent from [addr] at simulated time [now], advancing the
    counter by one for the reply itself. Values are in [0, 65536). *)
val sample : t -> Net.router -> addr:Ipv4.t -> now:float -> int
