type deployment = Standalone | Split

type footprint = { device_bytes : int; controller_bytes : int }

type inputs = {
  routed_prefixes : int;
  as_rel_edges : int;
  target_blocks : int;
  stopset_entries : int;
  alias_pairs : int;
  trace_hops : int;
}

(* Cost constants (bytes per entry), calibrated against the in-memory
   representations used by this implementation: a trie node per routed
   prefix with origin set, relationship edges in adjacency sets, hop
   records with address + metadata, alias pair state with IP-ID
   samples. *)
let b_prefix = 160
let b_edge = 48
let b_block = 64
let b_stop = 24
let b_pair = 96
let b_hop = 56

(* A prober needs only a socket buffer, the in-flight probe window and
   the callback queue: a small constant plus the current block. *)
let prober_fixed = 2_500_000
let controller_fixed = 4_000_000

let total i =
  (i.routed_prefixes * b_prefix) + (i.as_rel_edges * b_edge)
  + (i.target_blocks * b_block) + (i.stopset_entries * b_stop)
  + (i.alias_pairs * b_pair) + (i.trace_hops * b_hop)

let footprint d i =
  match d with
  | Standalone ->
    { device_bytes = controller_fixed + total i; controller_bytes = 0 }
  | Split ->
    { device_bytes = prober_fixed; controller_bytes = controller_fixed + total i }

let fits ~ram_bytes fp = fp.device_bytes <= ram_bytes
let whitebox_ram = 32 * 1024 * 1024

let pp ppf fp =
  Format.fprintf ppf "device=%.1fMB controller=%.1fMB"
    (float_of_int fp.device_bytes /. 1e6)
    (float_of_int fp.controller_bytes /. 1e6)
