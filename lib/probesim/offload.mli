(** The device/controller split of §5.8, as a working protocol: the
    controller (running the full bdrmap state) issues probe requests over
    a serialized channel; the device-side servicer holds nothing but the
    prober. Every message is a single text line, so the protocol doubles
    as a wire-format specification:

    {v
    T|<flow>|<dst>|<ttl>        probe request (traceroute)
    P|<dst>                     ping request
    U|<dst>                     udp request
    A|<seconds>                 advance the probing clock
    R|<src>|<kind>|<ipid>       reply
    N                           no reply
    v}

    The channel counts bytes in each direction, giving the measured
    communication cost of the offloaded deployment (the BISmark probers
    of §5.8 streamed raw measurements exactly this way). *)

open Netcore
module Gen = Topogen.Gen

type request =
  | Trace of { flow : int; dst : Ipv4.t; ttl : int }
  | Ping of Ipv4.t
  | Udp of Ipv4.t
  | Advance of float

val request_to_line : request -> string
val request_of_line : string -> (request, string) result
val response_to_line : Engine.reply option -> string
val response_of_line : string -> (Engine.reply option, string) result

(** A bidirectional in-memory channel with byte accounting. *)
module Channel : sig
  type t

  val create : unit -> t

  (** Bytes sent controller→device and device→controller. *)
  val bytes_to_device : t -> int

  val bytes_to_controller : t -> int
  val messages : t -> int
end

(** [serve channel engine ~vp request_line] is the device side: parse,
    probe, serialize. Exposed for tests; {!remote} wires it up. *)
val serve : Engine.t -> vp:Gen.vp -> string -> string

(** [remote channel engine ~vp] is a {!Prober.t} whose every operation
    crosses [channel] as serialized lines serviced by [engine]. The
    device side holds no bdrmap state at all. *)
val remote : Channel.t -> Engine.t -> vp:Gen.vp -> Prober.t
