open Netcore
module Gen = Topogen.Gen

type t = {
  trace_probe : flow:int -> dst:Ipv4.t -> ttl:int -> Engine.reply option;
  ping : dst:Ipv4.t -> Engine.reply option;
  udp_probe : dst:Ipv4.t -> Engine.reply option;
  advance : float -> unit;
  probe_count : unit -> int;
  pps : float;
}

let local engine ~vp =
  { trace_probe = (fun ~flow ~dst ~ttl -> Engine.trace_probe ~flow engine ~vp ~dst ~ttl);
    ping = (fun ~dst -> Engine.ping engine ~dst);
    udp_probe = (fun ~dst -> Engine.udp_probe engine ~dst);
    advance = Engine.advance engine;
    probe_count = (fun () -> Engine.probe_count engine);
    pps = Engine.pps engine }
