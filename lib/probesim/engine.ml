open Netcore
module Net = Topogen.Net
module Gen = Topogen.Gen
module Fwd = Routing.Forwarding

type icmp_kind = Ttl_expired | Echo_reply | Dest_unreach
type reply = { src : Ipv4.t; kind : icmp_kind; ipid : int; responder : int }
type hop = { ttl : int; reply : reply option }

type terminal = Delivered | Sunk | Dropped

type fpath = { steps : Fwd.step array; term : terminal }

(* The forward-path cache uses two generations (a "young" and an "old"
   table) instead of a wholesale [Hashtbl.reset] at capacity: inserts go
   to young; when young fills, old is discarded and young is demoted.
   Hot keys get promoted back into young on an old-generation hit, so a
   working set up to [cache_cap] entries is never thrown away, and the
   total footprint stays bounded by two generations. *)
let default_cache_cap = 30_000

type cache_stats = { hits : int; misses : int; evictions : int; entries : int }

type t = {
  w : Gen.world;
  fwd : Fwd.t;
  ipid : Ipid.t;
  pps : float;
  fault : Fault.state;
  cache_cap : int;
  mutable clock : float;
  mutable probes : int;
  mutable paths_young : (int * Ipv4.t * int, fpath) Hashtbl.t;
  mutable paths_old : (int * Ipv4.t * int, fpath) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
}

(* The payload is just the probability; the opaque type exists so the
   only way to build one — the deprecated [rate_limit_p] constructor —
   raises a compile-time alert at every remaining call site. *)
type legacy_rate_limit = float

let rate_limit_p p = p

let create ?(pps = 100.0) ?rate_limit_p ?fault
    ?(cache_cap = default_cache_cap) w fwd =
  let cfg =
    match fault with Some c -> c | None -> Fault.of_profile w
  in
  (* [rate_limit_p] predates the fault layer; route it through the
     fault state's dedicated legacy stream so its draw sequence stays
     isolated from every other impairment. *)
  let cfg =
    match rate_limit_p with
    | Some p when p > 0.0 -> { cfg with Fault.legacy_rl_p = p }
    | _ -> cfg
  in
  { w; fwd; ipid = Ipid.create ~seed:w.Gen.params.Gen.seed; pps;
    fault = Fault.create ~seed:w.Gen.params.Gen.seed cfg;
    cache_cap = max 1 cache_cap; clock = 0.0; probes = 0;
    paths_young = Hashtbl.create 4096; paths_old = Hashtbl.create 16;
    cache_hits = 0; cache_misses = 0; cache_evictions = 0 }

let fault_config t = Fault.config t.fault
let fault_stats t = Fault.stats t.fault

let stats t =
  { hits = t.cache_hits; misses = t.cache_misses; evictions = t.cache_evictions;
    entries = Hashtbl.length t.paths_young + Hashtbl.length t.paths_old }

let cache_insert t key p =
  if Hashtbl.length t.paths_young >= t.cache_cap then begin
    t.cache_evictions <- t.cache_evictions + Hashtbl.length t.paths_old;
    t.paths_old <- t.paths_young;
    t.paths_young <- Hashtbl.create 4096
  end;
  Hashtbl.add t.paths_young key p

let world t = t.w
let now t = t.clock
let advance t dt = t.clock <- t.clock +. dt
let pps t = t.pps
let probe_count t = t.probes

let tick t =
  t.probes <- t.probes + 1;
  t.clock <- t.clock +. (1.0 /. t.pps)

let filter_of t asn = (Net.as_node t.w.Gen.net asn).Net.filter

(* Truncate the forward path at the border of the first AS that filters
   probes at its edge: the border router itself still appears (it is the
   last hop traceroute can elicit), everything beyond is dropped. *)
let truncate_at_filters t src_rid steps =
  let rec go prev_owner acc = function
    | [] -> (List.rev acc, None)
    | (s : Fwd.step) :: rest ->
      let owner = (Net.router t.w.Gen.net s.Fwd.rid).Net.owner in
      let crossing =
        (not (Asn.equal owner prev_owner))
        &&
        match s.Fwd.in_link with
        | Some l -> l.Net.kind <> Net.Internal
        | None -> false
      in
      if crossing && filter_of t owner <> Net.Open then
        (List.rev (s :: acc), Some owner)
      else go owner (s :: acc) rest
  in
  let src_owner = (Net.router t.w.Gen.net src_rid).Net.owner in
  go src_owner [] steps

let fpath t ~src_rid ~dst ~flow =
  let key = (src_rid, dst, flow) in
  match Hashtbl.find_opt t.paths_young key with
  | Some p ->
    t.cache_hits <- t.cache_hits + 1;
    p
  | None ->
  match Hashtbl.find_opt t.paths_old key with
  | Some p ->
    t.cache_hits <- t.cache_hits + 1;
    Hashtbl.remove t.paths_old key;
    cache_insert t key p;
    p
  | None ->
    t.cache_misses <- t.cache_misses + 1;
    let raw = Fwd.path ~flow t.fwd ~src_rid ~dst () in
    let kept, filtered = truncate_at_filters t src_rid raw in
    let term =
      match filtered with
      | Some _ -> (
        (* The border may itself hold the probed address. *)
        match kept with
        | [] -> Dropped
        | _ ->
          let last = List.nth kept (List.length kept - 1) in
          let r = Net.router t.w.Gen.net last.Fwd.rid in
          if
            List.exists (fun (i : Net.iface) -> Ipv4.equal i.Net.addr dst) r.Net.ifaces
          then Delivered
          else Dropped)
      | None -> (
        let last_rid =
          match List.rev kept with
          | [] -> src_rid
          | s :: _ -> s.Fwd.rid
        in
        match Fwd.next_hop t.fwd ~rid:last_rid ~dst with
        | Fwd.Deliver -> Delivered
        | Fwd.Sink -> Sunk
        | Fwd.Forward _ | Fwd.Unreachable -> Dropped)
    in
    let p = { steps = Array.of_list kept; term } in
    cache_insert t key p;
    p

(* Source-address selection for TTL-expired and unreachable messages. *)
let select_src t (r : Net.router) (in_link : Net.link option) ~dst ~reply_to =
  let inbound () =
    match in_link with
    | Some l -> Some (if fst l.Net.a = r.Net.rid then snd l.Net.a else snd l.Net.b)
    | None -> None
  in
  let iface_toward asn =
    List.find_map
      (fun (i : Net.iface) ->
        let l = Net.link t.w.Gen.net i.Net.link in
        if l.Net.kind = Net.Internal then None
        else
          let far_rid, _ = Net.peer_of t.w.Gen.net l r.Net.rid in
          if Asn.equal (Net.router t.w.Gen.net far_rid).Net.owner asn then
            Some i.Net.addr
          else None)
      r.Net.ifaces
  in
  match r.Net.behavior.ttl_src with
  | Net.Inbound -> inbound ()
  | Net.Toward_reply -> (
    (* Default-exit behaviour: replies leave via the primary provider
       link when this router hosts one; else via the route back to the
       prober. *)
    match Asn.Map.find_opt r.Net.owner t.w.Gen.primary_exit with
    | Some exit_asn when iface_toward exit_asn <> None -> iface_toward exit_asn
    | _ -> (
      match Fwd.reply_iface t.fwd ~rid:r.Net.rid ~reply_to with
      | Some a -> Some a
      | None -> inbound ()))
  | Net.Toward_dst -> (
    match Fwd.forward_iface t.fwd ~rid:r.Net.rid ~dst with
    | Some a -> Some a
    | None -> inbound ())

let make_reply t (r : Net.router) ~src ~kind =
  { src; kind; ipid = Ipid.sample t.ipid r ~addr:src ~now:t.clock;
    responder = r.Net.rid }

let trace_probe ?(flow = 0) t ~vp ~dst ~ttl =
  tick t;
  if Fault.probe_lost t.fault then None
  else begin
    let p = fpath t ~src_rid:vp.Gen.vp_rid ~dst ~flow in
    (* Transient link failures are a time-dependent view over the cached
       pure path: the probe dies entering the first dead link, hops
       before it still answer, and the cache never sees the outage. *)
    let n, term =
      match Fault.first_failed_step t.fault ~now:t.clock p.steps with
      | None -> (Array.length p.steps, p.term)
      | Some i -> (i, Dropped)
    in
    (* Fault gates run before [make_reply] so suppressed replies consume
       no IP-ID state: a dropped reply must leave the responder's
       counter exactly where a never-sent reply would. *)
    let reply_gate r k =
      if Fault.reply_allowed t.fault ~rid:r.Net.rid ~now:t.clock then k ()
      else None
    in
    if ttl <= n then begin
      let step = p.steps.(ttl - 1) in
      let r = Net.router t.w.Gen.net step.Fwd.rid in
      if ttl = n && term = Delivered then
        (* The probe reached its destination interface: echo reply. *)
        if r.Net.behavior.echo then
          reply_gate r (fun () -> Some (make_reply t r ~src:dst ~kind:Echo_reply))
        else None
      else if not r.Net.behavior.ttl_expired then None
      else if Fault.legacy_rate_limited t.fault then None
      else
        reply_gate r (fun () ->
            match select_src t r step.Fwd.in_link ~dst ~reply_to:vp.Gen.vp_addr with
            | Some src -> Some (make_reply t r ~src ~kind:Ttl_expired)
            | None -> None)
    end
    else
      (* Beyond the path: delivery, unreachable, or silence. *)
      match term with
      | Delivered ->
        if n = 0 then None
        else
          let r = Net.router t.w.Gen.net p.steps.(n - 1).Fwd.rid in
          if r.Net.behavior.echo then
            reply_gate r (fun () ->
                Some (make_reply t r ~src:dst ~kind:Echo_reply))
          else None
      | Sunk ->
        if n = 0 then None
        else
          let step = p.steps.(n - 1) in
          let r = Net.router t.w.Gen.net step.Fwd.rid in
          if not r.Net.behavior.unreach then None
          else
            reply_gate r (fun () ->
                match
                  select_src t r step.Fwd.in_link ~dst ~reply_to:vp.Gen.vp_addr
                with
                | Some src -> Some (make_reply t r ~src ~kind:Dest_unreach)
                | None -> None)
      | Dropped -> None
  end

let traceroute ?(paris = true) t ~vp ~dst ?(max_ttl = 32) ?(gap_limit = 5) () =
  let rec go ttl gaps acc =
    if ttl > max_ttl || gaps >= gap_limit then List.rev acc
    else
      (* Paris keeps the flow identifier constant so every probe of one
         trace follows one path; classic traceroute's varying ports make
         each TTL a fresh flow, wobbling across load-balanced paths. *)
      let flow = if paris then 0 else ttl in
      let reply = trace_probe ~flow t ~vp ~dst ~ttl in
      let acc = { ttl; reply } :: acc in
      match reply with
      | Some { kind = Echo_reply | Dest_unreach; _ } -> List.rev acc
      | Some { kind = Ttl_expired; _ } -> go (ttl + 1) 0 acc
      | None -> go (ttl + 1) (gaps + 1) acc
  in
  go 1 0 []

(* Direct-probe reachability: routers inside filtered ASes are shielded;
   border routers (those with an interdomain interface) remain exposed. *)
let direct_target t dst =
  match Net.owner_of_addr t.w.Gen.net dst with
  | None -> None
  | Some r -> (
    let node = Net.as_node t.w.Gen.net r.Net.owner in
    match node.Net.filter with
    | Net.Silent -> None
    | Net.Open -> Some r
    | Net.Firewall | Net.Echo_only ->
      let is_border =
        List.exists
          (fun (i : Net.iface) ->
            (Net.link t.w.Gen.net i.Net.link).Net.kind <> Net.Internal)
          r.Net.ifaces
      in
      if is_border then Some r else None)

let ping t ~dst =
  tick t;
  if Fault.probe_lost t.fault then None
  else
    match direct_target t dst with
    | Some r
      when r.Net.behavior.echo
           && Fault.reply_allowed t.fault ~rid:r.Net.rid ~now:t.clock ->
      Some (make_reply t r ~src:dst ~kind:Echo_reply)
    | Some _ | None -> None

let udp_probe t ~dst =
  tick t;
  if Fault.probe_lost t.fault then None
  else
    match direct_target t dst with
    | None -> None
    | Some r -> (
      match r.Net.behavior.udp with
      | Net.No_udp -> None
      | (Net.Probed_addr | Net.Canonical)
        when not (Fault.reply_allowed t.fault ~rid:r.Net.rid ~now:t.clock) ->
        None
      | Net.Probed_addr -> Some (make_reply t r ~src:dst ~kind:Dest_unreach)
      | Net.Canonical ->
        let src =
          match r.Net.canonical with
          | Some c -> c
          | None -> (
            match r.Net.ifaces with
            | i :: _ -> i.Net.addr
            | [] -> dst)
        in
        Some (make_reply t r ~src ~kind:Dest_unreach))
