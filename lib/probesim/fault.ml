open Netcore
module Gen = Topogen.Gen
module Net = Topogen.Net

type failure = { lid : int; fail_at : float; recover_at : float }

type config = {
  probe_loss_p : float;
  reply_loss_p : float;
  legacy_rl_p : float;
  rl_share : float;
  rl_rate : float;
  rl_burst : float;
  dark_share : float;
  dark_after : int;
  failures : failure list;
}

let zero =
  { probe_loss_p = 0.0;
    reply_loss_p = 0.0;
    legacy_rl_p = 0.0;
    rl_share = 0.0;
    rl_rate = 0.0;
    rl_burst = 0.0;
    dark_share = 0.0;
    dark_after = 0;
    failures = [] }

let is_zero c =
  c.probe_loss_p <= 0.0 && c.reply_loss_p <= 0.0 && c.legacy_rl_p <= 0.0
  && (c.rl_share <= 0.0 || c.rl_rate <= 0.0)
  && (c.dark_share <= 0.0 || c.dark_after <= 0)
  && c.failures = []

let of_profile ?profile (w : Gen.world) =
  let p = match profile with Some p -> p | None -> w.Gen.params.Gen.fault in
  let failures =
    if p.Gen.f_fail_links <= 0 then []
    else begin
      (* Pick victims among the hosting org's own border links: internal
         outages reroute silently inside an AS, and a failure on a far
         link no trace crosses is invisible — the host's interconnects
         are what flaps the inferred borders. Selection is a dedicated
         stream off the world seed so it is independent of probing
         order. *)
      let rng = Rng.create (w.Gen.params.Gen.seed lxor 0x0fa1) in
      let owner rid = (Net.router w.Gen.net rid).Net.owner in
      let host_side (l : Net.link) =
        Asn.Set.mem (owner (fst l.Net.a)) w.Gen.siblings
        || Asn.Set.mem (owner (fst l.Net.b)) w.Gen.siblings
      in
      let all = Net.interdomain_links w.Gen.net in
      let pool =
        match List.filter host_side all with [] -> all | at_border -> at_border
      in
      let victims = Rng.sample rng p.Gen.f_fail_links pool in
      List.mapi
        (fun i (l : Net.link) ->
          (* Stagger onsets so forwarding keeps changing during the run
             rather than suffering one synchronized blackout. *)
          let at = p.Gen.f_fail_at +. (15.0 *. float_of_int i) in
          { lid = l.Net.lid; fail_at = at; recover_at = at +. p.Gen.f_fail_for })
        victims
    end
  in
  { probe_loss_p = p.Gen.f_probe_loss;
    reply_loss_p = p.Gen.f_reply_loss;
    legacy_rl_p = 0.0;
    rl_share = p.Gen.f_rl_share;
    rl_rate = p.Gen.f_rl_rate;
    rl_burst = p.Gen.f_rl_burst;
    dark_share = p.Gen.f_dark_share;
    dark_after = p.Gen.f_dark_after;
    failures }

type bucket = { mutable tokens : float; mutable last : float }

type stats = {
  probes_lost : int;
  replies_lost : int;
  rate_limited : int;
  dark_dropped : int;
  failure_hits : int;
}

type state = {
  cfg : config;
  seed : int;
  loss_rng : Rng.t;  (** probe/reply Bernoulli draws *)
  legacy_rng : Rng.t;  (** deprecated rate_limit_p coin, its own stream *)
  buckets : (int, bucket option) Hashtbl.t;  (** rid -> bucket if limited *)
  dark : (int, int ref option) Hashtbl.t;  (** rid -> remaining quota *)
  failed : (int, failure) Hashtbl.t;  (** lid -> schedule *)
  mutable probes_lost : int;
  mutable replies_lost : int;
  mutable rate_limited : int;
  mutable dark_dropped : int;
  mutable failure_hits : int;
}

let create ~seed cfg =
  let failed = Hashtbl.create 7 in
  List.iter (fun f -> Hashtbl.replace failed f.lid f) cfg.failures;
  { cfg;
    seed;
    loss_rng = Rng.create (seed lxor 0xfa57);
    legacy_rng = Rng.create (seed lxor 0x7e57);
    buckets = Hashtbl.create 64;
    dark = Hashtbl.create 64;
    failed;
    probes_lost = 0;
    replies_lost = 0;
    rate_limited = 0;
    dark_dropped = 0;
    failure_hits = 0 }

let config t = t.cfg

(* Membership of a router in the rate-limited / dark subsets is a pure
   function of (seed, rid, salt): probe order and domain count cannot
   perturb which routers misbehave, only when their state trips. *)
let member ~seed ~salt ~rid ~share =
  let h = Rng.create ((seed * 0x9e3779b9) lxor (rid * 0x85ebca6b) lxor salt) in
  Rng.float h < share

let probe_lost t =
  t.cfg.probe_loss_p > 0.0
  && Rng.bool t.loss_rng ~p:t.cfg.probe_loss_p
  && begin
       t.probes_lost <- t.probes_lost + 1;
       true
     end

let link_down t ~now lid =
  match Hashtbl.find_opt t.failed lid with
  | None -> false
  | Some f -> now >= f.fail_at && now < f.recover_at

let first_failed_step t ~now (steps : Routing.Forwarding.step array) =
  if Hashtbl.length t.failed = 0 then None
  else begin
    let n = Array.length steps in
    let rec scan i =
      if i >= n then None
      else
        match steps.(i).Routing.Forwarding.in_link with
        | Some l when link_down t ~now l.Net.lid ->
            t.failure_hits <- t.failure_hits + 1;
            Some i
        | _ -> scan (i + 1)
    in
    scan 0
  end

let bucket_for t rid =
  match Hashtbl.find_opt t.buckets rid with
  | Some b -> b
  | None ->
      let b =
        if
          t.cfg.rl_share > 0.0 && t.cfg.rl_rate > 0.0
          && member ~seed:t.seed ~salt:0x11 ~rid ~share:t.cfg.rl_share
        then Some { tokens = Float.max 1.0 t.cfg.rl_burst; last = 0.0 }
        else None
      in
      Hashtbl.replace t.buckets rid b;
      b

let dark_for t rid =
  match Hashtbl.find_opt t.dark rid with
  | Some d -> d
  | None ->
      let d =
        if
          t.cfg.dark_share > 0.0 && t.cfg.dark_after > 0
          && member ~seed:t.seed ~salt:0x22 ~rid ~share:t.cfg.dark_share
        then Some (ref t.cfg.dark_after)
        else None
      in
      Hashtbl.replace t.dark rid d;
      d

let reply_allowed t ~rid ~now =
  let rl_ok =
    match
      if t.cfg.rl_share > 0.0 && t.cfg.rl_rate > 0.0 then bucket_for t rid
      else None
    with
    | None -> true
    | Some b ->
        (* Refill, capped at burst; each generated reply costs one token. *)
        if now > b.last then begin
          b.tokens <-
            Float.min t.cfg.rl_burst
              (b.tokens +. ((now -. b.last) *. t.cfg.rl_rate));
          b.last <- now
        end;
        if b.tokens >= 1.0 then begin
          b.tokens <- b.tokens -. 1.0;
          true
        end
        else begin
          t.rate_limited <- t.rate_limited + 1;
          false
        end
  in
  if not rl_ok then false
  else
    let dark_ok =
      match
        if t.cfg.dark_share > 0.0 && t.cfg.dark_after > 0 then dark_for t rid
        else None
      with
      | None -> true
      | Some remaining ->
          if !remaining > 0 then begin
            decr remaining;
            true
          end
          else begin
            t.dark_dropped <- t.dark_dropped + 1;
            false
          end
    in
    if not dark_ok then false
    else if t.cfg.reply_loss_p > 0.0 && Rng.bool t.loss_rng ~p:t.cfg.reply_loss_p
    then begin
      t.replies_lost <- t.replies_lost + 1;
      false
    end
    else true

let legacy_rate_limited t =
  t.cfg.legacy_rl_p > 0.0
  && Rng.bool t.legacy_rng ~p:t.cfg.legacy_rl_p
  && begin
       t.rate_limited <- t.rate_limited + 1;
       true
     end

let stats t =
  { probes_lost = t.probes_lost;
    replies_lost = t.replies_lost;
    rate_limited = t.rate_limited;
    dark_dropped = t.dark_dropped;
    failure_hits = t.failure_hits }
