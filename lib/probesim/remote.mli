(** Resource model for deployment on low-resource devices (§5.8).

    bdrmap needs the IP-to-AS mapping, per-AS stop sets, and alias state:
    roughly 150 MB of RAM, far beyond a SamKnows/RIPE-Atlas class device
    (32 MB total). The paper's answer is a split deployment: the device
    runs only the prober (scamper) and streams raw measurements to a
    central controller holding all state. This module accounts for the
    state bytes held on each side under both deployments, using the same
    cost constants for both so the ratio is meaningful. *)

type deployment = Standalone | Split

type footprint = {
  device_bytes : int;  (** state resident on the measurement device *)
  controller_bytes : int;  (** state resident centrally *)
}

(** Sizing inputs, taken from the actual artifacts of a run. *)
type inputs = {
  routed_prefixes : int;  (** entries in the IP-AS trie *)
  as_rel_edges : int;
  target_blocks : int;
  stopset_entries : int;
  alias_pairs : int;  (** candidate pairs tracked during resolution *)
  trace_hops : int;  (** collected hop records *)
}

val footprint : deployment -> inputs -> footprint

(** [fits ~ram_bytes fp] is true when the device-side state fits. *)
val fits : ram_bytes:int -> footprint -> bool

(** 32 MB, the RIPE Atlas / SamKnows Whitebox class of device. *)
val whitebox_ram : int

val pp : Format.formatter -> footprint -> unit
