(** The probing interface the collection driver runs against. The paper's
    contribution 2 (§5.8) splits bdrmap into a dumb prober (scamper on
    the measurement device) and a central controller holding all state;
    this abstraction makes the driver indifferent to which side it is on:

    - {!local} binds directly to the simulation engine (standalone
      deployment);
    - {!Offload.remote} (see {!module:Offload}) tunnels every probe
      through a serialized request/response channel, as the
      device/controller split does. *)

open Netcore
module Gen = Topogen.Gen

type t = {
  trace_probe : flow:int -> dst:Ipv4.t -> ttl:int -> Engine.reply option;
  ping : dst:Ipv4.t -> Engine.reply option;
  udp_probe : dst:Ipv4.t -> Engine.reply option;
  advance : float -> unit;
  probe_count : unit -> int;
  pps : float;
}

(** [local engine ~vp] probes the engine directly from [vp]. *)
val local : Engine.t -> vp:Gen.vp -> t
