open Netcore
module Gen = Topogen.Gen

type request =
  | Trace of { flow : int; dst : Ipv4.t; ttl : int }
  | Ping of Ipv4.t
  | Udp of Ipv4.t
  | Advance of float

let request_to_line = function
  | Trace { flow; dst; ttl } ->
    Printf.sprintf "T|%d|%s|%d" flow (Ipv4.to_string dst) ttl
  | Ping dst -> Printf.sprintf "P|%s" (Ipv4.to_string dst)
  | Udp dst -> Printf.sprintf "U|%s" (Ipv4.to_string dst)
  | Advance s -> Printf.sprintf "A|%.3f" s

(* Strict field parsers. [String.split_on_char] already rejects arity
   errors (a trailing field or an embedded '|' changes the arity, so the
   patterns below fall through to the error case), but the stdlib
   numeric parsers are far too liberal for a wire format:
   [int_of_string_opt] takes "0x10", "+5" and "1_000";
   [float_of_string_opt] takes "nan", "inf" and "1e3" — and a NaN clock
   advance would silently wedge the engine's simulated clock. Each field
   therefore accepts exactly the canonical rendering its printer emits,
   which is also what makes the round-trip property
   [of_line (to_line r) = Ok r] meaningful. *)

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

(* Canonical non-negative decimal: digits only, no redundant leading
   zero, small enough to never overflow. *)
let canon_int s =
  if
    is_digits s
    && String.length s <= 9
    && (String.length s = 1 || s.[0] <> '0')
  then int_of_string_opt s
  else None

let canon_int_range lo hi s =
  match canon_int s with Some v when v >= lo && v <= hi -> Some v | None | Some _ -> None

(* Canonical "%.3f" of a non-negative float: an integer part with no
   redundant leading zero, a dot, exactly three fraction digits. Finite
   and non-negative by construction — "nan", "inf", exponents and signs
   never match. *)
let canon_float3 s =
  match String.index_opt s '.' with
  | Some i
    when String.length s - i - 1 = 3
         && i >= 1
         && i <= 12
         && is_digits (String.sub s 0 i)
         && (i = 1 || s.[0] <> '0')
         && is_digits (String.sub s (i + 1) 3) ->
    float_of_string_opt s
  | _ -> None

(* Canonical dotted quad: [Ipv4.of_string] is strict about shape but
   still accepts redundant leading zeros ("01.2.3.4"); requiring the
   round-trip pins one spelling per address. *)
let canon_addr s =
  match Ipv4.of_string s with
  | Some a when String.equal (Ipv4.to_string a) s -> Some a
  | _ -> None

let request_of_line line =
  match String.split_on_char '|' line with
  | [ "T"; flow; dst; ttl ] -> (
    (* ttl >= 1: the engine indexes the forward path at [ttl - 1]. *)
    match
      (canon_int flow, canon_addr dst, canon_int_range 1 255 ttl)
    with
    | Some flow, Some dst, Some ttl -> Ok (Trace { flow; dst; ttl })
    | _ -> Error (Printf.sprintf "bad trace request %S" line))
  | [ "P"; dst ] -> (
    match canon_addr dst with
    | Some dst -> Ok (Ping dst)
    | None -> Error (Printf.sprintf "bad ping request %S" line))
  | [ "U"; dst ] -> (
    match canon_addr dst with
    | Some dst -> Ok (Udp dst)
    | None -> Error (Printf.sprintf "bad udp request %S" line))
  | [ "A"; s ] -> (
    match canon_float3 s with
    | Some s -> Ok (Advance s)
    | None -> Error (Printf.sprintf "bad advance request %S" line))
  | _ -> Error (Printf.sprintf "bad request %S" line)

let kind_to_string = function
  | Engine.Ttl_expired -> "ttl"
  | Engine.Echo_reply -> "echo"
  | Engine.Dest_unreach -> "unreach"

let kind_of_string = function
  | "ttl" -> Some Engine.Ttl_expired
  | "echo" -> Some Engine.Echo_reply
  | "unreach" -> Some Engine.Dest_unreach
  | _ -> None

let response_to_line = function
  | None -> "N"
  | Some (r : Engine.reply) ->
    Printf.sprintf "R|%s|%s|%d" (Ipv4.to_string r.Engine.src)
      (kind_to_string r.Engine.kind) r.Engine.ipid

let response_of_line line =
  match String.split_on_char '|' line with
  | [ "N" ] -> Ok None
  | [ "R"; src; kind; ipid ] -> (
    match (canon_addr src, kind_of_string kind, canon_int_range 0 0xffff ipid) with
    | Some src, Some kind, Some ipid ->
      (* The responder's identity stays on the device side: the wire
         format carries only what a real ICMP reply would. *)
      Ok (Some { Engine.src; kind; ipid; responder = -1 })
    | _ -> Error (Printf.sprintf "bad response %S" line))
  | _ -> Error (Printf.sprintf "bad response %S" line)

module Channel = struct
  type t = {
    mutable to_device : int;
    mutable to_controller : int;
    mutable msgs : int;
  }

  let create () = { to_device = 0; to_controller = 0; msgs = 0 }
  let bytes_to_device t = t.to_device
  let bytes_to_controller t = t.to_controller
  let messages t = t.msgs

  let note t req resp =
    t.to_device <- t.to_device + String.length req + 1;
    t.to_controller <- t.to_controller + String.length resp + 1;
    t.msgs <- t.msgs + 1
end

let serve engine ~vp request_line =
  match request_of_line request_line with
  | Error e -> "E|" ^ e
  | Ok (Trace { flow; dst; ttl }) ->
    response_to_line (Engine.trace_probe ~flow engine ~vp ~dst ~ttl)
  | Ok (Ping dst) -> response_to_line (Engine.ping engine ~dst)
  | Ok (Udp dst) -> response_to_line (Engine.udp_probe engine ~dst)
  | Ok (Advance s) ->
    Engine.advance engine s;
    "N"

let remote channel engine ~vp =
  let round req =
    let line = request_to_line req in
    let resp = serve engine ~vp line in
    Channel.note channel line resp;
    match response_of_line resp with
    | Ok r -> r
    | Error e -> invalid_arg ("Offload.remote: " ^ e)
  in
  { Prober.trace_probe =
      (fun ~flow ~dst ~ttl -> round (Trace { flow; dst; ttl }));
    ping = (fun ~dst -> round (Ping dst));
    udp_probe = (fun ~dst -> round (Udp dst));
    advance = (fun s -> ignore (round (Advance s)));
    probe_count = (fun () -> Engine.probe_count engine);
    pps = Engine.pps engine }
