open Netcore
module Gen = Topogen.Gen

type request =
  | Trace of { flow : int; dst : Ipv4.t; ttl : int }
  | Ping of Ipv4.t
  | Udp of Ipv4.t
  | Advance of float

let request_to_line = function
  | Trace { flow; dst; ttl } ->
    Printf.sprintf "T|%d|%s|%d" flow (Ipv4.to_string dst) ttl
  | Ping dst -> Printf.sprintf "P|%s" (Ipv4.to_string dst)
  | Udp dst -> Printf.sprintf "U|%s" (Ipv4.to_string dst)
  | Advance s -> Printf.sprintf "A|%.3f" s

let request_of_line line =
  match String.split_on_char '|' line with
  | [ "T"; flow; dst; ttl ] -> (
    match (int_of_string_opt flow, Ipv4.of_string dst, int_of_string_opt ttl) with
    | Some flow, Some dst, Some ttl -> Ok (Trace { flow; dst; ttl })
    | _ -> Error (Printf.sprintf "bad trace request %S" line))
  | [ "P"; dst ] -> (
    match Ipv4.of_string dst with
    | Some dst -> Ok (Ping dst)
    | None -> Error (Printf.sprintf "bad ping request %S" line))
  | [ "U"; dst ] -> (
    match Ipv4.of_string dst with
    | Some dst -> Ok (Udp dst)
    | None -> Error (Printf.sprintf "bad udp request %S" line))
  | [ "A"; s ] -> (
    match float_of_string_opt s with
    | Some s -> Ok (Advance s)
    | None -> Error (Printf.sprintf "bad advance request %S" line))
  | _ -> Error (Printf.sprintf "bad request %S" line)

let kind_to_string = function
  | Engine.Ttl_expired -> "ttl"
  | Engine.Echo_reply -> "echo"
  | Engine.Dest_unreach -> "unreach"

let kind_of_string = function
  | "ttl" -> Some Engine.Ttl_expired
  | "echo" -> Some Engine.Echo_reply
  | "unreach" -> Some Engine.Dest_unreach
  | _ -> None

let response_to_line = function
  | None -> "N"
  | Some (r : Engine.reply) ->
    Printf.sprintf "R|%s|%s|%d" (Ipv4.to_string r.Engine.src)
      (kind_to_string r.Engine.kind) r.Engine.ipid

let response_of_line line =
  match String.split_on_char '|' line with
  | [ "N" ] -> Ok None
  | [ "R"; src; kind; ipid ] -> (
    match (Ipv4.of_string src, kind_of_string kind, int_of_string_opt ipid) with
    | Some src, Some kind, Some ipid ->
      (* The responder's identity stays on the device side: the wire
         format carries only what a real ICMP reply would. *)
      Ok (Some { Engine.src; kind; ipid; responder = -1 })
    | _ -> Error (Printf.sprintf "bad response %S" line))
  | _ -> Error (Printf.sprintf "bad response %S" line)

module Channel = struct
  type t = {
    mutable to_device : int;
    mutable to_controller : int;
    mutable msgs : int;
  }

  let create () = { to_device = 0; to_controller = 0; msgs = 0 }
  let bytes_to_device t = t.to_device
  let bytes_to_controller t = t.to_controller
  let messages t = t.msgs

  let note t req resp =
    t.to_device <- t.to_device + String.length req + 1;
    t.to_controller <- t.to_controller + String.length resp + 1;
    t.msgs <- t.msgs + 1
end

let serve engine ~vp request_line =
  match request_of_line request_line with
  | Error e -> "E|" ^ e
  | Ok (Trace { flow; dst; ttl }) ->
    response_to_line (Engine.trace_probe ~flow engine ~vp ~dst ~ttl)
  | Ok (Ping dst) -> response_to_line (Engine.ping engine ~dst)
  | Ok (Udp dst) -> response_to_line (Engine.udp_probe engine ~dst)
  | Ok (Advance s) ->
    Engine.advance engine s;
    "N"

let remote channel engine ~vp =
  let round req =
    let line = request_to_line req in
    let resp = serve engine ~vp line in
    Channel.note channel line resp;
    match response_of_line resp with
    | Ok r -> r
    | Error e -> invalid_arg ("Offload.remote: " ^ e)
  in
  { Prober.trace_probe =
      (fun ~flow ~dst ~ttl -> round (Trace { flow; dst; ttl }));
    ping = (fun ~dst -> round (Ping dst));
    udp_probe = (fun ~dst -> round (Udp dst));
    advance = (fun s -> ignore (round (Advance s)));
    probe_count = (fun () -> Engine.probe_count engine);
    pps = Engine.pps engine }
