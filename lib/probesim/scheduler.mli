(** Probing-cost model (§5.3): bdrmap's run-time is probe-count divided by
    the probing rate. The driver records per-phase probe counts here so
    experiments can report run-times and the stop-set ablation. *)

type phase = Traceroute | Alias | Prefixscan

type t

val create : pps:float -> t
val note : t -> phase -> int -> unit
val count : t -> phase -> int
val total : t -> int

(** [duration_s t] is the simulated wall-clock spent probing. *)
val duration_s : t -> float

val duration_h : t -> float
val pps : t -> float
val pp : Format.formatter -> t -> unit
