(** Time-series latency probing (TSLP) over the simulated topology: the
    measurement technique of the interdomain congestion project that
    motivates bdrmap (§2, [Luckie et al., IMC 2014]). Probing the near
    and far side of an inferred interdomain link at intervals reveals
    congestion as a recurring (diurnal) elevation of the far-side RTT
    that the near-side does not share.

    The latency model: propagation delay accumulated from IGP link
    weights, plus queueing delay on interdomain links carrying a
    congestion episode while the episode is active (the simulated clock
    advances as the engine probes). *)


open Netcore
module Gen = Topogen.Gen

type t

val create : Engine.t -> Routing.Forwarding.t -> t

(** [congest t ~lid ~peak_start_s ~peak_end_s ~extra_ms] installs a daily
    congestion episode on interdomain link [lid]: between the two
    day-offsets (seconds into each simulated day), crossing the link
    costs [extra_ms] extra. *)
val congest :
  t -> lid:int -> peak_start_s:float -> peak_end_s:float -> extra_ms:float -> unit

(** [rtt t ~vp ~dst] is the round-trip time in milliseconds at the
    current simulated clock, or [None] when [dst] elicits no reply. *)
val rtt : t -> vp:Gen.vp -> dst:Ipv4.t -> float option

type sample = { at_s : float; near_ms : float option; far_ms : float option }

(** [monitor t ~vp ~near ~far ~interval_s ~samples] probes both sides of
    a border [samples] times, [interval_s] apart, advancing the clock. *)
val monitor :
  t ->
  vp:Gen.vp ->
  near:Ipv4.t ->
  far:Ipv4.t ->
  interval_s:float ->
  samples:int ->
  sample list

(** [diagnose samples] detects a congestion signature: the far-minus-near
    RTT difference shows a sustained elevated period against its own
    baseline (level-shift test, as in the IMC 2014 methodology).
    Returns the elevation in ms when detected. *)
val diagnose : sample list -> float option
