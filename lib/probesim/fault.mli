(** Deterministic measurement-impairment model injected into {!Engine}.

    The simulator's world is ideal by default: every open router answers
    every probe. Real collection (§4, §5.4) fights ICMP rate limiting,
    lossy paths, routers that stop answering mid-run, and routing churn.
    This module models those pathologies as an overlay the engine
    consults on every probe and reply:

    - {b forward probe loss} and {b reply transit loss}: independent
      Bernoulli drops drawn from a dedicated RNG stream;
    - {b per-router ICMP rate limiting}: a token bucket (capacity
      [rl_burst], refill [rl_rate] tokens/s of simulated clock) on a
      deterministic subset of routers — the paper's §5.3 reason for
      pacing probes at 100pps;
    - {b dark quotas}: a deterministic subset of routers answers its
      first [dark_after] replies and then goes silent for the rest of
      the collection (operator shutoff / ACL insertion mid-run);
    - {b transient link failures}: interdomain links scheduled to fail
      at [fail_at] and recover at [recover_at] on the simulated clock,
      flapping forwarding mid-collection. Probes whose path crosses a
      dead link are dropped at the failed hop.

    Determinism rules: loss draws come from an RNG split off the world
    seed (never the engine's other streams); per-router subsets are pure
    hashes of (seed, router id), so they do not depend on probe order;
    bucket and quota state live in the per-engine {!state}, so parallel
    per-VP engines evolve identical fault behaviour whatever the domain
    count. A zero {!config} draws nothing and mutates nothing: the
    engine's output is byte-identical to a fault-free engine. *)

module Gen = Topogen.Gen

(** A scheduled outage of one link, in simulated seconds. *)
type failure = { lid : int; fail_at : float; recover_at : float }

type config = {
  probe_loss_p : float;
  reply_loss_p : float;
  legacy_rl_p : float;
      (** deprecated [Engine.create ?rate_limit_p]: per-TTL-expired
          Bernoulli drop, kept for compatibility on its own stream *)
  rl_share : float;
  rl_rate : float;
  rl_burst : float;
  dark_share : float;
  dark_after : int;
  failures : failure list;
}

val zero : config

(** [is_zero c] — no impairment class is active; the engine treats the
    fault layer as a strict no-op. *)
val is_zero : config -> bool

(** [of_profile ?profile w] converts scenario-level knobs into a runtime
    config, choosing the failing links deterministically from the
    world's interdomain links via an RNG split off the world seed
    (failures are staggered 15 s apart so forwarding flaps repeatedly
    during collection). [profile] defaults to [w.params.fault]. *)
val of_profile : ?profile:Gen.fault_profile -> Gen.world -> config

type state

(** [create ~seed cfg] builds per-engine fault state. Engines created
    with equal [seed] and [cfg] produce identical drop sequences for
    identical probe sequences. *)
val create : seed:int -> config -> state

val config : state -> config

(** [probe_lost st] — the probe dies on the forward path. Draws only
    when [probe_loss_p > 0]. *)
val probe_lost : state -> bool

(** [first_failed_step st ~now steps] is the index of the first step
    whose entry link is down at [now], if any: the probe is dropped
    there and hops at or beyond the index never answer. *)
val first_failed_step :
  state -> now:float -> Routing.Forwarding.step array -> int option

(** [reply_allowed st ~rid ~now] gates a reply router [rid] is about to
    send: token bucket first (a limited router refuses to generate the
    reply), then the dark quota (counts generated replies), then reply
    transit loss. Mutates bucket/quota state; a zero config returns
    true without drawing or mutating anything. *)
val reply_allowed : state -> rid:int -> now:float -> bool

(** [legacy_rate_limited st] — the deprecated [rate_limit_p] coin,
    drawn from its own dedicated stream. *)
val legacy_rate_limited : state -> bool

type stats = {
  probes_lost : int;  (** forward-path losses *)
  replies_lost : int;  (** replies lost in transit *)
  rate_limited : int;  (** replies refused by token buckets (incl. legacy) *)
  dark_dropped : int;  (** replies refused by exhausted dark quotas *)
  failure_hits : int;  (** probes whose path crossed a failed link *)
}

val stats : state -> stats
