(** Autonomous system numbers. *)

type t = int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option
val compare : t -> t -> int
val equal : t -> t -> bool

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t

(** [most_frequent l] is the most common element of [l], breaking ties by
    the smaller ASN; [None] on the empty list. *)
val most_frequent : t list -> t option

(** [counts l] is the multiset of [l] as sorted (asn, count) pairs. *)
val counts : t list -> (t * int) list
