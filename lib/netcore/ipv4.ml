type t = int

let mask32 = 0xFFFF_FFFF
let zero = 0
let broadcast = mask32
let of_int i = i land mask32
let to_int a = a

let of_octets a b c d =
  ((a land 0xff) lsl 24) lor ((b land 0xff) lsl 16)
  lor ((c land 0xff) lsl 8) lor (d land 0xff)

let to_octets a =
  ((a lsr 24) land 0xff, (a lsr 16) land 0xff, (a lsr 8) land 0xff, a land 0xff)

let of_string s =
  let n = String.length s in
  (* Hand-rolled parse: strict dotted quad, no leading garbage accepted. *)
  let rec octet i acc digits =
    if i >= n then (i, acc, digits)
    else
      match s.[i] with
      | '0' .. '9' when digits < 3 ->
        octet (i + 1) ((acc * 10) + (Char.code s.[i] - Char.code '0')) (digits + 1)
      | _ -> (i, acc, digits)
  in
  let rec go i k acc =
    let j, v, digits = octet i 0 0 in
    if digits = 0 || v > 255 then None
    else
      let acc = (acc lsl 8) lor v in
      if k = 3 then if j = n then Some acc else None
      else if j < n && s.[j] = '.' then go (j + 1) (k + 1) acc
      else None
  in
  go 0 0 0

let of_string_exn s =
  match of_string s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string_exn: %S" s)

let to_string a =
  let o1, o2, o3, o4 = to_octets a in
  Printf.sprintf "%d.%d.%d.%d" o1 o2 o3 o4

let pp ppf a = Format.pp_print_string ppf (to_string a)
let compare = Int.compare
let equal = Int.equal
let hash a = a land max_int
let succ a = if a >= mask32 then broadcast else a + 1
let pred a = if a <= 0 then zero else a - 1

let add a n =
  let r = a + n in
  if r < 0 then zero else if r > mask32 then broadcast else r

let diff a b = a - b
let bit a i = (a lsr (31 - i)) land 1 = 1

let private_use a =
  let o1, o2, _, _ = to_octets a in
  o1 = 10 || (o1 = 172 && o2 >= 16 && o2 <= 31) || (o1 = 192 && o2 = 168)

let reserved a =
  let o1, o2, _, _ = to_octets a in
  o1 = 0 || o1 = 127 || (o1 = 169 && o2 = 254) || o1 >= 224

module Set = Set.Make (Int)
module Map = Map.Make (Int)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
