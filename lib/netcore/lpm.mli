(** Flattened longest-prefix-match table over a frozen prefix set.

    A 16-bit-stride root array: prefixes of length <= 16 are expanded
    into the slots they cover (longest cover wins per slot); longer
    prefixes live in tiny per-slot buckets sorted longest-first. Lookup
    is one array index plus a short bucket scan — the fast-path
    replacement for a bit-per-node {!Ptrie} walk once the prefix set
    stops changing. The structure is immutable after {!build} and safe
    to share across domains. *)

type 'a t

(** [build bindings] freezes [bindings] into a lookup table. Among
    duplicate prefixes the later binding wins (mirroring [Ptrie.add]).
    Cost: O(n log n) plus the 65536-slot root fill. *)
val build : (Prefix.t * 'a) list -> 'a t

(** [lookup t addr] is the longest prefix in [t] containing [addr],
    with its value — semantically identical to [Ptrie.lpm addr] over
    the same bindings. *)
val lookup : 'a t -> Ipv4.t -> (Prefix.t * 'a) option

(** [lookup_idx t addr] is the binding index of the longest prefix
    containing [addr], or [-1] on a miss. The zero-allocation form of
    {!lookup}: the scan touches only flat int arrays, so hot paths can
    loop over it without generating any garbage, resolving hits with
    {!prefix_at}/{!value_at} only when needed. *)
val lookup_idx : 'a t -> Ipv4.t -> int

(** [prefix_at t i] / [value_at t i] resolve a binding index returned
    by {!lookup_idx}. Indices are stable for the lifetime of [t] (they
    index the sorted deduplicated binding array). *)
val prefix_at : 'a t -> int -> Prefix.t

val value_at : 'a t -> int -> 'a

(** [find_exact t p] is the value bound to exactly [p], if any. *)
val find_exact : 'a t -> Prefix.t -> 'a option

(** [remap_values f t] rewrites every bound value through [f], keeping
    the prefix set and all index structure intact. *)
val remap_values : ('a -> 'a) -> 'a t -> 'a t

(** [patch t ~remove ~add ~remap] is the incremental form of rebuild:
    structurally identical to [build] over [t]'s bindings with [remove]
    dropped, surviving values rewritten through [remap], and [add]
    appended (an added prefix overwrites an existing binding; among
    duplicate adds the later wins, mirroring {!build}). Only root slots
    and buckets covered by a removed or added prefix are recomputed;
    everything else is index-translated. [t] is unchanged. *)
val patch :
  'a t -> remove:Prefix.t list -> add:(Prefix.t * 'a) list -> remap:('a -> 'a) -> 'a t

(** Number of (deduplicated) prefixes frozen into the table. *)
val length : 'a t -> int

(** [fold f t acc] folds over bindings in [Prefix.compare] order. *)
val fold : (Prefix.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
