(* Flattened longest-prefix-match table: a 16-bit-stride root array over
   a frozen prefix set. [Ptrie] walks one bit per node — ~32 pointer
   chases per lookup on the hot classify path; here a lookup is one
   array index plus a scan of the (almost always tiny) per-slot bucket
   of >/16 prefixes. Built once at freeze time, immutable after.

   Buckets are stored in CSR form — one flat index array plus a
   65537-entry offset array — instead of an array of per-slot arrays:
   no 65536 inner-array headers for the GC to trace, and the query path
   ([lookup_idx]) performs no allocation at all, returning a plain
   binding index that callers resolve with [prefix_at]/[value_at]. *)

type 'a t = {
  pfx : Prefix.t array;  (* sorted by [Prefix.compare]; parallel to [values] *)
  values : 'a array;
  short : int array;  (* 65536 slots: index of the longest <=/16 prefix covering the slot, or -1 *)
  long_off : int array;  (* 65537 CSR offsets into [long_idx], one slot per range *)
  long_idx : int array;  (* per-slot indices of >/16 prefixes, longest first *)
}

let slots = 1 lsl 16
let slot_of addr = Ipv4.to_int addr lsr 16

let length t = Array.length t.pfx

let build bindings =
  (* Sort by prefix; among duplicate keys the later binding wins,
     mirroring [Ptrie.add] overwrite semantics. *)
  let sorted = List.stable_sort (fun (p, _) (q, _) -> Prefix.compare p q) bindings in
  let rec dedupe = function
    | (p, _) :: ((q, _) :: _ as rest) when Prefix.equal p q -> dedupe rest
    | x :: rest -> x :: dedupe rest
    | [] -> []
  in
  let uniq = dedupe sorted in
  let pfx = Array.of_list (List.map fst uniq) in
  let values = Array.of_list (List.map snd uniq) in
  let short = Array.make slots (-1) in
  (* Short prefixes cover a contiguous slot range; fill in increasing
     length so a more-specific prefix overwrites the less-specific one
     and each slot ends up holding its longest <=/16 cover. *)
  let by_len = Array.init (Array.length pfx) (fun i -> i) in
  Array.sort (fun i j -> Int.compare (Prefix.len pfx.(i)) (Prefix.len pfx.(j))) by_len;
  let buckets = Array.make slots [] in
  let n_long = ref 0 in
  Array.iter
    (fun i ->
      let p = pfx.(i) in
      if Prefix.len p <= 16 then
        for s = slot_of (Prefix.first p) to slot_of (Prefix.last p) do
          short.(s) <- i
        done
      else begin
        (* All addresses of a >/16 prefix share the top 16 bits. *)
        let s = slot_of (Prefix.network p) in
        buckets.(s) <- i :: buckets.(s);
        incr n_long
      end)
    by_len;
  (* Flatten the buckets into CSR form: longest first within a slot, so
     the first [Prefix.mem] hit is the LPM. Equal-length prefixes in a
     slot are disjoint, so their relative order cannot matter; break
     ties on the network to keep the structure a pure function of the
     prefix set. *)
  let long_off = Array.make (slots + 1) 0 in
  let long_idx = Array.make !n_long 0 in
  let cursor = ref 0 in
  Array.iteri
    (fun s b ->
      long_off.(s) <- !cursor;
      match b with
      | [] -> ()
      | b ->
        let a = Array.of_list b in
        Array.sort
          (fun i j ->
            match Int.compare (Prefix.len pfx.(j)) (Prefix.len pfx.(i)) with
            | 0 -> Prefix.compare pfx.(i) pfx.(j)
            | c -> c)
          a;
        Array.iter
          (fun i ->
            long_idx.(!cursor) <- i;
            incr cursor)
          a)
    buckets;
  long_off.(slots) <- !cursor;
  { pfx; values; short; long_off; long_idx }

(* A while loop rather than a local recursive function: a closure
   capturing [t]/[addr] would cost one heap block per call, and this is
   the path the zero-allocation test pins down. The local refs do not
   escape, so they compile to mutable stack slots. *)
let lookup_idx t addr =
  let s = slot_of addr in
  let hi = t.long_off.(s + 1) in
  let k = ref t.long_off.(s) in
  let found = ref (-1) in
  while !found < 0 && !k < hi do
    let i = t.long_idx.(!k) in
    if Prefix.mem addr t.pfx.(i) then found := i else incr k
  done;
  if !found >= 0 then !found
  else
    (* A <=/16 prefix covering this slot covers every address in it,
       so no membership test is needed; -1 when nothing covers. *)
    t.short.(s)

let prefix_at t i = t.pfx.(i)
let value_at t i = t.values.(i)

let lookup t addr =
  let i = lookup_idx t addr in
  if i < 0 then None else Some (t.pfx.(i), t.values.(i))

let find_exact t p =
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      match Prefix.compare p t.pfx.(mid) with
      | 0 -> Some t.values.(mid)
      | c when c < 0 -> go lo mid
      | _ -> go (mid + 1) hi
  in
  go 0 (Array.length t.pfx)

let fold f t acc =
  let acc = ref acc in
  for i = 0 to Array.length t.pfx - 1 do
    acc := f t.pfx.(i) t.values.(i) !acc
  done;
  !acc
