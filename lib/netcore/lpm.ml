(* Flattened longest-prefix-match table: a 16-bit-stride root array over
   a frozen prefix set. [Ptrie] walks one bit per node — ~32 pointer
   chases per lookup on the hot classify path; here a lookup is one
   array index plus a scan of the (almost always tiny) per-slot bucket
   of >/16 prefixes. Built once at freeze time, immutable after.

   Buckets are stored in CSR form — one flat index array plus a
   65537-entry offset array — instead of an array of per-slot arrays:
   no 65536 inner-array headers for the GC to trace, and the query path
   ([lookup_idx]) performs no allocation at all, returning a plain
   binding index that callers resolve with [prefix_at]/[value_at]. *)

type 'a t = {
  pfx : Prefix.t array;  (* sorted by [Prefix.compare]; parallel to [values] *)
  values : 'a array;
  short : int array;  (* 65536 slots: index of the longest <=/16 prefix covering the slot, or -1 *)
  long_off : int array;  (* 65537 CSR offsets into [long_idx], one slot per range *)
  long_idx : int array;  (* per-slot indices of >/16 prefixes, longest first *)
}

let slots = 1 lsl 16
let slot_of addr = Ipv4.to_int addr lsr 16

let length t = Array.length t.pfx

let build bindings =
  (* Sort by prefix; among duplicate keys the later binding wins,
     mirroring [Ptrie.add] overwrite semantics. *)
  let sorted = List.stable_sort (fun (p, _) (q, _) -> Prefix.compare p q) bindings in
  let rec dedupe = function
    | (p, _) :: ((q, _) :: _ as rest) when Prefix.equal p q -> dedupe rest
    | x :: rest -> x :: dedupe rest
    | [] -> []
  in
  let uniq = dedupe sorted in
  let pfx = Array.of_list (List.map fst uniq) in
  let values = Array.of_list (List.map snd uniq) in
  let short = Array.make slots (-1) in
  (* Short prefixes cover a contiguous slot range; fill in increasing
     length so a more-specific prefix overwrites the less-specific one
     and each slot ends up holding its longest <=/16 cover. *)
  let by_len = Array.init (Array.length pfx) (fun i -> i) in
  Array.sort (fun i j -> Int.compare (Prefix.len pfx.(i)) (Prefix.len pfx.(j))) by_len;
  let buckets = Array.make slots [] in
  let n_long = ref 0 in
  Array.iter
    (fun i ->
      let p = pfx.(i) in
      if Prefix.len p <= 16 then
        for s = slot_of (Prefix.first p) to slot_of (Prefix.last p) do
          short.(s) <- i
        done
      else begin
        (* All addresses of a >/16 prefix share the top 16 bits. *)
        let s = slot_of (Prefix.network p) in
        buckets.(s) <- i :: buckets.(s);
        incr n_long
      end)
    by_len;
  (* Flatten the buckets into CSR form: longest first within a slot, so
     the first [Prefix.mem] hit is the LPM. Equal-length prefixes in a
     slot are disjoint, so their relative order cannot matter; break
     ties on the network to keep the structure a pure function of the
     prefix set. *)
  let long_off = Array.make (slots + 1) 0 in
  let long_idx = Array.make !n_long 0 in
  let cursor = ref 0 in
  Array.iteri
    (fun s b ->
      long_off.(s) <- !cursor;
      match b with
      | [] -> ()
      | b ->
        let a = Array.of_list b in
        Array.sort
          (fun i j ->
            match Int.compare (Prefix.len pfx.(j)) (Prefix.len pfx.(i)) with
            | 0 -> Prefix.compare pfx.(i) pfx.(j)
            | c -> c)
          a;
        Array.iter
          (fun i ->
            long_idx.(!cursor) <- i;
            incr cursor)
          a)
    buckets;
  long_off.(slots) <- !cursor;
  { pfx; values; short; long_off; long_idx }

(* A while loop rather than a local recursive function: a closure
   capturing [t]/[addr] would cost one heap block per call, and this is
   the path the zero-allocation test pins down. The local refs do not
   escape, so they compile to mutable stack slots. *)
let lookup_idx t addr =
  let s = slot_of addr in
  let hi = t.long_off.(s + 1) in
  let k = ref t.long_off.(s) in
  let found = ref (-1) in
  while !found < 0 && !k < hi do
    let i = t.long_idx.(!k) in
    if Prefix.mem addr t.pfx.(i) then found := i else incr k
  done;
  if !found >= 0 then !found
  else
    (* A <=/16 prefix covering this slot covers every address in it,
       so no membership test is needed; -1 when nothing covers. *)
    t.short.(s)

let prefix_at t i = t.pfx.(i)
let value_at t i = t.values.(i)

let remap_values f t = { t with values = Array.map f t.values }

(* Incremental rebuild: apply a small binding edit without re-sorting
   the whole table or refilling all 65536 root slots. Only the slots
   covered by a removed or added prefix are recomputed; every other
   slot's root cover and bucket contents are translated through the
   old-index -> new-index map. The CSR offset/index arrays are
   rewritten (O(slots + n_long) int stores, no comparisons), so the
   result is structurally identical to [build] over the edited binding
   set — the equivalence the churn tests pin down. *)
let patch t ~remove ~add ~remap =
  let removed = List.sort_uniq Prefix.compare remove in
  let added =
    (* Later binding wins among duplicate adds, mirroring [build]. *)
    let sorted = List.stable_sort (fun (p, _) (q, _) -> Prefix.compare p q) add in
    let rec dedupe = function
      | (p, _) :: ((q, _) :: _ as rest) when Prefix.equal p q -> dedupe rest
      | x :: rest -> x :: dedupe rest
      | [] -> []
    in
    Array.of_list (dedupe sorted)
  in
  let n_old = Array.length t.pfx in
  let n_add = Array.length added in
  let overwritten p =
    let rec go lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        match Prefix.compare p (fst added.(mid)) with
        | 0 -> true
        | c when c < 0 -> go lo mid
        | _ -> go (mid + 1) hi
    in
    go 0 n_add
  in
  let keep = Array.make (max 1 n_old) true in
  let n_keep = ref 0 in
  for i = 0 to n_old - 1 do
    let p = t.pfx.(i) in
    let k = not (List.exists (Prefix.equal p) removed) && not (overwritten p) in
    keep.(i) <- k;
    if k then incr n_keep
  done;
  let n_new = !n_keep + n_add in
  if n_new = 0 then build []
  else begin
    let dummy_p = if n_old > 0 then t.pfx.(0) else fst added.(0) in
    let dummy_v = if n_old > 0 then t.values.(0) else snd added.(0) in
    let pfx' = Array.make n_new dummy_p in
    let values' = Array.make n_new dummy_v in
    let old2new = Array.make (max 1 n_old) (-1) in
    (* Merge the surviving old bindings with the added ones (both
       sorted, and disjoint by construction of [keep]). *)
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < n_old || !j < n_add do
      if !i < n_old && not keep.(!i) then incr i
      else if
        !j >= n_add
        || (!i < n_old && Prefix.compare t.pfx.(!i) (fst added.(!j)) < 0)
      then begin
        pfx'.(!k) <- t.pfx.(!i);
        values'.(!k) <- remap t.values.(!i);
        old2new.(!i) <- !k;
        incr i;
        incr k
      end
      else begin
        pfx'.(!k) <- fst added.(!j);
        values'.(!k) <- snd added.(!j);
        incr j;
        incr k
      end
    done;
    (* Slots whose root cover or bucket could have changed. *)
    let dirty = Array.make slots false in
    let mark p =
      if Prefix.len p <= 16 then
        for s = slot_of (Prefix.first p) to slot_of (Prefix.last p) do
          dirty.(s) <- true
        done
      else dirty.(slot_of (Prefix.network p)) <- true
    in
    List.iter mark removed;
    Array.iter (fun (p, _) -> mark p) added;
    let find_idx p =
      let rec go lo hi =
        if lo >= hi then -1
        else
          let mid = (lo + hi) / 2 in
          match Prefix.compare p pfx'.(mid) with
          | 0 -> mid
          | c when c < 0 -> go lo mid
          | _ -> go (mid + 1) hi
      in
      go 0 n_new
    in
    let short' = Array.make slots (-1) in
    for s = 0 to slots - 1 do
      if not dirty.(s) then begin
        let o = t.short.(s) in
        short'.(s) <- (if o >= 0 then old2new.(o) else -1)
      end
      else begin
        (* Longest <=/16 cover of the slot: at most 17 exact probes. *)
        let base = Ipv4.of_int (s lsl 16) in
        let l = ref 16 in
        while short'.(s) < 0 && !l >= 0 do
          let idx = find_idx (Prefix.make base !l) in
          if idx >= 0 then short'.(s) <- idx else decr l
        done
      end
    done;
    (* First index in [pfx'] whose network is >= [v] (as an int). *)
    let lower_bound v =
      let lo = ref 0 and hi = ref n_new in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Ipv4.to_int (Prefix.network pfx'.(mid)) < v then lo := mid + 1
        else hi := mid
      done;
      !lo
    in
    let dirty_buckets = Hashtbl.create 16 in
    let total = ref 0 in
    for s = 0 to slots - 1 do
      if dirty.(s) then begin
        let lo = lower_bound (s lsl 16) and hi = lower_bound ((s + 1) lsl 16) in
        let b = ref [] in
        for idx = lo to hi - 1 do
          if Prefix.len pfx'.(idx) > 16 then b := idx :: !b
        done;
        let a = Array.of_list !b in
        Array.sort
          (fun i j ->
            match Int.compare (Prefix.len pfx'.(j)) (Prefix.len pfx'.(i)) with
            | 0 -> Prefix.compare pfx'.(i) pfx'.(j)
            | c -> c)
          a;
        Hashtbl.replace dirty_buckets s a;
        total := !total + Array.length a
      end
      else total := !total + (t.long_off.(s + 1) - t.long_off.(s))
    done;
    let long_off' = Array.make (slots + 1) 0 in
    let long_idx' = Array.make !total 0 in
    let cursor = ref 0 in
    for s = 0 to slots - 1 do
      long_off'.(s) <- !cursor;
      match Hashtbl.find_opt dirty_buckets s with
      | Some a ->
        Array.iter
          (fun idx ->
            long_idx'.(!cursor) <- idx;
            incr cursor)
          a
      | None ->
        for k = t.long_off.(s) to t.long_off.(s + 1) - 1 do
          long_idx'.(!cursor) <- old2new.(t.long_idx.(k));
          incr cursor
        done
    done;
    long_off'.(slots) <- !cursor;
    { pfx = pfx'; values = values'; short = short'; long_off = long_off';
      long_idx = long_idx' }
  end

let lookup t addr =
  let i = lookup_idx t addr in
  if i < 0 then None else Some (t.pfx.(i), t.values.(i))

let find_exact t p =
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      match Prefix.compare p t.pfx.(mid) with
      | 0 -> Some t.values.(mid)
      | c when c < 0 -> go lo mid
      | _ -> go (mid + 1) hi
  in
  go 0 (Array.length t.pfx)

let fold f t acc =
  let acc = ref acc in
  for i = 0 to Array.length t.pfx - 1 do
    acc := f t.pfx.(i) t.values.(i) !acc
  done;
  !acc
