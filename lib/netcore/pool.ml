(* Fixed-size domain pool. One shared batch slot: the submitter installs
   a batch under the mutex and bumps the generation counter; workers pull
   item indices from an atomic cursor, so batch items are load-balanced
   across domains without per-item locking. Completion is tracked under
   the mutex to let the submitter sleep on a condition variable. *)

type batch = {
  total : int;
  next : int Atomic.t;
  mutable completed : int;  (* guarded by the pool mutex *)
  worker : unit -> int -> unit;
      (* [worker ()] runs the per-worker init and returns the item
         runner; the runner never raises (exceptions are stored in the
         result slots by the submitter's closures). *)
}

type t = {
  m : Mutex.t;
  work_ready : Condition.t;
  batch_done : Condition.t;
  mutable batch : batch option;
  mutable generation : int;
  mutable stop : bool;
  mutable busy : bool;
  mutable workers : unit Domain.t array;
  size : int;
}

let size t = t.size

let rec worker_loop t last_gen =
  Mutex.lock t.m;
  while (not t.stop) && (t.generation = last_gen || t.batch = None) do
    Condition.wait t.work_ready t.m
  done;
  if t.stop then Mutex.unlock t.m
  else begin
    let gen = t.generation in
    let b = Option.get t.batch in
    Mutex.unlock t.m;
    let run_item = b.worker () in
    let rec drain () =
      let i = Atomic.fetch_and_add b.next 1 in
      if i < b.total then begin
        run_item i;
        Mutex.lock t.m;
        b.completed <- b.completed + 1;
        if b.completed = b.total then Condition.broadcast t.batch_done;
        Mutex.unlock t.m;
        drain ()
      end
    in
    drain ();
    worker_loop t gen
  end

let create ?domains () =
  let n =
    match domains with
    | Some n -> max 1 n
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let t =
    { m = Mutex.create (); work_ready = Condition.create ();
      batch_done = Condition.create (); batch = None; generation = 0;
      stop = false; busy = false; workers = [||]; size = n }
  in
  t.workers <- Array.init n (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let map_init t ~init f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let worker () =
      (* A failing init poisons only the items this worker pulls; other
         workers (whose init succeeded) keep draining the batch. *)
      let state =
        try Ok (init ()) with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      fun i ->
        match state with
        | Error (e, bt) -> errors.(i) <- Some (e, bt)
        | Ok s -> (
          try results.(i) <- Some (f s arr.(i))
          with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()))
    in
    let b = { total = n; next = Atomic.make 0; completed = 0; worker } in
    Mutex.lock t.m;
    if t.stop then begin
      Mutex.unlock t.m;
      invalid_arg "Pool: pool is shut down"
    end;
    if t.busy then begin
      Mutex.unlock t.m;
      invalid_arg "Pool: concurrent batch submission"
    end;
    t.busy <- true;
    t.batch <- Some b;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    while b.completed < b.total do
      Condition.wait t.batch_done t.m
    done;
    t.batch <- None;
    t.busy <- false;
    Mutex.unlock t.m;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.to_list (Array.map Option.get results)
  end

let map t f items = map_init t ~init:(fun () -> ()) (fun () x -> f x) items
let run t thunks = map t (fun th -> th ()) thunks

let shutdown t =
  Mutex.lock t.m;
  let ws = t.workers in
  t.stop <- true;
  t.workers <- [||];
  Condition.broadcast t.work_ready;
  Mutex.unlock t.m;
  Array.iter Domain.join ws

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
