(* Invariant: sorted, disjoint, non-adjacent inclusive intervals. *)

type t = (int * int) list

let empty = []

let is_empty = function
  | [] -> true
  | _ -> false

let rec insert lo hi = function
  | [] -> [ (lo, hi) ]
  | (a, b) :: rest ->
    if hi + 1 < a then (lo, hi) :: (a, b) :: rest
    else if b + 1 < lo then (a, b) :: insert lo hi rest
    else insert (min lo a) (max hi b) rest

let add_range lo hi t =
  let lo = Ipv4.to_int lo and hi = Ipv4.to_int hi in
  if hi < lo then t else insert lo hi t

let add_prefix p t = add_range (Prefix.first p) (Prefix.last p) t

let remove_range lo hi t =
  let lo = Ipv4.to_int lo and hi = Ipv4.to_int hi in
  if hi < lo then t
  else
    List.concat_map
      (fun (a, b) ->
        if b < lo || a > hi then [ (a, b) ]
        else
          let left = if a < lo then [ (a, lo - 1) ] else [] in
          let right = if b > hi then [ (hi + 1, b) ] else [] in
          left @ right)
      t

let remove_prefix p t = remove_range (Prefix.first p) (Prefix.last p) t
let mem addr t = List.exists (fun (a, b) -> a <= Ipv4.to_int addr && Ipv4.to_int addr <= b) t
let ranges t = List.map (fun (a, b) -> (Ipv4.of_int a, Ipv4.of_int b)) t
let cardinal t = List.fold_left (fun n (a, b) -> n + (b - a + 1)) 0 t

(* Greedy CIDR decomposition: repeatedly emit the largest aligned block
   starting at the range's low end. *)
let prefixes_of_range lo hi =
  let rec go lo acc =
    if lo > hi then List.rev acc
    else
      let max_align =
        if lo = 0 then 32
        else
          let rec tz n acc = if n land 1 = 1 then acc else tz (n lsr 1) (acc + 1) in
          tz lo 0
      in
      let rec fit bits =
        (* Largest block of size 2^bits that is aligned and fits in range. *)
        if bits > 0 && (bits > max_align || lo + (1 lsl bits) - 1 > hi) then fit (bits - 1)
        else bits
      in
      let bits = fit 32 in
      let p = Prefix.make (Ipv4.of_int lo) (32 - bits) in
      go (lo + (1 lsl bits)) (p :: acc)
  in
  go lo []

let to_prefixes t = List.concat_map (fun (a, b) -> prefixes_of_range a b) t
let union a b = List.fold_left (fun t (lo, hi) -> insert lo hi t) a b

let diff a b =
  List.fold_left (fun t (lo, hi) -> remove_range (Ipv4.of_int lo) (Ipv4.of_int hi) t) a b

let inter a b = diff a (diff a b)
let equal (a : t) (b : t) = a = b

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (a, b) ->
         if a = b then Ipv4.pp ppf (Ipv4.of_int a)
         else Format.fprintf ppf "%a-%a" Ipv4.pp (Ipv4.of_int a) Ipv4.pp (Ipv4.of_int b)))
    t
