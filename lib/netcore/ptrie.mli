(** Binary radix trie keyed by IPv4 prefixes, supporting longest-prefix
    match. Persistent (each update returns a new trie). *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

(** [add p v t] binds [p] to [v], replacing any previous binding of [p]. *)
val add : Prefix.t -> 'a -> 'a t -> 'a t

(** [update p f t] applies [f] to the current binding of [p] (or [None]). *)
val update : Prefix.t -> ('a option -> 'a option) -> 'a t -> 'a t

(** [remove p t] removes the exact binding of [p] if present. *)
val remove : Prefix.t -> 'a t -> 'a t

(** [find_exact p t] is the value bound to exactly [p]. *)
val find_exact : Prefix.t -> 'a t -> 'a option

(** [lpm addr t] is the longest-prefix match for [addr]: the most specific
    prefix in [t] containing [addr], with its value. *)
val lpm : Ipv4.t -> 'a t -> (Prefix.t * 'a) option

(** [matches addr t] is all prefixes in [t] containing [addr], most specific
    first. *)
val matches : Ipv4.t -> 'a t -> (Prefix.t * 'a) list

(** [subtree p t] is all bindings at or below [p] (i.e. subsumed by [p]). *)
val subtree : Prefix.t -> 'a t -> (Prefix.t * 'a) list

val fold : (Prefix.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
val cardinal : 'a t -> int
val bindings : 'a t -> (Prefix.t * 'a) list
val of_list : (Prefix.t * 'a) list -> 'a t
