type t = int

let pp ppf a = Format.fprintf ppf "AS%d" a
let to_string a = Printf.sprintf "AS%d" a

let of_string s =
  let s =
    if String.length s > 2 && (String.sub s 0 2 = "AS" || String.sub s 0 2 = "as") then
      String.sub s 2 (String.length s - 2)
    else s
  in
  match int_of_string_opt s with
  | Some n when n >= 0 -> Some n
  | _ -> None

let compare = Int.compare
let equal = Int.equal

module Set = Set.Make (Int)
module Map = Map.Make (Int)
module Tbl = Hashtbl.Make (Int)

let counts l =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a -> Hashtbl.replace tbl a (1 + Option.value ~default:0 (Hashtbl.find_opt tbl a)))
    l;
  Hashtbl.fold (fun a n acc -> (a, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let most_frequent l =
  match counts l with
  | [] -> None
  | cs ->
    let best =
      List.fold_left
        (fun (ba, bn) (a, n) -> if n > bn then (a, n) else (ba, bn))
        (List.hd cs) (List.tl cs)
    in
    Some (fst best)
