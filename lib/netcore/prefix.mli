(** CIDR IPv4 prefixes in canonical form (host bits zeroed). *)

type t = private { network : Ipv4.t; len : int }

(** [make addr len] canonicalizes [addr] by masking host bits.
    Raises [Invalid_argument] if [len] is outside [0, 32]. *)
val make : Ipv4.t -> int -> t

val network : t -> Ipv4.t
val len : t -> int

(** [of_string "192.0.2.0/24"] parses CIDR notation. *)
val of_string : string -> t option

val of_string_exn : string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool

(** [mem addr p] is true when [addr] falls inside [p]. *)
val mem : Ipv4.t -> t -> bool

(** [subsumes p q] is true when [q] is equal to or more specific than [p]. *)
val subsumes : p:t -> q:t -> bool

(** [first p] is the network address, [last p] the broadcast address. *)
val first : t -> Ipv4.t

val last : t -> Ipv4.t

(** [size p] is the number of addresses covered, as an int. *)
val size : t -> int

(** [split p] halves [p] into its two /len+1 children.
    Raises [Invalid_argument] on a /32. *)
val split : t -> t * t

(** [host_prefix addr] is [addr/32]. *)
val host_prefix : Ipv4.t -> t

(** [of_first_last first last] is the prefix with exactly that range, if the
    range is aligned; [None] otherwise. *)
val of_first_last : Ipv4.t -> Ipv4.t -> t option

(** [subnet_mate addr len] is the other address of [addr]'s /31 (len = 31)
    or the other usable address of its /30 (len = 30). For /30 the network
    and broadcast addresses have no mate and yield [None]. *)
val subnet_mate : Ipv4.t -> int -> Ipv4.t option

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
