(** Sets of IPv4 addresses represented as sorted disjoint intervals.
    Used to compute the address blocks an AS routes: the covering prefix
    minus its more-specific subnets, decomposed back into maximal CIDR
    blocks (§5.3 "Generate list of address blocks to probe"). *)

type t

val empty : t
val is_empty : t -> bool

(** [add_range lo hi t] adds the inclusive range [lo, hi]. *)
val add_range : Ipv4.t -> Ipv4.t -> t -> t

val add_prefix : Prefix.t -> t -> t

(** [remove_range lo hi t] removes the inclusive range [lo, hi]. *)
val remove_range : Ipv4.t -> Ipv4.t -> t -> t

val remove_prefix : Prefix.t -> t -> t
val mem : Ipv4.t -> t -> bool

(** [ranges t] is the sorted list of disjoint inclusive ranges. *)
val ranges : t -> (Ipv4.t * Ipv4.t) list

(** [cardinal t] is the number of addresses in the set. *)
val cardinal : t -> int

(** [to_prefixes t] decomposes the set into the minimal list of CIDR
    blocks covering exactly the set, sorted by address. *)
val to_prefixes : t -> Prefix.t list

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
