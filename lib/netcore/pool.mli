(** A fixed-size pool of worker domains for embarrassingly parallel
    fan-out (per-vantage-point inference, per-VP forwarding sweeps).

    Domains are spawned once at {!create} and reused across batches, so
    the (multi-millisecond) domain spawn cost is not paid per work item.
    Results are always collected in submission order: running the same
    batch on pools of different sizes — or with no pool at all — yields
    the same list, which is what keeps multi-VP experiment output
    byte-identical between [-j 1] and [-j N].

    Work items must not share mutable state unless that state is
    properly synchronized; the intended discipline is that each item (or
    each worker, via {!map_init}) owns its mutable working set and only
    reads shared frozen structures. *)

type t

(** [create ?domains ()] spawns a pool of [domains] workers (default
    {!Domain.recommended_domain_count}; clamped to at least 1). *)
val create : ?domains:int -> unit -> t

(** Number of worker domains. *)
val size : t -> int

(** [map pool f items] applies [f] to every item on the pool's workers
    and returns the results in the order of [items]. If any application
    raises, the first exception in submission order is re-raised after
    the whole batch has drained (the pool stays usable). *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [map_init pool ~init f items] is {!map} with worker-local state:
    each worker evaluates [init ()] once per batch and threads the
    result through every item it processes. Use this to give each
    domain its own mutable scratch structures (e.g. a forwarding-table
    memo) that are reused across the items that land on that worker. *)
val map_init : t -> init:(unit -> 's) -> ('s -> 'a -> 'b) -> 'a list -> 'b list

(** [run pool thunks] evaluates the thunks on the pool; results in
    submission order. *)
val run : t -> (unit -> 'a) list -> 'a list

(** Shut the workers down and join them. Idempotent; using the pool
    afterwards raises [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ?domains f] runs [f] over a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)
val with_pool : ?domains:int -> (t -> 'a) -> 'a
