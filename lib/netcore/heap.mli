(** Array-backed binary min-heap over an explicit comparison.

    Built for the Dijkstra loops in {!Routing}: [push]/[pop_opt] are
    O(log n) with no allocation beyond occasional array doubling, and
    duplicate elements are allowed — a caller that improves a key simply
    pushes the element again and skips the stale entry when it surfaces
    (lazy deletion), which replaces decrease-key. Elements with equal
    [cmp] order surface in unspecified order, so callers needing a total
    pop order must make [cmp] total (e.g. compare the payload too). *)

type 'a t

(** [create cmp] is an empty heap ordered by [cmp] (minimum first). *)
val create : ('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [clear t] empties [t] in O(1). The backing array keeps its capacity
    (and references to dropped elements, until they are overwritten). *)
val clear : 'a t -> unit

val push : 'a t -> 'a -> unit

(** [pop_opt t] removes and returns a minimal element. *)
val pop_opt : 'a t -> 'a option

(** [peek_opt t] is a minimal element, without removing it. *)
val peek_opt : 'a t -> 'a option

val of_list : ('a -> 'a -> int) -> 'a list -> 'a t

(** [to_sorted_list t] drains [t] in nondecreasing order. *)
val to_sorted_list : 'a t -> 'a list
