(* Uncompressed binary trie over the first [len] bits of the prefix.
   Depth is bounded by 32, so path copying is cheap and no edge
   compression is needed for our workloads. *)

type 'a t = Empty | Node of { value : 'a option; zero : 'a t; one : 'a t }

let empty = Empty

let is_empty = function
  | Empty -> true
  | Node _ -> false

let node value zero one =
  match (value, zero, one) with
  | None, Empty, Empty -> Empty
  | _ -> Node { value; zero; one }

let rec update_at addr len depth f t =
  let value, zero, one =
    match t with
    | Empty -> (None, Empty, Empty)
    | Node { value; zero; one } -> (value, zero, one)
  in
  if depth = len then node (f value) zero one
  else if Ipv4.bit addr depth then node value zero (update_at addr len (depth + 1) f one)
  else node value (update_at addr len (depth + 1) f zero) one

let update p f t = update_at (Prefix.network p) (Prefix.len p) 0 f t
let add p v t = update p (fun _ -> Some v) t
let remove p t = update p (fun _ -> None) t

let find_exact p t =
  let addr = Prefix.network p and len = Prefix.len p in
  let rec go depth = function
    | Empty -> None
    | Node { value; zero; one } ->
      if depth = len then value
      else go (depth + 1) (if Ipv4.bit addr depth then one else zero)
  in
  go 0 t

let matches addr t =
  let rec go depth acc = function
    | Empty -> acc
    | Node { value; zero; one } ->
      let acc =
        match value with
        | Some v -> (Prefix.make addr depth, v) :: acc
        | None -> acc
      in
      if depth = 32 then acc
      else go (depth + 1) acc (if Ipv4.bit addr depth then one else zero)
  in
  go 0 [] t

let lpm addr t =
  match matches addr t with
  | [] -> None
  | best :: _ -> Some best

let rec fold_node prefix_addr depth f t acc =
  match t with
  | Empty -> acc
  | Node { value; zero; one } ->
    let acc =
      match value with
      | Some v -> f (Prefix.make (Ipv4.of_int prefix_addr) depth) v acc
      | None -> acc
    in
    let acc = fold_node prefix_addr (depth + 1) f zero acc in
    if depth = 32 then acc
    else fold_node (prefix_addr lor (1 lsl (31 - depth))) (depth + 1) f one acc

let fold f t acc = fold_node 0 0 f t acc
let iter f t = fold (fun p v () -> f p v) t ()
let cardinal t = fold (fun _ _ n -> n + 1) t 0
let bindings t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])
let of_list l = List.fold_left (fun t (p, v) -> add p v t) empty l

let subtree p t =
  let addr = Prefix.network p and len = Prefix.len p in
  let rec descend depth = function
    | Empty -> Empty
    | Node { zero; one; _ } as n ->
      if depth = len then n
      else descend (depth + 1) (if Ipv4.bit addr depth then one else zero)
  in
  let sub = descend 0 t in
  List.rev (fold_node (Ipv4.to_int (Prefix.network p)) len (fun q v acc -> (q, v) :: acc) sub [])
