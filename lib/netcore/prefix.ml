type t = { network : Ipv4.t; len : int }

let mask_of_len len = if len = 0 then 0 else 0xFFFF_FFFF lsl (32 - len) land 0xFFFF_FFFF

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: len out of range";
  { network = Ipv4.of_int (Ipv4.to_int addr land mask_of_len len); len }

let network p = p.network
let len p = p.len

let of_string s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
    let addr = String.sub s 0 i in
    let l = String.sub s (i + 1) (String.length s - i - 1) in
    match (Ipv4.of_string addr, int_of_string_opt l) with
    | Some a, Some len when len >= 0 && len <= 32 ->
      let p = make a len in
      if Ipv4.equal p.network a then Some p else None
    | _ -> None)

let of_string_exn s =
  match of_string s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string_exn: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.network) p.len
let pp ppf p = Format.pp_print_string ppf (to_string p)

let compare a b =
  match Ipv4.compare a.network b.network with
  | 0 -> Int.compare a.len b.len
  | c -> c

let equal a b = compare a b = 0

let mem addr p =
  Ipv4.to_int addr land mask_of_len p.len = Ipv4.to_int p.network

let subsumes ~p ~q = q.len >= p.len && mem q.network p
let first p = p.network
let last p = Ipv4.of_int (Ipv4.to_int p.network lor (lnot (mask_of_len p.len) land 0xFFFF_FFFF))
let size p = 1 lsl (32 - p.len)

let split p =
  if p.len >= 32 then invalid_arg "Prefix.split: /32";
  let lo = { network = p.network; len = p.len + 1 } in
  let hi =
    { network = Ipv4.of_int (Ipv4.to_int p.network lor (1 lsl (32 - p.len - 1)));
      len = p.len + 1 }
  in
  (lo, hi)

let host_prefix addr = { network = addr; len = 32 }

let of_first_last first last =
  let f = Ipv4.to_int first and l = Ipv4.to_int last in
  if l < f then None
  else
    let n = l - f + 1 in
    (* Must be a power of two and aligned on its own size. *)
    if n land (n - 1) <> 0 then None
    else
      let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
      let bits = log2 n 0 in
      if f land (n - 1) <> 0 then None else Some (make first (32 - bits))

let subnet_mate addr len =
  let a = Ipv4.to_int addr in
  match len with
  | 31 -> Some (Ipv4.of_int (a lxor 1))
  | 30 ->
    let pos = a land 3 in
    if pos = 1 then Some (Ipv4.of_int (a + 1))
    else if pos = 2 then Some (Ipv4.of_int (a - 1))
    else None
  | _ -> invalid_arg "Prefix.subnet_mate: len must be 30 or 31"

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
