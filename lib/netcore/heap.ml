(* Array-backed binary min-heap. Replaces the [Set.Make]-as-priority-
   queue pattern in the Dijkstra loops: no per-operation rebalancing
   allocation, O(1) peek, and duplicates are allowed (callers that relax
   keys push again and skip stale entries on pop, which is cheaper than
   a decrease-key). *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable a : 'a array;  (* slots [0, n) are live; the rest are garbage *)
  mutable n : int;
}

let create cmp = { cmp; a = [||]; n = 0 }
let length t = t.n
let is_empty t = t.n = 0

(* Dropping [n] keeps the stale elements reachable from [a], but every
   caller either drains the heap or discards it right after. *)
let clear t = t.n <- 0

let grow t x =
  if t.n = Array.length t.a then begin
    let cap = max 16 (2 * t.n) in
    let a = Array.make cap x in
    Array.blit t.a 0 a 0 t.n;
    t.a <- a
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.a.(i) t.a.(parent) < 0 then begin
      let tmp = t.a.(i) in
      t.a.(i) <- t.a.(parent);
      t.a.(parent) <- tmp;
      sift_up t parent
    end
  end

let push t x =
  grow t x;
  t.a.(t.n) <- x;
  t.n <- t.n + 1;
  sift_up t (t.n - 1)

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.n then begin
    let r = l + 1 in
    let m = if r < t.n && t.cmp t.a.(r) t.a.(l) < 0 then r else l in
    if t.cmp t.a.(m) t.a.(i) < 0 then begin
      let tmp = t.a.(i) in
      t.a.(i) <- t.a.(m);
      t.a.(m) <- tmp;
      sift_down t m
    end
  end

let peek_opt t = if t.n = 0 then None else Some t.a.(0)

let pop_opt t =
  if t.n = 0 then None
  else begin
    let root = t.a.(0) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.a.(0) <- t.a.(t.n);
      sift_down t 0
    end;
    Some root
  end

let of_list cmp l =
  let t = create cmp in
  List.iter (push t) l;
  t

let to_sorted_list t =
  let rec drain acc = match pop_opt t with None -> List.rev acc | Some x -> drain (x :: acc) in
  drain []
