(** Deterministic splitmix64 PRNG. Every source of randomness in the
    simulator flows through one of these so that scenarios are reproducible
    bit-for-bit across runs and machines. *)

type t

val create : int -> t

(** [split t] derives an independent stream; the parent advances. *)
val split : t -> t

(** [int t n] is uniform in [0, n). Raises on [n <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)
val int_in : t -> int -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t ~p] is true with probability [p]. *)
val bool : t -> p:float -> bool

(** [pick t l] is a uniform element of [l]. Raises on empty list. *)
val pick : t -> 'a list -> 'a

(** [pick_array t a] is a uniform element of [a]. *)
val pick_array : t -> 'a array -> 'a

(** [shuffle t l] is a uniform permutation of [l]. *)
val shuffle : t -> 'a list -> 'a list

(** [sample t n l] is [n] distinct elements of [l] (all of [l] when
    [n >= length l]), in shuffled order. *)
val sample : t -> int -> 'a list -> 'a list

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [weighted t l] picks from [(weight, value)] pairs proportionally to
    weight. Raises on empty list or non-positive total weight. *)
val weighted : t -> (float * 'a) list -> 'a
