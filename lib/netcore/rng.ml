type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = mix (bits64 t) }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v /. 9007199254740992.0

let bool t ~p = float t < p

let pick t l =
  match l with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth l (int t (List.length l))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_array: empty array";
  a.(int t (Array.length a))

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample t n l =
  let shuffled = shuffle t l in
  List.filteri (fun i _ -> i < n) shuffled

let weighted t l =
  if l = [] then invalid_arg "Rng.weighted: empty list";
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 l in
  if total <= 0.0 then invalid_arg "Rng.weighted: non-positive total weight";
  let target = float t *. total in
  let rec go acc = function
    | [] -> snd (List.hd (List.rev l))
    | (w, v) :: rest -> if acc +. w > target then v else go (acc +. w) rest
  in
  go 0.0 l
