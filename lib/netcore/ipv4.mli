(** IPv4 addresses represented as integers in [0, 2^32). *)

type t = private int

val zero : t
val broadcast : t

(** [of_int i] masks [i] to 32 bits. *)
val of_int : int -> t

val to_int : t -> int

(** [of_octets a b c d] builds [a.b.c.d]; each octet is masked to 8 bits. *)
val of_octets : int -> int -> int -> int -> t

val to_octets : t -> int * int * int * int

(** [of_string s] parses dotted-quad notation. *)
val of_string : string -> t option

val of_string_exn : string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** [succ a] is the next address; saturates at {!broadcast}. *)
val succ : t -> t

(** [pred a] is the previous address; saturates at {!zero}. *)
val pred : t -> t

(** [add a n] is [a + n], clamped to the address space. *)
val add : t -> int -> t

(** [diff a b] is [a - b] as an integer. *)
val diff : t -> t -> int

(** [bit a i] is bit [i] of [a], where bit 0 is the most significant bit
    (network order), bit 31 the least significant. *)
val bit : t -> int -> bool

(** [private_use a] is true for RFC1918 space. *)
val private_use : t -> bool

(** [reserved a] is true for addresses unusable as unicast targets:
    0.0.0.0/8, loopback, link-local, multicast and class E. *)
val reserved : t -> bool

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
