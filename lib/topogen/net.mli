(** The simulated router-level internetwork: ground truth for experiments,
    probed only through {!Probesim.Engine} by the inference code.

    Terminology follows the paper: an {e interdomain link} connects border
    routers of two ASes, numbered from a /30 or /31 supplied by one side
    (usually the provider), or from an IXP peering LAN. *)

open Netcore

type as_kind = Tier1 | Transit | Access | Content | Enterprise | Stub | Ree
(** [Ree] is a research-and-education network (the R&E validation case). *)

(** How an AS announces its prefixes to direct neighbors: everywhere, or
    each prefix pinned to specific interconnect links (Akamai-style,
    drives Figures 15 and 16). *)
type announce_policy = All_links | Per_link

(** Edge response behaviour of an AS toward probes entering it (§4, §5.4.2,
    §5.4.8): [Open] forwards and responds normally; [Firewall] responds
    with TTL-expired at the border but drops probes going deeper;
    [Echo_only] firewalls and disables TTL-expired but answers echo probes
    to its own addresses; [Silent] never responds at all. *)
type edge_filter = Open | Firewall | Echo_only | Silent

type as_node = {
  asn : Asn.t;
  kind : as_kind;
  org : string;
  cities : Geo.city list;
  mutable prefixes : Prefix.t list;  (** originated in BGP *)
  mutable infra : Prefix.t list;  (** infrastructure blocks (may be unannounced) *)
  announce_infra : bool;  (** false: infra space is unrouted (§5.4.3) *)
  filter : edge_filter;
  policy : announce_policy;
}

(** Source-address selection for TTL-expired replies (§4 challenges 2, 4):
    [Inbound] uses the interface the probe arrived on (common case);
    [Toward_reply] uses the interface that transmits the reply (RFC 1812
    advice — the third-party address generator); [Toward_dst] uses the
    interface the probe would have departed from (virtual-router case). *)
type ttl_src_mode = Inbound | Toward_reply | Toward_dst

(** IP-ID counter behaviour, the signal for Ally/MIDAR: [Shared_counter]
    is one central counter for all interfaces; [Per_iface] defeats Ally;
    [Random_id] and [Zero_id] are unresponsive-to-velocity cases. *)
type ipid_mode = Shared_counter | Per_iface | Random_id | Zero_id

(** Mercator behaviour for UDP probes to unused ports: [Canonical]
    replies with a fixed router address; [Probed_addr] replies with the
    probed address (useless for aliasing); [No_udp] stays quiet. *)
type udp_mode = Canonical | Probed_addr | No_udp

type behavior = {
  ttl_expired : bool;  (** sends TTL-expired at all *)
  ttl_src : ttl_src_mode;
  echo : bool;  (** answers ICMP echo to its own addresses *)
  unreach : bool;  (** sends destination unreachable as a prefix's home *)
  udp : udp_mode;
  ipid : ipid_mode;
}

type router = {
  rid : int;
  owner : Asn.t;
  city : Geo.city;
  behavior : behavior;
  mutable canonical : Ipv4.t option;  (** loopback used by [Canonical] *)
  mutable ifaces : iface list;
}

and iface = { addr : Ipv4.t; link : int }

type link_kind =
  | Internal  (** intra-AS *)
  | Private_interconnect of Prefix.t  (** the /30 or /31 subnet *)
  | Ixp_lan of string  (** peering across a named IXP LAN *)

type link = {
  lid : int;
  kind : link_kind;
  a : int * Ipv4.t;  (** router id, interface address *)
  b : int * Ipv4.t;
  weight : float;  (** IGP metric (geographic distance based) *)
  live : bool;  (** false once retired by {!remove_link} *)
}

type t

val create : unit -> t
val add_as : t -> as_node -> unit
val as_node : t -> Asn.t -> as_node
val find_as : t -> Asn.t -> as_node option
val ases : t -> as_node list
val asns : t -> Asn.Set.t

val add_router :
  t -> owner:Asn.t -> city:Geo.city -> behavior:behavior -> router

val router : t -> int -> router
val router_count : t -> int
val routers_of : t -> Asn.t -> router list

(** [add_link t kind (r1, a1) (r2, a2) ~weight] wires two routers and
    registers both interface addresses. *)
val add_link : t -> link_kind -> router * Ipv4.t -> router * Ipv4.t -> weight:float -> link

val link : t -> int -> link

val link_count : t -> int
(** Allocated link slots, including retired ones: lids stay dense so
    flat per-lid arrays remain valid across {!remove_link}. *)

val links : t -> link list
(** Live links only. *)

(** [remove_link t lid] retires a link in place: it disappears from
    {!links}/{!neighbors}, both routers drop the interface, and the
    interface addresses leave the address index (canonical addresses
    stay). Idempotent; the lid remains allocated. *)
val remove_link : t -> int -> unit

(** [peer_of t link rid] is the far (router, address) of [link] seen from
    router [rid]. *)
val peer_of : t -> link -> int -> int * Ipv4.t

(** [neighbors t rid] is each (link, far router id) adjacent to [rid]. *)
val neighbors : t -> int -> (link * int) list

(** [internal_neighbors t rid] restricts to intra-AS links. *)
val internal_neighbors : t -> int -> (link * int) list

(** [owner_of_addr t addr] is the router owning interface [addr]. *)
val owner_of_addr : t -> Ipv4.t -> router option

(** [set_home t p rid] declares router [rid] as the home of originated
    prefix [p]: probes to addresses of [p] terminate there. *)
val set_home : t -> Prefix.t -> int -> unit

(** [home_of t addr] is the home router of the longest matching
    originated prefix. *)
val home_of : t -> Ipv4.t -> router option

(** [interdomain_links t] is every non-internal link. *)
val interdomain_links : t -> link list

(** [interdomain_links_between t x y] is every interdomain link whose
    endpoint routers are owned by [x] and [y]. *)
val interdomain_links_between : t -> Asn.t -> Asn.t -> link list

(** [set_canonical t r addr] assigns the router's loopback and indexes it. *)
val set_canonical : t -> router -> Ipv4.t -> unit
