(** Temporal churn over a generated world: a seeded, validated schedule
    of topology events applied on the simulated clock — the input side
    of the incremental re-freeze path ([Routing.Bgp.refreeze],
    [Routing.Forwarding.patch]).

    Every event preserves the two invariants the delta path depends on:
    new ASNs sort strictly above every existing ASN (the packed
    snapshot's interned axis only appends), and the internal topology
    of a pre-existing AS never changes (frozen IGP rows stay exact —
    link events are interdomain and new routers belong to new ASes).

    The [Net.t] is mutated in place; previously frozen routing
    snapshots stay valid because they only read their own packed
    arrays. Functional world-record fields (relationships, delegations,
    as2org, primary exits) are rebuilt into the returned world. *)

open Netcore

(** Event classes, in the schedule's weighting order. *)
type kind =
  | Link_add  (** parallel interconnect between already-related ASes *)
  | Link_remove  (** retire one of >= 2 parallel interconnects *)
  | New_customer  (** fresh stub AS buying transit from the host *)
  | Depeer  (** drop a p2p relationship and all its links *)
  | Aggregate  (** two adjacent same-length prefixes -> their parent *)
  | Deaggregate  (** one prefix -> its two halves *)

val all_kinds : kind list
val kind_label : kind -> string

type event =
  | Added_link of { x : Asn.t; y : Asn.t; lid : int }
  | Removed_link of { x : Asn.t; y : Asn.t; lid : int }
  | Customer_joined of {
      asn : Asn.t;
      providers : Asn.Set.t;
      prefix : Prefix.t;
    }
  | Depeered of { x : Asn.t; y : Asn.t }
  | Aggregated of { asn : Asn.t; parent : Prefix.t; halves : Prefix.t * Prefix.t }
  | Deaggregated of {
      asn : Asn.t;
      parent : Prefix.t;
      halves : Prefix.t * Prefix.t;
    }

(** An applied event stamped with its simulated time (seconds). *)
type timed = { ev_time : float; ev : event }

val kind_of : event -> kind

(** One-line rendering, stable across runs — feeds {!log_digest} and
    the longitudinal experiment's manifest. *)
val describe : timed -> string

(** [log_digest prev events] chains the event log into a hex digest for
    store keying. [log_digest prev [] = prev], so an unevolved world
    keys exactly as before (the zero-churn no-op guarantee). *)
val log_digest : string -> timed list -> string

type schedule = {
  ev_seed : int;
  ev_epochs : int;  (** evolution epochs after the initial freeze *)
  ev_batch : int;  (** events attempted per epoch *)
  ev_interval : float;  (** simulated seconds per epoch *)
  w_link_add : float;
  w_link_remove : float;
  w_new_customer : float;
  w_depeer : float;
  w_aggregate : float;
  w_deaggregate : float;
}

val default_schedule : schedule

(** Rejects schedules outside the driver's domain (negative counts,
    non-positive or non-finite interval, weights that are not finite
    non-negative reals), in {!Gen.validate_params}' fail-fast style. *)
val validate_schedule : schedule -> unit

(** [advance sched ~epoch w] applies epoch [epoch]'s batch ([epoch >=
    1]; epoch 0 is the unevolved world) and returns the evolved world
    with the applied events in order. Deterministic in
    [(sched.ev_seed, epoch, w)]; an event class with no eligible site
    falls through to the next class, so fewer than [ev_batch] events
    may apply. Convert the events with [Routing.Bgp.churn_of_events]
    to drive the incremental re-freeze. *)
val advance : schedule -> epoch:int -> Gen.world -> Gen.world * timed list

(** [force ~seed kind w] applies exactly one event of [kind] (bench
    isolation of a single event class); [None] when the world has no
    eligible site for it. *)
val force : seed:int -> kind -> Gen.world -> (Gen.world * timed) option
