(** Geographic placement of routers and interconnection facilities.
    Figure 16 of the paper plots interdomain links by longitude; the
    generator places routers in real U.S. metro areas so the figure's
    shape (coast-to-coast spread, hot-potato locality) is reproducible. *)

type city = { name : string; lon : float; lat : float }

(** Major U.S. interconnection metros, west to east. *)
val us_cities : city array

(** [city_named name] finds a city by name. *)
val city_named : string -> city option

(** [distance_km a b] is the haversine distance. *)
val distance_km : city -> city -> float

val pp_city : Format.formatter -> city -> unit
val equal_city : city -> city -> bool
val compare_city : city -> city -> int
