open Netcore
module B = Bgpdata

(* Scenario-level impairment knobs (§4's real-Internet pathologies as a
   measurement-time overlay). Plain data here — the runtime model lives
   in [Probesim.Fault], which depends on this library and converts a
   profile into per-router state. All-zero means "no impairment": the
   probing engine's fault path is then a strict no-op. *)
type fault_profile = {
  f_probe_loss : float;  (** forward probe loss probability *)
  f_reply_loss : float;  (** reply transit loss probability *)
  f_rl_share : float;  (** fraction of routers that rate-limit ICMP *)
  f_rl_rate : float;  (** token-bucket refill, replies per second *)
  f_rl_burst : float;  (** token-bucket capacity *)
  f_dark_share : float;  (** fraction of routers with reply quotas *)
  f_dark_after : int;  (** replies before a quota router goes dark; 0 = off *)
  f_fail_links : int;  (** transient interdomain link failures to schedule *)
  f_fail_at : float;  (** onset of the first failure (simulated seconds) *)
  f_fail_for : float;  (** outage duration per failed link *)
}

let zero_fault =
  { f_probe_loss = 0.0; f_reply_loss = 0.0; f_rl_share = 0.0; f_rl_rate = 0.0;
    f_rl_burst = 0.0; f_dark_share = 0.0; f_dark_after = 0; f_fail_links = 0;
    f_fail_at = 0.0; f_fail_for = 0.0 }

type params = {
  seed : int;
  name : string;
  host_kind : Net.as_kind;
  host_cities : int;
  host_sibling_count : int;
  n_tier1 : int;
  n_transit : int;
  n_ixp : int;
  host_ixp_count : int;
  n_host_providers : int;
  n_host_peers : int;
  n_host_ixp_peers : int;
  n_host_customers : int;
  big_peer_links : int;
  n_cdn_peers : int;
  n_remote : int;
  n_vps : int;
  avg_cust_links : float;
  p_cust_firewall : float;
  p_cust_silent : float;
  p_cust_echo_only : float;
  p_third_party : float;
  p_unrouted_infra : float;
  p_pa_infra : float;
  p_multihomed_pair : float;
  p_ipid_shared : float;
  p_ipid_periface : float;
  p_ipid_random : float;
  p_udp_canonical : float;
  p_vrouter : float;
  p_moas : float;
  p_ixp_member : float;
  p_sibling_hidden : float;
  p_hijack : float;
  fault : fault_profile;
}

let default_params =
  { seed = 1;
    name = "default";
    host_kind = Net.Access;
    host_cities = 12;
    host_sibling_count = 2;
    n_tier1 = 6;
    n_transit = 10;
    n_ixp = 3;
    host_ixp_count = 2;
    n_host_providers = 3;
    n_host_peers = 10;
    n_host_ixp_peers = 8;
    n_host_customers = 80;
    big_peer_links = 20;
    n_cdn_peers = 4;
    n_remote = 60;
    n_vps = 8;
    avg_cust_links = 1.25;
    p_cust_firewall = 0.55;
    p_cust_silent = 0.05;
    p_cust_echo_only = 0.03;
    p_third_party = 0.08;
    p_unrouted_infra = 0.10;
    p_pa_infra = 0.06;
    p_multihomed_pair = 0.04;
    p_ipid_shared = 0.55;
    p_ipid_periface = 0.18;
    p_ipid_random = 0.15;
    p_udp_canonical = 0.40;
    p_vrouter = 0.03;
    p_moas = 0.03;
    p_ixp_member = 0.85;
    p_sibling_hidden = 0.0;
    p_hijack = 0.0;
    fault = zero_fault }

type vp = { vp_name : string; vp_rid : int; vp_addr : Ipv4.t; vp_city : Geo.city }

type world = {
  params : params;
  net : Net.t;
  host_asn : Asn.t;
  siblings : Asn.Set.t;
  published_siblings : Asn.Set.t;
  vps : vp list;
  rels_truth : B.As_rel.t;
  primary_exit : Asn.t Asn.Map.t;
  ixp_registry : B.Ixp.t;
  delegations : B.Delegation.t;
  as2org : B.As2org.t;
  collectors : Asn.t list;
  selective : int list Prefix.Map.t Asn.Map.t;
  big_peer : Asn.t;
  cdn_peers : Asn.t list;
  moas : (Prefix.t * Asn.t) list;
}

(* Mutable build state threaded through the construction helpers. *)
type builder = {
  p : params;
  rng : Rng.t;
  net : Net.t;
  alloc : Addressing.t;
  mutable rels : B.As_rel.t;
  mutable dels : B.Delegation.t;
  mutable orgs : B.As2org.t;
  mutable registry : B.Ixp.t;
  mutable primary : Asn.t Asn.Map.t;
  mutable sel : int list Prefix.Map.t Asn.Map.t;
  pools : (Asn.t, Addressing.pool) Hashtbl.t;
  cores : (Asn.t * string, Net.router) Hashtbl.t;
  mutable moas_extra : (Prefix.t * Asn.t) list;
      (* prefix additionally originated by this AS *)
}

let host_org_name = "org-host"

let org_of_kind kind asn =
  let tag =
    match kind with
    | Net.Tier1 -> "t1"
    | Net.Transit -> "tr"
    | Net.Access -> "ac"
    | Net.Content -> "cdn"
    | Net.Enterprise -> "ent"
    | Net.Stub -> "stub"
    | Net.Ree -> "ree"
  in
  Printf.sprintf "org-%s-%d" tag asn

let register_block b ~org prefix =
  b.dels <-
    B.Delegation.add b.dels
      { registry = "sim"; cc = "US"; start = Prefix.first prefix;
        count = Prefix.size prefix; date = "20160101"; status = "allocated";
        opaque_id = org }

let make_as b ~asn ~kind ~org ~cities ~filter ~policy ~announce_infra
    ~infra_len ~prefix_lens =
  let node =
    { Net.asn; kind; org; cities; prefixes = []; infra = [];
      announce_infra; filter; policy }
  in
  Net.add_as b.net node;
  b.orgs <- B.As2org.add b.orgs asn org;
  let prefixes =
    List.map
      (fun len ->
        let p = Addressing.alloc_block b.alloc len in
        register_block b ~org p;
        p)
      prefix_lens
  in
  node.prefixes <- prefixes;
  (match infra_len with
  | Some len ->
    let infra = Addressing.alloc_block b.alloc len in
    register_block b ~org infra;
    node.infra <- [ infra ];
    Hashtbl.replace b.pools asn (Addressing.pool_of infra)
  | None -> ());
  node

let pool_of b asn =
  match Hashtbl.find_opt b.pools asn with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Gen: AS%d has no infra pool" asn)

(* Behaviour sampling ------------------------------------------------- *)

let sample_ipid b =
  let r = Rng.float b.rng in
  if r < b.p.p_ipid_shared then Net.Shared_counter
  else if r < b.p.p_ipid_shared +. b.p.p_ipid_periface then Net.Per_iface
  else if r < b.p.p_ipid_shared +. b.p.p_ipid_periface +. b.p.p_ipid_random then
    Net.Random_id
  else Net.Zero_id

let sample_udp b =
  if Rng.bool b.rng ~p:b.p.p_udp_canonical then Net.Canonical
  else if Rng.bool b.rng ~p:0.3 then Net.Probed_addr
  else Net.No_udp

let sample_behavior b (node : Net.as_node) ~third_party =
  match node.filter with
  | Net.Silent ->
    { Net.ttl_expired = false; ttl_src = Net.Inbound; echo = false; unreach = false;
      udp = Net.No_udp; ipid = Net.Zero_id }
  | Net.Echo_only ->
    { Net.ttl_expired = false; ttl_src = Net.Inbound; echo = true; unreach = true;
      udp = Net.No_udp; ipid = sample_ipid b }
  | Net.Open | Net.Firewall ->
    let ttl_src =
      (* Virtual-router reply selection is a neighbor-edge behaviour;
         the hosting ISP's own backbone replies from the inbound
         interface. *)
      if third_party then Net.Toward_reply
      else if node.org <> host_org_name && Rng.bool b.rng ~p:b.p.p_vrouter then
        Net.Toward_dst
      else Net.Inbound
    in
    { Net.ttl_expired = true; ttl_src; echo = Rng.bool b.rng ~p:0.95;
      unreach = Rng.bool b.rng ~p:0.9; udp = sample_udp b; ipid = sample_ipid b }

(* Router construction ------------------------------------------------ *)

let internal_subnet b asn =
  (* Customers flagged for PA reuse number internal links from the
     space their provider delegated (fig 12); the delegation registry
     keeps the block under the provider's org. *)
  Addressing.alloc_subnet (pool_of b asn) 31

let wire_internal b asn r1 r2 ~weight =
  let subnet = internal_subnet b asn in
  let a1, a2 = Addressing.p2p_addrs subnet in
  ignore (Net.add_link b.net Net.Internal (r1, a1) (r2, a2) ~weight);
  (* Connected route: the subnet is reachable at its first endpoint. *)
  Net.set_home b.net subnet r1.Net.rid

let nearest_core b asn city =
  let best = ref None in
  Hashtbl.iter
    (fun (a, _) r ->
      if Asn.equal a asn then
        let d = Geo.distance_km city r.Net.city in
        match !best with
        | Some (d', _) when d' <= d -> ()
        | _ -> best := Some (d, r))
    b.cores;
  Option.map snd !best

(* A core router for [asn] in [city], created on demand and wired to the
   nearest existing core of the same AS. *)
let get_core b (node : Net.as_node) city =
  match Hashtbl.find_opt b.cores (node.asn, city.Geo.name) with
  | Some r -> r
  | None ->
    let behavior = sample_behavior b node ~third_party:false in
    let r = Net.add_router b.net ~owner:node.asn ~city ~behavior in
    (match nearest_core b node.asn city with
    | Some near ->
      wire_internal b node.asn r near
        ~weight:(1.0 +. (Geo.distance_km city near.Net.city /. 100.0))
    | None -> ());
    Hashtbl.replace b.cores (node.asn, city.Geo.name) r;
    (match r.Net.behavior.udp with
    | Net.Canonical ->
      Net.set_canonical b.net r (Addressing.alloc_addr (pool_of b node.asn))
    | Net.Probed_addr | Net.No_udp -> ());
    r

let new_border b (node : Net.as_node) city ~third_party =
  let behavior = sample_behavior b node ~third_party in
  let r = Net.add_router b.net ~owner:node.asn ~city ~behavior in
  let core = get_core b node city in
  wire_internal b node.asn r core ~weight:1.0;
  (match r.Net.behavior.udp with
  | Net.Canonical -> Net.set_canonical b.net r (Addressing.alloc_addr (pool_of b node.asn))
  | Net.Probed_addr | Net.No_udp -> ());
  r

(* Interdomain wiring ------------------------------------------------- *)

let interconnect b ~(supplier : Asn.t) (r1 : Net.router) (r2 : Net.router) =
  let len = if Rng.bool b.rng ~p:0.5 then 30 else 31 in
  let subnet = Addressing.alloc_subnet (pool_of b supplier) len in
  let a1, a2 = Addressing.p2p_addrs subnet in
  let a1, a2 =
    (* The supplier keeps the low address by convention. *)
    if Asn.equal r1.Net.owner supplier then (a1, a2) else (a2, a1)
  in
  let l = Net.add_link b.net (Net.Private_interconnect subnet) (r1, a1) (r2, a2) ~weight:1.0 in
  (* Connected route homed on the supplier-side router. *)
  let home = if Asn.equal r1.Net.owner supplier then r1 else r2 in
  Net.set_home b.net subnet home.Net.rid;
  l

let common_cities (x : Net.as_node) (y : Net.as_node) =
  List.filter (fun c -> List.exists (Geo.equal_city c) y.Net.cities) x.Net.cities

let pick_link_city b (x : Net.as_node) (y : Net.as_node) =
  match common_cities x y with
  | [] -> Rng.pick b.rng x.Net.cities
  | cs -> Rng.pick b.rng cs

(* Full-mesh-ish backbone for an AS across its cities: chain in
   west-to-east order plus a wrap link and sparse chords. *)
let build_backbone b (node : Net.as_node) =
  let cities = node.Net.cities in
  let cores = List.map (fun c -> get_core b node c) cities in
  (match cores with
  | _ :: _ :: _ ->
    let arr = Array.of_list cores in
    let n = Array.length arr in
    for i = 0 to n - 2 do
      let r1 = arr.(i) and r2 = arr.(i + 1) in
      wire_internal b node.asn r1 r2
        ~weight:(1.0 +. (Geo.distance_km r1.Net.city r2.Net.city /. 100.0))
    done;
    if n > 3 then (
      let r1 = arr.(0) and r2 = arr.(n - 1) in
      wire_internal b node.asn r1 r2
        ~weight:(1.0 +. (Geo.distance_km r1.Net.city r2.Net.city /. 100.0)));
    if n > 5 then
      for _ = 1 to n / 3 do
        let i = Rng.int b.rng n and j = Rng.int b.rng n in
        if abs (i - j) > 1 then
          wire_internal b node.asn arr.(i) arr.(j)
            ~weight:(1.0 +. (Geo.distance_km arr.(i).Net.city arr.(j).Net.city /. 100.0))
      done
  | _ -> ());
  cores

let set_homes b (node : Net.as_node) routers =
  List.iter
    (fun p ->
      let home = Rng.pick b.rng routers in
      Net.set_home b.net p home.Net.rid)
    node.Net.prefixes;
  if node.Net.announce_infra then
    List.iter
      (fun p ->
        let home = Rng.pick b.rng routers in
        Net.set_home b.net p home.Net.rid)
      node.Net.infra

(* ---------------------------------------------------------------- *)

let city_sample b n =
  let all = Array.to_list Geo.us_cities in
  let chosen = Rng.sample b.rng (min n (List.length all)) all in
  (* Keep west-to-east ordering for readable backbones. *)
  List.sort (fun a b -> Float.compare a.Geo.lon b.Geo.lon) chosen

let add_selective b origin prefix lid =
  let per_prefix =
    Option.value ~default:Prefix.Map.empty (Asn.Map.find_opt origin b.sel)
  in
  let lids = Option.value ~default:[] (Prefix.Map.find_opt prefix per_prefix) in
  b.sel <- Asn.Map.add origin (Prefix.Map.add prefix (lid :: lids) per_prefix) b.sel

(* Reject parameter records the construction below cannot survive: the
   topology needs at least one Tier-1 and one host metro, counts must be
   non-negative, and every probability knob must be a real number in
   [0,1] (NaN silently disables Rng.bool draws, which would make a world
   that looks valid but ignores its own knobs). Everything else — zero
   VPs, zero customers, zero transits, pathology knobs at 1.0 — must
   yield a valid if trivial world. *)
let validate_params (p : params) =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let nonneg (name, v) =
    if v < 0 then fail "Gen.generate: %s must be >= 0 (got %d)" name v
  in
  let prob (name, v) =
    if not (Float.is_finite v) || v < 0.0 || v > 1.0 then
      fail "Gen.generate: %s must be a probability in [0,1] (got %g)" name v
  in
  let finite_nonneg (name, v) =
    if not (Float.is_finite v) || v < 0.0 then
      fail "Gen.generate: %s must be finite and >= 0 (got %g)" name v
  in
  if p.n_tier1 < 1 then
    fail "Gen.generate: n_tier1 must be >= 1 (got %d)" p.n_tier1;
  if p.host_cities < 1 then
    fail "Gen.generate: host_cities must be >= 1 (got %d)" p.host_cities;
  List.iter nonneg
    [ ("host_sibling_count", p.host_sibling_count);
      ("n_transit", p.n_transit);
      ("n_ixp", p.n_ixp);
      ("host_ixp_count", p.host_ixp_count);
      ("n_host_providers", p.n_host_providers);
      ("n_host_peers", p.n_host_peers);
      ("n_host_ixp_peers", p.n_host_ixp_peers);
      ("n_host_customers", p.n_host_customers);
      ("big_peer_links", p.big_peer_links);
      ("n_cdn_peers", p.n_cdn_peers);
      ("n_remote", p.n_remote);
      ("n_vps", p.n_vps);
      ("fault.f_dark_after", p.fault.f_dark_after);
      ("fault.f_fail_links", p.fault.f_fail_links) ];
  List.iter prob
    [ ("p_cust_firewall", p.p_cust_firewall);
      ("p_cust_silent", p.p_cust_silent);
      ("p_cust_echo_only", p.p_cust_echo_only);
      ("p_third_party", p.p_third_party);
      ("p_unrouted_infra", p.p_unrouted_infra);
      ("p_pa_infra", p.p_pa_infra);
      ("p_multihomed_pair", p.p_multihomed_pair);
      ("p_ipid_shared", p.p_ipid_shared);
      ("p_ipid_periface", p.p_ipid_periface);
      ("p_ipid_random", p.p_ipid_random);
      ("p_udp_canonical", p.p_udp_canonical);
      ("p_vrouter", p.p_vrouter);
      ("p_moas", p.p_moas);
      ("p_ixp_member", p.p_ixp_member);
      ("p_sibling_hidden", p.p_sibling_hidden);
      ("p_hijack", p.p_hijack);
      ("fault.f_probe_loss", p.fault.f_probe_loss);
      ("fault.f_reply_loss", p.fault.f_reply_loss);
      ("fault.f_rl_share", p.fault.f_rl_share);
      ("fault.f_dark_share", p.fault.f_dark_share) ];
  List.iter finite_nonneg
    [ ("avg_cust_links", p.avg_cust_links);
      ("fault.f_rl_rate", p.fault.f_rl_rate);
      ("fault.f_rl_burst", p.fault.f_rl_burst);
      ("fault.f_fail_at", p.fault.f_fail_at);
      ("fault.f_fail_for", p.fault.f_fail_for) ]

let generate p =
  validate_params p;
  let b =
    { p;
      rng = Rng.create p.seed;
      net = Net.create ();
      alloc = Addressing.create ();
      rels = B.As_rel.empty;
      dels = B.Delegation.empty;
      orgs = B.As2org.empty;
      registry = B.Ixp.empty;
      primary = Asn.Map.empty;
      sel = Asn.Map.empty;
      pools = Hashtbl.create 64;
      cores = Hashtbl.create 256;
      moas_extra = [] }
  in
  let host_asn = 64500 in
  let host_org = host_org_name in

  (* 1. The hosting AS and its siblings. *)
  let host_cities = city_sample b p.host_cities in
  let host =
    make_as b ~asn:host_asn ~kind:p.host_kind ~org:host_org ~cities:host_cities
      ~filter:Net.Open ~policy:Net.All_links ~announce_infra:true
      ~infra_len:(Some 14)
      ~prefix_lens:[ 15; 16; 16; 17; 18 ]
  in
  let siblings =
    List.init p.host_sibling_count (fun i ->
        let asn = host_asn + 1 + i in
        let node =
          make_as b ~asn ~kind:p.host_kind ~org:host_org ~cities:host_cities
            ~filter:Net.Open ~policy:Net.All_links ~announce_infra:true
            ~infra_len:None ~prefix_lens:[ 18 + Rng.int b.rng 3 ]
        in
        b.rels <- B.As_rel.add_c2p b.rels ~provider:host_asn ~customer:asn;
        node)
  in
  let sibling_set =
    Asn.Set.of_list (host_asn :: List.map (fun (s : Net.as_node) -> s.Net.asn) siblings)
  in
  let host_cores = build_backbone b host in
  (* Parallel circuits: a second equal-cost path beside most backbone
     segments, the load-balanced diamonds that make classic traceroute
     wobble and justify Paris traceroute (2 of the paper's references). *)
  let rec add_parallel = function
    | c1 :: (c2 :: _ as rest) ->
      if Rng.bool b.rng ~p:0.6 then begin
        let w = 1.0 +. (Geo.distance_km c1.Net.city c2.Net.city /. 100.0) in
        let m =
          Net.add_router b.net ~owner:host_asn ~city:c1.Net.city
            ~behavior:(sample_behavior b host ~third_party:false)
        in
        wire_internal b host_asn c1 m ~weight:(w /. 2.0);
        wire_internal b host_asn m c2 ~weight:(w /. 2.0)
      end;
      add_parallel rest
    | _ -> ()
  in
  add_parallel host_cores;
  (* Private interconnection concentrates in major metros; the big peer
     alone interconnects coast-to-coast (fig 16). *)
  let metro_cities =
    let n = List.length host_cities in
    let step = max 1 (n / 8) in
    List.filteri (fun i _ -> i mod step = 0) host_cities
  in
  (* Edge/aggregation routers: two per city; customers and VPs attach
     here, giving border routers that serve many neighbors (§5.4.6). *)
  let edges = Hashtbl.create 32 in
  List.iter
    (fun core ->
      let city = core.Net.city in
      let es =
        List.init 2 (fun _ ->
            let r =
              Net.add_router b.net ~owner:host_asn ~city
                ~behavior:(sample_behavior b host ~third_party:false)
            in
            wire_internal b host_asn r core ~weight:1.0;
            (match r.Net.behavior.udp with
            | Net.Canonical ->
              Net.set_canonical b.net r (Addressing.alloc_addr (pool_of b host_asn))
            | _ -> ());
            r)
      in
      Hashtbl.replace edges city.Geo.name es)
    host_cores;
  let edge_in b city =
    match Hashtbl.find_opt edges city.Geo.name with
    | Some es -> Rng.pick b.rng es
    | None -> get_core b host city
  in
  (* Shared host-side peering routers: real networks terminate many
     peer/provider links on a few edge routers per metro, which is what
     lets §5.4.1 anchor the near side of interdomain links. *)
  let peering = Hashtbl.create 32 in
  let host_border city =
    let cur = Option.value ~default:[] (Hashtbl.find_opt peering city.Geo.name) in
    if cur = [] || (List.length cur < 2 && Rng.bool b.rng ~p:0.25) then begin
      let r = new_border b host city ~third_party:false in
      Hashtbl.replace peering city.Geo.name (r :: cur);
      r
    end
    else Rng.pick b.rng cur
  in
  set_homes b host host_cores;
  List.iter (fun (s : Net.as_node) -> set_homes b s host_cores) siblings;
  (* Multi-origin: a few host prefixes co-originated by a sibling (§4.7). *)
  List.iter
    (fun pfx ->
      if Rng.bool b.rng ~p:p.p_moas && siblings <> [] then
        let s = Rng.pick b.rng siblings in
        b.moas_extra <- (pfx, s.Net.asn) :: b.moas_extra)
    host.Net.prefixes;

  (* 2. Tier-1 clique. *)
  let tier1s =
    List.init p.n_tier1 (fun i ->
        let asn = 1010 + (10 * i) in
        make_as b ~asn ~kind:Net.Tier1 ~org:(org_of_kind Net.Tier1 asn)
          ~cities:(city_sample b (8 + Rng.int b.rng 6))
          ~filter:Net.Open ~policy:Net.All_links ~announce_infra:true
          ~infra_len:(Some 17)
          ~prefix_lens:[ 14; 15; 16; 16 ])
  in
  List.iter (fun t -> set_homes b t (build_backbone b t)) tier1s;
  let rec clique = function
    | [] -> ()
    | (x : Net.as_node) :: rest ->
      List.iter
        (fun (y : Net.as_node) ->
          b.rels <- B.As_rel.add_p2p b.rels x.Net.asn y.Net.asn;
          let city = pick_link_city b x y in
          let rx = new_border b x city ~third_party:false in
          let ry = new_border b y city ~third_party:false in
          let supplier = if Rng.bool b.rng ~p:0.5 then x.Net.asn else y.Net.asn in
          ignore (interconnect b ~supplier rx ry))
        rest;
      clique rest
  in
  clique tier1s;

  (* 3. Transit providers: customers of 1-3 Tier-1s. *)
  let transits =
    List.init p.n_transit (fun i ->
        let asn = 2001 + i in
        let node =
          make_as b ~asn ~kind:Net.Transit ~org:(org_of_kind Net.Transit asn)
            ~cities:(city_sample b (3 + Rng.int b.rng 5))
            ~filter:Net.Open ~policy:Net.All_links
            ~announce_infra:(not (Rng.bool b.rng ~p:p.p_unrouted_infra))
            ~infra_len:(Some 18)
            ~prefix_lens:[ 16; 17 ]
        in
        set_homes b node (build_backbone b node);
        let ups = Rng.sample b.rng (1 + Rng.int b.rng 3) tier1s in
        List.iter
          (fun (t : Net.as_node) ->
            b.rels <- B.As_rel.add_c2p b.rels ~provider:t.Net.asn ~customer:asn;
            let city = pick_link_city b node t in
            let rn = new_border b node city ~third_party:false in
            let rt = new_border b t city ~third_party:false in
            ignore (interconnect b ~supplier:t.Net.asn rt rn))
          ups;
        (match ups with
        | (u : Net.as_node) :: _ -> b.primary <- Asn.Map.add asn u.Net.asn b.primary
        | [] -> ());
        node)
  in
  (* Sparse transit-transit peering (often invisible to collectors). *)
  let rec transit_peering = function
    | [] -> ()
    | (x : Net.as_node) :: rest ->
      List.iter
        (fun (y : Net.as_node) ->
          if Rng.bool b.rng ~p:0.15 then (
            b.rels <- B.As_rel.add_p2p b.rels x.Net.asn y.Net.asn;
            let city = pick_link_city b x y in
            let rx = new_border b x city ~third_party:false in
            let ry = new_border b y city ~third_party:false in
            let supplier = if x.Net.asn < y.Net.asn then x.Net.asn else y.Net.asn in
            ignore (interconnect b ~supplier rx ry)))
        rest;
      transit_peering rest
  in
  transit_peering transits;

  (* 4. IXPs: a LAN prefix each; half are announced by a management AS,
     the rest stay unrouted (§4 challenge 6). *)
  let ixps =
    List.init p.n_ixp (fun i ->
        let name = Printf.sprintf "ixp-%d" (i + 1) in
        let lan = Addressing.alloc_block b.alloc 24 in
        register_block b ~org:name lan;
        b.registry <- B.Ixp.add_prefix b.registry lan name;
        let city = Geo.us_cities.(Rng.int b.rng (Array.length Geo.us_cities)) in
        let pool = Addressing.pool_of lan in
        let announced = Rng.bool b.rng ~p:0.5 in
        (name, lan, city, pool, announced))
  in
  let lan_addr_of = Hashtbl.create 64 in
  (* (asn, ixp name) -> router * lan address, created on first use. *)
  let ixp_port (name, _lan, city, pool, _announced) (node : Net.as_node) =
    match Hashtbl.find_opt lan_addr_of (node.Net.asn, name) with
    | Some port -> port
    | None ->
      let r = new_border b node city ~third_party:false in
      let addr = Addressing.alloc_addr pool in
      (* Registry completeness knob: at the default 0.85 most members
         register their LAN address; a corpus scenario can starve the
         registry to stress §5.4.7 without changing the topology. *)
      if Rng.bool b.rng ~p:p.p_ixp_member then
        b.registry <- B.Ixp.add_member b.registry addr node.Net.asn name;
      Hashtbl.replace lan_addr_of (node.Net.asn, name) (r, addr);
      (r, addr)
  in
  let ixp_link ixp (x : Net.as_node) (y : Net.as_node) =
    let (name, _, _, _, _) = ixp in
    let rx, ax = ixp_port ixp x in
    let ry, ay = ixp_port ixp y in
    Net.add_link b.net (Net.Ixp_lan name) (rx, ax) (ry, ay) ~weight:1.0
  in

  (* 5. The hosting AS's providers. A large access network buys transit
     from Tier-1s (its other upstream paths would otherwise be shadowed
     by customer routes at its peers, hiding the peerings from public
     view); smaller networks buy from transit providers too. *)
  let host_providers =
    if p.host_kind = Net.Access && p.n_host_providers >= 2 then
      Rng.sample b.rng (min 2 p.n_host_providers) tier1s
      @ Rng.sample b.rng (p.n_host_providers - 2) transits
    else Rng.sample b.rng p.n_host_providers (tier1s @ transits)
  in
  List.iter
    (fun (t : Net.as_node) ->
      b.rels <- B.As_rel.add_c2p b.rels ~provider:t.Net.asn ~customer:host_asn;
      let nlinks = 2 + Rng.int b.rng 4 in
      for _ = 1 to nlinks do
        let city = Rng.pick b.rng metro_cities in
        ignore (pick_link_city b host t);
        let rh = host_border city in
        let rt = new_border b t city ~third_party:false in
        ignore (interconnect b ~supplier:t.Net.asn rt rh)
      done)
    host_providers;
  (match host_providers with
  | (u : Net.as_node) :: _ -> b.primary <- Asn.Map.add host_asn u.Net.asn b.primary
  | [] -> ());

  (* 6. The big settlement-free peer (Level3-like): many geographically
     spread interconnects, hot-potato everywhere (Figures 15/16). *)
  let big_peer =
    match
      List.filter
        (fun (t : Net.as_node) ->
          not (List.exists (fun (u : Net.as_node) -> Asn.equal u.Net.asn t.Net.asn) host_providers))
        tier1s
    with
    | [] -> List.hd tier1s
    | t :: _ -> t
  in
  b.rels <- B.As_rel.add_p2p b.rels host_asn big_peer.Net.asn;
  let n_big = max 1 p.big_peer_links in
  for i = 0 to n_big - 1 do
    let city = List.nth host_cities (i mod List.length host_cities) in
    let rh = host_border city in
    let rp = new_border b big_peer city ~third_party:false in
    let supplier = if Rng.bool b.rng ~p:0.7 then big_peer.Net.asn else host_asn in
    ignore (interconnect b ~supplier rh rp)
  done;
  (* A large access network peers settlement-free with most of the other
     Tier-1s too, at several geographically spread interconnects: this
     is what routes the bulk of remote prefixes via peers and produces
     fig 14's 5-15 distinct exit routers per prefix. *)
  if p.host_kind = Net.Access && p.big_peer_links >= 10 then
    List.iter
      (fun (t : Net.as_node) ->
        let is_provider =
          List.exists (fun (u : Net.as_node) -> Asn.equal u.Net.asn t.Net.asn) host_providers
        in
        if
          (not is_provider)
          && (not (Asn.equal t.Net.asn big_peer.Net.asn))
          && Rng.bool b.rng ~p:0.7
        then begin
          b.rels <- B.As_rel.add_p2p b.rels host_asn t.Net.asn;
          let nlinks = 5 + Rng.int b.rng 9 in
          for _ = 1 to nlinks do
            let city = Rng.pick b.rng host_cities in
            let rh = host_border city in
            let rp = new_border b t city ~third_party:false in
            let supplier = if Rng.bool b.rng ~p:0.5 then t.Net.asn else host_asn in
            ignore (interconnect b ~supplier rh rp)
          done
        end)
      tier1s;

  (* 7. CDN peers with selective announcement (Akamai-, Google-like). *)
  let cdn_peers =
    List.init p.n_cdn_peers (fun i ->
        let asn = 30001 + i in
        let style =
          (* 0: single-link pinning (Akamai); 1: coast pinning (Google);
             2: everywhere (plain CDN). *)
          i mod 3
        in
        let node =
          make_as b ~asn ~kind:Net.Content ~org:(org_of_kind Net.Content asn)
            ~cities:(city_sample b (3 + Rng.int b.rng 4))
            ~filter:Net.Open
            ~policy:(if style = 2 then Net.All_links else Net.Per_link)
            ~announce_infra:true ~infra_len:(Some 19)
            ~prefix_lens:(List.init (6 + Rng.int b.rng 6) (fun _ -> 20 + Rng.int b.rng 4))
        in
        let cores = build_backbone b node in
        set_homes b node cores;
        (* Transit from a tier1 so remote ASes can reach the CDN. *)
        let up = Rng.pick b.rng tier1s in
        b.rels <- B.As_rel.add_c2p b.rels ~provider:up.Net.asn ~customer:asn;
        let city = pick_link_city b node up in
        let rn = new_border b node city ~third_party:false in
        let rt = new_border b up city ~third_party:false in
        ignore (interconnect b ~supplier:up.Net.asn rt rn);
        b.primary <- Asn.Map.add asn up.Net.asn b.primary;
        (* Peering links with the host, spread across host cities. *)
        b.rels <- B.As_rel.add_p2p b.rels host_asn asn;
        let nlinks = 4 + Rng.int b.rng 5 in
        let cities = Rng.sample b.rng nlinks metro_cities in
        let links =
          List.map
            (fun city ->
              let rh = host_border city in
              let rc = new_border b node city ~third_party:false in
              let supplier = if Rng.bool b.rng ~p:0.5 then asn else host_asn in
              interconnect b ~supplier rh rc)
            cities
        in
        (* Pin prefixes to links according to style. Style 0 (Akamai)
           pins every announced prefix, round-robin so each interconnect
           carries some: a single VP anywhere then observes every link
           (fig 15). *)
        (match style with
        | 0 ->
          let arr = Array.of_list links in
          List.iteri
            (fun i pfx ->
              let l = arr.(i mod Array.length arr) in
              add_selective b asn pfx l.Net.lid)
            (node.Net.prefixes @ node.Net.infra)
        | 1 ->
          let sorted =
            List.sort
              (fun (l1 : Net.link) l2 ->
                let c1 = (Net.router b.net (fst l1.Net.a)).Net.city in
                let c2 = (Net.router b.net (fst l2.Net.a)).Net.city in
                Float.compare c1.Geo.lon c2.Geo.lon)
              links
          in
          let n = List.length sorted in
          let west = List.filteri (fun i _ -> i < (n + 1) / 2) sorted in
          let east = List.filteri (fun i _ -> i >= (n + 1) / 2) sorted in
          List.iteri
            (fun i pfx ->
              let side = if i mod 2 = 0 then west else east in
              let side = if side = [] then sorted else side in
              List.iter (fun (l : Net.link) -> add_selective b asn pfx l.Net.lid) side)
            (node.Net.prefixes @ node.Net.infra)
        | _ -> ());
        node)
  in

  (* 8. Other private and route-server peers. *)
  let other_peers =
    List.init p.n_host_peers (fun i ->
        let asn = 31001 + i in
        let kind = if Rng.bool b.rng ~p:0.5 then Net.Transit else Net.Content in
        let node =
          make_as b ~asn ~kind ~org:(org_of_kind kind asn)
            ~cities:(city_sample b (2 + Rng.int b.rng 3))
            ~filter:Net.Open ~policy:Net.All_links
            ~announce_infra:(not (Rng.bool b.rng ~p:p.p_unrouted_infra))
            ~infra_len:(Some 19)
            ~prefix_lens:(List.init (1 + Rng.int b.rng 3) (fun _ -> 19 + Rng.int b.rng 5))
        in
        let cores = build_backbone b node in
        set_homes b node cores;
        let up = Rng.pick b.rng (tier1s @ transits) in
        b.rels <- B.As_rel.add_c2p b.rels ~provider:up.Net.asn ~customer:asn;
        let city = pick_link_city b node up in
        let rn = new_border b node city ~third_party:false in
        let rt = new_border b up city ~third_party:false in
        ignore (interconnect b ~supplier:up.Net.asn rt rn);
        b.primary <- Asn.Map.add asn up.Net.asn b.primary;
        b.rels <- B.As_rel.add_p2p b.rels host_asn asn;
        let nlinks = 1 + Rng.int b.rng 2 in
        for _ = 1 to nlinks do
          let city = pick_link_city b host node in
          let rh = new_border b host city ~third_party:false in
          let rp = new_border b node city ~third_party:false in
          let supplier = if Rng.bool b.rng ~p:0.5 then asn else host_asn in
          ignore (interconnect b ~supplier rh rp)
        done;
        node)
  in

  (* Route-server peers across the host's IXPs. *)
  let host_ixps = List.filteri (fun i _ -> i < p.host_ixp_count) ixps in
  let ixp_peers =
    if host_ixps = [] then []
    else
      List.init p.n_host_ixp_peers (fun i ->
          let asn = 32001 + i in
          let kind = if Rng.bool b.rng ~p:0.6 then Net.Content else Net.Stub in
          let node =
            make_as b ~asn ~kind ~org:(org_of_kind kind asn)
              ~cities:(city_sample b (1 + Rng.int b.rng 2))
              ~filter:Net.Open ~policy:Net.All_links ~announce_infra:true
              ~infra_len:(Some 20)
              ~prefix_lens:(List.init (1 + Rng.int b.rng 2) (fun _ -> 21 + Rng.int b.rng 3))
          in
          let cores = build_backbone b node in
          set_homes b node cores;
          let up = Rng.pick b.rng (tier1s @ transits) in
          b.rels <- B.As_rel.add_c2p b.rels ~provider:up.Net.asn ~customer:asn;
          let city = pick_link_city b node up in
          let rn = new_border b node city ~third_party:false in
          let rt = new_border b up city ~third_party:false in
          ignore (interconnect b ~supplier:up.Net.asn rt rn);
          b.primary <- Asn.Map.add asn up.Net.asn b.primary;
          b.rels <- B.As_rel.add_p2p b.rels host_asn asn;
          let ixp = Rng.pick b.rng host_ixps in
          ignore (ixp_link ixp host node);
          node)
  in

  (* 9. Customers of the host. *)
  let customers =
    List.init p.n_host_customers (fun i ->
        let asn = 40001 + i in
        let kind =
          let r = Rng.float b.rng in
          if r < 0.55 then Net.Enterprise
          else if r < 0.80 then Net.Stub
          else if r < 0.92 then Net.Access
          else Net.Content
        in
        let filter =
          let r = Rng.float b.rng in
          if r < p.p_cust_silent then Net.Silent
          else if r < p.p_cust_silent +. p.p_cust_echo_only then Net.Echo_only
          else if r < p.p_cust_silent +. p.p_cust_echo_only +. p.p_cust_firewall then
            Net.Firewall
          else Net.Open
        in
        let pa_infra = Rng.bool b.rng ~p:p.p_pa_infra in
        let node =
          make_as b ~asn ~kind ~org:(org_of_kind kind asn)
            ~cities:[ Rng.pick b.rng host_cities ]
            ~filter ~policy:Net.All_links
            ~announce_infra:
              ((not pa_infra) && not (Rng.bool b.rng ~p:p.p_unrouted_infra))
            ~infra_len:(if pa_infra then None else Some 22)
            ~prefix_lens:(List.init (1 + Rng.int b.rng 2) (fun _ -> 19 + Rng.int b.rng 6))
        in
        if pa_infra then (
          (* PA space: internal links numbered from host-held space. *)
          let block = Addressing.alloc_subnet (pool_of b host_asn) 25 in
          node.Net.infra <- [ block ];
          Hashtbl.replace b.pools asn (Addressing.pool_of block));
        b.rels <- B.As_rel.add_c2p b.rels ~provider:host_asn ~customer:asn;
        (* Some customers multihome to a transit: enables third-party
           replies and BGP path diversity. *)
        let other_up =
          if transits <> [] && Rng.bool b.rng ~p:0.3 then
            Some (Rng.pick b.rng transits)
          else None
        in
        (match other_up with
        | Some (u : Net.as_node) ->
          b.rels <- B.As_rel.add_c2p b.rels ~provider:u.Net.asn ~customer:asn
        | None -> ());
        let third_party =
          other_up <> None && Rng.bool b.rng ~p:(p.p_third_party /. 0.3)
        in
        b.primary <-
          Asn.Map.add asn
            (match other_up with
            | Some u when third_party -> u.Net.asn
            | _ -> host_asn)
            b.primary;
        let city = List.hd node.Net.cities in
        (* Customer-side border; chained second router for the
           multihomed-pair vignette of §5.4.1 step 1.1. *)
        let border = new_border b node city ~third_party in
        (* Echo-only borders answer pings to the first usable address of
           their leading prefix (§5.4.8 step 8.2 needs a reply whose
           source maps into the neighbor). *)
        (match (filter, node.Net.prefixes) with
        | Net.Echo_only, p :: _ ->
          Net.set_canonical b.net border (Ipv4.add (Prefix.first p) 1)
        | _ -> ());
        let routers = ref [ border ] in
        if Rng.bool b.rng ~p:p.p_multihomed_pair then begin
          let r2b = sample_behavior b node ~third_party:false in
          let r2 =
            Net.add_router b.net ~owner:asn ~city
              ~behavior:{ r2b with Net.ttl_src = Net.Toward_reply }
          in
          wire_internal b asn border r2 ~weight:1.0;
          let rh = edge_in b city in
          ignore (interconnect b ~supplier:host_asn rh r2);
          b.primary <- Asn.Map.add asn host_asn b.primary;
          routers := r2 :: !routers
        end;
        (* Internal routers behind the border for open networks. *)
        if node.Net.filter = Net.Open && Rng.bool b.rng ~p:0.6 then begin
          let core = get_core b node city in
          if not (List.exists (fun (r : Net.router) -> r.Net.rid = core.Net.rid) !routers)
          then routers := core :: !routers
        end;
        let nlinks =
          if Rng.float b.rng < p.avg_cust_links -. 1.0 then 2 else 1
        in
        for _ = 1 to nlinks do
          let rh = edge_in b city in
          ignore (interconnect b ~supplier:host_asn rh border)
        done;
        (match other_up with
        | Some (u : Net.as_node) ->
          let ucity = pick_link_city b node u in
          let rt = new_border b u ucity ~third_party:false in
          ignore (interconnect b ~supplier:u.Net.asn rt border)
        | None -> ());
        set_homes b node [ List.hd !routers ];
        node)
  in

  (* 10. Remote (non-neighbor) ASes filling out the Internet. *)
  let remotes =
    List.init p.n_remote (fun i ->
        let asn = 50001 + i in
        let kind =
          let r = Rng.float b.rng in
          if r < 0.6 then Net.Stub else if r < 0.85 then Net.Content else Net.Access
        in
        let filter =
          let r = Rng.float b.rng in
          if r < 0.05 then Net.Silent
          else if r < 0.45 then Net.Firewall
          else Net.Open
        in
        let node =
          make_as b ~asn ~kind ~org:(org_of_kind kind asn)
            ~cities:(city_sample b (1 + Rng.int b.rng 2))
            ~filter ~policy:Net.All_links
            ~announce_infra:(not (Rng.bool b.rng ~p:p.p_unrouted_infra))
            ~infra_len:(Some 22)
            ~prefix_lens:(List.init (1 + Rng.int b.rng 2) (fun _ -> 20 + Rng.int b.rng 5))
        in
        let cores = build_backbone b node in
        set_homes b node cores;
        let ups = Rng.sample b.rng (1 + Rng.int b.rng 2) (tier1s @ transits) in
        List.iter
          (fun (u : Net.as_node) ->
            b.rels <- B.As_rel.add_c2p b.rels ~provider:u.Net.asn ~customer:asn;
            let city = pick_link_city b node u in
            let rn = new_border b node city ~third_party:false in
            let rt = new_border b u city ~third_party:false in
            ignore (interconnect b ~supplier:u.Net.asn rt rn))
          ups;
        (match ups with
        | (u : Net.as_node) :: _ -> b.primary <- Asn.Map.add asn u.Net.asn b.primary
        | [] -> ());
        node)
  in
  ignore other_peers;
  ignore ixp_peers;
  ignore customers;
  (* Hijacked origins: unrelated remote ASes co-originating host
     prefixes — the hostile cousin of the sibling MOAS above. The draws
     sit after every default-path draw and are guarded, so worlds with
     the knob at 0.0 (every preset) consume no randomness here. *)
  if p.p_hijack > 0.0 && remotes <> [] then
    List.iter
      (fun pfx ->
        if Rng.bool b.rng ~p:p.p_hijack then begin
          let r = Rng.pick b.rng remotes in
          b.moas_extra <- (pfx, r.Net.asn) :: b.moas_extra
        end)
      host.Net.prefixes;

  (* Homes for IXP LANs announced by a management AS. *)
  List.iter
    (fun (name, lan, city, _pool, announced) ->
      if announced then begin
        let asn = 59000 + int_of_string (String.sub name 4 (String.length name - 4)) in
        let node =
          make_as b ~asn ~kind:Net.Stub ~org:name ~cities:[ city ] ~filter:Net.Open
            ~policy:Net.All_links ~announce_infra:false ~infra_len:(Some 24)
            ~prefix_lens:[]
        in
        node.Net.prefixes <- [ lan ];
        let up = Rng.pick b.rng (if transits = [] then tier1s else transits) in
        b.rels <- B.As_rel.add_c2p b.rels ~provider:up.Net.asn ~customer:asn;
        let rn = get_core b node city in
        let rt = new_border b up city ~third_party:false in
        ignore (interconnect b ~supplier:up.Net.asn rt rn);
        Net.set_home b.net lan rn.Net.rid;
        b.primary <- Asn.Map.add asn up.Net.asn b.primary
      end)
    ixps;

  (* 11. Vantage points. *)
  let vp_cities =
    let n = min p.n_vps (List.length host_cities) in
    let extra = max 0 (p.n_vps - n) in
    Rng.sample b.rng n host_cities
    @ List.init extra (fun _ -> Rng.pick b.rng host_cities)
  in
  let vps =
    List.mapi
      (fun i city ->
        let gw = edge_in b city in
        let subnet = Addressing.alloc_subnet (pool_of b host_asn) 30 in
        let a_cpe, a_gw = Addressing.p2p_addrs subnet in
        let cpe =
          Net.add_router b.net ~owner:host_asn ~city
            ~behavior:(sample_behavior b host ~third_party:false)
        in
        ignore (Net.add_link b.net Net.Internal (cpe, a_cpe) (gw, a_gw) ~weight:1.0);
        { vp_name = Printf.sprintf "vp-%02d-%s" (i + 1) city.Geo.name;
          vp_rid = cpe.Net.rid; vp_addr = a_cpe; vp_city = city })
      vp_cities
  in

  (* 12. Collector-peer ASes for the public BGP view. *)
  let collectors =
    let t1 = List.map (fun (t : Net.as_node) -> t.Net.asn) tier1s in
    let tr =
      List.filteri (fun i _ -> i < 3) (List.map (fun (t : Net.as_node) -> t.Net.asn) transits)
    in
    t1 @ tr
  in

  (* The public siblings list (WHOIS-derived in the paper) can omit
     org members; truth keeps the full set. Guarded: no draws when the
     knob is 0.0, and the hosting AS itself is never hidden. *)
  let published_siblings =
    if p.p_sibling_hidden > 0.0 then
      Asn.Set.filter
        (fun a ->
          Asn.equal a host_asn || not (Rng.bool b.rng ~p:p.p_sibling_hidden))
        sibling_set
    else sibling_set
  in

  { params = p;
    net = b.net;
    host_asn;
    siblings = sibling_set;
    published_siblings;
    vps;
    rels_truth = b.rels;
    primary_exit = b.primary;
    ixp_registry = b.registry;
    delegations = b.dels;
    as2org = b.orgs;
    collectors;
    selective = b.sel;
    big_peer = big_peer.Net.asn;
    cdn_peers = List.map (fun (c : Net.as_node) -> c.Net.asn) cdn_peers;
    moas = b.moas_extra }

let originated (w : world) =
  let extra p =
    List.filter_map
      (fun (q, asn) -> if Prefix.equal p q then Some asn else None)
      w.moas
  in
  List.concat_map
    (fun (node : Net.as_node) ->
      let announced =
        node.Net.prefixes @ (if node.Net.announce_infra then node.Net.infra else [])
      in
      List.map
        (fun p -> (p, Asn.Set.of_list (node.Net.asn :: extra p)))
        announced)
    (Net.ases w.net)

let host_neighbor_truth (w : world) =
  let rels = w.rels_truth in
  let classify acc member =
    let add asn kind acc =
      if Asn.Set.mem asn w.siblings then acc
      else
        match Asn.Map.find_opt asn acc with
        | Some `Customer -> acc
        | Some _ when kind = `Customer -> Asn.Map.add asn kind acc
        | Some _ -> acc
        | None -> Asn.Map.add asn kind acc
    in
    let acc =
      Asn.Set.fold (fun a acc -> add a `Customer acc) (B.As_rel.customers rels member) acc
    in
    let acc =
      Asn.Set.fold (fun a acc -> add a `Peer acc) (B.As_rel.peers rels member) acc
    in
    Asn.Set.fold (fun a acc -> add a `Provider acc) (B.As_rel.providers rels member) acc
  in
  Asn.Set.fold (fun m acc -> classify acc m) w.siblings Asn.Map.empty
