type city = { name : string; lon : float; lat : float }

let us_cities =
  [| { name = "Seattle"; lon = -122.33; lat = 47.61 };
     { name = "Portland"; lon = -122.68; lat = 45.52 };
     { name = "San Jose"; lon = -121.89; lat = 37.34 };
     { name = "Los Angeles"; lon = -118.24; lat = 34.05 };
     { name = "Phoenix"; lon = -112.07; lat = 33.45 };
     { name = "Salt Lake City"; lon = -111.89; lat = 40.76 };
     { name = "Denver"; lon = -104.99; lat = 39.74 };
     { name = "Dallas"; lon = -96.80; lat = 32.78 };
     { name = "Houston"; lon = -95.37; lat = 29.76 };
     { name = "Kansas City"; lon = -94.58; lat = 39.10 };
     { name = "Minneapolis"; lon = -93.27; lat = 44.98 };
     { name = "Chicago"; lon = -87.63; lat = 41.88 };
     { name = "St. Louis"; lon = -90.20; lat = 38.63 };
     { name = "Nashville"; lon = -86.78; lat = 36.16 };
     { name = "Atlanta"; lon = -84.39; lat = 33.75 };
     { name = "Miami"; lon = -80.19; lat = 25.76 };
     { name = "Charlotte"; lon = -80.84; lat = 35.23 };
     { name = "Ashburn"; lon = -77.49; lat = 39.04 };
     { name = "Philadelphia"; lon = -75.17; lat = 39.95 };
     { name = "New York"; lon = -74.01; lat = 40.71 };
     { name = "Boston"; lon = -71.06; lat = 42.36 } |]

let city_named name = Array.find_opt (fun c -> String.equal c.name name) us_cities

let distance_km a b =
  let rad d = d *. Float.pi /. 180.0 in
  let dlat = rad (b.lat -. a.lat) and dlon = rad (b.lon -. a.lon) in
  let h =
    (sin (dlat /. 2.0) ** 2.0)
    +. (cos (rad a.lat) *. cos (rad b.lat) *. (sin (dlon /. 2.0) ** 2.0))
  in
  6371.0 *. 2.0 *. atan2 (sqrt h) (sqrt (1.0 -. h))

let pp_city ppf c = Format.pp_print_string ppf c.name
let equal_city a b = String.equal a.name b.name
let compare_city a b = String.compare a.name b.name
