open Netcore

type t = { mutable next : int }

let create ?first () =
  match first with
  | None -> { next = Ipv4.to_int (Ipv4.of_octets 1 0 0 0) }
  | Some a -> { next = Ipv4.to_int a }

(* Last allocatable address: everything at 224.0.0.0 and above is
   multicast or class E. A block must fit entirely at or below this. *)
let ceiling = 0xDFFFFFFF

let alloc_block t len =
  if len < 2 || len > 32 then invalid_arg "Addressing.alloc_block: bad len";
  let size = 1 lsl (32 - len) in
  (* Every adjustment below re-aligns before re-checking, so the
     exhaustion test always sees the block's final start address — the
     historical order (check, then re-align unchecked) could push a
     block past the ceiling for sizes above a /8. *)
  let rec settle () =
    t.next <- (t.next + size - 1) land lnot (size - 1);
    if t.next + size - 1 > ceiling then
      raise
        (Invalid_argument
           (Printf.sprintf
              "Addressing.alloc_block: address space exhausted (next 0x%X, need %d \
               addresses below 0x%X)"
              t.next size (ceiling + 1)));
    let a = Ipv4.of_int t.next in
    if Ipv4.reserved a || Ipv4.private_use a then begin
      (* Jump to the next /8 boundary and settle again. *)
      t.next <- (t.next lor 0xFFFFFF) + 1;
      settle ()
    end
  in
  settle ();
  let p = Prefix.make (Ipv4.of_int t.next) len in
  t.next <- t.next + size;
  p

type pool = { block : Prefix.t; mutable cursor : int }

let pool_of block = { block; cursor = Ipv4.to_int (Prefix.first block) }
let pool_block p = p.block

let alloc_subnet pool len =
  if len < 24 || len > 32 then invalid_arg "Addressing.alloc_subnet: bad len";
  let size = 1 lsl (32 - len) in
  let start = (pool.cursor + size - 1) land lnot (size - 1) in
  if start + size - 1 > Ipv4.to_int (Prefix.last pool.block) then
    raise
      (Invalid_argument
         (Printf.sprintf "Addressing.alloc_subnet: pool %s exhausted"
            (Prefix.to_string pool.block)));
  pool.cursor <- start + size;
  Prefix.make (Ipv4.of_int start) len

let alloc_addr pool = Prefix.first (alloc_subnet pool 32)

let p2p_addrs subnet =
  match Prefix.len subnet with
  | 31 -> (Prefix.first subnet, Prefix.last subnet)
  | 30 ->
    let base = Ipv4.to_int (Prefix.first subnet) in
    (Ipv4.of_int (base + 1), Ipv4.of_int (base + 2))
  | _ -> invalid_arg "Addressing.p2p_addrs: expected /30 or /31"
