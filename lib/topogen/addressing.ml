open Netcore

type t = { mutable next : int }

let create () = { next = Ipv4.to_int (Ipv4.of_octets 1 0 0 0) }

let skip_bad t size =
  (* Keep allocations inside public unicast space. *)
  let rec go () =
    let a = Ipv4.of_int t.next in
    if Ipv4.reserved a || Ipv4.private_use a then (
      (* Jump to the next /8 boundary. *)
      t.next <- (t.next lor 0xFFFFFF) + 1;
      go ())
    else if t.next + size - 1 > 0xDFFFFFFF then failwith "Addressing: space exhausted"
    else ()
  in
  go ()

let alloc_block t len =
  if len < 2 || len > 32 then invalid_arg "Addressing.alloc_block: bad len";
  let size = 1 lsl (32 - len) in
  (* Align to block size. *)
  t.next <- (t.next + size - 1) land lnot (size - 1);
  skip_bad t size;
  t.next <- (t.next + size - 1) land lnot (size - 1);
  let p = Prefix.make (Ipv4.of_int t.next) len in
  t.next <- t.next + size;
  p

type pool = { block : Prefix.t; mutable cursor : int }

let pool_of block = { block; cursor = Ipv4.to_int (Prefix.first block) }
let pool_block p = p.block

let alloc_subnet pool len =
  if len < 24 || len > 32 then invalid_arg "Addressing.alloc_subnet: bad len";
  let size = 1 lsl (32 - len) in
  let start = (pool.cursor + size - 1) land lnot (size - 1) in
  if start + size - 1 > Ipv4.to_int (Prefix.last pool.block) then
    failwith
      (Printf.sprintf "Addressing: pool %s exhausted" (Prefix.to_string pool.block));
  pool.cursor <- start + size;
  Prefix.make (Ipv4.of_int start) len

let alloc_addr pool = Prefix.first (alloc_subnet pool 32)

let p2p_addrs subnet =
  match Prefix.len subnet with
  | 31 -> (Prefix.first subnet, Prefix.last subnet)
  | 30 ->
    let base = Ipv4.to_int (Prefix.first subnet) in
    (Ipv4.of_int (base + 1), Ipv4.of_int (base + 2))
  | _ -> invalid_arg "Addressing.p2p_addrs: expected /30 or /31"
