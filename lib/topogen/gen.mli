(** Deterministic generator of a router-level internetwork around a
    VP-hosting AS, together with the ground-truth relationship graph and
    the public input artifacts (IXP registry, RIR delegations, sibling
    map) that the paper's pipeline consumes (§5.2).

    The generated world exhibits every pathology §4 enumerates: neighbor
    links numbered from provider space, third-party reply addresses,
    firewalled and fully silent edges, virtual-router reply selection,
    sibling ASes, inconsistent IXP address origination, multi-origin
    prefixes, unrouted infrastructure, and PA space reuse by customers. *)

open Netcore

(** Scenario-level measurement impairments (§4, §5.4): plain data
    converted into runtime fault state by [Probesim.Fault]. The world's
    topology is independent of these knobs — two parameter records
    differing only in [fault] generate identical worlds, so impairment
    sweeps reuse one topology. All-zero (the default) makes the probing
    engine's fault path a strict no-op. *)
type fault_profile = {
  f_probe_loss : float;  (** forward probe loss probability *)
  f_reply_loss : float;  (** reply transit loss probability *)
  f_rl_share : float;  (** fraction of routers that rate-limit ICMP *)
  f_rl_rate : float;  (** token-bucket refill, replies per second *)
  f_rl_burst : float;  (** token-bucket capacity *)
  f_dark_share : float;  (** fraction of routers with reply quotas *)
  f_dark_after : int;  (** replies before a quota router goes dark; 0 = off *)
  f_fail_links : int;  (** transient interdomain link failures to schedule *)
  f_fail_at : float;  (** onset of the first failure (simulated seconds) *)
  f_fail_for : float;  (** outage duration per failed link *)
}

val zero_fault : fault_profile

type params = {
  seed : int;
  name : string;
  host_kind : Net.as_kind;
  host_cities : int;  (** backbone metro count of the hosting AS *)
  host_sibling_count : int;
  n_tier1 : int;
  n_transit : int;
  n_ixp : int;
  host_ixp_count : int;  (** IXPs the hosting AS joins *)
  n_host_providers : int;
  n_host_peers : int;  (** private peers beyond big peer and CDNs *)
  n_host_ixp_peers : int;  (** route-server peers at IXPs *)
  n_host_customers : int;
  big_peer_links : int;  (** interconnect count with the Level3-like peer *)
  n_cdn_peers : int;  (** selective announcers (Akamai-, Google-like) *)
  n_remote : int;  (** non-neighbor destination ASes *)
  n_vps : int;
  avg_cust_links : float;
  p_cust_firewall : float;
  p_cust_silent : float;
  p_cust_echo_only : float;
  p_third_party : float;
  p_unrouted_infra : float;
  p_pa_infra : float;
  p_multihomed_pair : float;
  p_ipid_shared : float;
  p_ipid_periface : float;
  p_ipid_random : float;
  p_udp_canonical : float;
  p_vrouter : float;
  p_moas : float;  (** chance a prefix is co-originated by a sibling *)
  p_ixp_member : float;
      (** chance an IXP port is registered in the public registry
          (default 0.85; lower it for stale-registry scenarios) *)
  p_sibling_hidden : float;
      (** chance a sibling AS is missing from the published siblings
          list while remaining a sibling in truth (default 0.0) *)
  p_hijack : float;
      (** chance a host prefix is co-originated by an unrelated remote
          AS — a hijack/MOAS pathology (default 0.0) *)
  fault : fault_profile;  (** measurement-time impairments (default: none) *)
}

val default_params : params

(** [validate_params p] raises [Invalid_argument] when [p] is outside
    the generator's domain: [n_tier1 < 1], [host_cities < 1], a negative
    count, or a probability knob that is not a real number in [0,1].
    [generate] calls this first, so malformed parameters fail with a
    typed error instead of crashing mid-construction. *)
val validate_params : params -> unit

type vp = { vp_name : string; vp_rid : int; vp_addr : Ipv4.t; vp_city : Geo.city }

type world = {
  params : params;
  net : Net.t;
  host_asn : Asn.t;
  siblings : Asn.Set.t;  (** the hosting org's ASes, including host *)
  published_siblings : Asn.Set.t;
      (** what the public siblings list claims — a subset of [siblings]
          when [p_sibling_hidden > 0]; inference inputs use this while
          validation keeps [siblings] as truth *)
  vps : vp list;
  rels_truth : Bgpdata.As_rel.t;  (** ground-truth relationships *)
  primary_exit : Asn.t Asn.Map.t;  (** per-AS default-route provider *)
  ixp_registry : Bgpdata.Ixp.t;
  delegations : Bgpdata.Delegation.t;
  as2org : Bgpdata.As2org.t;
  collectors : Asn.t list;  (** ASes feeding the public BGP view *)
  selective : int list Prefix.Map.t Asn.Map.t;
      (** for Per_link origins: prefix -> allowed interdomain link ids *)
  big_peer : Asn.t;
  cdn_peers : Asn.t list;
  moas : (Prefix.t * Asn.t) list;
      (** prefixes additionally originated by a sibling (§4 challenge 7) *)
}

val generate : params -> world

(** [originated w] is every (prefix, origin set) pair announced in BGP,
    reflecting announce_infra and multi-origin settings. *)
val originated : world -> (Prefix.t * Asn.Set.t) list

(** [host_neighbor_truth w] is the true neighbor set of the hosting org,
    by relationship. *)
val host_neighbor_truth :
  world -> [ `Customer | `Peer | `Provider ] Asn.Map.t
