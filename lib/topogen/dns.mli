(** Reverse-DNS names for router interfaces. Operators commonly encode
    interface role and metro into PTR records ("ae-3.cr01.dal01...");
    the paper used these location hints to geolocate the VP-side of
    interdomain links (fig 16) and, during development, as a weak signal
    for checking inferences (§5.1) — while warning that labels can be
    stale or wrong. The simulated registry reproduces that: a fraction
    of interfaces is unnamed and a smaller fraction carries the wrong
    metro code. *)

open Netcore

type t

(** [build ?named_fraction ?mislabel_fraction net ~seed] assigns PTR
    names to interface addresses. Defaults: 85% named, 3% of those
    labeled with a wrong metro. *)
val build :
  ?named_fraction:float -> ?mislabel_fraction:float -> Net.t -> seed:int -> t

(** [lookup t addr] is the PTR record, if the interface is named. *)
val lookup : t -> Ipv4.t -> string option

(** [cardinal t] is the number of named interfaces. *)
val cardinal : t -> int

(** [city_code city] is the 3-letter metro code used in names. *)
val city_code : Geo.city -> string

(** [parse_city name] extracts the metro from a PTR record and resolves
    it back to a city. *)
val parse_city : string -> Geo.city option

(** [parse_asn name] extracts the operator ASN embedded in the name. *)
val parse_asn : string -> Asn.t option
