open Netcore

type t = { names : string Ipv4.Tbl.t }

let code_table =
  [ ("Seattle", "sea"); ("Portland", "pdx"); ("San Jose", "sjc");
    ("Los Angeles", "lax"); ("Phoenix", "phx"); ("Salt Lake City", "slc");
    ("Denver", "den"); ("Dallas", "dal"); ("Houston", "hou");
    ("Kansas City", "mci"); ("Minneapolis", "msp"); ("Chicago", "chi");
    ("St. Louis", "stl"); ("Nashville", "bna"); ("Atlanta", "atl");
    ("Miami", "mia"); ("Charlotte", "clt"); ("Ashburn", "iad");
    ("Philadelphia", "phl"); ("New York", "nyc"); ("Boston", "bos") ]

let city_code (c : Geo.city) =
  match List.assoc_opt c.Geo.name code_table with
  | Some code -> code
  | None ->
    let s =
      String.lowercase_ascii
        (String.concat "" (String.split_on_char ' ' c.Geo.name))
    in
    if String.length s >= 3 then String.sub s 0 3 else s

let city_of_code code =
  List.find_map
    (fun (name, c) -> if String.equal c code then Geo.city_named name else None)
    code_table

let build ?(named_fraction = 0.85) ?(mislabel_fraction = 0.03) net ~seed =
  let rng = Rng.create (seed lxor 0x0d45) in
  let names = Ipv4.Tbl.create 1024 in
  List.iter
    (fun (l : Net.link) ->
      List.iter
        (fun (rid, addr) ->
          if not (Ipv4.Tbl.mem names addr) && Rng.bool rng ~p:named_fraction then begin
            let r = Net.router net rid in
            let city =
              if Rng.bool rng ~p:mislabel_fraction then
                Rng.pick_array rng Geo.us_cities
              else r.Net.city
            in
            let role =
              match l.Net.kind with
              | Net.Internal -> "ae"
              | Net.Private_interconnect _ -> "xe"
              | Net.Ixp_lan _ -> "ix"
            in
            let name =
              Printf.sprintf "%s-%d.cr%02d.%s%02d.as%d.sim.net" role
                (l.Net.lid mod 64) (rid mod 100) (city_code city) (rid mod 10)
                r.Net.owner
            in
            Ipv4.Tbl.replace names addr name
          end)
        [ l.Net.a; l.Net.b ])
    (Net.links net);
  { names }

let lookup t addr = Ipv4.Tbl.find_opt t.names addr
let cardinal t = Ipv4.Tbl.length t.names

let parse_city name =
  (* role-N.crNN.<code>NN.asN... : the third label carries the metro. *)
  match String.split_on_char '.' name with
  | _ :: _ :: metro :: _ ->
    let code =
      String.to_seq metro
      |> Seq.filter (fun c -> not (c >= '0' && c <= '9'))
      |> String.of_seq
    in
    city_of_code code
  | _ -> None

let parse_asn name =
  List.find_map
    (fun label ->
      if String.length label > 2 && String.sub label 0 2 = "as" then
        int_of_string_opt (String.sub label 2 (String.length label - 2))
      else None)
    (String.split_on_char '.' name)
