open Netcore

type as_kind = Tier1 | Transit | Access | Content | Enterprise | Stub | Ree
type announce_policy = All_links | Per_link
type edge_filter = Open | Firewall | Echo_only | Silent

type as_node = {
  asn : Asn.t;
  kind : as_kind;
  org : string;
  cities : Geo.city list;
  mutable prefixes : Prefix.t list;
  mutable infra : Prefix.t list;
  announce_infra : bool;
  filter : edge_filter;
  policy : announce_policy;
}

type ttl_src_mode = Inbound | Toward_reply | Toward_dst
type ipid_mode = Shared_counter | Per_iface | Random_id | Zero_id
type udp_mode = Canonical | Probed_addr | No_udp

type behavior = {
  ttl_expired : bool;
  ttl_src : ttl_src_mode;
  echo : bool;
  unreach : bool;
  udp : udp_mode;
  ipid : ipid_mode;
}

type router = {
  rid : int;
  owner : Asn.t;
  city : Geo.city;
  behavior : behavior;
  mutable canonical : Ipv4.t option;
  mutable ifaces : iface list;
}

and iface = { addr : Ipv4.t; link : int }

type link_kind = Internal | Private_interconnect of Prefix.t | Ixp_lan of string

type link = {
  lid : int;
  kind : link_kind;
  a : int * Ipv4.t;
  b : int * Ipv4.t;
  weight : float;
  live : bool;
}

(* Growable vectors keep router/link ids dense, which lets the routing
   layer use flat arrays for next-hop state. *)
type t = {
  mutable as_map : as_node Asn.Map.t;
  mutable routers : router array;
  mutable nrouters : int;
  mutable links : link array;
  mutable nlinks : int;
  addr_index : router Ipv4.Tbl.t;
  mutable homes : int Ptrie.t;
  mutable adjacency : (link * int) list array;  (* by router id, rebuilt lazily *)
  mutable adjacency_valid : bool;
}

let dummy_behavior =
  { ttl_expired = true; ttl_src = Inbound; echo = true; unreach = true;
    udp = Canonical; ipid = Shared_counter }

let dummy_city = { Geo.name = "nowhere"; lon = 0.0; lat = 0.0 }

let dummy_router =
  { rid = -1; owner = 0; city = dummy_city; behavior = dummy_behavior;
    canonical = None; ifaces = [] }

let dummy_link =
  { lid = -1; kind = Internal; a = (-1, Ipv4.zero); b = (-1, Ipv4.zero);
    weight = 0.0; live = false }

let create () =
  { as_map = Asn.Map.empty;
    routers = Array.make 64 dummy_router;
    nrouters = 0;
    links = Array.make 64 dummy_link;
    nlinks = 0;
    addr_index = Ipv4.Tbl.create 1024;
    homes = Ptrie.empty;
    adjacency = [||];
    adjacency_valid = false }

let add_as t node = t.as_map <- Asn.Map.add node.asn node t.as_map
let find_as t asn = Asn.Map.find_opt asn t.as_map

let as_node t asn =
  match find_as t asn with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Net.as_node: unknown AS%d" asn)

let ases t = List.map snd (Asn.Map.bindings t.as_map)
let asns t = Asn.Map.fold (fun a _ acc -> Asn.Set.add a acc) t.as_map Asn.Set.empty

let grow arr n dummy =
  if n < Array.length arr then arr
  else
    let bigger = Array.make (max 64 (2 * Array.length arr)) dummy in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger

let add_router t ~owner ~city ~behavior =
  let r =
    { rid = t.nrouters; owner; city; behavior; canonical = None; ifaces = [] }
  in
  t.routers <- grow t.routers t.nrouters dummy_router;
  t.routers.(t.nrouters) <- r;
  t.nrouters <- t.nrouters + 1;
  t.adjacency_valid <- false;
  r

let router t rid =
  if rid < 0 || rid >= t.nrouters then invalid_arg "Net.router: bad id";
  t.routers.(rid)

let router_count t = t.nrouters

let routers_of t asn =
  let acc = ref [] in
  for i = t.nrouters - 1 downto 0 do
    if Asn.equal t.routers.(i).owner asn then acc := t.routers.(i) :: !acc
  done;
  !acc

let add_link t kind (r1, a1) (r2, a2) ~weight =
  let l =
    { lid = t.nlinks; kind; a = (r1.rid, a1); b = (r2.rid, a2); weight;
      live = true }
  in
  t.links <- grow t.links t.nlinks dummy_link;
  t.links.(t.nlinks) <- l;
  t.nlinks <- t.nlinks + 1;
  r1.ifaces <- { addr = a1; link = l.lid } :: r1.ifaces;
  r2.ifaces <- { addr = a2; link = l.lid } :: r2.ifaces;
  Ipv4.Tbl.replace t.addr_index a1 r1;
  Ipv4.Tbl.replace t.addr_index a2 r2;
  t.adjacency_valid <- false;
  l

let link t lid =
  if lid < 0 || lid >= t.nlinks then invalid_arg "Net.link: bad id";
  t.links.(lid)

let link_count t = t.nlinks

let links t =
  let acc = ref [] in
  for i = t.nlinks - 1 downto 0 do
    if t.links.(i).live then acc := t.links.(i) :: !acc
  done;
  !acc

(* Retire a link in place: lids stay dense (flat per-lid arrays in the
   forwarding plan remain valid), but the link stops appearing in
   [links]/[neighbors], its interface records are stripped from both
   routers, and the interface addresses leave the probe-visible address
   index (unless the address also serves as a router's canonical). *)
let remove_link t lid =
  if lid < 0 || lid >= t.nlinks then invalid_arg "Net.remove_link: bad id";
  let l = t.links.(lid) in
  if l.live then begin
    t.links.(lid) <- { l with live = false };
    let strip (rid, addr) =
      let r = t.routers.(rid) in
      r.ifaces <- List.filter (fun i -> i.link <> lid) r.ifaces;
      if r.canonical <> Some addr then Ipv4.Tbl.remove t.addr_index addr
    in
    strip l.a;
    strip l.b;
    t.adjacency_valid <- false
  end

let peer_of _t l rid =
  if fst l.a = rid then l.b
  else if fst l.b = rid then l.a
  else invalid_arg "Net.peer_of: router not on link"

let rebuild_adjacency t =
  let adj = Array.make t.nrouters [] in
  for i = t.nlinks - 1 downto 0 do
    let l = t.links.(i) in
    if l.live then begin
      let ra, _ = l.a and rb, _ = l.b in
      adj.(ra) <- (l, rb) :: adj.(ra);
      adj.(rb) <- (l, ra) :: adj.(rb)
    end
  done;
  t.adjacency <- adj;
  t.adjacency_valid <- true

let neighbors t rid =
  if not t.adjacency_valid then rebuild_adjacency t;
  t.adjacency.(rid)

let internal_neighbors t rid =
  List.filter (fun (l, _) -> l.kind = Internal) (neighbors t rid)

let owner_of_addr t addr = Ipv4.Tbl.find_opt t.addr_index addr
let set_home t p rid = t.homes <- Ptrie.add p rid t.homes

let home_of t addr =
  match Ptrie.lpm addr t.homes with
  | Some (_, rid) -> Some (router t rid)
  | None -> None

let interdomain_links t =
  List.filter
    (fun l ->
      match l.kind with
      | Internal -> false
      | Private_interconnect _ | Ixp_lan _ -> true)
    (links t)

let interdomain_links_between t x y =
  List.filter
    (fun l ->
      let ra = (router t (fst l.a)).owner and rb = (router t (fst l.b)).owner in
      (Asn.equal ra x && Asn.equal rb y) || (Asn.equal ra y && Asn.equal rb x))
    (interdomain_links t)

let set_canonical t r addr =
  r.canonical <- Some addr;
  Ipv4.Tbl.replace t.addr_index addr r
