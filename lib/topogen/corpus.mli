(** Adversarial scenario corpus: named worlds whose generator knobs are
    pushed to extremes that target specific §4 pathologies and §5.4
    heuristics, each carrying the link/router accuracy floor the
    inference pipeline must hold on it. The bench harness runs every
    scenario and [check_bench] fails the build below a floor, making
    inference quality a gated invariant like performance. *)

type scenario = {
  sc_name : string;  (** unique registry key, e.g. ["stale_ixp"] *)
  sc_target : string;  (** heuristic or subsystem under attack *)
  sc_detail : string;  (** one-line description of the hostile twist *)
  sc_params : scale:float -> Gen.params;
      (** world parameters at a given topology scale *)
  sc_link_floor : float;
      (** minimum acceptable interdomain-link accuracy, percent *)
  sc_router_floor : float;
      (** minimum acceptable router-ownership accuracy, percent *)
}

(** Every named scenario, in fixed registry order. *)
val all : scenario list

val by_name : string -> scenario option
