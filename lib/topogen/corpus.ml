(* Named adversarial worlds: each scenario pushes one generator knob
   family to an extreme chosen to break one of the paper's §4/§5.4
   heuristics, and records the accuracy floor the pipeline must hold on
   that world. Floors were calibrated empirically (see DESIGN.md §12):
   run the corpus at the gated scale, then set each floor a safety
   margin below the observed accuracy so the gate trips on regressions,
   not on noise. *)

type scenario = {
  sc_name : string;
  sc_target : string;
  sc_detail : string;
  sc_params : scale:float -> Gen.params;
  sc_link_floor : float;
  sc_router_floor : float;
}

(* All scenarios derive from the small_access preset: it is the
   cheapest world with every structural feature present (IXPs, CDN
   peers, a big peer, multihomed customers), so knob extremes — not
   topology size — dominate what each scenario measures. Distinct seeds
   keep the worlds structurally independent. *)
let base ~seed ~name ~scale =
  let p = Scenario.small_access ~scale ~seed () in
  { p with Gen.name }

let scenarios =
  [ ( "moas_storm",
      "ip2as origin mapping (§4.7 multi-origin prefixes)",
      "every host prefix co-originated by a sibling",
      30.0, 85.0,
      fun ~scale ->
        { (base ~seed:101 ~name:"moas_storm" ~scale) with
          Gen.host_sibling_count = 3; p_moas = 1.0 } );
    ( "hijacked_origin",
      "ip2as origin disputes (hostile MOAS)",
      "a third of host prefixes co-originated by unrelated remote ASes",
      65.0, 82.0,
      fun ~scale ->
        { (base ~seed:102 ~name:"hijacked_origin" ~scale) with
          Gen.p_hijack = 0.35 } );
    ( "stale_ixp",
      "IXP membership heuristic (§5.4.7)",
      "95% of IXP ports missing from the public registry",
      65.0, 84.0,
      fun ~scale ->
        { (base ~seed:103 ~name:"stale_ixp" ~scale) with
          Gen.p_ixp_member = 0.05 } );
    ( "sibling_shadow",
      "sibling handling (published vs true org membership)",
      "half of the sibling ASes hidden from the published list",
      55.0, 88.0,
      fun ~scale ->
        { (base ~seed:104 ~name:"sibling_shadow" ~scale) with
          Gen.host_sibling_count = 3; p_sibling_hidden = 0.5 } );
    ( "alias_storm",
      "alias resolution (shared IP-ID counters everywhere)",
      "all routers share monotone IP-ID; many multihomed border pairs",
      60.0, 85.0,
      fun ~scale ->
        { (base ~seed:105 ~name:"alias_storm" ~scale) with
          Gen.p_ipid_shared = 1.0;
          p_ipid_periface = 0.0;
          p_ipid_random = 0.0;
          p_multihomed_pair = 0.4 } );
    ( "all_firewalled",
      "firewalled-border heuristic (§5.4.2)",
      "97% of customer borders firewalled",
      72.0, 82.0,
      fun ~scale ->
        { (base ~seed:106 ~name:"all_firewalled" ~scale) with
          Gen.p_cust_firewall = 0.97;
          p_cust_silent = 0.02;
          p_cust_echo_only = 0.01 } );
    ( "silent_dark",
      "silent/echo-only borders (§5.4.8)",
      "most customer borders silent or echo-only",
      70.0, 82.0,
      fun ~scale ->
        { (base ~seed:107 ~name:"silent_dark" ~scale) with
          Gen.p_cust_silent = 0.6;
          p_cust_echo_only = 0.3;
          p_cust_firewall = 0.1 } );
    ( "third_party_fog",
      "third-party addresses (§5.4.5) + virtual routers",
      "third-party replies at the knob maximum; 30% virtual routers",
      30.0, 84.0,
      fun ~scale ->
        { (base ~seed:108 ~name:"third_party_fog" ~scale) with
          Gen.p_third_party = 0.3; p_vrouter = 0.3 } );
    ( "unrouted_reuse",
      "unrouted infrastructure (§5.4.3) + PA address reuse",
      "no AS announces infrastructure; half the customers on PA space",
      75.0, 84.0,
      fun ~scale ->
        { (base ~seed:109 ~name:"unrouted_reuse" ~scale) with
          Gen.p_unrouted_infra = 1.0; p_pa_infra = 0.5 } );
    ( "vrouter_maze",
      "asymmetric reply selection (virtual routers everywhere)",
      "every router replies as a virtual router with canonical UDP",
      5.0, 79.0,
      fun ~scale ->
        { (base ~seed:110 ~name:"vrouter_maze" ~scale) with
          Gen.p_vrouter = 1.0; p_udp_canonical = 1.0 } ) ]

let all =
  List.map
    (fun (sc_name, sc_target, sc_detail, sc_link_floor, sc_router_floor, sc_params) ->
      { sc_name; sc_target; sc_detail; sc_params; sc_link_floor; sc_router_floor })
    scenarios

let by_name name = List.find_opt (fun s -> String.equal s.sc_name name) all
