let scaled scale n = max 1 (int_of_float (float_of_int n *. scale))

let tiny =
  { Gen.default_params with
    Gen.name = "tiny";
    seed = 7;
    host_cities = 4;
    host_sibling_count = 1;
    n_tier1 = 3;
    n_transit = 3;
    n_ixp = 1;
    host_ixp_count = 1;
    n_host_providers = 2;
    n_host_peers = 3;
    n_host_ixp_peers = 2;
    n_host_customers = 12;
    big_peer_links = 4;
    n_cdn_peers = 2;
    n_remote = 10;
    n_vps = 3 }

let r_and_e ?(scale = 1.0) ?(seed = 11) () =
  { Gen.default_params with
    Gen.name = "r_and_e";
    seed;
    host_kind = Net.Ree;
    host_cities = 5;
    host_sibling_count = 1;
    n_tier1 = 5;
    n_transit = 8;
    n_ixp = 3;
    host_ixp_count = 3;
    n_host_providers = 1;
    n_host_peers = scaled scale 2;
    n_host_ixp_peers = scaled scale 40;
    n_host_customers = scaled scale 30;
    big_peer_links = 2;
    n_cdn_peers = 2;
    n_remote = scaled scale 60;
    n_vps = 1;
    (* R&E customers are campuses: almost all firewalled. *)
    p_cust_firewall = 0.55;
    p_cust_silent = 0.09;
    p_cust_echo_only = 0.02 }

let large_access ?(scale = 1.0) ?(seed = 22) () =
  { Gen.default_params with
    Gen.name = "large_access";
    seed;
    host_kind = Net.Access;
    host_cities = 18;
    host_sibling_count = 3;
    n_tier1 = 8;
    n_transit = 16;
    n_ixp = 4;
    host_ixp_count = 2;
    n_host_providers = 5;
    n_host_peers = scaled scale 17;
    n_host_ixp_peers = scaled scale 4;
    n_host_customers = scaled scale 650;
    big_peer_links = 45;
    n_cdn_peers = 5;
    n_remote = scaled scale 400;
    n_vps = 19;
    p_cust_firewall = 0.60;
    p_cust_silent = 0.04;
    p_cust_echo_only = 0.02;
    p_third_party = 0.05 }

let tier1 ?(scale = 1.0) ?(seed = 33) () =
  { Gen.default_params with
    Gen.name = "tier1";
    seed;
    host_kind = Net.Tier1;
    host_cities = 16;
    host_sibling_count = 2;
    n_tier1 = 7;
    n_transit = 14;
    n_ixp = 4;
    host_ixp_count = 2;
    n_host_providers = 0;
    n_host_peers = scaled scale 55;
    n_host_ixp_peers = scaled scale 10;
    n_host_customers = scaled scale 1640;
    big_peer_links = 12;
    n_cdn_peers = 4;
    n_remote = scaled scale 250;
    n_vps = 4;
    p_cust_firewall = 0.65;
    p_cust_silent = 0.05;
    p_cust_echo_only = 0.03;
    p_third_party = 0.04 }

let small_access ?(scale = 1.0) ?(seed = 44) () =
  { Gen.default_params with
    Gen.name = "small_access";
    seed;
    host_kind = Net.Access;
    host_cities = 4;
    host_sibling_count = 0;
    n_tier1 = 5;
    n_transit = 8;
    n_ixp = 2;
    host_ixp_count = 2;
    n_host_providers = 2;
    n_host_peers = scaled scale 6;
    n_host_ixp_peers = scaled scale 25;
    n_host_customers = scaled scale 20;
    big_peer_links = 3;
    n_cdn_peers = 2;
    n_remote = scaled scale 80;
    n_vps = 2 }

(* One knob for the robustness sweep: [intensity] in [0, 1] scales every
   impairment class together. 0 is the exact zero profile (strict no-op
   in the engine); 1 is a hostile Internet — heavy ICMP rate limiting,
   a quarter of routers going dark mid-collection, several flapping
   interdomain links. *)
let impairment ~intensity =
  let i = Float.max 0.0 (Float.min 1.0 intensity) in
  if i = 0.0 then Gen.zero_fault
  else
    { Gen.f_probe_loss = 0.03 *. i;
      f_reply_loss = 0.03 *. i;
      f_rl_share = 0.45 *. i;
      (* Harsher limiters at higher intensity: fewer tokens per second. *)
      f_rl_rate = 10.0 /. (1.0 +. 4.0 *. i);
      f_rl_burst = 6.0;
      f_dark_share = 0.25 *. i;
      f_dark_after = int_of_float (Float.round (260.0 /. (1.0 +. 5.0 *. i)));
      f_fail_links = int_of_float (Float.round (6.0 *. i));
      f_fail_at = 20.0;
      f_fail_for = 90.0 }

let by_name = function
  | "r_and_e" -> Some r_and_e
  | "large_access" -> Some large_access
  | "tier1" -> Some tier1
  | "small_access" -> Some small_access
  | _ -> None
