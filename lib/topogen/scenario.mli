(** Scenario presets sized after the paper's validation networks (§5.6)
    and the measurement study (§6). A [scale] factor below 1.0 shrinks
    the neighbor counts proportionally for fast tests. *)

val tiny : Gen.params
(** A very small world for unit tests: a handful of every AS kind. *)

val r_and_e : ?scale:float -> ?seed:int -> unit -> Gen.params
(** Research-and-education network: ~17 routers, ~48 BGP neighbors,
    3 IXPs with route-server peers. *)

val large_access : ?scale:float -> ?seed:int -> unit -> Gen.params
(** Large U.S. access network: ~650 customers, 26 peers, 5 providers,
    19 VPs, a Level3-like peer with 45 interconnects, CDN peers with
    selective announcement. *)

val tier1 : ?scale:float -> ?seed:int -> unit -> Gen.params
(** Tier-1 transit network: ~1640 customers, ~70 peers, no providers. *)

val small_access : ?scale:float -> ?seed:int -> unit -> Gen.params
(** Small access network: ~14 border routers, modest neighbor set. *)

val by_name : string -> (?scale:float -> ?seed:int -> unit -> Gen.params) option
(** Lookup by name: "r_and_e", "large_access", "tier1", "small_access". *)

val impairment : intensity:float -> Gen.fault_profile
(** [impairment ~intensity] is a fault profile where one [intensity]
    knob in \[0, 1\] scales every impairment class together (probe/reply
    loss, ICMP rate limiting, dark quotas, transient link failures).
    Intensity 0 is exactly {!Gen.zero_fault}. Used by the robustness
    experiment's sweep levels. *)
