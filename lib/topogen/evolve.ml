(* Temporal churn over a generated world: a seeded schedule of topology
   events applied on the simulated clock. Each event mutates the
   [Net.t] in place (old routing snapshots only read their own packed
   arrays, never the net) and rebuilds the affected world-record fields
   functionally.

   Two invariants every event preserves, because the incremental
   re-freeze ([Routing.Bgp.refreeze] / [Routing.Forwarding.patch])
   depends on them:
   - new ASNs are allocated strictly above every existing ASN, so the
     packed snapshot's interned ASN axis only ever appends;
   - the internal topology of a pre-existing AS never changes — new
     routers belong to new ASes and link events are interdomain — so
     frozen IGP distance rows stay exact. *)

open Netcore
module B = Bgpdata

type kind =
  | Link_add
  | Link_remove
  | New_customer
  | Depeer
  | Aggregate
  | Deaggregate

let all_kinds =
  [ Link_add; Link_remove; New_customer; Depeer; Aggregate; Deaggregate ]

let kind_label = function
  | Link_add -> "link_add"
  | Link_remove -> "link_remove"
  | New_customer -> "new_customer"
  | Depeer -> "depeer"
  | Aggregate -> "aggregate"
  | Deaggregate -> "deaggregate"

type event =
  | Added_link of { x : Asn.t; y : Asn.t; lid : int }
  | Removed_link of { x : Asn.t; y : Asn.t; lid : int }
  | Customer_joined of {
      asn : Asn.t;
      providers : Asn.Set.t;
      prefix : Prefix.t;
    }
  | Depeered of { x : Asn.t; y : Asn.t }
  | Aggregated of { asn : Asn.t; parent : Prefix.t; halves : Prefix.t * Prefix.t }
  | Deaggregated of {
      asn : Asn.t;
      parent : Prefix.t;
      halves : Prefix.t * Prefix.t;
    }

type timed = { ev_time : float; ev : event }

let kind_of = function
  | Added_link _ -> Link_add
  | Removed_link _ -> Link_remove
  | Customer_joined _ -> New_customer
  | Depeered _ -> Depeer
  | Aggregated _ -> Aggregate
  | Deaggregated _ -> Deaggregate

let describe { ev_time; ev } =
  let body =
    match ev with
    | Added_link { x; y; lid } ->
      Printf.sprintf "link_add AS%d-AS%d lid=%d" x y lid
    | Removed_link { x; y; lid } ->
      Printf.sprintf "link_remove AS%d-AS%d lid=%d" x y lid
    | Customer_joined { asn; providers; prefix } ->
      Printf.sprintf "new_customer AS%d providers=[%s] prefix=%s" asn
        (String.concat ","
           (List.map string_of_int (Asn.Set.elements providers)))
        (Prefix.to_string prefix)
    | Depeered { x; y } -> Printf.sprintf "depeer AS%d-AS%d" x y
    | Aggregated { asn; parent; halves = h1, h2 } ->
      Printf.sprintf "aggregate AS%d %s+%s->%s" asn (Prefix.to_string h1)
        (Prefix.to_string h2) (Prefix.to_string parent)
    | Deaggregated { asn; parent; halves = h1, h2 } ->
      Printf.sprintf "deaggregate AS%d %s->%s+%s" asn
        (Prefix.to_string parent) (Prefix.to_string h1) (Prefix.to_string h2)
  in
  Printf.sprintf "t=%.0f %s" ev_time body

(* Chained digest over the event log: the store-key component that
   distinguishes epoch N's artifacts from epoch 0's. The empty batch
   leaves the digest unchanged, so an unevolved world keys exactly as
   it always has. *)
let log_digest prev = function
  | [] -> prev
  | evs ->
    List.fold_left
      (fun acc ev -> Digest.to_hex (Digest.string (acc ^ "\n" ^ describe ev)))
      prev evs

type schedule = {
  ev_seed : int;
  ev_epochs : int;
  ev_batch : int;
  ev_interval : float;
  w_link_add : float;
  w_link_remove : float;
  w_new_customer : float;
  w_depeer : float;
  w_aggregate : float;
  w_deaggregate : float;
}

let default_schedule =
  { ev_seed = 7;
    ev_epochs = 4;
    ev_batch = 3;
    ev_interval = 86_400.0;
    w_link_add = 1.0;
    w_link_remove = 1.0;
    w_new_customer = 1.5;
    w_depeer = 0.75;
    w_aggregate = 0.75;
    w_deaggregate = 0.75 }

(* Same fail-fast style as [Gen.validate_params]: reject schedules the
   driver below cannot survive — negative counts, a non-positive or
   non-finite interval, and weights that are not finite non-negative
   reals (a NaN weight would silently unbalance [Rng.weighted]). *)
let validate_schedule s =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if s.ev_epochs < 0 then
    fail "Evolve: ev_epochs must be >= 0 (got %d)" s.ev_epochs;
  if s.ev_batch < 0 then fail "Evolve: ev_batch must be >= 0 (got %d)" s.ev_batch;
  if (not (Float.is_finite s.ev_interval)) || s.ev_interval <= 0.0 then
    fail "Evolve: ev_interval must be finite and > 0 (got %g)" s.ev_interval;
  List.iter
    (fun (name, v) ->
      if (not (Float.is_finite v)) || v < 0.0 then
        fail "Evolve: %s must be finite and >= 0 (got %g)" name v)
    [ ("w_link_add", s.w_link_add);
      ("w_link_remove", s.w_link_remove);
      ("w_new_customer", s.w_new_customer);
      ("w_depeer", s.w_depeer);
      ("w_aggregate", s.w_aggregate);
      ("w_deaggregate", s.w_deaggregate) ];
  if
    s.w_link_add +. s.w_link_remove +. s.w_new_customer +. s.w_depeer
    +. s.w_aggregate +. s.w_deaggregate <= 0.0
  then fail "Evolve: at least one event-class weight must be > 0"

(* ------------------------------------------------------------------ *)
(* Eligibility plumbing                                               *)

let per_link net asn = (Net.as_node net asn).Net.policy = Net.Per_link

(* Live interdomain links grouped by unordered AS pair, sorted so the
   candidate order is independent of hash-table iteration. *)
let interdomain_pairs net =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (l : Net.link) ->
      let x = (Net.router net (fst l.Net.a)).Net.owner
      and y = (Net.router net (fst l.Net.b)).Net.owner in
      let key = if x <= y then (x, y) else (y, x) in
      Hashtbl.replace tbl key
        (l :: Option.value ~default:[] (Hashtbl.find_opt tbl key)))
    (Net.interdomain_links net);
  List.sort
    (fun ((a, b), _) ((c, d), _) -> compare (a, b) (c, d))
    (Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl [])

let max_asn (w : Gen.world) =
  let m = Asn.Set.max_elt (Net.asns w.Gen.net) in
  let rel_asns = B.As_rel.asns w.Gen.rels_truth in
  if Asn.Set.is_empty rel_asns then m else max m (Asn.Set.max_elt rel_asns)

(* First address above every delegated block. Every allocation the
   generator or an earlier epoch made is registered in the delegation
   file, so a fresh allocator starting here stays disjoint. *)
let next_free_addr (w : Gen.world) =
  let top =
    List.fold_left
      (fun acc (r : B.Delegation.record) ->
        max acc (Ipv4.to_int r.B.Delegation.start + r.B.Delegation.count))
      (Ipv4.to_int (Ipv4.of_octets 1 0 0 0))
      (B.Delegation.records w.Gen.delegations)
  in
  Ipv4.of_int top

let register dels ~org p =
  B.Delegation.add dels
    { B.Delegation.registry = "sim"; cc = "US"; start = Prefix.first p;
      count = Prefix.size p; date = "20170101"; status = "allocated";
      opaque_id = org }

let is_ixp_org org = String.length org >= 4 && String.sub org 0 4 = "ixp-"

(* The multi-origin prefix set (sibling MOAS, hijacks): prefix events
   must not touch these, their origin sets are scenario fixtures. *)
let multi_origin (w : Gen.world) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (p, _) -> Hashtbl.replace tbl p ()) w.Gen.moas;
  tbl

let originated_tbl (w : Gen.world) =
  let tbl = Hashtbl.create 256 in
  List.iter (fun (p, _) -> Hashtbl.replace tbl p ()) (Gen.originated w);
  tbl

(* ASes whose prefix lists events may rewrite: not the hosting org
   (its prefixes anchor MOAS fixtures and VP numbering), not Per_link
   announcers (their pin maps reference exact prefixes), not IXP
   management stubs (the registry publishes their LAN /24s). *)
let prefix_eligible (w : Gen.world) (node : Net.as_node) =
  (not (Asn.Set.mem node.Net.asn w.Gen.siblings))
  && node.Net.policy = Net.All_links
  && (not (is_ixp_org node.Net.org))
  && not (Asn.Map.mem node.Net.asn w.Gen.selective)

let home_router_of (w : Gen.world) asn p =
  match Net.home_of w.Gen.net (Prefix.first p) with
  | Some r when Asn.equal r.Net.owner asn -> Some r
  | _ -> (
    match Net.routers_of w.Gen.net asn with [] -> None | r :: _ -> Some r)

(* ------------------------------------------------------------------ *)
(* Event application. Each [apply_*] returns [None] when the world has
   no eligible site for the event; the driver then falls through to the
   next class. All return the updated world and the event record. *)

let stub_behavior =
  { Net.ttl_expired = true; ttl_src = Net.Inbound; echo = true; unreach = true;
    udp = Net.No_udp; ipid = Net.Shared_counter }

let supplier_of rels x y =
  if B.As_rel.is_provider_of rels ~provider:x ~customer:y then x
  else if B.As_rel.is_provider_of rels ~provider:y ~customer:x then y
  else min x y

let wire rng alloc (w : Gen.world) ~supplier (rs : Net.router)
    (rc : Net.router) =
  ignore rng;
  let net = w.Gen.net in
  let subnet = Addressing.alloc_block alloc 31 in
  let a_lo, a_hi = Addressing.p2p_addrs subnet in
  let l =
    Net.add_link net (Net.Private_interconnect subnet) (rs, a_lo) (rc, a_hi)
      ~weight:1.0
  in
  Net.set_home net subnet rs.Net.rid;
  let dels = register w.Gen.delegations ~org:(Net.as_node net supplier).Net.org subnet in
  (l, { w with Gen.delegations = dels })

let apply_link_add rng alloc (w : Gen.world) =
  let net = w.Gen.net in
  let candidates =
    List.filter
      (fun ((x, y), _) -> (not (per_link net x)) && not (per_link net y))
      (interdomain_pairs net)
  in
  match candidates with
  | [] -> None
  | _ ->
    let (x, y), links = Rng.pick rng candidates in
    let template = Rng.pick rng links in
    let ra = Net.router net (fst template.Net.a)
    and rb = Net.router net (fst template.Net.b) in
    let supplier = supplier_of w.Gen.rels_truth x y in
    let rs, rc = if Asn.equal ra.Net.owner supplier then (ra, rb) else (rb, ra) in
    let l, w = wire rng alloc w ~supplier rs rc in
    Some (w, Added_link { x; y; lid = l.Net.lid })

let apply_link_remove rng (w : Gen.world) =
  let net = w.Gen.net in
  let candidates =
    List.filter
      (fun ((x, y), links) ->
        List.length links >= 2
        && (not (per_link net x))
        && not (per_link net y))
      (interdomain_pairs net)
  in
  match candidates with
  | [] -> None
  | _ ->
    let (x, y), links = Rng.pick rng candidates in
    let l = Rng.pick rng links in
    Net.remove_link net l.Net.lid;
    Some (w, Removed_link { x; y; lid = l.Net.lid })

let apply_depeer rng (w : Gen.world) =
  let net = w.Gen.net in
  let rels = w.Gen.rels_truth in
  (* Only pairs that keep upstream transit on both sides stay eligible:
     each endpoint needs a surviving provider, so depeering reroutes
     instead of partitioning (Tier-1 clique edges are thereby excluded —
     Tier-1s have no providers). *)
  let candidates =
    List.filter
      (fun ((x, y), _) ->
        B.As_rel.is_peer rels x y
        && (not (per_link net x))
        && (not (per_link net y))
        && (not (Asn.Set.is_empty (B.As_rel.providers rels x)))
        && not (Asn.Set.is_empty (B.As_rel.providers rels y)))
      (interdomain_pairs net)
  in
  match candidates with
  | [] -> None
  | _ ->
    let (x, y), links = Rng.pick rng candidates in
    List.iter (fun (l : Net.link) -> Net.remove_link net l.Net.lid) links;
    Some
      ( { w with Gen.rels_truth = B.As_rel.remove_edge rels x y },
        Depeered { x; y } )

let apply_new_customer rng alloc next_asn (w : Gen.world) =
  let net = w.Gen.net in
  let asn = !next_asn in
  incr next_asn;
  let org = Printf.sprintf "org-evo-%d" asn in
  let host = Net.as_node net w.Gen.host_asn in
  let city = Rng.pick rng host.Net.cities in
  let providers =
    let transits =
      List.filter
        (fun (n : Net.as_node) -> n.Net.kind = Net.Transit)
        (Net.ases net)
    in
    if transits <> [] && Rng.bool rng ~p:0.3 then
      [ w.Gen.host_asn; (Rng.pick rng transits).Net.asn ]
    else [ w.Gen.host_asn ]
  in
  let prefix = Addressing.alloc_block alloc (20 + Rng.int rng 4) in
  let node =
    { Net.asn; kind = Net.Stub; org; cities = [ city ]; prefixes = [ prefix ];
      infra = []; announce_infra = false; filter = Net.Open;
      policy = Net.All_links }
  in
  Net.add_as net node;
  let border = Net.add_router net ~owner:asn ~city ~behavior:stub_behavior in
  Net.set_home net prefix border.Net.rid;
  let w = { w with Gen.as2org = B.As2org.add w.Gen.as2org asn org } in
  let w = { w with Gen.delegations = register w.Gen.delegations ~org prefix } in
  let w =
    List.fold_left
      (fun w pr ->
        (* Attach at an existing border of the provider (a router that
           already terminates interdomain links), preferring the
           customer's metro. *)
        let has_interdomain (r : Net.router) =
          List.exists
            (fun ((l : Net.link), _) -> l.Net.kind <> Net.Internal)
            (Net.neighbors net r.Net.rid)
        in
        let routers = Net.routers_of net pr in
        let borders = List.filter has_interdomain routers in
        let local =
          List.filter (fun (r : Net.router) -> Geo.equal_city r.Net.city city)
            borders
        in
        let rp =
          match (local, borders, routers) with
          | r :: _, _, _ -> r
          | [], _ :: _, _ -> Rng.pick rng borders
          | [], [], r :: _ -> r
          | [], [], [] -> invalid_arg "Evolve: provider has no routers"
        in
        let _, w = wire rng alloc w ~supplier:pr rp border in
        { w with
          Gen.rels_truth =
            B.As_rel.add_c2p w.Gen.rels_truth ~provider:pr ~customer:asn })
      w providers
  in
  let w =
    { w with
      Gen.primary_exit = Asn.Map.add asn (List.hd providers) w.Gen.primary_exit }
  in
  Some
    (w, Customer_joined { asn; providers = Asn.Set.of_list providers; prefix })

let apply_aggregate rng (w : Gen.world) =
  let net = w.Gen.net in
  let orig = originated_tbl w in
  let moas = multi_origin w in
  let candidates =
    List.concat_map
      (fun (node : Net.as_node) ->
        if not (prefix_eligible w node) then []
        else
          let sorted = List.sort Prefix.compare node.Net.prefixes in
          let rec pairs = function
            | p1 :: (p2 :: _ as rest) ->
              let l = Prefix.len p1 in
              let tail = pairs rest in
              if
                l = Prefix.len p2 && l >= 9
                && (not (Hashtbl.mem moas p1))
                && (not (Hashtbl.mem moas p2))
                &&
                let parent = Prefix.make (Prefix.network p1) (l - 1) in
                Prefix.equal parent (Prefix.make (Prefix.network p2) (l - 1))
                && (not (Prefix.equal p1 p2))
                && not (Hashtbl.mem orig parent)
              then
                (node, Prefix.make (Prefix.network p1) (l - 1), p1, p2) :: tail
              else tail
            | _ -> []
          in
          pairs sorted)
      (Net.ases net)
  in
  match candidates with
  | [] -> None
  | _ ->
    let node, parent, p1, p2 = Rng.pick rng candidates in
    (match home_router_of w node.Net.asn p1 with
    | None -> None
    | Some home ->
      node.Net.prefixes <-
        parent
        :: List.filter
             (fun q -> not (Prefix.equal q p1 || Prefix.equal q p2))
             node.Net.prefixes;
      Net.set_home net parent home.Net.rid;
      Some
        (w, Aggregated { asn = node.Net.asn; parent; halves = (p1, p2) }))

let apply_deaggregate rng (w : Gen.world) =
  let net = w.Gen.net in
  let orig = originated_tbl w in
  let moas = multi_origin w in
  let candidates =
    List.concat_map
      (fun (node : Net.as_node) ->
        if not (prefix_eligible w node) then []
        else
          List.filter_map
            (fun p ->
              if Prefix.len p > 23 || Hashtbl.mem moas p then None
              else
                let h1, h2 = Prefix.split p in
                if Hashtbl.mem orig h1 || Hashtbl.mem orig h2 then None
                else Some (node, p, h1, h2))
            node.Net.prefixes)
      (Net.ases net)
  in
  match candidates with
  | [] -> None
  | _ ->
    let node, parent, h1, h2 = Rng.pick rng candidates in
    (match home_router_of w node.Net.asn parent with
    | None -> None
    | Some home ->
      node.Net.prefixes <-
        h1 :: h2
        :: List.filter
             (fun q -> not (Prefix.equal q parent))
             node.Net.prefixes;
      Net.set_home net h1 home.Net.rid;
      Net.set_home net h2 home.Net.rid;
      Some
        (w, Deaggregated { asn = node.Net.asn; parent; halves = (h1, h2) }))

let apply_kind rng alloc next_asn w = function
  | Link_add -> apply_link_add rng alloc w
  | Link_remove -> apply_link_remove rng w
  | New_customer -> apply_new_customer rng alloc next_asn w
  | Depeer -> apply_depeer rng w
  | Aggregate -> apply_aggregate rng w
  | Deaggregate -> apply_deaggregate rng w

let weight_of s = function
  | Link_add -> s.w_link_add
  | Link_remove -> s.w_link_remove
  | New_customer -> s.w_new_customer
  | Depeer -> s.w_depeer
  | Aggregate -> s.w_aggregate
  | Deaggregate -> s.w_deaggregate

(* Try the drawn class first, then the remaining classes in fixed
   order: a world with no eligible site for one event kind still makes
   progress with another, and the fallback order is deterministic. *)
let apply_some rng alloc next_asn w kind =
  let rest = List.filter (fun k -> k <> kind) all_kinds in
  let rec go w = function
    | [] -> None
    | k :: rest -> (
      match apply_kind rng alloc next_asn w k with
      | Some r -> Some r
      | None -> go w rest)
  in
  go w (kind :: rest)

let advance sched ~epoch (w : Gen.world) =
  validate_schedule sched;
  if epoch < 1 then invalid_arg "Evolve.advance: epoch must be >= 1";
  (* One independent stream per epoch: epoch N's batch is a function of
     (seed, N) alone, not of how much randomness earlier epochs drew. *)
  let rng = Rng.create (sched.ev_seed lxor (epoch * 0x9E3779B9)) in
  let alloc = Addressing.create ~first:(next_free_addr w) () in
  let next_asn = ref (max_asn w + 1) in
  let t0 = float_of_int (epoch - 1) *. sched.ev_interval in
  let weighted =
    List.filter_map
      (fun k ->
        let wt = weight_of sched k in
        if wt > 0.0 then Some (wt, k) else None)
      all_kinds
  in
  let world = ref w in
  let events = ref [] in
  if weighted <> [] then
    for i = 0 to sched.ev_batch - 1 do
      let kind = Rng.weighted rng weighted in
      match apply_some rng alloc next_asn !world kind with
      | None -> ()
      | Some (w', ev) ->
        world := w';
        let at =
          t0
          +. sched.ev_interval
             *. float_of_int (i + 1)
             /. float_of_int (sched.ev_batch + 1)
        in
        events := { ev_time = at; ev } :: !events
    done;
  (!world, List.rev !events)

let force ~seed kind (w : Gen.world) =
  let rng = Rng.create seed in
  let alloc = Addressing.create ~first:(next_free_addr w) () in
  let next_asn = ref (max_asn w + 1) in
  match apply_kind rng alloc next_asn w kind with
  | None -> None
  | Some (w', ev) -> Some (w', { ev_time = 0.0; ev })
