(** Sequential allocator for the simulated address space. Hands out
    disjoint blocks from public unicast space, and carves point-to-point
    subnets (/30, /31) and loopbacks out of an AS's infrastructure block,
    mirroring operational numbering practice (§4 challenge 1). *)

open Netcore

type t

(** [create ()] starts allocating at 1.0.0.0 and skips reserved and
    private ranges. [?first] starts the cursor higher — a second
    allocator that must stay disjoint from an existing one (world
    evolution) passes the first address above everything already
    handed out. *)
val create : ?first:Ipv4.t -> unit -> t

(** [alloc_block t len] is a fresh /len block. Raises
    [Invalid_argument] (in {!Gen.validate_params}' fail-fast style) when
    [len] is outside \[2, 32\] or when no block of that size fits below
    the multicast boundary — a block ending exactly at 223.255.255.255
    is the last one handed out. *)
val alloc_block : t -> int -> Prefix.t

(** A per-AS pool used for interconnect subnets and loopbacks. *)
type pool

(** [pool_of t block] builds a pool carving from [block]. *)
val pool_of : Prefix.t -> pool

val pool_block : pool -> Prefix.t

(** [alloc_subnet pool len] carves a /len (30 or 31 for interconnects);
    raises [Invalid_argument] when the pool is exhausted. *)
val alloc_subnet : pool -> int -> Prefix.t

(** [alloc_addr pool] carves a single /32 (loopback or LAN address). *)
val alloc_addr : pool -> Ipv4.t

(** [p2p_addrs subnet] is the pair of usable endpoint addresses of a /30
    or /31 interconnect subnet. *)
val p2p_addrs : Prefix.t -> Ipv4.t * Ipv4.t
