module Gen = Topogen.Gen
module Corpus = Topogen.Corpus

type row = {
  name : string;
  target : string;
  links : Bdrmap.Validate.summary;
  routers : Bdrmap.Validate.summary;
  link_floor : float;
  router_floor : float;
  coverage_pct : float;
  probes : int;
}

let pass r =
  r.links.Bdrmap.Validate.pct_correct >= r.link_floor
  && r.routers.Bdrmap.Validate.pct_correct >= r.router_floor

(* One row per named scenario: build its hostile world, run the full
   pipeline from the first VP, validate against ground truth. Each
   scenario gets a private engine so a repeated [run] in one process is
   deterministic (the cached env's shared engine carries clock state). *)
let run ?(scale = 0.15) () =
  List.map
    (fun (sc : Corpus.scenario) ->
      Obs.Metrics.incr ("corpus.scenario." ^ sc.Corpus.sc_name);
      let params = sc.Corpus.sc_params ~scale in
      let env = Exp_common.make params in
      let w = env.Exp_common.world in
      let vp = List.hd w.Gen.vps in
      let vp_asns = env.Exp_common.inputs.Bdrmap.Pipeline.vp_asns in
      let engine = Probesim.Engine.create ~pps:100.0 w env.Exp_common.fwd in
      let r = Bdrmap.Pipeline.execute engine env.Exp_common.inputs ~vp in
      let evals =
        Bdrmap.Validate.links w r.Bdrmap.Pipeline.graph
          r.Bdrmap.Pipeline.inference
      in
      let table =
        Bdrmap.Report.table1 ~rels:env.Exp_common.inputs.Bdrmap.Pipeline.rels
          ~vp_asns r.Bdrmap.Pipeline.inference
      in
      { name = sc.Corpus.sc_name;
        target = sc.Corpus.sc_target;
        links = Bdrmap.Validate.summarize evals;
        routers =
          Bdrmap.Validate.router_accuracy w r.Bdrmap.Pipeline.graph
            r.Bdrmap.Pipeline.inference;
        link_floor = sc.Corpus.sc_link_floor;
        router_floor = sc.Corpus.sc_router_floor;
        coverage_pct = table.Bdrmap.Report.coverage_pct;
        probes = Probesim.Engine.probe_count engine })
    Corpus.all

let print ppf rows =
  Format.fprintf ppf
    "== Experiment AC1: adversarial corpus accuracy floors ==@.";
  Format.fprintf ppf "%-16s %6s %8s %7s %8s %7s %8s %7s %6s@." "scenario"
    "links" "correct" "floor" "routers" "floor" "coverage" "probes" "gate";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-16s %6d %7.1f%% %6.1f%% %7.1f%% %6.1f%% %7.1f%% %7d %6s@." r.name
        r.links.Bdrmap.Validate.total r.links.Bdrmap.Validate.pct_correct
        r.link_floor r.routers.Bdrmap.Validate.pct_correct r.router_floor
        r.coverage_pct r.probes
        (if pass r then "pass" else "FAIL")
    )
    rows;
  Format.fprintf ppf "@.Scenario targets:@.";
  List.iter
    (fun r -> Format.fprintf ppf "  %-16s %s@." r.name r.target)
    rows
