(** Experiment T1 — Table 1: coverage of BGP-observed neighbors and the
    per-relationship-class heuristic breakdown, for the R&E, large
    access, and Tier-1 scenarios. *)

type row = {
  scenario : string;
  table : Bdrmap.Report.t;
  paper_coverage : float;  (** the paper's coverage number for comparison *)
}

val run : ?scale:float -> unit -> row list
val print : Format.formatter -> row list -> unit
