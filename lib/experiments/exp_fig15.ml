module Gen = Topogen.Gen
module Net = Topogen.Net

type series = {
  neighbor : string;
  total_links : int;
  cumulative : int list;
}

type t = { n_vps : int; series : series list }

module Int_set = Set.Make (Int)

let run ?(scale = 1.0) ?pool ?store () =
  let params = Topogen.Scenario.large_access ~scale () in
  (* Destination composition matters for path diversity: the measured
     Internet is dominated by remote prefixes, not direct customers. *)
  let params = { params with Topogen.Gen.n_remote = params.Topogen.Gen.n_remote * 3 } in
  let env = Exp_common.make params in
  let w = env.Exp_common.world in
  let prefixes = Exp_common.external_prefixes env in
  (* Links out of the host crossed from each VP, per neighbor org. *)
  let per_vp =
    List.map
      (fun links ->
        List.filter_map (Option.map (fun (l : Net.link) -> l.Net.lid)) links
        |> List.sort_uniq compare)
      (Exp_common.crossing_links_by_vp ?pool ?store env prefixes)
  in
  let targets =
    (Printf.sprintf "level3-like (AS%d)" w.Gen.big_peer, Exp_common.org_of env w.Gen.big_peer)
    :: List.mapi
         (fun i asn ->
           let style =
             match i mod 3 with
             | 0 -> "akamai-like"
             | 1 -> "google-like"
             | _ -> "cdn"
           in
           (Printf.sprintf "%s (AS%d)" style asn, Exp_common.org_of env asn))
         w.Gen.cdn_peers
  in
  let series =
    List.map
      (fun (label, org) ->
        let truth =
          List.map (fun (l : Net.link) -> l.Net.lid) (Exp_common.host_links_to env ~neighbor_org:org)
        in
        let truth_set = Int_set.of_list truth in
        (* Cumulative union over VPs as a set fold: the former
           append/sort_uniq pair re-sorted the whole union per VP. *)
        let cumulative =
          List.rev
            (snd
               (List.fold_left
                  (fun (seen, acc) vp_links ->
                    let seen =
                      List.fold_left
                        (fun seen l ->
                          if Int_set.mem l truth_set then Int_set.add l seen
                          else seen)
                        seen vp_links
                    in
                    (seen, Int_set.cardinal seen :: acc))
                  (Int_set.empty, []) per_vp))
        in
        { neighbor = label; total_links = Int_set.cardinal truth_set; cumulative })
      targets
  in
  { n_vps = List.length w.Gen.vps; series }

let print ppf t =
  Format.fprintf ppf "== Experiment F15: marginal utility of VPs (fig 15) ==@.";
  Format.fprintf ppf "%-28s %6s  cumulative links by #VPs (1..%d)@." "neighbor" "total"
    t.n_vps;
  List.iter
    (fun s ->
      Format.fprintf ppf "%-28s %6d " s.neighbor s.total_links;
      List.iter (fun c -> Format.fprintf ppf " %3d" c) s.cumulative;
      let vps_needed =
        let rec go i = function
          | [] -> i
          | c :: rest -> if c >= s.total_links then i + 1 else go (i + 1) rest
        in
        go 0 s.cumulative
      in
      Format.fprintf ppf "  (all links at %d VPs)@." vps_needed)
    t.series
