module Gen = Topogen.Gen
module Net = Topogen.Net

type series = {
  neighbor : string;
  total_links : int;
  cumulative : int list;
}

type t = { n_vps : int; series : series list }

let run ?(scale = 1.0) () =
  let params = Topogen.Scenario.large_access ~scale () in
  (* Destination composition matters for path diversity: the measured
     Internet is dominated by remote prefixes, not direct customers. *)
  let params = { params with Topogen.Gen.n_remote = params.Topogen.Gen.n_remote * 3 } in
  let env = Exp_common.make params in
  let w = env.Exp_common.world in
  let prefixes = Exp_common.external_prefixes env in
  (* Links out of the host crossed from each VP, per neighbor org. *)
  let links_seen_by vp =
    List.fold_left
      (fun acc (_, dst) ->
        match Exp_common.crossing_link env ~vp ~dst with
        | Some l -> l.Net.lid :: acc
        | None -> acc)
      [] prefixes
    |> List.sort_uniq compare
  in
  let per_vp = List.map links_seen_by w.Gen.vps in
  let targets =
    (Printf.sprintf "level3-like (AS%d)" w.Gen.big_peer, Exp_common.org_of env w.Gen.big_peer)
    :: List.mapi
         (fun i asn ->
           let style =
             match i mod 3 with
             | 0 -> "akamai-like"
             | 1 -> "google-like"
             | _ -> "cdn"
           in
           (Printf.sprintf "%s (AS%d)" style asn, Exp_common.org_of env asn))
         w.Gen.cdn_peers
  in
  let series =
    List.map
      (fun (label, org) ->
        let truth =
          List.map (fun (l : Net.link) -> l.Net.lid) (Exp_common.host_links_to env ~neighbor_org:org)
        in
        let truth_set = List.sort_uniq compare truth in
        let cumulative =
          List.rev
            (snd
               (List.fold_left
                  (fun (seen, acc) vp_links ->
                    let seen =
                      List.sort_uniq compare
                        (seen @ List.filter (fun l -> List.mem l truth_set) vp_links)
                    in
                    (seen, List.length seen :: acc))
                  ([], []) per_vp))
        in
        { neighbor = label; total_links = List.length truth_set; cumulative })
      targets
  in
  { n_vps = List.length w.Gen.vps; series }

let print ppf t =
  Format.fprintf ppf "== Experiment F15: marginal utility of VPs (fig 15) ==@.";
  Format.fprintf ppf "%-28s %6s  cumulative links by #VPs (1..%d)@." "neighbor" "total"
    t.n_vps;
  List.iter
    (fun s ->
      Format.fprintf ppf "%-28s %6d " s.neighbor s.total_links;
      List.iter (fun c -> Format.fprintf ppf " %3d" c) s.cumulative;
      let vps_needed =
        let rec go i = function
          | [] -> i
          | c :: rest -> if c >= s.total_links then i + 1 else go (i + 1) rest
        in
        go 0 s.cumulative
      in
      Format.fprintf ppf "  (all links at %d VPs)@." vps_needed)
    t.series
