(** Experiment F15 — Figure 15: marginal utility of VPs for discovering
    a large access network's interconnections with selected neighbors.
    The paper's extremes: one VP suffices for Akamai (prefixes pinned to
    individual interconnects), while all 45 Level3 links require 17 VPs
    (hot-potato routing reveals only nearby exits). *)

type series = {
  neighbor : string;  (** label, e.g. "level3-like (AS1010)" *)
  total_links : int;  (** ground-truth link count with the host *)
  cumulative : int list;  (** links discovered after 1..n VPs *)
}

type t = { n_vps : int; series : series list }

val run : ?scale:float -> ?pool:Netcore.Pool.t -> ?store:Store.t -> unit -> t
val print : Format.formatter -> t -> unit
