module Gen = Topogen.Gen
module Evolve = Topogen.Evolve

type row = {
  epoch : int;
  time : float;
  events : (Evolve.kind * int) list;
  dirty : int;
  total_pfx : int;
  borders : int;
  links : Bdrmap.Validate.summary;
  routers : Bdrmap.Validate.summary;
  drift_pct : float;
}

let event_counts evs =
  List.filter_map
    (fun k ->
      match
        List.length
          (List.filter
             (fun (te : Evolve.timed) -> Evolve.kind_of te.Evolve.ev = k)
             evs)
      with
      | 0 -> None
      | n -> Some (k, n))
    Evolve.all_kinds

(* The inferred border map, reduced to the multiset of neighbor ASNs of
   its interdomain links. Node ids are not stable across epochs (a
   re-collection renumbers the router graph), so drift is measured on
   what the map claims — which neighbor networks the host borders —
   rather than on graph identities. *)
let border_multiset (r : Bdrmap.Pipeline.run) =
  List.sort compare
    (List.map
       (fun (l : Bdrmap.Heuristics.border_link) -> l.Bdrmap.Heuristics.neighbor)
       r.Bdrmap.Pipeline.inference.Bdrmap.Heuristics.links)

(* Multiset symmetric difference over sorted lists, as a percentage of
   the multiset union. Both empty -> 0. *)
let drift_pct prev cur =
  let rec walk diff inter a b =
    match (a, b) with
    | [], rest | rest, [] -> (diff + List.length rest, inter)
    | x :: a', y :: b' ->
      if x = y then walk diff (inter + 1) a' b'
      else if x < y then walk (diff + 1) inter a' b
      else walk (diff + 1) inter a b'
  in
  let diff, inter = walk 0 0 prev cur in
  let union = diff + inter in
  if union = 0 then 0.0 else 100.0 *. float_of_int diff /. float_of_int union

let run ?(scale = 0.3) ?(schedule = Evolve.default_schedule) () =
  (* A private world: evolution mutates it in place, so the memoized
     Exp_common environment cache must never see it. *)
  let w = Gen.generate (Topogen.Scenario.small_access ~scale ()) in
  let epochs =
    Bdrmap.Pipeline.run_epochs ~schedule
      ~vps:(fun (w : Gen.world) -> [ List.hd w.Gen.vps ])
      w
  in
  let prev = ref [] in
  List.map
    (fun (e : Bdrmap.Pipeline.epoch) ->
      let r = List.hd e.Bdrmap.Pipeline.ep_runs in
      let w' = e.Bdrmap.Pipeline.ep_world in
      let cur = border_multiset r in
      let drift =
        if e.Bdrmap.Pipeline.ep_index = 0 then 0.0 else drift_pct !prev cur
      in
      prev := cur;
      let dirty, total =
        match e.Bdrmap.Pipeline.ep_stats with
        | None ->
          ( 0,
            Routing.Bgp.Snapshot.prefix_count
              e.Bdrmap.Pipeline.ep_shared.Bdrmap.Pipeline.snapshot )
        | Some s -> (s.Routing.Bgp.rf_dirty, s.Routing.Bgp.rf_total)
      in
      let evals =
        Bdrmap.Validate.links w' r.Bdrmap.Pipeline.graph
          r.Bdrmap.Pipeline.inference
      in
      { epoch = e.Bdrmap.Pipeline.ep_index;
        time = e.Bdrmap.Pipeline.ep_time;
        events = event_counts e.Bdrmap.Pipeline.ep_events;
        dirty;
        total_pfx = total;
        borders = List.length cur;
        links = Bdrmap.Validate.summarize evals;
        routers =
          Bdrmap.Validate.router_accuracy w' r.Bdrmap.Pipeline.graph
            r.Bdrmap.Pipeline.inference;
        drift_pct = drift })
    epochs

let print ppf rows =
  Format.fprintf ppf
    "== Experiment LG1: border-map drift under temporal churn ==@.";
  Format.fprintf ppf "%-5s %9s %6s %5s %7s %9s %9s %7s  %s@." "epoch" "time_h"
    "dirty" "pfx" "borders" "links" "routers" "drift" "events";
  List.iter
    (fun r ->
      let evs =
        if r.events = [] then "-"
        else
          String.concat " "
            (List.map
               (fun (k, n) -> Printf.sprintf "%s=%d" (Evolve.kind_label k) n)
               r.events)
      in
      Format.fprintf ppf "%5d %9.1f %6d %5d %7d %8.1f%% %8.1f%% %6.1f%%  %s@."
        r.epoch (r.time /. 3600.0) r.dirty r.total_pfx r.borders
        r.links.Bdrmap.Validate.pct_correct
        r.routers.Bdrmap.Validate.pct_correct r.drift_pct evs)
    rows
