(** Experiment V1 — §5.6 validation against ground truth for the four
    networks. The paper reports: R&E 96.3%, large access 97.0-98.9%
    (three VPs), Tier-1 97.5% (neighbor routers), small access 96.6%. *)

type row = {
  scenario : string;
  vp_name : string;
  links : Bdrmap.Validate.summary;
  routers : Bdrmap.Validate.summary;
  ixp : Bdrmap.Validate.summary;  (** route-server peers vs IXP registry *)
  paper_pct : float;
}

val run : ?scale:float -> unit -> row list
val print : Format.formatter -> row list -> unit
