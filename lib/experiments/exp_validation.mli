(** Experiment V1 — §5.6 validation against ground truth for the four
    networks. The paper reports: R&E 96.3%, large access 97.0-98.9%
    (three VPs), Tier-1 97.5% (neighbor routers), small access 96.6%.
    The three large-access VP runs are additionally merged into one
    border map ({!Bdrmap.Aggregate.merge_runs}), the deployed-system
    aggregation step. *)

type row = {
  scenario : string;
  vp_name : string;
  links : Bdrmap.Validate.summary;
  routers : Bdrmap.Validate.summary;
  ixp : Bdrmap.Validate.summary;  (** route-server peers vs IXP registry *)
  paper_pct : float;
}

type t = {
  rows : row list;
  merged_vps : int;  (** VPs merged in the large-access aggregation *)
  merged_links : int;  (** distinct border links across those VPs *)
}

val run : ?scale:float -> unit -> t
val print : Format.formatter -> t -> unit
