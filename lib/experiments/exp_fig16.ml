module Gen = Topogen.Gen
module Net = Topogen.Net

type mark = { link_lid : int; lon : float; city : string }
type vp_row = { vp_name : string; vp_lon : float; marks : mark list }
type neighbor_plot = { neighbor : string; rows : vp_row list; total_links : int }
type t = neighbor_plot list

let run ?(scale = 1.0) ?pool ?store () =
  let params = Topogen.Scenario.large_access ~scale () in
  (* Destination composition matters for path diversity: the measured
     Internet is dominated by remote prefixes, not direct customers. *)
  let params = { params with Topogen.Gen.n_remote = params.Topogen.Gen.n_remote * 3 } in
  let env = Exp_common.make params in
  let w = env.Exp_common.world in
  (* The paper geolocates the VP-side of each link from the reverse DNS
     of border interfaces; we do the same against the simulated PTR
     registry, falling back to the router record when unnamed. *)
  let dns = Topogen.Dns.build w.Gen.net ~seed:params.Topogen.Gen.seed in
  let host_org = Exp_common.org_of env w.Gen.host_asn in
  let prefixes = Exp_common.external_prefixes env in
  (* One crossing-link sweep per VP (domain-parallel under ?pool),
     reused for every neighbor plot below. *)
  let per_vp =
    List.combine w.Gen.vps (Exp_common.crossing_links_by_vp ?pool ?store env prefixes)
  in
  let targets =
    (Printf.sprintf "level3-like (AS%d)" w.Gen.big_peer, Exp_common.org_of env w.Gen.big_peer)
    :: List.filteri
         (fun i _ -> i < 2)
         (List.mapi
            (fun i asn ->
              let style = if i mod 3 = 0 then "akamai-like" else "google-like" in
              (Printf.sprintf "%s (AS%d)" style asn, Exp_common.org_of env asn))
            w.Gen.cdn_peers)
  in
  List.map
    (fun (label, org) ->
      let truth = Exp_common.host_links_to env ~neighbor_org:org in
      let truth_ids = List.map (fun (l : Net.link) -> l.Net.lid) truth in
      let rows =
        List.map
          (fun (vp, vp_links) ->
            let marks =
              List.fold_left
                (fun acc crossed ->
                  match crossed with
                  | Some (l : Net.link) when List.mem l.Net.lid truth_ids ->
                    if List.exists (fun m -> m.link_lid = l.Net.lid) acc then acc
                    else
                      let near, near_addr =
                        let ra = Net.router w.Gen.net (fst l.Net.a) in
                        if String.equal (Exp_common.org_of env ra.Net.owner) host_org
                        then (ra, snd l.Net.a)
                        else (Net.router w.Gen.net (fst l.Net.b), snd l.Net.b)
                      in
                      let city =
                        match
                          Option.bind (Topogen.Dns.lookup dns near_addr)
                            Topogen.Dns.parse_city
                        with
                        | Some c -> c
                        | None -> near.Net.city
                      in
                      { link_lid = l.Net.lid; lon = city.Topogen.Geo.lon;
                        city = city.Topogen.Geo.name }
                      :: acc
                  | _ -> acc)
                [] vp_links
            in
            { vp_name = vp.Gen.vp_name;
              vp_lon = vp.Gen.vp_city.Topogen.Geo.lon;
              marks = List.sort (fun a b -> Float.compare a.lon b.lon) marks })
          per_vp
      in
      { neighbor = label; rows; total_links = List.length truth_ids })
    targets

let print ppf t =
  Format.fprintf ppf "== Experiment F16: VP geography vs observed links (fig 16) ==@.";
  List.iter
    (fun plot ->
      Format.fprintf ppf "@.%s (%d links total)@." plot.neighbor plot.total_links;
      List.iter
        (fun row ->
          Format.fprintf ppf "  %-22s lon %7.1f | links:" row.vp_name row.vp_lon;
          List.iter (fun m -> Format.fprintf ppf " %7.1f" m.lon) row.marks;
          Format.fprintf ppf " (%d)@." (List.length row.marks))
        plot.rows)
    t
