(** Adversarial-corpus experiment: run the full inference pipeline over
    every named hostile world in {!Topogen.Corpus} and compare link and
    router accuracy against each scenario's recorded floor. The bench
    harness lands one row per scenario in BENCH.json, where
    [check_bench] fails the build on any floor violation. *)

type row = {
  name : string;
  target : string;  (** heuristic or subsystem the scenario attacks *)
  links : Bdrmap.Validate.summary;
  routers : Bdrmap.Validate.summary;
  link_floor : float;
  router_floor : float;
  coverage_pct : float;
  probes : int;
}

(** [pass r] is whether both accuracies meet their floors. *)
val pass : row -> bool

(** [run ?scale ()] runs every corpus scenario at [scale]
    (default 0.15), in registry order. *)
val run : ?scale:float -> unit -> row list

val print : Format.formatter -> row list -> unit
