type t = {
  inputs : Probesim.Remote.inputs;
  standalone : Probesim.Remote.footprint;
  split : Probesim.Remote.footprint;
  standalone_fits_whitebox : bool;
  split_fits_whitebox : bool;
}

type error = { stage : string; detail : string }

let error_to_string e = Printf.sprintf "resource experiment failed at %s: %s" e.stage e.detail

let ( let* ) = Result.bind

let run ?(scale = 1.0) ?pool ?store () =
  let env = Exp_common.make (Topogen.Scenario.large_access ~scale ()) in
  let* vp =
    match env.Exp_common.world.Topogen.Gen.vps with
    | vp :: _ -> Ok vp
    | [] -> Error { stage = "generate"; detail = "world has no vantage points" }
  in
  (* Footprints are sized from a real collection run; going through
     execute_all gives the run a private engine so the numbers do not
     depend on what other experiments probed before us. *)
  let* r =
    (* The pipeline contract is one run per requested VP; anything else
       here means the sweep dropped or duplicated data, which we surface
       as a typed error rather than an assertion crash. *)
    match Exp_common.run_vps ?pool ?store env [ vp ] with
    | [ r ] -> Ok r
    | runs ->
      Error
        { stage = "vp-sweep";
          detail = Printf.sprintf "expected 1 run for 1 VP, got %d" (List.length runs) }
  in
  let c = r.Bdrmap.Pipeline.collection in
  let trace_hops =
    List.fold_left (fun acc t -> acc + List.length t.Bdrmap.Trace.hops) 0 c.Bdrmap.Collect.traces
  in
  (* Scale the artifact sizes to Internet scale: the real RIB has ~600k
     prefixes against our simulated view, same constant factors. *)
  let rib_n = Bdrmap.Ip2as.routed_prefixes r.Bdrmap.Pipeline.ip2as in
  let blow_up = 600_000 / max 1 rib_n in
  let inputs =
    (* The IP-AS trie, relationship graph and target list scale with the
       global routing table; trace and alias state is processed per
       target AS and bounded by the hosting network's interconnection
       density, so it keeps its measured size. *)
    { Probesim.Remote.routed_prefixes = rib_n * blow_up;
      as_rel_edges =
        Bgpdata.As_rel.edge_count env.Exp_common.inputs.Bdrmap.Pipeline.rels * blow_up;
      target_blocks = List.length c.Bdrmap.Collect.traces * blow_up;
      stopset_entries = c.Bdrmap.Collect.stopset_hits * 50;
      alias_pairs = c.Bdrmap.Collect.alias_pairs_tested * 50;
      trace_hops = trace_hops * 50 }
  in
  let standalone = Probesim.Remote.footprint Probesim.Remote.Standalone inputs in
  let split = Probesim.Remote.footprint Probesim.Remote.Split inputs in
  Ok
    { inputs;
      standalone;
      split;
      standalone_fits_whitebox =
        Probesim.Remote.fits ~ram_bytes:Probesim.Remote.whitebox_ram standalone;
      split_fits_whitebox = Probesim.Remote.fits ~ram_bytes:Probesim.Remote.whitebox_ram split }

let print ppf t =
  Format.fprintf ppf "== Experiment R2: resource-limited deployment (5.8) ==@.";
  Format.fprintf ppf "standalone: %a (fits 32MB whitebox: %b)@." Probesim.Remote.pp
    t.standalone t.standalone_fits_whitebox;
  Format.fprintf ppf "split:      %a (fits 32MB whitebox: %b)@." Probesim.Remote.pp t.split
    t.split_fits_whitebox;
  Format.fprintf ppf
    "paper: standalone bdrmap ~150MB; scamper prober on device 3.5MB (11%% of 32MB)@."
