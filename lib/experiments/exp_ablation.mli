(** Ablation studies for the design choices DESIGN.md calls out:

    - disabling individual heuristic steps, measuring the accuracy and
      coverage a downstream user would lose;
    - Ally trial repetition (1 vs 5 trials): false-alias rate;
    - the export-direction refinement in relationship inference:
      relationship agreement with ground truth with and without it. *)

type heuristic_row = {
  label : string;
  links : int;
  pct_correct : float;
  coverage_pct : float;
}

type alias_row = {
  label : string;
  pairs_tested : int;
  false_alias_groups : int;  (** alias groups spanning several true routers *)
}

type rel_row = { label : string; agree : int; total : int }

type t = {
  heuristics : heuristic_row list;
  alias : alias_row list;
  rels : rel_row list;
}

val run : ?scale:float -> unit -> t
val print : Format.formatter -> t -> unit
