(** Shared experiment plumbing: build a world once, run the bdrmap
    pipeline from one or many VPs over a shared probing engine, and map
    observations back to ground truth where a figure needs true
    router identity (standing in for MIDAR-grade alias resolution). *)

open Netcore
module Gen = Topogen.Gen
module Net = Topogen.Net

type env = {
  world : Gen.world;
  bgp : Routing.Bgp.t;
  fwd : Routing.Forwarding.t;
  engine : Probesim.Engine.t;
  inputs : Bdrmap.Pipeline.inputs;
}

val make : ?pps:float -> Gen.params -> env

(** [run_vp env vp] executes the full pipeline from [vp]. *)
val run_vp : env -> Gen.vp -> Bdrmap.Pipeline.run

(** [run_vps ?pool ?store env vps] executes the pipeline from every VP
    via {!Bdrmap.Pipeline.execute_all}: private per-VP engines, optional
    domain parallelism and persistent checkpointing, results in [vps]
    order. *)
val run_vps :
  ?pool:Pool.t -> ?store:Store.t -> env -> Gen.vp list -> Bdrmap.Pipeline.run list

(** [org_of env asn] resolves the ground-truth organization. *)
val org_of : env -> Asn.t -> string

(** [host_links_to env ~neighbor_org] is every true interdomain link of
    the hosting org with [neighbor_org]. *)
val host_links_to : env -> neighbor_org:string -> Net.link list

(** [crossing_link env ~vp ~dst] is the first interdomain link the
    forward path from [vp] to [dst] crosses out of the hosting org. *)
val crossing_link : env -> vp:Gen.vp -> dst:Ipv4.t -> Net.link option

(** [crossing_links_by_vp ?pool env prefixes] is {!crossing_link} for
    every (VP, prefix) pair: one inner list per VP in [env]'s VP order,
    one element per prefix in [prefixes] order.  With a pool, VPs are
    spread over the worker domains, each with its own forwarding stack;
    the result is identical to the serial sweep.  With a [store], each
    VP's column is cached under (world params, prefixes, vp) — the
    sweeps of fig 14/15/16 share one key space, so they warm-start from
    each other even within a single cold invocation. *)
val crossing_links_by_vp :
  ?pool:Pool.t ->
  ?store:Store.t ->
  env ->
  (Prefix.t * Ipv4.t) list ->
  Net.link option list list

(** [external_prefixes env] is every routed prefix not originated by the
    hosting org, with a representative probe address. *)
val external_prefixes : env -> (Prefix.t * Ipv4.t) list
