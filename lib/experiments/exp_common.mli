(** Shared experiment plumbing: build a world once, run the bdrmap
    pipeline from one or many VPs over a shared probing engine, and map
    observations back to ground truth where a figure needs true
    router identity (standing in for MIDAR-grade alias resolution). *)

open Netcore
module Gen = Topogen.Gen
module Net = Topogen.Net

type env = {
  world : Gen.world;
  bgp : Routing.Bgp.t;
  fwd : Routing.Forwarding.t;
  engine : Probesim.Engine.t;
  inputs : Bdrmap.Pipeline.inputs;
}

val make : ?pps:float -> Gen.params -> env

(** [run_vp env vp] executes the full pipeline from [vp]. *)
val run_vp : env -> Gen.vp -> Bdrmap.Pipeline.run

(** [org_of env asn] resolves the ground-truth organization. *)
val org_of : env -> Asn.t -> string

(** [host_links_to env ~neighbor_org] is every true interdomain link of
    the hosting org with [neighbor_org]. *)
val host_links_to : env -> neighbor_org:string -> Net.link list

(** [crossing_link env ~vp ~dst] is the first interdomain link the
    forward path from [vp] to [dst] crosses out of the hosting org. *)
val crossing_link : env -> vp:Gen.vp -> dst:Ipv4.t -> Net.link option

(** [external_prefixes env] is every routed prefix not originated by the
    hosting org, with a representative probe address. *)
val external_prefixes : env -> (Prefix.t * Ipv4.t) list
