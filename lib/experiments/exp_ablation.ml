open Netcore
module Gen = Topogen.Gen
module Net = Topogen.Net
module H = Bdrmap.Heuristics

type heuristic_row = {
  label : string;
  links : int;
  pct_correct : float;
  coverage_pct : float;
}

type alias_row = {
  label : string;
  pairs_tested : int;
  false_alias_groups : int;
}

type rel_row = { label : string; agree : int; total : int }

type t = {
  heuristics : heuristic_row list;
  alias : alias_row list;
  rels : rel_row list;
}

let heuristic_ablation env vp =
  let run0 = Exp_common.run_vp env vp in
  let cases =
    [ ("full", []);
      ("no firewall (2)", [ H.T2_firewall ]);
      ("no unrouted (3)", [ H.T3_unrouted ]);
      ("no onenet (4)", [ H.T4_onenet ]);
      ("no third-party (5)", [ H.T5_third_party ]);
      ("no relationship (5)", [ H.T5_relationship ]);
      ("no count (6)", [ H.T6_count ]) ]
  in
  List.map
    (fun (label, disabled) ->
      let inference =
        H.infer ~disabled run0.Bdrmap.Pipeline.cfg run0.Bdrmap.Pipeline.ip2as
          ~rels:env.Exp_common.inputs.Bdrmap.Pipeline.rels run0.Bdrmap.Pipeline.graph
          run0.Bdrmap.Pipeline.collection
      in
      let evals = Bdrmap.Validate.links env.Exp_common.world run0.Bdrmap.Pipeline.graph inference in
      let s = Bdrmap.Validate.summarize evals in
      let table =
        Bdrmap.Report.table1 ~rels:env.Exp_common.inputs.Bdrmap.Pipeline.rels
          ~vp_asns:env.Exp_common.inputs.Bdrmap.Pipeline.vp_asns inference
      in
      ({ label; links = s.Bdrmap.Validate.total;
        pct_correct = s.Bdrmap.Validate.pct_correct;
        coverage_pct = table.Bdrmap.Report.coverage_pct } : heuristic_row))
    cases

(* Count alias groups whose addresses truly live on different routers. *)
let false_groups (w : Gen.world) aliases =
  List.length
    (List.filter
       (fun group ->
         let rids =
           List.filter_map
             (fun a -> Option.map (fun (r : Net.router) -> r.Net.rid) (Net.owner_of_addr w.Gen.net a))
             group
           |> List.sort_uniq compare
         in
         List.length rids > 1)
       (Aliasres.Alias_graph.groups aliases))

let alias_ablation params =
  List.map
    (fun (label, proximity, trials) ->
      let env = Exp_common.make params in
      let vp = List.hd env.Exp_common.world.Gen.vps in
      let cfg =
        { (Bdrmap.Config.default ~vp_asns:env.Exp_common.inputs.Bdrmap.Pipeline.vp_asns)
          with
          Bdrmap.Config.ally_trials = trials;
          ally_proximity = proximity }
      in
      let r = Bdrmap.Pipeline.execute ~cfg env.Exp_common.engine env.Exp_common.inputs ~vp in
      ({ label;
         pairs_tested = r.Bdrmap.Pipeline.collection.Bdrmap.Collect.alias_pairs_tested;
         false_alias_groups =
           false_groups env.Exp_common.world
             r.Bdrmap.Pipeline.collection.Bdrmap.Collect.aliases }
        : alias_row))
    [ ("classic proximity, 1 trial", true, 1);
      ("monotonic, 1 trial", false, 1);
      ("monotonic, 5 trials", false, 5) ]

let rel_ablation env =
  let w = env.Exp_common.world in
  let rib = env.Exp_common.inputs.Bdrmap.Pipeline.rib in
  let paths = Bgpdata.Rib.all_paths rib in
  let clique = Bgpdata.Rel_infer.infer_clique paths in
  let agree rels =
    let truth = Gen.host_neighbor_truth w in
    Asn.Map.fold
      (fun asn kind (a, t) ->
        let inferred = Bgpdata.As_rel.rel rels ~of_:w.Gen.host_asn ~with_:asn in
        let ok =
          match (kind, inferred) with
          | `Customer, Some Bgpdata.As_rel.Customer -> true
          | `Peer, Some Bgpdata.As_rel.Peer -> true
          | `Provider, Some Bgpdata.As_rel.Provider -> true
          | _ -> false
        in
        ((if ok then a + 1 else a), t + 1))
      truth (0, 0)
  in
  let with_ref = agree (Bgpdata.Rel_infer.infer_with_clique clique paths) in
  let without = agree (Bgpdata.Rel_infer.vote_pass clique paths) in
  [ { label = "votes + export-direction refinement"; agree = fst with_ref; total = snd with_ref };
    { label = "votes only"; agree = fst without; total = snd without } ]

let run ?(scale = 1.0) () =
  let params = Topogen.Scenario.large_access ~scale () in
  let env = Exp_common.make params in
  let vp = List.hd env.Exp_common.world.Gen.vps in
  { heuristics = heuristic_ablation env vp;
    alias = alias_ablation (Topogen.Scenario.r_and_e ~scale ());
    rels = rel_ablation env }

let print ppf t =
  Format.fprintf ppf "== Ablations ==@.";
  Format.fprintf ppf "heuristic steps (large access):@.";
  Format.fprintf ppf "  %-24s %7s %9s %9s@." "variant" "links" "correct" "coverage";
  List.iter
    (fun (r : heuristic_row) ->
      Format.fprintf ppf "  %-24s %7d %8.1f%% %8.1f%%@." r.label r.links r.pct_correct
        r.coverage_pct)
    t.heuristics;
  Format.fprintf ppf "Ally discipline (R&E):@.";
  List.iter
    (fun (r : alias_row) ->
      Format.fprintf ppf "  %-28s pairs=%d false-alias groups=%d@." r.label
        r.pairs_tested r.false_alias_groups)
    t.alias;
  Format.fprintf ppf "relationship inference (host neighbors correct):@.";
  List.iter
    (fun r -> Format.fprintf ppf "  %-38s %d/%d@." r.label r.agree r.total)
    t.rels
