module Gen = Topogen.Gen
module Net = Topogen.Net

type row = {
  algorithm : string;
  links : int;
  neighbors : int;
  correct_pct : float;
}

type t = { scenario : string; rows : row list }

(* Judge a baseline link: the address claimed to sit on the neighbor's
   side must be on a router whose true owner's org matches. *)
let judge env (l : Bdrmap.Baselines.link) =
  let org asn = Exp_common.org_of env asn in
  let addr = Option.value ~default:l.Bdrmap.Baselines.near_addr l.Bdrmap.Baselines.far_addr in
  match Net.owner_of_addr env.Exp_common.world.Gen.net addr with
  | None -> `Unverifiable
  | Some r ->
    if String.equal (org r.Net.owner) (org l.Bdrmap.Baselines.neighbor) then `Correct
    else `Wrong

let score env links =
  let verdicts = List.map (judge env) links in
  let count v = List.length (List.filter (( = ) v) verdicts) in
  let verifiable = List.length links - count `Unverifiable in
  let neighbors =
    List.sort_uniq compare (List.map (fun (l : Bdrmap.Baselines.link) -> l.neighbor) links)
  in
  { algorithm = "";
    links = List.length links;
    neighbors = List.length neighbors;
    correct_pct =
      (if verifiable = 0 then 0.0
       else 100.0 *. float_of_int (count `Correct) /. float_of_int verifiable) }

let run ?(scale = 1.0) () =
  let params = Topogen.Scenario.r_and_e ~scale () in
  let env = Exp_common.make params in
  let vp = List.hd env.Exp_common.world.Gen.vps in
  let r = Exp_common.run_vp env vp in
  let traces = r.Bdrmap.Pipeline.collection.Bdrmap.Collect.traces in
  let ip2as = r.Bdrmap.Pipeline.ip2as in
  (* bdrmap's own links, scored with the same addr-level judge via the
     far node's first address. *)
  let bdrmap_links =
    List.filter_map
      (fun (l : Bdrmap.Heuristics.border_link) ->
        let addr_of = function
          | Some id -> (
            match Bdrmap.Rgraph.all_addrs (Bdrmap.Rgraph.node r.Bdrmap.Pipeline.graph id) with
            | a :: _ -> Some a
            | [] -> None)
          | None -> None
        in
        match addr_of l.Bdrmap.Heuristics.near_node with
        | None -> None
        | Some near ->
          Some
            { Bdrmap.Baselines.near_addr = near;
              far_addr = addr_of l.Bdrmap.Heuristics.far_node;
              neighbor = l.Bdrmap.Heuristics.neighbor })
      r.Bdrmap.Pipeline.inference.Bdrmap.Heuristics.links
  in
  let bdrmap_row =
    (* For bdrmap, silent links (no far addr) are judged through the full
       validator instead of the addr-level judge. *)
    let evals =
      Bdrmap.Validate.links env.Exp_common.world r.Bdrmap.Pipeline.graph
        r.Bdrmap.Pipeline.inference
    in
    let s = Bdrmap.Validate.summarize evals in
    { algorithm = "bdrmap";
      links = s.Bdrmap.Validate.total;
      neighbors =
        List.length
          (List.sort_uniq compare
             (List.map
                (fun (l : Bdrmap.Heuristics.border_link) -> l.Bdrmap.Heuristics.neighbor)
                r.Bdrmap.Pipeline.inference.Bdrmap.Heuristics.links));
      correct_pct = s.Bdrmap.Validate.pct_correct }
  in
  ignore bdrmap_links;
  let naive = Bdrmap.Baselines.naive_ipas ip2as traces in
  let mapit = Bdrmap.Baselines.mapit ip2as traces in
  { scenario = "R&E network";
    rows =
      [ bdrmap_row;
        { (score env naive) with algorithm = "naive IP-AS" };
        { (score env mapit) with algorithm = "MAP-IT style" } ] }

let print ppf t =
  Format.fprintf ppf "== Baseline comparison (%s) ==@." t.scenario;
  Format.fprintf ppf "%-14s %7s %10s %9s@." "algorithm" "links" "neighbors" "correct";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s %7d %10d %8.1f%%@." r.algorithm r.links r.neighbors
        r.correct_pct)
    t.rows;
  Format.fprintf ppf
    "(MAP-IT-style inference misses path-end borders - firewalled and@.\
    \ silent customers - roughly half the links, as the paper notes in 3)@."
