open Netcore
module Gen = Topogen.Gen
module Net = Topogen.Net

type env = {
  world : Gen.world;
  bgp : Routing.Bgp.t;
  fwd : Routing.Forwarding.t;
  engine : Probesim.Engine.t;
  inputs : Bdrmap.Pipeline.inputs;
}

(* Worlds are deterministic in their parameters, and the probing engine
   is reusable across experiments (collection accounting works on
   deltas), so environments are shared between experiments. *)
let cache : (Gen.params * float, env) Hashtbl.t = Hashtbl.create 8

let make ?(pps = 100.0) params =
  match Hashtbl.find_opt cache (params, pps) with
  | Some env -> env
  | None ->
    let world = Gen.generate params in
    let bgp, fwd, engine, inputs = Bdrmap.Pipeline.setup ~pps world in
    let env = { world; bgp; fwd; engine; inputs } in
    Hashtbl.add cache (params, pps) env;
    env

let run_vp env vp = Bdrmap.Pipeline.execute env.engine env.inputs ~vp

let run_vps ?pool ?store env vps =
  Bdrmap.Pipeline.execute_all ?pool ?store env.world env.inputs ~vps

let org_of env asn =
  match Bgpdata.As2org.org_of env.world.Gen.as2org asn with
  | Some o -> o
  | None -> Printf.sprintf "unknown-%d" asn

let host_links_to env ~neighbor_org =
  let host_org = org_of env env.world.Gen.host_asn in
  List.filter
    (fun (l : Net.link) ->
      let oa = org_of env (Net.router env.world.Gen.net (fst l.Net.a)).Net.owner in
      let ob = org_of env (Net.router env.world.Gen.net (fst l.Net.b)).Net.owner in
      (String.equal oa host_org && String.equal ob neighbor_org)
      || (String.equal ob host_org && String.equal oa neighbor_org))
    (Net.interdomain_links env.world.Gen.net)

let crossing_link_via env fwd ~vp ~dst =
  let host_org = org_of env env.world.Gen.host_asn in
  let steps = Routing.Forwarding.path fwd ~src_rid:vp.Gen.vp_rid ~dst () in
  List.find_map
    (fun (s : Routing.Forwarding.step) ->
      match s.Routing.Forwarding.in_link with
      | Some l when l.Net.kind <> Net.Internal ->
        let oa = org_of env (Net.router env.world.Gen.net (fst l.Net.a)).Net.owner in
        let ob = org_of env (Net.router env.world.Gen.net (fst l.Net.b)).Net.owner in
        if String.equal oa host_org || String.equal ob host_org then Some l else None
      | _ -> None)
    steps

let crossing_link env ~vp ~dst = crossing_link_via env env.fwd ~vp ~dst

(* Per-VP cache key for a crossing-link sweep: the column is a pure
   function of the world (itself a pure function of [params]) and the
   prefix list. Version lives in the namespace tuple; [Net.link] is
   plain data, so the marshaled columns round-trip exactly. Note the
   key does not depend on which experiment asks — fig14/15/16 share
   identical sweeps, so the second and third experiment of even a cold
   `experiments` invocation warm-start from the first one's entries. *)
let crossing_key (w : Gen.world) prefixes (vp : Gen.vp) =
  Bdrmap.Run_store.digest_key
    ("bdrmap-crossing", 1, w.Gen.params, prefixes, vp.Gen.vp_rid)

let crossing_links_by_vp ?pool ?store env prefixes =
  let w = env.world in
  let memo vp f =
    match store with
    | None -> f ()
    | Some st ->
      Bdrmap.Run_store.memo st
        ~key:(crossing_key w prefixes vp)
        ~vp:vp.Gen.vp_name ~what:"crossing-links" f
  in
  match pool with
  | None ->
    (* Serial path: share the environment's forwarding memos across
       VPs, exactly as the experiments always have. *)
    List.map
      (fun vp ->
        memo vp (fun () ->
            List.map (fun (_, dst) -> crossing_link env ~vp ~dst) prefixes))
      w.Gen.vps
  | Some pool ->
    Bdrmap.Pipeline.freeze_shared w env.inputs;
    Obs.Metrics.incr "pipeline.crossing_sweeps";
    (* One frozen snapshot + plan serves every worker; the per-domain
       init shrinks to attaching the shared state behind thin private
       caches. Path computation is a pure function of the world, so the
       result does not depend on which domain served which VP. *)
    let shared = Bdrmap.Pipeline.freeze_routing ?store w in
    Netcore.Pool.map_init pool
      ~init:(fun () ->
        let bgp = Routing.Bgp.of_snapshot shared.Bdrmap.Pipeline.snapshot in
        Routing.Forwarding.create ~plan:shared.Bdrmap.Pipeline.plan w.Gen.net bgp)
      (fun fwd vp ->
        memo vp (fun () ->
            List.map
              (fun (_, dst) -> crossing_link_via env fwd ~vp ~dst)
              prefixes))
      w.Gen.vps

let external_prefixes env =
  let vp_asns = env.world.Gen.siblings in
  List.filter_map
    (fun (p, origins) ->
      if Asn.Set.disjoint origins vp_asns then Some (p, Ipv4.add (Prefix.first p) 1)
      else None)
    (Gen.originated env.world)
