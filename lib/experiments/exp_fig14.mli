(** Experiment F14 — Figure 14: distribution of the number of distinct
    border routers and next-hop ASes observed on paths to every routed
    prefix from the VPs of the large access network. The paper found
    <2% of prefixes leaving via one border router from all VPs, 73% via
    5-15 routers, 13% via more than 15, and 67% of prefixes using the
    same next-hop AS from every VP. *)

type t = {
  n_vps : int;
  n_prefixes : int;
  (* CDF support: (value, fraction of prefixes with count <= value). *)
  border_router_cdf : (int * float) list;
  nexthop_as_cdf : (int * float) list;
  pct_single_router : float;
  pct_5_to_15_routers : float;
  pct_over_15_routers : float;
  pct_single_nexthop : float;
  remote : (float * float * float * float) option;
      (** the same four stats over non-neighbor prefixes only, the
          composition closest to the paper's 500k-prefix denominator *)
}

val run : ?scale:float -> ?pool:Netcore.Pool.t -> ?store:Store.t -> unit -> t
val print : Format.formatter -> t -> unit
