(** Experiment RB1 — robustness of border inference under measurement
    impairments (§4, §5.4). One small-access world is probed at a sweep
    of fault intensities ({!Topogen.Scenario.impairment}): ICMP token
    buckets, probe/reply loss, routers going dark mid-run, and flapping
    interdomain links. Each row reports link and router accuracy against
    ground truth, neighbor coverage, and the probe overhead the retry
    ladder pays relative to the unimpaired baseline. Level 0 is the
    exact default pipeline on a fault-free engine. *)

type row = {
  intensity : float;  (** impairment knob in [0, 1] *)
  links : Bdrmap.Validate.summary;
  routers : Bdrmap.Validate.summary;
  coverage_pct : float;  (** BGP neighbor coverage, Table-1 style *)
  probes : int;
  overhead_pct : float;  (** probes vs the first level, percent *)
  faults : Probesim.Fault.stats;
}

val default_levels : float list
(** [0.0; 0.25; 0.5; 0.75; 1.0] *)

val run : ?scale:float -> ?levels:float list -> unit -> row list
val print : Format.formatter -> row list -> unit
