(** Experiment LG1 — border-map drift under temporal churn (§6). One
    small-access world evolves through {!Topogen.Evolve.advance} epochs
    (interdomain link add/remove, new customers, depeerings, prefix
    aggregation/deaggregation); each epoch the routing state is
    incrementally re-frozen ({!Routing.Bgp.refreeze} +
    {!Routing.Forwarding.patch}, validated against a from-scratch
    freeze) and inference re-runs from the first vantage point. Each
    row reports the applied event mix, how many prefixes the
    incremental path re-propagated, inferred border count, link and
    router accuracy against the evolved ground truth, and the drift of
    the inferred border set relative to the previous epoch. *)

type row = {
  epoch : int;  (** 0 is the unevolved world *)
  time : float;  (** simulated clock at end of epoch, seconds *)
  events : (Topogen.Evolve.kind * int) list;
      (** nonzero per-class event counts, in {!Topogen.Evolve.all_kinds}
          order *)
  dirty : int;  (** prefixes re-propagated (0 at epoch 0) *)
  total_pfx : int;  (** prefixes in the epoch's snapshot *)
  borders : int;  (** inferred interdomain border links *)
  links : Bdrmap.Validate.summary;
  routers : Bdrmap.Validate.summary;
  drift_pct : float;
      (** multiset symmetric difference of inferred border-neighbor
          ASNs vs the previous epoch, as a percentage of the union
          (0 at epoch 0) *)
}

val run :
  ?scale:float -> ?schedule:Topogen.Evolve.schedule -> unit -> row list

val print : Format.formatter -> row list -> unit
