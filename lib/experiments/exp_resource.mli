(** Experiment R2 — §5.8 resource-limited devices: state footprint of a
    standalone bdrmap versus the split prober/controller deployment,
    sized from an actual large-access run. The paper: bdrmap needs
    ~150 MB, the scamper prober on a BISmark device used 3.5 MB, and the
    whitebox device class has 32 MB total. *)

type t = {
  inputs : Probesim.Remote.inputs;
  standalone : Probesim.Remote.footprint;
  split : Probesim.Remote.footprint;
  standalone_fits_whitebox : bool;
  split_fits_whitebox : bool;
}

(** Why the experiment could not produce a footprint: [stage] names the
    phase that failed ("generate", "vp-sweep"), [detail] says what went
    wrong. Reachable from data (e.g. a zero-VP world), so it is a typed
    error rather than an assertion. *)
type error = { stage : string; detail : string }

val error_to_string : error -> string

val run :
  ?scale:float -> ?pool:Netcore.Pool.t -> ?store:Store.t -> unit -> (t, error) result

val print : Format.formatter -> t -> unit
