(** Experiment F16 — Figure 16: the effect of VP geography on which
    interdomain links a VP observes. Each row is one VP (with its
    longitude); the marks are the longitudes of the host-side routers of
    the links that VP observed toward a given neighbor. Akamai-style
    announcement lets any VP see every link; Level3-style hot potato
    shows each VP only its region. *)

type mark = { link_lid : int; lon : float; city : string }

type vp_row = { vp_name : string; vp_lon : float; marks : mark list }

type neighbor_plot = { neighbor : string; rows : vp_row list; total_links : int }

type t = neighbor_plot list

val run : ?scale:float -> ?pool:Netcore.Pool.t -> ?store:Store.t -> unit -> t
val print : Format.formatter -> t -> unit
