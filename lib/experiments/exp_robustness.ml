module Gen = Topogen.Gen
module Fault = Probesim.Fault

type row = {
  intensity : float;
  links : Bdrmap.Validate.summary;
  routers : Bdrmap.Validate.summary;
  coverage_pct : float;
  probes : int;
  overhead_pct : float;
  faults : Fault.stats;
}

let default_levels = [ 0.0; 0.25; 0.5; 0.75; 1.0 ]

(* The impairment sweep reuses one world (fault knobs do not perturb
   generation) but gives every level a private engine: buckets, dark
   quotas and the clock are measurement state, and level [i] must not
   inherit level [i-1]'s exhaustion. Level 0 runs the exact default
   configuration on a zero fault config, so its row reproduces the
   unimpaired small-access validation number probe for probe. *)
let run ?(scale = 0.3) ?(levels = default_levels) () =
  let params = Topogen.Scenario.small_access ~scale () in
  let env = Exp_common.make params in
  let w = env.Exp_common.world in
  let vp = List.hd w.Gen.vps in
  let vp_asns = env.Exp_common.inputs.Bdrmap.Pipeline.vp_asns in
  let rows =
    List.map
      (fun intensity ->
        let profile = Topogen.Scenario.impairment ~intensity in
        let fault = Fault.of_profile ~profile w in
        let engine =
          Probesim.Engine.create ~pps:100.0 ~fault w env.Exp_common.fwd
        in
        let cfg =
          let d = Bdrmap.Config.default ~vp_asns in
          if intensity = 0.0 then d
          else
            (* Impaired collection leans on the retry ladder: two extra
               attempts per silent hop with backoff, bounded per target. *)
            { d with Bdrmap.Config.probe_retries = 2; retry_budget = 24 }
        in
        let r =
          Bdrmap.Pipeline.execute ~cfg engine env.Exp_common.inputs ~vp
        in
        let evals =
          Bdrmap.Validate.links w r.Bdrmap.Pipeline.graph
            r.Bdrmap.Pipeline.inference
        in
        let table =
          Bdrmap.Report.table1 ~rels:env.Exp_common.inputs.Bdrmap.Pipeline.rels
            ~vp_asns r.Bdrmap.Pipeline.inference
        in
        { intensity;
          links = Bdrmap.Validate.summarize evals;
          routers =
            Bdrmap.Validate.router_accuracy w r.Bdrmap.Pipeline.graph
              r.Bdrmap.Pipeline.inference;
          coverage_pct = table.Bdrmap.Report.coverage_pct;
          probes = Probesim.Engine.probe_count engine;
          overhead_pct = 0.0;
          faults = Probesim.Engine.fault_stats engine })
      levels
  in
  (* Probe overhead is relative to the first (least impaired) level. *)
  match rows with
  | [] -> []
  | base :: _ ->
    let b = float_of_int (max 1 base.probes) in
    List.map
      (fun r ->
        { r with
          overhead_pct = 100.0 *. (float_of_int r.probes -. b) /. b })
      rows

let print ppf rows =
  Format.fprintf ppf
    "== Experiment RB1: inference robustness under measurement faults ==@.";
  Format.fprintf ppf "%-9s %6s %9s %9s %9s %8s %9s@." "intensity" "links"
    "correct" "routers" "coverage" "probes" "overhead";
  List.iter
    (fun r ->
      Format.fprintf ppf "%9.2f %6d %8.1f%% %8.1f%% %8.1f%% %8d %+8.1f%%@."
        r.intensity r.links.Bdrmap.Validate.total
        r.links.Bdrmap.Validate.pct_correct
        r.routers.Bdrmap.Validate.pct_correct r.coverage_pct r.probes
        r.overhead_pct)
    rows;
  Format.fprintf ppf "@.Fault-layer drops per level:@.";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  %5.2f: probes_lost=%d replies_lost=%d rate_limited=%d dark=%d \
         link_failures=%d@."
        r.intensity r.faults.Fault.probes_lost r.faults.Fault.replies_lost
        r.faults.Fault.rate_limited r.faults.Fault.dark_dropped
        r.faults.Fault.failure_hits)
    rows
