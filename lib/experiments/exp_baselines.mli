(** Baseline comparison (§3, §4): bdrmap versus the canonical IP-AS
    mapping approach and a MAP-IT-style interface-graph inference, all
    run over the same collected traces. The paper's claims:

    - naive longest-match transitions mis-attribute borders for the seven
      reasons of §4 (neighbor-supplied addresses alone put most customer
      borders one AS off);
    - MAP-IT needs adjacent addresses inside the neighbor and therefore
      cannot place the ~half of interdomain links that sit at the end of
      paths (firewalled/silent customers). *)

type row = {
  algorithm : string;
  links : int;
  neighbors : int;  (** distinct neighbor ASes with at least one link *)
  correct_pct : float;  (** of verifiable links, neighbor org correct *)
}

type t = { scenario : string; rows : row list }

val run : ?scale:float -> unit -> t
val print : Format.formatter -> t -> unit
