type row = {
  scenario : string;
  probes : int;
  duration_h : float;
  trace_probes : int;
  alias_probes : int;
  stopset_hits : int;
  probes_without_stopset : int;
}

let run ?(scale = 1.0) () =
  let one name params =
    let env = Exp_common.make params in
    let vp = List.hd env.Exp_common.world.Topogen.Gen.vps in
    let r = Exp_common.run_vp env vp in
    let sched = r.Bdrmap.Pipeline.collection.Bdrmap.Collect.sched in
    (* Ablation: re-run collection without stop sets on a fresh engine. *)
    let env2 = Exp_common.make params in
    let vp2 = List.hd env2.Exp_common.world.Topogen.Gen.vps in
    let cfg =
      { (Bdrmap.Config.default
           ~vp_asns:env2.Exp_common.inputs.Bdrmap.Pipeline.vp_asns)
        with
        Bdrmap.Config.use_stop_sets = false }
    in
    let r2 = Bdrmap.Pipeline.execute ~cfg env2.Exp_common.engine env2.Exp_common.inputs ~vp:vp2 in
    let sched2 = r2.Bdrmap.Pipeline.collection.Bdrmap.Collect.sched in
    { scenario = name;
      probes = Probesim.Scheduler.total sched;
      duration_h = Probesim.Scheduler.duration_h sched;
      trace_probes = Probesim.Scheduler.count sched Probesim.Scheduler.Traceroute;
      alias_probes =
        Probesim.Scheduler.count sched Probesim.Scheduler.Alias
        + Probesim.Scheduler.count sched Probesim.Scheduler.Prefixscan;
      stopset_hits = r.Bdrmap.Pipeline.collection.Bdrmap.Collect.stopset_hits;
      probes_without_stopset =
        Probesim.Scheduler.count sched2 Probesim.Scheduler.Traceroute }
  in
  [ one "R&E network" (Topogen.Scenario.r_and_e ~scale ());
    one "Large access network" (Topogen.Scenario.large_access ~scale ()) ]

let print ppf rows =
  Format.fprintf ppf "== Experiment R1: run-time at 100 pps (5.3) ==@.";
  Format.fprintf ppf "%-24s %9s %8s %9s %9s %9s %14s@." "scenario" "probes" "hours"
    "trace" "alias" "stophits" "trace-no-stop";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-24s %9d %8.2f %9d %9d %9d %14d@." r.scenario r.probes
        r.duration_h r.trace_probes r.alias_probes r.stopset_hits
        r.probes_without_stopset)
    rows;
  match rows with
  | [ re; la ] ->
    Format.fprintf ppf
      "run-time ratio large-access/R&E: %.1fx (paper: 48h/12h = 4.0x at Internet scale)@."
      (la.duration_h /. re.duration_h);
    Format.fprintf ppf "stop-set trace-probe savings: R&E %.1f%%, large access %.1f%%@."
      (100.0 *. (1.0 -. (float_of_int re.trace_probes /. float_of_int re.probes_without_stopset)))
      (100.0 *. (1.0 -. (float_of_int la.trace_probes /. float_of_int la.probes_without_stopset)))
  | _ -> ()
