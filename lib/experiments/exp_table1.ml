type row = {
  scenario : string;
  table : Bdrmap.Report.t;
  paper_coverage : float;
}

let scenarios scale =
  [ ("R&E network", Topogen.Scenario.r_and_e ~scale (), 93.9);
    ("Large access network", Topogen.Scenario.large_access ~scale (), 92.2);
    ("Tier-1 network", Topogen.Scenario.tier1 ~scale (), 96.8) ]

let run ?(scale = 1.0) () =
  List.map
    (fun (name, params, paper_coverage) ->
      let env = Exp_common.make params in
      let vp = List.hd env.Exp_common.world.Topogen.Gen.vps in
      let r = Exp_common.run_vp env vp in
      let table =
        Bdrmap.Report.table1 ~rels:env.Exp_common.inputs.Bdrmap.Pipeline.rels
          ~vp_asns:env.Exp_common.inputs.Bdrmap.Pipeline.vp_asns
          r.Bdrmap.Pipeline.inference
      in
      { scenario = name; table; paper_coverage })
    (scenarios scale)

let print ppf rows =
  Format.fprintf ppf "== Experiment T1: Table 1 ==@.";
  List.iter
    (fun row ->
      Bdrmap.Report.print ~title:row.scenario ppf row.table;
      Format.fprintf ppf "%-24s %8.1f%% (paper: %.1f%%)@.@." "Coverage vs paper"
        row.table.Bdrmap.Report.coverage_pct row.paper_coverage)
    rows
