open Netcore
module Gen = Topogen.Gen
module Net = Topogen.Net

type t = {
  n_vps : int;
  n_prefixes : int;
  border_router_cdf : (int * float) list;
  nexthop_as_cdf : (int * float) list;
  pct_single_router : float;
  pct_5_to_15_routers : float;
  pct_over_15_routers : float;
  pct_single_nexthop : float;
  (* Same stats restricted to prefixes of non-neighbor networks: direct
     customers are vastly over-represented in the simulated world
     relative to the Internet's 500k prefixes, and they are single-exit
     by construction. *)
  remote : (float * float * float * float) option;
}

let cdf_of counts =
  let n = List.length counts in
  let sorted = List.sort compare counts in
  let tbl = Hashtbl.create 32 in
  List.iteri (fun i v -> Hashtbl.replace tbl v (float_of_int (i + 1) /. float_of_int n)) sorted;
  Hashtbl.fold (fun v f acc -> (v, f) :: acc) tbl [] |> List.sort compare

let run ?(scale = 1.0) ?pool ?store () =
  let params = Topogen.Scenario.large_access ~scale () in
  (* Destination composition matters for path diversity: the measured
     Internet is dominated by remote prefixes, not direct customers. *)
  let params = { params with Topogen.Gen.n_remote = params.Topogen.Gen.n_remote * 3 } in
  let env = Exp_common.make params in
  let w = env.Exp_common.world in
  let host_org = Exp_common.org_of env w.Gen.host_asn in
  let prefixes = Exp_common.external_prefixes env in
  let truth = Gen.host_neighbor_truth w in
  (* One crossing-link sweep per VP (domain-parallel under ?pool), then
     a per-prefix pass over the per-VP columns in fixed VP order. *)
  let per_vp =
    List.map Array.of_list (Exp_common.crossing_links_by_vp ?pool ?store env prefixes)
  in
  let per_prefix =
    List.mapi
      (fun idx (p, _dst) ->
        let routers = ref [] and nexthops = ref Asn.Set.empty in
        List.iter
          (fun links ->
            match links.(idx) with
            | None -> ()
            | Some (l : Net.link) ->
              let ra = Net.router w.Gen.net (fst l.Net.a) in
              let rb = Net.router w.Gen.net (fst l.Net.b) in
              let near, far =
                if String.equal (Exp_common.org_of env ra.Net.owner) host_org then (ra, rb)
                else (rb, ra)
              in
              routers := near.Net.rid :: !routers;
              nexthops := Asn.Set.add far.Net.owner !nexthops)
          per_vp;
        let origins = Routing.Bgp.origins env.Exp_common.bgp p in
        let direct =
          Asn.Set.exists (fun o -> Asn.Map.mem o truth) origins
        in
        ( List.length (List.sort_uniq compare !routers),
          Asn.Set.cardinal !nexthops,
          direct ))
      prefixes
  in
  let per_prefix = List.filter (fun (r, _, _) -> r > 0) per_prefix in
  let n = List.length per_prefix in
  let router_counts = List.map (fun (r, _, _) -> r) per_prefix in
  let nexthop_counts = List.map (fun (_, a, _) -> a) per_prefix in
  let pct l f = 100.0 *. float_of_int (List.length (List.filter f l)) /. float_of_int (max 1 (List.length l)) in
  let remote_pp = List.filter (fun (_, _, direct) -> not direct) per_prefix in
  let stats l =
    ( pct l (fun (r, _, _) -> r = 1),
      pct l (fun (r, _, _) -> r >= 5 && r <= 15),
      pct l (fun (r, _, _) -> r > 15),
      pct l (fun (_, a, _) -> a = 1) )
  in
  let s1, s515, s15, snh = stats per_prefix in
  { n_vps = List.length w.Gen.vps;
    n_prefixes = n;
    border_router_cdf = cdf_of router_counts;
    nexthop_as_cdf = cdf_of nexthop_counts;
    pct_single_router = s1;
    pct_5_to_15_routers = s515;
    pct_over_15_routers = s15;
    pct_single_nexthop = snh;
    remote = (if remote_pp = [] then None else Some (stats remote_pp)) }

let print ppf t =
  Format.fprintf ppf "== Experiment F14: border-router / next-hop diversity (fig 14) ==@.";
  Format.fprintf ppf "%d VPs, %d prefixes@." t.n_vps t.n_prefixes;
  Format.fprintf ppf "border routers per prefix CDF:";
  List.iter (fun (v, f) -> Format.fprintf ppf " %d:%.2f" v f) t.border_router_cdf;
  Format.fprintf ppf "@.next-hop ASes per prefix CDF:";
  List.iter (fun (v, f) -> Format.fprintf ppf " %d:%.2f" v f) t.nexthop_as_cdf;
  Format.fprintf ppf
    "@.single border router: %.1f%% (paper <2%%)@.5-15 border routers: %.1f%% (paper 73%%)@."
    t.pct_single_router t.pct_5_to_15_routers;
  Format.fprintf ppf ">15 border routers: %.1f%% (paper 13%%)@." t.pct_over_15_routers;
  Format.fprintf ppf "single next-hop AS: %.1f%% (paper 67%%)@." t.pct_single_nexthop;
  match t.remote with
  | Some (s1, s515, s15, snh) ->
    Format.fprintf ppf
      "remote (non-neighbor) prefixes only: single=%.1f%% 5-15=%.1f%% >15=%.1f%% single-nexthop=%.1f%%@."
      s1 s515 s15 snh
  | None -> ()
