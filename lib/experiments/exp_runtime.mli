(** Experiment R1 — §5.3 run-time model: probe counts and simulated
    duration at 100 pps per scenario, plus the doubletree stop-set
    ablation. The paper reports ≈12 h for the R&E network and ≈48 h for
    large U.S. broadband providers; the absolute numbers scale with the
    routed-prefix count, so we report the shape (ratios). *)

type row = {
  scenario : string;
  probes : int;
  duration_h : float;
  trace_probes : int;
  alias_probes : int;
  stopset_hits : int;
  probes_without_stopset : int;  (** ablation: same run, stop sets off *)
}

val run : ?scale:float -> unit -> row list
val print : Format.formatter -> row list -> unit
