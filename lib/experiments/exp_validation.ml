type row = {
  scenario : string;
  vp_name : string;
  links : Bdrmap.Validate.summary;
  routers : Bdrmap.Validate.summary;
  ixp : Bdrmap.Validate.summary;
  paper_pct : float;
}

let run ?(scale = 1.0) () =
  let eval env vp scenario paper_pct =
    let r = Exp_common.run_vp env vp in
    let evals =
      Bdrmap.Validate.links env.Exp_common.world r.Bdrmap.Pipeline.graph
        r.Bdrmap.Pipeline.inference
    in
    { scenario;
      vp_name = vp.Topogen.Gen.vp_name;
      links = Bdrmap.Validate.summarize evals;
      routers =
        Bdrmap.Validate.router_accuracy env.Exp_common.world r.Bdrmap.Pipeline.graph
          r.Bdrmap.Pipeline.inference;
      ixp =
        Bdrmap.Validate.ixp_members env.Exp_common.world r.Bdrmap.Pipeline.graph
          r.Bdrmap.Pipeline.inference;
      paper_pct }
  in
  let one params scenario paper_pct ~vps =
    let env = Exp_common.make params in
    let chosen =
      List.filteri (fun i _ -> i < vps) env.Exp_common.world.Topogen.Gen.vps
    in
    List.map (fun vp -> eval env vp scenario paper_pct) chosen
  in
  one (Topogen.Scenario.r_and_e ~scale ()) "R&E network" 96.3 ~vps:1
  @ one (Topogen.Scenario.large_access ~scale ()) "Large access network" 98.0 ~vps:3
  @ one (Topogen.Scenario.tier1 ~scale ()) "Tier-1 network" 97.5 ~vps:1
  @ one (Topogen.Scenario.small_access ~scale ()) "Small access network" 96.6 ~vps:1

let print ppf rows =
  Format.fprintf ppf "== Experiment V1: validation against ground truth (5.6) ==@.";
  Format.fprintf ppf "%-22s %-18s %7s %9s %9s %9s@." "scenario" "vp" "links"
    "correct" "measured" "paper";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-22s %-18s %7d %9d %8.1f%% %8.1f%%@." r.scenario r.vp_name
        r.links.Bdrmap.Validate.total r.links.Bdrmap.Validate.correct
        r.links.Bdrmap.Validate.pct_correct r.paper_pct)
    rows;
  Format.fprintf ppf "@.Neighbor-router owner accuracy (Tier-1 style):@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-22s %-18s routers=%d correct=%.1f%%@." r.scenario
        r.vp_name r.routers.Bdrmap.Validate.total r.routers.Bdrmap.Validate.pct_correct)
    rows;
  Format.fprintf ppf "@.Route-server peers vs IXP registry (R&E style, paper: 84/88):@.";
  List.iter
    (fun r ->
      if r.ixp.Bdrmap.Validate.total > 0 then
        Format.fprintf ppf "  %-22s %-18s members=%d correct=%.1f%% stale=%d@."
          r.scenario r.vp_name r.ixp.Bdrmap.Validate.total
          r.ixp.Bdrmap.Validate.pct_correct r.ixp.Bdrmap.Validate.unverifiable)
    rows
