type row = {
  scenario : string;
  vp_name : string;
  links : Bdrmap.Validate.summary;
  routers : Bdrmap.Validate.summary;
  ixp : Bdrmap.Validate.summary;
  paper_pct : float;
}

type t = { rows : row list; merged_vps : int; merged_links : int }

let run ?(scale = 1.0) () =
  let eval env vp scenario paper_pct =
    let r = Exp_common.run_vp env vp in
    let evals =
      Bdrmap.Validate.links env.Exp_common.world r.Bdrmap.Pipeline.graph
        r.Bdrmap.Pipeline.inference
    in
    ( { scenario;
        vp_name = vp.Topogen.Gen.vp_name;
        links = Bdrmap.Validate.summarize evals;
        routers =
          Bdrmap.Validate.router_accuracy env.Exp_common.world r.Bdrmap.Pipeline.graph
            r.Bdrmap.Pipeline.inference;
        ixp =
          Bdrmap.Validate.ixp_members env.Exp_common.world r.Bdrmap.Pipeline.graph
            r.Bdrmap.Pipeline.inference;
        paper_pct },
      r )
  in
  let one params scenario paper_pct ~vps =
    let env = Exp_common.make params in
    let chosen =
      List.filteri (fun i _ -> i < vps) env.Exp_common.world.Topogen.Gen.vps
    in
    List.map (fun vp -> (vp, eval env vp scenario paper_pct)) chosen
  in
  let re = one (Topogen.Scenario.r_and_e ~scale ()) "R&E network" 96.3 ~vps:1 in
  let la =
    one (Topogen.Scenario.large_access ~scale ()) "Large access network" 98.0 ~vps:3
  in
  let t1 = one (Topogen.Scenario.tier1 ~scale ()) "Tier-1 network" 97.5 ~vps:1 in
  let sa =
    one (Topogen.Scenario.small_access ~scale ()) "Small access network" 96.6 ~vps:1
  in
  (* The deployed-system aggregation step (§5.7/fig 15): the three
     large-access per-VP inferences merged into one border map. *)
  let merged =
    Bdrmap.Aggregate.merge_runs
      (List.map
         (fun ((vp : Topogen.Gen.vp), (_, r)) ->
           (vp.Topogen.Gen.vp_name, r.Bdrmap.Pipeline.graph, r.Bdrmap.Pipeline.inference))
         la)
  in
  { rows = List.map (fun (_, (row, _)) -> row) (re @ la @ t1 @ sa);
    merged_vps = List.length la;
    merged_links = List.length merged }

let print ppf { rows; merged_vps; merged_links } =
  Format.fprintf ppf "== Experiment V1: validation against ground truth (5.6) ==@.";
  Format.fprintf ppf "%-22s %-18s %7s %9s %9s %9s@." "scenario" "vp" "links"
    "correct" "measured" "paper";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-22s %-18s %7d %9d %8.1f%% %8.1f%%@." r.scenario r.vp_name
        r.links.Bdrmap.Validate.total r.links.Bdrmap.Validate.correct
        r.links.Bdrmap.Validate.pct_correct r.paper_pct)
    rows;
  Format.fprintf ppf "@.Neighbor-router owner accuracy (Tier-1 style):@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-22s %-18s routers=%d correct=%.1f%%@." r.scenario
        r.vp_name r.routers.Bdrmap.Validate.total r.routers.Bdrmap.Validate.pct_correct)
    rows;
  Format.fprintf ppf "@.Route-server peers vs IXP registry (R&E style, paper: 84/88):@.";
  List.iter
    (fun r ->
      if r.ixp.Bdrmap.Validate.total > 0 then
        Format.fprintf ppf "  %-22s %-18s members=%d correct=%.1f%% stale=%d@."
          r.scenario r.vp_name r.ixp.Bdrmap.Validate.total
          r.ixp.Bdrmap.Validate.pct_correct r.ixp.Bdrmap.Validate.unverifiable)
    rows;
  Format.fprintf ppf "@.Merged border map across the %d large-access VPs: %d links@."
    merged_vps merged_links
