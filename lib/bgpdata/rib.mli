(** A routing-table view assembled from collector snapshots: for each
    routed prefix, the set of origin ASes observed, and the AS paths seen
    toward it. Mirrors the Route Views / RIPE RIS input of §5.2.

    Text format, one route per line:
    {v prefix|path v}
    e.g. {v 128.66.0.0/16|7018 3356 64501 v}
    The origin is the last ASN of the path. Multiple lines per prefix
    accumulate origins and paths. Lines starting with '#' are comments. *)

open Netcore

type t

val empty : t

(** [add_route t prefix path] records one collector route. Prefixes
    outside the /8–/24 size window are ignored, as in §5.2. *)
val add_route : t -> Prefix.t -> As_path.t -> t

val prefixes : t -> Prefix.t list
val cardinal : t -> int

(** [origins t p] is the set of origin ASes observed for exactly [p]. *)
val origins : t -> Prefix.t -> Asn.Set.t

(** [paths t p] is every AS path observed toward [p]. *)
val paths : t -> Prefix.t -> As_path.t list

val all_paths : t -> As_path.t list

(** [lpm t addr] is the longest matching routed prefix and its origins. *)
val lpm : t -> Ipv4.t -> (Prefix.t * Asn.Set.t) option

(** [freeze t] forces the flattened LPM index behind [lpm]/
    [origin_asns] so later lookups — from any domain — are read-only.
    Idempotent; a no-op on tables too small to benefit. Any
    [add_route] after a freeze returns a fresh unfrozen table. *)
val freeze : t -> unit

(** [origin_asns t addr] is the origin set of the longest match, or the
    empty set when [addr] is unrouted. *)
val origin_asns : t -> Ipv4.t -> Asn.Set.t

(** [prefixes_originated_by t asns] is every prefix whose origin set
    intersects [asns]. *)
val prefixes_originated_by : t -> Asn.Set.t -> Prefix.t list

(** [all_origins t] is every AS that originates at least one prefix. *)
val all_origins : t -> Asn.Set.t

(** [more_specifics t p] is the routed prefixes strictly more specific
    than [p]. *)
val more_specifics : t -> Prefix.t -> Prefix.t list

val to_lines : t -> string list
val of_lines : string list -> (t, string) result
val parse_line : string -> (Prefix.t * As_path.t, string) result
