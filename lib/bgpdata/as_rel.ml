open Netcore

type rel = Customer | Provider | Peer

(* For each AS, the sets of its providers, customers and peers. The two
   directions are kept consistent by construction. *)
type sets = { prov : Asn.Set.t; cust : Asn.Set.t; peer : Asn.Set.t }

type t = sets Asn.Map.t

let empty_sets = { prov = Asn.Set.empty; cust = Asn.Set.empty; peer = Asn.Set.empty }
let empty = Asn.Map.empty

let get t a = Option.value ~default:empty_sets (Asn.Map.find_opt a t)

let add_c2p t ~provider ~customer =
  let sp = get t provider and sc = get t customer in
  let t = Asn.Map.add provider { sp with cust = Asn.Set.add customer sp.cust } t in
  Asn.Map.add customer
    { (get t customer) with prov = Asn.Set.add provider sc.prov }
    t

let add_p2p t a b =
  let sa = get t a in
  let t = Asn.Map.add a { sa with peer = Asn.Set.add b sa.peer } t in
  let sb = get t b in
  Asn.Map.add b { sb with peer = Asn.Set.add a sb.peer } t

(* Drop every relationship between [a] and [b], whichever direction it
   was recorded in. ASes left with no relationships at all keep their
   (empty) entry so [asns] stays stable across a depeering — the packed
   snapshot's ASN axis is derived from it. *)
let remove_edge t a b =
  let scrub x y t =
    match Asn.Map.find_opt x t with
    | None -> t
    | Some s ->
      Asn.Map.add x
        { prov = Asn.Set.remove y s.prov;
          cust = Asn.Set.remove y s.cust;
          peer = Asn.Set.remove y s.peer }
        t
  in
  scrub a b (scrub b a t)

let rel t ~of_ ~with_ =
  let s = get t of_ in
  if Asn.Set.mem with_ s.prov then Some Provider
  else if Asn.Set.mem with_ s.cust then Some Customer
  else if Asn.Set.mem with_ s.peer then Some Peer
  else None

let providers t a = (get t a).prov
let customers t a = (get t a).cust
let peers t a = (get t a).peer

let neighbors t a =
  let s = get t a in
  Asn.Set.union s.prov (Asn.Set.union s.cust s.peer)

let customer_cone t a =
  let rec go visited frontier =
    if Asn.Set.is_empty frontier then visited
    else
      let next =
        Asn.Set.fold
          (fun x acc -> Asn.Set.union (get t x).cust acc)
          frontier Asn.Set.empty
      in
      let fresh = Asn.Set.diff next visited in
      go (Asn.Set.union visited fresh) fresh
  in
  go (Asn.Set.singleton a) (Asn.Set.singleton a)

let is_provider_of t ~provider ~customer = Asn.Set.mem customer (get t provider).cust
let is_peer t a b = Asn.Set.mem b (get t a).peer
let known t a b = rel t ~of_:a ~with_:b <> None
let degree t a = Asn.Set.cardinal (neighbors t a)
let asns t = Asn.Map.fold (fun a _ acc -> Asn.Set.add a acc) t Asn.Set.empty

let edge_count t =
  let total =
    Asn.Map.fold
      (fun _ s acc ->
        acc + Asn.Set.cardinal s.prov + Asn.Set.cardinal s.cust + Asn.Set.cardinal s.peer)
      t 0
  in
  total / 2

let to_lines t =
  let lines =
    Asn.Map.fold
      (fun a s acc ->
        let acc =
          Asn.Set.fold
            (fun c acc -> Printf.sprintf "%d|%d|-1" a c :: acc)
            s.cust acc
        in
        Asn.Set.fold
          (fun p acc -> if a < p then Printf.sprintf "%d|%d|0" a p :: acc else acc)
          s.peer acc)
      t []
  in
  List.sort compare lines

let of_lines lines =
  let parse t line =
    match String.split_on_char '|' (String.trim line) with
    | [ a; b; kind ] -> (
      match (int_of_string_opt a, int_of_string_opt b, String.trim kind) with
      | Some a, Some b, "-1" -> Ok (add_c2p t ~provider:a ~customer:b)
      | Some a, Some b, "0" -> Ok (add_p2p t a b)
      | _ -> Error (Printf.sprintf "bad as-rel line %S" line))
    | _ -> Error (Printf.sprintf "bad as-rel line %S" line)
  in
  let rec go t = function
    | [] -> Ok t
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go t rest
      else (
        match parse t line with
        | Ok t -> go t rest
        | Error _ as e -> e)
  in
  go empty lines
