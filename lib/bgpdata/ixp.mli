(** IXP peering-LAN registry assembled from PeeringDB- and PCH-style
    dumps (§5.2). Two record kinds, one per line:
    {v prefix|<cidr>|<ixp-name> v} — a peering LAN subnet
    {v member|<ip>|<asn>|<ixp-name> v} — an address a member AS uses on
    the LAN (used for validation of ownership inferences in §5.6). *)

open Netcore

type t

val empty : t
val add_prefix : t -> Prefix.t -> string -> t
val add_member : t -> Ipv4.t -> Asn.t -> string -> t

(** [ixp_of t addr] is the IXP whose peering LAN contains [addr]. *)
val ixp_of : t -> Ipv4.t -> string option

val is_ixp_addr : t -> Ipv4.t -> bool

(** [member_of t addr] is the AS registered as using [addr] on an IXP
    LAN, if recorded. *)
val member_of : t -> Ipv4.t -> Asn.t option

val prefixes : t -> (Prefix.t * string) list
val members : t -> (Ipv4.t * Asn.t * string) list
val ixp_names : t -> string list

val to_lines : t -> string list
val of_lines : string list -> (t, string) result
