open Netcore

type t = {
  lans : string Ptrie.t;
  membership : (Asn.t * string) Ipv4.Map.t;
}

let empty = { lans = Ptrie.empty; membership = Ipv4.Map.empty }
let add_prefix t p name = { t with lans = Ptrie.add p name t.lans }

let add_member t addr asn name =
  { t with membership = Ipv4.Map.add addr (asn, name) t.membership }

let ixp_of t addr = Option.map snd (Ptrie.lpm addr t.lans)
let is_ixp_addr t addr = ixp_of t addr <> None

let member_of t addr = Option.map fst (Ipv4.Map.find_opt addr t.membership)

let prefixes t = Ptrie.bindings t.lans

let members t =
  Ipv4.Map.fold (fun a (asn, name) acc -> (a, asn, name) :: acc) t.membership []
  |> List.rev

let ixp_names t =
  Ptrie.fold (fun _ name acc -> name :: acc) t.lans [] |> List.sort_uniq compare

let to_lines t =
  let lan_lines =
    List.map
      (fun (p, name) -> Printf.sprintf "prefix|%s|%s" (Prefix.to_string p) name)
      (prefixes t)
  in
  let member_lines =
    List.map
      (fun (a, asn, name) -> Printf.sprintf "member|%s|%d|%s" (Ipv4.to_string a) asn name)
      (members t)
  in
  lan_lines @ member_lines

let of_lines lines =
  let parse t line =
    match String.split_on_char '|' (String.trim line) with
    | [ "prefix"; p; name ] -> (
      match Prefix.of_string p with
      | Some p -> Ok (add_prefix t p name)
      | None -> Error (Printf.sprintf "bad ixp prefix line %S" line))
    | [ "member"; a; asn; name ] -> (
      match (Ipv4.of_string a, int_of_string_opt asn) with
      | Some a, Some asn -> Ok (add_member t a asn name)
      | _ -> Error (Printf.sprintf "bad ixp member line %S" line))
    | _ -> Error (Printf.sprintf "bad ixp line %S" line)
  in
  let rec go t = function
    | [] -> Ok t
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go t rest
      else (
        match parse t line with
        | Ok t -> go t rest
        | Error _ as e -> e)
  in
  go empty lines
