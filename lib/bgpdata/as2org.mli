(** AS-to-organization (sibling) mapping in the style of CAIDA's
    as2org dataset (§5.2). Format, one line per AS:
    {v <asn>|<org-id> v}
    ASes sharing an org-id are siblings. *)

open Netcore

type t

val empty : t
val add : t -> Asn.t -> string -> t
val org_of : t -> Asn.t -> string option

(** [siblings t a] is every AS sharing [a]'s organization, including [a]
    itself; just [{a}] when [a] is unknown. *)
val siblings : t -> Asn.t -> Asn.Set.t

val same_org : t -> Asn.t -> Asn.t -> bool
val orgs : t -> (string * Asn.Set.t) list
val cardinal : t -> int

val to_lines : t -> string list
val of_lines : string list -> (t, string) result
