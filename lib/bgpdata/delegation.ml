open Netcore

type record = {
  registry : string;
  cc : string;
  start : Ipv4.t;
  count : int;
  date : string;
  status : string;
  opaque_id : string;
}

(* Records indexed by their covering /8 would be overkill; a sorted array
   with binary search over start addresses keeps lookups O(log n). The
   structure is built once and queried many times. *)
type t = { recs : record list; mutable index : record array option }

let empty = { recs = []; index = None }
let add t r = { recs = r :: t.recs; index = None }
let records t = List.rev t.recs
let cardinal t = List.length t.recs

let index t =
  match t.index with
  | Some a -> a
  | None ->
    let a = Array.of_list t.recs in
    Array.sort (fun r1 r2 -> Ipv4.compare r1.start r2.start) a;
    t.index <- Some a;
    a

let find t addr =
  let a = index t in
  let n = Array.length a in
  (* Rightmost record with start <= addr. *)
  let rec bsearch lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      if Ipv4.compare a.(mid).start addr <= 0 then bsearch (mid + 1) hi (Some mid)
      else bsearch lo (mid - 1) best
  in
  match bsearch 0 (n - 1) None with
  | None -> None
  | Some i ->
    let r = a.(i) in
    if Ipv4.diff addr r.start < r.count then Some r else None

let opaque_id_of t addr = Option.map (fun r -> r.opaque_id) (find t addr)

let blocks_of t id =
  List.fold_left
    (fun acc r ->
      if String.equal r.opaque_id id then
        Ipset.add_range r.start (Ipv4.add r.start (r.count - 1)) acc
      else acc)
    Ipset.empty t.recs

let same_org t a b =
  match (opaque_id_of t a, opaque_id_of t b) with
  | Some x, Some y -> String.equal x y
  | _ -> false

let line_of_record r =
  Printf.sprintf "%s|%s|ipv4|%s|%d|%s|%s|%s" r.registry r.cc (Ipv4.to_string r.start)
    r.count r.date r.status r.opaque_id

let to_lines t = List.map line_of_record (records t)

let parse_line line =
  match String.split_on_char '|' (String.trim line) with
  | [ registry; cc; "ipv4"; start; count; date; status; opaque_id ] -> (
    match (Ipv4.of_string start, int_of_string_opt count) with
    | Some start, Some count when count > 0 ->
      Ok { registry; cc; start; count; date; status; opaque_id }
    | _ -> Error (Printf.sprintf "bad delegation line %S" line))
  | _ -> Error (Printf.sprintf "bad delegation line %S" line)

let of_lines lines =
  let rec go t = function
    | [] -> Ok t
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go t rest
      else (
        match parse_line line with
        | Ok r -> go (add t r) rest
        | Error _ as e -> e)
  in
  go empty lines
