(** BGP AS paths: leftmost element is the collector-adjacent AS, rightmost
    the origin. Prepending is preserved; [compact] removes it. *)

type t = Netcore.Asn.t list

val origin : t -> Netcore.Asn.t option
val head : t -> Netcore.Asn.t option

(** [compact p] removes consecutive duplicate ASNs (prepending). *)
val compact : t -> t

(** [links p] is the list of adjacent AS pairs in the compacted path. *)
val links : t -> (Netcore.Asn.t * Netcore.Asn.t) list

(** [has_loop p] is true when an ASN reappears after an intervening AS. *)
val has_loop : t -> bool

val of_string : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val length : t -> int
