(** Inference of AS relationships from public BGP paths, a reduction of
    the algorithm of Luckie et al., "AS Relationships, Customer Cones,
    and Validation" (IMC 2013), which the paper consumes as input (§5.2).

    Pipeline: sanitize paths (drop loops, compact prepending), compute
    transit degrees, infer the Tier-1 clique, annotate every path link by
    its position relative to the path apex under the valley-free
    assumption, then resolve votes into c2p / p2p labels. *)

open Netcore

(** [transit_degree paths] maps each AS to the number of distinct
    neighbors it is observed providing transit between (appears adjacent
    to it while in the middle of a path). *)
val transit_degree : As_path.t list -> int Asn.Map.t

(** [infer_clique ?size paths] is the inferred Tier-1 clique: the largest
    set of high-transit-degree ASes mutually adjacent in paths, grown
    greedily from the highest-degree AS. [size] caps candidates
    considered (default 15). *)
val infer_clique : ?size:int -> As_path.t list -> Asn.Set.t

(** [infer paths] is the full relationship inference. *)
val infer : As_path.t list -> As_rel.t

(** [infer_with_clique clique paths] runs annotation with a known clique
    (used by tests and ablations). *)
val infer_with_clique : Asn.Set.t -> As_path.t list -> As_rel.t

(** [vote_pass clique paths] is the preliminary valley-free voting result
    before the export-direction refinement (exposed for tests and
    ablation benches). *)
val vote_pass : Asn.Set.t -> As_path.t list -> As_rel.t
