open Netcore

type t = Asn.t list

let origin p =
  match List.rev p with
  | [] -> None
  | last :: _ -> Some last

let head = function
  | [] -> None
  | a :: _ -> Some a

let rec compact = function
  | a :: b :: rest when Asn.equal a b -> compact (b :: rest)
  | a :: rest -> a :: compact rest
  | [] -> []

let links p =
  let rec go = function
    | a :: (b :: _ as rest) -> (a, b) :: go rest
    | _ -> []
  in
  go (compact p)

let has_loop p =
  let c = compact p in
  List.length (List.sort_uniq Asn.compare c) <> List.length c

let of_string s =
  let parts = String.split_on_char ' ' (String.trim s) in
  let parts = List.filter (fun x -> x <> "") parts in
  if parts = [] then None
  else
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | x :: rest -> (
        match Asn.of_string x with
        | Some a -> go (a :: acc) rest
        | None -> None)
    in
    go [] parts

let to_string p = String.concat " " (List.map string_of_int p)
let pp ppf p = Format.pp_print_string ppf (to_string p)
let length = List.length
