(** AS relationship annotations, as produced by the inference of [25]
    (CAIDA serial-1 as-rel format):
    {v <provider>|<customer>|-1 v} for c2p,
    {v <as1>|<as2>|0 v} for p2p.
    Lines starting with '#' are comments. *)

open Netcore

type rel = Customer | Provider | Peer

type t

val empty : t

(** [add_c2p t ~provider ~customer] records a customer-provider edge. *)
val add_c2p : t -> provider:Asn.t -> customer:Asn.t -> t

(** [add_p2p t a b] records a peering edge. *)
val add_p2p : t -> Asn.t -> Asn.t -> t

(** [remove_edge t a b] drops whatever relationship exists between [a]
    and [b] (either direction, any kind). ASes left without
    relationships keep an empty entry, so {!asns} is unchanged. *)
val remove_edge : t -> Asn.t -> Asn.t -> t

(** [rel t ~of_:a ~with_:b] is the role [b] plays for [a]: [Some Provider]
    when [b] provides transit to [a]. *)
val rel : t -> of_:Asn.t -> with_:Asn.t -> rel option

val providers : t -> Asn.t -> Asn.Set.t
val customers : t -> Asn.t -> Asn.Set.t
val peers : t -> Asn.t -> Asn.Set.t

(** [neighbors t a] is every AS with any relationship to [a]. *)
val neighbors : t -> Asn.t -> Asn.Set.t

(** [customer_cone t a] is [a] plus every AS reachable by descending
    provider-to-customer edges — the customer cone of [25], the set of
    networks [a] can reach through customer links alone. *)
val customer_cone : t -> Asn.t -> Asn.Set.t

val is_provider_of : t -> provider:Asn.t -> customer:Asn.t -> bool
val is_peer : t -> Asn.t -> Asn.t -> bool
val known : t -> Asn.t -> Asn.t -> bool
val degree : t -> Asn.t -> int
val asns : t -> Asn.Set.t
val edge_count : t -> int

val to_lines : t -> string list
val of_lines : string list -> (t, string) result
