open Netcore
module SMap = Map.Make (String)

type t = { by_asn : string Asn.Map.t; by_org : Asn.Set.t SMap.t }

let empty = { by_asn = Asn.Map.empty; by_org = SMap.empty }

let add t asn org =
  let by_asn = Asn.Map.add asn org t.by_asn in
  let cur = Option.value ~default:Asn.Set.empty (SMap.find_opt org t.by_org) in
  { by_asn; by_org = SMap.add org (Asn.Set.add asn cur) t.by_org }

let org_of t asn = Asn.Map.find_opt asn t.by_asn

let siblings t asn =
  match org_of t asn with
  | None -> Asn.Set.singleton asn
  | Some org -> Option.value ~default:(Asn.Set.singleton asn) (SMap.find_opt org t.by_org)

let same_org t a b =
  match (org_of t a, org_of t b) with
  | Some x, Some y -> String.equal x y
  | _ -> false

let orgs t = SMap.bindings t.by_org
let cardinal t = Asn.Map.cardinal t.by_asn

let to_lines t =
  Asn.Map.fold (fun asn org acc -> Printf.sprintf "%d|%s" asn org :: acc) t.by_asn []
  |> List.sort compare

let of_lines lines =
  let parse t line =
    match String.split_on_char '|' (String.trim line) with
    | [ asn; org ] -> (
      match int_of_string_opt asn with
      | Some asn -> Ok (add t asn org)
      | None -> Error (Printf.sprintf "bad as2org line %S" line))
    | _ -> Error (Printf.sprintf "bad as2org line %S" line)
  in
  let rec go t = function
    | [] -> Ok t
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go t rest
      else (
        match parse t line with
        | Ok t -> go t rest
        | Error _ as e -> e)
  in
  go empty lines
