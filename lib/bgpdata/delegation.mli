(** RIR delegation records in the extended delegation file format:
    {v registry|cc|type|start|value|date|status|opaque-id v}
    e.g. {v arin|US|ipv4|192.0.2.0|256|20160101|allocated|org-4f2b v}
    Only ipv4 records are kept. [value] is the number of addresses, which
    need not be a power of two. The opaque id groups blocks delegated to
    one organization (§5.2). *)

open Netcore

type record = {
  registry : string;
  cc : string;
  start : Ipv4.t;
  count : int;
  date : string;
  status : string;
  opaque_id : string;
}

type t

val empty : t
val add : t -> record -> t
val records : t -> record list
val cardinal : t -> int

(** [find t addr] is the delegation record covering [addr], if any. *)
val find : t -> Ipv4.t -> record option

(** [opaque_id_of t addr] is the organization id covering [addr]. *)
val opaque_id_of : t -> Ipv4.t -> string option

(** [blocks_of t id] is every address block delegated to organization
    [id], as an interval set. *)
val blocks_of : t -> string -> Ipset.t

(** [same_org t a b] is true when both addresses fall in blocks delegated
    to the same opaque id. *)
val same_org : t -> Ipv4.t -> Ipv4.t -> bool

val to_lines : t -> string list
val of_lines : string list -> (t, string) result
val parse_line : string -> (record, string) result
val line_of_record : record -> string
