open Netcore

type entry = { origins : Asn.Set.t; paths : As_path.t list }

(* [idx] is a flattened LPM over the trie, built once the table stops
   changing and the address-lookup path gets hot. Set-once: every
   functional update returns a record with [idx = None], and concurrent
   builders would install structurally equal values (a benign word-sized
   race); [freeze] forces it before any domain fan-out anyway. *)
type t = { trie : entry Ptrie.t; count : int; mutable idx : entry Lpm.t option }

let empty = { trie = Ptrie.empty; count = 0; idx = None }
let min_len = 8
let max_len = 24

(* Below this size the bit-per-node walk beats paying the 65536-slot
   root fill for a table that may be probed a handful of times. *)
let idx_threshold = 4

let index t =
  match t.idx with
  | Some idx -> Some idx
  | None ->
    if t.count < idx_threshold then None
    else begin
      let idx = Lpm.build (Ptrie.bindings t.trie) in
      t.idx <- Some idx;
      Some idx
    end

let freeze t = ignore (index t)

let add_route t prefix path =
  if Prefix.len prefix < min_len || Prefix.len prefix > max_len then t
  else
    match As_path.origin path with
    | None -> t
    | Some origin ->
      let fresh = ref false in
      let trie =
        Ptrie.update prefix
          (function
            | None ->
              fresh := true;
              Some { origins = Asn.Set.singleton origin; paths = [ path ] }
            | Some e ->
              Some { origins = Asn.Set.add origin e.origins; paths = path :: e.paths })
          t.trie
      in
      { trie; count = (if !fresh then t.count + 1 else t.count); idx = None }

let prefixes t = List.map fst (Ptrie.bindings t.trie)
let cardinal t = t.count

let origins t p =
  match Ptrie.find_exact p t.trie with
  | Some e -> e.origins
  | None -> Asn.Set.empty

let paths t p =
  match Ptrie.find_exact p t.trie with
  | Some e -> List.rev e.paths
  | None -> []

let all_paths t = Ptrie.fold (fun _ e acc -> List.rev_append e.paths acc) t.trie []

let lpm t addr =
  match index t with
  | Some idx -> (
    match Lpm.lookup idx addr with
    | Some (p, e) -> Some (p, e.origins)
    | None -> None)
  | None -> (
    match Ptrie.lpm addr t.trie with
    | Some (p, e) -> Some (p, e.origins)
    | None -> None)

let origin_asns t addr =
  match lpm t addr with
  | Some (_, origins) -> origins
  | None -> Asn.Set.empty

let prefixes_originated_by t asns =
  Ptrie.fold
    (fun p e acc -> if Asn.Set.disjoint e.origins asns then acc else p :: acc)
    t.trie []
  |> List.sort Prefix.compare

let all_origins t =
  Ptrie.fold (fun _ e acc -> Asn.Set.union e.origins acc) t.trie Asn.Set.empty

let more_specifics t p =
  Ptrie.subtree p t.trie
  |> List.filter_map (fun (q, _) -> if Prefix.equal p q then None else Some q)

let to_lines t =
  Ptrie.fold
    (fun p e acc ->
      List.fold_left
        (fun acc path -> Printf.sprintf "%s|%s" (Prefix.to_string p) (As_path.to_string path) :: acc)
        acc (List.rev e.paths))
    t.trie []
  |> List.sort compare

let parse_line line =
  match String.split_on_char '|' line with
  | [ pfx; path ] -> (
    match (Prefix.of_string (String.trim pfx), As_path.of_string path) with
    | Some p, Some ap -> Ok (p, ap)
    | None, _ -> Error (Printf.sprintf "bad prefix in %S" line)
    | _, None -> Error (Printf.sprintf "bad path in %S" line))
  | _ -> Error (Printf.sprintf "expected prefix|path in %S" line)

let of_lines lines =
  let rec go t = function
    | [] -> Ok t
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go t rest
      else (
        match parse_line line with
        | Ok (p, path) -> go (add_route t p path) rest
        | Error _ as e -> e)
  in
  go empty lines
