open Netcore

let sanitize paths =
  List.filter_map
    (fun p ->
      let c = As_path.compact p in
      if List.length c < 2 || As_path.has_loop p then None else Some c)
    paths

let transit_degree paths =
  let tbl : Asn.Set.t Asn.Tbl.t = Asn.Tbl.create 256 in
  let note mid nbr =
    let cur = Option.value ~default:Asn.Set.empty (Asn.Tbl.find_opt tbl mid) in
    Asn.Tbl.replace tbl mid (Asn.Set.add nbr cur)
  in
  let rec scan = function
    | a :: b :: c :: rest ->
      note b a;
      note b c;
      scan (b :: c :: rest)
    | _ -> ()
  in
  List.iter scan (sanitize paths);
  Asn.Tbl.fold (fun a s acc -> Asn.Map.add a (Asn.Set.cardinal s) acc) tbl Asn.Map.empty

let path_adjacency paths =
  let tbl : Asn.Set.t Asn.Tbl.t = Asn.Tbl.create 256 in
  let note a b =
    let cur = Option.value ~default:Asn.Set.empty (Asn.Tbl.find_opt tbl a) in
    Asn.Tbl.replace tbl a (Asn.Set.add b cur)
  in
  List.iter
    (fun p ->
      List.iter
        (fun (a, b) ->
          note a b;
          note b a)
        (As_path.links p))
    paths;
  tbl

(* All middle triples (z, v, u): [v] carried [u]'s routes to [z]. *)
let triples paths =
  let out = ref [] in
  let rec scan = function
    | z :: v :: u :: rest ->
      out := (z, v, u) :: !out;
      scan (v :: u :: rest)
    | _ -> ()
  in
  List.iter scan paths;
  !out

(* Reachability cone: from the triples, [v -> u] means v forwards routes
   toward u, so u sits below (or beside) v in the routing hierarchy. The
   cone of v is everything reachable through such edges. A Tier-1's cone
   swallows the transit providers and every access network's customers,
   while an access network's cone holds only its own stubs — this is what
   separates a genuinely top-tier AS from a high-degree edge network. *)
let cone_sizes paths =
  let down : Asn.Set.t Asn.Tbl.t = Asn.Tbl.create 256 in
  List.iter
    (fun (_, v, u) ->
      let cur = Option.value ~default:Asn.Set.empty (Asn.Tbl.find_opt down v) in
      Asn.Tbl.replace down v (Asn.Set.add u cur))
    (triples paths);
  let memo : Asn.Set.t Asn.Tbl.t = Asn.Tbl.create 256 in
  let rec cone visiting v =
    match Asn.Tbl.find_opt memo v with
    | Some s -> s
    | None ->
      if Asn.Set.mem v visiting then Asn.Set.empty
      else begin
        let visiting = Asn.Set.add v visiting in
        let direct = Option.value ~default:Asn.Set.empty (Asn.Tbl.find_opt down v) in
        let s =
          Asn.Set.fold
            (fun u acc -> Asn.Set.union (cone visiting u) acc)
            direct direct
        in
        Asn.Tbl.replace memo v s;
        s
      end
  in
  Asn.Tbl.iter (fun v _ -> ignore (cone Asn.Set.empty v)) down;
  memo

let infer_clique ?(size = 15) paths =
  let paths = sanitize paths in
  let td = transit_degree paths in
  let cones = cone_sizes paths in
  let cone a =
    match Asn.Tbl.find_opt cones a with
    | Some s -> Asn.Set.cardinal s
    | None -> 0
  in
  let adj = path_adjacency paths in
  let adjacent a b =
    match Asn.Tbl.find_opt adj a with
    | Some s -> Asn.Set.mem b s
    | None -> false
  in
  let candidates =
    Asn.Map.bindings td
    |> List.map (fun (a, d) -> (a, (cone a, d)))
    |> List.sort (fun (_, k1) (_, k2) -> compare k2 k1)
    |> List.filteri (fun i _ -> i < size)
    |> List.map fst
  in
  match candidates with
  | [] -> Asn.Set.empty
  | seed :: rest ->
    List.fold_left
      (fun clique a ->
        if Asn.Set.for_all (fun m -> adjacent a m) clique then Asn.Set.add a clique
        else clique)
      (Asn.Set.singleton seed) rest

type vote = { mutable c2p_right : int; mutable c2p_left : int; mutable p2p : int }

let vote_pass clique paths =
  let paths = sanitize paths in
  let td = transit_degree paths in
  let deg a = Option.value ~default:0 (Asn.Map.find_opt a td) in
  let votes : (Asn.t * Asn.t, vote) Hashtbl.t = Hashtbl.create 1024 in
  let vote_of a b =
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt votes key with
    | Some v -> v
    | None ->
      let v = { c2p_right = 0; c2p_left = 0; p2p = 0 } in
      Hashtbl.add votes key v;
      v
  in
  (* c2p_right on canonical key (a,b) with a<b means a is customer of b. *)
  let vote_c2p ~customer ~provider =
    let v = vote_of customer provider in
    if customer < provider then v.c2p_right <- v.c2p_right + 1
    else v.c2p_left <- v.c2p_left + 1
  in
  let vote_p2p a b =
    let v = vote_of a b in
    v.p2p <- v.p2p + 1
  in
  let annotate path =
    let arr = Array.of_list path in
    let n = Array.length arr in
    (* Apex: leftmost clique member, else leftmost AS of maximal transit
       degree. Links left of the apex carry the route downhill toward the
       collector (left AS is the customer), links right of it descend
       toward the origin (left AS is the provider). *)
    let apex = ref 0 in
    for i = 1 to n - 1 do
      let better =
        let in_clique a = Asn.Set.mem a clique in
        match (in_clique arr.(i), in_clique arr.(!apex)) with
        | true, false -> true
        | false, true -> false
        | _ -> deg arr.(i) > deg arr.(!apex)
      in
      if better then apex := i
    done;
    for i = 0 to n - 2 do
      let a = arr.(i) and b = arr.(i + 1) in
      if Asn.Set.mem a clique && Asn.Set.mem b clique then vote_p2p a b
      else if i + 1 <= !apex then vote_c2p ~customer:a ~provider:b
      else vote_c2p ~customer:b ~provider:a
    done
  in
  List.iter annotate paths;
  let prelim =
    Hashtbl.fold
      (fun (a, b) v acc ->
        if Asn.Set.mem a clique && Asn.Set.mem b clique then As_rel.add_p2p acc a b
        else if v.c2p_right > 0 && v.c2p_left > 0 then
          if v.c2p_right >= 2 * v.c2p_left then As_rel.add_c2p acc ~provider:b ~customer:a
          else if v.c2p_left >= 2 * v.c2p_right then As_rel.add_c2p acc ~provider:a ~customer:b
          else As_rel.add_p2p acc a b
        else if v.c2p_right > 0 then As_rel.add_c2p acc ~provider:b ~customer:a
        else if v.c2p_left > 0 then As_rel.add_c2p acc ~provider:a ~customer:b
        else As_rel.add_p2p acc a b)
      votes As_rel.empty
  in
  prelim

let infer_with_clique clique paths =
  let paths = sanitize paths in
  let prelim = vote_pass clique paths in
  (* Export-direction refinement: if u is truly v's customer, v exports
     u's routes to its own peers and providers, so some path shows
     [z, v, u] with z not a customer of v. A peer's routes only ever
     descend into v's customer cone, so no such segment can exist. *)
  let up_evidence = Hashtbl.create 1024 in
  List.iter
    (fun (z, v, u) ->
      match As_rel.rel prelim ~of_:v ~with_:z with
      | Some As_rel.Peer | Some As_rel.Provider -> Hashtbl.replace up_evidence (v, u) ()
      | Some As_rel.Customer | None -> ())
    (triples paths);
  let refined = ref As_rel.empty in
  Asn.Set.iter
    (fun a ->
      (* Each c2p edge visited once, from the customer side. *)
      Asn.Set.iter
        (fun p ->
          if Hashtbl.mem up_evidence (p, a) then
            refined := As_rel.add_c2p !refined ~provider:p ~customer:a
          else refined := As_rel.add_p2p !refined a p)
        (As_rel.providers prelim a);
      Asn.Set.iter
        (fun b -> if a < b then refined := As_rel.add_p2p !refined a b)
        (As_rel.peers prelim a))
    (As_rel.asns prelim);
  !refined

let infer paths = infer_with_clique (infer_clique paths) paths
