(** Text serialization of collected measurements and inference results,
    so collection and inference can run as separate stages (the paper's
    scamper-driver/central-controller split, §5.8) and results can feed
    downstream tooling such as interdomain congestion monitoring (§2).

    Collection format, one record per line:
    {v trace|<dst>|<target asn>|<stopped:0/1>|<ttl>:<addr>,...|<closing> v}
    where closing is [-], [echo:<addr>] or [unreach:<addr>];
    {v alias|<a>|<b> v} / {v notalias|<a>|<b> v} — alias verdicts;
    {v mate|<prev>|<hop>|<mate> v} — prefixscan confirmations;
    {v icmp|<asn>|<addr> v} — closing replies for §5.4.8.

    Link format:
    {v link|<near addrs>|<far addrs>|<neighbor asn>|<tag slug> v}
    with [-] for an unobserved (silent) far router. *)

val tag_slug : Heuristics.tag -> string
val tag_of_slug : string -> Heuristics.tag option

val collection_to_lines : Collect.t -> string list

(** [collection_of_lines lines] rebuilds a collection; scheduler counters
    and probe statistics are not carried by the format and reset to
    zero. *)
val collection_of_lines : string list -> (Collect.t, string) result

val links_to_lines : Rgraph.t -> Heuristics.result -> string list

type link_record = {
  near_addrs : Netcore.Ipv4.t list;
  far_addrs : Netcore.Ipv4.t list;
  neighbor : Netcore.Asn.t;
  tag : Heuristics.tag;
}

val links_of_lines : string list -> (link_record list, string) result
