open Netcore
module B = Bgpdata

type block = { target_asn : Asn.t; first : Ipv4.t; last : Ipv4.t }

let blocks ~rib ~vp_asns =
  let prefixes = B.Rib.prefixes rib in
  List.concat_map
    (fun p ->
      let origins = B.Rib.origins rib p in
      if not (Asn.Set.disjoint origins vp_asns) then []
      else
        let target_asn = Asn.Set.min_elt origins in
        let covered = Ipset.add_prefix p Ipset.empty in
        let remaining =
          List.fold_left
            (fun acc sub -> Ipset.remove_prefix sub acc)
            covered (B.Rib.more_specifics rib p)
        in
        List.map (fun (first, last) -> { target_asn; first; last }) (Ipset.ranges remaining))
    prefixes
  |> List.sort (fun a b ->
         match Asn.compare a.target_asn b.target_asn with
         | 0 -> Ipv4.compare a.first b.first
         | c -> c)

let by_asn blocks =
  let tbl = Asn.Tbl.create 64 in
  let order = ref [] in
  List.iter
    (fun b ->
      (match Asn.Tbl.find_opt tbl b.target_asn with
      | None ->
        order := b.target_asn :: !order;
        Asn.Tbl.add tbl b.target_asn [ b ]
      | Some bs -> Asn.Tbl.replace tbl b.target_asn (b :: bs)))
    blocks;
  List.rev_map (fun asn -> (asn, List.rev (Asn.Tbl.find tbl asn))) !order

let candidates ~per_block b =
  let span = Ipv4.diff b.last b.first in
  let n = min per_block span in
  let n = max n 1 in
  List.init n (fun i -> Ipv4.add b.first (i + 1))
  |> List.filter (fun a -> Ipv4.compare a b.last <= 0)
