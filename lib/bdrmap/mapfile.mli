(** Serialization of the served border-map artifact: the all-VP merged
    link set plus the origin view a query server needs to answer
    [owner]/[crossings]/[provenance] without re-running the pipeline.

    Entries follow the [lib/store] header discipline:

    {v
      offset  size  field
      0       4     magic "BDMF"
      4       4     codec version (big-endian)
      8       16    MD5 digest of the payload
      24      8     payload length (big-endian)
      32      n     payload
    v}

    The payload is the marshalled {!t} — boxed metadata only, no packed
    arenas (the routing snapshot travels separately through
    {!Routing.Bgp.Snapshot.to_bytes}). Decoding validates magic,
    version, declared length and digest before unmarshalling, so a
    flipped byte is a typed {!decode_error}, never a [Marshal] crash. *)

open Netcore

type t = {
  host_asns : Asn.Set.t;  (** the hosting org's ASes (world siblings) *)
  origins : (Prefix.t * Asn.t) list;
      (** canonical origin per originated prefix (min ASN of the MOAS
          set), in {!Prefix.compare} order *)
  merged : Aggregate.merged list;  (** the all-VP merged border map *)
}

(** [make ~host_asns ~bgp merged] assembles the artifact, deriving
    [origins] from [bgp]'s originated prefixes. *)
val make : host_asns:Asn.Set.t -> bgp:Routing.Bgp.t -> Aggregate.merged list -> t

type decode_error = Truncated | Bad_magic | Bad_version of int | Corrupt

val error_label : decode_error -> string

(** Current serialization format version (bump on layout change). *)
val codec_version : int

val to_bytes : t -> bytes
val of_bytes : bytes -> (t, decode_error) result

(** [save path t] writes atomically (temp file + rename, store-style):
    a killed writer leaves the previous file or nothing, never a torn
    artifact. *)
val save : string -> t -> unit

val load : string -> (t, decode_error) result
