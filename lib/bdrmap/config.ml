open Netcore

type t = {
  vp_asns : Asn.Set.t;
  max_ttl : int;
  gap_limit : int;
  addrs_per_block : int;
  ally_trials : int;
  ally_samples : int;
  ally_interval_s : float;
  ally_proximity : bool;
  use_stop_sets : bool;
  max_alias_candidates : int;
  probe_retries : int;
  retry_backoff_s : float;
  retry_budget : int;
}

let default ~vp_asns =
  { vp_asns; max_ttl = 32; gap_limit = 5; addrs_per_block = 5; ally_trials = 5;
    ally_samples = 4; ally_interval_s = 300.0; ally_proximity = false;
    use_stop_sets = true; max_alias_candidates = 50_000;
    (* Retries are off by default: on the ideal simulator an unresponsive
       hop is deterministically silent, and re-probing it would only
       shift the clock. Impaired runs turn them on. *)
    probe_retries = 0; retry_backoff_s = 0.3; retry_budget = 32 }
