(** The ordered border-inference heuristics of §5.4. Routers are visited
    in order of observed hop distance from the VP; the first heuristic
    that fires assigns the owner and is recorded, reproducing the rows of
    Table 1. Steps:

    1 — routers operated by the hosting network, with the multihomed-
        neighbor exception (§5.4.1);
    2 — neighbors behind firewalls: last router toward an AS carries the
        host-assigned ingress address (§5.4.2);
    3 — routers numbered from unrouted space (§5.4.3);
    4 — "onenet": two consecutive hops in one external AS (§5.4.4);
    5 — relationship-guided inference: third-party detection, known
        peers/customers, missing customers, hidden peers (§5.4.5);
    6 — IP-AS fallbacks in ambiguous multi-AS scenarios (§5.4.6);
    7 — analytical alias merging of single-interface near routers
        (§5.4.7);
    8 — silent and echo-only neighbors placed by their consistent last
        host router (§5.4.8). *)

open Netcore

type tag =
  | T1_multihomed
  | T2_firewall
  | T3_unrouted
  | T4_onenet
  | T5_third_party
  | T5_relationship
  | T5_missing_customer
  | T5_hidden_peer
  | T6_count
  | T6_ipas
  | T8_silent
  | T8_other_icmp

val tag_label : tag -> string

(** [tag_slug tag] is the stable machine-readable name used in metric
    names ([heuristics.fire.<slug>]) and trace provenance records. *)
val tag_slug : tag -> string

type owner =
  | Host_router  (** operated by the hosting network *)
  | Neighbor of Asn.t * tag
  | Unknown

type router_inference = {
  node : Rgraph.node;
  owner : owner;
  merged_from : int list;  (** node ids collapsed by step 7 *)
}

type border_link = {
  near_node : int option;  (** node id of the VP-side router, if observed *)
  far_node : int option;  (** node id of the neighbor router; None for §5.4.8 *)
  neighbor : Asn.t;
  tag : tag;
}

type result = {
  routers : router_inference list;  (** indexed by node id *)
  links : border_link list;
  nextas_used : int;  (** how often the nextas fallback decided *)
}

(** [owner_of result node_id] is the inferred owner. *)
val owner_of : result -> int -> owner

(** [infer ?disabled cfg ip2as ~rels graph collection] runs the ordered
    heuristics; [disabled] suppresses chosen steps (ablation studies). *)
val infer :
  ?disabled:tag list ->
  Config.t ->
  Ip2as.t ->
  rels:Bgpdata.As_rel.t ->
  Rgraph.t ->
  Collect.t ->
  result
