open Netcore
module Gen = Topogen.Gen
module Net = Topogen.Net
module B = Bgpdata

type verdict =
  | Correct
  | Correct_sibling
  | Wrong_as of Asn.t
  | Not_border
  | Unverifiable

type link_eval = { link : Heuristics.border_link; verdict : verdict }

type summary = {
  total : int;
  correct : int;
  sibling : int;
  wrong : int;
  not_border : int;
  unverifiable : int;
  pct_correct : float;
}

let org_of (w : Gen.world) asn =
  match B.As2org.org_of w.Gen.as2org asn with
  | Some o -> o
  | None -> Printf.sprintf "unknown-%d" asn

let host_org (w : Gen.world) = org_of w w.Gen.host_asn

(* The true owners of the routers holding a node's observed addresses. *)
let true_owners (w : Gen.world) (n : Rgraph.node) =
  Ipv4.Set.fold
    (fun a acc ->
      match Net.owner_of_addr w.Gen.net a with
      | Some r -> Asn.Set.add r.Net.owner acc
      | None -> acc)
    n.Rgraph.addrs Asn.Set.empty

let judge_far (w : Gen.world) (n : Rgraph.node) inferred =
  let owners = true_owners w n in
  if Asn.Set.is_empty owners then Unverifiable
  else
    let orgs =
      Asn.Set.fold (fun a acc -> org_of w a :: acc) owners [] |> List.sort_uniq compare
    in
    let inferred_org = org_of w inferred in
    if List.mem inferred_org orgs then
      if Asn.Set.mem inferred owners then Correct else Correct_sibling
    else if List.for_all (String.equal (host_org w)) orgs then Not_border
    else Wrong_as (Asn.Set.min_elt owners)

(* A §5.4.8 link: the neighbor must truly attach to the (true) router
   behind the inferred near node. *)
let judge_silent (w : Gen.world) (near : Rgraph.node) neighbor =
  let near_true = true_owners w near in
  if Asn.Set.is_empty near_true then Unverifiable
  else
    let inferred_org = org_of w neighbor in
    let near_rids =
      Ipv4.Set.fold
        (fun a acc ->
          match Net.owner_of_addr w.Gen.net a with
          | Some r -> r.Net.rid :: acc
          | None -> acc)
        near.Rgraph.addrs []
    in
    let attached =
      List.exists
        (fun rid ->
          List.exists
            (fun ((l : Net.link), far_rid) ->
              l.Net.kind <> Net.Internal
              && String.equal (org_of w (Net.router w.Gen.net far_rid).Net.owner) inferred_org)
            (Net.neighbors w.Gen.net rid))
        near_rids
    in
    if attached then Correct
    else
      (* The neighbor might attach elsewhere in the host org. *)
      let truly_neighbor =
        Asn.Set.exists
          (fun x ->
            List.exists
              (fun asn -> String.equal (org_of w asn) inferred_org)
              (List.concat_map
                 (fun (l : Net.link) ->
                   let oa = (Net.router w.Gen.net (fst l.Net.a)).Net.owner in
                   let ob = (Net.router w.Gen.net (fst l.Net.b)).Net.owner in
                   if Asn.equal oa x then [ ob ] else if Asn.equal ob x then [ oa ] else [])
                 (Net.interdomain_links w.Gen.net)))
          w.Gen.siblings
      in
      if truly_neighbor then Wrong_as neighbor else Not_border

let links (w : Gen.world) g (r : Heuristics.result) =
  List.map
    (fun (l : Heuristics.border_link) ->
      let verdict =
        match l.Heuristics.far_node with
        | Some fid -> judge_far w (Rgraph.node g fid) l.Heuristics.neighbor
        | None -> (
          match l.Heuristics.near_node with
          | Some nid -> judge_silent w (Rgraph.node g nid) l.Heuristics.neighbor
          | None -> Unverifiable)
      in
      { link = l; verdict })
    r.Heuristics.links

let summarize evals =
  let count f = List.length (List.filter f evals) in
  let correct_strict = count (fun e -> e.verdict = Correct) in
  let sibling = count (fun e -> e.verdict = Correct_sibling) in
  let wrong =
    count (fun e ->
        match e.verdict with
        | Wrong_as _ -> true
        | _ -> false)
  in
  let not_border = count (fun e -> e.verdict = Not_border) in
  let unverifiable = count (fun e -> e.verdict = Unverifiable) in
  let total = List.length evals in
  let verifiable = total - unverifiable in
  { total;
    correct = correct_strict + sibling;
    sibling;
    wrong;
    not_border;
    unverifiable;
    pct_correct =
      (if verifiable = 0 then 0.0
       else 100.0 *. float_of_int (correct_strict + sibling) /. float_of_int verifiable) }

let router_accuracy (w : Gen.world) g (r : Heuristics.result) =
  let evals =
    List.filter_map
      (fun (ri : Heuristics.router_inference) ->
        match ri.Heuristics.owner with
        | Heuristics.Neighbor (asn, tag) ->
          Some
            { link =
                { Heuristics.near_node = None; far_node = Some ri.Heuristics.node.Rgraph.id;
                  neighbor = asn; tag };
              verdict = judge_far w ri.Heuristics.node asn }
        | Heuristics.Host_router | Heuristics.Unknown -> None)
      r.Heuristics.routers
  in
  ignore g;
  summarize evals

let ixp_members (w : Gen.world) g (r : Heuristics.result) =
  ignore g;
  let registry = w.Gen.ixp_registry in
  let evals =
    List.filter_map
      (fun (ri : Heuristics.router_inference) ->
        match ri.Heuristics.owner with
        | Heuristics.Neighbor (asn, tag) -> (
          let lan_addr =
            List.find_opt
              (fun a -> B.Ixp.is_ixp_addr registry a)
              (Rgraph.all_addrs ri.Heuristics.node)
          in
          match lan_addr with
          | None -> None
          | Some a ->
            let verdict =
              match B.Ixp.member_of registry a with
              | None -> Unverifiable
              | Some m ->
                if String.equal (org_of w m) (org_of w asn) then
                  if Asn.equal m asn then Correct else Correct_sibling
                else Wrong_as m
            in
            Some
              { link =
                  { Heuristics.near_node = None;
                    far_node = Some ri.Heuristics.node.Rgraph.id;
                    neighbor = asn; tag };
                verdict })
        | Heuristics.Host_router | Heuristics.Unknown -> None)
      r.Heuristics.routers
  in
  summarize evals

let pp_summary ppf s =
  Format.fprintf ppf
    "links=%d correct=%d (%.1f%%) [sibling=%d wrong=%d not_border=%d unverifiable=%d]"
    s.total s.correct s.pct_correct s.sibling s.wrong s.not_border s.unverifiable
