open Netcore

type link = {
  near_addr : Ipv4.t;
  far_addr : Ipv4.t option;
  neighbor : Asn.t;
}

let dedup links =
  let seen = Hashtbl.create 256 in
  List.filter
    (fun l ->
      let key = (l.near_addr, l.far_addr, l.neighbor) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    links

let naive_ipas ip2as traces =
  (* A border wherever a host-mapped hop precedes an externally-mapped
     hop; the external hop's longest-match origin names the neighbor. *)
  List.concat_map
    (fun t ->
      List.filter_map
        (fun (a, b, _) ->
          if Ip2as.is_host ip2as a then
            match Ip2as.classify ip2as b with
            | Ip2as.External origins ->
              Some
                { near_addr = a; far_addr = Some b;
                  neighbor = Asn.Set.min_elt origins }
            | Ip2as.Host | Ip2as.Ixp _ | Ip2as.Unrouted | Ip2as.Reserved -> None
          else None)
        (Trace.pairs t))
    traces
  |> dedup

let mapit ip2as traces =
  (* Evidence on both sides: the far interface must be followed by
     another interface mapping to the same external AS (the adjacent
     addresses MAP-IT's inference needs). Path-end borders are
     invisible to this rule. *)
  List.concat_map
    (fun t ->
      let rec scan = function
        | (_, a) :: ((_, b) :: (_, c) :: _ as rest) ->
          let here =
            if Ip2as.is_host ip2as a then
              match (Ip2as.classify ip2as b, Ip2as.classify ip2as c) with
              | Ip2as.External ob, Ip2as.External oc
                when not (Asn.Set.disjoint ob oc) ->
                [ { near_addr = a; far_addr = Some b;
                    neighbor = Asn.Set.min_elt (Asn.Set.inter ob oc) } ]
              | _ -> []
            else []
          in
          here @ scan rest
        | _ -> []
      in
      scan t.Trace.hops)
    traces
  |> dedup
