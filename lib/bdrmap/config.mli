(** bdrmap run configuration (§5.2, §5.3): the VP AS set (the hosting
    network and its manually curated siblings — the only input requiring
    manual oversight), probing limits, and alias-resolution discipline. *)

open Netcore

type t = {
  vp_asns : Asn.Set.t;  (** the hosting org's ASes *)
  max_ttl : int;
  gap_limit : int;  (** consecutive silent hops ending a trace *)
  addrs_per_block : int;  (** candidate targets per block (paper: 5) *)
  ally_trials : int;  (** repeated Ally measurements (paper: 5) *)
  ally_samples : int;  (** interleaved sample pairs per trial *)
  ally_interval_s : float;  (** spacing between trials (paper: 300 s) *)
  ally_proximity : bool;
      (** use the original proximity comparison instead of MIDAR-style
          monotonicity (ablation baseline; the paper uses monotonicity) *)
  use_stop_sets : bool;  (** doubletree stop sets (ablation knob) *)
  max_alias_candidates : int;  (** cap on candidate pairs probed *)
  probe_retries : int;
      (** extra attempts at a silent traceroute hop before conceding the
          gap — recovers transiently lost or rate-limited replies
          (default 0: the hop is retried never, matching the pre-fault
          pipeline probe-for-probe) *)
  retry_backoff_s : float;
      (** extra clock advance before retry [k] ([k * backoff] seconds),
          letting token buckets refill between attempts *)
  retry_budget : int;
      (** total retries allowed per traced target, so one pathological
          path cannot consume an unbounded probe budget *)
}

val default : vp_asns:Asn.Set.t -> t
