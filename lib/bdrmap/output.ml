open Netcore

let tag_slug = function
  | Heuristics.T1_multihomed -> "multihomed"
  | Heuristics.T2_firewall -> "firewall"
  | Heuristics.T3_unrouted -> "unrouted"
  | Heuristics.T4_onenet -> "onenet"
  | Heuristics.T5_third_party -> "thirdparty"
  | Heuristics.T5_relationship -> "relationship"
  | Heuristics.T5_missing_customer -> "missingcust"
  | Heuristics.T5_hidden_peer -> "hiddenpeer"
  | Heuristics.T6_count -> "count"
  | Heuristics.T6_ipas -> "ipas"
  | Heuristics.T8_silent -> "silent"
  | Heuristics.T8_other_icmp -> "othericmp"

let tag_of_slug = function
  | "multihomed" -> Some Heuristics.T1_multihomed
  | "firewall" -> Some Heuristics.T2_firewall
  | "unrouted" -> Some Heuristics.T3_unrouted
  | "onenet" -> Some Heuristics.T4_onenet
  | "thirdparty" -> Some Heuristics.T5_third_party
  | "relationship" -> Some Heuristics.T5_relationship
  | "missingcust" -> Some Heuristics.T5_missing_customer
  | "hiddenpeer" -> Some Heuristics.T5_hidden_peer
  | "count" -> Some Heuristics.T6_count
  | "ipas" -> Some Heuristics.T6_ipas
  | "silent" -> Some Heuristics.T8_silent
  | "othericmp" -> Some Heuristics.T8_other_icmp
  | _ -> None

let closing_str = function
  | Trace.Nothing -> "-"
  | Trace.Echo a -> "echo:" ^ Ipv4.to_string a
  | Trace.Unreach a -> "unreach:" ^ Ipv4.to_string a

let closing_of_str s =
  if s = "-" then Some Trace.Nothing
  else
    match String.split_on_char ':' s with
    | [ "echo"; a ] -> Option.map (fun a -> Trace.Echo a) (Ipv4.of_string a)
    | [ "unreach"; a ] -> Option.map (fun a -> Trace.Unreach a) (Ipv4.of_string a)
    | _ -> None

let trace_to_line (t : Trace.t) =
  let hops =
    String.concat ","
      (List.map (fun (ttl, a) -> Printf.sprintf "%d:%s" ttl (Ipv4.to_string a)) t.Trace.hops)
  in
  Printf.sprintf "trace|%s|%d|%d|%s|%s" (Ipv4.to_string t.Trace.dst) t.Trace.target_asn
    (if t.Trace.stopped then 1 else 0)
    hops (closing_str t.Trace.closing)

let trace_of_fields dst asn stopped hops closing =
  match (Ipv4.of_string dst, int_of_string_opt asn, closing_of_str closing) with
  | Some dst, Some target_asn, Some closing -> (
    let parse_hop h =
      match String.split_on_char ':' h with
      | [ ttl; a ] -> (
        match (int_of_string_opt ttl, Ipv4.of_string a) with
        | Some ttl, Some a -> Some (ttl, a)
        | _ -> None)
      | _ -> None
    in
    let hop_fields = if hops = "" then [] else String.split_on_char ',' hops in
    let parsed = List.map parse_hop hop_fields in
    if List.exists Option.is_none parsed then None
    else
      Some
        { Trace.dst; target_asn; hops = List.filter_map Fun.id parsed;
          closing; stopped = stopped = "1" })
  | _ -> None

let collection_to_lines (c : Collect.t) =
  let traces = List.map trace_to_line c.Collect.traces in
  let pairs =
    (* Reconstructible evidence: group membership plus vetoes. *)
    List.concat_map
      (fun group ->
        match group with
        | first :: rest ->
          List.map
            (fun a ->
              Printf.sprintf "alias|%s|%s" (Ipv4.to_string first) (Ipv4.to_string a))
            rest
        | [] -> [])
      (Aliasres.Alias_graph.groups c.Collect.aliases)
  in
  let mates =
    List.map
      (fun (p, h, m) ->
        Printf.sprintf "mate|%s|%s|%s" (Ipv4.to_string p) (Ipv4.to_string h)
          (Ipv4.to_string m))
      c.Collect.mates
  in
  let icmp =
    List.map
      (fun (asn, a) -> Printf.sprintf "icmp|%d|%s" asn (Ipv4.to_string a))
      c.Collect.other_icmp
  in
  traces @ pairs @ mates @ icmp

let collection_of_lines lines =
  let traces = ref [] in
  let aliases = Aliasres.Alias_graph.create () in
  let mates = ref [] in
  let icmp = ref [] in
  let err line = Error (Printf.sprintf "bad collection line %S" line) in
  let rec go = function
    | [] ->
      Ok
        { Collect.traces = List.rev !traces;
          aliases;
          mates = List.rev !mates;
          other_icmp = List.rev !icmp;
          sched = Probesim.Scheduler.create ~pps:100.0;
          stopset_hits = 0;
          alias_pairs_tested = 0 }
    | line :: rest -> (
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go rest
      else
        match String.split_on_char '|' line with
        | [ "trace"; dst; asn; stopped; hops; closing ] -> (
          match trace_of_fields dst asn stopped hops closing with
          | Some t ->
            traces := t :: !traces;
            go rest
          | None -> err line)
        | [ "alias"; a; b ] -> (
          match (Ipv4.of_string a, Ipv4.of_string b) with
          | Some a, Some b ->
            Aliasres.Alias_graph.add_alias aliases a b;
            go rest
          | _ -> err line)
        | [ "notalias"; a; b ] -> (
          match (Ipv4.of_string a, Ipv4.of_string b) with
          | Some a, Some b ->
            Aliasres.Alias_graph.add_not_alias aliases a b;
            go rest
          | _ -> err line)
        | [ "mate"; p; h; m ] -> (
          match (Ipv4.of_string p, Ipv4.of_string h, Ipv4.of_string m) with
          | Some p, Some h, Some m ->
            mates := (p, h, m) :: !mates;
            go rest
          | _ -> err line)
        | [ "icmp"; asn; a ] -> (
          match (int_of_string_opt asn, Ipv4.of_string a) with
          | Some asn, Some a ->
            icmp := (asn, a) :: !icmp;
            go rest
          | _ -> err line)
        | _ -> err line)
  in
  go lines

let addrs_str = function
  | [] -> "-"
  | addrs -> String.concat "," (List.map Ipv4.to_string addrs)

let links_to_lines g (r : Heuristics.result) =
  List.map
    (fun (l : Heuristics.border_link) ->
      let addrs_of = function
        | None -> []
        | Some id -> Rgraph.all_addrs (Rgraph.node g id)
      in
      Printf.sprintf "link|%s|%s|%d|%s"
        (addrs_str (addrs_of l.Heuristics.near_node))
        (addrs_str (addrs_of l.Heuristics.far_node))
        l.Heuristics.neighbor (tag_slug l.Heuristics.tag))
    r.Heuristics.links

type link_record = {
  near_addrs : Ipv4.t list;
  far_addrs : Ipv4.t list;
  neighbor : Asn.t;
  tag : Heuristics.tag;
}

let links_of_lines lines =
  let parse_addrs s =
    if s = "-" then Some []
    else
      let parts = String.split_on_char ',' s in
      let parsed = List.map Ipv4.of_string parts in
      if List.exists Option.is_none parsed then None
      else Some (List.filter_map Fun.id parsed)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go acc rest
      else
        match String.split_on_char '|' line with
        | [ "link"; near; far; asn; slug ] -> (
          match
            (parse_addrs near, parse_addrs far, int_of_string_opt asn, tag_of_slug slug)
          with
          | Some near_addrs, Some far_addrs, Some neighbor, Some tag ->
            go ({ near_addrs; far_addrs; neighbor; tag } :: acc) rest
          | _ -> Error (Printf.sprintf "bad link line %S" line))
        | _ -> Error (Printf.sprintf "bad link line %S" line))
  in
  go [] lines
