(** IP-to-AS classification over the input artifacts of §5.2: the public
    RIB (longest-prefix match), the IXP peering-LAN list, and the RIR
    delegation files.

    Addresses that are unrouted in BGP but fall in blocks the RIR
    delegated to the same organization as the hosting network's routed
    space are classified [Host] — this implements §5.4.1's estimation of
    unannounced VP address space, and also reproduces the paper's fig-12
    limitation for provider-aggregatable space reused by customers. *)

open Netcore

type cls =
  | Host  (** originated by (or delegated to) the hosting org *)
  | External of Asn.Set.t  (** origin ASes of the longest match *)
  | Ixp of string
  | Unrouted
  | Reserved

type t

val create :
  rib:Bgpdata.Rib.t ->
  ixp:Bgpdata.Ixp.t ->
  delegations:Bgpdata.Delegation.t ->
  vp_asns:Asn.Set.t ->
  t

val classify : t -> Ipv4.t -> cls

(** [origins t a] is the BGP origin set ([Asn.Set.empty] if unrouted). *)
val origins : t -> Ipv4.t -> Asn.Set.t

(** [is_host t a] is true when [classify] yields [Host]. *)
val is_host : t -> Ipv4.t -> bool

(** [single_external t a] is the unique external origin of [a], if the
    longest match has exactly one origin outside the hosting org. *)
val single_external : t -> Ipv4.t -> Asn.t option

(** [routed_prefixes t] is the number of RIB prefixes indexed. *)
val routed_prefixes : t -> int
