module Gen = Topogen.Gen

let snapshot_version = 2

type snapshot = {
  collection : Collect.t;
  graph : Rgraph.t;
  inference : Heuristics.result;
  probes : int;
  cache : Probesim.Engine.cache_stats;
}

let digest_key v = Digest.to_hex (Digest.string (Marshal.to_string v []))

let key ?(epoch = "") ~(world : Gen.world) ~pps ~(cfg : Config.t)
    ~(vp : Gen.vp) () =
  (* The topology is a pure function of [params] — and, once evolution
     runs, of the epoch's chained event-log digest — and the per-VP run
     a pure function of (params, epoch, pps, cfg, vp): execute_all
     gives every VP a fresh routing/probing stack, so nothing else
     (pool size, obs flags, sweep order) may influence the snapshot.
     [epoch] is [Topogen.Evolve.log_digest]'s accumulator; the empty
     string is the unevolved world. *)
  digest_key
    ( "bdrmap-run",
      snapshot_version,
      world.Gen.params,
      epoch,
      pps,
      vp.Gen.vp_rid,
      vp.Gen.vp_name,
      cfg )

(* Fetch and decode one entry. The store validates magic/version/key/
   digest; [Marshal.from_string] can still raise on an entry whose key
   namespace lied about the layout, so that too degrades to a miss. *)
let fetch (type a) st ~key ~what : a option =
  match Store.read st ~key with
  | Ok payload -> (
    match (Marshal.from_string payload 0 : a) with
    | v ->
      Obs.Metrics.incr "store.hits";
      Obs.Metrics.add "store.bytes_read" (String.length payload);
      Some v
    | exception _ ->
      Obs.Log.warn "store: undecodable %s entry %s; recomputing" what key;
      Obs.Metrics.incr "store.misses";
      None)
  | Error Store.Absent ->
    Obs.Metrics.incr "store.misses";
    None
  | Error m ->
    Obs.Log.warn "store: %s %s entry %s; recomputing" (Store.miss_label m)
      what key;
    Obs.Metrics.incr "store.misses";
    None

let put st ~key v =
  let payload = Marshal.to_string v [] in
  let bytes = Store.write st ~key payload in
  Obs.Metrics.incr "store.writes";
  Obs.Metrics.add "store.bytes_written" bytes

let load ?epoch st ~world ~pps ~cfg ~vp =
  let key = key ?epoch ~world ~pps ~cfg ~vp () in
  Obs.Span.with_span ~stage:"store" ~vp:vp.Gen.vp_name (fun () ->
      (fetch st ~key ~what:"run" : snapshot option))

let save ?epoch st ~world ~pps ~cfg ~vp (s : snapshot) =
  let key = key ?epoch ~world ~pps ~cfg ~vp () in
  Obs.Span.with_span ~stage:"store" ~vp:vp.Gen.vp_name (fun () ->
      put st ~key s)

(* Frozen BGP snapshots persist as their own raw-byte codec
   ([Bgp.Snapshot.to_bytes]) rather than [Marshal]: the packed arenas
   dominate the size and round-trip as plain words, and the snapshot's
   own header/digest then guards the payload a second time inside the
   store entry. The codec version participates in the key, so a layout
   change misses on key instead of decoding wrongly. *)
let bgp_snapshot_key ?(epoch = "") ~(world : Gen.world) () =
  digest_key
    ( "bdrmap-bgp-snapshot",
      Routing.Bgp.Snapshot.codec_version,
      world.Gen.params,
      epoch )

let load_bgp_snapshot ?epoch st ~world =
  let key = bgp_snapshot_key ?epoch ~world () in
  Obs.Span.with_span ~stage:"store" ~vp:"shared" (fun () ->
      match Store.read st ~key with
      | Ok payload -> (
        match Routing.Bgp.Snapshot.of_bytes (Bytes.of_string payload) with
        | Ok s ->
          (* Counted apart from the per-VP checkpoint traffic
             ([store.hits]/[store.misses]): one snapshot serves a whole
             sweep, so folding it into the per-VP counters would break
             their one-entry-per-VP accounting. *)
          Obs.Metrics.incr "store.snapshot.hits";
          Obs.Metrics.add "store.bytes_read" (String.length payload);
          Some s
        | Error e ->
          Obs.Log.warn "store: %s bgp-snapshot entry %s; recomputing"
            (Routing.Bgp.Snapshot.error_label e)
            key;
          Obs.Metrics.incr "store.snapshot.misses";
          None)
      | Error Store.Absent ->
        Obs.Metrics.incr "store.snapshot.misses";
        None
      | Error m ->
        Obs.Log.warn "store: %s bgp-snapshot entry %s; recomputing"
          (Store.miss_label m) key;
        Obs.Metrics.incr "store.snapshot.misses";
        None)

let save_bgp_snapshot ?epoch st ~world s =
  let key = bgp_snapshot_key ?epoch ~world () in
  Obs.Span.with_span ~stage:"store" ~vp:"shared" (fun () ->
      let payload =
        Bytes.unsafe_to_string (Routing.Bgp.Snapshot.to_bytes s)
      in
      let bytes = Store.write st ~key payload in
      Obs.Metrics.incr "store.snapshot.writes";
      Obs.Metrics.add "store.bytes_written" bytes)

let memo st ~key ?vp ~what f =
  match Obs.Span.with_span ~stage:"store" ?vp (fun () -> fetch st ~key ~what)
  with
  | Some v -> v
  | None ->
    let v = f () in
    Obs.Span.with_span ~stage:"store" ?vp (fun () -> put st ~key v);
    v
