(** End-to-end orchestration: assemble the §5.2 input artifacts from the
    simulated public data sources (through their text serializations, so
    the inference consumes exactly what a real deployment would parse),
    run collection (§5.3) and inference (§5.4) from one VP. *)

open Netcore
module Gen = Topogen.Gen
module Engine = Probesim.Engine

type inputs = {
  rib : Bgpdata.Rib.t;  (** public collector view *)
  rels : Bgpdata.As_rel.t;  (** relationships inferred from public paths *)
  ixp : Bgpdata.Ixp.t;
  delegations : Bgpdata.Delegation.t;
  vp_asns : Asn.Set.t;
}

(** [inputs_of_world w bgp] builds the public view seen by [w]'s
    collectors, infers relationships from it, and round-trips every
    artifact through its text format. *)
val inputs_of_world : Gen.world -> Routing.Bgp.t -> inputs

type run = {
  cfg : Config.t;
  ip2as : Ip2as.t;
  inputs : inputs;
  collection : Collect.t;
  graph : Rgraph.t;
  inference : Heuristics.result;
  probes : int;
      (** the engine's probe counter when the run finished (cumulative
          if the engine was shared across runs) *)
  cache : Engine.cache_stats;  (** forward-path cache counters, same caveat *)
}

(** [execute ?cfg engine inputs ~vp] runs the full pipeline from [vp]. *)
val execute : ?cfg:Config.t -> Engine.t -> inputs -> vp:Gen.vp -> run

(** [setup world] builds the routing/probing stack for a world:
    (bgp, forwarding, engine, inputs). *)
val setup :
  ?pps:float -> Gen.world -> Routing.Bgp.t * Routing.Forwarding.t * Engine.t * inputs

(** The shared routing state of a multi-VP sweep: one frozen BGP
    snapshot plus one frozen forwarding plan. Pure immutable data —
    built once, attached by reference from every worker domain. *)
type shared = {
  snapshot : Routing.Bgp.snapshot;
  plan : Routing.Forwarding.plan;
}

(** [freeze_routing ?store w] builds the shared routing state for [w]:
    the frozen per-prefix BGP tables and the forwarding plan (egress
    precomputed for the VP-owning ASes). With [store], the packed
    snapshot round-trips through {!Run_store.load_bgp_snapshot} /
    {!Run_store.save_bgp_snapshot}, so warm sweeps skip the propagation
    compute. Traced as the ["freeze"] stage; the snapshot build is
    counted under [routing.snapshot.builds].
    [?epoch] (the chained event-log digest of {!Topogen.Evolve}) keys
    evolved-world snapshots apart in the store; the default [""] is the
    unevolved world. *)
val freeze_routing : ?store:Store.t -> ?epoch:string -> Gen.world -> shared

(** [execute_all ?pool w inputs ~vps] runs the full pipeline from every
    vantage point in [vps], on [pool]'s worker domains when one is
    given, and returns the runs in [vps] order.  Routing state is a
    pure function of the world, so all VPs answer from one frozen
    snapshot + plan ([shared], built lazily by {!freeze_routing} when
    not supplied — pass one to amortize it across sweeps); what stays
    per-VP is the genuinely mutable probing stack (engine clock, probe
    counter, path cache, RNG, IP-ID state) plus thin private caches, so
    the result is byte-identical whatever the pool size — parallelism
    only changes wall-clock.

    [store] adds persistent per-VP checkpointing through {!Run_store}:
    each VP's completed run is snapshotted as soon as it finishes, a
    warm invocation deserializes instead of recomputing (byte-identical
    by the determinism above), and a run killed mid-sweep resumes from
    the last completed VP. Corrupt or stale entries fall back to
    recomputation. A fully store-warm sweep without a pool never forces
    the freeze. *)
val execute_all :
  ?cfg:Config.t ->
  ?pool:Pool.t ->
  ?store:Store.t ->
  ?shared:shared ->
  ?epoch:string ->
  ?pps:float ->
  Gen.world ->
  inputs ->
  vps:Gen.vp list ->
  run list

(** {1 Epoch loop}

    Temporal churn: freeze once, then per epoch apply the evolution
    batch, incrementally re-freeze (only dirty prefixes re-propagate;
    the forwarding plan re-scores only dirty columns), and re-run
    inference. *)

type epoch = {
  ep_index : int;  (** 0 is the unevolved world *)
  ep_time : float;  (** simulated clock at the end of the epoch *)
  ep_digest : string;
      (** chained event-log digest; keys this epoch's store entries *)
  ep_events : Topogen.Evolve.timed list;  (** applied this epoch *)
  ep_stats : Routing.Bgp.refreeze_stats option;  (** [None] at epoch 0 *)
  ep_world : Gen.world;  (** the evolved world (shared [Net.t], mutated) *)
  ep_shared : shared;  (** patched snapshot + plan for this epoch *)
  ep_runs : run list;  (** one per VP returned by [vps] *)
}

(** [run_epochs ~schedule ~vps w] drives the epoch loop: one full
    freeze at epoch 0, then [schedule.ev_epochs] rounds of
    {!Topogen.Evolve.advance} + {!Routing.Bgp.refreeze} +
    {!Routing.Forwarding.patch} + a full inference sweep over
    [vps ep_world]. With [validate] (the default), every patched epoch
    is checked against a from-scratch freeze — packed words, arena,
    LPM answers ({!Routing.Bgp.Snapshot.equal}) and the whole
    forwarding plan ({!Routing.Forwarding.plan_equal}) — and any
    divergence raises [Invalid_argument]; the scratch freezes are
    counted under [routing.snapshot.scratch_builds], leaving the
    incremental accounting ([routing.snapshot.builds] = 1,
    [routing.snapshot.patches] = N) intact. [store] keys every epoch's
    artifacts by [ep_digest]. *)
val run_epochs :
  ?cfg:Config.t ->
  ?pool:Pool.t ->
  ?store:Store.t ->
  ?pps:float ->
  ?validate:bool ->
  schedule:Topogen.Evolve.schedule ->
  vps:(Gen.world -> Gen.vp list) ->
  Gen.world ->
  epoch list

(** [freeze_shared w inputs] forces the lazily built indices of the
    structures parallel runs share read-only. Called automatically by
    {!execute_all}; exposed for callers that fan out by hand. *)
val freeze_shared : Gen.world -> inputs -> unit
