(** The router-level graph assembled from traces and alias resolution
    (§5.3 "Build router-level graph"): nodes are alias groups, edges are
    consecutive responsive hops. Ownership heuristics walk this graph in
    order of observed hop distance from the VP. *)

open Netcore

type node = {
  id : int;
  addrs : Ipv4.Set.t;  (** addresses observed in TTL-expired replies *)
  extra_addrs : Ipv4.Set.t;  (** alias-group members never seen in traces *)
  min_ttl : int;  (** closest observed hop distance *)
  dests : Asn.Set.t;  (** target ASes probed through this router *)
  last_toward : Asn.Set.t;  (** target ASes for which it closed the path *)
  trace_count : int;
}

type t

val build : Collect.t -> t

val nodes : t -> node list

(** [node_count t] is the number of routers in the graph. *)
val node_count : t -> int

val node : t -> int -> node

(** [node_of_addr t a] is the node whose group contains [a]. *)
val node_of_addr : t -> Ipv4.t -> node option

(** [succs t n] / [preds t n] are graph neighbors in path order. *)
val succs : t -> node -> node list

val preds : t -> node -> node list

(** [by_hop_distance t] is every node sorted by [min_ttl]. *)
val by_hop_distance : t -> node list

(** [all_addrs n] is observed plus merged addresses. *)
val all_addrs : node -> Ipv4.t list
