open Netcore
module B = Bgpdata

type tag =
  | T1_multihomed
  | T2_firewall
  | T3_unrouted
  | T4_onenet
  | T5_third_party
  | T5_relationship
  | T5_missing_customer
  | T5_hidden_peer
  | T6_count
  | T6_ipas
  | T8_silent
  | T8_other_icmp

let tag_label = function
  | T1_multihomed -> "1. Multihomed to VP"
  | T2_firewall -> "2. Firewall"
  | T3_unrouted -> "3. Unrouted interface"
  | T4_onenet -> "4. IP-AS (onenet)"
  | T5_third_party -> "5. Third party"
  | T5_relationship -> "5. AS relationship"
  | T5_missing_customer -> "5. Missing customer"
  | T5_hidden_peer -> "5. Hidden peer"
  | T6_count -> "6. Count"
  | T6_ipas -> "6. IP-AS"
  | T8_silent -> "8. Silent neighbor"
  | T8_other_icmp -> "8. Other ICMP"

(* Stable machine-readable names for metrics and trace records; the
   step-1 "operated by the hosting network" decision is reported as
   "host_network" so fire counts cover every decided router. *)
let tag_slug = function
  | T1_multihomed -> "multihomed"
  | T2_firewall -> "firewall"
  | T3_unrouted -> "unrouted"
  | T4_onenet -> "onenet"
  | T5_third_party -> "third_party"
  | T5_relationship -> "relationship"
  | T5_missing_customer -> "missing_customer"
  | T5_hidden_peer -> "hidden_peer"
  | T6_count -> "count"
  | T6_ipas -> "ipas"
  | T8_silent -> "silent"
  | T8_other_icmp -> "other_icmp"

type owner = Host_router | Neighbor of Asn.t * tag | Unknown

type router_inference = {
  node : Rgraph.node;
  owner : owner;
  merged_from : int list;
}

type border_link = {
  near_node : int option;
  far_node : int option;
  neighbor : Asn.t;
  tag : tag;
}

type result = {
  routers : router_inference list;
  links : border_link list;
  nextas_used : int;
}

let owner_of result id = (List.nth result.routers id).owner

(* Node-level address classification. Host space outranks external
   evidence: once alias resolution ties a host-space interface to a
   router, the router enters the §5.4.1 reasoning even when it also
   revealed a foreign address (the fig-13 virtual-router case). *)
type ncls = Nhost | Next of Asn.Set.t | Nixp | Nunrouted

let classify_node ip2as (n : Rgraph.node) =
  let ext = ref Asn.Set.empty and host = ref false and ixp = ref false in
  Ipv4.Set.iter
    (fun a ->
      match Ip2as.classify ip2as a with
      | Ip2as.External origins -> ext := Asn.Set.union origins !ext
      | Ip2as.Host -> host := true
      | Ip2as.Ixp _ -> ixp := true
      | Ip2as.Unrouted | Ip2as.Reserved -> ())
    n.Rgraph.addrs;
  if !host then Nhost
  else if not (Asn.Set.is_empty !ext) then Next !ext
  else if !ixp then Nixp
  else Nunrouted

let single_ext ip2as n =
  match classify_node ip2as n with
  | Next asns when Asn.Set.cardinal asns = 1 -> Some (Asn.Set.min_elt asns)
  | Next _ | Nhost | Nixp | Nunrouted -> None

let infer ?(disabled = []) cfg ip2as ~rels g (c : Collect.t) =
  let enabled tag = not (List.mem tag disabled) in
  let gate tag decision =
    match decision with
    | Some (Neighbor (_, t)) when t = tag && not (enabled tag) -> None
    | d -> d
  in
  let n_nodes = Rgraph.node_count g in
  let owners = Array.make n_nodes Unknown in
  let merged = Array.make n_nodes [] in
  let merged_away = Array.make n_nodes false in
  let nextas_used = ref 0 in
  let vp_asns = cfg.Config.vp_asns in
  let cls n = classify_node ip2as n in
  let is_vp_asn a = Asn.Set.mem a vp_asns in
  (* nextas (§5.4 closing paragraph): the most common provider among the
     destination ASes probed through the router, defined only when the
     router serves multiple destination ASes. *)
  let nextas (n : Rgraph.node) =
    if Asn.Set.cardinal n.Rgraph.dests < 2 then None
    else
      let providers =
        Asn.Set.fold
          (fun d acc -> Asn.Set.elements (B.As_rel.providers rels d) @ acc)
          n.Rgraph.dests []
      in
      Asn.most_frequent providers
  in
  (* First routed origins reachable from [n] through unrouted/IXP nodes. *)
  let first_routed n =
    let seen = Hashtbl.create 16 in
    let rec go depth acc (m : Rgraph.node) =
      if depth > 4 || Hashtbl.mem seen m.Rgraph.id then acc
      else begin
        Hashtbl.add seen m.Rgraph.id ();
        List.fold_left
          (fun acc s ->
            match cls s with
            | Next asns -> Asn.Set.union asns acc
            | Nhost -> acc
            | Nixp | Nunrouted -> go (depth + 1) acc s)
          acc (Rgraph.succs g m)
      end
    in
    go 0 Asn.Set.empty n
  in
  let most_frequent_provider asns =
    let providers =
      Asn.Set.fold
        (fun a acc -> Asn.Set.elements (B.As_rel.providers rels a) @ acc)
        asns []
    in
    Asn.most_frequent providers
  in
  (* §5.4.3 (also applied to IXP-numbered routers): adjacent routed
     networks, else destinations probed, else nextas. *)
  let step3 (n : Rgraph.node) =
    let routed = first_routed n in
    if Asn.Set.cardinal routed = 1 then Some (Neighbor (Asn.Set.min_elt routed, T3_unrouted))
    else if Asn.Set.cardinal routed > 1 then (
      match most_frequent_provider routed with
      | Some a -> Some (Neighbor (a, T3_unrouted))
      | None -> Some (Neighbor (Asn.Set.min_elt routed, T3_unrouted)))
    else if Asn.Set.cardinal n.Rgraph.last_toward = 1 then
      Some (Neighbor (Asn.Set.min_elt n.Rgraph.last_toward, T3_unrouted))
    else (
      match nextas n with
      | Some a ->
        incr nextas_used;
        Some (Neighbor (a, T3_unrouted))
      | None -> None)
  in
  (* §5.4.2: a host-addressed router closing every path toward an AS is
     that AS's firewalled border. *)
  let step2 (n : Rgraph.node) =
    if Rgraph.succs g n <> [] then None
    else if Asn.Set.cardinal n.Rgraph.last_toward = 1 then
      Some (Neighbor (Asn.Set.min_elt n.Rgraph.last_toward, T2_firewall))
    else
      match nextas n with
      | Some a ->
        incr nextas_used;
        Some (Neighbor (a, T2_firewall))
      | None -> None
  in
  (* §5.4.4 step 4.2: two consecutive external routers in one AS after a
     host-addressed router whose external adjacency is that AS alone
     (multi-AS adjacency is §5.4.6's step 6.1 territory). *)
  let adj_ext_of n =
    List.fold_left
      (fun acc m ->
        match cls m with
        | Next asns -> Asn.Set.union asns acc
        | Nhost | Nixp | Nunrouted -> acc)
      Asn.Set.empty (Rgraph.succs g n)
  in
  let step4_host (n : Rgraph.node) =
    if Asn.Set.cardinal (adj_ext_of n) <> 1 then None
    else
      List.find_map
        (fun m ->
          match single_ext ip2as m with
          | None -> None
          | Some a ->
            List.find_map
              (fun m2 ->
                if m2.Rgraph.id <> n.Rgraph.id && single_ext ip2as m2 = Some a then
                  Some (Neighbor (a, T4_onenet))
                else None)
              (Rgraph.succs g m))
        (Rgraph.succs g n)
  in
  (* Third-party pattern (§5.4.5 steps 5.1/5.2): an address from A on a
     router only seen toward B, with A a provider of B. *)
  let third_party_target (m : Rgraph.node) =
    match single_ext ip2as m with
    | None -> None
    | Some a ->
      if Asn.Set.cardinal m.Rgraph.dests = 1 then
        let b = Asn.Set.min_elt m.Rgraph.dests in
        if (not (Asn.equal a b)) && B.As_rel.is_provider_of rels ~provider:a ~customer:b
        then Some b
        else None
      else None
  in
  let step5 (n : Rgraph.node) =
    let succs = Rgraph.succs g n in
    (* 5.1: the (single) successor reveals the third-party pattern;
       aggregation routers with several successors stay with the host. *)
    let third_party_chain =
      match succs with
      | [ m ] -> third_party_target m
      | _ -> None
    in
    match third_party_chain with
    | Some b -> Some (Neighbor (b, T5_third_party))
    | None -> (
      let adj_ext = adj_ext_of n in
      if Asn.Set.cardinal adj_ext <> 1 then None
      else
        let a = Asn.Set.min_elt adj_ext in
        let rel_with_vp =
          Asn.Set.fold
            (fun x acc ->
              match acc with
              | Some _ -> acc
              | None -> B.As_rel.rel rels ~of_:x ~with_:a)
            vp_asns None
        in
        match rel_with_vp with
        (* 5.3: a known peer or customer of the hosting network. *)
        | Some B.As_rel.Customer | Some B.As_rel.Peer ->
          Some (Neighbor (a, T5_relationship))
        | Some B.As_rel.Provider ->
          (* Provider-space addresses adjacent: attribute to the provider
             (its side of the interconnect). *)
          Some (Neighbor (a, T5_relationship))
        | None -> (
          (* 5.4: missing customer — B provides to A, X provides to B. *)
          let between =
            Asn.Set.filter
              (fun b ->
                Asn.Set.exists
                  (fun x -> B.As_rel.is_provider_of rels ~provider:x ~customer:b)
                  vp_asns)
              (B.As_rel.providers rels a)
          in
          match Asn.Set.min_elt_opt between with
          | Some b -> Some (Neighbor (b, T5_missing_customer))
          (* 5.5: hidden peer — no relationship known, single AS beyond. *)
          | None -> Some (Neighbor (a, T5_hidden_peer))))
  in
  (* §5.4.6 step 6.1: multiple adjacent external ASes — majority by
     distinct adjacent addresses, ties broken by a known relationship. *)
  let step6_host (n : Rgraph.node) =
    let counts = Asn.Tbl.create 8 in
    List.iter
      (fun m ->
        Ipv4.Set.iter
          (fun a ->
            match Ip2as.classify ip2as a with
            | Ip2as.External origins ->
              let asn = Asn.Set.min_elt origins in
              Asn.Tbl.replace counts asn
                (1 + Option.value ~default:0 (Asn.Tbl.find_opt counts asn))
            | _ -> ())
          m.Rgraph.addrs)
      (Rgraph.succs g n);
    let ranked =
      Asn.Tbl.fold (fun a k acc -> (a, k) :: acc) counts []
      |> List.sort (fun (a1, k1) (a2, k2) ->
             match Int.compare k2 k1 with
             | 0 -> Asn.compare a1 a2
             | c -> c)
    in
    match ranked with
    | [] -> None
    | (best, kbest) :: rest ->
      let tied = best :: List.filter_map (fun (a, k) -> if k = kbest then Some a else None) rest in
      let chosen =
        match
          List.find_opt
            (fun a -> Asn.Set.exists (fun x -> B.As_rel.known rels x a) vp_asns)
            tied
        with
        | Some a -> a
        | None -> best
      in
      Some (Neighbor (chosen, T6_count))
  in
  (* §5.4.1: routers of the hosting network, and the multihomed-neighbor
     exception (step 1.1). *)
  let step1 (n : Rgraph.node) =
    let succs = Rgraph.succs g n and preds = Rgraph.preds g n in
    (* IXP-LAN successors anchor the near side like host-space ones: the
       LAN hop is the member's router, so this router sits on our side
       of the exchange. *)
    let host_succ =
      List.exists
        (fun m ->
          match cls m with
          | Nhost | Nixp -> true
          | Next _ | Nunrouted -> false)
        succs
    in
    (* 1.1: single external AS adjacent, and every destination probed
       through this router is that AS or one of its customers. *)
    let adj_ext =
      List.fold_left
        (fun acc m ->
          match single_ext ip2as m with
          | Some a -> Asn.Set.add a acc
          | None -> acc)
        Asn.Set.empty (succs @ preds)
    in
    let multihomed =
      if Asn.Set.cardinal adj_ext = 1 && List.exists (fun m -> cls m = Nhost) succs
      then
        let a = Asn.Set.min_elt adj_ext in
        if is_vp_asn a then None
        else
          let allowed = Asn.Set.add a (B.As_rel.customers rels a) in
          let dests_ok = Asn.Set.subset n.Rgraph.dests allowed in
          let guard_ok =
            List.for_all
              (fun m ->
                match single_ext ip2as m with
                | None -> true
                | Some candidate ->
                  let cust_of_vp =
                    Asn.Set.exists
                      (fun x -> B.As_rel.is_provider_of rels ~provider:x ~customer:candidate)
                      vp_asns
                  in
                  (not cust_of_vp) || B.As_rel.known rels a candidate
                  || Asn.equal a candidate)
              succs
          in
          if dests_ok && guard_ok then Some a else None
      else None
    in
    match multihomed with
    | Some a -> Some (Neighbor (a, T1_multihomed))
    | None -> if host_succ then Some Host_router else None
  in
  (* Main pass in hop order. *)
  let ordered = Rgraph.by_hop_distance g in
  List.iter
    (fun (n : Rgraph.node) ->
      let decision =
        match cls n with
        | Nhost -> (
          match step1 n with
          | Some o -> Some o
          | None -> (
            (* Far side of an interdomain link numbered from host space:
               steps 2-6 in order. *)
            match gate T2_firewall (step2 n) with
            | Some o -> Some o
            | None -> (
              let succs = Rgraph.succs g n in
              let all_unrouted =
                succs <> []
                && List.for_all
                     (fun m ->
                       match cls m with
                       | Nunrouted | Nixp -> true
                       | Nhost | Next _ -> false)
                     succs
              in
              if all_unrouted then gate T3_unrouted (step3 n)
              else
                match gate T4_onenet (step4_host n) with
                | Some o -> Some o
                | None -> (
                  match step5 n with
                  | Some o when
                      (match o with
                      | Neighbor (_, t) -> enabled t
                      | Host_router | Unknown -> true) ->
                    Some o
                  | Some _ | None -> gate T6_count (step6_host n)))))
        | Nunrouted | Nixp -> gate T3_unrouted (step3 n)
        | Next asns -> (
          (* 4.1: consecutive hops in one external AS. *)
          let single =
            if Asn.Set.cardinal asns = 1 then Some (Asn.Set.min_elt asns) else None
          in
          match single with
          | Some a
            when enabled T4_onenet
                 && List.exists
                      (fun m ->
                        match cls m with
                        | Next asns' -> Asn.Set.mem a asns'
                        | _ -> false)
                      (Rgraph.succs g n) ->
            Some (Neighbor (a, T4_onenet))
          | _ -> (
            match
              if enabled T5_third_party then third_party_target n else None
            with
            | Some b -> Some (Neighbor (b, T5_third_party))
            | None -> (
              match single with
              | Some a ->
                if is_vp_asn a then Some Host_router
                else Some (Neighbor (a, T6_ipas))
              | None ->
                (* Multi-origin or mixed: majority address count. *)
                Some
                  (Neighbor
                     ( Asn.Set.min_elt asns,
                       T6_ipas )))))
      in
      match decision with
      | Some o -> owners.(n.Rgraph.id) <- o
      | None -> ())
    ordered;
  (* §5.4.7: collapse single-interface host routers that face one
     neighbor router over an inferred point-to-point link. *)
  let mate_hops =
    List.fold_left
      (fun acc (_, hop, _) -> Ipv4.Set.add hop acc)
      Ipv4.Set.empty c.Collect.mates
  in
  List.iter
    (fun (f : Rgraph.node) ->
      match owners.(f.Rgraph.id) with
      | Neighbor _ ->
        let p2p_confirmed = Ipv4.Set.exists (fun a -> Ipv4.Set.mem a mate_hops) f.Rgraph.addrs in
        if p2p_confirmed then begin
          let host_preds =
            List.filter
              (fun (p : Rgraph.node) ->
                owners.(p.Rgraph.id) = Host_router
                && (not merged_away.(p.Rgraph.id))
                && Ipv4.Set.cardinal p.Rgraph.addrs = 1
                && Ipv4.Set.is_empty p.Rgraph.extra_addrs)
              (Rgraph.preds g f)
          in
          match host_preds with
          | rep :: ((_ :: _) as others) ->
            List.iter
              (fun (o : Rgraph.node) ->
                merged_away.(o.Rgraph.id) <- true;
                merged.(rep.Rgraph.id) <- o.Rgraph.id :: merged.(rep.Rgraph.id))
              others
          | _ -> ()
        end
      | Host_router | Unknown -> ())
    ordered;
  (* Border links from inferred neighbor routers. *)
  let redirect id =
    (* Follow a merged-away node to its representative. *)
    if not merged_away.(id) then id
    else
      let rec find_rep i =
        if i >= n_nodes then id
        else if List.mem id merged.(i) then i
        else find_rep (i + 1)
      in
      find_rep 0
  in
  let links = ref [] in
  let seen_links = Hashtbl.create 256 in
  let add_link near far neighbor tag =
    let key = (near, far, neighbor) in
    if not (Hashtbl.mem seen_links key) then begin
      Hashtbl.add seen_links key ();
      links := { near_node = near; far_node = far; neighbor; tag } :: !links
    end
  in
  Array.iteri
    (fun id o ->
      match o with
      | Neighbor (b, tag) ->
        let f = Rgraph.node g id in
        let host_preds =
          List.filter (fun (p : Rgraph.node) -> owners.(p.Rgraph.id) = Host_router)
            (Rgraph.preds g f)
        in
        (* Routers with no host-owned predecessor belong to borders of
           distant networks, outside this VP's inference scope (§1). *)
        List.iter
          (fun (p : Rgraph.node) ->
            add_link (Some (redirect p.Rgraph.id)) (Some id) b tag)
          host_preds
      | Host_router | Unknown -> ())
    owners;
  (* §5.4.8: silent and echo-only neighbors. *)
  let inferred_neighbors =
    List.fold_left (fun acc l -> Asn.Set.add l.neighbor acc) Asn.Set.empty !links
  in
  let bgp_neighbors =
    Asn.Set.fold
      (fun x acc -> Asn.Set.union (B.As_rel.neighbors rels x) acc)
      vp_asns Asn.Set.empty
    |> Asn.Set.filter (fun a -> not (Asn.Set.mem a vp_asns))
  in
  let node_seq_of_trace t =
    List.filter_map (fun a -> Rgraph.node_of_addr g a) (Trace.hop_addrs t)
  in
  Asn.Set.iter
    (fun b ->
      if not (Asn.Set.mem b inferred_neighbors) then begin
        let traces_to_b =
          List.filter (fun t -> Asn.equal t.Trace.target_asn b) c.Collect.traces
        in
        if traces_to_b <> [] then begin
          let last_host_and_tail =
            List.map
              (fun t ->
                let seq = node_seq_of_trace t in
                let rec split last after = function
                  | [] -> (last, after)
                  | (m : Rgraph.node) :: rest ->
                    if owners.(m.Rgraph.id) = Host_router then split (Some m.Rgraph.id) [] rest
                    else split last (m :: after) rest
                in
                split None [] seq)
              traces_to_b
          in
          let lasts = List.filter_map fst last_host_and_tail in
          let tails = List.concat_map snd last_host_and_tail in
          match List.sort_uniq compare lasts with
          | [ r ] when tails = [] ->
            let has_other_icmp =
              List.exists
                (fun (asn, src) ->
                  Asn.equal asn b && Ip2as.single_external ip2as src = Some b)
                c.Collect.other_icmp
            in
            if has_other_icmp then add_link (Some r) None b T8_other_icmp
            else add_link (Some r) None b T8_silent
          | _ -> ()
        end
      end)
    bgp_neighbors;
  let routers =
    List.init n_nodes (fun id ->
        { node = Rgraph.node g id; owner = owners.(id); merged_from = merged.(id) })
  in
  (* Observability: per-heuristic fire counts and per-router provenance.
     Purely passive — reads the finished decision array; with metrics
     off and no sink the whole block is one branch. *)
  let obs_m = Obs.Metrics.enabled () and obs_t = Obs.Span.sink_active () in
  if obs_m || obs_t then begin
    let fire : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let bump slug =
      Hashtbl.replace fire slug
        (1 + Option.value ~default:0 (Hashtbl.find_opt fire slug))
    in
    Array.iteri
      (fun id o ->
        let provenance =
          match o with
          | Unknown -> None
          | Host_router -> Some ("host", "host_network", None)
          | Neighbor (asn, tag) -> Some ("neighbor", tag_slug tag, Some asn)
        in
        match provenance with
        | None -> ()
        | Some (owner, slug, asn) ->
          bump slug;
          if obs_t then begin
            let n = Rgraph.node g id in
            let addrs =
              String.concat ","
                (List.map Ipv4.to_string (Ipv4.Set.elements n.Rgraph.addrs))
            in
            Obs.Span.event ~kind:"router"
              (( "id", Obs.Span.I id )
               :: ( "owner", Obs.Span.S owner )
               :: ( "heuristic", Obs.Span.S slug )
               :: (match asn with
                  | Some a -> [ ("asn", Obs.Span.I a) ]
                  | None -> [])
              @ [ ("addrs", Obs.Span.S addrs);
                  ("merged_from", Obs.Span.I (List.length merged.(id))) ])
          end)
      owners;
    let sorted =
      List.sort (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun slug n acc -> (slug, n) :: acc) fire [])
    in
    List.iter
      (fun (slug, n) ->
        if obs_m then Obs.Metrics.add ("heuristics.fire." ^ slug) n;
        if obs_t then
          Obs.Span.event ~kind:"heuristic_fire"
            [ ("heuristic", Obs.Span.S slug); ("count", Obs.Span.I n) ])
      sorted;
    if obs_m then begin
      Obs.Metrics.add "heuristics.routers" n_nodes;
      Obs.Metrics.add "heuristics.links" (List.length !links);
      Obs.Metrics.add "heuristics.nextas_used" !nextas_used
    end
  end;
  { routers; links = List.rev !links; nextas_used = !nextas_used }
