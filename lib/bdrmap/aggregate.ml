open Netcore

type vp_links = { vp_name : string; links : Output.link_record list }

type merged = {
  near_addrs : Ipv4.Set.t;
  far_addrs : Ipv4.Set.t;
  neighbor : Asn.t;
  tags : Heuristics.tag list;
  seen_by : string list;
}

let of_run vp_name graph result =
  let lines = Output.links_to_lines graph result in
  match Output.links_of_lines lines with
  | Ok links -> { vp_name; links }
  | Error e -> invalid_arg ("Aggregate.of_run: " ^ e)

let same_link (m : merged) (r : Output.link_record) =
  Asn.equal m.neighbor r.Output.neighbor
  &&
  let far = Ipv4.Set.of_list r.Output.far_addrs in
  let near = Ipv4.Set.of_list r.Output.near_addrs in
  if Ipv4.Set.is_empty far && Ipv4.Set.is_empty m.far_addrs then
    (* Silent on both sides: match on the near router. *)
    not (Ipv4.Set.disjoint near m.near_addrs)
  else
    (not (Ipv4.Set.disjoint far m.far_addrs))
    && not (Ipv4.Set.disjoint near m.near_addrs)

let merge runs =
  let acc : merged list ref = ref [] in
  List.iter
    (fun run ->
      List.iter
        (fun (r : Output.link_record) ->
          match List.find_opt (fun m -> same_link m r) !acc with
          | Some m ->
            let m' =
              { m with
                near_addrs =
                  Ipv4.Set.union m.near_addrs (Ipv4.Set.of_list r.Output.near_addrs);
                far_addrs =
                  Ipv4.Set.union m.far_addrs (Ipv4.Set.of_list r.Output.far_addrs);
                tags =
                  (if List.mem r.Output.tag m.tags then m.tags
                   else m.tags @ [ r.Output.tag ]);
                seen_by =
                  (if List.mem run.vp_name m.seen_by then m.seen_by
                   else m.seen_by @ [ run.vp_name ]) }
            in
            acc := List.map (fun x -> if x == m then m' else x) !acc
          | None ->
            acc :=
              { near_addrs = Ipv4.Set.of_list r.Output.near_addrs;
                far_addrs = Ipv4.Set.of_list r.Output.far_addrs;
                neighbor = r.Output.neighbor;
                tags = [ r.Output.tag ];
                seen_by = [ run.vp_name ] }
              :: !acc)
        run.links)
    runs;
  List.rev !acc

let per_neighbor merged =
  let tbl = Asn.Tbl.create 32 in
  List.iter
    (fun m ->
      Asn.Tbl.replace tbl m.neighbor
        (1 + Option.value ~default:0 (Asn.Tbl.find_opt tbl m.neighbor)))
    merged;
  Asn.Tbl.fold (fun a n acc -> (a, n) :: acc) tbl []
  |> List.sort (fun (a1, n1) (a2, n2) ->
         match Int.compare n2 n1 with
         | 0 -> Asn.compare a1 a2
         | c -> c)

let marginal_utility ~vp_order merged =
  let seen = Hashtbl.create 64 in
  List.map
    (fun vp ->
      List.iteri
        (fun i m -> if List.mem vp m.seen_by then Hashtbl.replace seen i ())
        merged;
      Hashtbl.length seen)
    vp_order
