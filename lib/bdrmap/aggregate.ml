open Netcore

type vp_links = { vp_name : string; links : Output.link_record list }

type merged = {
  near_addrs : Ipv4.Set.t;
  far_addrs : Ipv4.Set.t;
  neighbor : Asn.t;
  tags : Heuristics.tag list;
  seen_by : string list;
}

let of_run vp_name graph result =
  let lines = Output.links_to_lines graph result in
  match Output.links_of_lines lines with
  | Ok links -> { vp_name; links }
  | Error e -> invalid_arg ("Aggregate.of_run: " ^ e)

let same_link (m : merged) (r : Output.link_record) =
  Asn.equal m.neighbor r.Output.neighbor
  &&
  let far = Ipv4.Set.of_list r.Output.far_addrs in
  let near = Ipv4.Set.of_list r.Output.near_addrs in
  if Ipv4.Set.is_empty far && Ipv4.Set.is_empty m.far_addrs then
    (* Silent on both sides: match on the near router. *)
    not (Ipv4.Set.disjoint near m.near_addrs)
  else
    (not (Ipv4.Set.disjoint far m.far_addrs))
    && not (Ipv4.Set.disjoint near m.near_addrs)

(* Merged links indexed by neighbor ASN: a record can only merge into an
   entry with the same neighbor, so only that neighbor's entries are
   scanned (newest first, matching the former whole-list scan order)
   instead of every merged link so far.  [items] maps a first-seen index
   to the current state of that merged link, which keeps the output
   order identical to the append-only list it replaces. *)
let merge runs =
  let items : (int, merged) Hashtbl.t = Hashtbl.create 256 in
  let by_neighbor : (Asn.t, int list) Hashtbl.t = Hashtbl.create 64 in
  let n = ref 0 in
  List.iter
    (fun run ->
      List.iter
        (fun (r : Output.link_record) ->
          let candidates =
            Option.value ~default:[] (Hashtbl.find_opt by_neighbor r.Output.neighbor)
          in
          match
            List.find_opt (fun i -> same_link (Hashtbl.find items i) r) candidates
          with
          | Some i ->
            let m = Hashtbl.find items i in
            Hashtbl.replace items i
              { m with
                near_addrs =
                  Ipv4.Set.union m.near_addrs (Ipv4.Set.of_list r.Output.near_addrs);
                far_addrs =
                  Ipv4.Set.union m.far_addrs (Ipv4.Set.of_list r.Output.far_addrs);
                tags =
                  (if List.mem r.Output.tag m.tags then m.tags
                   else m.tags @ [ r.Output.tag ]);
                seen_by =
                  (if List.mem run.vp_name m.seen_by then m.seen_by
                   else m.seen_by @ [ run.vp_name ]) }
          | None ->
            Hashtbl.replace items !n
              { near_addrs = Ipv4.Set.of_list r.Output.near_addrs;
                far_addrs = Ipv4.Set.of_list r.Output.far_addrs;
                neighbor = r.Output.neighbor;
                tags = [ r.Output.tag ];
                seen_by = [ run.vp_name ] };
            Hashtbl.replace by_neighbor r.Output.neighbor (!n :: candidates);
            incr n)
        run.links)
    runs;
  List.init !n (fun i -> Hashtbl.find items i)

(* Extracting per-VP link sets round-trips each run through the output
   text format — independent work, so it parallelizes per VP.  Order is
   preserved either way. *)
let of_runs ?pool runs =
  let extract (vp_name, graph, result) = of_run vp_name graph result in
  match pool with
  | None -> List.map extract runs
  | Some pool -> Pool.map pool extract runs

let merge_runs ?pool runs =
  Obs.Span.with_span ~stage:"aggregate" (fun () ->
      let merged = merge (of_runs ?pool runs) in
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.add "aggregate.vp_runs" (List.length runs);
        Obs.Metrics.add "aggregate.merged_links" (List.length merged)
      end;
      merged)

let per_neighbor merged =
  let tbl = Asn.Tbl.create 32 in
  List.iter
    (fun m ->
      Asn.Tbl.replace tbl m.neighbor
        (1 + Option.value ~default:0 (Asn.Tbl.find_opt tbl m.neighbor)))
    merged;
  Asn.Tbl.fold (fun a n acc -> (a, n) :: acc) tbl []
  |> List.sort (fun (a1, n1) (a2, n2) ->
         match Int.compare n2 n1 with
         | 0 -> Asn.compare a1 a2
         | c -> c)

let marginal_utility ~vp_order merged =
  (* Invert seen_by once (VP name -> merged indices) instead of scanning
     every merged link's observer list for every VP. *)
  let by_vp : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun i m -> List.iter (fun vp -> Hashtbl.add by_vp vp i) m.seen_by)
    merged;
  let seen = Hashtbl.create 64 in
  List.map
    (fun vp ->
      List.iter (fun i -> Hashtbl.replace seen i ()) (Hashtbl.find_all by_vp vp);
      Hashtbl.length seen)
    vp_order
