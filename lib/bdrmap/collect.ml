open Netcore
module Engine = Probesim.Engine
module Gen = Topogen.Gen
module Ag = Aliasres.Alias_graph

type t = {
  traces : Trace.t list;
  aliases : Ag.t;
  mates : (Ipv4.t * Ipv4.t * Ipv4.t) list;
  other_icmp : (Asn.t * Ipv4.t) list;
  sched : Probesim.Scheduler.t;
  stopset_hits : int;
  alias_pairs_tested : int;
}

(* Per-target-AS stop set (doubletree): the first external address each
   trace observed; later traces toward the same AS stop at these. *)
module Stopset = struct
  type t = (Asn.t, Ipv4.Set.t) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let mem t asn addr =
    match Hashtbl.find_opt t asn with
    | Some s -> Ipv4.Set.mem addr s
    | None -> false

  let add t asn addr =
    let cur = Option.value ~default:Ipv4.Set.empty (Hashtbl.find_opt t asn) in
    Hashtbl.replace t asn (Ipv4.Set.add addr cur)
end

let external_class ip2as addr =
  match Ip2as.classify ip2as addr with
  | Ip2as.External _ | Ip2as.Ixp _ -> true
  | Ip2as.Host | Ip2as.Unrouted | Ip2as.Reserved -> false

(* One traceroute with per-hop stop-set checks. The fixed flow id is the
   Paris traceroute discipline (2). *)
let trace_one (prober : Probesim.Prober.t) cfg ip2as stopset ~target_asn ~dst =
  (* Retry-with-backoff over silent hops: on an impaired network a
     missing reply is often a lost probe or a drained token bucket, not
     a genuinely silent router, so each attempt waits [k * backoff]
     longer before re-probing. The per-target budget keeps one
     pathological path (e.g. every hop behind a rate limiter) from
     consuming unbounded probes. With [probe_retries = 0] this wrapper
     sends exactly the probes the plain loop would. *)
  let budget = ref cfg.Config.retry_budget in
  let probe ~ttl =
    match prober.Probesim.Prober.trace_probe ~flow:0 ~dst ~ttl with
    | Some r -> Some r
    | None ->
      let rec retry k =
        if k > cfg.Config.probe_retries || !budget <= 0 then None
        else begin
          decr budget;
          if cfg.Config.retry_backoff_s > 0.0 then
            prober.Probesim.Prober.advance
              (cfg.Config.retry_backoff_s *. float_of_int k);
          match prober.Probesim.Prober.trace_probe ~flow:0 ~dst ~ttl with
          | Some r -> Some r
          | None -> retry (k + 1)
        end
      in
      if cfg.Config.probe_retries <= 0 then None else retry 1
  in
  let rec go ttl gaps hops =
    if ttl > cfg.Config.max_ttl || gaps >= cfg.Config.gap_limit then
      (List.rev hops, Trace.Nothing, false)
    else
      match probe ~ttl with
      | None -> go (ttl + 1) (gaps + 1) hops
      | Some r -> (
        match r.Engine.kind with
        | Engine.Echo_reply -> (List.rev hops, Trace.Echo r.Engine.src, false)
        | Engine.Dest_unreach -> (List.rev hops, Trace.Unreach r.Engine.src, false)
        | Engine.Ttl_expired ->
          let hops = (ttl, r.Engine.src) :: hops in
          if
            cfg.Config.use_stop_sets
            && external_class ip2as r.Engine.src
            && Stopset.mem stopset target_asn r.Engine.src
          then (List.rev hops, Trace.Nothing, true)
          else go (ttl + 1) 0 hops)
  in
  let hops, closing, stopped = go 1 0 [] in
  let t = { Trace.dst; target_asn; hops; closing; stopped } in
  (* Record the first external hop for the stop set. *)
  (match
     List.find_opt (fun (_, a) -> external_class ip2as a) t.Trace.hops
   with
  | Some (_, a) -> Stopset.add stopset target_asn a
  | None -> ());
  t

(* The trace "sees the target": some external TTL-expired hop other than
   the probed address itself (§5.3's retry rule). *)
let informative ip2as t =
  List.exists
    (fun (_, a) -> external_class ip2as a && not (Ipv4.equal a t.Trace.dst))
    t.Trace.hops

let gather_traces prober cfg ip2as blocks =
  let stopset = Stopset.create () in
  let hits = ref 0 in
  let traces = ref [] in
  List.iter
    (fun (asn, bs) ->
      List.iter
        (fun b ->
          let rec try_candidates = function
            | [] -> ()
            | dst :: rest ->
              let t = trace_one prober cfg ip2as stopset ~target_asn:asn ~dst in
              if t.Trace.stopped then incr hits;
              traces := t :: !traces;
              if not (informative ip2as t || t.Trace.stopped) then try_candidates rest
          in
          try_candidates (Targets.candidates ~per_block:cfg.Config.addrs_per_block b))
        bs)
    (Targets.by_asn blocks);
  (List.rev !traces, !hits)

let oracle_of_prober (prober : Probesim.Prober.t) cfg graph a b =
  if Ipv4.equal a b then `Aliases
  else if Ag.same_router graph a b then `Aliases
  else if Ag.vetoed graph a b then `Not_aliases
  else begin
    let udp addr =
      Option.map (fun r -> r.Engine.src) (prober.Probesim.Prober.udp_probe ~dst:addr)
    in
    let merc = Aliasres.Mercator.test udp a b in
    match merc with
    | Aliasres.Mercator.Aliases ->
      Ag.add_alias graph a b;
      `Aliases
    | Aliasres.Mercator.Not_aliases ->
      Ag.add_not_alias graph a b;
      `Not_aliases
    | Aliasres.Mercator.Unresponsive -> (
      let sampler addr =
        Option.map (fun r -> r.Engine.ipid) (prober.Probesim.Prober.ping ~dst:addr)
      in
      let wait () = prober.Probesim.Prober.advance cfg.Config.ally_interval_s in
      match
        if cfg.Config.ally_proximity then
          Aliasres.Ally.trial_proximity sampler a b ~samples:cfg.Config.ally_samples
            ~fudge:1000
        else
          Aliasres.Ally.test sampler ~wait a b ~trials:cfg.Config.ally_trials
            ~samples:cfg.Config.ally_samples
      with
      | Aliasres.Ally.Aliases ->
        Ag.add_alias graph a b;
        `Aliases
      | Aliasres.Ally.Not_aliases ->
        Ag.add_not_alias graph a b;
        `Not_aliases
      | Aliasres.Ally.Unresponsive -> `Unknown)
  end

(* Candidate alias pairs: addresses sharing a predecessor or successor in
   the collected traces possibly answer from one router (virtual routers,
   per-destination source selection, parallel links). *)
let candidate_pairs cfg traces =
  let seen = Hashtbl.create 4096 in
  let pairs = ref [] in
  let count = ref 0 in
  let note a b =
    if (not (Ipv4.equal a b)) && !count < cfg.Config.max_alias_candidates then begin
      let key = if Ipv4.compare a b <= 0 then (a, b) else (b, a) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        incr count;
        pairs := key :: !pairs
      end
    end
  in
  let preds = Hashtbl.create 4096 and succs = Hashtbl.create 4096 in
  (* Membership goes through an (addr, addr) edge table: the per-address
     lists stay in first-seen order (the pair-generation order below
     depends on it) but the dedup is O(1) instead of a scan of the list,
     which grows long around heavily shared hops. *)
  let succ_seen = Hashtbl.create 4096 and pred_seen = Hashtbl.create 4096 in
  let note_adj tbl edge_seen k v =
    if not (Hashtbl.mem edge_seen (k, v)) then begin
      Hashtbl.add edge_seen (k, v) ();
      Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
    end
  in
  List.iter
    (fun t ->
      List.iter
        (fun (a, b, _) ->
          note_adj succs succ_seen a b;
          note_adj preds pred_seen b a)
        (Trace.pairs t))
    traces;
  let all_pairs l = List.iteri (fun i a -> List.iteri (fun j b -> if j > i then note a b) l) l in
  Hashtbl.iter (fun _ l -> all_pairs l) succs;
  Hashtbl.iter (fun _ l -> all_pairs l) preds;
  List.rev !pairs

let run_with (prober : Probesim.Prober.t) cfg ip2as blocks =
  let sched = Probesim.Scheduler.create ~pps:prober.Probesim.Prober.pps in
  let count () = prober.Probesim.Prober.probe_count () in
  let p0 = count () in
  let traces, stopset_hits = gather_traces prober cfg ip2as blocks in
  Probesim.Scheduler.note sched Probesim.Scheduler.Traceroute (count () - p0);
  let graph = Ag.create () in
  let oracle = oracle_of_prober prober cfg graph in
  (* Prefixscan over consecutive hop pairs. *)
  let p1 = count () in
  let mates = ref [] in
  let scanned = Hashtbl.create 4096 in
  List.iter
    (fun t ->
      List.iter
        (fun (prev, hop, gap) ->
          if not gap then
            let key = (prev, hop) in
            if not (Hashtbl.mem scanned key) then begin
              Hashtbl.add scanned key ();
              match Aliasres.Prefixscan.scan oracle ~prev ~hop with
              | Some r ->
                if not (Ipv4.equal r.Aliasres.Prefixscan.mate prev) then
                  Ag.add_alias graph r.Aliasres.Prefixscan.mate prev;
                mates := (prev, hop, r.Aliasres.Prefixscan.mate) :: !mates
              | None -> ()
            end)
        (Trace.pairs t))
    traces;
  Probesim.Scheduler.note sched Probesim.Scheduler.Prefixscan (count () - p1);
  (* Candidate alias pairs. *)
  let p2 = count () in
  let pairs = candidate_pairs cfg traces in
  List.iter (fun (a, b) -> ignore (oracle a b)) pairs;
  Probesim.Scheduler.note sched Probesim.Scheduler.Alias (count () - p2);
  (* Closing replies whose source maps outside the host: §5.4.8 input. *)
  let other_icmp =
    List.filter_map
      (fun t ->
        match t.Trace.closing with
        | Trace.Echo a | Trace.Unreach a -> Some (t.Trace.target_asn, a)
        | Trace.Nothing -> None)
      traces
  in
  { traces; aliases = graph; mates = List.rev !mates; other_icmp; sched;
    stopset_hits; alias_pairs_tested = List.length pairs }

let run eng cfg ip2as ~vp blocks =
  run_with (Probesim.Prober.local eng ~vp) cfg ip2as blocks

(* The oracle's probes are vantage-point independent (direct ping/udp),
   so any VP works for the local binding. *)
let alias_oracle eng cfg graph =
  let w = Engine.world eng in
  let vp = List.hd w.Gen.vps in
  oracle_of_prober (Probesim.Prober.local eng ~vp) cfg graph
