open Netcore
module Engine = Probesim.Engine
module Gen = Topogen.Gen
module Ag = Aliasres.Alias_graph

type t = {
  traces : Trace.t list;
  aliases : Ag.t;
  mates : (Ipv4.t * Ipv4.t * Ipv4.t) list;
  other_icmp : (Asn.t * Ipv4.t) list;
  sched : Probesim.Scheduler.t;
  stopset_hits : int;
  alias_pairs_tested : int;
}

(* Per-target-AS stop set (doubletree): the first external address each
   trace observed; later traces toward the same AS stop at these. *)
module Stopset = struct
  type t = (Asn.t, Ipv4.Set.t) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let mem t asn addr =
    match Hashtbl.find_opt t asn with
    | Some s -> Ipv4.Set.mem addr s
    | None -> false

  let add t asn addr =
    let cur = Option.value ~default:Ipv4.Set.empty (Hashtbl.find_opt t asn) in
    Hashtbl.replace t asn (Ipv4.Set.add addr cur)
end

let external_class ip2as addr =
  match Ip2as.classify ip2as addr with
  | Ip2as.External _ | Ip2as.Ixp _ -> true
  | Ip2as.Host | Ip2as.Unrouted | Ip2as.Reserved -> false

(* Plain counters threaded through collection and flushed into the
   metrics registry once at the end of a run: the probing loops stay
   observability-free (an int incr, no branch on the obs state). *)
type counts = { mutable replies : int; mutable retries : int }

(* One traceroute with per-hop stop-set checks. The fixed flow id is the
   Paris traceroute discipline (2). *)
let trace_one (prober : Probesim.Prober.t) cfg ip2as stopset counts ~target_asn
    ~dst =
  (* Retry-with-backoff over silent hops: on an impaired network a
     missing reply is often a lost probe or a drained token bucket, not
     a genuinely silent router, so each attempt waits [k * backoff]
     longer before re-probing. The per-target budget keeps one
     pathological path (e.g. every hop behind a rate limiter) from
     consuming unbounded probes. With [probe_retries = 0] this wrapper
     sends exactly the probes the plain loop would. *)
  let budget = ref cfg.Config.retry_budget in
  let probe ~ttl =
    match prober.Probesim.Prober.trace_probe ~flow:0 ~dst ~ttl with
    | Some r -> Some r
    | None ->
      let rec retry k =
        if k > cfg.Config.probe_retries || !budget <= 0 then None
        else begin
          decr budget;
          counts.retries <- counts.retries + 1;
          if cfg.Config.retry_backoff_s > 0.0 then
            prober.Probesim.Prober.advance
              (cfg.Config.retry_backoff_s *. float_of_int k);
          match prober.Probesim.Prober.trace_probe ~flow:0 ~dst ~ttl with
          | Some r -> Some r
          | None -> retry (k + 1)
        end
      in
      if cfg.Config.probe_retries <= 0 then None else retry 1
  in
  let rec go ttl gaps hops =
    if ttl > cfg.Config.max_ttl || gaps >= cfg.Config.gap_limit then
      (List.rev hops, Trace.Nothing, false)
    else
      match probe ~ttl with
      | None -> go (ttl + 1) (gaps + 1) hops
      | Some r -> (
        counts.replies <- counts.replies + 1;
        match r.Engine.kind with
        | Engine.Echo_reply -> (List.rev hops, Trace.Echo r.Engine.src, false)
        | Engine.Dest_unreach -> (List.rev hops, Trace.Unreach r.Engine.src, false)
        | Engine.Ttl_expired ->
          let hops = (ttl, r.Engine.src) :: hops in
          if
            cfg.Config.use_stop_sets
            && external_class ip2as r.Engine.src
            && Stopset.mem stopset target_asn r.Engine.src
          then (List.rev hops, Trace.Nothing, true)
          else go (ttl + 1) 0 hops)
  in
  let hops, closing, stopped = go 1 0 [] in
  let t = { Trace.dst; target_asn; hops; closing; stopped } in
  (* Record the first external hop for the stop set. *)
  (match
     List.find_opt (fun (_, a) -> external_class ip2as a) t.Trace.hops
   with
  | Some (_, a) -> Stopset.add stopset target_asn a
  | None -> ());
  t

(* The trace "sees the target": some external TTL-expired hop other than
   the probed address itself (§5.3's retry rule). *)
let informative ip2as t =
  List.exists
    (fun (_, a) -> external_class ip2as a && not (Ipv4.equal a t.Trace.dst))
    t.Trace.hops

let gather_traces prober cfg ip2as counts blocks =
  let stopset = Stopset.create () in
  let hits = ref 0 in
  let traces = ref [] in
  List.iter
    (fun (asn, bs) ->
      List.iter
        (fun b ->
          let attempts = ref 0 in
          let rec try_candidates = function
            | [] -> ()
            | dst :: rest ->
              Stdlib.incr attempts;
              let t =
                trace_one prober cfg ip2as stopset counts ~target_asn:asn ~dst
              in
              if t.Trace.stopped then incr hits;
              traces := t :: !traces;
              if not (informative ip2as t || t.Trace.stopped) then try_candidates rest
          in
          try_candidates (Targets.candidates ~per_block:cfg.Config.addrs_per_block b);
          (* Per-block probe budget: how many of the (at most
             [addrs_per_block]) candidate addresses this block consumed
             before a trace saw the target. *)
          Obs.Metrics.observe "collect.block_attempts" (float_of_int !attempts))
        bs)
    (Targets.by_asn blocks);
  (List.rev !traces, !hits)

let oracle_of_prober (prober : Probesim.Prober.t) cfg graph a b =
  if Ipv4.equal a b then `Aliases
  else if Ag.same_router graph a b then `Aliases
  else if Ag.vetoed graph a b then `Not_aliases
  else begin
    let udp addr =
      Option.map (fun r -> r.Engine.src) (prober.Probesim.Prober.udp_probe ~dst:addr)
    in
    let merc = Aliasres.Mercator.test udp a b in
    match merc with
    | Aliasres.Mercator.Aliases ->
      Ag.add_alias graph a b;
      `Aliases
    | Aliasres.Mercator.Not_aliases ->
      Ag.add_not_alias graph a b;
      `Not_aliases
    | Aliasres.Mercator.Unresponsive -> (
      let sampler addr =
        Option.map (fun r -> r.Engine.ipid) (prober.Probesim.Prober.ping ~dst:addr)
      in
      let wait () = prober.Probesim.Prober.advance cfg.Config.ally_interval_s in
      match
        if cfg.Config.ally_proximity then
          Aliasres.Ally.trial_proximity sampler a b ~samples:cfg.Config.ally_samples
            ~fudge:1000
        else
          Aliasres.Ally.test sampler ~wait a b ~trials:cfg.Config.ally_trials
            ~samples:cfg.Config.ally_samples
      with
      | Aliasres.Ally.Aliases ->
        Ag.add_alias graph a b;
        `Aliases
      | Aliasres.Ally.Not_aliases ->
        Ag.add_not_alias graph a b;
        `Not_aliases
      | Aliasres.Ally.Unresponsive -> `Unknown)
  end

(* Candidate alias pairs: addresses sharing a predecessor or successor in
   the collected traces possibly answer from one router (virtual routers,
   per-destination source selection, parallel links). *)
let candidate_pairs cfg traces =
  let seen = Hashtbl.create 4096 in
  let pairs = ref [] in
  let count = ref 0 in
  let note a b =
    if (not (Ipv4.equal a b)) && !count < cfg.Config.max_alias_candidates then begin
      let key = if Ipv4.compare a b <= 0 then (a, b) else (b, a) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        incr count;
        pairs := key :: !pairs
      end
    end
  in
  let preds = Hashtbl.create 4096 and succs = Hashtbl.create 4096 in
  (* Membership goes through an (addr, addr) edge table: the per-address
     lists stay in first-seen order (the pair-generation order below
     depends on it) but the dedup is O(1) instead of a scan of the list,
     which grows long around heavily shared hops. *)
  let succ_seen = Hashtbl.create 4096 and pred_seen = Hashtbl.create 4096 in
  let note_adj tbl edge_seen k v =
    if not (Hashtbl.mem edge_seen (k, v)) then begin
      Hashtbl.add edge_seen (k, v) ();
      Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
    end
  in
  List.iter
    (fun t ->
      List.iter
        (fun (a, b, _) ->
          note_adj succs succ_seen a b;
          note_adj preds pred_seen b a)
        (Trace.pairs t))
    traces;
  let all_pairs l = List.iteri (fun i a -> List.iteri (fun j b -> if j > i then note a b) l) l in
  Hashtbl.iter (fun _ l -> all_pairs l) succs;
  Hashtbl.iter (fun _ l -> all_pairs l) preds;
  List.rev !pairs

let run_with ?vp_name (prober : Probesim.Prober.t) cfg ip2as blocks =
  let sched = Probesim.Scheduler.create ~pps:prober.Probesim.Prober.pps in
  let count () = prober.Probesim.Prober.probe_count () in
  (* The simulated probe clock of the §5.3 cost model: probes sent over
     the probing rate. Spans carry it next to the wall clock. *)
  let sim () = float_of_int (count ()) /. prober.Probesim.Prober.pps in
  let counts = { replies = 0; retries = 0 } in
  let p0 = count () in
  let traces, stopset_hits =
    Obs.Span.with_span ~stage:"collect" ?vp:vp_name ~sim (fun () ->
        gather_traces prober cfg ip2as counts blocks)
  in
  Probesim.Scheduler.note sched Probesim.Scheduler.Traceroute (count () - p0);
  let graph = Ag.create () in
  let oracle = oracle_of_prober prober cfg graph in
  let mates = ref [] in
  let pairs =
    Obs.Span.with_span ~stage:"alias" ?vp:vp_name ~sim (fun () ->
        (* Prefixscan over consecutive hop pairs. *)
        let p1 = count () in
        let scanned = Hashtbl.create 4096 in
        List.iter
          (fun t ->
            List.iter
              (fun (prev, hop, gap) ->
                if not gap then
                  let key = (prev, hop) in
                  if not (Hashtbl.mem scanned key) then begin
                    Hashtbl.add scanned key ();
                    match Aliasres.Prefixscan.scan oracle ~prev ~hop with
                    | Some r ->
                      if not (Ipv4.equal r.Aliasres.Prefixscan.mate prev) then
                        Ag.add_alias graph r.Aliasres.Prefixscan.mate prev;
                      mates := (prev, hop, r.Aliasres.Prefixscan.mate) :: !mates
                    | None -> ()
                  end)
              (Trace.pairs t))
          traces;
        Probesim.Scheduler.note sched Probesim.Scheduler.Prefixscan (count () - p1);
        (* Candidate alias pairs. *)
        let p2 = count () in
        let pairs = candidate_pairs cfg traces in
        List.iter (fun (a, b) -> ignore (oracle a b)) pairs;
        Probesim.Scheduler.note sched Probesim.Scheduler.Alias (count () - p2);
        pairs)
  in
  (* Closing replies whose source maps outside the host: §5.4.8 input. *)
  let other_icmp =
    List.filter_map
      (fun t ->
        match t.Trace.closing with
        | Trace.Echo a | Trace.Unreach a -> Some (t.Trace.target_asn, a)
        | Trace.Nothing -> None)
      traces
  in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.add "collect.traces" (List.length traces);
    Obs.Metrics.add "collect.stopset_hits" stopset_hits;
    Obs.Metrics.add "collect.alias_pairs" (List.length pairs);
    Obs.Metrics.add "collect.mates" (List.length !mates);
    Obs.Metrics.add "collect.replies" counts.replies;
    Obs.Metrics.add "collect.retries" counts.retries;
    Obs.Metrics.add "collect.probes.traceroute"
      (Probesim.Scheduler.count sched Probesim.Scheduler.Traceroute);
    Obs.Metrics.add "collect.probes.prefixscan"
      (Probesim.Scheduler.count sched Probesim.Scheduler.Prefixscan);
    Obs.Metrics.add "collect.probes.alias"
      (Probesim.Scheduler.count sched Probesim.Scheduler.Alias)
  end;
  { traces; aliases = graph; mates = List.rev !mates; other_icmp; sched;
    stopset_hits; alias_pairs_tested = List.length pairs }

(* Flush the engine's cache counters and the fault layer's gate counters
   into the registry as deltas over this run, so a shared engine (the
   experiment cache reuses one across runs) still reports per-run
   totals. *)
let flush_engine_stats eng before =
  match before with
  | None -> ()
  | Some ((s0 : Engine.cache_stats), (f0 : Probesim.Fault.stats), p0) ->
    let s1 = Engine.stats eng in
    let f1 = Engine.fault_stats eng in
    Obs.Metrics.add "engine.probes" (Engine.probe_count eng - p0);
    Obs.Metrics.add "engine.cache.hits" (s1.Engine.hits - s0.Engine.hits);
    Obs.Metrics.add "engine.cache.misses" (s1.Engine.misses - s0.Engine.misses);
    Obs.Metrics.add "engine.cache.evictions"
      (s1.Engine.evictions - s0.Engine.evictions);
    Obs.Metrics.gauge_max "engine.cache.entries" (float_of_int s1.Engine.entries);
    Obs.Metrics.add "fault.probes_lost"
      (f1.Probesim.Fault.probes_lost - f0.Probesim.Fault.probes_lost);
    Obs.Metrics.add "fault.replies_lost"
      (f1.Probesim.Fault.replies_lost - f0.Probesim.Fault.replies_lost);
    Obs.Metrics.add "fault.rate_limited"
      (f1.Probesim.Fault.rate_limited - f0.Probesim.Fault.rate_limited);
    Obs.Metrics.add "fault.dark_dropped"
      (f1.Probesim.Fault.dark_dropped - f0.Probesim.Fault.dark_dropped);
    Obs.Metrics.add "fault.failure_hits"
      (f1.Probesim.Fault.failure_hits - f0.Probesim.Fault.failure_hits)

let run eng cfg ip2as ~vp blocks =
  let before =
    if Obs.Metrics.enabled () then
      Some (Engine.stats eng, Engine.fault_stats eng, Engine.probe_count eng)
    else None
  in
  let r =
    run_with ~vp_name:vp.Gen.vp_name (Probesim.Prober.local eng ~vp) cfg ip2as
      blocks
  in
  flush_engine_stats eng before;
  r

(* The oracle's probes are vantage-point independent (direct ping/udp),
   so any VP works for the local binding. *)
let alias_oracle eng cfg graph =
  let w = Engine.world eng in
  let vp = List.hd w.Gen.vps in
  oracle_of_prober (Probesim.Prober.local eng ~vp) cfg graph
