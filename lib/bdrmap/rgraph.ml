open Netcore
module Ag = Aliasres.Alias_graph

type node = {
  id : int;
  addrs : Ipv4.Set.t;
  extra_addrs : Ipv4.Set.t;
  min_ttl : int;
  dests : Asn.Set.t;
  last_toward : Asn.Set.t;
  trace_count : int;
}

module ISet = Set.Make (Int)

type t = {
  nodes : node array;
  of_addr : int Ipv4.Tbl.t;
  succ : ISet.t array;
  pred : ISet.t array;
}

type builder_node = {
  mutable b_addrs : Ipv4.Set.t;
  mutable b_extra : Ipv4.Set.t;
  mutable b_ttl : int;
  mutable b_dests : Asn.Set.t;
  mutable b_last : Asn.Set.t;
  mutable b_traces : int;
}

let build (c : Collect.t) =
  (* 1. Every observed address joins the node of its alias-group root. *)
  let observed =
    List.fold_left
      (fun acc t -> List.fold_left (fun acc a -> Ipv4.Set.add a acc) acc (Trace.hop_addrs t))
      Ipv4.Set.empty c.Collect.traces
  in
  let mates =
    List.fold_left
      (fun acc (_, _, m) -> Ipv4.Set.add m acc)
      Ipv4.Set.empty c.Collect.mates
  in
  let of_addr = Ipv4.Tbl.create 1024 in
  let builders = ref [] in
  let n = ref 0 in
  let node_for addr =
    match Ipv4.Tbl.find_opt of_addr addr with
    | Some id -> id
    | None ->
      (* Claim the whole alias group at once. *)
      let id = !n in
      incr n;
      let b =
        { b_addrs = Ipv4.Set.empty; b_extra = Ipv4.Set.empty; b_ttl = max_int;
          b_dests = Asn.Set.empty; b_last = Asn.Set.empty; b_traces = 0 }
      in
      builders := (id, b) :: !builders;
      List.iter
        (fun a ->
          Ipv4.Tbl.replace of_addr a id;
          if Ipv4.Set.mem a observed then b.b_addrs <- Ipv4.Set.add a b.b_addrs
          else b.b_extra <- Ipv4.Set.add a b.b_extra)
        (Ag.group_of c.Collect.aliases addr);
      if not (Ipv4.Tbl.mem of_addr addr) then begin
        Ipv4.Tbl.replace of_addr addr id;
        b.b_addrs <- Ipv4.Set.add addr b.b_addrs
      end;
      id
  in
  Ipv4.Set.iter (fun a -> ignore (node_for a)) observed;
  Ipv4.Set.iter (fun a -> ignore (node_for a)) mates;
  let builder_arr = Array.make !n None in
  List.iter (fun (id, b) -> builder_arr.(id) <- Some b) !builders;
  let builder id = Option.get builder_arr.(id) in
  (* 2. Walk traces: hop distance, destinations, adjacency. *)
  let succ = Array.make !n ISet.empty in
  let pred = Array.make !n ISet.empty in
  List.iter
    (fun t ->
      let hops = t.Trace.hops in
      let node_seq =
        (* Collapse consecutive hops mapping to one node (aliases). *)
        let rec go acc = function
          | [] -> List.rev acc
          | (ttl, a) :: rest -> (
            let id = Ipv4.Tbl.find of_addr a in
            match acc with
            | (pid, _) :: _ when pid = id -> go acc rest
            | _ -> go ((id, ttl) :: acc) rest)
        in
        go [] hops
      in
      List.iter
        (fun (id, ttl) ->
          let b = builder id in
          b.b_ttl <- min b.b_ttl ttl;
          b.b_dests <- Asn.Set.add t.Trace.target_asn b.b_dests;
          b.b_traces <- b.b_traces + 1)
        node_seq;
      (match List.rev node_seq with
      | (last_id, _) :: _ ->
        let b = builder last_id in
        b.b_last <- Asn.Set.add t.Trace.target_asn b.b_last
      | [] -> ());
      let rec wire = function
        | (a, _) :: ((b, _) :: _ as rest) ->
          succ.(a) <- ISet.add b succ.(a);
          pred.(b) <- ISet.add a pred.(b);
          wire rest
        | _ -> ()
      in
      wire node_seq)
    c.Collect.traces;
  let nodes =
    Array.init !n (fun id ->
        let b = builder id in
        { id; addrs = b.b_addrs; extra_addrs = b.b_extra; min_ttl = b.b_ttl;
          dests = b.b_dests; last_toward = b.b_last; trace_count = b.b_traces })
  in
  { nodes; of_addr; succ; pred }

let nodes t = Array.to_list t.nodes
let node_count t = Array.length t.nodes
let node t id = t.nodes.(id)

let node_of_addr t a =
  Option.map (fun id -> t.nodes.(id)) (Ipv4.Tbl.find_opt t.of_addr a)

let succs t n = List.map (fun id -> t.nodes.(id)) (ISet.elements t.succ.(n.id))
let preds t n = List.map (fun id -> t.nodes.(id)) (ISet.elements t.pred.(n.id))

let by_hop_distance t =
  List.sort
    (fun a b ->
      match Int.compare a.min_ttl b.min_ttl with
      | 0 -> Int.compare a.id b.id
      | c -> c)
    (nodes t)

let all_addrs n = Ipv4.Set.elements (Ipv4.Set.union n.addrs n.extra_addrs)
