(** Network-wide border maps from multiple vantage points (§6): each VP
    sees the egresses hot-potato routing steers it through; the deployed
    system merges the per-VP inferences into one map, tracking which VPs
    observed each link. Links are identified by their neighbor AS and
    overlapping far-side (or, for silent neighbors, near-side) address
    sets, so the same physical link seen from two VPs under different
    inbound interfaces still merges once alias resolution ties the
    addresses together. *)

open Netcore

type vp_links = { vp_name : string; links : Output.link_record list }

type merged = {
  near_addrs : Ipv4.Set.t;
  far_addrs : Ipv4.Set.t;
  neighbor : Asn.t;
  tags : Heuristics.tag list;  (** deduplicated, in first-seen order *)
  seen_by : string list;  (** VPs that observed the link *)
}

(** [merge runs] combines per-VP link sets. Candidate links are indexed
    by neighbor ASN, so merging is linear in the total number of link
    records rather than quadratic. *)
val merge : vp_links list -> merged list

(** [of_run vp_name graph result] extracts a {!vp_links} from a pipeline
    run. *)
val of_run : string -> Rgraph.t -> Heuristics.result -> vp_links

(** [of_runs ?pool runs] extracts every VP's link set, on the pool's
    worker domains when one is given; results stay in [runs] order. *)
val of_runs : ?pool:Pool.t -> (string * Rgraph.t * Heuristics.result) list -> vp_links list

(** [merge_runs ?pool runs] is [merge (of_runs ?pool runs)] — the
    multi-VP merge entry point used by the deployed system. *)
val merge_runs :
  ?pool:Pool.t -> (string * Rgraph.t * Heuristics.result) list -> merged list

(** [per_neighbor merged] is the link count per neighbor AS, sorted by
    descending count. *)
val per_neighbor : merged list -> (Asn.t * int) list

(** [marginal_utility ~vp_order merged] is the cumulative number of
    distinct links observed after admitting each VP in order — the
    quantity figure 15 plots. *)
val marginal_utility : vp_order:string list -> merged list -> int list
