open Netcore
module B = Bgpdata

type cls = Cust | Peer | Prov | Trace

let cls_label = function
  | Cust -> "cust"
  | Peer -> "peer"
  | Prov -> "prov"
  | Trace -> "trace"

let all_classes = [ Cust; Peer; Prov; Trace ]

type t = {
  observed_in_bgp : (cls * int) list;
  observed_in_bdrmap : (cls * int) list;
  coverage_pct : float;
  heuristic_share : (Heuristics.tag * (cls * float) list) list;
  neighbor_routers : (cls * int) list;
}

let all_tags =
  [ Heuristics.T1_multihomed; Heuristics.T2_firewall; Heuristics.T3_unrouted;
    Heuristics.T4_onenet; Heuristics.T5_third_party; Heuristics.T5_relationship;
    Heuristics.T5_missing_customer; Heuristics.T5_hidden_peer; Heuristics.T6_count;
    Heuristics.T6_ipas; Heuristics.T8_silent; Heuristics.T8_other_icmp ]

let class_of_neighbor ~rels ~vp_asns asn =
  let rel =
    Asn.Set.fold
      (fun x acc ->
        match acc with
        | Some _ -> acc
        | None -> B.As_rel.rel rels ~of_:x ~with_:asn)
      vp_asns None
  in
  match rel with
  | Some B.As_rel.Customer -> Cust
  | Some B.As_rel.Peer -> Peer
  | Some B.As_rel.Provider -> Prov
  | None -> Trace

let table1 ~rels ~vp_asns (r : Heuristics.result) =
  (* Neighbors of the hosting org in the public relationship data. *)
  let bgp_neighbors =
    Asn.Set.fold
      (fun x acc -> Asn.Set.union (B.As_rel.neighbors rels x) acc)
      vp_asns Asn.Set.empty
    |> Asn.Set.filter (fun a -> not (Asn.Set.mem a vp_asns))
  in
  let observed_in_bgp =
    List.map
      (fun c ->
        ( c,
          Asn.Set.cardinal
            (Asn.Set.filter
               (fun a -> class_of_neighbor ~rels ~vp_asns a = c && c <> Trace)
               bgp_neighbors) ))
      all_classes
  in
  (* Neighbors bdrmap inferred at least one link for. *)
  let inferred_neighbors =
    List.fold_left
      (fun acc (l : Heuristics.border_link) -> Asn.Set.add l.Heuristics.neighbor acc)
      Asn.Set.empty r.Heuristics.links
  in
  let observed_in_bdrmap =
    List.map
      (fun c ->
        match c with
        | Trace ->
          ( c,
            Asn.Set.cardinal
              (Asn.Set.filter
                 (fun a -> not (Asn.Set.mem a bgp_neighbors))
                 inferred_neighbors) )
        | _ ->
          ( c,
            Asn.Set.cardinal
              (Asn.Set.filter
                 (fun a ->
                   Asn.Set.mem a bgp_neighbors && class_of_neighbor ~rels ~vp_asns a = c)
                 inferred_neighbors) ))
      all_classes
  in
  let bgp_total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 observed_in_bgp
  in
  let bdrmap_in_bgp =
    List.fold_left
      (fun acc (c, n) -> if c = Trace then acc else acc + n)
      0 observed_in_bdrmap
  in
  let coverage_pct =
    if bgp_total = 0 then 0.0
    else 100.0 *. float_of_int bdrmap_in_bgp /. float_of_int bgp_total
  in
  (* Neighbor routers: one per (far node); §5.4.8 links count as one
     (unobserved) router each. Classified by their neighbor AS. *)
  let routers_per_class = Hashtbl.create 8 in
  let tags_per_class : (Heuristics.tag * cls, int) Hashtbl.t = Hashtbl.create 32 in
  let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)) in
  let seen_far = Hashtbl.create 256 in
  List.iter
    (fun (l : Heuristics.border_link) ->
      let c = class_of_neighbor ~rels ~vp_asns l.Heuristics.neighbor in
      let key =
        match l.Heuristics.far_node with
        | Some fid -> `Far fid
        | None -> `Silent (l.Heuristics.near_node, l.Heuristics.neighbor)
      in
      if not (Hashtbl.mem seen_far key) then begin
        Hashtbl.add seen_far key ();
        bump routers_per_class c;
        bump tags_per_class (l.Heuristics.tag, c)
      end)
    r.Heuristics.links;
  let neighbor_routers =
    List.map
      (fun c -> (c, Option.value ~default:0 (Hashtbl.find_opt routers_per_class c)))
      all_classes
  in
  let heuristic_share =
    List.map
      (fun tag ->
        ( tag,
          List.map
            (fun c ->
              let total = Option.value ~default:0 (Hashtbl.find_opt routers_per_class c) in
              let k = Option.value ~default:0 (Hashtbl.find_opt tags_per_class (tag, c)) in
              ( c,
                if total = 0 then 0.0 else 100.0 *. float_of_int k /. float_of_int total ))
            all_classes ))
      all_tags
  in
  { observed_in_bgp; observed_in_bdrmap; coverage_pct; heuristic_share; neighbor_routers }

let print ?(title = "Table 1") ppf t =
  let cell = Format.fprintf in
  cell ppf "%s@." title;
  cell ppf "%-24s %8s %8s %8s %8s@." "" "cust" "peer" "prov" "trace";
  let row name get =
    cell ppf "%-24s" name;
    List.iter (fun c -> cell ppf " %8s" (get c)) all_classes;
    cell ppf "@."
  in
  let find l c = List.assoc c l in
  row "Observed in BGP" (fun c ->
      if c = Trace then "" else string_of_int (find t.observed_in_bgp c));
  row "Observed in bdrmap" (fun c -> string_of_int (find t.observed_in_bdrmap c));
  cell ppf "%-24s %8.1f%%@." "Coverage of BGP" t.coverage_pct;
  List.iter
    (fun (tag, shares) ->
      let nonzero = List.exists (fun (_, v) -> v > 0.0) shares in
      if nonzero then
        row (Heuristics.tag_label tag) (fun c ->
            let v = find shares c in
            if v = 0.0 then "" else Printf.sprintf "%.1f%%" v))
    t.heuristic_share;
  row "Neighbor routers" (fun c -> string_of_int (find t.neighbor_routers c))
