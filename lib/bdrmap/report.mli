(** Table-1-style reporting (§5.7): BGP coverage of inferred neighbors
    and the per-relationship-class breakdown of which heuristic inferred
    each neighbor router. *)

open Netcore

type cls = Cust | Peer | Prov | Trace

val cls_label : cls -> string

type t = {
  observed_in_bgp : (cls * int) list;  (** neighbors per class in public BGP *)
  observed_in_bdrmap : (cls * int) list;  (** of those, seen by bdrmap *)
  coverage_pct : float;
  (* tag -> class -> share of neighbor routers (percent). *)
  heuristic_share : (Heuristics.tag * (cls * float) list) list;
  neighbor_routers : (cls * int) list;
}

(** [table1 ~rels ~vp_asns result] classifies each inferred neighbor
    against the public relationship data: neighbors absent from it form
    the "trace" column. *)
val table1 :
  rels:Bgpdata.As_rel.t -> vp_asns:Asn.Set.t -> Heuristics.result -> t

val print : ?title:string -> Format.formatter -> t -> unit
