(** A collected traceroute: the responsive hops (TTL-expired sources in
    order), the closing reply if any, and the target attribution. *)

open Netcore

type closing = Echo of Ipv4.t | Unreach of Ipv4.t | Nothing

type t = {
  dst : Ipv4.t;
  target_asn : Asn.t;  (** AS whose block was being probed *)
  hops : (int * Ipv4.t) list;  (** (ttl, source) of TTL-expired replies *)
  closing : closing;
  stopped : bool;  (** halted early by the stop set *)
}

(** [hop_addrs t] is the TTL-expired sources in path order. *)
val hop_addrs : t -> Ipv4.t list

(** [pairs t] is consecutive responsive hop pairs, with a flag marking
    whether unresponsive hops sat between them. *)
val pairs : t -> (Ipv4.t * Ipv4.t * bool) list

val last_hop : t -> Ipv4.t option
val pp : Format.formatter -> t -> unit
