(** Pipeline-level encoding on top of the generic {!Store}: persistent
    snapshots of completed per-VP runs, plus a generic memoizer for
    other deterministic per-VP artifacts (the experiments' forwarding
    sweeps).

    Keys are MD5 digests — the same [Digest] plumbing the manifest's
    config hash uses — over everything the cached value is a pure
    function of: the full topology parameters (seed, scale and all
    counts; the topology is a deterministic function of them), the
    probe rate, the full pipeline {!Config.t} and the VP identity.
    Pool size, jobs and observability flags deliberately never reach a
    key: a warm read must be byte-identical to the cold compute at any
    [-j].

    Values are [Marshal]ed OCaml data (everything in a snapshot is
    plain data — no closures, no custom blocks). The store's magic,
    version, embedded key and payload digest guard the bytes;
    {!snapshot_version} participates in every key, so a layout change
    here invalidates old entries instead of misreading them. Any
    malformed entry is logged via {!Obs.Log}, counted as a miss, and
    falls back to recomputation. *)

(** Bump when any marshaled layout below (or in the types it reaches)
    changes; old entries then miss on key rather than decode wrongly. *)
val snapshot_version : int

type snapshot = {
  collection : Collect.t;
  graph : Rgraph.t;
  inference : Heuristics.result;
  probes : int;  (** engine probe counter at end of run *)
  cache : Probesim.Engine.cache_stats;
}

(** [?epoch] is the topology epoch's chained event-log digest
    ({!Topogen.Evolve.log_digest}); it participates in the key so each
    evolution epoch checkpoints apart. The default [""] is the
    unevolved world. *)
val key :
  ?epoch:string ->
  world:Topogen.Gen.world ->
  pps:float ->
  cfg:Config.t ->
  vp:Topogen.Gen.vp ->
  unit ->
  string

(** [load st ~world ~pps ~cfg ~vp] returns the stored snapshot, or
    [None] (counted as [store.misses]; non-absent misses are logged).
    Hits add [store.hits] / [store.bytes_read] and run under a
    ["store"] span. *)
val load :
  ?epoch:string ->
  Store.t ->
  world:Topogen.Gen.world ->
  pps:float ->
  cfg:Config.t ->
  vp:Topogen.Gen.vp ->
  snapshot option

(** [save st ~world ~pps ~cfg ~vp s] checkpoints [s] atomically
    (adds [store.writes] / [store.bytes_written]). *)
val save :
  ?epoch:string ->
  Store.t ->
  world:Topogen.Gen.world ->
  pps:float ->
  cfg:Config.t ->
  vp:Topogen.Gen.vp ->
  snapshot ->
  unit

(** [bgp_snapshot_key ~world ()] is the store key of [world]'s frozen
    routing snapshot: world parameters, snapshot codec version and the
    topology epoch digest ([?epoch], default [""] = unevolved). *)
val bgp_snapshot_key :
  ?epoch:string -> world:Topogen.Gen.world -> unit -> string

(** [load_bgp_snapshot st ~world] returns the persisted frozen routing
    snapshot for [world], or [None]. Snapshots are stored under a key
    covering the world parameters and the snapshot codec version, and
    round-trip through {!Routing.Bgp.Snapshot.to_bytes} rather than
    [Marshal] — the packed arenas are raw words, so future worker
    {e processes} can load them without sharing the OCaml heap.
    Counted under [store.snapshot.hits] / [store.snapshot.misses] /
    [store.snapshot.writes] (apart from the per-VP checkpoint
    counters, which stay one-entry-per-VP). *)
val load_bgp_snapshot :
  ?epoch:string ->
  Store.t ->
  world:Topogen.Gen.world ->
  Routing.Bgp.snapshot option

(** [save_bgp_snapshot st ~world s] persists [s] atomically. *)
val save_bgp_snapshot :
  ?epoch:string ->
  Store.t ->
  world:Topogen.Gen.world ->
  Routing.Bgp.snapshot ->
  unit

(** [memo st ~key ?vp ~what f] returns the value cached under [key],
    or computes [f ()], checkpoints it, and returns it. [what] names
    the artifact in log lines; [key] must come from {!digest_key}. The
    value must be plain marshalable data whose layout is covered by
    [key]'s namespace string. *)
val memo : Store.t -> key:string -> ?vp:string -> what:string -> (unit -> 'a) -> 'a

(** [digest_key v] is the hex MD5 of [v]'s marshaled bytes: include a
    namespace string and a version in [v], plus everything the cached
    value depends on. *)
val digest_key : 'a -> string
