open Netcore
module B = Bgpdata

type cls =
  | Host
  | External of Asn.Set.t
  | Ixp of string
  | Unrouted
  | Reserved

module SSet = Set.Make (String)

type t = {
  rib : B.Rib.t;
  ixp : B.Ixp.t;
  dels : B.Delegation.t;
  vp_asns : Asn.Set.t;
  host_orgs : SSet.t;  (* delegation opaque-ids of space the host routes *)
  memo : cls Ipv4.Tbl.t;
      (* per-run classification memo: every input is immutable after
         [create], so the class of an address never changes — and the
         collection loop classifies the same hop addresses over and
         over. Private to this instance; never shared across domains. *)
}

let create ~rib ~ixp ~delegations ~vp_asns =
  (* The organizations behind the hosting network's routed space: any
     delegation whose block backs a prefix originated by a VP AS. *)
  let host_orgs =
    List.fold_left
      (fun acc p ->
        match B.Delegation.opaque_id_of delegations (Prefix.first p) with
        | Some id -> SSet.add id acc
        | None -> acc)
      SSet.empty
      (B.Rib.prefixes_originated_by rib vp_asns)
  in
  { rib; ixp; dels = delegations; vp_asns; host_orgs; memo = Ipv4.Tbl.create 4096 }

let classify_uncached t a =
  if Ipv4.reserved a || Ipv4.private_use a then Reserved
  else
    match B.Ixp.ixp_of t.ixp a with
    | Some name -> Ixp name
    | None -> (
      let origins = B.Rib.origin_asns t.rib a in
      if Asn.Set.is_empty origins then (
        match B.Delegation.opaque_id_of t.dels a with
        | Some id when SSet.mem id t.host_orgs -> Host
        | Some _ | None -> Unrouted)
      else if not (Asn.Set.disjoint origins t.vp_asns) then Host
      else External origins)

let classify t a =
  match Ipv4.Tbl.find_opt t.memo a with
  | Some c -> c
  | None ->
    let c = classify_uncached t a in
    Ipv4.Tbl.add t.memo a c;
    c

let origins t a = B.Rib.origin_asns t.rib a

let is_host t a =
  match classify t a with
  | Host -> true
  | External _ | Ixp _ | Unrouted | Reserved -> false

let single_external t a =
  match classify t a with
  | External origins when Asn.Set.cardinal origins = 1 -> Some (Asn.Set.min_elt origins)
  | External _ | Host | Ixp _ | Unrouted | Reserved -> None

let routed_prefixes t = B.Rib.cardinal t.rib
