(** Ground-truth validation (§5.6): compare inferred border links and
    neighbor routers against the generator's topology, with the paper's
    correctness notion — the inferred AS must reflect the correct
    organization (sibling matches count as correct). *)

open Netcore
module Gen = Topogen.Gen

type verdict =
  | Correct
  | Correct_sibling  (** inferred a sibling of the true operator *)
  | Wrong_as of Asn.t  (** the true operator's AS *)
  | Not_border  (** the "neighbor" router is actually the host's *)
  | Unverifiable  (** no ground-truth router holds the observed addrs *)

type link_eval = { link : Heuristics.border_link; verdict : verdict }

type summary = {
  total : int;
  correct : int;  (** Correct + Correct_sibling *)
  sibling : int;
  wrong : int;
  not_border : int;
  unverifiable : int;
  pct_correct : float;  (** over verifiable links *)
}

val links : Gen.world -> Rgraph.t -> Heuristics.result -> link_eval list
val summarize : link_eval list -> summary

(** [router_accuracy w g r] is the fraction of neighbor-router owner
    inferences whose org matches the true owner's org (the Tier-1
    validation style of §5.6). *)
val router_accuracy : Gen.world -> Rgraph.t -> Heuristics.result -> summary

(** [ixp_members w g r] validates route-server peerings the way §5.6
    does for the R&E network: for every inferred neighbor router holding
    a peering-LAN address, the IXP registry's published member for that
    address must match the inferred operator. Routers whose LAN address
    was never registered (stale registry entries) count unverifiable. *)
val ixp_members : Gen.world -> Rgraph.t -> Heuristics.result -> summary

val pp_summary : Format.formatter -> summary -> unit
