(** The data-collection driver (§5.3): traceroutes toward every external
    address block with doubletree stop sets, then alias resolution over
    candidate pairs with Ally (repeated trials), Mercator, and
    Prefixscan. Produces the raw material the inference step consumes. *)

open Netcore
module Engine = Probesim.Engine
module Gen = Topogen.Gen

type t = {
  traces : Trace.t list;
  aliases : Aliasres.Alias_graph.t;
  (* (prev, hop, mate): prefixscan confirmed [hop] is an inbound
     interface whose subnet mate [mate] is an alias of [prev]. *)
  mates : (Ipv4.t * Ipv4.t * Ipv4.t) list;
  (* echo / unreachable closing replies per target AS, for §5.4.8. *)
  other_icmp : (Asn.t * Ipv4.t) list;
  sched : Probesim.Scheduler.t;
  stopset_hits : int;
  alias_pairs_tested : int;
}

val run : Engine.t -> Config.t -> Ip2as.t -> vp:Gen.vp -> Targets.block list -> t

(** [run_with prober cfg ip2as blocks] drives collection through an
    abstract prober — the local engine binding or the §5.8 offload
    channel ({!Probesim.Offload.remote}). [vp_name] labels the
    observability spans of this run, nothing else. *)
val run_with :
  ?vp_name:string -> Probesim.Prober.t -> Config.t -> Ip2as.t -> Targets.block list -> t

(** [alias_oracle engine cfg] is the combined Mercator + repeated-Ally
    oracle used for candidate pairs and prefixscan, recording every
    verdict into the supplied graph. *)
val alias_oracle :
  Engine.t ->
  Config.t ->
  Aliasres.Alias_graph.t ->
  Ipv4.t ->
  Ipv4.t ->
  [ `Aliases | `Not_aliases | `Unknown ]
