(** Baseline border-inference algorithms the paper argues against or
    compares with (§3, §4):

    - {!naive_ipas}: the canonical approach — map every traceroute hop
      to the origin AS of its longest-matching prefix and declare a
      border wherever consecutive hops map to different ASes. No alias
      resolution, no third-party handling: §4 enumerates seven reasons
      this goes wrong.

    - {!mapit}: a reduction of MAP-IT [Marder & Smith, IMC 2016], which
      infers interface ownership on the interface-level graph using the
      IP-AS mappings of adjacent hops. It requires evidence on both
      sides of a candidate border, so it cannot place the roughly half
      of interdomain links that sit at the end of paths (firewalled and
      silent neighbors) — the comparison the paper draws in §3. *)

open Netcore

type link = {
  near_addr : Ipv4.t;
  far_addr : Ipv4.t option;  (** [None] when only the near side is visible *)
  neighbor : Asn.t;
}

(** [naive_ipas ip2as traces] declares a border at every host-to-external
    transition of the longest-prefix-match origin. *)
val naive_ipas : Ip2as.t -> Trace.t list -> link list

(** [mapit ip2as traces] infers borders only where the far side shows
    two adjacent interfaces in the neighbor's address space. *)
val mapit : Ip2as.t -> Trace.t list -> link list

(** [dedup links] collapses duplicate (near, far, neighbor) triples. *)
val dedup : link list -> link list
