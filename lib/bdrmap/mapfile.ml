open Netcore

type t = {
  host_asns : Asn.Set.t;
  origins : (Prefix.t * Asn.t) list;
  merged : Aggregate.merged list;
}

let make ~host_asns ~bgp merged =
  let origins =
    List.filter_map
      (fun p ->
        let os = Routing.Bgp.origins bgp p in
        if Asn.Set.is_empty os then None else Some (p, Asn.Set.min_elt os))
      (Routing.Bgp.prefixes bgp)
  in
  { host_asns; origins; merged }

type decode_error = Truncated | Bad_magic | Bad_version of int | Corrupt

let error_label = function
  | Truncated -> "truncated"
  | Bad_magic -> "bad-magic"
  | Bad_version v -> Printf.sprintf "bad-version-%d" v
  | Corrupt -> "corrupt"

let magic = "BDMF"
let codec_version = 1
let header_len = 32

let put_u32 b v =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * (3 - i))) land 0xff))
  done

let put_u64 b v =
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr ((v lsr (8 * (7 - i))) land 0xff))
  done

let get_be bytes off n =
  let v = ref 0 in
  for i = 0 to n - 1 do
    v := (!v lsl 8) lor Char.code (Bytes.get bytes (off + i))
  done;
  !v

let to_bytes t =
  let payload = Marshal.to_string t [] in
  let b = Buffer.create (header_len + String.length payload) in
  Buffer.add_string b magic;
  put_u32 b codec_version;
  Buffer.add_string b (Digest.string payload);
  put_u64 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.to_bytes b

let of_bytes bytes =
  let n = Bytes.length bytes in
  if n < header_len then Error Truncated
  else if Bytes.sub_string bytes 0 4 <> magic then Error Bad_magic
  else begin
    let v = get_be bytes 4 4 in
    if v <> codec_version then Error (Bad_version v)
    else begin
      let len = get_be bytes 24 8 in
      if n - header_len < len then Error Truncated
      else begin
        let payload = Bytes.sub_string bytes header_len len in
        if Digest.string payload <> Bytes.sub_string bytes 8 16 then Error Corrupt
        else
          match (Marshal.from_string payload 0 : t) with
          | t -> Ok t
          | exception _ -> Error Corrupt
      end
    end
  end

let save path t =
  let b = to_bytes t in
  let tmp = Printf.sprintf "%s.tmp-%d" path (Unix.getpid ()) in
  (try
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_bytes oc b)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load path =
  match open_in_bin path with
  | exception Sys_error _ -> Error Truncated
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        let b = Bytes.create n in
        really_input ic b 0 n;
        of_bytes b)
