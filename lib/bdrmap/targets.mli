(** Target address-block generation (§5.3 "Generate list of address
    blocks to probe"): for every externally-routed prefix, the address
    ranges remaining after carving out more-specific subnets, grouped by
    target AS. Blocks originated by the hosting org are excluded. *)

open Netcore

type block = {
  target_asn : Asn.t;  (** canonical origin (smallest of the origin set) *)
  first : Ipv4.t;
  last : Ipv4.t;
}

(** [blocks ~rib ~vp_asns] is the probe list, ordered by AS then address.
    Multi-origin prefixes yield one block set attributed to the smallest
    origin. *)
val blocks : rib:Bgpdata.Rib.t -> vp_asns:Asn.Set.t -> block list

(** [by_asn blocks] groups blocks per target AS, preserving order. *)
val by_asn : block list -> (Asn.t * block list) list

(** [candidates ~per_block b] is the probe addresses tried inside a
    block: the first [per_block] addresses starting at [first + 1]
    (the ".1" convention), clipped to the block. *)
val candidates : per_block:int -> block -> Ipv4.t list
