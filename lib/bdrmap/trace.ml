open Netcore

type closing = Echo of Ipv4.t | Unreach of Ipv4.t | Nothing

type t = {
  dst : Ipv4.t;
  target_asn : Asn.t;
  hops : (int * Ipv4.t) list;
  closing : closing;
  stopped : bool;
}

let hop_addrs t = List.map snd t.hops

let pairs t =
  let rec go = function
    | (ttl1, a1) :: ((ttl2, a2) :: _ as rest) ->
      (a1, a2, ttl2 > ttl1 + 1) :: go rest
    | _ -> []
  in
  go t.hops

let last_hop t =
  match List.rev t.hops with
  | [] -> None
  | (_, a) :: _ -> Some a

let pp ppf t =
  Format.fprintf ppf "%s>" (Ipv4.to_string t.dst);
  List.iter (fun (ttl, a) -> Format.fprintf ppf " %d:%s" ttl (Ipv4.to_string a)) t.hops;
  (match t.closing with
  | Echo a -> Format.fprintf ppf " echo:%s" (Ipv4.to_string a)
  | Unreach a -> Format.fprintf ppf " unreach:%s" (Ipv4.to_string a)
  | Nothing -> ());
  if t.stopped then Format.fprintf ppf " [stop]"
