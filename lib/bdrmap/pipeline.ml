open Netcore
module Gen = Topogen.Gen
module Engine = Probesim.Engine
module B = Bgpdata

type inputs = {
  rib : B.Rib.t;
  rels : B.As_rel.t;
  ixp : B.Ixp.t;
  delegations : B.Delegation.t;
  vp_asns : Asn.Set.t;
}

let roundtrip to_lines of_lines v =
  match of_lines (to_lines v) with
  | Ok v' -> v'
  | Error e -> invalid_arg ("Pipeline: artifact does not round-trip: " ^ e)

let inputs_of_world (w : Gen.world) bgp =
  let rib = Routing.Bgp.collector_view bgp w.Gen.collectors in
  let rib = roundtrip B.Rib.to_lines B.Rib.of_lines rib in
  let rels = B.Rel_infer.infer (B.Rib.all_paths rib) in
  let rels = roundtrip B.As_rel.to_lines B.As_rel.of_lines rels in
  let ixp = roundtrip B.Ixp.to_lines B.Ixp.of_lines w.Gen.ixp_registry in
  let delegations =
    roundtrip B.Delegation.to_lines B.Delegation.of_lines w.Gen.delegations
  in
  (* Inference sees the *published* siblings list (WHOIS in the paper),
     which adversarial worlds can make incomplete; ground truth for
     validation stays [w.siblings]. The two coincide by default. *)
  { rib; rels; ixp; delegations; vp_asns = w.Gen.published_siblings }

type run = {
  cfg : Config.t;
  ip2as : Ip2as.t;
  inputs : inputs;
  collection : Collect.t;
  graph : Rgraph.t;
  inference : Heuristics.result;
  probes : int;
  cache : Engine.cache_stats;
}

let execute ?cfg engine inputs ~vp =
  let cfg =
    match cfg with
    | Some c -> c
    | None -> Config.default ~vp_asns:inputs.vp_asns
  in
  (* Stage spans carry the engine's simulated clock next to wall time;
     collection/alias spans are opened inside [Collect]. *)
  let vp_name = vp.Gen.vp_name in
  let sim () = Engine.now engine in
  let span stage f = Obs.Span.with_span ~stage ~vp:vp_name ~sim f in
  let ip2as, blocks =
    span "input" (fun () ->
        ( Ip2as.create ~rib:inputs.rib ~ixp:inputs.ixp
            ~delegations:inputs.delegations ~vp_asns:inputs.vp_asns,
          Targets.blocks ~rib:inputs.rib ~vp_asns:inputs.vp_asns ))
  in
  let collection = Collect.run engine cfg ip2as ~vp blocks in
  let graph = span "graph" (fun () -> Rgraph.build collection) in
  let inference =
    span "heuristics" (fun () ->
        Heuristics.infer cfg ip2as ~rels:inputs.rels graph collection)
  in
  {
    cfg;
    ip2as;
    inputs;
    collection;
    graph;
    inference;
    probes = Engine.probe_count engine;
    cache = Engine.stats engine;
  }

let setup ?(pps = 100.0) (w : Gen.world) =
  let bgp =
    Routing.Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
      ~selective:w.Gen.selective
  in
  let fwd = Routing.Forwarding.create w.Gen.net bgp in
  let engine = Engine.create ~pps w fwd in
  let inputs = inputs_of_world w bgp in
  (bgp, fwd, engine, inputs)

(* Force the lazily built indices of the structures that parallel
   vantage-point runs share read-only (the topology's adjacency arrays,
   the delegation index, the RIB's flattened LPM), so no worker domain
   ever writes to them. *)
let freeze_shared (w : Gen.world) inputs =
  if Topogen.Net.router_count w.Gen.net > 0 then
    ignore (Topogen.Net.neighbors w.Gen.net 0);
  ignore (B.Delegation.find inputs.delegations Ipv4.zero);
  B.Rib.freeze inputs.rib

(* The shared routing state for a multi-VP sweep: one frozen BGP
   snapshot plus one frozen forwarding plan, both pure immutable data.
   Built once before fan-out; every worker attaches by reference and
   keeps only its private cold-path caches. *)
type shared = {
  snapshot : Routing.Bgp.snapshot;
  plan : Routing.Forwarding.plan;
}

let freeze_routing ?store ?epoch (w : Gen.world) =
  Obs.Span.with_span ~stage:"freeze" ~vp:"shared" (fun () ->
      (* With a store, the packed snapshot round-trips through its raw
         byte codec: warm sweeps skip the propagation compute entirely.
         The forwarding plan is cheap relative to the snapshot and
         rebuilds from it deterministically. *)
      let snapshot =
        let cached =
          match store with
          | None -> None
          | Some st -> Run_store.load_bgp_snapshot ?epoch st ~world:w
        in
        match cached with
        | Some s -> s
        | None ->
          let bgp =
            Routing.Bgp.create w.Gen.net w.Gen.rels_truth
              ~originated:(Gen.originated w) ~selective:w.Gen.selective
          in
          let s = Routing.Bgp.freeze bgp in
          Option.iter
            (fun st -> Run_store.save_bgp_snapshot ?epoch st ~world:w s)
            store;
          s
      in
      let fwd =
        Routing.Forwarding.create w.Gen.net (Routing.Bgp.of_snapshot snapshot)
      in
      let plan = Routing.Forwarding.freeze ~egress_for:w.Gen.siblings fwd in
      { snapshot; plan })

let execute_all ?cfg ?pool ?store ?shared ?epoch ?(pps = 100.0) (w : Gen.world)
    inputs ~vps =
  Obs.Metrics.incr "pipeline.sweeps";
  (* The store key must cover everything the run is a function of, so
     resolve the effective config here rather than letting [execute]
     default it per call. *)
  let cfg =
    match cfg with Some c -> c | None -> Config.default ~vp_asns:inputs.vp_asns
  in
  (* Routing state is a pure function of the world, never of the
     vantage point, so every VP shares one frozen snapshot + plan and
     the per-VP stack shrinks to what is genuinely per-VP mutable: the
     engine's clock, probe counter, path cache, RNG and IP-ID state,
     plus thin private caches over the frozen data. The laziness keeps
     fully store-warm sweeps from paying a freeze they will never use;
     under a pool it is forced before fan-out ([Lazy.force] is not
     domain-safe). *)
  let shared =
    match shared with
    | Some s -> lazy s
    | None -> lazy (freeze_routing ?store ?epoch w)
  in
  let compute vp =
    Obs.Metrics.incr "pipeline.vp_computes";
    let s = Lazy.force shared in
    let bgp = Routing.Bgp.of_snapshot s.snapshot in
    let fwd = Routing.Forwarding.create ~plan:s.plan w.Gen.net bgp in
    let engine = Engine.create ~pps w fwd in
    execute ~cfg engine inputs ~vp
  in
  (* With a store, each VP is a checkpoint: a hit rebuilds the run from
     its snapshot (ip2as is cheap and deterministic, so it is re-derived
     rather than stored); a miss computes and persists before moving on,
     so a run killed mid-sweep resumes from the last completed VP. *)
  let run_vp vp =
    match store with
    | None -> compute vp
    | Some st -> (
      match Run_store.load ?epoch st ~world:w ~pps ~cfg ~vp with
      | Some (s : Run_store.snapshot) ->
        let ip2as =
          Ip2as.create ~rib:inputs.rib ~ixp:inputs.ixp
            ~delegations:inputs.delegations ~vp_asns:inputs.vp_asns
        in
        {
          cfg;
          ip2as;
          inputs;
          collection = s.Run_store.collection;
          graph = s.Run_store.graph;
          inference = s.Run_store.inference;
          probes = s.Run_store.probes;
          cache = s.Run_store.cache;
        }
      | None ->
        let r = compute vp in
        Run_store.save ?epoch st ~world:w ~pps ~cfg ~vp
          {
            Run_store.collection = r.collection;
            graph = r.graph;
            inference = r.inference;
            probes = r.probes;
            cache = r.cache;
          };
        r)
  in
  match pool with
  | None -> List.map run_vp vps
  | Some pool ->
    freeze_shared w inputs;
    ignore (Lazy.force shared);
    Pool.map pool run_vp vps

(* ------------------------------------------------------------------ *)
(* Epoch loop: freeze -> infer -> apply events -> incremental
   re-freeze -> infer -> ... The expensive full propagation runs once;
   every later epoch patches the previous snapshot and plan through
   [Bgp.refreeze] / [Forwarding.patch], re-propagating only the dirty
   prefix columns. *)

type epoch = {
  ep_index : int;
  ep_time : float;  (** simulated clock at the end of the epoch's batch *)
  ep_digest : string;  (** chained event-log digest (store-key component) *)
  ep_events : Topogen.Evolve.timed list;
  ep_stats : Routing.Bgp.refreeze_stats option;  (** [None] at epoch 0 *)
  ep_world : Gen.world;
  ep_shared : shared;
  ep_runs : run list;
}

let run_epochs ?cfg ?pool ?store ?(pps = 100.0) ?(validate = true) ~schedule
    ~vps (w : Gen.world) =
  Topogen.Evolve.validate_schedule schedule;
  let fresh_bgp (w : Gen.world) =
    Routing.Bgp.create w.Gen.net w.Gen.rels_truth
      ~originated:(Gen.originated w) ~selective:w.Gen.selective
  in
  let world = ref w in
  let digest = ref "" in
  let prev : shared option ref = ref None in
  let epoch_of e =
      let events, stats, shared =
        match (e, !prev) with
        | 0, _ | _, None ->
          (* Epoch 0: the one full freeze (store-warm when possible). *)
          ([], None, freeze_routing ?store ~epoch:!digest !world)
        | _, Some old ->
          let w', events = Topogen.Evolve.advance schedule ~epoch:e !world in
          world := w';
          digest := Topogen.Evolve.log_digest !digest events;
          let churn = Routing.Bgp.churn_of_events events in
          let snapshot, stats =
            Obs.Span.with_span ~stage:"freeze" ~vp:"shared" (fun () ->
                Routing.Bgp.refreeze (fresh_bgp w') ~old:old.snapshot churn)
          in
          let fwd =
            Routing.Forwarding.create w'.Gen.net
              (Routing.Bgp.of_snapshot snapshot)
          in
          let plan =
            Obs.Span.with_span ~stage:"freeze" ~vp:"shared" (fun () ->
                Routing.Forwarding.patch ~egress_for:w'.Gen.siblings fwd
                  ~old:old.plan ~churn
                  ~dirty:stats.Routing.Bgp.rf_dirty_prefixes)
          in
          if validate then begin
            (* Prove the incremental path byte-identical to a scratch
               freeze of the evolved world: packed words, arena (modulo
               interning order), every LPM answer, every IGP row and
               egress cell. Counted apart from the patched builds so
               build-accounting gates stay meaningful. *)
            let scratch =
              Routing.Bgp.freeze ~counter:"routing.snapshot.scratch_builds"
                (fresh_bgp w')
            in
            (match Routing.Bgp.Snapshot.equal scratch snapshot with
            | Ok () -> ()
            | Error m ->
              invalid_arg
                (Printf.sprintf
                   "Pipeline.run_epochs: epoch %d snapshot diverged: %s" e m));
            let sfwd =
              Routing.Forwarding.create w'.Gen.net
                (Routing.Bgp.of_snapshot scratch)
            in
            let splan =
              Routing.Forwarding.freeze ~egress_for:w'.Gen.siblings sfwd
            in
            match
              Routing.Forwarding.plan_equal ~scratch:splan ~patched:plan
            with
            | Ok () -> ()
            | Error m ->
              invalid_arg
                (Printf.sprintf
                   "Pipeline.run_epochs: epoch %d plan diverged: %s" e m)
          end;
          (events, Some stats, { snapshot; plan })
      in
      prev := Some shared;
      let w' = !world in
      let inputs =
        inputs_of_world w' (Routing.Bgp.of_snapshot shared.snapshot)
      in
      let runs =
        execute_all ?cfg ?pool ?store ~shared ~epoch:!digest ~pps w' inputs
          ~vps:(vps w')
      in
      { ep_index = e;
        ep_time = float_of_int e *. schedule.Topogen.Evolve.ev_interval;
        ep_digest = !digest;
        ep_events = events;
        ep_stats = stats;
        ep_world = w';
        ep_shared = shared;
        ep_runs = runs }
  in
  (* Epochs are inherently sequential (each patches the previous
     snapshot), so build the list with an explicit in-order loop. *)
  let acc = ref [] in
  for e = 0 to schedule.Topogen.Evolve.ev_epochs do
    acc := epoch_of e :: !acc
  done;
  List.rev !acc
