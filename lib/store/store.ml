type t = { dir : string }

let format_version = 1
let magic = "BDRS"
let header_len = 64
let key_len = 32
let entry_ext = ".run"

let open_dir dir =
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
  { dir }

let dir t = t.dir

type miss =
  | Absent
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Stale
  | Corrupt

let miss_label = function
  | Absent -> "absent"
  | Truncated -> "truncated"
  | Bad_magic -> "bad-magic"
  | Bad_version v -> Printf.sprintf "bad-version-%d" v
  | Stale -> "stale"
  | Corrupt -> "corrupt"

let path t key = Filename.concat t.dir (key ^ entry_ext)

(* Big-endian fixed-width ints, so entries are portable across hosts. *)
let put_u32 b v =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * (3 - i))) land 0xff))
  done

let put_u64 b v =
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr ((v lsr (8 * (7 - i))) land 0xff))
  done

let get_u32 s off =
  let v = ref 0 in
  for i = 0 to 3 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let get_u64 s off =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let encode ~key payload =
  let b = Buffer.create (header_len + String.length payload) in
  Buffer.add_string b magic;
  put_u32 b format_version;
  Buffer.add_string b key;
  Buffer.add_string b (Digest.string payload);
  put_u64 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* Decode an entry image, validating every field before trusting the
   payload.  [key] is the key the caller asked for; the embedded key
   catches entries copied or renamed under the wrong name. *)
let decode ~key s =
  let n = String.length s in
  if n < header_len then Error Truncated
  else if String.sub s 0 4 <> magic then Error Bad_magic
  else
    let v = get_u32 s 4 in
    if v <> format_version then Error (Bad_version v)
    else if String.sub s 8 key_len <> key then Error Stale
    else
      let len = get_u64 s 56 in
      if n - header_len <> len then Error Truncated
      else
        let payload = String.sub s header_len len in
        if Digest.string payload <> String.sub s 40 16 then Error Corrupt
        else Ok payload

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        Some (really_input_string ic n))

let valid_key key =
  String.length key = key_len
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       key

let read t ~key =
  if not (valid_key key) then invalid_arg "Store.read: malformed key";
  match read_file (path t key) with
  | None -> Error Absent
  | Some s -> decode ~key s

(* Unique within the process (counter + domain) and across processes
   (pid); collisions would let two writers interleave into one temp
   file, which the rename would then publish torn. *)
let tmp_counter = Atomic.make 0

let tmp_name t key =
  Filename.concat t.dir
    (Printf.sprintf "%s%s.tmp-%d-%d-%d" key entry_ext (Unix.getpid ())
       (Domain.self () :> int)
       (Atomic.fetch_and_add tmp_counter 1))

let write t ~key payload =
  if not (valid_key key) then invalid_arg "Store.write: malformed key";
  let image = encode ~key payload in
  let tmp = tmp_name t key in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc image)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp (path t key);
  String.length image

let mem t ~key = match read t ~key with Ok _ -> true | Error _ -> false

let remove t ~key =
  try Sys.remove (path t key) with Sys_error _ -> ()

let is_tmp name =
  (* "<key>.run.tmp-<pid>-<dom>-<n>" *)
  match String.index_opt name '-' with
  | None -> false
  | Some _ ->
    (match String.rindex_opt name '.' with
     | None -> false
     | Some i ->
       String.length name > i + 4 && String.sub name (i + 1) 4 = "tmp-")

let entries t =
  let names =
    match Sys.readdir t.dir with
    | exception Sys_error _ -> [||]
    | a -> a
  in
  Array.to_list names
  |> List.filter_map (fun name ->
         if not (Filename.check_suffix name entry_ext) then None
         else
           let key = Filename.chop_suffix name entry_ext in
           let file = Filename.concat t.dir name in
           let bytes =
             match (Unix.stat file).Unix.st_size with
             | n -> n
             | exception Unix.Unix_error _ -> 0
           in
           let status =
             if not (valid_key key) then Some Bad_magic
             else
               match read_file file with
               | None -> Some Absent
               | Some s -> (
                 match decode ~key s with
                 | Ok _ -> None
                 | Error m -> Some m)
           in
           Some (key, bytes, status))
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

type gc_stats = { gc_removed : int; gc_kept : int; gc_bytes_freed : int }

let gc ?(all = false) t =
  let removed = ref 0 and kept = ref 0 and bytes = ref 0 in
  let rm file =
    (* Size first: after the remove there is nothing left to measure. *)
    let size = try (Unix.stat file).Unix.st_size with Unix.Unix_error _ -> 0 in
    try
      Sys.remove file;
      incr removed;
      bytes := !bytes + size
    with Sys_error _ -> ()
  in
  (match Sys.readdir t.dir with
   | exception Sys_error _ -> ()
   | names ->
     Array.iter
       (fun name ->
         if is_tmp name then rm (Filename.concat t.dir name))
       names);
  List.iter
    (fun (key, _, status) ->
      if all || status <> None then rm (path t key) else incr kept)
    (entries t);
  { gc_removed = !removed; gc_kept = !kept; gc_bytes_freed = !bytes }
