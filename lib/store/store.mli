(** Persistent content-addressed blob store with crash-safe writes.

    A store is a flat directory of entries, one file per key.  Keys are
    32-char hex MD5 digests computed by the caller over whatever
    identifies the cached computation (topology parameters, pipeline
    config, VP identity...); the store itself is generic and holds
    opaque byte payloads.

    Every entry is a versioned, length-prefixed record:

    {v
      offset  size  field
      0       4     magic "BDRS"
      4       4     format version (big-endian)
      8       32    key (hex MD5, must match the file's key)
      40      16    MD5 digest of the payload
      56      8     payload length (big-endian)
      64      n     payload
    v}

    Writes go to a uniquely named temp file in the same directory and
    are published with [Sys.rename], so a reader can never observe a
    torn entry and a killed writer leaves only a [*.tmp-*] orphan that
    [gc] sweeps.  Reads validate magic, version, embedded key, length
    and digest; any mismatch is reported as a typed miss so callers can
    fall back to recomputation. *)

type t

(** Latest entry format version written by {!write}. *)
val format_version : int

(** [open_dir dir] opens (creating if needed) a store rooted at [dir]. *)
val open_dir : string -> t

val dir : t -> string

(** Why a read did not produce a payload. *)
type miss =
  | Absent  (** no entry file for this key *)
  | Truncated  (** file shorter than its header or declared length *)
  | Bad_magic  (** not a store entry *)
  | Bad_version of int  (** entry written by an incompatible format *)
  | Stale  (** embedded key does not match the requested key *)
  | Corrupt  (** payload digest mismatch *)

val miss_label : miss -> string

(** [read t ~key] returns the payload stored under [key], or a typed
    miss.  Never raises on a malformed entry. *)
val read : t -> key:string -> (string, miss) result

(** [write t ~key payload] atomically persists [payload] under [key]
    (temp file + rename) and returns the entry size in bytes,
    header included. *)
val write : t -> key:string -> string -> int

(** [mem t ~key] is true iff [read] would succeed. *)
val mem : t -> key:string -> bool

(** [remove t ~key] deletes the entry if present. *)
val remove : t -> key:string -> unit

(** [entries t] lists every entry file as [(key, bytes, status)] where
    [status] is [None] for a valid entry and [Some miss] otherwise,
    sorted by key.  Temp files are not listed. *)
val entries : t -> (string * int * miss option) list

(** What a {!gc} sweep reclaimed: files removed, valid entries kept,
    and on-disk bytes freed (entry payloads plus headers plus orphaned
    temp files, measured before deletion). *)
type gc_stats = { gc_removed : int; gc_kept : int; gc_bytes_freed : int }

(** [gc t] removes invalid entries and orphaned temp files; [~all:true]
    removes valid entries too. *)
val gc : ?all:bool -> t -> gc_stats
