(** The in-memory query index the server answers from: a frozen
    {!Bdrmap.Mapfile.t} (all-VP merged border map + origin view)
    compiled into flat lookup structures, optionally backed by a frozen
    routing snapshot.

    The owner path is allocation-free after construction: border
    addresses live as /32s in a {!Netcore.Lpm} table queried through
    [lookup_idx]/[value_at] (immediate ints only), and the non-border
    fallback resolves through the snapshot's [lookup_pslot] slot layer
    into a plain [int array] of origins — the same two zero-alloc slot
    layers the pipeline's hot sweeps use. Crossings and provenance
    answers are pre-rendered strings, so serving them is a table lookup
    plus a copy into the response frame. *)

open Netcore

type t

(** [build ?snapshot mapfile] compiles the artifact. With [snapshot],
    non-border owner lookups go through the packed slot layer; without
    it they fall back to a private origin LPM built from
    [mapfile.origins] (same answers, slightly more root-array work).
    Raises [Invalid_argument] if [mapfile.host_asns] is empty. *)
val build : ?snapshot:Routing.Bgp.snapshot -> Bdrmap.Mapfile.t -> t

(** Representative hosting AS (minimum of [host_asns]) — the operator
    reported for near-side border addresses. *)
val host_asn : t -> Asn.t

val host_asns : t -> Asn.Set.t

(** Number of distinct /32 border addresses indexed. *)
val border_count : t -> int

(** [owner t a] is the operator ASN of the border router owning [a]
    (near side: the hosting AS; far side: the neighbor), falling back
    to the covering prefix's origin AS for non-border addresses; [0]
    when nothing covers [a]. Allocation-free. *)
val owner : t -> Ipv4.t -> int

(** [crossings t a b] is the pre-rendered interdomain link lines
    between ASes [a] and [b] — non-empty only when one of the two is a
    hosting AS (the map is the hosting network's border, §6). Lines use
    the {!Bdrmap.Output} link format extended with the merge columns:
    [link|<near>|<far>|<neighbor>|<tags>|<seen_by>]. *)
val crossings : t -> Asn.t -> Asn.t -> string list

(** [provenance t a] is the pre-rendered provenance line for border
    address [a] — which side it sits on, its operator, the heuristic
    tags that fired (PR-3 slugs) and the VPs that saw it — or, for a
    routed non-border address, an [origin] line naming the covering
    prefix's origin. [None] when [a] is unknown. *)
val provenance : t -> Ipv4.t -> string option

(** Deterministic, deduplicated sample of addresses the map can answer
    (border addresses first, then one per origin prefix) — the
    load-generator's query mix. *)
val sample_addrs : t -> Ipv4.t array
