(** Load generator for the query server: spins a {!Server} up on its
    own domain over a throwaway socket, drives batched owner queries
    from this domain through {!Client.owner_batch_into}, and reports
    sustained throughput, per-frame round-trip latency quantiles (from
    a local copy of the {!Obs.Metrics} log-bucket layout) and the
    serving domain's steady-state minor-GC words per query (bracketed
    by two {!Protocol.op_gcstat} probes, warmup excluded). *)

type result = {
  batch : int;  (** owner queries per frame *)
  queries : int;  (** total queries in the timed window *)
  wall_s : float;
  qps : float;
  rtt_p50_us : float;  (** per-frame round-trip, microseconds *)
  rtt_p99_us : float;
  minor_words_per_query : float;
      (** serving-domain minor words allocated per query in steady
          state — the zero-alloc claim, measured not asserted *)
}

(** [run ?batch ?seconds ?warmup_frames qmap] measures one
    configuration (defaults: batch 512, 0.5 s timed window, 64 warmup
    frames). *)
val run : ?batch:int -> ?seconds:float -> ?warmup_frames:int -> Qmap.t -> result

val print : Format.formatter -> result -> unit
