let magic = "BDQS"
let version = 1
let greeting_len = 6
let max_frame = 1 lsl 20
let op_owner = 1
let op_crossings = 2
let op_provenance = 3
let op_stats = 4
let op_metrics = 5
let op_gcstat = 6

type error =
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Oversized of int
  | Bad_opcode of int
  | Malformed of string
  | Server_error of { code : int; message : string }

let error_label = function
  | Truncated -> "truncated"
  | Bad_magic -> "bad-magic"
  | Bad_version v -> Printf.sprintf "bad-version-%d" v
  | Oversized n -> Printf.sprintf "oversized-%d" n
  | Bad_opcode op -> Printf.sprintf "bad-opcode-%d" op
  | Malformed what -> Printf.sprintf "malformed-%s" what
  | Server_error { code; message } -> Printf.sprintf "server-error-%d (%s)" code message

(* Big-endian reads composed from [Char.code]: each returns an
   immediate int, so a lookup loop over these never allocates. Bounds
   are the caller's job (frames are length-checked before decoding). *)

let get_u8 b off = Char.code (Bytes.unsafe_get b off)

let get_u16 b off =
  (Char.code (Bytes.unsafe_get b off) lsl 8) lor Char.code (Bytes.unsafe_get b (off + 1))

let get_u32 b off =
  (Char.code (Bytes.unsafe_get b off) lsl 24)
  lor (Char.code (Bytes.unsafe_get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (off + 2)) lsl 8)
  lor Char.code (Bytes.unsafe_get b (off + 3))

let get_u64 b off = (get_u32 b off lsl 32) lor get_u32 b (off + 4)

let set_u32 b off v =
  Bytes.unsafe_set b off (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set b (off + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (off + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (off + 3) (Char.unsafe_chr (v land 0xff))

type wbuf = { mutable buf : Bytes.t; mutable len : int }

let wbuf_create n = { buf = Bytes.create (max 16 n); len = 0 }
let wbuf_clear b = b.len <- 0

let wbuf_reserve b n =
  let need = b.len + n in
  if need > Bytes.length b.buf then begin
    let cap = ref (Bytes.length b.buf * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit b.buf 0 nb 0 b.len;
    b.buf <- nb
  end

let put_u8 b v =
  wbuf_reserve b 1;
  Bytes.unsafe_set b.buf b.len (Char.unsafe_chr (v land 0xff));
  b.len <- b.len + 1

let put_u16 b v =
  wbuf_reserve b 2;
  Bytes.unsafe_set b.buf b.len (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b.buf (b.len + 1) (Char.unsafe_chr (v land 0xff));
  b.len <- b.len + 2

let put_u32 b v =
  wbuf_reserve b 4;
  set_u32 b.buf b.len v;
  b.len <- b.len + 4

let put_u64 b v =
  wbuf_reserve b 8;
  set_u32 b.buf b.len ((v lsr 32) land 0xFFFFFFFF);
  set_u32 b.buf (b.len + 4) (v land 0xFFFFFFFF);
  b.len <- b.len + 8

let put_string b s =
  let n = String.length s in
  wbuf_reserve b n;
  Bytes.blit_string s 0 b.buf b.len n;
  b.len <- b.len + n

let patch_u32 b off v = set_u32 b.buf off v
