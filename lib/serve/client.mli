(** Blocking client for the {!Protocol} wire format.

    Every call is a single request/response round trip; results are
    typed and failures come back as {!Protocol.error} values (a short
    read is [Truncated], a wrong greeting [Bad_magic]/[Bad_version], a
    status-1 response [Server_error]) — never exceptions, mirroring the
    [lib/store] typed-miss convention.

    {!owner_batch_into} is the load-generator form: addresses in, owner
    ASNs out through caller-owned [int array]s, with the request and
    response staged through the connection's reusable buffers — after
    warmup a polling loop over it allocates nothing on the client side
    either. *)

open Netcore

type t

val connect : string -> (t, Protocol.error) result
val close : t -> unit

(** [owner c a] is the operator ASN owning [a]; [0] = unknown. *)
val owner : t -> Ipv4.t -> (int, Protocol.error) result

val owner_batch : t -> Ipv4.t list -> (int list, Protocol.error) result

(** [owner_batch_into c ~addrs ~n ~out] queries [addrs.(0..n-1)]
    (address ints) and stores the owners into [out.(0..n-1)].
    Allocation-free after the first call at a given [n]. *)
val owner_batch_into :
  t -> addrs:int array -> n:int -> out:int array -> (unit, Protocol.error) result

val crossings : t -> Asn.t -> Asn.t -> (string list, Protocol.error) result
val provenance : t -> Ipv4.t -> (string option, Protocol.error) result

type stats = { queries : int; requests : int; connections : int; errors : int }

val stats : t -> (stats, Protocol.error) result

(** The server's OpenMetrics exposition (ends with [# EOF]). *)
val metrics_text : t -> (string, Protocol.error) result

type gc_stat = { minor_words : int; queries_total : int }

(** Serving-domain GC probe: minor words allocated so far and queries
    answered — two samples bracket a steady-state words-per-query
    measurement. *)
val gc_stat : t -> (gc_stat, Protocol.error) result
