type result = {
  batch : int;
  queries : int;
  wall_s : float;
  qps : float;
  rtt_p50_us : float;
  rtt_p99_us : float;
  minor_words_per_query : float;
}

let socket_counter = Atomic.make 0

let fresh_socket_path () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "bdrmap-serve-%d-%d.sock" (Unix.getpid ())
       (Atomic.fetch_and_add socket_counter 1))

(* Quantile in seconds from a local bucket population using the shared
   Metrics layout; [None] never happens here (count > 0 by contract). *)
let quantile buckets count q =
  let pairs = ref [] in
  Array.iteri
    (fun i n -> if n > 0 then pairs := (Obs.Metrics.bucket_lower i, n) :: !pairs)
    buckets;
  match Obs.Summary.percentile_of_buckets ~count (List.rev !pairs) q with
  | Some v -> v
  | None -> 0.0

let run ?(batch = 512) ?(seconds = 0.5) ?(warmup_frames = 64) qmap =
  let path = fresh_socket_path () in
  let server = Server.create ~path qmap in
  let domain = Domain.spawn (fun () -> Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Domain.join domain)
    (fun () ->
      let client =
        match Client.connect path with
        | Ok c -> c
        | Error e -> failwith ("serve-bench: connect: " ^ Protocol.error_label e)
      in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let sample = Qmap.sample_addrs qmap in
          if Array.length sample = 0 then failwith "serve-bench: empty query map";
          (* The query mix cycles through every answerable address, so
             batches hit border /32s and origin prefixes alike. *)
          let addrs = Array.make batch 0 in
          let out = Array.make batch 0 in
          let cursor = ref 0 in
          let fill () =
            for i = 0 to batch - 1 do
              addrs.(i) <- Netcore.Ipv4.to_int sample.(!cursor);
              cursor := !cursor + 1;
              if !cursor = Array.length sample then cursor := 0
            done
          in
          let shoot () =
            match Client.owner_batch_into client ~addrs ~n:batch ~out with
            | Ok () -> ()
            | Error e -> failwith ("serve-bench: query: " ^ Protocol.error_label e)
          in
          for _ = 1 to warmup_frames do
            fill ();
            shoot ()
          done;
          let gc0 =
            match Client.gc_stat client with
            | Ok g -> g
            | Error e -> failwith ("serve-bench: gcstat: " ^ Protocol.error_label e)
          in
          let rtt_buckets = Array.make 64 0 in
          let frames = ref 0 in
          let t_start = Unix.gettimeofday () in
          let deadline = t_start +. seconds in
          let t_end = ref t_start in
          while !t_end < deadline do
            fill ();
            let t0 = Unix.gettimeofday () in
            shoot ();
            let t1 = Unix.gettimeofday () in
            let b = Obs.Metrics.bucket_of (t1 -. t0) in
            rtt_buckets.(b) <- rtt_buckets.(b) + 1;
            incr frames;
            t_end := t1
          done;
          let gc1 =
            match Client.gc_stat client with
            | Ok g -> g
            | Error e -> failwith ("serve-bench: gcstat: " ^ Protocol.error_label e)
          in
          let wall_s = !t_end -. t_start in
          let queries = !frames * batch in
          let dq = gc1.Client.queries_total - gc0.Client.queries_total in
          let dw = gc1.Client.minor_words - gc0.Client.minor_words in
          { batch;
            queries;
            wall_s;
            qps = (if wall_s > 0.0 then float_of_int queries /. wall_s else 0.0);
            rtt_p50_us = 1e6 *. quantile rtt_buckets !frames 0.50;
            rtt_p99_us = 1e6 *. quantile rtt_buckets !frames 0.99;
            minor_words_per_query =
              (if dq > 0 then float_of_int dw /. float_of_int dq else 0.0) }))

let print ppf r =
  Format.fprintf ppf
    "batch %4d: %9.0f qps (%d queries in %.3fs), rtt p50 %.1fus p99 %.1fus, \
     %.3f minor words/query@."
    r.batch r.qps r.queries r.wall_s r.rtt_p50_us r.rtt_p99_us
    r.minor_words_per_query
