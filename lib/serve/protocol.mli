(** Wire protocol of the border-map query server.

    Hand-rolled length-prefixed binary frames over a Unix-domain
    stream socket, in the [lib/store] style: big-endian fixed-width
    integers, no external codec.

    On connect the server sends a fixed 6-byte greeting — magic
    ["BDQS"] plus a big-endian u16 protocol version — so a client
    talking to the wrong socket fails with a typed error before any
    query. After that, both directions speak frames:

    {v
      offset  size  field
      0       4     payload length n (big-endian, <= max_frame)
      4       n     payload
    v}

    A request payload is one opcode byte plus an opcode-specific body;
    a response payload is one status byte (0 = ok) plus the result
    body, or status 1 plus [u8 code, u16 len, len bytes message] on a
    server-side error. Bodies:

    - {!op_owner}: request [n x u32] addresses; response [n x u32]
      operator ASNs, 0 for unknown. Batched so the syscall cost
      amortizes across lookups.
    - {!op_crossings}: request [u32 a, u32 b] (ASNs); response
      [u32 count] then [count x (u16 len, bytes)] link lines.
    - {!op_provenance}: request [u32 addr]; response [u8 found] then,
      if found, [u16 len, bytes] — the provenance line.
    - {!op_stats}: empty request; response [4 x u64]: queries,
      requests, connections, errors.
    - {!op_metrics}: empty request; response [u32 len, bytes] — the
      OpenMetrics exposition, terminated by [# EOF].
    - {!op_gcstat}: empty request; response [u64 minor_words,
      u64 queries] sampled on the server domain — the probe the
      zero-allocation steady-state measurement is built on.

    The integer accessors below are deliberately {e not}
    [Bytes.get_int32_be] and friends: those box an [Int32]/[Int64] per
    call, while these compose plain [Char.code] reads into an
    immediate [int], keeping the server's hot request loop
    allocation-free. *)

val magic : string
val version : int
val greeting_len : int

(** Hard cap on a frame payload (1 MiB); a peer declaring more is a
    protocol violation, not a large request. *)
val max_frame : int

val op_owner : int
val op_crossings : int
val op_provenance : int
val op_stats : int
val op_metrics : int
val op_gcstat : int

(** Why a peer's bytes could not be understood, in the typed-miss style
    of [Store.miss] / [Bgp.Snapshot.decode_error]. *)
type error =
  | Truncated  (** connection closed inside a greeting or frame *)
  | Bad_magic  (** greeting does not start with ["BDQS"] *)
  | Bad_version of int  (** greeting from an incompatible protocol *)
  | Oversized of int  (** declared payload length exceeds {!max_frame} *)
  | Bad_opcode of int
  | Malformed of string  (** body does not match its opcode's shape *)
  | Server_error of { code : int; message : string }
      (** the server answered with an error response *)

val error_label : error -> string

(** {1 Zero-allocation integer codec} *)

val get_u8 : Bytes.t -> int -> int
val get_u16 : Bytes.t -> int -> int
val get_u32 : Bytes.t -> int -> int
val get_u64 : Bytes.t -> int -> int
val set_u32 : Bytes.t -> int -> int -> unit

(** {1 Growable write buffer}

    An append-only byte builder that reuses its backing array across
    frames: after the first few requests have grown it to the working
    set, [clear]+[put_*] touch no allocator at all (unlike [Buffer],
    whose [add_*] path allocates on every internal chunk spill). *)

type wbuf = { mutable buf : Bytes.t; mutable len : int }

val wbuf_create : int -> wbuf
val wbuf_clear : wbuf -> unit

(** [wbuf_reserve b n] grows the backing array so [n] more bytes fit. *)
val wbuf_reserve : wbuf -> int -> unit

val put_u8 : wbuf -> int -> unit
val put_u16 : wbuf -> int -> unit
val put_u32 : wbuf -> int -> unit
val put_u64 : wbuf -> int -> unit
val put_string : wbuf -> string -> unit

(** [patch_u32 b off v] overwrites 4 already-written bytes at [off] —
    how a frame's length prefix is filled in after its payload. *)
val patch_u32 : wbuf -> int -> int -> unit
