open Netcore

type t = {
  fd : Unix.file_descr;
  wb : Protocol.wbuf;
  mutable rbuf : Bytes.t;  (* response payload staging, grown on demand *)
  hdr : Bytes.t;  (* 4-byte length prefix staging *)
}

type stats = { queries : int; requests : int; connections : int; errors : int }
type gc_stat = { minor_words : int; queries_total : int }

let ( let* ) = Result.bind

(* Read exactly [n] bytes into [buf]; Error Truncated on EOF or any
   socket error (the peer is gone either way). *)
let read_exact fd buf n =
  let off = ref 0 in
  let ok = ref true in
  while !ok && !off < n do
    match Unix.read fd buf !off (n - !off) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> ok := false
    | 0 -> ok := false
    | k -> off := !off + k
  done;
  if !ok then Ok () else Error Protocol.Truncated

let write_all fd buf len =
  let off = ref 0 in
  let ok = ref true in
  while !ok && !off < len do
    match Unix.write fd buf !off (len - !off) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> ok := false
    | k -> off := !off + k
  done;
  if !ok then Ok () else Error Protocol.Truncated

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let connect path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> Error Protocol.Truncated
  | fd -> (
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error Protocol.Truncated
    | () ->
      let g = Bytes.create Protocol.greeting_len in
      let fail e =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error e
      in
      (match read_exact fd g Protocol.greeting_len with
      | Error e -> fail e
      | Ok () ->
        if Bytes.sub_string g 0 4 <> Protocol.magic then fail Protocol.Bad_magic
        else
          let v = Protocol.get_u16 g 4 in
          if v <> Protocol.version then fail (Protocol.Bad_version v)
          else
            Ok
              { fd;
                wb = Protocol.wbuf_create 65536;
                rbuf = Bytes.create 65536;
                hdr = Bytes.create 4 }))

(* Send the frame staged in [t.wb], read the response payload into
   [t.rbuf] and return its length. Validates the response status byte;
   a status-1 payload decodes into [Server_error]. *)
let round_trip t =
  let* () = write_all t.fd t.wb.Protocol.buf t.wb.Protocol.len in
  let* () = read_exact t.fd t.hdr 4 in
  let len = Protocol.get_u32 t.hdr 0 in
  if len > Protocol.max_frame then Error (Protocol.Oversized len)
  else if len < 1 then Error (Protocol.Malformed "empty response")
  else begin
    if Bytes.length t.rbuf < len then t.rbuf <- Bytes.create len;
    let* () = read_exact t.fd t.rbuf len in
    let status = Protocol.get_u8 t.rbuf 0 in
    if status = 0 then Ok len
    else if len >= 4 then begin
      let code = Protocol.get_u8 t.rbuf 1 in
      let mlen = Protocol.get_u16 t.rbuf 2 in
      if 4 + mlen > len then Error (Protocol.Malformed "error message length")
      else
        Error
          (Protocol.Server_error { code; message = Bytes.sub_string t.rbuf 4 mlen })
    end
    else Error (Protocol.Malformed "short error response")
  end

let begin_frame t op =
  Protocol.wbuf_clear t.wb;
  Protocol.put_u32 t.wb 0;
  Protocol.put_u8 t.wb op

let finish_frame t = Protocol.patch_u32 t.wb 0 (t.wb.Protocol.len - 4)

let owner_batch_into t ~addrs ~n ~out =
  if n < 0 || n > Array.length addrs || n > Array.length out then
    Error (Protocol.Malformed "owner batch bounds")
  else begin
    begin_frame t Protocol.op_owner;
    Protocol.wbuf_reserve t.wb (4 * n);
    for i = 0 to n - 1 do
      Protocol.put_u32 t.wb (Array.unsafe_get addrs i)
    done;
    finish_frame t;
    let* len = round_trip t in
    if len <> 1 + (4 * n) then Error (Protocol.Malformed "owner response length")
    else begin
      for i = 0 to n - 1 do
        Array.unsafe_set out i (Protocol.get_u32 t.rbuf (1 + (4 * i)))
      done;
      Ok ()
    end
  end

let owner_batch t addrs =
  let arr = Array.of_list (List.map Ipv4.to_int addrs) in
  let n = Array.length arr in
  let out = Array.make (max 1 n) 0 in
  let* () = owner_batch_into t ~addrs:arr ~n ~out in
  Ok (Array.to_list (Array.sub out 0 n))

let owner t a =
  match owner_batch t [ a ] with
  | Ok [ asn ] -> Ok asn
  | Ok _ -> Error (Protocol.Malformed "owner response arity")
  | Error e -> Error e

let crossings t a b =
  begin_frame t Protocol.op_crossings;
  Protocol.put_u32 t.wb a;
  Protocol.put_u32 t.wb b;
  finish_frame t;
  let* len = round_trip t in
  if len < 5 then Error (Protocol.Malformed "crossings response length")
  else begin
    let count = Protocol.get_u32 t.rbuf 1 in
    let off = ref 5 in
    let rec go k acc =
      if k = 0 then Ok (List.rev acc)
      else if !off + 2 > len then Error (Protocol.Malformed "crossings line header")
      else begin
        let llen = Protocol.get_u16 t.rbuf !off in
        if !off + 2 + llen > len then Error (Protocol.Malformed "crossings line body")
        else begin
          let line = Bytes.sub_string t.rbuf (!off + 2) llen in
          off := !off + 2 + llen;
          go (k - 1) (line :: acc)
        end
      end
    in
    go count []
  end

let provenance t a =
  begin_frame t Protocol.op_provenance;
  Protocol.put_u32 t.wb (Ipv4.to_int a);
  finish_frame t;
  let* len = round_trip t in
  if len < 2 then Error (Protocol.Malformed "provenance response length")
  else
    match Protocol.get_u8 t.rbuf 1 with
    | 0 -> Ok None
    | 1 ->
      if len < 4 then Error (Protocol.Malformed "provenance line header")
      else begin
        let llen = Protocol.get_u16 t.rbuf 2 in
        if 4 + llen > len then Error (Protocol.Malformed "provenance line body")
        else Ok (Some (Bytes.sub_string t.rbuf 4 llen))
      end
    | _ -> Error (Protocol.Malformed "provenance found flag")

let stats t =
  begin_frame t Protocol.op_stats;
  finish_frame t;
  let* len = round_trip t in
  if len <> 33 then Error (Protocol.Malformed "stats response length")
  else
    Ok
      { queries = Protocol.get_u64 t.rbuf 1;
        requests = Protocol.get_u64 t.rbuf 9;
        connections = Protocol.get_u64 t.rbuf 17;
        errors = Protocol.get_u64 t.rbuf 25 }

let metrics_text t =
  begin_frame t Protocol.op_metrics;
  finish_frame t;
  let* len = round_trip t in
  if len < 5 then Error (Protocol.Malformed "metrics response length")
  else begin
    let tlen = Protocol.get_u32 t.rbuf 1 in
    if 5 + tlen > len then Error (Protocol.Malformed "metrics text length")
    else Ok (Bytes.sub_string t.rbuf 5 tlen)
  end

let gc_stat t =
  begin_frame t Protocol.op_gcstat;
  finish_frame t;
  let* len = round_trip t in
  if len <> 17 then Error (Protocol.Malformed "gcstat response length")
  else
    Ok
      { minor_words = Protocol.get_u64 t.rbuf 1;
        queries_total = Protocol.get_u64 t.rbuf 9 }
