(** The long-lived query server: a single-domain [select] loop over a
    Unix-domain stream socket, answering {!Protocol} frames from a
    {!Qmap}.

    Design points:
    - {b Zero-alloc hot path.} Per-connection read and write buffers
      are reused across frames; {!handle} — the entire per-frame
      compute — touches only immediate ints and preallocated byte
      arrays on the owner path, and is exposed here so the
      [Gc.minor_words]-delta test can pin that.
    - {b Per-frame instrumentation.} When {!Obs.Metrics} is enabled the
      loop records [serve.queries_total] / [serve.requests_total] /
      [serve.errors_total] / [serve.connections_total] counters and a
      [serve.request_seconds] log-bucket histogram — once per frame,
      never per query, so instrumentation cannot re-introduce per-query
      allocation.
    - {b Clean teardown.} {!stop} is signal-handler safe (one atomic
      store + a self-pipe write waking the select); however {!run}
      exits — including on an exception — every connection and the
      listener are closed and the socket file is unlinked, so a
      SIGTERM mid-query leaves no stale socket behind. *)

type stats = {
  mutable queries : int;
  mutable requests : int;
  mutable connections : int;
  mutable errors : int;
}

(** What {!handle} answers from: the query map, the live counters, the
    OpenMetrics exposition for {!Protocol.op_metrics} and the
    minor-words sampler for {!Protocol.op_gcstat} (defaults to this
    domain's [Gc.minor_words]). *)
type ctx

val ctx_create :
  ?exposition:(unit -> string) -> ?minor_words:(unit -> int) -> Qmap.t -> ctx

val ctx_stats : ctx -> stats

(** [handle ctx req ~off ~len wb] decodes the request payload at
    [req.(off..off+len-1)] and writes the complete response frame
    (length prefix included) into [wb]. Malformed bodies and unknown
    opcodes become status-1 error responses, never exceptions. *)
val handle : ctx -> Bytes.t -> off:int -> len:int -> Protocol.wbuf -> unit

type t

(** [create ~path qmap] binds and listens on the Unix-domain socket at
    [path], replacing a stale socket file left by a killed predecessor
    (only ever unlinking sockets — any other file there surfaces as the
    bind error it is).

    [?reload] compiles a replacement query map when {!request_reload}
    fires (e.g. from a SIGHUP handler). It runs inside the event loop —
    free to allocate and take time — and its result is swapped in with
    a single store, so open connections stall during the rebuild but
    are never dropped, and no query ever sees a torn map. Returning
    [None] (a failed rebuild) keeps the current map. Each successful
    swap bumps the [serve.reloads] counter. *)
val create :
  ?exposition:(unit -> string) ->
  ?minor_words:(unit -> int) ->
  ?reload:(unit -> Qmap.t option) ->
  path:string ->
  Qmap.t ->
  t

val socket_path : t -> string
val stats : t -> stats

(** [run t] serves until {!stop}; always tears down (closes every fd,
    unlinks the socket) on the way out, exception or not. *)
val run : t -> unit

(** [stop t] wakes and terminates {!run}. Idempotent; safe from a
    signal handler or another domain. *)
val stop : t -> unit

(** [request_reload t] asks the event loop to rebuild and swap the
    query map via [create]'s [?reload] callback. Safe from a signal
    handler or another domain; a no-op when no callback was given. *)
val request_reload : t -> unit
