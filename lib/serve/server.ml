open Netcore

type stats = {
  mutable queries : int;
  mutable requests : int;
  mutable connections : int;
  mutable errors : int;
}

let stats_create () = { queries = 0; requests = 0; connections = 0; errors = 0 }

type ctx = {
  mutable qmap : Qmap.t;
  stats : stats;
  exposition : unit -> string;
  minor_words : unit -> int;
}

let default_minor_words () = int_of_float (Gc.minor_words ())

let ctx_create ?(exposition = fun () -> "# EOF\n") ?(minor_words = default_minor_words)
    qmap =
  { qmap; stats = stats_create (); exposition; minor_words }

let ctx_stats ctx = ctx.stats

(* Error codes carried in status-1 responses. *)
let err_bad_opcode = 1
let err_malformed = 2
let err_oversized = 3

let error_frame wb code message =
  Protocol.wbuf_clear wb;
  Protocol.put_u32 wb (1 + 1 + 2 + String.length message);
  Protocol.put_u8 wb 1;
  Protocol.put_u8 wb code;
  Protocol.put_u16 wb (String.length message);
  Protocol.put_string wb message

(* Decode one request payload at [req.(off .. off+len-1)] and write the
   complete response frame (length prefix included) into [wb]. This is
   the entire per-frame compute — kept free of timing, metrics and I/O
   so the zero-allocation test can drive it directly: an owner batch is
   immediate-int arithmetic over preallocated byte arrays end to end. *)
let handle ctx req ~off ~len wb =
  let stats = ctx.stats in
  stats.requests <- stats.requests + 1;
  if len < 1 then begin
    stats.errors <- stats.errors + 1;
    error_frame wb err_malformed "empty request"
  end
  else begin
    let op = Protocol.get_u8 req off in
    let body = off + 1 and blen = len - 1 in
    if op = Protocol.op_owner then
      if blen land 3 <> 0 then begin
        stats.errors <- stats.errors + 1;
        error_frame wb err_malformed "owner body not a multiple of 4"
      end
      else begin
        let n = blen lsr 2 in
        stats.queries <- stats.queries + n;
        Protocol.wbuf_clear wb;
        Protocol.wbuf_reserve wb (4 + 1 + (4 * n));
        Protocol.put_u32 wb (1 + (4 * n));
        Protocol.put_u8 wb 0;
        for i = 0 to n - 1 do
          let a = Ipv4.of_int (Protocol.get_u32 req (body + (4 * i))) in
          Protocol.put_u32 wb (Qmap.owner ctx.qmap a)
        done
      end
    else if op = Protocol.op_crossings then
      if blen <> 8 then begin
        stats.errors <- stats.errors + 1;
        error_frame wb err_malformed "crossings body must be 8 bytes"
      end
      else begin
        stats.queries <- stats.queries + 1;
        let a = Protocol.get_u32 req body and b = Protocol.get_u32 req (body + 4) in
        let lines = Qmap.crossings ctx.qmap a b in
        Protocol.wbuf_clear wb;
        Protocol.put_u32 wb 0 (* patched below *);
        Protocol.put_u8 wb 0;
        Protocol.put_u32 wb (List.length lines);
        List.iter
          (fun l ->
            Protocol.put_u16 wb (String.length l);
            Protocol.put_string wb l)
          lines;
        Protocol.patch_u32 wb 0 (wb.Protocol.len - 4)
      end
    else if op = Protocol.op_provenance then
      if blen <> 4 then begin
        stats.errors <- stats.errors + 1;
        error_frame wb err_malformed "provenance body must be 4 bytes"
      end
      else begin
        stats.queries <- stats.queries + 1;
        let a = Ipv4.of_int (Protocol.get_u32 req body) in
        Protocol.wbuf_clear wb;
        Protocol.put_u32 wb 0;
        Protocol.put_u8 wb 0;
        (match Qmap.provenance ctx.qmap a with
        | None -> Protocol.put_u8 wb 0
        | Some line ->
          Protocol.put_u8 wb 1;
          Protocol.put_u16 wb (String.length line);
          Protocol.put_string wb line);
        Protocol.patch_u32 wb 0 (wb.Protocol.len - 4)
      end
    else if op = Protocol.op_stats then begin
      Protocol.wbuf_clear wb;
      Protocol.put_u32 wb (1 + 32);
      Protocol.put_u8 wb 0;
      Protocol.put_u64 wb stats.queries;
      Protocol.put_u64 wb stats.requests;
      Protocol.put_u64 wb stats.connections;
      Protocol.put_u64 wb stats.errors
    end
    else if op = Protocol.op_metrics then begin
      let text = ctx.exposition () in
      Protocol.wbuf_clear wb;
      Protocol.put_u32 wb (1 + 4 + String.length text);
      Protocol.put_u8 wb 0;
      Protocol.put_u32 wb (String.length text);
      Protocol.put_string wb text
    end
    else if op = Protocol.op_gcstat then begin
      Protocol.wbuf_clear wb;
      Protocol.put_u32 wb (1 + 16);
      Protocol.put_u8 wb 0;
      Protocol.put_u64 wb (ctx.minor_words ());
      Protocol.put_u64 wb stats.queries
    end
    else begin
      stats.errors <- stats.errors + 1;
      error_frame wb err_bad_opcode (Printf.sprintf "unknown opcode %d" op)
    end
  end

(* ------------------------------------------------------------------ *)
(* The socket event loop.                                             *)

type conn = {
  fd : Unix.file_descr;
  mutable rbuf : Bytes.t;
  mutable rlen : int;
  wb : Protocol.wbuf;
}

type t = {
  ctx : ctx;
  path : string;
  listen_fd : Unix.file_descr;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  stopped : bool Atomic.t;
  reload_requested : bool Atomic.t;
  reload : (unit -> Qmap.t option) option;
  mutable conns : conn list;
}

let create ?exposition ?minor_words ?reload ~path qmap =
  (* A stale socket file from a killed predecessor would make bind fail;
     it can never be a live server (we would fail to listen anyway), so
     replace it. Only ever unlink sockets — anything else at [path] is
     the caller's mistake and surfaces as EADDRINUSE. *)
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX path);
     Unix.listen listen_fd 16
   with e ->
     Unix.close listen_fd;
     raise e);
  let stop_r, stop_w = Unix.pipe () in
  { ctx = ctx_create ?exposition ?minor_words qmap;
    path;
    listen_fd;
    stop_r;
    stop_w;
    stopped = Atomic.make false;
    reload_requested = Atomic.make false;
    reload;
    conns = [] }

let socket_path t = t.path
let stats t = t.ctx.stats

(* Signal-handler safe: one atomic store plus a single-byte pipe write
   to wake the select. Idempotent. *)
let stop t =
  if not (Atomic.exchange t.stopped true) then
    try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ()

(* Same signal-handler-safe shape as {!stop}: flag plus self-pipe wake.
   The actual rebuild runs later, inside the event loop, where it may
   allocate and take time — open connections stall for the rebuild but
   are never dropped. *)
let request_reload t =
  if t.reload <> None then begin
    Atomic.set t.reload_requested true;
    try ignore (Unix.write t.stop_w (Bytes.make 1 'r') 0 1)
    with Unix.Unix_error _ -> ()
  end

(* The self-pipe woke the select: drain it, and if the wake was a
   reload request (not a stop), swap in the freshly compiled map. The
   swap is one mutable-field store of an immutable [Qmap.t] — queries
   before it answer from the old map, queries after from the new one,
   never a torn mix. A reload callback returning [None] (e.g. the map
   file failed to parse) keeps the old map. *)
let handle_wakeups t =
  let b = Bytes.create 16 in
  (try ignore (Unix.read t.stop_r b 0 16) with Unix.Unix_error _ -> ());
  if (not (Atomic.get t.stopped)) && Atomic.exchange t.reload_requested false
  then
    match t.reload with
    | None -> ()
    | Some f -> (
      match f () with
      | Some q ->
        t.ctx.qmap <- q;
        Obs.Metrics.incr "serve.reloads"
      | None -> ())

let write_all fd buf len =
  let off = ref 0 in
  (try
     while !off < len do
       off := !off + Unix.write fd buf !off (len - !off)
     done;
     true
   with Unix.Unix_error _ -> false)

let close_conn t c =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c' -> c' != c) t.conns

let greeting =
  let b = Bytes.create Protocol.greeting_len in
  Bytes.blit_string Protocol.magic 0 b 0 4;
  Bytes.set b 4 (Char.chr ((Protocol.version lsr 8) land 0xff));
  Bytes.set b 5 (Char.chr (Protocol.version land 0xff));
  b

let accept t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
    t.ctx.stats.connections <- t.ctx.stats.connections + 1;
    if Obs.Metrics.enabled () then Obs.Metrics.incr "serve.connections_total";
    if write_all fd greeting Protocol.greeting_len then
      t.conns <-
        { fd; rbuf = Bytes.create 65536; rlen = 0; wb = Protocol.wbuf_create 65536 }
        :: t.conns
    else (try Unix.close fd with Unix.Unix_error _ -> ())

(* Drain every complete frame buffered on [c]. Returns false when the
   connection must be closed (write failure or oversized frame — after
   an oversized declaration the stream can never resynchronize). *)
let drain_frames t c =
  let ok = ref true and continue_ = ref true in
  while !continue_ do
    if c.rlen < 4 then continue_ := false
    else begin
      let flen = Protocol.get_u32 c.rbuf 0 in
      if flen > Protocol.max_frame then begin
        t.ctx.stats.errors <- t.ctx.stats.errors + 1;
        if Obs.Metrics.enabled () then Obs.Metrics.incr "serve.errors_total";
        error_frame c.wb err_oversized (Printf.sprintf "frame of %d bytes" flen);
        ignore (write_all c.fd c.wb.Protocol.buf c.wb.Protocol.len);
        ok := false;
        continue_ := false
      end
      else if c.rlen < 4 + flen then continue_ := false
      else begin
        (* Metrics are per-frame, not per-query: an owner batch of 512
           pays one histogram observation, keeping the hot loop free of
           timing syscalls and allocation. *)
        let instrumented = Obs.Metrics.enabled () in
        let t0 = if instrumented then Unix.gettimeofday () else 0.0 in
        let q0 = t.ctx.stats.queries and e0 = t.ctx.stats.errors in
        handle t.ctx c.rbuf ~off:4 ~len:flen c.wb;
        if instrumented then begin
          Obs.Metrics.observe "serve.request_seconds" (Unix.gettimeofday () -. t0);
          Obs.Metrics.incr "serve.requests_total";
          Obs.Metrics.add "serve.queries_total" (t.ctx.stats.queries - q0);
          Obs.Metrics.add "serve.errors_total" (t.ctx.stats.errors - e0)
        end;
        if not (write_all c.fd c.wb.Protocol.buf c.wb.Protocol.len) then begin
          ok := false;
          continue_ := false
        end
        else begin
          let rest = c.rlen - (4 + flen) in
          if rest > 0 then Bytes.blit c.rbuf (4 + flen) c.rbuf 0 rest;
          c.rlen <- rest
        end
      end
    end
  done;
  !ok

let read_conn t c =
  if c.rlen = Bytes.length c.rbuf then begin
    (* Frame larger than the buffer: grow toward max_frame. *)
    let nb = Bytes.create (min (2 * Bytes.length c.rbuf) (4 + Protocol.max_frame)) in
    Bytes.blit c.rbuf 0 nb 0 c.rlen;
    c.rbuf <- nb
  end;
  match Unix.read c.fd c.rbuf c.rlen (Bytes.length c.rbuf - c.rlen) with
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn t c
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | 0 -> close_conn t c
  | n ->
    c.rlen <- c.rlen + n;
    if not (drain_frames t c) then close_conn t c

let shutdown t =
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  try Unix.unlink t.path with Unix.Unix_error _ -> ()

let run t =
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () ->
      while not (Atomic.get t.stopped) do
        let fds = t.stop_r :: t.listen_fd :: List.map (fun c -> c.fd) t.conns in
        match Unix.select fds [] [] (-1.0) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | ready, _, _ ->
          if List.memq t.stop_r ready then handle_wakeups t;
          if not (Atomic.get t.stopped) then begin
            if List.memq t.listen_fd ready then accept t;
            (* Iterate a snapshot: [read_conn] may drop connections. *)
            List.iter (fun c -> if List.memq c.fd ready then read_conn t c) t.conns
          end
      done)
