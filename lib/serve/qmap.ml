open Netcore
module Snapshot = Routing.Bgp.Snapshot

type t = {
  host_asns : Asn.Set.t;
  host_asn : Asn.t;
  border : int Lpm.t;  (* /32 border address -> operator ASN *)
  snap : Routing.Bgp.snapshot option;
  origin_of_pslot : int array;  (* by snapshot prefix slot; 0 = unknown *)
  origin_lpm : int Lpm.t;  (* fallback origin LPM when [snap] is None *)
  prov : string Ipv4.Tbl.t;
  crossings_by_neighbor : (Asn.t, string list) Hashtbl.t;
  border_count : int;
}

let addr_csv addrs =
  if Ipv4.Set.is_empty addrs then "-"
  else String.concat "," (List.map Ipv4.to_string (Ipv4.Set.elements addrs))

let tag_csv tags = String.concat "," (List.map Bdrmap.Output.tag_slug tags)
let vp_csv vps = String.concat "," vps

let link_line (m : Bdrmap.Aggregate.merged) =
  Printf.sprintf "link|%s|%s|%d|%s|%s" (addr_csv m.near_addrs) (addr_csv m.far_addrs)
    m.neighbor (tag_csv m.tags) (vp_csv m.seen_by)

let prov_line addr side asn (m : Bdrmap.Aggregate.merged) =
  Printf.sprintf "provenance|%s|%s|AS%d|%s|%s" (Ipv4.to_string addr) side asn
    (tag_csv m.tags) (vp_csv m.seen_by)

let build ?snapshot (mf : Bdrmap.Mapfile.t) =
  if Asn.Set.is_empty mf.host_asns then
    invalid_arg "Qmap.build: mapfile has no hosting ASes";
  let host_asn = Asn.Set.min_elt mf.host_asns in
  let border_bindings = ref [] in
  let prov = Ipv4.Tbl.create 256 in
  let crossings_by_neighbor = Hashtbl.create 64 in
  List.iter
    (fun (m : Bdrmap.Aggregate.merged) ->
      let line = link_line m in
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt crossings_by_neighbor m.neighbor)
      in
      Hashtbl.replace crossings_by_neighbor m.neighbor (line :: prev);
      let side which asn addr =
        border_bindings := (Prefix.make addr 32, asn) :: !border_bindings;
        (* First link wins per address, so provenance is stable however
           many merged links share an interface. *)
        if not (Ipv4.Tbl.mem prov addr) then
          Ipv4.Tbl.add prov addr (prov_line addr which asn m)
      in
      Ipv4.Set.iter (side "near" host_asn) m.near_addrs;
      Ipv4.Set.iter (side "far" m.neighbor) m.far_addrs)
    mf.merged;
  (* Merged-list order is deterministic; reverse the fold so Lpm's
     later-binding-wins tie-break matches it. *)
  let border = Lpm.build (List.rev !border_bindings) in
  Hashtbl.iter
    (fun k lines -> Hashtbl.replace crossings_by_neighbor k (List.rev lines))
    (Hashtbl.copy crossings_by_neighbor);
  let origin_of_pslot =
    match snapshot with
    | None -> [||]
    | Some s ->
      let arr = Array.make (max 1 (Snapshot.prefix_count s)) 0 in
      List.iter
        (fun (p, asn) ->
          let slot = Snapshot.prefix_slot s p in
          if slot >= 0 then arr.(slot) <- asn)
        mf.origins;
      arr
  in
  let origin_lpm =
    match snapshot with Some _ -> Lpm.build [] | None -> Lpm.build mf.origins
  in
  { host_asns = mf.host_asns;
    host_asn;
    border;
    snap = snapshot;
    origin_of_pslot;
    origin_lpm;
    prov;
    crossings_by_neighbor;
    border_count = Lpm.length border }

let host_asn t = t.host_asn
let host_asns t = t.host_asns
let border_count t = t.border_count

let owner t a =
  let idx = Lpm.lookup_idx t.border a in
  if idx >= 0 then Lpm.value_at t.border idx
  else
    match t.snap with
    | Some s ->
      let pslot = Snapshot.lookup_pslot s a in
      if pslot >= 0 then Array.unsafe_get t.origin_of_pslot pslot else 0
    | None ->
      let i = Lpm.lookup_idx t.origin_lpm a in
      if i >= 0 then Lpm.value_at t.origin_lpm i else 0

let crossings t a b =
  let lines_of neighbor =
    Option.value ~default:[] (Hashtbl.find_opt t.crossings_by_neighbor neighbor)
  in
  if Asn.Set.mem a t.host_asns then lines_of b
  else if Asn.Set.mem b t.host_asns then lines_of a
  else []

let provenance t a =
  match Ipv4.Tbl.find_opt t.prov a with
  | Some line -> Some line
  | None -> (
    (* Not a border interface: report the covering origin instead, so
       "why did owner say AS X" is answerable for any routed address. *)
    let origin_line p asn =
      Some
        (Printf.sprintf "provenance|%s|origin|AS%d|%s|-" (Ipv4.to_string a) asn
           (Prefix.to_string p))
    in
    match t.snap with
    | Some s ->
      let pslot = Snapshot.lookup_pslot s a in
      if pslot < 0 then None
      else
        let asn = t.origin_of_pslot.(pslot) in
        if asn = 0 then None else origin_line (Snapshot.prefix_of_slot s pslot) asn
    | None -> (
      match Lpm.lookup t.origin_lpm a with
      | Some (p, asn) -> origin_line p asn
      | None -> None))

let sample_addrs t =
  let seen = Ipv4.Tbl.create 1024 in
  let acc = ref [] in
  let push a =
    if not (Ipv4.Tbl.mem seen a) then begin
      Ipv4.Tbl.add seen a ();
      acc := a :: !acc
    end
  in
  Lpm.fold (fun p _ () -> push (Prefix.first p)) t.border ();
  (match t.snap with
  | Some s -> List.iter (fun p -> push (Prefix.first p)) (Snapshot.prefixes s)
  | None -> Lpm.fold (fun p _ () -> push (Prefix.first p)) t.origin_lpm ());
  Array.of_list (List.rev !acc)
