(** RadarGun-style IP-ID velocity modeling [Bender, Sherwood & Spring,
    IMC 2008], the technique MIDAR refined (§3): instead of interleaving
    probe pairs like Ally, collect an ID time series per address, unwrap
    the 16-bit wraparounds, fit a velocity, and call two addresses
    aliases when one counter model explains both series. *)


type verdict = Aliases | Not_aliases | Unresponsive

(** A time series of (seconds, IP-ID) samples in probing order. *)
type series = (float * int) list

(** [unwrap series] removes 16-bit wraparounds, yielding monotone
    counter values; [None] when a step cannot be explained by fewer than
    one full wrap (sampling too sparse). *)
val unwrap : series -> (float * float) list option

(** [velocity series] is the least-squares counter velocity in IDs per
    second, or [None] if the series is unusable (fewer than 3 samples,
    unwrap failure, or a non-advancing counter). *)
val velocity : series -> float option

(** [test ?tolerance a b] compares two series: aliases when their
    velocities agree within [tolerance] (relative, default 0.1) and the
    projected counter values coincide at the sample midpoint. *)
val test : ?tolerance:float -> series -> series -> verdict
