open Netcore

type verdict = Aliases | Not_aliases | Unresponsive
type prober = Ipv4.t -> Ipv4.t option

let test prober a b =
  match (prober a, prober b) with
  | Some sa, Some sb ->
    (* Replies sourced from the probed address itself carry no alias
       signal; a shared distinct source is positive evidence, two
       distinct canonical sources are negative evidence. *)
    if Ipv4.equal sa a && Ipv4.equal sb b then Unresponsive
    else if Ipv4.equal sa sb then Aliases
    else if Ipv4.equal sa a || Ipv4.equal sb b then Unresponsive
    else Not_aliases
  | _ -> Unresponsive
