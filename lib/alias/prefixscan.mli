(** The prefixscan inference (§5.3, [Luckie & claffy 2014]): interdomain
    point-to-point links use /30 or /31 subnets, so if address [b]
    observed after [a] in a traceroute is the inbound interface of the
    far router, then [b]'s subnet mate should be an alias of [a] (the
    near router's interface on the same link). Confirming the mate-alias
    simultaneously confirms that [b] is an inbound interface rather than
    a third-party address, and yields the near router's link address. *)

open Netcore

(** The alias oracle combines whatever tests the driver has available
    (Ally, Mercator); it must answer for an arbitrary address pair. *)
type oracle = Ipv4.t -> Ipv4.t -> [ `Aliases | `Not_aliases | `Unknown ]

type result = {
  subnet_len : int;  (** 31 or 30 *)
  mate : Ipv4.t;  (** the inferred near-side interface *)
}

(** [scan oracle ~prev ~hop] tries the /31 mate first, then the /30
    mate, returning the first confirmed alias of [prev]. *)
val scan : oracle -> prev:Ipv4.t -> hop:Ipv4.t -> result option
