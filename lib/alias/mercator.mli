(** The Mercator alias test [Govindan & Tangmunarunkit 2000]: probe an
    unused UDP port on each address; routers that answer with a common
    source address (a loopback or canonical interface) different from the
    probed address reveal that both probed addresses sit on one box. *)

open Netcore

type verdict = Aliases | Not_aliases | Unresponsive

(** A prober returns the source address of the port-unreachable reply to
    a UDP probe, or [None]. *)
type prober = Ipv4.t -> Ipv4.t option

val test : prober -> Ipv4.t -> Ipv4.t -> verdict
