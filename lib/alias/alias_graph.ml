open Netcore

(* Union-find over addresses, plus per-root sets of conflicting roots.
   Unions are refused when the two roots conflict. *)
type t = {
  parent : Ipv4.t Ipv4.Tbl.t;
  rank : int Ipv4.Tbl.t;
  conflicts : Ipv4.Set.t Ipv4.Tbl.t;
  mutable members : Ipv4.Set.t;
}

let create () =
  { parent = Ipv4.Tbl.create 256; rank = Ipv4.Tbl.create 256;
    conflicts = Ipv4.Tbl.create 64; members = Ipv4.Set.empty }

let rec find t a =
  match Ipv4.Tbl.find_opt t.parent a with
  | None -> a
  | Some p ->
    let root = find t p in
    if not (Ipv4.equal root p) then Ipv4.Tbl.replace t.parent a root;
    root

let note t a = t.members <- Ipv4.Set.add a t.members

let conflicts_of t root =
  Option.value ~default:Ipv4.Set.empty (Ipv4.Tbl.find_opt t.conflicts root)

let vetoed t a b =
  let ra = find t a and rb = find t b in
  Ipv4.Set.mem rb (conflicts_of t ra)

let add_not_alias t a b =
  note t a;
  note t b;
  let ra = find t a and rb = find t b in
  if not (Ipv4.equal ra rb) then begin
    Ipv4.Tbl.replace t.conflicts ra (Ipv4.Set.add rb (conflicts_of t ra));
    Ipv4.Tbl.replace t.conflicts rb (Ipv4.Set.add ra (conflicts_of t rb))
  end

let add_alias t a b =
  note t a;
  note t b;
  let ra = find t a and rb = find t b in
  if (not (Ipv4.equal ra rb)) && not (vetoed t a b) then begin
    let ka = Option.value ~default:0 (Ipv4.Tbl.find_opt t.rank ra) in
    let kb = Option.value ~default:0 (Ipv4.Tbl.find_opt t.rank rb) in
    let root, child = if ka >= kb then (ra, rb) else (rb, ra) in
    Ipv4.Tbl.replace t.parent child root;
    if ka = kb then Ipv4.Tbl.replace t.rank root (ka + 1);
    (* Merge conflict sets and retarget references to the old root. *)
    let cc = conflicts_of t child in
    let merged = Ipv4.Set.union (conflicts_of t root) cc in
    if not (Ipv4.Set.is_empty merged) then Ipv4.Tbl.replace t.conflicts root merged;
    Ipv4.Set.iter
      (fun other ->
        let oc = conflicts_of t other in
        Ipv4.Tbl.replace t.conflicts other
          (Ipv4.Set.add root (Ipv4.Set.remove child oc)))
      cc
  end

let same_router t a b = Ipv4.equal (find t a) (find t b)

let groups t =
  let tbl = Ipv4.Tbl.create 256 in
  Ipv4.Set.iter
    (fun a ->
      let root = find t a in
      let cur = Option.value ~default:[] (Ipv4.Tbl.find_opt tbl root) in
      Ipv4.Tbl.replace tbl root (a :: cur))
    t.members;
  Ipv4.Tbl.fold (fun _ g acc -> List.sort Ipv4.compare g :: acc) tbl []
  |> List.sort compare

let group_of t a =
  let root = find t a in
  let g =
    Ipv4.Set.fold
      (fun x acc -> if Ipv4.equal (find t x) root then x :: acc else acc)
      t.members []
  in
  if g = [] then [ a ] else List.sort Ipv4.compare g
