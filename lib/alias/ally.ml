open Netcore

type verdict = Aliases | Not_aliases | Unresponsive
type sampler = Ipv4.t -> int option

(* Strictly increasing mod 2^16: every step advances by less than half
   the ID space, and the whole window wraps at most once. *)
let monotonic = function
  | [] | [ _ ] -> true
  | first :: _ as ids ->
    let rec go prev advance = function
      | [] -> true
      | id :: rest ->
        let d = (id - prev) land 0xFFFF in
        if d = 0 || d >= 32768 then false
        else if advance + d >= 65536 then false
        else go id (advance + d) rest
    in
    go first 0 (List.tl ids)

let trial sampler a b ~samples =
  let rec collect i acc =
    if i >= samples then Some (List.rev acc)
    else
      match (sampler a, sampler b) with
      | Some ia, Some ib -> collect (i + 1) ((ib, `B) :: (ia, `A) :: acc)
      | _ -> None
  in
  match collect 0 [] with
  | None -> Unresponsive
  | Some seq ->
    let ids = List.map fst seq in
    let own tag = List.filter_map (fun (id, t) -> if t = tag then Some id else None) seq in
    (* An address whose own samples are not monotonic (random or constant
       IDs) cannot support a velocity inference at all. *)
    if not (monotonic (own `A) && monotonic (own `B)) then Unresponsive
    else if monotonic ids then Aliases
    else Not_aliases

let test sampler ~wait a b ~trials ~samples =
  let rec go i best =
    if i >= trials then best
    else begin
      if i > 0 then wait ();
      match trial sampler a b ~samples with
      | Not_aliases -> Not_aliases
      | Aliases -> go (i + 1) Aliases
      | Unresponsive -> go (i + 1) best
    end
  in
  go 0 Unresponsive

let trial_proximity sampler a b ~samples ~fudge =
  let rec collect i acc =
    if i >= samples then Some (List.rev acc)
    else
      match (sampler a, sampler b) with
      | Some ia, Some ib -> collect (i + 1) (ib :: ia :: acc)
      | _ -> None
  in
  match collect 0 [] with
  | None -> Unresponsive
  | Some ids ->
    (* The 2002 test accepts "increasing but appropriately proximate"
       values: consecutive samples must stay within the fudge band in
       circular distance, with no strict ordering — which is exactly what
       lets two recently-rebooted counters masquerade as one. *)
    let rec ok moved = function
      | x :: (y :: _ as rest) ->
        let d = (y - x) land 0xFFFF in
        let dist = min d (65536 - d) in
        dist < fudge && ok (moved || dist > 0) rest
      | _ -> moved
    in
    if ok false ids then Aliases else Not_aliases
