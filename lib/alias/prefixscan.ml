open Netcore

type oracle = Ipv4.t -> Ipv4.t -> [ `Aliases | `Not_aliases | `Unknown ]
type result = { subnet_len : int; mate : Ipv4.t }

let scan oracle ~prev ~hop =
  let try_len len =
    match Prefix.subnet_mate hop len with
    | None -> None
    | Some mate ->
      if Ipv4.equal mate prev then
        (* prev and hop share the subnet directly: nothing to test. *)
        Some { subnet_len = len; mate }
      else (
        match oracle mate prev with
        | `Aliases -> Some { subnet_len = len; mate }
        | `Not_aliases | `Unknown -> None)
  in
  match try_len 31 with
  | Some r -> Some r
  | None -> try_len 30
