type verdict = Aliases | Not_aliases | Unresponsive

type series = (float * int) list

let unwrap series =
  match series with
  | [] | [ _ ] -> None
  | (t0, id0) :: rest ->
    let rec go prev_id offset acc = function
      | [] -> Some (List.rev acc)
      | (t, id) :: more ->
        let offset = if id < prev_id then offset +. 65536.0 else offset in
        (* A counter that jumps by more than half the space between two
           consecutive samples is ambiguous: refuse to model it. *)
        let unwrapped = float_of_int id +. offset in
        let prev_unwrapped =
          match acc with
          | (_, v) :: _ -> v
          | [] -> 0.0
        in
        if unwrapped -. prev_unwrapped > 32768.0 then None
        else go id offset ((t, unwrapped) :: acc) more
    in
    go id0 0.0 [ (t0, float_of_int id0) ] rest

let velocity series =
  match unwrap series with
  | None -> None
  | Some points ->
    if List.length points < 3 then None
    else
      let n = float_of_int (List.length points) in
      let sum f = List.fold_left (fun acc p -> acc +. f p) 0.0 points in
      let st = sum fst and sv = sum snd in
      let stt = sum (fun (t, _) -> t *. t) in
      let stv = sum (fun (t, v) -> t *. v) in
      let denom = (n *. stt) -. (st *. st) in
      if abs_float denom < 1e-9 then None
      else
        let slope = ((n *. stv) -. (st *. sv)) /. denom in
        if slope <= 0.0 then None else Some slope

(* Projected counter value at time [t] under the fitted line. *)
let project points slope t =
  let n = float_of_int (List.length points) in
  let st = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 points in
  let sv = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 points in
  let intercept = (sv -. (slope *. st)) /. n in
  intercept +. (slope *. t)

let test ?(tolerance = 0.1) a b =
  match (unwrap a, unwrap b, velocity a, velocity b) with
  | Some pa, Some pb, Some va, Some vb ->
    let rel = abs_float (va -. vb) /. Float.max va vb in
    if rel > tolerance then Not_aliases
    else
      (* Same velocity: compare projections at a common instant modulo
         the 16-bit space (unwrap offsets differ per series). *)
      let t_mid =
        let all = List.map fst (pa @ pb) in
        List.fold_left ( +. ) 0.0 all /. float_of_int (List.length all)
      in
      let slope = (va +. vb) /. 2.0 in
      let da = Float.rem (project pa slope t_mid) 65536.0 in
      let db = Float.rem (project pb slope t_mid) 65536.0 in
      let gap = abs_float (da -. db) in
      let gap = Float.min gap (65536.0 -. gap) in
      if gap < 400.0 then Aliases else Not_aliases
  | _ -> Unresponsive
