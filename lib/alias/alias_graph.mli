(** Accumulates alias evidence and produces routers by transitive
    closure, honouring the paper's guard (§5.3 "Build router-level
    graph"): two addresses are only merged when no measurement suggested
    the pair is not aliases — a negative result blocks the union even if
    positive evidence arrived first or arrives later. *)

open Netcore

type t

val create : unit -> t

(** [add_alias t a b] records positive evidence. The union is applied
    unless a negative constraint exists between the two groups. *)
val add_alias : t -> Ipv4.t -> Ipv4.t -> unit

(** [add_not_alias t a b] records negative evidence; it retroactively
    never splits groups, so drivers must record negatives before the
    positives they should veto (bdrmap's repeated-Ally discipline). *)
val add_not_alias : t -> Ipv4.t -> Ipv4.t -> unit

(** [same_router t a b] is true when the addresses are currently merged. *)
val same_router : t -> Ipv4.t -> Ipv4.t -> bool

(** [vetoed t a b] is true when a negative constraint connects the two
    groups. *)
val vetoed : t -> Ipv4.t -> Ipv4.t -> bool

(** [groups t] is the list of alias sets (routers), each sorted, only
    for addresses ever mentioned. *)
val groups : t -> Ipv4.t list list

(** [group_of t a] is the alias set containing [a] (a singleton when
    never mentioned). *)
val group_of : t -> Ipv4.t -> Ipv4.t list
