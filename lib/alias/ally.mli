(** The Ally alias-resolution test [Spring et al. 2002], hardened the way
    bdrmap hardens it (§5.3 "Limit false aliases"): interleaved IP-ID
    samples from two addresses must come from one central counter, the
    comparison uses MIDAR's strict monotonicity over the merged sequence
    rather than a proximity fudge factor, and the test is repeated (five
    trials at five-minute spacing in the paper) with any later rejection
    overriding earlier acceptances. *)

open Netcore

type verdict = Aliases | Not_aliases | Unresponsive

(** A sampler returns the IP-ID of a fresh probe reply from the address,
    or [None] when unresponsive; the engine's clock advances per probe. *)
type sampler = Ipv4.t -> int option

(** [trial sampler a b ~samples] interleaves [samples] probes to each
    address and applies the monotonicity test. *)
val trial : sampler -> Ipv4.t -> Ipv4.t -> samples:int -> verdict

(** [test sampler ~wait a b ~trials ~samples] repeats {!trial}, invoking
    [wait] between trials (the driver advances the simulated clock); one
    [Not_aliases] refutes the shared-counter hypothesis permanently. *)
val test :
  sampler -> wait:(unit -> unit) -> Ipv4.t -> Ipv4.t -> trials:int -> samples:int -> verdict

(** [monotonic ids] is true when the merged sample sequence strictly
    increases allowing 16-bit wraparound (at most one wrap per window and
    bounded total advance), the MIDAR-style test exposed for reuse. *)
val monotonic : int list -> bool

(** [trial_proximity sampler a b ~samples ~fudge] is the original Ally
    comparison [Spring et al. 2002]: replies must be in-order and within
    [fudge] of each other. Kept as the ablation baseline the paper's
    monotonicity discipline replaces (§5.3 "Limit false aliases"). *)
val trial_proximity : sampler -> Ipv4.t -> Ipv4.t -> samples:int -> fudge:int -> verdict
