open Netcore
module Net = Topogen.Net
module B = Bgpdata

type route_class = Cust | Peer | Prov

type route = {
  cls : route_class;
  dist : int;
  nexthops : Asn.Set.t;
  parent : Asn.t option;
}

type t = {
  net : Net.t;
  rels : B.As_rel.t;
  origin_trie : Asn.Set.t Ptrie.t;
  originated : (Prefix.t * Asn.Set.t) list;
  selective : int list Prefix.Map.t Asn.Map.t;
  cache : (Prefix.t, route Asn.Tbl.t) Hashtbl.t;
  mutable cache_hits : int;
}

let cache_limit = 192

let create net rels ~originated ~selective =
  let origin_trie =
    List.fold_left
      (fun trie (p, asns) ->
        Ptrie.update p
          (function
            | None -> Some asns
            | Some prev -> Some (Asn.Set.union prev asns))
          trie)
      Ptrie.empty originated
  in
  { net; rels; origin_trie; originated; selective;
    cache = Hashtbl.create 256; cache_hits = 0 }

let prefixes t = List.sort_uniq Prefix.compare (List.map fst t.originated)

let origins t p =
  Option.value ~default:Asn.Set.empty (Ptrie.find_exact p t.origin_trie)

let is_origin t asn p = Asn.Set.mem asn (origins t p)

let allowed_links t ~origin ~p =
  match Asn.Map.find_opt origin t.selective with
  | None -> None
  | Some per_prefix -> Prefix.Map.find_opt p per_prefix

(* Propagation for one prefix. Three stages:
   1. "up": customer routes climb c2p edges from the origins;
   2. "peer": one peer edge on top of an up route;
   3. "down": best routes descend p2c edges (Dijkstra over hop counts,
      since a provider route can feed another provider route). *)
let compute t p =
  let os = origins t p in
  let up : int Asn.Tbl.t = Asn.Tbl.create 256 in
  (* Stage 1: BFS in hop order. *)
  let q = Queue.create () in
  Asn.Set.iter
    (fun o ->
      Asn.Tbl.replace up o 0;
      Queue.add o q)
    os;
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    let d = Asn.Tbl.find up x in
    Asn.Set.iter
      (fun prov ->
        if not (Asn.Tbl.mem up prov) then begin
          Asn.Tbl.replace up prov (d + 1);
          Queue.add prov q
        end)
      (B.As_rel.providers t.rels x)
  done;
  (* Stage 2: peer routes. *)
  let peer : int Asn.Tbl.t = Asn.Tbl.create 256 in
  Asn.Tbl.iter
    (fun x d ->
      Asn.Set.iter
        (fun y ->
          if not (Asn.Set.mem y os) then
            match Asn.Tbl.find_opt peer y with
            | Some d' when d' <= d + 1 -> ()
            | _ -> Asn.Tbl.replace peer y (d + 1))
        (B.As_rel.peers t.rels x))
    up;
  (* Stage 3: provider routes via Dijkstra (bucket queue on dist). *)
  let best_non_prov x =
    match (Asn.Tbl.find_opt up x, Asn.Tbl.find_opt peer x) with
    | Some d, _ -> Some (Cust, d)
    | None, Some d -> Some (Peer, d)
    | None, None -> None
  in
  let prov : int Asn.Tbl.t = Asn.Tbl.create 256 in
  let module Pq = Set.Make (struct
    type t = int * Asn.t

    let compare = compare
  end) in
  let pq = ref Pq.empty in
  let push d x = pq := Pq.add (d, x) !pq in
  (* Seed: every AS holding a cust/peer route exports it to customers. *)
  let seed x d =
    Asn.Set.iter
      (fun c ->
        if best_non_prov c = None && not (Asn.Set.mem c os) then
          match Asn.Tbl.find_opt prov c with
          | Some d' when d' <= d + 1 -> ()
          | _ ->
            Asn.Tbl.replace prov c (d + 1);
            push (d + 1) c)
      (B.As_rel.customers t.rels x)
  in
  Asn.Tbl.iter seed up;
  Asn.Tbl.iter (fun x d -> if Asn.Tbl.find_opt up x = None then seed x d) peer;
  while not (Pq.is_empty !pq) do
    let ((d, x) as e) = Pq.min_elt !pq in
    pq := Pq.remove e !pq;
    if Asn.Tbl.find_opt prov x = Some d then
      Asn.Set.iter
        (fun c ->
          if best_non_prov c = None && not (Asn.Set.mem c os) then
            match Asn.Tbl.find_opt prov c with
            | Some d' when d' <= d + 1 -> ()
            | _ ->
              Asn.Tbl.replace prov c (d + 1);
              push (d + 1) c)
        (B.As_rel.customers t.rels x)
  done;
  (* Assemble per-AS best routes with the full next-hop set. *)
  let table : route Asn.Tbl.t = Asn.Tbl.create 256 in
  let consider x =
    if Asn.Set.mem x os then ()
    else
      let best =
        match (Asn.Tbl.find_opt up x, Asn.Tbl.find_opt peer x, Asn.Tbl.find_opt prov x) with
        | Some d, _, _ -> Some (Cust, d)
        | None, Some d, _ -> Some (Peer, d)
        | None, None, Some d -> Some (Prov, d)
        | None, None, None -> None
      in
      match best with
      | None -> ()
      | Some (cls, d) ->
        let nexthops =
          match cls with
          | Cust ->
            Asn.Set.filter
              (fun c -> Asn.Tbl.find_opt up c = Some (d - 1))
              (B.As_rel.customers t.rels x)
          | Peer ->
            Asn.Set.filter
              (fun y -> Asn.Tbl.find_opt up y = Some (d - 1))
              (B.As_rel.peers t.rels x)
          | Prov ->
            Asn.Set.filter
              (fun pr ->
                let bd =
                  match
                    ( Asn.Tbl.find_opt up pr,
                      Asn.Tbl.find_opt peer pr,
                      Asn.Tbl.find_opt prov pr )
                  with
                  | Some d', _, _ -> Some d'
                  | None, Some d', _ -> Some d'
                  | None, None, Some d' -> Some d'
                  | None, None, None -> None
                in
                bd = Some (d - 1) || (d = 1 && Asn.Set.mem pr os))
              (B.As_rel.providers t.rels x)
        in
        (* Direct neighbors of an origin also see the origin itself as a
           next hop at dist 1. *)
        let nexthops =
          if d = 1 then
            Asn.Set.union nexthops
              (Asn.Set.filter
                 (fun o ->
                   B.As_rel.known t.rels x o
                   &&
                   match B.As_rel.rel t.rels ~of_:x ~with_:o with
                   | Some B.As_rel.Customer -> cls = Cust
                   | Some B.As_rel.Peer -> cls = Peer
                   | Some B.As_rel.Provider -> cls = Prov
                   | None -> false)
                 os)
          else nexthops
        in
        if not (Asn.Set.is_empty nexthops) then
          Asn.Tbl.replace table x
            { cls; dist = d; nexthops; parent = Asn.Set.min_elt_opt nexthops }
  in
  Asn.Set.iter consider (Net.asns t.net);
  (* Relationship-only ASes (e.g. router-less siblings) still need rows. *)
  Asn.Set.iter consider (B.As_rel.asns t.rels);
  table

let table_for t p =
  match Hashtbl.find_opt t.cache p with
  | Some tbl ->
    t.cache_hits <- t.cache_hits + 1;
    tbl
  | None ->
    if Hashtbl.length t.cache >= cache_limit then Hashtbl.reset t.cache;
    let tbl = compute t p in
    Hashtbl.add t.cache p tbl;
    tbl

let route t asn p = Asn.Tbl.find_opt (table_for t p) asn

let lookup t asn addr =
  match Ptrie.lpm addr t.origin_trie with
  | None -> None
  | Some (p, _) -> Some (p, route t asn p)

let as_path t asn p =
  if is_origin t asn p then Some [ asn ]
  else
    let rec follow x acc guard =
      if guard > 64 then None
      else if is_origin t x p then Some (List.rev (x :: acc))
      else
        match route t x p with
        | None -> None
        | Some r -> (
          match r.parent with
          | None -> Some (List.rev (x :: acc))
          | Some y -> follow y (x :: acc) (guard + 1))
    in
    follow asn [] 0

let collector_view t collectors =
  List.fold_left
    (fun rib p ->
      List.fold_left
        (fun rib c ->
          match as_path t c p with
          | Some path -> B.Rib.add_route rib p path
          | None -> rib)
        rib collectors)
    B.Rib.empty (prefixes t)
