open Netcore
module Net = Topogen.Net
module B = Bgpdata

type route_class = Cust | Peer | Prov

type route = {
  cls : route_class;
  dist : int;
  nexthops : Asn.Set.t;
  parent : Asn.t option;
}

(* A frozen snapshot is pure immutable data: every originated prefix's
   route table computed once and flattened into dense arrays (prefix
   index x interned-ASN slot), plus a flattened LPM over the origin
   set. Nothing in it is ever written after [freeze], so a snapshot is
   safe to share by reference across pool domains. *)
type snapshot = {
  s_net : Net.t;
  s_rels : B.As_rel.t;
  s_origin_trie : Asn.Set.t Ptrie.t;
  s_originated : (Prefix.t * Asn.Set.t) list;
  s_selective : int list Prefix.Map.t Asn.Map.t;
  s_prefixes : Prefix.t list;  (* sorted, deduplicated *)
  s_asns : Asn.t array;  (* sorted interning table: ASN -> slot by binary search *)
  s_pfx : Prefix.t array;  (* = s_prefixes, for binary search *)
  s_tables : route option array array;  (* s_tables.(prefix slot).(asn slot) *)
  s_lpm : Asn.Set.t Lpm.t;  (* flattened origin_trie *)
}

type t = {
  net : Net.t;
  rels : B.As_rel.t;
  origin_trie : Asn.Set.t Ptrie.t;
  originated : (Prefix.t * Asn.Set.t) list;
  selective : int list Prefix.Map.t Asn.Map.t;
  prefixes_memo : Prefix.t list;
  frozen : snapshot option;
  (* Two-generation route-table cache (young/old with promote-on-hit),
     same shape as [Engine]'s fpath cache: when the young generation
     fills, it becomes the old one and only the previous old generation
     is dropped — a sweep over >192 prefixes keeps its working set
     instead of restarting from an empty table every 192 misses. *)
  mutable young : (Prefix.t, route Asn.Tbl.t) Hashtbl.t;
  mutable old_gen : (Prefix.t, route Asn.Tbl.t) Hashtbl.t;
  mutable cache_hits : int;
}

let cache_limit = 192

let create net rels ~originated ~selective =
  let origin_trie =
    List.fold_left
      (fun trie (p, asns) ->
        Ptrie.update p
          (function
            | None -> Some asns
            | Some prev -> Some (Asn.Set.union prev asns))
          trie)
      Ptrie.empty originated
  in
  { net; rels; origin_trie; originated; selective;
    prefixes_memo = List.sort_uniq Prefix.compare (List.map fst originated);
    frozen = None;
    young = Hashtbl.create 256; old_gen = Hashtbl.create 16; cache_hits = 0 }

let prefixes t = t.prefixes_memo

let origins t p =
  Option.value ~default:Asn.Set.empty (Ptrie.find_exact p t.origin_trie)

let is_origin t asn p = Asn.Set.mem asn (origins t p)

let allowed_links t ~origin ~p =
  match Asn.Map.find_opt origin t.selective with
  | None -> None
  | Some per_prefix -> Prefix.Map.find_opt p per_prefix

(* Propagation for one prefix. Three stages:
   1. "up": customer routes climb c2p edges from the origins;
   2. "peer": one peer edge on top of an up route;
   3. "down": best routes descend p2c edges (Dijkstra over hop counts,
      since a provider route can feed another provider route). *)
let compute t p =
  let os = origins t p in
  let up : int Asn.Tbl.t = Asn.Tbl.create 256 in
  (* Stage 1: BFS in hop order. *)
  let q = Queue.create () in
  Asn.Set.iter
    (fun o ->
      Asn.Tbl.replace up o 0;
      Queue.add o q)
    os;
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    let d = Asn.Tbl.find up x in
    Asn.Set.iter
      (fun prov ->
        if not (Asn.Tbl.mem up prov) then begin
          Asn.Tbl.replace up prov (d + 1);
          Queue.add prov q
        end)
      (B.As_rel.providers t.rels x)
  done;
  (* Stage 2: peer routes. *)
  let peer : int Asn.Tbl.t = Asn.Tbl.create 256 in
  Asn.Tbl.iter
    (fun x d ->
      Asn.Set.iter
        (fun y ->
          if not (Asn.Set.mem y os) then
            match Asn.Tbl.find_opt peer y with
            | Some d' when d' <= d + 1 -> ()
            | _ -> Asn.Tbl.replace peer y (d + 1))
        (B.As_rel.peers t.rels x))
    up;
  (* Stage 3: provider routes via Dijkstra. Lazy deletion on a binary
     heap: a relaxation pushes a fresh (dist, asn) entry and stale ones
     are skipped on pop, so the final [prov] table is identical to the
     old set-as-priority-queue version whatever the tie order. *)
  let best_non_prov x =
    match (Asn.Tbl.find_opt up x, Asn.Tbl.find_opt peer x) with
    | Some d, _ -> Some (Cust, d)
    | None, Some d -> Some (Peer, d)
    | None, None -> None
  in
  let prov : int Asn.Tbl.t = Asn.Tbl.create 256 in
  let pq =
    Heap.create (fun (d1, x1) (d2, x2) ->
        match Int.compare d1 d2 with 0 -> Asn.compare x1 x2 | c -> c)
  in
  (* Seed: every AS holding a cust/peer route exports it to customers. *)
  let seed x d =
    Asn.Set.iter
      (fun c ->
        if best_non_prov c = None && not (Asn.Set.mem c os) then
          match Asn.Tbl.find_opt prov c with
          | Some d' when d' <= d + 1 -> ()
          | _ ->
            Asn.Tbl.replace prov c (d + 1);
            Heap.push pq (d + 1, c))
      (B.As_rel.customers t.rels x)
  in
  Asn.Tbl.iter seed up;
  Asn.Tbl.iter (fun x d -> if Asn.Tbl.find_opt up x = None then seed x d) peer;
  let rec drain () =
    match Heap.pop_opt pq with
    | None -> ()
    | Some (d, x) ->
      if Asn.Tbl.find_opt prov x = Some d then
        Asn.Set.iter
          (fun c ->
            if best_non_prov c = None && not (Asn.Set.mem c os) then
              match Asn.Tbl.find_opt prov c with
              | Some d' when d' <= d + 1 -> ()
              | _ ->
                Asn.Tbl.replace prov c (d + 1);
                Heap.push pq (d + 1, c))
          (B.As_rel.customers t.rels x);
      drain ()
  in
  drain ();
  (* Assemble per-AS best routes with the full next-hop set. *)
  let table : route Asn.Tbl.t = Asn.Tbl.create 256 in
  let consider x =
    if Asn.Set.mem x os then ()
    else
      let best =
        match (Asn.Tbl.find_opt up x, Asn.Tbl.find_opt peer x, Asn.Tbl.find_opt prov x) with
        | Some d, _, _ -> Some (Cust, d)
        | None, Some d, _ -> Some (Peer, d)
        | None, None, Some d -> Some (Prov, d)
        | None, None, None -> None
      in
      match best with
      | None -> ()
      | Some (cls, d) ->
        let nexthops =
          match cls with
          | Cust ->
            Asn.Set.filter
              (fun c -> Asn.Tbl.find_opt up c = Some (d - 1))
              (B.As_rel.customers t.rels x)
          | Peer ->
            Asn.Set.filter
              (fun y -> Asn.Tbl.find_opt up y = Some (d - 1))
              (B.As_rel.peers t.rels x)
          | Prov ->
            Asn.Set.filter
              (fun pr ->
                let bd =
                  match
                    ( Asn.Tbl.find_opt up pr,
                      Asn.Tbl.find_opt peer pr,
                      Asn.Tbl.find_opt prov pr )
                  with
                  | Some d', _, _ -> Some d'
                  | None, Some d', _ -> Some d'
                  | None, None, Some d' -> Some d'
                  | None, None, None -> None
                in
                bd = Some (d - 1) || (d = 1 && Asn.Set.mem pr os))
              (B.As_rel.providers t.rels x)
        in
        (* Direct neighbors of an origin also see the origin itself as a
           next hop at dist 1. *)
        let nexthops =
          if d = 1 then
            Asn.Set.union nexthops
              (Asn.Set.filter
                 (fun o ->
                   B.As_rel.known t.rels x o
                   &&
                   match B.As_rel.rel t.rels ~of_:x ~with_:o with
                   | Some B.As_rel.Customer -> cls = Cust
                   | Some B.As_rel.Peer -> cls = Peer
                   | Some B.As_rel.Provider -> cls = Prov
                   | None -> false)
                 os)
          else nexthops
        in
        if not (Asn.Set.is_empty nexthops) then
          Asn.Tbl.replace table x
            { cls; dist = d; nexthops; parent = Asn.Set.min_elt_opt nexthops }
  in
  Asn.Set.iter consider (Net.asns t.net);
  (* Relationship-only ASes (e.g. router-less siblings) still need rows. *)
  Asn.Set.iter consider (B.As_rel.asns t.rels);
  table

let store_young t p tbl =
  if Hashtbl.length t.young >= cache_limit then begin
    t.old_gen <- t.young;
    t.young <- Hashtbl.create 256
  end;
  Hashtbl.add t.young p tbl

let table_for t p =
  match Hashtbl.find_opt t.young p with
  | Some tbl ->
    t.cache_hits <- t.cache_hits + 1;
    tbl
  | None -> (
    match Hashtbl.find_opt t.old_gen p with
    | Some tbl ->
      t.cache_hits <- t.cache_hits + 1;
      store_young t p tbl;
      tbl
    | None ->
      let tbl = compute t p in
      store_young t p tbl;
      tbl)

(* Binary searches into the snapshot's interning arrays. A miss is a
   correct [None]: a prefix outside [s_pfx] was never originated, so
   the lazy [compute] would build an empty table for it, and [consider]
   only ever adds rows for ASNs inside [s_asns]. *)
let slot_of_array cmp a x =
  let rec go lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      match cmp x a.(mid) with
      | 0 -> mid
      | c when c < 0 -> go lo mid
      | _ -> go (mid + 1) hi
  in
  go 0 (Array.length a)

let snap_route s asn p =
  let pi = slot_of_array Prefix.compare s.s_pfx p in
  if pi < 0 then None
  else
    let ai = slot_of_array Asn.compare s.s_asns asn in
    if ai < 0 then None else s.s_tables.(pi).(ai)

let route t asn p =
  match t.frozen with
  | Some s -> snap_route s asn p
  | None -> Asn.Tbl.find_opt (table_for t p) asn

let lookup t asn addr =
  match t.frozen with
  | Some s -> (
    match Lpm.lookup s.s_lpm addr with
    | None -> None
    | Some (p, _) -> Some (p, snap_route s asn p))
  | None -> (
    match Ptrie.lpm addr t.origin_trie with
    | None -> None
    | Some (p, _) -> Some (p, route t asn p))

let as_path t asn p =
  if is_origin t asn p then Some [ asn ]
  else
    let rec follow x acc guard =
      if guard > 64 then None
      else if is_origin t x p then Some (List.rev (x :: acc))
      else
        match route t x p with
        | None -> None
        | Some r -> (
          match r.parent with
          | None -> Some (List.rev (x :: acc))
          | Some y -> follow y (x :: acc) (guard + 1))
    in
    follow asn [] 0

let collector_view t collectors =
  List.fold_left
    (fun rib p ->
      List.fold_left
        (fun rib c ->
          match as_path t c p with
          | Some path -> B.Rib.add_route rib p path
          | None -> rib)
        rib collectors)
    B.Rib.empty (prefixes t)

let freeze t =
  match t.frozen with
  | Some s -> s
  | None ->
    Obs.Metrics.incr "routing.snapshot.builds";
    let s_pfx = Array.of_list t.prefixes_memo in
    let asn_set = Asn.Set.union (Net.asns t.net) (B.As_rel.asns t.rels) in
    let s_asns = Array.of_list (Asn.Set.elements asn_set) in
    let n = Array.length s_asns in
    let s_tables =
      Array.map
        (fun p ->
          let tbl = compute t p in
          Array.init n (fun i -> Asn.Tbl.find_opt tbl s_asns.(i)))
        s_pfx
    in
    { s_net = t.net;
      s_rels = t.rels;
      s_origin_trie = t.origin_trie;
      s_originated = t.originated;
      s_selective = t.selective;
      s_prefixes = t.prefixes_memo;
      s_asns;
      s_pfx;
      s_tables;
      s_lpm = Lpm.build (Ptrie.bindings t.origin_trie) }

let of_snapshot s =
  Obs.Metrics.incr "routing.snapshot.attaches";
  { net = s.s_net;
    rels = s.s_rels;
    origin_trie = s.s_origin_trie;
    originated = s.s_originated;
    selective = s.s_selective;
    prefixes_memo = s.s_prefixes;
    frozen = Some s;
    young = Hashtbl.create 16;
    old_gen = Hashtbl.create 16;
    cache_hits = 0 }

module Snapshot = struct
  type t = snapshot

  let route = snap_route

  let lookup s asn addr =
    match Lpm.lookup s.s_lpm addr with
    | None -> None
    | Some (p, _) -> Some (p, snap_route s asn p)

  let as_path s asn p =
    let is_origin_ x =
      match Ptrie.find_exact p s.s_origin_trie with
      | None -> false
      | Some os -> Asn.Set.mem x os
    in
    if is_origin_ asn then Some [ asn ]
    else
      let rec follow x acc guard =
        if guard > 64 then None
        else if is_origin_ x then Some (List.rev (x :: acc))
        else
          match snap_route s x p with
          | None -> None
          | Some r -> (
            match r.parent with
            | None -> Some (List.rev (x :: acc))
            | Some y -> follow y (x :: acc) (guard + 1))
      in
      follow asn [] 0

  let prefixes s = s.s_prefixes
  let prefix_count s = Array.length s.s_pfx
  let asn_count s = Array.length s.s_asns
end
