open Netcore
module Net = Topogen.Net
module B = Bgpdata

type route_class = Cust | Peer | Prov

type route = {
  cls : route_class;
  dist : int;
  nexthops : Asn.Set.t;
  parent : Asn.t option;
}

(* A frozen snapshot is pure immutable data: every originated prefix's
   route table computed once and packed into flat GC-invisible arenas.
   A route is a single int word in [s_words] (see the layout below);
   its next-hop set is a contiguous ascending segment of [s_arena].
   Both live in int Bigarrays — out-of-heap plain words the GC never
   traces — so a snapshot's bulk costs no major-collection work, is
   safe to share by reference across pool domains, and serializes to
   raw bytes ([Snapshot.to_bytes]) for other *processes*.

   Route word layout (0 = no route; dist >= 1 for every stored route,
   so a valid word is never 0):

     bits  0-1   route class (0 Cust, 1 Peer, 2 Prov)
     bits  2-11  dist (AS-path hops to the origin, 10 bits)
     bits 12-31  next-hop count (20 bits)
     bits 32-61  arena offset of the next-hop segment (30 bits)

   Next-hop segments are interned: identical sets share one arena
   segment (the same few sets recur across thousands of prefixes).
   Segments store ASN *slots* in ascending order, so the first entry is
   the minimum — exactly the boxed representation's [parent]. *)
type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type snapshot = {
  s_net : Net.t;
  s_rels : B.As_rel.t;
  s_origin_trie : Asn.Set.t Ptrie.t;
  s_originated : (Prefix.t * Asn.Set.t) list;
  s_selective : int list Prefix.Map.t Asn.Map.t;
  s_prefixes : Prefix.t list;  (* sorted, deduplicated *)
  s_asns : Asn.t array;  (* sorted interning table: ASN -> slot by binary search *)
  s_pfx : Prefix.t array;  (* = s_prefixes, for binary search *)
  s_words : int_ba;  (* packed route word at (prefix slot * |s_asns| + asn slot) *)
  s_arena : int_ba;  (* interned next-hop segments (ASN slots, ascending) *)
  s_lpm : int Lpm.t;  (* origin LPM; value = prefix slot into s_pfx *)
}

let cls_code = function Cust -> 0 | Peer -> 1 | Prov -> 2
let cls_of_code c = match c land 3 with 0 -> Cust | 1 -> Peer | _ -> Prov
let w_dist w = (w lsr 2) land 0x3FF
let w_count w = (w lsr 12) land 0xFFFFF
let w_off w = (w lsr 32) land 0x3FFF_FFFF

let pack_word ~cls ~dist ~count ~off =
  if dist < 1 || dist > 0x3FF then
    invalid_arg (Printf.sprintf "Bgp.freeze: dist %d outside packable range" dist);
  if count < 1 || count > 0xFFFFF then
    invalid_arg (Printf.sprintf "Bgp.freeze: %d next hops outside packable range" count);
  if off < 0 || off > 0x3FFF_FFFF then
    invalid_arg (Printf.sprintf "Bgp.freeze: arena offset %d outside packable range" off);
  cls_code cls lor (dist lsl 2) lor (count lsl 12) lor (off lsl 32)

type t = {
  net : Net.t;
  rels : B.As_rel.t;
  origin_trie : Asn.Set.t Ptrie.t;
  originated : (Prefix.t * Asn.Set.t) list;
  selective : int list Prefix.Map.t Asn.Map.t;
  prefixes_memo : Prefix.t list;
  frozen : snapshot option;
  (* Two-generation route-table cache (young/old with promote-on-hit),
     same shape as [Engine]'s fpath cache: when the young generation
     fills, it becomes the old one and only the previous old generation
     is dropped — a sweep over >192 prefixes keeps its working set
     instead of restarting from an empty table every 192 misses. *)
  mutable young : (Prefix.t, route Asn.Tbl.t) Hashtbl.t;
  mutable old_gen : (Prefix.t, route Asn.Tbl.t) Hashtbl.t;
  mutable cache_hits : int;
}

let cache_limit = 192

let create net rels ~originated ~selective =
  let origin_trie =
    List.fold_left
      (fun trie (p, asns) ->
        Ptrie.update p
          (function
            | None -> Some asns
            | Some prev -> Some (Asn.Set.union prev asns))
          trie)
      Ptrie.empty originated
  in
  { net; rels; origin_trie; originated; selective;
    prefixes_memo = List.sort_uniq Prefix.compare (List.map fst originated);
    frozen = None;
    young = Hashtbl.create 256; old_gen = Hashtbl.create 16; cache_hits = 0 }

let prefixes t = t.prefixes_memo

let origins t p =
  Option.value ~default:Asn.Set.empty (Ptrie.find_exact p t.origin_trie)

let is_origin t asn p = Asn.Set.mem asn (origins t p)

let allowed_links t ~origin ~p =
  match Asn.Map.find_opt origin t.selective with
  | None -> None
  | Some per_prefix -> Prefix.Map.find_opt p per_prefix

(* Propagation for one prefix. Three stages:
   1. "up": customer routes climb c2p edges from the origins;
   2. "peer": one peer edge on top of an up route;
   3. "down": best routes descend p2c edges (Dijkstra over hop counts,
      since a provider route can feed another provider route). *)
let compute t p =
  let os = origins t p in
  let up : int Asn.Tbl.t = Asn.Tbl.create 256 in
  (* Stage 1: BFS in hop order. *)
  let q = Queue.create () in
  Asn.Set.iter
    (fun o ->
      Asn.Tbl.replace up o 0;
      Queue.add o q)
    os;
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    let d = Asn.Tbl.find up x in
    Asn.Set.iter
      (fun prov ->
        if not (Asn.Tbl.mem up prov) then begin
          Asn.Tbl.replace up prov (d + 1);
          Queue.add prov q
        end)
      (B.As_rel.providers t.rels x)
  done;
  (* Stage 2: peer routes. *)
  let peer : int Asn.Tbl.t = Asn.Tbl.create 256 in
  Asn.Tbl.iter
    (fun x d ->
      Asn.Set.iter
        (fun y ->
          if not (Asn.Set.mem y os) then
            match Asn.Tbl.find_opt peer y with
            | Some d' when d' <= d + 1 -> ()
            | _ -> Asn.Tbl.replace peer y (d + 1))
        (B.As_rel.peers t.rels x))
    up;
  (* Stage 3: provider routes via Dijkstra. Lazy deletion on a binary
     heap: a relaxation pushes a fresh (dist, asn) entry and stale ones
     are skipped on pop, so the final [prov] table is identical to the
     old set-as-priority-queue version whatever the tie order. *)
  let best_non_prov x =
    match (Asn.Tbl.find_opt up x, Asn.Tbl.find_opt peer x) with
    | Some d, _ -> Some (Cust, d)
    | None, Some d -> Some (Peer, d)
    | None, None -> None
  in
  let prov : int Asn.Tbl.t = Asn.Tbl.create 256 in
  let pq =
    Heap.create (fun (d1, x1) (d2, x2) ->
        match Int.compare d1 d2 with 0 -> Asn.compare x1 x2 | c -> c)
  in
  (* Seed: every AS holding a cust/peer route exports it to customers. *)
  let seed x d =
    Asn.Set.iter
      (fun c ->
        if best_non_prov c = None && not (Asn.Set.mem c os) then
          match Asn.Tbl.find_opt prov c with
          | Some d' when d' <= d + 1 -> ()
          | _ ->
            Asn.Tbl.replace prov c (d + 1);
            Heap.push pq (d + 1, c))
      (B.As_rel.customers t.rels x)
  in
  Asn.Tbl.iter seed up;
  Asn.Tbl.iter (fun x d -> if Asn.Tbl.find_opt up x = None then seed x d) peer;
  let rec drain () =
    match Heap.pop_opt pq with
    | None -> ()
    | Some (d, x) ->
      if Asn.Tbl.find_opt prov x = Some d then
        Asn.Set.iter
          (fun c ->
            if best_non_prov c = None && not (Asn.Set.mem c os) then
              match Asn.Tbl.find_opt prov c with
              | Some d' when d' <= d + 1 -> ()
              | _ ->
                Asn.Tbl.replace prov c (d + 1);
                Heap.push pq (d + 1, c))
          (B.As_rel.customers t.rels x);
      drain ()
  in
  drain ();
  (* Assemble per-AS best routes with the full next-hop set. *)
  let table : route Asn.Tbl.t = Asn.Tbl.create 256 in
  let consider x =
    if Asn.Set.mem x os then ()
    else
      let best =
        match (Asn.Tbl.find_opt up x, Asn.Tbl.find_opt peer x, Asn.Tbl.find_opt prov x) with
        | Some d, _, _ -> Some (Cust, d)
        | None, Some d, _ -> Some (Peer, d)
        | None, None, Some d -> Some (Prov, d)
        | None, None, None -> None
      in
      match best with
      | None -> ()
      | Some (cls, d) ->
        let nexthops =
          match cls with
          | Cust ->
            Asn.Set.filter
              (fun c -> Asn.Tbl.find_opt up c = Some (d - 1))
              (B.As_rel.customers t.rels x)
          | Peer ->
            Asn.Set.filter
              (fun y -> Asn.Tbl.find_opt up y = Some (d - 1))
              (B.As_rel.peers t.rels x)
          | Prov ->
            Asn.Set.filter
              (fun pr ->
                let bd =
                  match
                    ( Asn.Tbl.find_opt up pr,
                      Asn.Tbl.find_opt peer pr,
                      Asn.Tbl.find_opt prov pr )
                  with
                  | Some d', _, _ -> Some d'
                  | None, Some d', _ -> Some d'
                  | None, None, Some d' -> Some d'
                  | None, None, None -> None
                in
                bd = Some (d - 1) || (d = 1 && Asn.Set.mem pr os))
              (B.As_rel.providers t.rels x)
        in
        (* Direct neighbors of an origin also see the origin itself as a
           next hop at dist 1. *)
        let nexthops =
          if d = 1 then
            Asn.Set.union nexthops
              (Asn.Set.filter
                 (fun o ->
                   B.As_rel.known t.rels x o
                   &&
                   match B.As_rel.rel t.rels ~of_:x ~with_:o with
                   | Some B.As_rel.Customer -> cls = Cust
                   | Some B.As_rel.Peer -> cls = Peer
                   | Some B.As_rel.Provider -> cls = Prov
                   | None -> false)
                 os)
          else nexthops
        in
        if not (Asn.Set.is_empty nexthops) then
          Asn.Tbl.replace table x
            { cls; dist = d; nexthops; parent = Asn.Set.min_elt_opt nexthops }
  in
  Asn.Set.iter consider (Net.asns t.net);
  (* Relationship-only ASes (e.g. router-less siblings) still need rows. *)
  Asn.Set.iter consider (B.As_rel.asns t.rels);
  table

let store_young t p tbl =
  if Hashtbl.length t.young >= cache_limit then begin
    t.old_gen <- t.young;
    t.young <- Hashtbl.create 256
  end;
  Hashtbl.add t.young p tbl

let table_for t p =
  match Hashtbl.find_opt t.young p with
  | Some tbl ->
    t.cache_hits <- t.cache_hits + 1;
    tbl
  | None -> (
    match Hashtbl.find_opt t.old_gen p with
    | Some tbl ->
      t.cache_hits <- t.cache_hits + 1;
      store_young t p tbl;
      tbl
    | None ->
      let tbl = compute t p in
      store_young t p tbl;
      tbl)

(* Binary searches into the snapshot's interning arrays. A miss is a
   correct [None]: a prefix outside [s_pfx] was never originated, so
   the lazy [compute] would build an empty table for it, and [consider]
   only ever adds rows for ASNs inside [s_asns]. *)
let slot_of_array cmp a x =
  let rec go lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      match cmp x a.(mid) with
      | 0 -> mid
      | c when c < 0 -> go lo mid
      | _ -> go (mid + 1) hi
  in
  go 0 (Array.length a)

(* Packed-word access: 0 means "no route". Decoding rebuilds the boxed
   [route] record on demand; the zero-allocation accessors below read
   straight out of the word for hot loops that never need the record. *)
let word_at s ~pslot ~aslot =
  Bigarray.Array1.get s.s_words ((pslot * Array.length s.s_asns) + aslot)

let decode_route s w =
  let off = w_off w in
  let cnt = w_count w in
  let nexthops = ref Asn.Set.empty in
  for k = off + cnt - 1 downto off do
    nexthops := Asn.Set.add s.s_asns.(Bigarray.Array1.get s.s_arena k) !nexthops
  done;
  { cls = cls_of_code w;
    dist = w_dist w;
    nexthops = !nexthops;
    (* Segments are ascending, so the first entry is the minimum — the
       boxed representation's canonical parent. *)
    parent = Some s.s_asns.(Bigarray.Array1.get s.s_arena off) }

let route_at s ~pslot ~aslot =
  if pslot < 0 || aslot < 0 then None
  else match word_at s ~pslot ~aslot with 0 -> None | w -> Some (decode_route s w)

let snap_route s asn p =
  let pi = slot_of_array Prefix.compare s.s_pfx p in
  if pi < 0 then None
  else
    let ai = slot_of_array Asn.compare s.s_asns asn in
    route_at s ~pslot:pi ~aslot:ai

let route t asn p =
  match t.frozen with
  | Some s -> snap_route s asn p
  | None -> Asn.Tbl.find_opt (table_for t p) asn

(* Like [lookup], but also exposes the matched prefix's interned slot
   (-1 on the lazy path): frozen callers that loop over lookups — the
   forwarding plan's egress table, the crossing-link sweeps — reuse the
   slot directly instead of re-binary-searching the prefix per query. *)
let lookup_slot t asn addr =
  match t.frozen with
  | Some s ->
    let i = Lpm.lookup_idx s.s_lpm addr in
    if i < 0 then None
    else
      let pslot = Lpm.value_at s.s_lpm i in
      let ai = slot_of_array Asn.compare s.s_asns asn in
      Some (s.s_pfx.(pslot), pslot, route_at s ~pslot ~aslot:ai)
  | None -> (
    match Ptrie.lpm addr t.origin_trie with
    | None -> None
    | Some (p, _) -> Some (p, -1, route t asn p))

let lookup t asn addr =
  match lookup_slot t asn addr with
  | None -> None
  | Some (p, _, r) -> Some (p, r)

let as_path t asn p =
  if is_origin t asn p then Some [ asn ]
  else
    let rec follow x acc guard =
      if guard > 64 then None
      else if is_origin t x p then Some (List.rev (x :: acc))
      else
        match route t x p with
        | None -> None
        | Some r -> (
          match r.parent with
          | None -> Some (List.rev (x :: acc))
          | Some y -> follow y (x :: acc) (guard + 1))
    in
    follow asn [] 0

let collector_view t collectors =
  List.fold_left
    (fun rib p ->
      List.fold_left
        (fun rib c ->
          match as_path t c p with
          | Some path -> B.Rib.add_route rib p path
          | None -> rib)
        rib collectors)
    B.Rib.empty (prefixes t)

let freeze ?(counter = "routing.snapshot.builds") t =
  match t.frozen with
  | Some s -> s
  | None ->
    Obs.Metrics.incr counter;
    let s_pfx = Array.of_list t.prefixes_memo in
    let asn_set = Asn.Set.union (Net.asns t.net) (B.As_rel.asns t.rels) in
    let s_asns = Array.of_list (Asn.Set.elements asn_set) in
    let n = Array.length s_asns in
    let np = Array.length s_pfx in
    let aslot_tbl = Asn.Tbl.create ((2 * n) + 1) in
    Array.iteri (fun i a -> Asn.Tbl.replace aslot_tbl a i) s_asns;
    let aslot_of a =
      match Asn.Tbl.find_opt aslot_tbl a with
      | Some i -> i
      | None -> invalid_arg (Printf.sprintf "Bgp.freeze: next hop AS%d unknown" a)
    in
    let s_words = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (np * n) in
    Bigarray.Array1.fill s_words 0;
    (* Growable arena with segment interning: identical next-hop sets
       (as ascending slot lists) share one segment. *)
    let arena = ref (Array.make 1024 0) in
    let alen = ref 0 in
    let segments : (int list, int) Hashtbl.t = Hashtbl.create 4096 in
    let intern_segment slots =
      match Hashtbl.find_opt segments slots with
      | Some off -> off
      | None ->
        let off = !alen in
        List.iter
          (fun s ->
            if !alen >= Array.length !arena then begin
              let bigger = Array.make (2 * Array.length !arena) 0 in
              Array.blit !arena 0 bigger 0 !alen;
              arena := bigger
            end;
            !arena.(!alen) <- s;
            incr alen)
          slots;
        Hashtbl.replace segments slots off;
        off
    in
    Array.iteri
      (fun pi p ->
        let tbl = compute t p in
        let base = pi * n in
        Asn.Tbl.iter
          (fun asn (r : route) ->
            (* [Asn.Set.elements] is ascending, and slots follow ASN
               order, so the slot list is ascending too. *)
            let slots = List.map aslot_of (Asn.Set.elements r.nexthops) in
            let off = intern_segment slots in
            Bigarray.Array1.set s_words (base + aslot_of asn)
              (pack_word ~cls:r.cls ~dist:r.dist ~count:(List.length slots) ~off))
          tbl)
      s_pfx;
    let s_arena = Bigarray.Array1.create Bigarray.int Bigarray.c_layout !alen in
    for i = 0 to !alen - 1 do
      Bigarray.Array1.set s_arena i !arena.(i)
    done;
    { s_net = t.net;
      s_rels = t.rels;
      s_origin_trie = t.origin_trie;
      s_originated = t.originated;
      s_selective = t.selective;
      s_prefixes = t.prefixes_memo;
      s_asns;
      s_pfx;
      s_words;
      s_arena;
      s_lpm = Lpm.build (List.mapi (fun i p -> (p, i)) t.prefixes_memo) }

(* ------------------------------------------------------------------ *)
(* Incremental re-freeze: dirty-prefix deltas over a frozen snapshot.  *)

(* A batch of topology changes in the vocabulary the delta path needs
   (produced by [Topogen.Evolve]). The contract that keeps the patch
   sound:
   - new ASes are pure stubs (provider relationships only, providers
     all present in the old snapshot) with ASNs strictly above every
     ASN the old snapshot interned, so they append to the end of the
     sorted slot table and every old slot survives verbatim;
   - [ch_removed_edges] lists every AS pair whose relationship was
     dropped. Such a drop dirties exactly the prefixes where either
     endpoint held the other in its next-hop segment: an edge outside
     every next-hop set carries no best route and feeds no distance
     table, so removing it cannot change any AS's table for that
     prefix (transitive effects always pass through a next hop);
   - [ch_dirty_prefixes] lists every surviving prefix whose origin set
     changed;
   - [ch_removed_prefixes] / new prefixes are detected from the prefix
     sets themselves;
   - [ch_links_changed] lists AS pairs whose physical interconnects
     changed without a relationship change — invisible to BGP, dirt
     for the forwarding plan only. *)
type churn = {
  ch_removed_edges : (Asn.t * Asn.t) list;
  ch_new_stubs : (Asn.t * Asn.Set.t) list;
  ch_dirty_prefixes : Prefix.t list;
  ch_removed_prefixes : Prefix.t list;
  ch_links_changed : (Asn.t * Asn.t) list;
}

let no_churn =
  { ch_removed_edges = []; ch_new_stubs = []; ch_dirty_prefixes = [];
    ch_removed_prefixes = []; ch_links_changed = [] }

(* Fold a [Topogen.Evolve] event batch into the delta vocabulary. The
   mapping relies on the evolution invariants: aggregate/deaggregate
   replace prefixes (the replacements are detected as new, the old ones
   land in [ch_removed_prefixes]), link add/remove keep relationships
   intact (forwarding dirt only), and a new customer is a pure stub. *)
let churn_of_events evs =
  let module E = Topogen.Evolve in
  List.fold_left
    (fun c (te : E.timed) ->
      match te.E.ev with
      | E.Added_link { x; y; _ } | E.Removed_link { x; y; _ } ->
        { c with ch_links_changed = (x, y) :: c.ch_links_changed }
      | E.Customer_joined { asn; providers; _ } ->
        { c with ch_new_stubs = (asn, providers) :: c.ch_new_stubs }
      | E.Depeered { x; y } ->
        { c with ch_removed_edges = (x, y) :: c.ch_removed_edges }
      | E.Aggregated { halves = h1, h2; _ } ->
        { c with ch_removed_prefixes = h1 :: h2 :: c.ch_removed_prefixes }
      | E.Deaggregated { parent; _ } ->
        { c with ch_removed_prefixes = parent :: c.ch_removed_prefixes })
    no_churn evs

type refreeze_stats = {
  rf_total : int;
  rf_dirty : int;
  rf_dirty_prefixes : Prefix.t list;
  rf_fallback : bool;
}

(* [refreeze t ~old churn]: [t] is the fresh (unfrozen) propagation
   state of the post-churn world, [old] the pre-churn snapshot. Only
   dirty prefixes re-propagate; every clean row is a Bigarray blit
   whose packed words stay valid verbatim because the old arena is the
   new arena's prefix and old ASN slots are stable. New-AS columns on
   clean rows are filled by the stub rule: a pure stub's only possible
   route is a provider route one hop past its providers' best — the
   same answer [compute] derives, since a stub feeds nothing back into
   anyone else's table. If the append-only ASN contract is violated,
   the patch degrades to a full recompute (counted under
   [routing.snapshot.patch_fallbacks]) rather than guessing. *)
let refreeze t ~old churn =
  Obs.Metrics.incr "routing.snapshot.patches";
  let s_pfx = Array.of_list t.prefixes_memo in
  let asn_set = Asn.Set.union (Net.asns t.net) (B.As_rel.asns t.rels) in
  let s_asns = Array.of_list (Asn.Set.elements asn_set) in
  let n = Array.length s_asns in
  let np = Array.length s_pfx in
  let n_old = Array.length old.s_asns in
  let np_old = Array.length old.s_pfx in
  let asns_ok =
    n >= n_old
    &&
    let ok = ref true in
    for i = 0 to n_old - 1 do
      if not (Asn.equal s_asns.(i) old.s_asns.(i)) then ok := false
    done;
    !ok
  in
  let stub_providers = Asn.Tbl.create 8 in
  List.iter
    (fun (c, provs) -> Asn.Tbl.replace stub_providers c provs)
    churn.ch_new_stubs;
  let stubs_ok = ref true in
  for i = n_old to n - 1 do
    match Asn.Tbl.find_opt stub_providers s_asns.(i) with
    | None -> stubs_ok := false
    | Some provs ->
      Asn.Set.iter
        (fun pr ->
          if slot_of_array Asn.compare old.s_asns pr < 0 then stubs_ok := false)
        provs
  done;
  let fallback = not (asns_ok && !stubs_ok) in
  if fallback then Obs.Metrics.incr "routing.snapshot.patch_fallbacks";
  (* Old pslot <-> new pslot translation by merge walk (both sorted). *)
  let old2new = Array.make (max 1 np_old) (-1) in
  let new2old = Array.make (max 1 np) (-1) in
  let i = ref 0 and j = ref 0 in
  while !i < np_old && !j < np do
    match Prefix.compare old.s_pfx.(!i) s_pfx.(!j) with
    | 0 ->
      old2new.(!i) <- !j;
      new2old.(!j) <- !i;
      incr i;
      incr j
    | c when c < 0 -> incr i
    | _ -> incr j
  done;
  let dirty = Array.make (max 1 np) fallback in
  List.iter
    (fun p ->
      let s = slot_of_array Prefix.compare s_pfx p in
      if s >= 0 then dirty.(s) <- true)
    churn.ch_dirty_prefixes;
  for pn = 0 to np - 1 do
    if new2old.(pn) < 0 then dirty.(pn) <- true
  done;
  if not fallback then begin
    let seg_mem w target =
      let off = w_off w in
      let hi = off + w_count w in
      let found = ref false in
      for k = off to hi - 1 do
        if Bigarray.Array1.get old.s_arena k = target then found := true
      done;
      !found
    in
    List.iter
      (fun (x, y) ->
        let ax = slot_of_array Asn.compare old.s_asns x
        and ay = slot_of_array Asn.compare old.s_asns y in
        if ax >= 0 && ay >= 0 then
          for po = 0 to np_old - 1 do
            let pn = old2new.(po) in
            if pn >= 0 && not dirty.(pn) then begin
              let wx = word_at old ~pslot:po ~aslot:ax in
              if wx <> 0 && seg_mem wx ay then dirty.(pn) <- true
              else
                let wy = word_at old ~pslot:po ~aslot:ay in
                if wy <> 0 && seg_mem wy ax then dirty.(pn) <- true
            end
          done)
      churn.ch_removed_edges
  end;
  let aslot_tbl = Asn.Tbl.create ((2 * n) + 1) in
  Array.iteri (fun i a -> Asn.Tbl.replace aslot_tbl a i) s_asns;
  let aslot_of a =
    match Asn.Tbl.find_opt aslot_tbl a with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Bgp.refreeze: next hop AS%d unknown" a)
  in
  let words = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (np * n) in
  Bigarray.Array1.fill words 0;
  (* The new arena starts as a verbatim copy of the old one, so clean
     rows' packed offsets remain valid; fresh segments append past it.
     (Appended segments dedupe among themselves only — a duplicate of
     an old segment wastes a few words, never correctness.) *)
  let old_alen = if fallback then 0 else Bigarray.Array1.dim old.s_arena in
  let arena = ref (Array.make (max 1024 (2 * max 1 old_alen)) 0) in
  let alen = ref old_alen in
  for k = 0 to old_alen - 1 do
    !arena.(k) <- Bigarray.Array1.get old.s_arena k
  done;
  let segments : (int list, int) Hashtbl.t = Hashtbl.create 256 in
  let intern_segment slots =
    match Hashtbl.find_opt segments slots with
    | Some off -> off
    | None ->
      let off = !alen in
      List.iter
        (fun s ->
          if !alen >= Array.length !arena then begin
            let bigger = Array.make (2 * Array.length !arena) 0 in
            Array.blit !arena 0 bigger 0 !alen;
            arena := bigger
          end;
          !arena.(!alen) <- s;
          incr alen)
        slots;
      Hashtbl.replace segments slots off;
      off
  in
  let stub_cols =
    if fallback then [||]
    else
      Array.init (n - n_old) (fun k ->
          let provs = Asn.Tbl.find stub_providers s_asns.(n_old + k) in
          List.map (fun pr -> (aslot_of pr, pr)) (Asn.Set.elements provs))
  in
  let n_dirty = ref 0 in
  for pn = 0 to np - 1 do
    let p = s_pfx.(pn) in
    let base = pn * n in
    if dirty.(pn) then begin
      incr n_dirty;
      let tbl = compute t p in
      Asn.Tbl.iter
        (fun asn (r : route) ->
          let slots = List.map aslot_of (Asn.Set.elements r.nexthops) in
          let off = intern_segment slots in
          Bigarray.Array1.set words (base + aslot_of asn)
            (pack_word ~cls:r.cls ~dist:r.dist ~count:(List.length slots) ~off))
        tbl
    end
    else begin
      let po = new2old.(pn) in
      Bigarray.Array1.blit
        (Bigarray.Array1.sub old.s_words (po * n_old) n_old)
        (Bigarray.Array1.sub words base n_old);
      if n > n_old then begin
        let os = origins t p in
        Array.iteri
          (fun k provs ->
            if not (Asn.Set.mem s_asns.(n_old + k) os) then begin
              let dist_of pr pa =
                if Asn.Set.mem pr os then 0
                else
                  match word_at old ~pslot:po ~aslot:pa with
                  | 0 -> max_int
                  | w -> w_dist w
              in
              let best = ref max_int in
              List.iter
                (fun (pa, pr) ->
                  let d = dist_of pr pa in
                  if d < !best then best := d)
                provs;
              if !best < max_int then begin
                let hop_slots =
                  List.filter_map
                    (fun (pa, pr) -> if dist_of pr pa = !best then Some pa else None)
                    provs
                in
                let off = intern_segment hop_slots in
                Bigarray.Array1.set words (base + n_old + k)
                  (pack_word ~cls:Prov ~dist:(!best + 1)
                     ~count:(List.length hop_slots) ~off)
              end
            end)
          stub_cols
      end
    end
  done;
  let s_arena = Bigarray.Array1.create Bigarray.int Bigarray.c_layout !alen in
  for k = 0 to !alen - 1 do
    Bigarray.Array1.set s_arena k !arena.(k)
  done;
  (* LPM: share when the prefix set is untouched (the single-link fast
     path does zero LPM work); otherwise patch only the slots a removed
     or added prefix covers. *)
  let prefixes_unchanged =
    np = np_old
    &&
    let ok = ref true in
    for k = 0 to np - 1 do
      if not (Prefix.equal s_pfx.(k) old.s_pfx.(k)) then ok := false
    done;
    !ok
  in
  let s_lpm =
    if prefixes_unchanged then old.s_lpm
    else begin
      let removed = ref [] and added = ref [] in
      for po = np_old - 1 downto 0 do
        if old2new.(po) < 0 then removed := old.s_pfx.(po) :: !removed
      done;
      for pn = np - 1 downto 0 do
        if new2old.(pn) < 0 then added := (s_pfx.(pn), pn) :: !added
      done;
      Lpm.patch old.s_lpm ~remove:!removed ~add:!added
        ~remap:(fun po -> old2new.(po))
    end
  in
  Obs.Metrics.add "routing.snapshot.dirty_prefixes" !n_dirty;
  let dirty_prefixes = ref [] in
  for pn = np - 1 downto 0 do
    if dirty.(pn) then dirty_prefixes := s_pfx.(pn) :: !dirty_prefixes
  done;
  ( { s_net = t.net;
      s_rels = t.rels;
      s_origin_trie = t.origin_trie;
      s_originated = t.originated;
      s_selective = t.selective;
      s_prefixes = t.prefixes_memo;
      s_asns;
      s_pfx;
      s_words = words;
      s_arena;
      s_lpm },
    { rf_total = np;
      rf_dirty = !n_dirty;
      rf_dirty_prefixes = !dirty_prefixes;
      rf_fallback = fallback } )

let of_snapshot s =
  Obs.Metrics.incr "routing.snapshot.attaches";
  { net = s.s_net;
    rels = s.s_rels;
    origin_trie = s.s_origin_trie;
    originated = s.s_originated;
    selective = s.s_selective;
    prefixes_memo = s.s_prefixes;
    frozen = Some s;
    young = Hashtbl.create 16;
    old_gen = Hashtbl.create 16;
    cache_hits = 0 }

let snapshot_of t = t.frozen

module Snapshot = struct
  type t = snapshot

  let route = snap_route

  let lookup s asn addr =
    let i = Lpm.lookup_idx s.s_lpm addr in
    if i < 0 then None
    else
      let pslot = Lpm.value_at s.s_lpm i in
      let ai = slot_of_array Asn.compare s.s_asns asn in
      Some (s.s_pfx.(pslot), route_at s ~pslot ~aslot:ai)

  (* Parent chains walk packed words directly: each hop is one word
     fetch plus one arena fetch (the segment head is the canonical
     parent), with the origin set resolved once up front. *)
  let as_path s asn p =
    let os =
      Option.value ~default:Asn.Set.empty (Ptrie.find_exact p s.s_origin_trie)
    in
    if Asn.Set.mem asn os then Some [ asn ]
    else
      let pslot = slot_of_array Prefix.compare s.s_pfx p in
      let rec follow aslot acc guard =
        let x = s.s_asns.(aslot) in
        if guard > 64 then None
        else if Asn.Set.mem x os then Some (List.rev (x :: acc))
        else
          match word_at s ~pslot ~aslot with
          | 0 -> None
          | w ->
            follow
              (Bigarray.Array1.get s.s_arena (w_off w))
              (x :: acc) (guard + 1)
      in
      if pslot < 0 then None
      else
        let a0 = slot_of_array Asn.compare s.s_asns asn in
        if a0 < 0 then None else follow a0 [] 0

  let prefixes s = s.s_prefixes
  let prefix_count s = Array.length s.s_pfx
  let asn_count s = Array.length s.s_asns
  let arena_length s = Bigarray.Array1.dim s.s_arena

  (* Zero-allocation slot layer: interned indices in, plain ints out.
     These are the read primitives for hot sweeps (bench query loops,
     the forwarding plan, the future query service). *)
  let asn_slot s asn = slot_of_array Asn.compare s.s_asns asn
  let prefix_slot s p = slot_of_array Prefix.compare s.s_pfx p
  let asn_of_slot s i = s.s_asns.(i)
  let prefix_of_slot s i = s.s_pfx.(i)

  let word s ~pslot ~aslot =
    if pslot < 0 || aslot < 0 then 0 else word_at s ~pslot ~aslot

  let word_class w = cls_of_code w
  let word_dist w = w_dist w
  let word_nexthop_count w = w_count w
  let nexthop_slot s w k = Bigarray.Array1.get s.s_arena (w_off w + k)
  let parent_slot s w = Bigarray.Array1.get s.s_arena (w_off w)
  let route_at = route_at

  let lookup_pslot s addr =
    let i = Lpm.lookup_idx s.s_lpm addr in
    if i < 0 then -1 else Lpm.value_at s.s_lpm i

  (* Semantic equality between two snapshots of the same world:
     identical interning axes, then every packed word decode-equal
     (class, dist, and next-hop slot segment compared element-wise, so
     two arenas laid out in different interning order still compare
     equal), then LPM agreement probed at every prefix boundary (first,
     last, and the addresses just outside). This is the oracle the
     churn tests run after every event batch: patched == from-scratch. *)
  exception Mismatch of string

  let equal a b =
    let fail fmt = Printf.ksprintf (fun m -> raise (Mismatch m)) fmt in
    try
      let n = Array.length a.s_asns and np = Array.length a.s_pfx in
      if Array.length b.s_asns <> n then
        fail "asn counts differ: %d vs %d" n (Array.length b.s_asns);
      if Array.length b.s_pfx <> np then
        fail "prefix counts differ: %d vs %d" np (Array.length b.s_pfx);
      for i = 0 to n - 1 do
        if not (Asn.equal a.s_asns.(i) b.s_asns.(i)) then
          fail "asn slot %d differs: AS%d vs AS%d" i a.s_asns.(i) b.s_asns.(i)
      done;
      for i = 0 to np - 1 do
        if not (Prefix.equal a.s_pfx.(i) b.s_pfx.(i)) then
          fail "prefix slot %d differs: %s vs %s" i
            (Prefix.to_string a.s_pfx.(i))
            (Prefix.to_string b.s_pfx.(i))
      done;
      for pslot = 0 to np - 1 do
        for aslot = 0 to n - 1 do
          let wa = word_at a ~pslot ~aslot and wb = word_at b ~pslot ~aslot in
          let ctx () =
            Printf.sprintf "(%s, AS%d)"
              (Prefix.to_string a.s_pfx.(pslot))
              a.s_asns.(aslot)
          in
          if (wa = 0) <> (wb = 0) then
            fail "route presence differs at %s" (ctx ());
          if wa <> 0 then begin
            if wa land 3 <> wb land 3 then fail "route class differs at %s" (ctx ());
            if w_dist wa <> w_dist wb then
              fail "route dist differs at %s: %d vs %d" (ctx ()) (w_dist wa)
                (w_dist wb);
            if w_count wa <> w_count wb then
              fail "next-hop count differs at %s: %d vs %d" (ctx ()) (w_count wa)
                (w_count wb);
            for k = 0 to w_count wa - 1 do
              if
                Bigarray.Array1.get a.s_arena (w_off wa + k)
                <> Bigarray.Array1.get b.s_arena (w_off wb + k)
              then fail "next-hop %d differs at %s" k (ctx ())
            done
          end
        done
      done;
      if Lpm.length a.s_lpm <> Lpm.length b.s_lpm then
        fail "LPM sizes differ: %d vs %d" (Lpm.length a.s_lpm)
          (Lpm.length b.s_lpm);
      let probe addr =
        let pa = lookup_pslot a addr and pb = lookup_pslot b addr in
        if pa <> pb then
          fail "LPM answers differ at %s: slot %d vs %d" (Ipv4.to_string addr) pa
            pb
      in
      Array.iter
        (fun p ->
          probe (Prefix.first p);
          probe (Prefix.last p);
          let f = Ipv4.to_int (Prefix.first p)
          and l = Ipv4.to_int (Prefix.last p) in
          if f > 0 then probe (Ipv4.of_int (f - 1));
          if l < 0xFFFF_FFFF then probe (Ipv4.of_int (l + 1)))
        a.s_pfx;
      Ok ()
    with Mismatch m -> Error m

  (* {2 Serialization}

     A snapshot entry is raw packed arenas plus marshaled boxed
     metadata, guarded by the same header/digest discipline as
     [lib/store] entries:

       offset  size  field
       0       4     magic "BDSN"
       4       4     codec version (big-endian)
       8       16    MD5 digest of the payload
       24      8     payload length (big-endian)
       32      n     payload

     payload := u64 n_pfx | u64 n_asn | u64 |words| | u64 |arena|
              | words (8 bytes each, big-endian)
              | arena (8 bytes each, big-endian)
              | marshaled (net, rels, origin_trie, originated,
                           selective, prefixes, asns, pfx)

     The LPM is rebuilt on load (a pure function of the prefix list)
     rather than shipped. Any flipped byte fails the digest check; a
     wrong declared length fails before any allocation is sized from
     attacker-controlled counts. *)
  type decode_error = Truncated | Bad_magic | Bad_version of int | Corrupt

  let error_label = function
    | Truncated -> "truncated"
    | Bad_magic -> "bad magic"
    | Bad_version v -> Printf.sprintf "unsupported version %d" v
    | Corrupt -> "corrupt"

  (* v2: Net.link gained the [live] retirement flag (marshaled inside
     the metadata tuple), so v1 entries no longer decode. *)
  let codec_version = 2
  let magic = "BDSN"
  let header_len = 32

  let to_bytes s =
    let np = Array.length s.s_pfx in
    let n = Array.length s.s_asns in
    let nw = Bigarray.Array1.dim s.s_words in
    let na = Bigarray.Array1.dim s.s_arena in
    let meta =
      Marshal.to_string
        ( s.s_net, s.s_rels, s.s_origin_trie, s.s_originated, s.s_selective,
          s.s_prefixes, s.s_asns, s.s_pfx )
        []
    in
    let payload_len = 32 + (8 * nw) + (8 * na) + String.length meta in
    let b = Bytes.create (header_len + payload_len) in
    let pos = ref header_len in
    let put_u64 v =
      Bytes.set_int64_be b !pos (Int64.of_int v);
      pos := !pos + 8
    in
    put_u64 np;
    put_u64 n;
    put_u64 nw;
    put_u64 na;
    for i = 0 to nw - 1 do
      put_u64 (Bigarray.Array1.get s.s_words i)
    done;
    for i = 0 to na - 1 do
      put_u64 (Bigarray.Array1.get s.s_arena i)
    done;
    Bytes.blit_string meta 0 b !pos (String.length meta);
    Bytes.blit_string magic 0 b 0 4;
    Bytes.set_int32_be b 4 (Int32.of_int codec_version);
    let digest = Digest.subbytes b header_len payload_len in
    Bytes.blit_string digest 0 b 8 16;
    Bytes.set_int64_be b 24 (Int64.of_int payload_len);
    b

  let of_bytes b =
    let len = Bytes.length b in
    if len < header_len then Error Truncated
    else if not (String.equal (Bytes.sub_string b 0 4) magic) then Error Bad_magic
    else
      let version = Int32.to_int (Bytes.get_int32_be b 4) in
      if version <> codec_version then Error (Bad_version version)
      else
        let payload_len = Int64.to_int (Bytes.get_int64_be b 24) in
        if payload_len < 32 || len <> header_len + payload_len then Error Truncated
        else if
          not
            (String.equal
               (Bytes.sub_string b 8 16)
               (Digest.subbytes b header_len payload_len))
        then Error Corrupt
        else begin
          let u64_at off = Int64.to_int (Bytes.get_int64_be b off) in
          let np = u64_at header_len in
          let n = u64_at (header_len + 8) in
          let nw = u64_at (header_len + 16) in
          let na = u64_at (header_len + 24) in
          let arrays_len = 8 * (nw + na) in
          if
            np < 0 || n < 0 || nw <> np * n || na < 0
            || payload_len < 32 + arrays_len
          then Error Corrupt
          else begin
            let s_words = Bigarray.Array1.create Bigarray.int Bigarray.c_layout nw in
            let s_arena = Bigarray.Array1.create Bigarray.int Bigarray.c_layout na in
            let pos = ref (header_len + 32) in
            for i = 0 to nw - 1 do
              Bigarray.Array1.set s_words i (u64_at !pos);
              pos := !pos + 8
            done;
            for i = 0 to na - 1 do
              Bigarray.Array1.set s_arena i (u64_at !pos);
              pos := !pos + 8
            done;
            match
              (Marshal.from_string (Bytes.unsafe_to_string b) !pos
                : Net.t
                  * B.As_rel.t
                  * Asn.Set.t Ptrie.t
                  * (Prefix.t * Asn.Set.t) list
                  * int list Prefix.Map.t Asn.Map.t
                  * Prefix.t list
                  * Asn.t array
                  * Prefix.t array)
            with
            | net, rels, trie, originated, selective, prefixes, asns, pfx ->
              if Array.length pfx <> np || Array.length asns <> n then
                Error Corrupt
              else
                Ok
                  { s_net = net;
                    s_rels = rels;
                    s_origin_trie = trie;
                    s_originated = originated;
                    s_selective = selective;
                    s_prefixes = prefixes;
                    s_asns = asns;
                    s_pfx = pfx;
                    s_words;
                    s_arena;
                    s_lpm = Lpm.build (List.mapi (fun i p -> (p, i)) prefixes) }
            | exception _ -> Error Corrupt
          end
        end
end
