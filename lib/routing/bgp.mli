(** AS-level BGP route propagation under Gao-Rexford policies:
    an AS exports customer routes (and its own prefixes) to everyone, and
    peer/provider routes only to customers. Route selection prefers
    customer over peer over provider routes, then shortest AS path, then
    lowest next-hop ASN.

    Per-link selective announcement (the Akamai-style policy of §6) is
    honoured at the edge between the origin and its direct neighbors.

    Two evaluation modes share one propagation core:
    - the lazy [t] computes per-prefix tables on demand behind a
      two-generation cache — right for tiny one-shot runs;
    - a frozen {!snapshot} computes every originated prefix once and
      flattens the results into immutable dense arrays, which makes it
      pure data: safe to share by reference across [Netcore.Pool]
      domains with zero per-worker rebuild. *)

open Netcore
module Net = Topogen.Net

type route_class = Cust | Peer | Prov

type route = {
  cls : route_class;
  dist : int;  (** AS-path hops to the origin *)
  nexthops : Asn.Set.t;  (** neighbor ASes offering the best (cls, dist) *)
  parent : Asn.t option;  (** canonical next hop; [None] at the origin *)
}

type t

(** [create net rels ~originated ~selective] prepares the propagation
    state. [rels] must be the ground-truth relationship graph (real
    routing does not run on inferred data). *)
val create :
  Net.t ->
  Bgpdata.As_rel.t ->
  originated:(Prefix.t * Asn.Set.t) list ->
  selective:int list Prefix.Map.t Asn.Map.t ->
  t

(** [prefixes t] is every originated prefix, sorted (memoized). *)
val prefixes : t -> Prefix.t list

(** [origins t p] is the origin set of [p]. *)
val origins : t -> Prefix.t -> Asn.Set.t

(** [route t asn p] is [asn]'s best route toward [p]; [None] when
    unreachable or [asn] originates [p] itself. *)
val route : t -> Asn.t -> Prefix.t -> route option

(** [is_origin t asn p] is true when [asn] originates [p]. *)
val is_origin : t -> Asn.t -> Prefix.t -> bool

(** [lookup t asn addr] resolves [addr] through longest-prefix match and
    returns the matched prefix with the best route. *)
val lookup : t -> Asn.t -> Ipv4.t -> (Prefix.t * route option) option

(** [as_path t asn p] is the AS path [asn] would report toward [p]
    (leftmost = [asn], rightmost = origin), or [None] if unreachable. *)
val as_path : t -> Asn.t -> Prefix.t -> Asn.t list option

(** [allowed_links t ~origin ~p] is the per-link pin set for [p] at its
    origin: [None] means no restriction; [Some lids] means that among a
    neighbor's links that intersect [lids], only those carry [p] (links
    to neighbors outside the pin set are unrestricted). *)
val allowed_links : t -> origin:Asn.t -> p:Prefix.t -> int list option

(** [collector_view t collectors] builds the public RIB: one route line
    per (collector AS, prefix) with the collector's AS path. *)
val collector_view : t -> Asn.t list -> Bgpdata.Rib.t

(** {1 Frozen snapshots} *)

(** Immutable routing snapshot: per-prefix route tables for all
    originated prefixes in dense (prefix slot x interned-ASN slot)
    arrays, plus a flattened LPM over the origin set. *)
type snapshot

(** [freeze t] computes every originated prefix's table once and
    freezes the results. Answers are identical to the lazy path:
    [Snapshot.route (freeze t) asn p = route t asn p] for all inputs.
    Idempotent on an already-frozen [t]. Counted under the
    [routing.snapshot.builds] metric. *)
val freeze : t -> snapshot

(** [of_snapshot s] is a [t] answering from the frozen tables (with
    private, empty caches — never mutated on the frozen read path).
    Counted under [routing.snapshot.attaches]. *)
val of_snapshot : snapshot -> t

module Snapshot : sig
  type t = snapshot

  val route : t -> Asn.t -> Prefix.t -> route option
  val lookup : t -> Asn.t -> Ipv4.t -> (Prefix.t * route option) option
  val as_path : t -> Asn.t -> Prefix.t -> Asn.t list option
  val prefixes : t -> Prefix.t list
  val prefix_count : t -> int
  val asn_count : t -> int
end
