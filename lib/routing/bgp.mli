(** AS-level BGP route propagation under Gao-Rexford policies:
    an AS exports customer routes (and its own prefixes) to everyone, and
    peer/provider routes only to customers. Route selection prefers
    customer over peer over provider routes, then shortest AS path, then
    lowest next-hop ASN.

    Per-link selective announcement (the Akamai-style policy of §6) is
    honoured at the edge between the origin and its direct neighbors.

    Two evaluation modes share one propagation core:
    - the lazy [t] computes per-prefix tables on demand behind a
      two-generation cache — right for tiny one-shot runs;
    - a frozen {!snapshot} computes every originated prefix once and
      packs the results into flat int arenas ([Bigarray]s the GC never
      traces): one packed word per (prefix, ASN) route plus a shared
      next-hop arena. Pure data — safe to share by reference across
      [Netcore.Pool] domains with zero per-worker rebuild, and
      serializable to raw bytes ({!Snapshot.to_bytes}) for other
      processes. *)

open Netcore
module Net = Topogen.Net

type route_class = Cust | Peer | Prov

type route = {
  cls : route_class;
  dist : int;  (** AS-path hops to the origin *)
  nexthops : Asn.Set.t;  (** neighbor ASes offering the best (cls, dist) *)
  parent : Asn.t option;  (** canonical next hop; [None] at the origin *)
}

type t

(** [create net rels ~originated ~selective] prepares the propagation
    state. [rels] must be the ground-truth relationship graph (real
    routing does not run on inferred data). *)
val create :
  Net.t ->
  Bgpdata.As_rel.t ->
  originated:(Prefix.t * Asn.Set.t) list ->
  selective:int list Prefix.Map.t Asn.Map.t ->
  t

(** [prefixes t] is every originated prefix, sorted (memoized). *)
val prefixes : t -> Prefix.t list

(** [origins t p] is the origin set of [p]. *)
val origins : t -> Prefix.t -> Asn.Set.t

(** [route t asn p] is [asn]'s best route toward [p]; [None] when
    unreachable or [asn] originates [p] itself. *)
val route : t -> Asn.t -> Prefix.t -> route option

(** [is_origin t asn p] is true when [asn] originates [p]. *)
val is_origin : t -> Asn.t -> Prefix.t -> bool

(** [lookup t asn addr] resolves [addr] through longest-prefix match and
    returns the matched prefix with the best route. *)
val lookup : t -> Asn.t -> Ipv4.t -> (Prefix.t * route option) option

(** [lookup_slot t asn addr] is {!lookup} plus the matched prefix's
    interned snapshot slot, or [-1] on the lazy (unfrozen) path. Callers
    that loop over lookups — the forwarding plan, the crossing-link
    sweeps — thread the slot to {!Snapshot.route_at}-style accessors
    instead of re-binary-searching the prefix per query. *)
val lookup_slot : t -> Asn.t -> Ipv4.t -> (Prefix.t * int * route option) option

(** [as_path t asn p] is the AS path [asn] would report toward [p]
    (leftmost = [asn], rightmost = origin), or [None] if unreachable. *)
val as_path : t -> Asn.t -> Prefix.t -> Asn.t list option

(** [allowed_links t ~origin ~p] is the per-link pin set for [p] at its
    origin: [None] means no restriction; [Some lids] means that among a
    neighbor's links that intersect [lids], only those carry [p] (links
    to neighbors outside the pin set are unrestricted). *)
val allowed_links : t -> origin:Asn.t -> p:Prefix.t -> int list option

(** [collector_view t collectors] builds the public RIB: one route line
    per (collector AS, prefix) with the collector's AS path. *)
val collector_view : t -> Asn.t list -> Bgpdata.Rib.t

(** {1 Frozen snapshots} *)

(** Immutable routing snapshot: per-prefix route tables for all
    originated prefixes in dense (prefix slot x interned-ASN slot)
    arrays, plus a flattened LPM over the origin set. *)
type snapshot

(** [freeze t] computes every originated prefix's table once and
    freezes the results. Answers are identical to the lazy path:
    [Snapshot.route (freeze t) asn p = route t asn p] for all inputs.
    Idempotent on an already-frozen [t]. Counted under the
    [routing.snapshot.builds] metric by default; [?counter] redirects
    the count (validation and bench scratch freezes use
    ["routing.snapshot.scratch_builds"] so build accounting gates stay
    meaningful). *)
val freeze : ?counter:string -> t -> snapshot

(** {1 Incremental re-freeze}

    A batch of topology changes expressed in the vocabulary the delta
    path needs; produced by [Topogen.Evolve.advance]. The soundness
    contract is documented on {!refreeze}. *)
type churn = {
  ch_removed_edges : (Asn.t * Asn.t) list;
      (** AS pairs whose relationship was dropped (depeering) *)
  ch_new_stubs : (Asn.t * Asn.Set.t) list;
      (** new stub ASes with their provider sets; ASNs must sort above
          every existing ASN and providers must already exist *)
  ch_dirty_prefixes : Prefix.t list;
      (** surviving prefixes whose origin set changed *)
  ch_removed_prefixes : Prefix.t list;  (** prefixes withdrawn entirely *)
  ch_links_changed : (Asn.t * Asn.t) list;
      (** AS pairs whose physical links changed with the relationship
          intact — BGP-invisible, forwarding-plan dirt only *)
}

(** The empty batch: [refreeze t ~old no_churn] patches nothing. *)
val no_churn : churn

(** [churn_of_events evs] folds a [Topogen.Evolve] event batch into the
    delta vocabulary, relying on the evolution invariants (new
    customers are pure stubs, link add/remove keep relationships
    intact, aggregate/deaggregate replace prefixes). *)
val churn_of_events : Topogen.Evolve.timed list -> churn

type refreeze_stats = {
  rf_total : int;  (** prefixes in the new snapshot *)
  rf_dirty : int;  (** prefixes re-propagated *)
  rf_dirty_prefixes : Prefix.t list;
      (** the re-propagated prefixes, sorted — the forwarding plan
          patches exactly these columns *)
  rf_fallback : bool;
      (** the append-only ASN contract was violated and the patch
          degraded to a full recompute *)
}

(** [refreeze t ~old churn] is the incremental form of {!freeze}: [t]
    is the fresh propagation state of the post-churn world, [old] the
    pre-churn snapshot. Only dirty prefixes (changed origins, new
    prefixes, and prefixes where a removed edge appeared in a next-hop
    segment) re-propagate; clean rows are blitted, new-stub columns are
    derived from their providers' packed words, and the LPM is shared
    (prefix set unchanged) or slot-patched. The result is semantically
    identical to [freeze] of [t] from scratch ({!Snapshot.equal}).
    Counted under [routing.snapshot.patches], with the dirty count
    under [routing.snapshot.dirty_prefixes]. *)
val refreeze : t -> old:snapshot -> churn -> snapshot * refreeze_stats

(** [of_snapshot s] is a [t] answering from the frozen tables (with
    private, empty caches — never mutated on the frozen read path).
    Counted under [routing.snapshot.attaches]. *)
val of_snapshot : snapshot -> t

(** [snapshot_of t] is the snapshot [t] answers from, if frozen. *)
val snapshot_of : t -> snapshot option

module Snapshot : sig
  type t = snapshot

  val route : t -> Asn.t -> Prefix.t -> route option
  val lookup : t -> Asn.t -> Ipv4.t -> (Prefix.t * route option) option
  val as_path : t -> Asn.t -> Prefix.t -> Asn.t list option
  val prefixes : t -> Prefix.t list
  val prefix_count : t -> int
  val asn_count : t -> int

  (** {2 Slot layer}

      Zero-allocation access for hot sweeps: intern an ASN/prefix to
      its slot once, then read packed route {e words} — plain ints
      carrying class, dist, next-hop count, and the arena offset of the
      next-hop segment. No heap traffic on any of these paths. *)

  (** [asn_slot s asn] / [prefix_slot s p] intern to a slot; [-1] when
      absent (then every route word is 0). *)
  val asn_slot : t -> Asn.t -> int

  val prefix_slot : t -> Prefix.t -> int
  val asn_of_slot : t -> int -> Asn.t
  val prefix_of_slot : t -> int -> Prefix.t

  (** [word s ~pslot ~aslot] is the packed route word, or [0] for "no
      route" (also when either slot is [-1]). *)
  val word : t -> pslot:int -> aslot:int -> int

  val word_class : int -> route_class
  val word_dist : int -> int
  val word_nexthop_count : int -> int

  (** [nexthop_slot s w k] is the [k]-th next-hop ASN slot of a
      non-zero word [w] ([0 <= k < word_nexthop_count w]), ascending;
      [parent_slot s w = nexthop_slot s w 0] is the canonical parent. *)
  val nexthop_slot : t -> int -> int -> int

  val parent_slot : t -> int -> int

  (** [route_at s ~pslot ~aslot] decodes the word into a boxed
      {!route} (allocates; hot loops should stay on words). *)
  val route_at : t -> pslot:int -> aslot:int -> route option

  (** [lookup_pslot s addr] is the LPM-matched prefix slot, or [-1].
      Allocation-free. *)
  val lookup_pslot : t -> Ipv4.t -> int

  (** Total length of the interned next-hop arena (diagnostics). *)
  val arena_length : t -> int

  (** [equal a b] is semantic equality between two snapshots of the
      same world: identical interning axes, every packed word
      decode-equal (next-hop segments compared element-wise, so arenas
      in different interning order still compare equal), and LPM
      agreement probed at every prefix boundary. The oracle the churn
      tests run after every event batch. [Error] carries the first
      mismatch. *)
  val equal : t -> t -> (unit, string) result

  (** {2 Serialization}

      A snapshot round-trips through raw bytes under the same
      header/digest discipline as [lib/store] entries: magic ["BDSN"],
      codec version, MD5 digest over the payload, declared payload
      length. Packed arenas are written as raw words; only the boxed
      metadata (net, relationships, origin trie) goes through
      [Marshal]. The LPM is rebuilt on load. *)

  type decode_error = Truncated | Bad_magic | Bad_version of int | Corrupt

  val error_label : decode_error -> string

  (** Current serialization format version (bump on layout change). *)
  val codec_version : int

  val to_bytes : t -> bytes

  (** [of_bytes b] validates header, version, digest, and declared
      counts before reconstructing; any flipped byte is [Corrupt], any
      short read [Truncated]. *)
  val of_bytes : bytes -> (t, decode_error) result
end
