(** Router-level forwarding over the simulated topology: intra-AS
    shortest paths (IGP) plus hot-potato egress selection among the
    BGP-equal next hops (§6: the mechanism behind Figures 14-16).

    A packet at a router is delivered locally when its address matches a
    local interface, forwarded internally toward the home router when the
    current AS originates the longest-match prefix, and otherwise pushed
    across the interdomain link that is IGP-nearest among the candidate
    egresses for the destination prefix. *)

open Netcore
module Net = Topogen.Net

type t

(** A frozen forwarding plan: IGP distance tables for every
    interdomain-link endpoint, egress choices for the hot (VP-owning)
    ASes, and the interdomain-link index — precomputed once and never
    written again, so a plan is safe to share by reference across
    [Netcore.Pool] domains. The distance and egress tables are packed
    into flat [Bigarray] rows (GC-invisible plain words) indexed by
    small per-router row tables; keys outside the plan fall back to
    each worker's private lazy tables. *)
type plan

(** [create ?plan net bgp] builds forwarding state over [bgp]. With
    [plan], hot lookups answer from the shared frozen tables; without
    it, everything is computed lazily per instance (the pre-snapshot
    behaviour). A plan must only be paired with a [bgp] answering
    identically to the one it was frozen from. *)
val create : ?plan:plan -> Net.t -> Bgp.t -> t

(** [freeze ?egress_for t] precomputes the shared read-only plan:
    the interdomain-link index, IGP distances to every interdomain-link
    endpoint, and — for each AS in [egress_for] — the egress choice of
    each of its routers for every originated prefix, via exactly the
    same scoring path the lazy memo uses. Counted under the
    [routing.plan.builds] metric. *)
val freeze : ?egress_for:Asn.Set.t -> t -> plan

(** [patch ?egress_for t ~old ~churn ~dirty] is the incremental form of
    {!freeze}: [t] must be a fresh instance over the post-churn net and
    a [Bgp.t] attached to the patched snapshot, [old] the pre-churn
    plan, [dirty] the BGP-dirty prefixes
    ([Bgp.refreeze_stats.rf_dirty_prefixes]). IGP distance rows of
    pre-churn routers are copied (evolution never alters the internal
    topology of an existing AS); only new interconnect endpoints run
    Dijkstra. Egress cells are re-scored only for BGP-dirty prefix
    columns, new prefixes, and routes whose next-hop set intersects an
    AS pair with changed physical links; every other cell is copied.
    The result satisfies {!plan_equal} against a scratch [freeze] of
    [t]. Counted under [routing.plan.patches], with recomputed cells
    under [routing.plan.patched_cells]. *)
val patch :
  ?egress_for:Asn.Set.t ->
  t ->
  old:plan ->
  churn:Bgp.churn ->
  dirty:Prefix.t list ->
  plan

(** [plan_equal ~scratch ~patched] is semantic equality between two
    plans of the same world: identical router/prefix axes, the same set
    of planned distance rows with exactly equal contents, the same
    egress rows cell for cell, and the same interdomain-link index. The
    forwarding-side oracle of the churn tests. [Error] carries the
    first mismatch. *)
val plan_equal : scratch:plan -> patched:plan -> (unit, string) result

type hop =
  | Deliver  (** the destination address is on this router *)
  | Sink  (** this router is the home of the prefix; no such host *)
  | Forward of Net.link  (** next hop across this link *)
  | Unreachable

(** [next_hop ?flow t ~rid ~dst] is one forwarding decision. Equal-cost
    internal paths are resolved by hashing [flow] (a five-tuple stand-in);
    flow 0 always takes the canonical path, which models Paris
    traceroute's fixed flow identifier. *)
val next_hop : ?flow:int -> t -> rid:int -> dst:Ipv4.t -> hop

(** [egress_link t ~rid ~dst] is the interdomain link this AS would use
    to leave toward [dst], from the perspective of router [rid]
    (hot-potato), if the route exits the AS. *)
val egress_link : t -> rid:int -> dst:Ipv4.t -> Net.link option

(** [igp_distance t ~from_rid ~to_rid] is the intra-AS IGP distance;
    [infinity] when the routers are in different ASes or disconnected. *)
val igp_distance : t -> from_rid:int -> to_rid:int -> float

(** One step of a router path: the router and the link the packet
    arrived on ([None] for the source router). *)
type step = { rid : int; in_link : Net.link option }

(** [path ?flow t ~src_rid ~dst ?max_hops ()] walks the full router path,
    starting with the first router after the source. The walk stops at
    delivery, at the prefix's home router, at an unreachable point, or
    after [max_hops] (default 64). [flow] selects among equal-cost
    internal paths. *)
val path :
  ?flow:int -> t -> src_rid:int -> dst:Ipv4.t -> ?max_hops:int -> unit -> step list

(** [reply_iface t ~rid ~reply_to] is the interface address router [rid]
    would use as source when transmitting a packet toward [reply_to]
    (RFC 1812 behaviour, §4 challenge 2): the address of its interface on
    the first link of the path toward [reply_to]. [None] when the router
    cannot route back or the first hop is ambiguous. *)
val reply_iface : t -> rid:int -> reply_to:Ipv4.t -> Ipv4.t option

(** [forward_iface t ~rid ~dst] is the interface address router [rid]
    would forward [dst]-bound packets from (virtual-router reply
    selection, §4 challenge 4). *)
val forward_iface : t -> rid:int -> dst:Ipv4.t -> Ipv4.t option
