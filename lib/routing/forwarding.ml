open Netcore
module Net = Topogen.Net

(* A frozen forwarding plan: IGP distance tables, egress choices and
   the interdomain-link index precomputed once and never written again.
   The bulk — distance rows, egress lids — is packed into flat Bigarray
   rows the GC never traces, indexed by small per-router row tables;
   each worker keeps its own private tables for the (cold) keys the
   plan does not cover.

   [p_egress] encodes one int per (planned router, prefix slot):
   [-2] unplanned (fall back to the private memo), [-1] planned with no
   egress, otherwise the chosen link id. *)
type float_ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type plan = {
  p_routers : int;  (* row stride of [p_igp] *)
  p_igp_row : int array;  (* target rid -> row index into [p_igp], or -1 *)
  p_igp : float_ba;  (* rows x p_routers IGP distances *)
  p_egr_row : int array;  (* rid -> row index into [p_egress], or -1 *)
  p_pfx : Prefix.t array;  (* sorted prefix slots; = Bgp snapshot slots *)
  p_egress : int_ba;  (* rows x |p_pfx| egress lids (-2 unplanned, -1 none) *)
  p_between : (Asn.t * Asn.t, Net.link list) Hashtbl.t;
}

type t = {
  net : Net.t;
  bgp : Bgp.t;
  plan : plan option;
  (* Distances to a target router from every router of the same AS,
     computed by Dijkstra from the target over internal links. *)
  igp : (int, float array) Hashtbl.t;
  (* (rid, prefix) -> chosen egress link id, or -1 for none. *)
  egress_memo : (int * Prefix.t, int) Hashtbl.t;
  (* (asn1, asn2) -> interdomain links between them. *)
  mutable between : (Asn.t * Asn.t, Net.link list) Hashtbl.t option;
}

let create ?plan net bgp =
  { net; bgp; plan; igp = Hashtbl.create 512; egress_memo = Hashtbl.create 4096;
    between = None }

let build_between net =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun (l : Net.link) ->
      let oa = (Net.router net (fst l.Net.a)).Net.owner in
      let ob = (Net.router net (fst l.Net.b)).Net.owner in
      let key = if oa < ob then (oa, ob) else (ob, oa) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (l :: cur))
    (Net.interdomain_links net);
  tbl

let links_between t x y =
  let tbl =
    match t.plan with
    | Some plan -> plan.p_between
    | None -> (
      match t.between with
      | Some tbl -> tbl
      | None ->
        let tbl = build_between t.net in
        t.between <- Some tbl;
        tbl)
  in
  let key = if x < y then (x, y) else (y, x) in
  Option.value ~default:[] (Hashtbl.find_opt tbl key)

(* Dijkstra from [target] over internal links of its AS, on a binary
   heap with lazy deletion: relaxations push duplicates and stale pops
   are skipped by the [d <= dist.(x)] guard, so the final distance
   array is identical to the old set-as-priority-queue version. *)
let compute_dist net target =
  let n = Net.router_count net in
  let dist = Array.make n infinity in
  let pq =
    Heap.create (fun (d1, x1) (d2, x2) ->
        match Float.compare d1 d2 with 0 -> Int.compare x1 x2 | c -> c)
  in
  Heap.push pq (0.0, target);
  dist.(target) <- 0.0;
  let rec drain () =
    match Heap.pop_opt pq with
    | None -> ()
    | Some (d, x) ->
      if d <= dist.(x) then
        List.iter
          (fun ((l : Net.link), y) ->
            let nd = d +. l.Net.weight in
            if nd < dist.(y) then begin
              dist.(y) <- nd;
              Heap.push pq (nd, y)
            end)
          (Net.internal_neighbors net x);
      drain ()
  in
  drain ();
  dist

(* Distance from [rid] to [target] (same AS assumed). Planned targets
   read one float out of the packed row — no allocation, no hashing;
   unplanned targets fall back to the private per-instance memo. *)
let dist_at t ~target ~rid =
  match t.plan with
  | Some plan when plan.p_igp_row.(target) >= 0 ->
    Bigarray.Array1.get plan.p_igp
      ((plan.p_igp_row.(target) * plan.p_routers) + rid)
  | _ -> (
    let dist =
      match Hashtbl.find_opt t.igp target with
      | Some d -> d
      | None ->
        let dist = compute_dist t.net target in
        Hashtbl.replace t.igp target dist;
        dist
    in
    dist.(rid))

let igp_distance t ~from_rid ~to_rid =
  let ra = Net.router t.net from_rid and rb = Net.router t.net to_rid in
  if not (Asn.equal ra.Net.owner rb.Net.owner) then infinity
  else dist_at t ~target:to_rid ~rid:from_rid

(* Next internal hop from [rid] toward [target]: among the neighbors
   whose (link weight + distance) lies within the ECMP tolerance of the
   minimum, hash the flow identifier the way routers hash five-tuples.
   Flow 0 deterministically takes the canonical (lowest link id) path,
   which is what Paris traceroute's fixed flow identifier guarantees;
   classic traceroute varies the flow per probe and wobbles across
   equal-cost paths. *)
let ecmp_tolerance = 1.02

let internal_next_hop ?(flow = 0) t rid target =
  if rid = target then None
  else begin
    let candidates = ref [] in
    let best = ref infinity in
    List.iter
      (fun ((l : Net.link), y) ->
        let dy = dist_at t ~target ~rid:y in
        if dy < infinity then begin
          let d = l.Net.weight +. dy in
          if d < !best then best := d;
          candidates := (d, l) :: !candidates
        end)
      (Net.internal_neighbors t.net rid);
    let eligible =
      List.filter (fun (d, _) -> d <= !best *. ecmp_tolerance) !candidates
      |> List.sort (fun (d1, (l1 : Net.link)) (d2, l2) ->
             match Float.compare d1 d2 with
             | 0 -> Int.compare l1.Net.lid l2.Net.lid
             | c -> c)
      |> List.map snd
    in
    match eligible with
    | [] -> None
    | [ l ] -> Some l
    | ls ->
      if flow = 0 then Some (List.hd ls)
      else
        let h = Hashtbl.hash (flow, rid, target) in
        Some (List.nth ls (h mod List.length ls))
  end

(* Candidate egress links for [rid]'s AS toward prefix [p]: links to any
   best next-hop AS, honouring per-link selective announcement when the
   neighbor is the origin. *)
let egress_candidates t asn p (route : Bgp.route) =
  Asn.Set.fold
    (fun n acc ->
      let ls = links_between t asn n in
      let ls =
        if Bgp.is_origin t.bgp n p then
          match Bgp.allowed_links t.bgp ~origin:n ~p with
          | None -> ls
          | Some lids -> (
            match List.filter (fun (l : Net.link) -> List.mem l.Net.lid lids) ls with
            | [] -> ls  (* no pinned link toward this neighbor: unrestricted *)
            | pinned -> pinned)
        else ls
      in
      List.rev_append ls acc)
    route.Bgp.nexthops []

(* The single scoring path behind both the lazy memo and [freeze]:
   hot-potato (IGP-nearest near-side router), ties broken on lowest
   link id, encoded as the chosen lid or -1 for none. *)
let egress_lid t rid p route =
  let asn = (Net.router t.net rid).Net.owner in
  let candidates = egress_candidates t asn p route in
  let score (l : Net.link) =
    let near =
      let ra = fst l.Net.a in
      if Asn.equal (Net.router t.net ra).Net.owner asn then ra else fst l.Net.b
    in
    (igp_distance t ~from_rid:rid ~to_rid:near, l.Net.lid)
  in
  let best =
    List.fold_left
      (fun acc l ->
        let s = score l in
        if fst s = infinity then acc
        else
          match acc with
          | Some (s', _) when s' <= s -> acc
          | _ -> Some (s, l))
      None candidates
  in
  match best with
  | Some (_, l) -> l.Net.lid
  | None -> -1

let pfx_slot pfx p =
  let rec go lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      match Prefix.compare p pfx.(mid) with
      | 0 -> mid
      | c when c < 0 -> go lo mid
      | _ -> go (mid + 1) hi
  in
  go 0 (Array.length pfx)

(* [pslot], when >= 0, is [p]'s interned slot (as handed out by
   [Bgp.lookup_slot]); passing it skips the per-query binary search into
   the plan's prefix table. *)
let choose_egress ?(pslot = -1) t rid p (route : Bgp.route) =
  let planned =
    match t.plan with
    | Some plan when plan.p_egr_row.(rid) >= 0 ->
      let col = if pslot >= 0 then pslot else pfx_slot plan.p_pfx p in
      if col < 0 then -2
      else
        Bigarray.Array1.get plan.p_egress
          ((plan.p_egr_row.(rid) * Array.length plan.p_pfx) + col)
    | _ -> -2
  in
  let lid =
    if planned > -2 then planned
    else
      match Hashtbl.find_opt t.egress_memo (rid, p) with
      | Some lid -> lid
      | None ->
        let lid = egress_lid t rid p route in
        Hashtbl.replace t.egress_memo (rid, p) lid;
        lid
  in
  if lid < 0 then None else Some (Net.link t.net lid)

let freeze ?(egress_for = Asn.Set.empty) t =
  Obs.Metrics.incr "routing.plan.builds";
  let p_between = build_between t.net in
  let p_routers = Net.router_count t.net in
  (* IGP rows for every interdomain-link endpoint: these routers are
     the targets of all egress scoring and of the internal walks toward
     an egress, and they are identical for every VP. Home-router targets
     stay lazy in each worker's private table. *)
  let p_igp_row = Array.make p_routers (-1) in
  let igp_targets = ref [] in
  let igp_rows = ref 0 in
  List.iter
    (fun (l : Net.link) ->
      List.iter
        (fun rid ->
          if p_igp_row.(rid) < 0 then begin
            p_igp_row.(rid) <- !igp_rows;
            incr igp_rows;
            igp_targets := rid :: !igp_targets
          end)
        [ fst l.Net.a; fst l.Net.b ])
    (Net.interdomain_links t.net);
  let p_igp =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
      (!igp_rows * p_routers)
  in
  List.iter
    (fun rid ->
      let dist = compute_dist t.net rid in
      let base = p_igp_row.(rid) * p_routers in
      for i = 0 to p_routers - 1 do
        Bigarray.Array1.set p_igp (base + i) dist.(i)
      done)
    !igp_targets;
  (* Egress choices for the hot ASes (the VP-owning ones): every probe
     starts there, so these (rid, prefix slot) pairs recur in every
     worker. Prefix columns follow [Bgp.prefixes] order, which is the
     snapshot's slot order, so [Bgp.lookup_slot] slots index directly. *)
  let p_pfx = Array.of_list (Bgp.prefixes t.bgp) in
  let np = Array.length p_pfx in
  let p_egr_row = Array.make p_routers (-1) in
  let egr_rows = ref 0 in
  Asn.Set.iter
    (fun asn ->
      List.iter
        (fun (r : Net.router) ->
          if p_egr_row.(r.Net.rid) < 0 then begin
            p_egr_row.(r.Net.rid) <- !egr_rows;
            incr egr_rows
          end)
        (Net.routers_of t.net asn))
    egress_for;
  let p_egress =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout (!egr_rows * np)
  in
  Bigarray.Array1.fill p_egress (-2);
  let plan =
    { p_routers; p_igp_row; p_igp; p_egr_row; p_pfx; p_egress; p_between }
  in
  (* Scoring runs against the plan itself: the IGP rows above are
     exactly the distances egress selection needs, and the [-2] fill
     keeps unwritten egress cells on the lazy path during the fill. *)
  let scored = { t with plan = Some plan } in
  let snap = Bgp.snapshot_of t.bgp in
  Asn.Set.iter
    (fun asn ->
      (* Slot hoisting: intern the ASN once per AS and walk prefix
         slots directly instead of binary-searching per (router,
         prefix) query. *)
      let aslot =
        match snap with Some s -> Bgp.Snapshot.asn_slot s asn | None -> -1
      in
      List.iter
        (fun (r : Net.router) ->
          let base = p_egr_row.(r.Net.rid) * np in
          Array.iteri
            (fun pi p ->
              let route =
                match snap with
                | Some s -> Bgp.Snapshot.route_at s ~pslot:pi ~aslot
                | None -> Bgp.route t.bgp asn p
              in
              match route with
              | None -> ()
              | Some route ->
                Bigarray.Array1.set p_egress (base + pi)
                  (egress_lid scored r.Net.rid p route))
            p_pfx)
        (Net.routers_of t.net asn))
    egress_for;
  plan

(* ------------------------------------------------------------------ *)
(* Incremental plan patch, the forwarding side of [Bgp.refreeze].      *)

(* [patch ?egress_for t ~old ~churn ~dirty] rebuilds only the plan
   state reachable from dirty inputs. [t] must be a fresh instance over
   the post-churn net and a [Bgp.t] attached to the patched snapshot;
   [old] is the pre-churn plan; [dirty] the BGP-dirty prefixes
   ([Bgp.refreeze_stats.rf_dirty_prefixes]).

   What can be reused, and why:
   - IGP distance rows: evolution never touches the *internal* topology
     of a pre-churn AS (new routers belong to new ASes, link events are
     interdomain), so an old target's distance row is still exact;
     routers added since are internally unreachable from it (infinity).
     Only endpoints that gained a row (new interconnects) run Dijkstra.
   - Egress cells: a cell (router of AS a, prefix p) is recomputed when
     p is BGP-dirty (its route may differ), when p left/entered the
     prefix set, or when some next hop z of a's route has (a, z) in the
     changed-interconnect set (candidate links differ with the route
     intact). Everything else scores identically, so the old lid is
     copied. *)
let patch ?(egress_for = Asn.Set.empty) t ~old ~(churn : Bgp.churn) ~dirty =
  Obs.Metrics.incr "routing.plan.patches";
  let p_between = build_between t.net in
  let p_routers = Net.router_count t.net in
  let old_routers = old.p_routers in
  let p_igp_row = Array.make p_routers (-1) in
  let igp_targets = ref [] in
  let igp_rows = ref 0 in
  List.iter
    (fun (l : Net.link) ->
      List.iter
        (fun rid ->
          if p_igp_row.(rid) < 0 then begin
            p_igp_row.(rid) <- !igp_rows;
            incr igp_rows;
            igp_targets := rid :: !igp_targets
          end)
        [ fst l.Net.a; fst l.Net.b ])
    (Net.interdomain_links t.net);
  let p_igp =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
      (!igp_rows * p_routers)
  in
  List.iter
    (fun rid ->
      let base = p_igp_row.(rid) * p_routers in
      let orow = if rid < old_routers then old.p_igp_row.(rid) else -1 in
      if orow >= 0 then begin
        let obase = orow * old_routers in
        for i = 0 to old_routers - 1 do
          Bigarray.Array1.set p_igp (base + i)
            (Bigarray.Array1.get old.p_igp (obase + i))
        done;
        for i = old_routers to p_routers - 1 do
          Bigarray.Array1.set p_igp (base + i) infinity
        done
      end
      else begin
        let dist = compute_dist t.net rid in
        for i = 0 to p_routers - 1 do
          Bigarray.Array1.set p_igp (base + i) dist.(i)
        done
      end)
    !igp_targets;
  let p_pfx = Array.of_list (Bgp.prefixes t.bgp) in
  let np = Array.length p_pfx in
  let np_old = Array.length old.p_pfx in
  let new2old = Array.make (max 1 np) (-1) in
  let i = ref 0 and j = ref 0 in
  while !i < np_old && !j < np do
    match Prefix.compare old.p_pfx.(!i) p_pfx.(!j) with
    | 0 ->
      new2old.(!j) <- !i;
      incr i;
      incr j
    | c when c < 0 -> incr i
    | _ -> incr j
  done;
  let dirty_col = Array.make (max 1 np) false in
  List.iter
    (fun p ->
      let s = pfx_slot p_pfx p in
      if s >= 0 then dirty_col.(s) <- true)
    dirty;
  for c = 0 to np - 1 do
    if new2old.(c) < 0 then dirty_col.(c) <- true
  done;
  (* ASes whose physical interconnects changed with routing intact
     (parallel-link add/remove, plus new-stub attachments for safety). *)
  let changed_with = Asn.Tbl.create 8 in
  let note (x, y) =
    let add a b =
      Asn.Tbl.replace changed_with a
        (Asn.Set.add b
           (Option.value ~default:Asn.Set.empty (Asn.Tbl.find_opt changed_with a)))
    in
    add x y;
    add y x
  in
  List.iter note churn.Bgp.ch_links_changed;
  List.iter
    (fun (c, provs) -> Asn.Set.iter (fun pr -> note (c, pr)) provs)
    churn.Bgp.ch_new_stubs;
  let p_egr_row = Array.make p_routers (-1) in
  let egr_rows = ref 0 in
  Asn.Set.iter
    (fun asn ->
      List.iter
        (fun (r : Net.router) ->
          if p_egr_row.(r.Net.rid) < 0 then begin
            p_egr_row.(r.Net.rid) <- !egr_rows;
            incr egr_rows
          end)
        (Net.routers_of t.net asn))
    egress_for;
  let p_egress =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout (!egr_rows * np)
  in
  Bigarray.Array1.fill p_egress (-2);
  let plan =
    { p_routers; p_igp_row; p_igp; p_egr_row; p_pfx; p_egress; p_between }
  in
  let scored = { t with plan = Some plan } in
  let snap = Bgp.snapshot_of t.bgp in
  let patched_cells = ref 0 in
  Asn.Set.iter
    (fun asn ->
      let aslot =
        match snap with Some s -> Bgp.Snapshot.asn_slot s asn | None -> -1
      in
      let affected =
        Option.value ~default:Asn.Set.empty (Asn.Tbl.find_opt changed_with asn)
      in
      List.iter
        (fun (r : Net.router) ->
          let base = p_egr_row.(r.Net.rid) * np in
          let obase =
            if r.Net.rid < old_routers && old.p_egr_row.(r.Net.rid) >= 0 then
              old.p_egr_row.(r.Net.rid) * np_old
            else -1
          in
          Array.iteri
            (fun pi p ->
              let route =
                match snap with
                | Some s -> Bgp.Snapshot.route_at s ~pslot:pi ~aslot
                | None -> Bgp.route t.bgp asn p
              in
              match route with
              | None -> ()
              | Some route ->
                let reuse =
                  obase >= 0
                  && (not dirty_col.(pi))
                  && (Asn.Set.is_empty affected
                     || not
                          (Asn.Set.exists
                             (fun z -> Asn.Set.mem z route.Bgp.nexthops)
                             affected))
                in
                let v =
                  if reuse then
                    Bigarray.Array1.get old.p_egress (obase + new2old.(pi))
                  else begin
                    incr patched_cells;
                    egress_lid scored r.Net.rid p route
                  end
                in
                Bigarray.Array1.set p_egress (base + pi) v)
            p_pfx)
        (Net.routers_of t.net asn))
    egress_for;
  Obs.Metrics.add "routing.plan.patched_cells" !patched_cells;
  plan

(* Semantic plan equality, the forwarding-side oracle of the churn
   tests: a scratch freeze of the post-churn world must agree with the
   patched plan on every distance row, every egress cell, and the
   interconnect index. Row *assignment* is compared semantically (same
   routers planned), contents exactly (both sides derive from the same
   deterministic Dijkstra). *)
let plan_equal ~scratch ~patched =
  let fail fmt = Printf.ksprintf Result.error fmt in
  let s = scratch and q = patched in
  if s.p_routers <> q.p_routers then
    fail "router counts differ: %d vs %d" s.p_routers q.p_routers
  else if Array.length s.p_pfx <> Array.length q.p_pfx then
    fail "prefix counts differ: %d vs %d" (Array.length s.p_pfx)
      (Array.length q.p_pfx)
  else begin
    let exception Mismatch of string in
    let failm fmt = Printf.ksprintf (fun m -> raise (Mismatch m)) fmt in
    try
      Array.iteri
        (fun i p ->
          if not (Prefix.equal p q.p_pfx.(i)) then
            failm "prefix slot %d differs: %s vs %s" i (Prefix.to_string p)
              (Prefix.to_string q.p_pfx.(i)))
        s.p_pfx;
      for rid = 0 to s.p_routers - 1 do
        (match (s.p_igp_row.(rid) >= 0, q.p_igp_row.(rid) >= 0) with
        | true, false | false, true ->
          failm "igp row presence differs for router %d" rid
        | false, false -> ()
        | true, true ->
          let sb = s.p_igp_row.(rid) * s.p_routers
          and qb = q.p_igp_row.(rid) * q.p_routers in
          for i = 0 to s.p_routers - 1 do
            let a = Bigarray.Array1.get s.p_igp (sb + i)
            and b = Bigarray.Array1.get q.p_igp (qb + i) in
            if not (Float.equal a b) then
              failm "igp distance to %d from %d differs: %g vs %g" rid i a b
          done);
        match (s.p_egr_row.(rid) >= 0, q.p_egr_row.(rid) >= 0) with
        | true, false | false, true ->
          failm "egress row presence differs for router %d" rid
        | false, false -> ()
        | true, true ->
          let np = Array.length s.p_pfx in
          let sb = s.p_egr_row.(rid) * np and qb = q.p_egr_row.(rid) * np in
          for c = 0 to np - 1 do
            let a = Bigarray.Array1.get s.p_egress (sb + c)
            and b = Bigarray.Array1.get q.p_egress (qb + c) in
            if a <> b then
              failm "egress for router %d prefix %s differs: %d vs %d" rid
                (Prefix.to_string s.p_pfx.(c))
                a b
          done
      done;
      let lids tbl key =
        List.sort Int.compare
          (List.map
             (fun (l : Net.link) -> l.Net.lid)
             (Option.value ~default:[] (Hashtbl.find_opt tbl key)))
      in
      Hashtbl.iter
        (fun key _ ->
          if lids s.p_between key <> lids q.p_between key then
            failm "interconnect index differs for (AS%d, AS%d)" (fst key)
              (snd key))
        s.p_between;
      if Hashtbl.length s.p_between <> Hashtbl.length q.p_between then
        failm "interconnect index sizes differ: %d vs %d"
          (Hashtbl.length s.p_between)
          (Hashtbl.length q.p_between);
      Ok ()
    with Mismatch m -> Error m
  end

type hop = Deliver | Sink | Forward of Net.link | Unreachable

let local_iface r addr =
  List.exists (fun (i : Net.iface) -> Ipv4.equal i.Net.addr addr) r.Net.ifaces
  ||
  match r.Net.canonical with
  | Some c -> Ipv4.equal c addr
  | None -> false

let next_hop ?(flow = 0) t ~rid ~dst =
  let r = Net.router t.net rid in
  if local_iface r dst then Deliver
  else
    match Net.home_of t.net dst with
    | Some home when Asn.equal home.Net.owner r.Net.owner ->
      if home.Net.rid = rid then
        (* Connected-subnet delivery: the address may live on the far
           side of one of this router's links. *)
        match
          List.find_opt
            (fun ((l : Net.link), _) ->
              let far = if fst l.Net.a = rid then l.Net.b else l.Net.a in
              Ipv4.equal (snd far) dst)
            (Net.neighbors t.net rid)
        with
        | Some (l, _) -> Forward l
        | None -> Sink
      else (
        match internal_next_hop ~flow t rid home.Net.rid with
        | Some l -> Forward l
        | None -> Unreachable)
    | _ -> (
      match Bgp.lookup_slot t.bgp r.Net.owner dst with
      | None | Some (_, _, None) -> Unreachable
      | Some (p, pslot, Some route) -> (
        match choose_egress ~pslot t rid p route with
        | None -> Unreachable
        | Some l ->
          let near =
            let ra = fst l.Net.a in
            if Asn.equal (Net.router t.net ra).Net.owner r.Net.owner then ra
            else fst l.Net.b
          in
          if near = rid then Forward l
          else (
            match internal_next_hop ~flow t rid near with
            | Some il -> Forward il
            | None -> Unreachable)))

let egress_link t ~rid ~dst =
  let r = Net.router t.net rid in
  match Net.home_of t.net dst with
  | Some home when Asn.equal home.Net.owner r.Net.owner -> None
  | _ -> (
    match Bgp.lookup_slot t.bgp r.Net.owner dst with
    | None | Some (_, _, None) -> None
    | Some (p, pslot, Some route) -> choose_egress ~pslot t rid p route)

type step = { rid : int; in_link : Net.link option }

let path ?(flow = 0) t ~src_rid ~dst ?(max_hops = 64) () =
  let rec walk rid hops acc =
    if hops >= max_hops then List.rev acc
    else
      match next_hop ~flow t ~rid ~dst with
      | Deliver | Sink | Unreachable -> List.rev acc
      | Forward l ->
        let next, _ = Net.peer_of t.net l rid in
        walk next (hops + 1) ({ rid = next; in_link = Some l } :: acc)
  in
  walk src_rid 0 []

let first_link_iface t ~rid ~dst =
  match next_hop t ~rid ~dst with
  | Forward l ->
    let addr = if fst l.Net.a = rid then snd l.Net.a else snd l.Net.b in
    Some addr
  | Deliver | Sink | Unreachable -> None

let reply_iface t ~rid ~reply_to = first_link_iface t ~rid ~dst:reply_to
let forward_iface t ~rid ~dst = first_link_iface t ~rid ~dst
