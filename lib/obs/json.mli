(** Minimal dependency-free JSON for the observability read side.

    Parses everything the obs emitters write — trace lines from
    {!Span}, [manifest.json] from {!Manifest}, [BENCH.json] from the
    bench harness — into a plain value tree, and renders values back in
    the emitters' own compact conventions ([%g] floats, integers
    verbatim, field order preserved), so a parse/re-render round trip
    of our own output is byte-identical.

    This is deliberately not a general JSON library, and two edge
    behaviors are pinned down (and tested) rather than left to chance:
    integer numerals outside OCaml's [int] range degrade to [Float]
    (never silently wrap), and a duplicate key inside one object is a
    parse {!error} naming the key (never first- or last-wins). [\u]
    escapes beyond U+00FF are stored via a two-byte encoding (our
    emitters never produce them). Parsing never raises; malformed input
    yields a typed {!error}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** field order preserved *)

type error = { pos : int; reason : string }

val error_to_string : error -> string

(** [parse s] parses exactly one JSON value spanning all of [s]
    (leading/trailing whitespace allowed, trailing garbage is an
    error). *)
val parse : string -> (t, error) result

(** Compact single-line rendering; [Obj] fields keep their order. *)
val to_string : t -> string

(** {1 Accessors} — total, [None] on a type mismatch. *)

val member : string -> t -> t option

(** [Int] and [Float] both convert. *)
val to_float : t -> float option

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
