(* Percentile estimation over the fixed log-bucket layout of
   [Metrics.observe]. Buckets are quarter-decade, so the upper edge of
   a bucket is its lower bound times 10^(1/4); within a bucket the mass
   is assumed uniform and the percentile position interpolated
   linearly. That bounds the estimation error by the bucket width
   (~78% relative), which is exactly the resolution the recording side
   chose — no extra state is needed to read p50/p90/p99 back out of
   any already-collected histogram. *)

type quantiles = { p50 : float; p90 : float; p99 : float; max_est : float }

let bucket_width = 10.0 ** 0.25

(* Upper edge of the bucket whose lower bound is [lo]. Bucket 0 (the
   underflow bucket) spans [0, 1e-9). *)
let bucket_upper lo = if lo <= 0.0 then 1e-9 else lo *. bucket_width

let percentile_of_buckets ~count buckets q =
  (* A positive [count] with all-zero bucket populations is an
     inconsistent histogram (e.g. hand-built or truncated on re-parse);
     without this guard the walk would fall off the end and report the
     last bucket's edge as every percentile. *)
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 buckets in
  if count <= 0 || total <= 0 then None
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = q *. float_of_int count in
    let rec walk seen = function
      | [] ->
        (* rank = count lands exactly on the end of the last bucket. *)
        let lo, _ = List.nth buckets (List.length buckets - 1) in
        Some (bucket_upper lo)
      | (lo, n) :: rest ->
        let seen' = seen +. float_of_int n in
        if seen' >= rank && n > 0 then
          let frac = (rank -. seen) /. float_of_int n in
          let frac = if frac < 0.0 then 0.0 else frac in
          Some (lo +. ((bucket_upper lo -. lo) *. frac))
        else walk seen' rest
    in
    walk 0.0 buckets
  end

let max_of_buckets buckets =
  List.fold_left (fun acc (lo, n) -> if n > 0 then bucket_upper lo else acc) 0.0 buckets

let quantiles_of_buckets ~count buckets =
  match
    ( percentile_of_buckets ~count buckets 0.50,
      percentile_of_buckets ~count buckets 0.90,
      percentile_of_buckets ~count buckets 0.99 )
  with
  | Some p50, Some p90, Some p99 ->
    Some { p50; p90; p99; max_est = max_of_buckets buckets }
  | _ -> None

let of_hist (h : Metrics.histogram) =
  quantiles_of_buckets ~count:h.Metrics.h_count h.Metrics.h_buckets
