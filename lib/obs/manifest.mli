(** The per-run [manifest.json] (schema [bdrmap-manifest/2]): what ran
    (command, seed, scale, jobs, config hash), how long each pipeline
    stage took and what it allocated (from the [stage.*] counters
    recorded by {!Span.with_span}, including the per-stage GC deltas),
    and every metric total — histograms carry derived p50/p90/p99/max
    from {!Summary} — written next to the run's output so an inference
    can be audited without re-running it. *)

(** [write ~path ~command ~scale ~jobs ?seed ?config ?extra ()] renders
    the manifest from the current {!Metrics.collect} snapshot and
    writes it to [path].

    [config] is an arbitrary stable rendering of the run configuration;
    the manifest stores its MD5 as [config_hash], so two manifests with
    equal hashes ran identical configurations. [extra] adds free-form
    string pairs (e.g. experiment names). *)
val write :
  path:string ->
  command:string ->
  scale:float ->
  jobs:int ->
  ?seed:int ->
  ?config:string ->
  ?extra:(string * string) list ->
  unit ->
  unit

(** [render ...] is {!write} without the file write (for tests). *)
val render :
  command:string ->
  scale:float ->
  jobs:int ->
  ?seed:int ->
  ?config:string ->
  ?extra:(string * string) list ->
  unit ->
  string

(** Per-stage rollup of the [stage.*] counters: invocation count, wall
    and simulated time, and the GC allocation deltas summed over every
    span of that stage. *)
type stage = {
  st_name : string;
  st_count : int;
  st_wall_s : float;
  st_sim_s : float;
  st_minor_words : int;
  st_major_words : int;
  st_compactions : int;
}

(** [stages metrics] extracts the per-stage records from [stage.*]
    counters, sorted by stage name. *)
val stages : (string * Metrics.value) list -> stage list
