(** The per-run [manifest.json]: what ran (command, seed, scale, jobs,
    config hash), how long each pipeline stage took (from the
    [stage.*] counters recorded by {!Span.with_span}), and every
    metric total — written next to the run's output so an inference
    can be audited without re-running it. *)

(** [write ~path ~command ~scale ~jobs ?seed ?config ?extra ()] renders
    the manifest from the current {!Metrics.collect} snapshot and
    writes it to [path].

    [config] is an arbitrary stable rendering of the run configuration;
    the manifest stores its MD5 as [config_hash], so two manifests with
    equal hashes ran identical configurations. [extra] adds free-form
    string pairs (e.g. experiment names). *)
val write :
  path:string ->
  command:string ->
  scale:float ->
  jobs:int ->
  ?seed:int ->
  ?config:string ->
  ?extra:(string * string) list ->
  unit ->
  unit

(** [render ...] is {!write} without the file write (for tests). *)
val render :
  command:string ->
  scale:float ->
  jobs:int ->
  ?seed:int ->
  ?config:string ->
  ?extra:(string * string) list ->
  unit ->
  string

(** [stages metrics] extracts per-stage timing triples
    [(stage, count, wall_s, sim_s)] from [stage.*] counters, sorted by
    stage name. *)
val stages : (string * Metrics.value) list -> (string * int * float * float) list
