(* Sharded metrics. One shard per domain, reached through domain-local
   storage; the global registry only tracks the shard list (under a
   mutex, touched once per domain) so recording never takes a lock.
   Merges use commutative operations only — see the .mli's determinism
   contract. *)

(* Fixed log-scale buckets: four per decade over [1e-9, 1e6), bucket 0
   catches everything at or below 1e-9, the last bucket everything
   beyond. 62 buckets total. *)
let n_buckets = 62

let bucket_lower i =
  if i <= 0 then 0.0 else 10.0 ** (-9.0 +. (float_of_int (i - 1) /. 4.0))

let bucket_of v =
  if Float.is_nan v then 0
  else if v = Float.infinity then n_buckets - 1
  else if v <= 1e-9 then 0
  else
    let i = 1 + int_of_float (Float.floor ((Float.log10 v +. 9.0) *. 4.0)) in
    let i = if i < 1 then 1 else if i >= n_buckets then n_buckets - 1 else i in
    (* log10 carries float error, so a value at an exact bucket boundary
       can land one off (e.g. log10 1e-6 is a hair above -6). Snap
       against the real boundaries: bucket i covers
       [bucket_lower i, bucket_lower (i+1)). One step is enough — the
       log error is ulps, far below a quarter-decade. *)
    if i + 1 < n_buckets && v >= bucket_lower (i + 1) then i + 1
    else if i > 1 && v < bucket_lower i then i - 1
    else i

type hist = { buckets : int array; mutable sum : float; mutable count : int }
type cell = C of int ref | G of float ref | H of hist
type shard = (string, cell) Hashtbl.t

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let reg_mutex = Mutex.create ()
let shards : shard list ref = ref []

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s : shard = Hashtbl.create 64 in
      Mutex.lock reg_mutex;
      shards := s :: !shards;
      Mutex.unlock reg_mutex;
      s)

let my_shard () = Domain.DLS.get shard_key

let kind_error name =
  invalid_arg ("Obs.Metrics: " ^ name ^ " recorded with conflicting kinds")

let add name n =
  if Atomic.get enabled_flag then begin
    let s = my_shard () in
    match Hashtbl.find_opt s name with
    | Some (C r) -> r := !r + n
    | Some _ -> kind_error name
    | None -> Hashtbl.add s name (C (ref n))
  end

let incr name = add name 1

let gauge_max name v =
  if Atomic.get enabled_flag then begin
    let s = my_shard () in
    match Hashtbl.find_opt s name with
    | Some (G r) -> if v > !r then r := v
    | Some _ -> kind_error name
    | None -> Hashtbl.add s name (G (ref v))
  end

let observe name v =
  if Atomic.get enabled_flag then begin
    let s = my_shard () in
    let h =
      match Hashtbl.find_opt s name with
      | Some (H h) -> h
      | Some _ -> kind_error name
      | None ->
        let h = { buckets = Array.make n_buckets 0; sum = 0.0; count = 0 } in
        Hashtbl.add s name (H h);
        h
    in
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.sum <- h.sum +. v;
    h.count <- h.count + 1
  end

type histogram = { h_sum : float; h_count : int; h_buckets : (float * int) list }
type value = Counter of int | Gauge of float | Histogram of histogram

(* Merge accumulator mirroring [cell]; shards are folded in registration
   order, but every combining operation is commutative and associative,
   so the order cannot matter. *)
let collect () =
  Mutex.lock reg_mutex;
  let ss = !shards in
  Mutex.unlock reg_mutex;
  let acc : (string, cell) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun name cell ->
          match (Hashtbl.find_opt acc name, cell) with
          | None, C r -> Hashtbl.add acc name (C (ref !r))
          | None, G r -> Hashtbl.add acc name (G (ref !r))
          | None, H h ->
            Hashtbl.add acc name
              (H { buckets = Array.copy h.buckets; sum = h.sum; count = h.count })
          | Some (C a), C r -> a := !a + !r
          | Some (G a), G r -> if !r > !a then a := !r
          | Some (H a), H h ->
            Array.iteri (fun i n -> a.buckets.(i) <- a.buckets.(i) + n) h.buckets;
            a.sum <- a.sum +. h.sum;
            a.count <- a.count + h.count
          | Some _, _ -> kind_error name)
        s)
    ss;
  Hashtbl.fold
    (fun name cell out ->
      let v =
        match cell with
        | C r -> Counter !r
        | G r -> Gauge !r
        | H h ->
          let bs = ref [] in
          for i = n_buckets - 1 downto 0 do
            if h.buckets.(i) > 0 then bs := (bucket_lower i, h.buckets.(i)) :: !bs
          done;
          Histogram { h_sum = h.sum; h_count = h.count; h_buckets = !bs }
      in
      (name, v) :: out)
    acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find_counter metrics name =
  match List.assoc_opt name metrics with Some (Counter n) -> n | _ -> 0

let reset () =
  Mutex.lock reg_mutex;
  let ss = !shards in
  Mutex.unlock reg_mutex;
  List.iter Hashtbl.reset ss
