(** Span-based tracing of pipeline stages, emitted as JSONL through a
    pluggable sink.

    Every span carries both clocks the system runs on: monotonic
    wall-clock (nanoseconds, volatile between runs) and the simulated
    probe clock (seconds, deterministic for a fixed seed), plus the
    GC's allocation deltas across the scope. Records are single JSON
    lines with fields in a fixed order; golden fixtures strip the
    volatile fields by {e name} through {!Trace_reader.canonical}
    rather than relying on that order.

    With no sink installed and metrics disabled, {!with_span} runs its
    thunk after a single branch and allocates no trace record —
    enforced by the [check-obs-off] test via {!records_emitted}. Sinks
    must be safe to call from pool worker domains; {!file_sink} and
    {!memory_sink} serialize writes internally. *)

(** {1 Sinks} *)

type sink = { emit : string -> unit; close : unit -> unit }

(** [file_sink path] appends one line per record to [path]
    (mutex-serialized). [close] flushes and closes the channel. *)
val file_sink : string -> sink

(** [memory_sink ()] collects lines in memory; the thunk returns them
    in emission order. *)
val memory_sink : unit -> sink * (unit -> string list)

(** [set_sink s] installs [s] (replacing, not closing, any previous
    sink); [set_sink None] uninstalls. Install from the main domain
    before fanning work out. *)
val set_sink : sink option -> unit

val sink_active : unit -> bool

(** Close and uninstall the current sink, if any. *)
val close_sink : unit -> unit

(** {1 Records} *)

(** Field values for {!event}: strings are JSON-escaped. *)
type v = S of string | I of int | F of float | B of bool

(** [event ~kind fields] emits [{"type":kind, fields...}] if a sink is
    active (otherwise: one branch, no allocation). Fields are emitted
    in list order; put volatile values last. *)
val event : kind:string -> (string * v) list -> unit

(** [with_span ~stage ?vp ?sim f] runs [f]. When a sink is active or
    metrics are enabled it also: times [f] on the wall clock and on
    [sim] (the simulated probe clock, default constant 0); measures the
    [Gc.quick_stat] delta across [f] (minor/major words allocated,
    compactions) so allocation is attributed per stage without a
    profiler; adds [stage.<stage>.count], [.wall_ns], [.sim_us],
    [.gc_minor_words], [.gc_major_words] and [.gc_compactions]
    counters; and emits a span record
    [{"type":"span","stage":...,"vp":...,"seq":N,"sim_start_s":...,
    "sim_end_s":...,"gc_minor_words":...,"gc_major_words":...,
    "gc_compactions":...,"wall_ns":...}]. The volatile fields (GC
    deltas, wall_ns) are emitted after the deterministic ones, but
    readers should strip them by name ({!Trace_reader.canonical}), not
    by position. The span is recorded even when [f] raises. Span
    sequence numbers are process-global and atomic. *)
val with_span : stage:string -> ?vp:string -> ?sim:(unit -> float) -> (unit -> 'a) -> 'a

(** {1 Accounting for the zero-sink fast path} *)

(** Number of trace records (spans + events) emitted since start or
    {!reset_emitted}. Zero after an observability-off run. *)
val records_emitted : unit -> int

val reset_emitted : unit -> unit
