(** The read side of {!Span}: parse a JSONL trace back into typed
    records, canonicalize away the volatile fields, and fold the span
    stream into a per-VP / per-stage call tree.

    Parsing is tolerant exactly where a production trace can be
    damaged: a malformed {e final} line is the signature of a run that
    died mid-record, so it is dropped and surfaced through
    [t.truncated]; a malformed {e interior} line is a hard typed error
    naming the line ({!error}, in the style of [Store.miss]). Nothing
    in this module raises on bad input.

    Volatile fields — [wall_ns] and every [gc_*] delta — are
    classified here, by name, not by position, so golden fixtures and
    diffs no longer depend on the emitter's field order. *)

(** One trace record: its ["type"] plus the remaining fields in
    emission order. *)
type record = { kind : string; fields : (string * Json.t) list }

type err =
  | Garbage of string  (** line is not JSON *)
  | Not_object  (** line is JSON, but not an object *)
  | Missing_kind  (** object has no string ["type"] field *)
  | Unreadable of string  (** the file itself could not be read *)

type error = { line : int; err : err }

val err_label : err -> string
val error_to_string : error -> string

type t = {
  records : record list;
  truncated : bool;  (** a malformed final line was dropped *)
}

(** [volatile_field name] is true for [wall_ns] and [gc_*] fields —
    everything that may differ between two runs of the same seed. *)
val volatile_field : string -> bool

val parse_line : string -> (record, err) result

(** Blank lines and [#] comment lines are skipped. *)
val of_lines : string list -> (t, error) result

val of_file : string -> (t, error) result

(** [render r] re-renders a record byte-identically to what {!Span}
    emitted (field order preserved). *)
val render : record -> string

(** [canonical r] renders [r] with every volatile field removed — the
    deterministic residue golden fixtures pin. *)
val canonical : record -> string

(** {1 Typed span view} *)

type span = {
  stage : string;
  vp : string option;
  seq : int;
  sim_start_s : float;
  sim_end_s : float;
  gc_minor_words : int;
  gc_major_words : int;
  gc_compactions : int;  (** GC fields are 0 for pre-schema traces *)
  wall_ns : int;
}

val span_of : record -> span option

(** {1 Per-stage call tree} *)

type stage_stat = {
  ss_stage : string;
  ss_count : int;
  ss_wall_ns : int;
  ss_sim_s : float;  (** summed simulated-clock interval *)
  ss_minor_words : int;
  ss_major_words : int;
  ss_compactions : int;
}

type vp_group = { vg_vp : string option; vg_stages : stage_stat list }

type summary = {
  sm_vps : vp_group list;  (** first-seen VP order; stages likewise *)
  sm_fires : (string * int) list;  (** heuristic -> fire count *)
  sm_events : (string * int) list;  (** non-span record kinds *)
  sm_spans : int;
  sm_records : int;
  sm_truncated : bool;
}

val summarize : t -> summary

(** [report_lines ?volatile sm] renders the `obs report` table.
    [~volatile:false] omits the wall-clock and GC columns, leaving
    only deterministic output (what the report golden pins). *)
val report_lines : ?volatile:bool -> summary -> string list
