(** A minimal leveled logger for the CLI layer. Messages go to stderr
    (never stdout: inference output must stay byte-identical at any
    verbosity), prefixed with the level. Formatting of suppressed
    messages is skipped via [ifprintf], so a disabled level costs one
    comparison per call. *)

type level = Quiet | Error | Warn | Info | Debug

val set_level : level -> unit

(** [set_verbosity n] maps a CLI count to a level: negative = [Quiet],
    0 = [Warn] (the default), 1 = [Info], 2+ = [Debug]. *)
val set_verbosity : int -> unit

val level : unit -> level
val err : ('a, Format.formatter, unit) format -> 'a
val warn : ('a, Format.formatter, unit) format -> 'a
val info : ('a, Format.formatter, unit) format -> 'a
val debug : ('a, Format.formatter, unit) format -> 'a
