(* OpenMetrics / Prometheus text exposition of a run manifest: the
   bridge between the per-run JSON artifacts and a scrape-based
   monitoring stack (and the future query-service /metrics endpoint).
   Counters keep their totals under a `_total` suffix, stage timings
   become labelled gauges, and the fixed log-bucket histograms convert
   to the cumulative `le`-labelled form Prometheus expects. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let escape_label s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let num = Printf.sprintf "%g"

let of_manifest json =
  match Option.bind (Json.member "schema" json) Json.to_str with
  | None -> Error "no \"schema\" field: not a manifest"
  | Some schema ->
    let buf = Buffer.create 1024 in
    let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let command =
      Option.value ~default:""
        (Option.bind (Json.member "command" json) Json.to_str)
    in
    addf "# TYPE bdrmap_run_info gauge\n";
    addf "bdrmap_run_info{schema=\"%s\",command=\"%s\"} 1\n" (escape_label schema)
      (escape_label command);
    List.iter
      (fun key ->
        match Option.bind (Json.member key json) Json.to_float with
        | Some v ->
          addf "# TYPE bdrmap_run_%s gauge\nbdrmap_run_%s %s\n" key key (num v)
        | None -> ())
      [ "scale"; "jobs"; "trace_records" ];
    (* Per-stage timings and GC deltas as labelled gauges. *)
    (match Option.bind (Json.member "stages" json) Json.to_obj with
    | Some stages when stages <> [] ->
      let fields =
        [ "count"; "wall_s"; "sim_s"; "gc_minor_words"; "gc_major_words";
          "gc_compactions" ]
      in
      List.iter
        (fun field ->
          let rows =
            List.filter_map
              (fun (stage, v) ->
                Option.map
                  (fun f -> (stage, f))
                  (Option.bind (Json.member field v) Json.to_float))
              stages
          in
          if rows <> [] then begin
            addf "# TYPE bdrmap_stage_%s gauge\n" field;
            List.iter
              (fun (stage, f) ->
                addf "bdrmap_stage_%s{stage=\"%s\"} %s\n" field
                  (escape_label stage) (num f))
              rows
          end)
        fields
    | _ -> ());
    (* Metric totals: JSON ints expose as counters, floats as gauges,
       histogram objects as cumulative le-bucketed histograms. *)
    (match Option.bind (Json.member "metrics" json) Json.to_obj with
    | Some metrics ->
      List.iter
        (fun (name, v) ->
          let mname = "bdrmap_" ^ sanitize name in
          match v with
          | Json.Int i ->
            addf "# TYPE %s counter\n%s_total %d\n" mname mname i
          | Json.Float f -> addf "# TYPE %s gauge\n%s %s\n" mname mname (num f)
          | Json.Obj fields ->
            let sum =
              Option.value ~default:0.0
                (Option.bind (List.assoc_opt "sum" fields) Json.to_float)
            in
            let count =
              Option.value ~default:0
                (Option.bind (List.assoc_opt "count" fields) Json.to_int)
            in
            let buckets =
              match Option.bind (List.assoc_opt "buckets" fields) Json.to_list with
              | Some items ->
                List.filter_map
                  (fun item ->
                    match Json.to_list item with
                    | Some [ lo; n ] -> (
                      match (Json.to_float lo, Json.to_int n) with
                      | Some lo, Some n -> Some (lo, n)
                      | _ -> None)
                    | _ -> None)
                  items
              | None -> []
            in
            addf "# TYPE %s histogram\n" mname;
            let cum = ref 0 in
            List.iter
              (fun (lo, n) ->
                cum := !cum + n;
                addf "%s_bucket{le=\"%s\"} %d\n" mname
                  (num (Summary.bucket_upper lo))
                  !cum)
              buckets;
            addf "%s_bucket{le=\"+Inf\"} %d\n" mname count;
            addf "%s_sum %s\n" mname (num sum);
            addf "%s_count %d\n" mname count
          | _ -> ())
        metrics
    | None -> ());
    addf "# EOF\n";
    Ok (Buffer.contents buf)

let of_string s =
  match Json.parse s with
  | Error e -> Error (Json.error_to_string e)
  | Ok json -> of_manifest json

let of_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match of_string (really_input_string ic (in_channel_length ic)) with
        | Ok r -> Ok r
        | Error e -> Error (path ^ ": " ^ e))
