(** Run-to-run regression diffing over the machine-readable artifacts:
    [manifest.json] and [BENCH.json].

    Both artifacts flatten into named numeric series
    ([stage.<s>.wall_s], [metric.<name>], [experiment.<n>.wall_s],
    [corpus.<scenario>.links_pct], [serve.<row>.qps], ...). A {!diff}
    then compares series present in both runs:

    - {e volatile} series (wall-clock, GC deltas, ns/run estimates,
      query-server throughput/latency/allocation rows)
      regress only when run B exceeds run A by the [wall_ratio]
      multiplier {e and} an absolute per-unit noise floor — identical
      or merely jittery runs never fail. Throughput ([qps]) series are
      direction-inverted: a drop regresses, a gain improves;
    - every other series is a pure function of the configuration and
      must match exactly (or within [rel], for cross-config diffs);
    - a series present in A but absent in B is {!Missing} — schema or
      coverage shrank.

    [Improvement] findings are informational; {!regressions} filters to
    the failing subset, which `bdrmap obs diff` turns into a nonzero
    exit code. *)

type kind = Manifest | Bench

val kind_label : kind -> string

type run = { kind : kind; schema : string; series : (string * float) list }

(** [volatile_series name] — wall/GC/ns-per-run series, compared by
    ratio rather than exactly. *)
val volatile_series : string -> bool

(** Absolute slack added on top of the ratio test for a volatile
    series, in that series' own unit. *)
val noise_floor : string -> float

val of_json : Json.t -> (run, string) result
val of_string : string -> (run, string) result
val of_file : string -> (run, string) result

type verdict = Regression | Improvement | Changed | Missing

val verdict_label : verdict -> string

type finding = { f_name : string; f_a : float; f_b : float; f_verdict : verdict }

(** [failing f] is true for [Regression], [Changed] and [Missing]. *)
val failing : finding -> bool

(** [diff ?wall_ratio ?rel a b] compares [b] against baseline [a].
    [wall_ratio] (default 1.5) is the volatile-series multiplier; [rel]
    (default 0: exact) the relative tolerance for deterministic
    series. *)
val diff : ?wall_ratio:float -> ?rel:float -> run -> run -> finding list

val regressions : finding list -> finding list
val finding_to_string : finding -> string
