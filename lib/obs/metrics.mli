(** Domain-safe metrics registry: counters, gauges and histograms with
    fixed log-scale buckets.

    Each domain writes to a private shard (allocated lazily through
    domain-local storage), so {!Netcore.Pool} workers never contend on —
    or race over — a shared table. {!collect} merges all shards with
    commutative, associative operations only (counters and histogram
    buckets sum; gauges keep the maximum), so the merged totals are
    independent of how work items were distributed across domains:
    [-j 1] and [-j N] runs of a deterministic workload report identical
    totals.

    The whole registry is gated on one global flag: while {!enabled} is
    false every recording call returns after a single branch, allocates
    nothing, and creates no shard. Collection and {!reset} must run while
    writer domains are quiescent (between pool batches); recording calls
    themselves are always safe from any domain. *)

(** {1 Gating} *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** {1 Recording} *)

(** [add name n] adds [n] to the counter [name] in this domain's shard. *)
val add : string -> int -> unit

(** [incr name] is [add name 1]. *)
val incr : string -> unit

(** [gauge_max name v] records [v] into gauge [name], keeping the
    maximum observed value. Max (not last-write) is what makes the
    merged value independent of which domain saw which work item. *)
val gauge_max : string -> float -> unit

(** [observe name v] records [v] into histogram [name]. Buckets are
    fixed at four per decade from 1e-9 to 1e6 (plus underflow and
    overflow), so every shard buckets identically and merging is a
    per-bucket sum. *)
val observe : string -> float -> unit

(** {1 Collection} *)

type histogram = {
  h_sum : float;
  h_count : int;
  h_buckets : (float * int) list;
      (** non-empty buckets only, as (inclusive lower bound, count) *)
}

type value = Counter of int | Gauge of float | Histogram of histogram

(** [collect ()] merges every shard and returns the metrics sorted by
    name. Raises [Invalid_argument] if one name was recorded with two
    different kinds. *)
val collect : unit -> (string * value) list

(** [find_counter metrics name] is the counter's total, or 0. *)
val find_counter : (string * value) list -> string -> int

(** [reset ()] clears every shard (the enabled flag is untouched). *)
val reset : unit -> unit

(** [bucket_lower i] / [bucket_of v]: the fixed bucket layout, exposed
    for tests. *)
val bucket_of : float -> int

val bucket_lower : int -> float
