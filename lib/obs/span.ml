type sink = { emit : string -> unit; close : unit -> unit }

(* The installed sink is read from worker domains on every record, so it
   lives in an atomic for safe publication. *)
let current : sink option Atomic.t = Atomic.make None
let seq = Atomic.make 0
let emitted = Atomic.make 0

let set_sink s = Atomic.set current s
let sink_active () = Atomic.get current <> None

let close_sink () =
  match Atomic.get current with
  | None -> ()
  | Some s ->
    Atomic.set current None;
    s.close ()

let records_emitted () = Atomic.get emitted
let reset_emitted () = Atomic.set emitted 0

let file_sink path =
  let oc = open_out path in
  let m = Mutex.create () in
  { emit =
      (fun line ->
        Mutex.lock m;
        output_string oc line;
        output_char oc '\n';
        Mutex.unlock m);
    close =
      (fun () ->
        Mutex.lock m;
        close_out oc;
        Mutex.unlock m) }

let memory_sink () =
  let m = Mutex.create () in
  let lines = ref [] in
  ( { emit =
        (fun line ->
          Mutex.lock m;
          lines := line :: !lines;
          Mutex.unlock m);
      close = (fun () -> ()) },
    fun () -> List.rev !lines )

type v = S of string | I of int | F of float | B of bool

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_field buf (name, v) =
  Buffer.add_string buf ",\"";
  add_escaped buf name;
  Buffer.add_string buf "\":";
  match v with
  | S s ->
    Buffer.add_char buf '"';
    add_escaped buf s;
    Buffer.add_char buf '"'
  | I n -> Buffer.add_string buf (string_of_int n)
  | F f -> Buffer.add_string buf (Printf.sprintf "%g" f)
  | B b -> Buffer.add_string buf (if b then "true" else "false")

let emit_record sink ~kind fields =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"type\":\"";
  add_escaped buf kind;
  Buffer.add_char buf '"';
  List.iter (add_field buf) fields;
  Buffer.add_char buf '}';
  Atomic.incr emitted;
  sink.emit (Buffer.contents buf)

let event ~kind fields =
  match Atomic.get current with
  | None -> ()
  | Some sink -> emit_record sink ~kind fields

let finish_span sink_opt ~stage ~vp ~sim_start ~sim_end ~wall_ns ~gc_minor
    ~gc_major ~gc_compactions =
  Metrics.incr ("stage." ^ stage ^ ".count");
  Metrics.add ("stage." ^ stage ^ ".wall_ns") wall_ns;
  Metrics.add ("stage." ^ stage ^ ".sim_us")
    (int_of_float ((sim_end -. sim_start) *. 1e6));
  Metrics.add ("stage." ^ stage ^ ".gc_minor_words") gc_minor;
  Metrics.add ("stage." ^ stage ^ ".gc_major_words") gc_major;
  Metrics.add ("stage." ^ stage ^ ".gc_compactions") gc_compactions;
  match sink_opt with
  | None -> ()
  | Some sink ->
    let n = Atomic.fetch_and_add seq 1 in
    let base =
      match vp with None -> [] | Some v -> [ ("vp", S v) ]
    in
    (* Volatile fields (GC deltas, then wall_ns) stay last by
       convention, but readers must not rely on it: Trace_reader
       canonicalizes by field name. *)
    emit_record sink ~kind:"span"
      (("stage", S stage)
       :: base
      @ [ ("seq", I n); ("sim_start_s", F sim_start); ("sim_end_s", F sim_end);
          ("gc_minor_words", I gc_minor); ("gc_major_words", I gc_major);
          ("gc_compactions", I gc_compactions); ("wall_ns", I wall_ns) ])

let with_span ~stage ?vp ?sim f =
  let sink_opt = Atomic.get current in
  if sink_opt = None && not (Metrics.enabled ()) then f ()
  else begin
    let simf = match sim with Some g -> g | None -> fun () -> 0.0 in
    let sim_start = simf () in
    (* Gc.counters is the allocation read that stays accurate on the
       running domain (quick_stat only merges domain counters at GC
       slices, so its deltas read as zero across a short span);
       quick_stat is still consulted for the compaction count, which is
       only bumped at stop-the-world events anyway. Both are cheap
       reads, and both happen only on the obs-enabled path. *)
    let minor0, _, major0 = Gc.counters () in
    let compactions0 = (Gc.quick_stat ()).Gc.compactions in
    let wall0 = Unix.gettimeofday () in
    let record () =
      let wall_ns = int_of_float ((Unix.gettimeofday () -. wall0) *. 1e9) in
      let minor1, _, major1 = Gc.counters () in
      finish_span sink_opt ~stage ~vp ~sim_start ~sim_end:(simf ()) ~wall_ns
        ~gc_minor:(int_of_float (minor1 -. minor0))
        ~gc_major:(int_of_float (major1 -. major0))
        ~gc_compactions:((Gc.quick_stat ()).Gc.compactions - compactions0)
    in
    match f () with
    | r ->
      record ();
      r
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      record ();
      Printexc.raise_with_backtrace e bt
  end
