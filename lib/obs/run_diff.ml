(* Run-to-run comparison over the two machine-readable artifacts the
   system emits: manifest.json (per-run) and BENCH.json (per-bench).
   Both flatten into named numeric series; the diff then only has to
   know two things per series — whether it is volatile (wall clock, GC,
   ns/run: compared by ratio against a noise floor) or deterministic
   (counts, sim time, accuracy: compared exactly, modulo an optional
   relative tolerance). A regression is a scriptable build failure:
   `bdrmap obs diff A B` exits nonzero and names the offending series. *)

type kind = Manifest | Bench

let kind_label = function Manifest -> "manifest" | Bench -> "bench"

type run = { kind : kind; schema : string; series : (string * float) list }

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Wall-clock, GC deltas, micro-benchmark estimates and the query-server
   load rows (throughput, round-trip latency, per-query allocation,
   query counts — all functions of a timed window) move run to run on an
   otherwise identical workload; everything else is a pure function of
   the configuration. *)
let volatile_series name =
  contains ~sub:"wall" name || contains ~sub:"gc_" name
  || contains ~sub:"ns_per_run" name || contains ~sub:"created_unix" name
  || contains ~sub:"qps" name || contains ~sub:"rtt_" name
  || contains ~sub:"per_query" name || contains ~sub:".queries" name

(* Throughput runs the other way from every other volatile series:
   higher is better, so the ratio test compares the inverted pair. *)
let inverted_series name = contains ~sub:"qps" name

(* Absolute noise floors under which a volatile ratio blow-up is not a
   regression (a 1us stage doubling to 2us is scheduler noise, not a
   perf bug). Keyed on the unit implied by the series name. *)
let noise_floor name =
  if contains ~sub:"wall_s" name then 0.005
  else if contains ~sub:"wall_ns" name then 5e6
  else if contains ~sub:"ns_per_run" name then 100.0
  else if contains ~sub:"gc_" name then 10_000.0
  else if contains ~sub:"rtt_" name then 25.0 (* us; sub-25us RTTs are all noise *)
  else if contains ~sub:"per_query" name then 2.0 (* amortized metrics words *)
  else if contains ~sub:"qps" name then 50_000.0
  else 0.0

(* ------------------------------------------------------------------ *)
(* Flattening parsed JSON into series.                                *)

let num_fields prefix fields acc =
  List.fold_left
    (fun acc (k, v) ->
      match Json.to_float v with
      | Some f when k <> "created_unix" -> (prefix ^ "." ^ k, f) :: acc
      | _ -> acc)
    acc fields

let manifest_series json =
  let acc = ref [] in
  let top k =
    match Option.bind (Json.member k json) Json.to_float with
    | Some f -> acc := (k, f) :: !acc
    | None -> ()
  in
  List.iter top [ "scale"; "jobs"; "trace_records" ];
  (match Option.bind (Json.member "stages" json) Json.to_obj with
  | Some stages ->
    List.iter
      (fun (stage, v) ->
        match Json.to_obj v with
        | Some fields -> acc := num_fields ("stage." ^ stage) fields !acc
        | None -> ())
      stages
  | None -> ());
  (match Option.bind (Json.member "metrics" json) Json.to_obj with
  | Some metrics ->
    List.iter
      (fun (name, v) ->
        match v with
        | Json.Int _ | Json.Float _ ->
          acc := ("metric." ^ name, Option.get (Json.to_float v)) :: !acc
        | Json.Obj fields ->
          (* histogram: count/sum/percentiles, buckets skipped *)
          acc :=
            num_fields ("metric." ^ name)
              (List.filter (fun (k, _) -> k <> "buckets") fields)
              !acc
        | _ -> ())
      metrics
  | None -> ());
  List.rev !acc

let bench_series json =
  let acc = ref [] in
  let top k =
    match Option.bind (Json.member k json) Json.to_float with
    | Some f -> acc := (k, f) :: !acc
    | None -> ()
  in
  List.iter top [ "scale"; "domains" ];
  let rows key ~name_of ~prefix =
    match Option.bind (Json.member key json) Json.to_list with
    | Some rows ->
      List.iter
        (fun row ->
          match Json.to_obj row with
          | Some fields -> (
            match name_of fields with
            | Some n ->
              acc :=
                num_fields (prefix ^ "." ^ n)
                  (List.filter
                     (fun (k, v) ->
                       Json.to_float v <> None && k <> "intensity"
                       && k <> "epoch")
                     fields)
                  !acc
            | None -> ())
          | None -> ())
        rows
    | None -> ()
  in
  let str_field k fields = Option.bind (List.assoc_opt k fields) Json.to_str in
  rows "experiments" ~name_of:(str_field "name") ~prefix:"experiment";
  rows "stages" ~name_of:(str_field "stage") ~prefix:"stage";
  rows "corpus" ~name_of:(str_field "scenario") ~prefix:"corpus";
  rows "churn" ~name_of:(str_field "name") ~prefix:"churn";
  rows "longitudinal"
    ~name_of:(fun fields ->
      Option.map (Printf.sprintf "%g")
        (Option.bind (List.assoc_opt "epoch" fields) Json.to_float))
    ~prefix:"longitudinal";
  rows "serve" ~name_of:(str_field "name") ~prefix:"serve";
  rows "micro" ~name_of:(str_field "name") ~prefix:"micro";
  rows "metrics" ~name_of:(str_field "name") ~prefix:"metric";
  rows "robustness"
    ~name_of:(fun fields ->
      Option.map (Printf.sprintf "%g")
        (Option.bind (List.assoc_opt "intensity" fields) Json.to_float))
    ~prefix:"robustness";
  List.rev !acc

let of_json json =
  match Option.bind (Json.member "schema" json) Json.to_str with
  | Some schema when contains ~sub:"bdrmap-manifest/" schema ->
    Ok { kind = Manifest; schema; series = manifest_series json }
  | Some schema when contains ~sub:"bdrmap-bench/" schema ->
    Ok { kind = Bench; schema; series = bench_series json }
  | Some schema -> Error (Printf.sprintf "unrecognized schema %S" schema)
  | None -> Error "no \"schema\" field: not a manifest or BENCH.json"

let of_string s =
  match Json.parse s with
  | Error e -> Error (Json.error_to_string e)
  | Ok json -> of_json json

let of_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match of_string (really_input_string ic (in_channel_length ic)) with
        | Ok r -> Ok r
        | Error e -> Error (path ^ ": " ^ e))

(* ------------------------------------------------------------------ *)
(* The diff.                                                          *)

type verdict = Regression | Improvement | Changed | Missing

let verdict_label = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Changed -> "CHANGED"
  | Missing -> "MISSING"

type finding = { f_name : string; f_a : float; f_b : float; f_verdict : verdict }

let failing f = match f.f_verdict with
  | Regression | Changed | Missing -> true
  | Improvement -> false

let diff ?(wall_ratio = 1.5) ?(rel = 0.0) a b =
  let findings = ref [] in
  let push f_name f_a f_b f_verdict =
    findings := { f_name; f_a; f_b; f_verdict } :: !findings
  in
  List.iter
    (fun (name, av) ->
      match List.assoc_opt name b.series with
      | None -> push name av nan Missing
      | Some bv ->
        if volatile_series name then begin
          (* [x] is the "worse if bigger" side: run B for cost series,
             run A for inverted (throughput) series. *)
          let x, y = if inverted_series name then (av, bv) else (bv, av) in
          if x > (y *. wall_ratio) +. noise_floor name then push name av bv Regression
          else if y > (x *. wall_ratio) +. noise_floor name then
            push name av bv Improvement
        end
        else if
          Float.abs (bv -. av) > rel *. Float.max (Float.abs av) (Float.abs bv)
        then push name av bv Changed)
    a.series;
  List.rev !findings

let regressions findings = List.filter failing findings

let finding_to_string f =
  Printf.sprintf "%-11s %-44s %g -> %g%s" (verdict_label f.f_verdict) f.f_name f.f_a
    f.f_b
    (if f.f_a > 0.0 && not (Float.is_nan f.f_b) then
       Printf.sprintf " (%.2fx)" (f.f_b /. f.f_a)
     else "")
