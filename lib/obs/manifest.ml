let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* stage.<name>.count / .wall_ns / .sim_us counter triples, grouped. *)
let stages metrics =
  let tbl : (string, int * int * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter n -> (
        match String.split_on_char '.' name with
        | [ "stage"; stage; field ] ->
          let c, w, s =
            Option.value ~default:(0, 0, 0) (Hashtbl.find_opt tbl stage)
          in
          (match field with
          | "count" -> Hashtbl.replace tbl stage (c + n, w, s)
          | "wall_ns" -> Hashtbl.replace tbl stage (c, w + n, s)
          | "sim_us" -> Hashtbl.replace tbl stage (c, w, s + n)
          | _ -> ())
        | _ -> ())
      | _ -> ())
    metrics;
  Hashtbl.fold
    (fun stage (c, w, s) acc ->
      (stage, c, float_of_int w /. 1e9, float_of_int s /. 1e6) :: acc)
    tbl []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)

let render_value = function
  | Metrics.Counter n -> string_of_int n
  | Metrics.Gauge g -> Printf.sprintf "%g" g
  | Metrics.Histogram h ->
    Printf.sprintf "{\"sum\": %g, \"count\": %d, \"buckets\": [%s]}" h.Metrics.h_sum
      h.Metrics.h_count
      (String.concat ", "
         (List.map
            (fun (lo, n) -> Printf.sprintf "[%g, %d]" lo n)
            h.Metrics.h_buckets))

let render ~command ~scale ~jobs ?seed ?config ?(extra = []) () =
  let metrics = Metrics.collect () in
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "{\n  \"schema\": \"bdrmap-manifest/1\",\n";
  addf "  \"command\": \"%s\",\n" (escape command);
  (match seed with
  | Some s -> addf "  \"seed\": %d,\n" s
  | None -> addf "  \"seed\": null,\n");
  addf "  \"scale\": %g,\n" scale;
  addf "  \"jobs\": %d,\n" jobs;
  (match config with
  | Some c -> addf "  \"config_hash\": \"%s\",\n" (Digest.to_hex (Digest.string c))
  | None -> addf "  \"config_hash\": null,\n");
  List.iter (fun (k, v) -> addf "  \"%s\": \"%s\",\n" (escape k) (escape v)) extra;
  addf "  \"stages\": {\n%s\n  },\n"
    (String.concat ",\n"
       (List.map
          (fun (stage, count, wall_s, sim_s) ->
            Printf.sprintf
              "    \"%s\": {\"count\": %d, \"wall_s\": %.6f, \"sim_s\": %.6f}"
              (escape stage) count wall_s sim_s)
          (stages metrics)));
  addf "  \"metrics\": {\n%s\n  },\n"
    (String.concat ",\n"
       (List.map
          (fun (name, v) -> Printf.sprintf "    \"%s\": %s" (escape name) (render_value v))
          metrics));
  addf "  \"trace_records\": %d,\n" (Span.records_emitted ());
  addf "  \"created_unix\": %.0f\n}\n" (Unix.gettimeofday ());
  Buffer.contents buf

(* Atomic and exception-safe: the manifest is observed either complete
   or not at all, and the channel never leaks — a command that dies
   while writing leaves no torn manifest behind. *)
let write ~path ~command ~scale ~jobs ?seed ?config ?extra () =
  let s = render ~command ~scale ~jobs ?seed ?config ?extra () in
  let tmp = path ^ ".tmp" in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc s)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path
