let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* stage.<name>.* counter groups, one record per stage. *)
type stage = {
  st_name : string;
  st_count : int;
  st_wall_s : float;
  st_sim_s : float;
  st_minor_words : int;
  st_major_words : int;
  st_compactions : int;
}

let stages metrics =
  let tbl : (string, stage) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter n -> (
        match String.split_on_char '.' name with
        | [ "stage"; stage; field ] ->
          let st =
            Option.value
              ~default:
                { st_name = stage; st_count = 0; st_wall_s = 0.0; st_sim_s = 0.0;
                  st_minor_words = 0; st_major_words = 0; st_compactions = 0 }
              (Hashtbl.find_opt tbl stage)
          in
          let st =
            match field with
            | "count" -> { st with st_count = st.st_count + n }
            | "wall_ns" ->
              { st with st_wall_s = st.st_wall_s +. (float_of_int n /. 1e9) }
            | "sim_us" ->
              { st with st_sim_s = st.st_sim_s +. (float_of_int n /. 1e6) }
            | "gc_minor_words" -> { st with st_minor_words = st.st_minor_words + n }
            | "gc_major_words" -> { st with st_major_words = st.st_major_words + n }
            | "gc_compactions" -> { st with st_compactions = st.st_compactions + n }
            | _ -> st
          in
          Hashtbl.replace tbl stage st
        | _ -> ())
      | _ -> ())
    metrics;
  Hashtbl.fold (fun _ st acc -> st :: acc) tbl []
  |> List.sort (fun a b -> String.compare a.st_name b.st_name)

let render_value = function
  | Metrics.Counter n -> string_of_int n
  | Metrics.Gauge g -> Printf.sprintf "%g" g
  | Metrics.Histogram h ->
    (* Percentiles are derived, not recorded: Summary reads them out of
       the same fixed log buckets, so every histogram in the manifest
       carries its p50/p90/p99 with no recording-side state. *)
    let quantiles =
      match Summary.of_hist h with
      | None -> ""
      | Some q ->
        Printf.sprintf ", \"p50\": %g, \"p90\": %g, \"p99\": %g, \"max\": %g"
          q.Summary.p50 q.Summary.p90 q.Summary.p99 q.Summary.max_est
    in
    Printf.sprintf "{\"sum\": %g, \"count\": %d%s, \"buckets\": [%s]}"
      h.Metrics.h_sum h.Metrics.h_count quantiles
      (String.concat ", "
         (List.map
            (fun (lo, n) -> Printf.sprintf "[%g, %d]" lo n)
            h.Metrics.h_buckets))

let render ~command ~scale ~jobs ?seed ?config ?(extra = []) () =
  let metrics = Metrics.collect () in
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "{\n  \"schema\": \"bdrmap-manifest/2\",\n";
  addf "  \"command\": \"%s\",\n" (escape command);
  (match seed with
  | Some s -> addf "  \"seed\": %d,\n" s
  | None -> addf "  \"seed\": null,\n");
  addf "  \"scale\": %g,\n" scale;
  addf "  \"jobs\": %d,\n" jobs;
  (match config with
  | Some c -> addf "  \"config_hash\": \"%s\",\n" (Digest.to_hex (Digest.string c))
  | None -> addf "  \"config_hash\": null,\n");
  List.iter (fun (k, v) -> addf "  \"%s\": \"%s\",\n" (escape k) (escape v)) extra;
  addf "  \"stages\": {\n%s\n  },\n"
    (String.concat ",\n"
       (List.map
          (fun st ->
            Printf.sprintf
              "    \"%s\": {\"count\": %d, \"wall_s\": %.6f, \"sim_s\": %.6f, \
               \"gc_minor_words\": %d, \"gc_major_words\": %d, \
               \"gc_compactions\": %d}"
              (escape st.st_name) st.st_count st.st_wall_s st.st_sim_s
              st.st_minor_words st.st_major_words st.st_compactions)
          (stages metrics)));
  addf "  \"metrics\": {\n%s\n  },\n"
    (String.concat ",\n"
       (List.map
          (fun (name, v) -> Printf.sprintf "    \"%s\": %s" (escape name) (render_value v))
          metrics));
  addf "  \"trace_records\": %d,\n" (Span.records_emitted ());
  addf "  \"created_unix\": %.0f\n}\n" (Unix.gettimeofday ());
  Buffer.contents buf

(* Atomic and exception-safe: the manifest is observed either complete
   or not at all, and the channel never leaks — a command that dies
   while writing leaves no torn manifest behind. *)
let write ~path ~command ~scale ~jobs ?seed ?config ?extra () =
  let s = render ~command ~scale ~jobs ?seed ?config ?extra () in
  let tmp = path ^ ".tmp" in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc s)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path
