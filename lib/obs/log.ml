type level = Quiet | Error | Warn | Info | Debug

let rank = function Quiet -> 0 | Error -> 1 | Warn -> 2 | Info -> 3 | Debug -> 4

let current = Atomic.make (rank Warn)

let set_level l = Atomic.set current (rank l)

let set_verbosity n =
  set_level (if n < 0 then Quiet else if n = 0 then Warn else if n = 1 then Info else Debug)

let level () =
  match Atomic.get current with
  | 0 -> Quiet
  | 1 -> Error
  | 2 -> Warn
  | 3 -> Info
  | _ -> Debug

(* stderr writes from pool workers are serialized per message. *)
let m = Mutex.create ()

let logf lvl tag fmt =
  if rank lvl > Atomic.get current then Format.ifprintf Format.err_formatter fmt
  else
    Format.kasprintf
      (fun msg ->
        Mutex.lock m;
        Printf.eprintf "[bdrmap %s] %s\n%!" tag msg;
        Mutex.unlock m)
      fmt

let err fmt = logf Error "error" fmt
let warn fmt = logf Warn "warn" fmt
let info fmt = logf Info "info" fmt
let debug fmt = logf Debug "debug" fmt
