type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

type error = { pos : int; reason : string }

let error_to_string e = Printf.sprintf "json error at offset %d: %s" e.pos e.reason

exception Fail of error

let fail pos reason = raise (Fail { pos; reason })

(* Recursive-descent parser over the raw string. Field order inside
   objects is preserved, and numbers without a fraction or exponent stay
   [Int] so integer-valued fields round-trip digit-for-digit. *)
let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail !pos (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail !pos (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail !pos "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               if !pos + 4 >= n then fail !pos "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | None -> fail !pos ("bad \\u escape " ^ hex)
               | Some code ->
                 (* The emitters only escape control bytes, so codes
                    beyond one byte are stored UTF-8-style via the
                    2-byte encoding; that covers re-reading our own
                    output, which never goes past U+00FF. *)
                 if code < 0x80 then Buffer.add_char buf (Char.chr code)
                 else begin
                   Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end;
                 pos := !pos + 5)
             | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_digit () =
      match peek () with Some ('0' .. '9') -> true | _ -> false
    in
    if not (is_digit ()) then fail !pos "expected a digit";
    while is_digit () do advance () done;
    let fractional = ref false in
    if peek () = Some '.' then begin
      fractional := true;
      advance ();
      if not (is_digit ()) then fail !pos "expected a digit after '.'";
      while is_digit () do advance () done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      fractional := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      if not (is_digit ()) then fail !pos "expected a digit in exponent";
      while is_digit () do advance () done
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !fractional then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail start ("bad number " ^ text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        (* Out of int range: keep it as a float rather than failing. *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail start ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let kpos = !pos in
          let key = parse_string () in
          (* Our emitters never repeat a key, so a duplicate means the
             document is corrupt (e.g. a clobbered manifest); surface it
             instead of silently letting [member]'s first-wins hide the
             second binding. *)
          if List.exists (fun (k, _) -> String.equal k key) !fields then
            fail kpos (Printf.sprintf "duplicate object key %S" key);
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail !pos "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail !pos "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail !pos "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Fail e -> Error e

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Compact rendering matching the emitters' conventions: floats via %g,
   ints verbatim, strings escaped like [Span]/[Manifest] escape them. *)
let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%g" f)
  | String s ->
    Buffer.add_char buf '"';
    add_escaped buf s;
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        add_escaped buf k;
        Buffer.add_string buf "\":";
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  add buf v;
  Buffer.contents buf

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_obj = function Obj fields -> Some fields | _ -> None
