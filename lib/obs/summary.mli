(** Percentile estimation from the fixed log-bucket histograms of
    {!Metrics}.

    Buckets are quarter-decade wide, so a percentile read back from a
    collected histogram is exact to within one bucket; within a bucket
    the mass is interpolated uniformly. This is the entire "summary"
    side of the metrics pipeline: any histogram — live from
    {!Metrics.collect}, or re-parsed out of a manifest or BENCH.json —
    summarizes to p50/p90/p99/max with no recording-side changes. *)

type quantiles = {
  p50 : float;
  p90 : float;
  p99 : float;
  max_est : float;  (** upper edge of the highest non-empty bucket *)
}

(** [bucket_upper lo] is the upper edge of the bucket whose inclusive
    lower bound is [lo] (the underflow bucket's edge for [lo <= 0]). *)
val bucket_upper : float -> float

(** [percentile_of_buckets ~count buckets q] estimates the [q]-quantile
    ([0..1], clamped) from non-empty [(lower_bound, count)] buckets in
    ascending order totalling [count] observations. [None] when the
    histogram carries no mass — [count <= 0] {e or} every bucket
    population is zero (an inconsistent histogram never yields a bogus
    edge value). *)
val percentile_of_buckets : count:int -> (float * int) list -> float -> float option

val quantiles_of_buckets : count:int -> (float * int) list -> quantiles option

(** [of_hist h] summarizes a collected histogram. [None] iff empty. *)
val of_hist : Metrics.histogram -> quantiles option
