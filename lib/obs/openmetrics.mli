(** OpenMetrics / Prometheus text exposition of a run manifest.

    Converts the [manifest.json] written by {!Manifest} into the
    scrape-ready text format: run metadata as an info gauge, per-stage
    timings and GC deltas as [stage]-labelled gauges, counters under a
    [_total] suffix, and the fixed log-bucket histograms as cumulative
    [le]-labelled Prometheus histograms (bucket lower bounds become the
    conventional inclusive upper edges). The output ends with the
    OpenMetrics [# EOF] terminator. *)

(** Metric-name sanitization: anything outside [[a-zA-Z0-9_]] becomes
    [_]. *)
val sanitize : string -> string

val of_manifest : Json.t -> (string, string) result
val of_string : string -> (string, string) result
val of_file : string -> (string, string) result
