type record = { kind : string; fields : (string * Json.t) list }

type err =
  | Garbage of string
  | Not_object
  | Missing_kind
  | Unreadable of string

type error = { line : int; err : err }

let err_label = function
  | Garbage reason -> "garbage: " ^ reason
  | Not_object -> "not a JSON object"
  | Missing_kind -> "record has no \"type\" field"
  | Unreadable reason -> "unreadable: " ^ reason

let error_to_string e = Printf.sprintf "trace line %d: %s" e.line (err_label e.err)

type t = { records : record list; truncated : bool }

(* Volatile fields: wall-clock and GC deltas change run to run even for
   a fixed seed; everything else in a record is deterministic. The
   reader owns this classification so fixtures and diffs never depend
   on where the emitter put a field. *)
let volatile_field name =
  name = "wall_ns"
  || (String.length name >= 3 && String.sub name 0 3 = "gc_")

let parse_line line =
  match Json.parse line with
  | Error e -> Error (Garbage (Json.error_to_string e))
  | Ok (Json.Obj fields) -> (
    match List.assoc_opt "type" fields with
    | Some (Json.String kind) ->
      Ok { kind; fields = List.filter (fun (k, _) -> k <> "type") fields }
    | Some _ | None -> Error Missing_kind)
  | Ok _ -> Error Not_object

let skippable line =
  line = "" || line.[0] = '#'
  || String.for_all (function ' ' | '\t' | '\r' -> true | _ -> false) line

(* A malformed FINAL line is the signature of a crashed run (the sink
   died mid-record), so it is dropped and reported through
   [truncated]; malformed interior lines are hard errors. *)
let of_lines lines =
  let numbered =
    List.filteri (fun _ _ -> true) lines
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) -> not (skippable l))
  in
  let last = match List.rev numbered with [] -> -1 | (n, _) :: _ -> n in
  let rec go acc = function
    | [] -> Ok { records = List.rev acc; truncated = false }
    | (n, l) :: rest -> (
      match parse_line l with
      | Ok r -> go (r :: acc) rest
      | Error e ->
        if n = last then Ok { records = List.rev acc; truncated = true }
        else Error { line = n; err = e })
  in
  go [] numbered

let of_file path =
  match open_in path with
  | exception Sys_error msg -> Error { line = 0; err = Unreadable msg }
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        of_lines (List.rev !lines))

let render r = Json.to_string (Json.Obj (("type", Json.String r.kind) :: r.fields))

let canonical r =
  render { r with fields = List.filter (fun (k, _) -> not (volatile_field k)) r.fields }

(* Typed view of a span record. Missing GC fields (pre-PR-8 traces)
   default to zero, so old traces still read. *)
type span = {
  stage : string;
  vp : string option;
  seq : int;
  sim_start_s : float;
  sim_end_s : float;
  gc_minor_words : int;
  gc_major_words : int;
  gc_compactions : int;
  wall_ns : int;
}

let field_int r name d =
  match List.assoc_opt name r.fields with
  | Some v -> Option.value ~default:d (Json.to_int v)
  | None -> d

let field_float r name d =
  match List.assoc_opt name r.fields with
  | Some v -> Option.value ~default:d (Json.to_float v)
  | None -> d

let span_of r =
  if r.kind <> "span" then None
  else
    match List.assoc_opt "stage" r.fields with
    | Some (Json.String stage) ->
      Some
        {
          stage;
          vp =
            Option.bind (List.assoc_opt "vp" r.fields) Json.to_str;
          seq = field_int r "seq" 0;
          sim_start_s = field_float r "sim_start_s" 0.0;
          sim_end_s = field_float r "sim_end_s" 0.0;
          gc_minor_words = field_int r "gc_minor_words" 0;
          gc_major_words = field_int r "gc_major_words" 0;
          gc_compactions = field_int r "gc_compactions" 0;
          wall_ns = field_int r "wall_ns" 0;
        }
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Per-stage call tree.                                               *)

type stage_stat = {
  ss_stage : string;
  ss_count : int;
  ss_wall_ns : int;
  ss_sim_s : float;
  ss_minor_words : int;
  ss_major_words : int;
  ss_compactions : int;
}

type vp_group = { vg_vp : string option; vg_stages : stage_stat list }

type summary = {
  sm_vps : vp_group list;
  sm_fires : (string * int) list;
  sm_events : (string * int) list;
  sm_spans : int;
  sm_records : int;
  sm_truncated : bool;
}

(* Association-list accumulation keyed on first-seen order: traces are
   small relative to what produced them, and first-seen order is the
   deterministic emission order the golden fixtures pin. *)
let upsert key f xs =
  let rec go = function
    | [] -> [ (key, f None) ]
    | (k, v) :: rest when k = key -> (k, f (Some v)) :: rest
    | kv :: rest -> kv :: go rest
  in
  go xs

let summarize t =
  let vps = ref [] and fires = ref [] and events = ref [] and spans = ref 0 in
  List.iter
    (fun r ->
      match span_of r with
      | Some s ->
        incr spans;
        vps :=
          upsert s.vp
            (fun stages ->
              upsert s.stage
                (fun st ->
                  let st =
                    Option.value
                      ~default:
                        {
                          ss_stage = s.stage;
                          ss_count = 0;
                          ss_wall_ns = 0;
                          ss_sim_s = 0.0;
                          ss_minor_words = 0;
                          ss_major_words = 0;
                          ss_compactions = 0;
                        }
                      st
                  in
                  {
                    st with
                    ss_count = st.ss_count + 1;
                    ss_wall_ns = st.ss_wall_ns + s.wall_ns;
                    ss_sim_s = st.ss_sim_s +. (s.sim_end_s -. s.sim_start_s);
                    ss_minor_words = st.ss_minor_words + s.gc_minor_words;
                    ss_major_words = st.ss_major_words + s.gc_major_words;
                    ss_compactions = st.ss_compactions + s.gc_compactions;
                  })
                (Option.value ~default:[] stages))
            !vps
      | None ->
        events := upsert r.kind (fun n -> 1 + Option.value ~default:0 n) !events;
        if r.kind = "heuristic_fire" then
          match
            (List.assoc_opt "heuristic" r.fields, List.assoc_opt "count" r.fields)
          with
          | Some (Json.String h), Some n ->
            let n = Option.value ~default:0 (Json.to_int n) in
            fires := upsert h (fun m -> n + Option.value ~default:0 m) !fires
          | _ -> ())
    t.records;
  {
    sm_vps =
      List.map (fun (vp, stages) -> { vg_vp = vp; vg_stages = List.map snd stages }) !vps;
    sm_fires = !fires;
    sm_events = !events;
    sm_spans = !spans;
    sm_records = List.length t.records;
    sm_truncated = t.truncated;
  }

(* ------------------------------------------------------------------ *)
(* Report rendering (the `obs report` body).                          *)

let report_lines ?(volatile = true) sm =
  let out = ref [] in
  let addf fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  addf "trace: %d records (%d spans)%s" sm.sm_records sm.sm_spans
    (if sm.sm_truncated then ", TRUNCATED TAIL (crashed run?)" else "");
  let header =
    if volatile then
      Printf.sprintf "  %-12s %5s %12s %12s %12s %10s %5s" "stage" "count" "sim_s"
        "wall_ms" "minor_w" "major_w" "cmpct"
    else Printf.sprintf "  %-12s %5s %12s" "stage" "count" "sim_s"
  in
  List.iter
    (fun vg ->
      addf "vp %s" (Option.value ~default:"(none)" vg.vg_vp);
      addf "%s" header;
      List.iter
        (fun st ->
          if volatile then
            addf "  %-12s %5d %12.3f %12.3f %12d %10d %5d" st.ss_stage st.ss_count
              st.ss_sim_s
              (float_of_int st.ss_wall_ns /. 1e6)
              st.ss_minor_words st.ss_major_words st.ss_compactions
          else addf "  %-12s %5d %12.3f" st.ss_stage st.ss_count st.ss_sim_s)
        vg.vg_stages)
    sm.sm_vps;
  if sm.sm_fires <> [] then begin
    addf "heuristic fires";
    List.iter (fun (h, n) -> addf "  %-16s %5d" h n) sm.sm_fires
  end;
  if sm.sm_events <> [] then begin
    addf "events";
    List.iter (fun (k, n) -> addf "  %-16s %5d" k n) sm.sm_events
  end;
  List.rev !out
