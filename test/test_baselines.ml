(* The baseline algorithms on both synthetic traces and a generated
   world: the naive approach fires on every host->external transition;
   the MAP-IT-style rule needs two adjacent far-side interfaces. *)

open Netcore
module B = Bgpdata

let ip = Ipv4.of_string_exn

let ip2as =
  let rib =
    Result.get_ok
      (B.Rib.of_lines [ "81.0.0.0/16|900 64500"; "82.0.0.0/16|900 65001" ])
  in
  let dels = Result.get_ok (B.Delegation.of_lines []) in
  let ixp = Result.get_ok (B.Ixp.of_lines []) in
  Bdrmap.Ip2as.create ~rib ~ixp ~delegations:dels ~vp_asns:(Asn.Set.singleton 64500)

let trace dst hops =
  { Bdrmap.Trace.dst = ip dst;
    target_asn = 65001;
    hops = List.mapi (fun i a -> (i + 1, ip a)) hops;
    closing = Bdrmap.Trace.Nothing;
    stopped = false }

let test_naive_fires_on_transition () =
  let links =
    Bdrmap.Baselines.naive_ipas ip2as
      [ trace "82.0.5.1" [ "81.0.0.1"; "81.0.0.5"; "82.0.0.9" ] ]
  in
  Alcotest.(check int) "one link" 1 (List.length links);
  let l = List.hd links in
  Alcotest.(check string) "near" "81.0.0.5" (Ipv4.to_string l.near_addr);
  Alcotest.(check int) "neighbor" 65001 l.neighbor

let test_mapit_needs_two_far_hops () =
  let one_far = [ trace "82.0.5.1" [ "81.0.0.1"; "81.0.0.5"; "82.0.0.9" ] ] in
  Alcotest.(check int) "path-end border invisible" 0
    (List.length (Bdrmap.Baselines.mapit ip2as one_far));
  let two_far = [ trace "82.0.5.1" [ "81.0.0.1"; "81.0.0.5"; "82.0.0.9"; "82.0.1.9" ] ] in
  Alcotest.(check int) "two far hops suffice" 1
    (List.length (Bdrmap.Baselines.mapit ip2as two_far))

let test_dedup () =
  let t = trace "82.0.5.1" [ "81.0.0.1"; "82.0.0.9" ] in
  let links = Bdrmap.Baselines.naive_ipas ip2as [ t; t; t ] in
  Alcotest.(check int) "duplicates collapsed" 1 (List.length links)

let test_world_comparison () =
  (* bdrmap must find strictly more neighbors than the MAP-IT rule on a
     generated world (the paper's half-the-links observation). *)
  let t = Experiments.Exp_baselines.run ~scale:0.3 () in
  match t.rows with
  | [ bdr; naive; mapit ] ->
    Alcotest.(check string) "order" "bdrmap" bdr.algorithm;
    Alcotest.(check bool) "bdrmap finds most links" true
      (bdr.links > naive.links && bdr.links > mapit.links);
    Alcotest.(check bool) "mapit misses path-end borders" true
      (mapit.links * 2 <= bdr.links);
    Alcotest.(check bool) "bdrmap accuracy high" true (bdr.correct_pct >= 85.0)
  | _ -> Alcotest.fail "expected three rows"

let suite =
  [ Alcotest.test_case "naive transition" `Quick test_naive_fires_on_transition;
    Alcotest.test_case "mapit adjacency requirement" `Quick test_mapit_needs_two_far_hops;
    Alcotest.test_case "dedup" `Quick test_dedup;
    Alcotest.test_case "world comparison" `Slow test_world_comparison ]
