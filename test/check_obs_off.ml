(* check-obs-off: with no sink installed and metrics disabled, a full
   pipeline run must emit zero trace records and record zero metrics —
   the observability layer costs exactly one branch on hot paths. Run
   via `dune build @check-obs-off` (also attached to runtest). *)

let () =
  Obs.Metrics.disable ();
  Obs.Metrics.reset ();
  Obs.Span.reset_emitted ();
  let w = Topogen.Gen.generate Topogen.Scenario.tiny in
  let _bgp, _fwd, engine, inputs = Bdrmap.Pipeline.setup w in
  let vp = List.hd w.Topogen.Gen.vps in
  ignore (Bdrmap.Pipeline.execute engine inputs ~vp);
  let records = Obs.Span.records_emitted () in
  let metrics = Obs.Metrics.collect () in
  if records <> 0 then begin
    Printf.eprintf "check-obs-off: %d trace records emitted with no sink\n" records;
    exit 1
  end;
  if metrics <> [] then begin
    Printf.eprintf "check-obs-off: %d metrics recorded while disabled\n"
      (List.length metrics);
    exit 1
  end;
  print_endline "check-obs-off: ok (0 trace records, 0 metrics)"
