(* Adversarial corpus registry invariants: unique names, sane floors,
   in-domain parameters at every gated scale, and the lookup API. The
   accuracy gating itself runs in the bench harness (check_bench) and
   the @check-corpus golden fixture. *)

module Gen = Topogen.Gen
module Corpus = Topogen.Corpus

let test_registry_shape () =
  let names = List.map (fun s -> s.Corpus.sc_name) Corpus.all in
  Alcotest.(check bool) "at least 8 scenarios" true (List.length names >= 8);
  Alcotest.(check int) "names unique"
    (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun s ->
      let ok f = f > 0.0 && f <= 100.0 in
      Alcotest.(check bool)
        (s.Corpus.sc_name ^ " link floor in (0,100]")
        true (ok s.Corpus.sc_link_floor);
      Alcotest.(check bool)
        (s.Corpus.sc_name ^ " router floor in (0,100]")
        true (ok s.Corpus.sc_router_floor);
      Alcotest.(check bool)
        (s.Corpus.sc_name ^ " has a target")
        true
        (String.length s.Corpus.sc_target > 0))
    Corpus.all

let test_params_in_domain () =
  (* Every scenario's parameters must pass generator validation at the
     scales the gates run (bench 0.1, @check-corpus 0.15, CLI default
     0.3), and keep at least one VP for the single-VP experiment. *)
  List.iter
    (fun s ->
      List.iter
        (fun scale ->
          let p = s.Corpus.sc_params ~scale in
          Gen.validate_params p;
          Alcotest.(check bool)
            (Printf.sprintf "%s@%g has a VP" s.Corpus.sc_name scale)
            true (p.Gen.n_vps >= 1);
          Alcotest.(check string)
            (Printf.sprintf "%s@%g params named after scenario"
               s.Corpus.sc_name scale)
            s.Corpus.sc_name p.Gen.name)
        [ 0.1; 0.15; 0.3 ])
    Corpus.all

let test_seeds_distinct () =
  let seeds =
    List.map (fun s -> (s.Corpus.sc_params ~scale:0.15).Gen.seed) Corpus.all
  in
  Alcotest.(check int) "world seeds pairwise distinct" (List.length seeds)
    (List.length (List.sort_uniq compare seeds))

let test_by_name () =
  List.iter
    (fun s ->
      match Corpus.by_name s.Corpus.sc_name with
      | Some s' ->
        Alcotest.(check string) "by_name finds itself" s.Corpus.sc_name
          s'.Corpus.sc_name
      | None -> Alcotest.failf "by_name missed %s" s.Corpus.sc_name)
    Corpus.all;
  Alcotest.(check bool) "unknown name is None" true
    (Corpus.by_name "no_such_scenario" = None)

let test_hostile_world_generates () =
  (* One representative hostile world end to end: the stale-IXP world
     must actually starve the registry relative to the same world with
     the knob at its default. *)
  let sc = Option.get (Corpus.by_name "stale_ixp") in
  let p = sc.Corpus.sc_params ~scale:0.1 in
  let w = Gen.generate p in
  let w_fresh = Gen.generate { p with Gen.p_ixp_member = 0.85 } in
  let members w =
    List.length (Bgpdata.Ixp.members w.Gen.ixp_registry)
  in
  Alcotest.(check bool) "stale registry has fewer members" true
    (members w < members w_fresh)

let suite =
  [ Alcotest.test_case "registry shape" `Quick test_registry_shape;
    Alcotest.test_case "params in domain at gated scales" `Quick
      test_params_in_domain;
    Alcotest.test_case "world seeds distinct" `Quick test_seeds_distinct;
    Alcotest.test_case "by_name" `Quick test_by_name;
    Alcotest.test_case "stale_ixp starves the registry" `Quick
      test_hostile_world_generates ]
