(* Scenario preset invariants: every preset generates a consistent world
   with the advertised shape, and scaling shrinks neighbor counts. *)

module Gen = Topogen.Gen
module Net = Topogen.Net
open Netcore

let presets =
  [ ("r_and_e", Topogen.Scenario.r_and_e ~scale:0.2 (), 1);
    ("large_access", Topogen.Scenario.large_access ~scale:0.1 (), 19);
    ("tier1", Topogen.Scenario.tier1 ~scale:0.1 (), 4);
    ("small_access", Topogen.Scenario.small_access ~scale:0.2 (), 2) ]

let test_presets_generate () =
  List.iter
    (fun (name, params, n_vps) ->
      let w = Gen.generate params in
      Alcotest.(check int) (name ^ " vps") n_vps (List.length w.vps);
      Alcotest.(check bool) (name ^ " routers") true (Net.router_count w.net > 50);
      Alcotest.(check bool) (name ^ " interdomain links") true
        (List.length (Net.interdomain_links w.net) > 20);
      (* Every VP router belongs to the hosting AS. *)
      List.iter
        (fun (vp : Gen.vp) ->
          Alcotest.(check int) (name ^ " vp owner") w.host_asn
            (Net.router w.net vp.vp_rid).Net.owner)
        w.vps)
    presets

let test_tier1_has_no_providers () =
  let w = Gen.generate (Topogen.Scenario.tier1 ~scale:0.1 ()) in
  let truth = Gen.host_neighbor_truth w in
  Alcotest.(check int) "no providers" 0
    (Asn.Map.fold (fun _ v n -> if v = `Provider then n + 1 else n) truth 0)

let test_scale_shrinks () =
  let big = Gen.generate (Topogen.Scenario.r_and_e ~scale:0.6 ()) in
  let small = Gen.generate (Topogen.Scenario.r_and_e ~scale:0.2 ()) in
  Alcotest.(check bool) "fewer routers at smaller scale" true
    (Net.router_count small.net < Net.router_count big.net)

let test_by_name () =
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (Topogen.Scenario.by_name name <> None))
    [ "r_and_e"; "large_access"; "tier1"; "small_access" ];
  Alcotest.(check bool) "unknown" true (Topogen.Scenario.by_name "nope" = None)

let test_big_peer_links_scale_with_preset () =
  let w = Gen.generate (Topogen.Scenario.large_access ~scale:0.1 ()) in
  Alcotest.(check int) "45 big-peer links" 45
    (List.length (Net.interdomain_links_between w.net w.host_asn w.big_peer))

let test_rate_limiting () =
  (* A rate-limited engine still completes traces, with gaps. *)
  let w = Gen.generate Topogen.Scenario.tiny in
  let bgp =
    Routing.Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
      ~selective:w.Gen.selective
  in
  let fwd = Routing.Forwarding.create w.Gen.net bgp in
  (* Migrated off the deprecated [rate_limit_p] argument: the fault
     config's [legacy_rl_p] feeds the same dedicated RNG stream, so the
     drop sequence (and this test's counts) are unchanged. *)
  let engine =
    Probesim.Engine.create
      ~fault:{ (Probesim.Fault.of_profile w) with Probesim.Fault.legacy_rl_p = 0.3 }
      w fwd
  in
  let vp = List.hd w.vps in
  let dsts =
    List.filter_map
      (fun (p, o) ->
        if Asn.Set.mem w.host_asn o then None else Some (Ipv4.add (Prefix.first p) 1))
      (Gen.originated w)
    |> List.filteri (fun i _ -> i < 30)
  in
  let with_reply, without_reply =
    List.fold_left
      (fun (r, n) dst ->
        let hops = Probesim.Engine.traceroute engine ~vp ~dst () in
        List.fold_left
          (fun (r, n) (h : Probesim.Engine.hop) ->
            match h.reply with
            | Some _ -> (r + 1, n)
            | None -> (r, n + 1))
          (r, n) hops)
      (0, 0) dsts
  in
  Alcotest.(check bool) "some replies survive" true (with_reply > 50);
  Alcotest.(check bool) "rate limiting produces gaps" true (without_reply > 10)

let suite =
  [ Alcotest.test_case "presets generate" `Quick test_presets_generate;
    Alcotest.test_case "tier1 has no providers" `Quick test_tier1_has_no_providers;
    Alcotest.test_case "scale shrinks" `Quick test_scale_shrinks;
    Alcotest.test_case "by_name" `Quick test_by_name;
    Alcotest.test_case "big peer link count" `Quick test_big_peer_links_scale_with_preset;
    Alcotest.test_case "rate limiting" `Quick test_rate_limiting ]
