open Netcore
module B = Bgpdata

let ip = Ipv4.of_string_exn

let make () =
  let rib =
    Result.get_ok
      (B.Rib.of_lines
         [ "81.0.0.0/16|900 64500";
           "81.128.0.0/16|900 64501";
           "82.0.0.0/16|900 65001";
           "83.0.0.0/16|900 65002";
           "83.0.0.0/16|901 65003" ])
  in
  let dels =
    Result.get_ok
      (B.Delegation.of_lines
         [ "sim|US|ipv4|81.0.0.0|65536|20160101|allocated|org-host";
           "sim|US|ipv4|81.128.0.0|65536|20160101|allocated|org-host";
           "sim|US|ipv4|87.0.0.0|65536|20160101|allocated|org-host";
           "sim|US|ipv4|82.0.0.0|65536|20160101|allocated|org-a";
           "sim|US|ipv4|88.0.0.0|65536|20160101|allocated|org-a" ])
  in
  let ixp = Result.get_ok (B.Ixp.of_lines [ "prefix|86.0.0.0/24|test-ix" ]) in
  Bdrmap.Ip2as.create ~rib ~ixp ~delegations:dels
    ~vp_asns:(Asn.Set.of_list [ 64500; 64501 ])

let check t addr expected =
  let show = function
    | Bdrmap.Ip2as.Host -> "host"
    | Bdrmap.Ip2as.External asns ->
      "ext:" ^ String.concat "," (List.map string_of_int (Asn.Set.elements asns))
    | Bdrmap.Ip2as.Ixp name -> "ixp:" ^ name
    | Bdrmap.Ip2as.Unrouted -> "unrouted"
    | Bdrmap.Ip2as.Reserved -> "reserved"
  in
  Alcotest.(check string) addr expected (show (Bdrmap.Ip2as.classify t (ip addr)))

let test_basic () =
  let t = make () in
  check t "81.0.1.2" "host";
  check t "81.128.0.1" "host";
  check t "82.0.0.1" "ext:65001";
  check t "83.0.0.1" "ext:65002,65003";
  check t "86.0.0.5" "ixp:test-ix";
  check t "89.0.0.1" "unrouted";
  check t "192.168.1.1" "reserved";
  check t "224.0.0.1" "reserved"

let test_unrouted_host_delegation () =
  (* 87.0.0.0/16 is not announced but delegated to the hosting org:
     classified Host (§5.4.1 / fig-12 semantics). *)
  let t = make () in
  check t "87.0.0.1" "host";
  (* 88.0.0.0/16 belongs to org-a but is unannounced: stays unrouted. *)
  check t "88.0.0.1" "unrouted"

let test_single_external () =
  let t = make () in
  Alcotest.(check (option int)) "single" (Some 65001)
    (Bdrmap.Ip2as.single_external t (ip "82.0.0.1"));
  Alcotest.(check (option int)) "moas has no single" None
    (Bdrmap.Ip2as.single_external t (ip "83.0.0.1"));
  Alcotest.(check (option int)) "host is not external" None
    (Bdrmap.Ip2as.single_external t (ip "81.0.0.1"))

let test_is_host () =
  let t = make () in
  Alcotest.(check bool) "host addr" true (Bdrmap.Ip2as.is_host t (ip "81.0.0.1"));
  Alcotest.(check bool) "sibling addr" true (Bdrmap.Ip2as.is_host t (ip "81.128.0.1"));
  Alcotest.(check bool) "external addr" false (Bdrmap.Ip2as.is_host t (ip "82.0.0.1"))

let suite =
  [ Alcotest.test_case "classification" `Quick test_basic;
    Alcotest.test_case "unrouted host delegation" `Quick test_unrouted_host_delegation;
    Alcotest.test_case "single external" `Quick test_single_external;
    Alcotest.test_case "is_host" `Quick test_is_host ]
