(* The sequential block allocator's ceiling arithmetic: a block ending
   exactly at 223.255.255.255 is the last one handed out, anything past
   it is a typed Invalid_argument (never a silently mis-aligned block
   reaching into multicast space — the historical bug re-aligned after
   the exhaustion check). *)

open Netcore

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let prefix = Alcotest.testable
    (fun ppf p -> Format.pp_print_string ppf (Prefix.to_string p))
    (fun a b -> Prefix.to_string a = Prefix.to_string b)

let exhausted f =
  match f () with
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      "error names the allocator and the exhaustion" true
      (contains ~sub:"Addressing.alloc_block" msg
      && contains ~sub:"exhausted" msg)
  | (_ : Prefix.t) -> Alcotest.fail "allocation past the ceiling succeeded"

let test_last_quarter_fits () =
  (* /4 blocks tile the space exactly: the 13th starts at 208.0.0.0 and
     ends at 223.255.255.255 — the ceiling itself — so it must still be
     handed out; the 14th must raise. *)
  let t = Topogen.Addressing.create () in
  let last = ref None in
  for _ = 1 to 13 do
    last := Some (Topogen.Addressing.alloc_block t 4)
  done;
  (match !last with
  | None -> Alcotest.fail "no block allocated"
  | Some p ->
    Alcotest.check prefix "13th /4" (Prefix.of_string_exn "208.0.0.0/4") p;
    Alcotest.(check string)
      "ends exactly at the multicast boundary" "223.255.255.255"
      (Ipv4.to_string (Prefix.last p)));
  exhausted (fun () -> Topogen.Addressing.alloc_block t 4)

let test_half_blocks () =
  (* /2 blocks: 64.0.0.0/2 and 128.0.0.0/2 fit; 192.0.0.0/2 would end
     at 255.255.255.255, past the ceiling, and must raise instead of
     being handed out (the historical check-then-align order let the
     final alignment escape the exhaustion test). *)
  let t = Topogen.Addressing.create () in
  Alcotest.check prefix "first /2" (Prefix.of_string_exn "64.0.0.0/2")
    (Topogen.Addressing.alloc_block t 2);
  Alcotest.check prefix "second /2" (Prefix.of_string_exn "128.0.0.0/2")
    (Topogen.Addressing.alloc_block t 2);
  exhausted (fun () -> Topogen.Addressing.alloc_block t 2)

let test_bad_len () =
  List.iter
    (fun len ->
      match Topogen.Addressing.alloc_block (Topogen.Addressing.create ()) len with
      | exception Invalid_argument _ -> ()
      | (_ : Prefix.t) ->
        Alcotest.fail (Printf.sprintf "alloc_block accepted /%d" len))
    [ 0; 1; 33 ]

let test_pool_exhaustion_is_typed () =
  (* A /30 pool holds exactly one /30; the next carve must raise an
     Invalid_argument naming the pool's block, not assert or loop. *)
  let pool = Topogen.Addressing.pool_of (Prefix.of_string_exn "10.0.0.0/30") in
  ignore (Topogen.Addressing.alloc_subnet pool 30 : Prefix.t);
  match Topogen.Addressing.alloc_subnet pool 30 with
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      "error names the exhausted pool" true
      (contains ~sub:"10.0.0.0/30" msg)
  | (_ : Prefix.t) -> Alcotest.fail "carve from an exhausted pool succeeded"

let suite =
  [ Alcotest.test_case "last /4 ends exactly at the ceiling" `Quick
      test_last_quarter_fits;
    Alcotest.test_case "/2 blocks stop before multicast" `Quick test_half_blocks;
    Alcotest.test_case "bad lengths rejected" `Quick test_bad_len;
    Alcotest.test_case "pool exhaustion is a typed error" `Quick
      test_pool_exhaustion_is_typed ]
