let () =
  Alcotest.run "bdrmap"
    [ ("ipv4", Test_ipv4.suite);
      ("prefix", Test_prefix.suite);
      ("ptrie", Test_ptrie.suite);
      ("ipset", Test_ipset.suite);
      ("rng", Test_rng.suite);
      ("asn", Test_asn.suite);
      ("rib", Test_rib.suite);
      ("as_rel", Test_as_rel.suite);
      ("rel_infer", Test_rel_infer.suite);
      ("delegation", Test_delegation.suite);
      ("ixp", Test_ixp.suite);
      ("as2org", Test_as2org.suite);
      ("topogen", Test_topogen.suite);
      ("bgp_routing", Test_bgp_routing.suite);
      ("forwarding", Test_forwarding.suite);
      ("probesim", Test_probesim.suite);
      ("alias", Test_alias.suite);
      ("ip2as", Test_ip2as.suite);
      ("targets", Test_targets.suite);
      ("collect", Test_collect.suite);
      ("heuristics", Test_heuristics.suite);
      ("pipeline", Test_pipeline.suite);
      ("experiments", Test_experiments.suite);
      ("dns", Test_dns.suite);
      ("output", Test_output.suite);
      ("baselines", Test_baselines.suite);
      ("radargun", Test_radargun.suite);
      ("props", Test_props.suite);
      ("aggregate", Test_aggregate.suite);
      ("tslp", Test_tslp.suite);
      ("offload", Test_offload.suite);
      ("scenarios", Test_scenarios.suite);
      ("pool", Test_pool.suite);
      ("fault", Test_fault.suite);
      ("obs", Test_obs.suite);
      ("store", Test_store.suite) ]
