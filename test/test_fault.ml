(* Property tests over the fault-injection layer: the token bucket's
   rate bound, seed-determinism of the drop sequence, and the strict
   no-op contract of a zero config. *)

module Gen = Topogen.Gen
module Engine = Probesim.Engine
module Fault = Probesim.Fault

(* --- token bucket: replies in any window obey burst + rate * span --- *)

let arb_schedule =
  (* Monotone probe times built from non-negative increments, and the
     bucket parameters under test. *)
  QCheck.make
    ~print:(fun (rate, burst, incs) ->
      Printf.sprintf "rate=%.3f burst=%.1f n=%d" rate burst (List.length incs))
    QCheck.Gen.(
      triple
        (float_range 0.1 50.0)
        (float_range 1.0 10.0)
        (list_size (int_range 1 120) (float_range 0.0 0.5)))

let prop_bucket_rate_bound =
  QCheck.Test.make ~name:"token bucket never exceeds rate over any window"
    ~count:200 arb_schedule (fun (rate, burst, incs) ->
      let cfg =
        { Fault.zero with
          Fault.rl_share = 1.0;
          rl_rate = rate;
          rl_burst = burst }
      in
      let st = Fault.create ~seed:42 cfg in
      let now = ref 0.0 in
      let events =
        List.map
          (fun dt ->
            now := !now +. dt;
            (!now, Fault.reply_allowed st ~rid:7 ~now:!now))
          incs
      in
      let arr = Array.of_list events in
      let n = Array.length arr in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i to n - 1 do
          let t0, _ = arr.(i) and t1, _ = arr.(j) in
          let allowed = ref 0 in
          for k = i to j do
            if snd arr.(k) then incr allowed
          done;
          (* Classic bound: a bucket holding at most [burst] tokens and
             refilling at [rate] can emit at most burst + rate * span
             replies inside the window (the first event may also spend a
             token refilled exactly at t0, hence the epsilon). *)
          if float_of_int !allowed > burst +. (rate *. (t1 -. t0)) +. 1e-6 then
            ok := false
        done
      done;
      !ok)

(* --- determinism: same seed and config => same drop sequence --- *)

type ev = Probe | Reply of int * float

let arb_run =
  QCheck.make
    ~print:(fun (seed, evs) ->
      Printf.sprintf "seed=%d n=%d" seed (List.length evs))
    QCheck.Gen.(
      pair (int_bound 10_000)
        (list_size (int_range 1 200)
           (map3
              (fun k rid dt ->
                if k then Probe else Reply (rid, Float.abs dt))
              bool (int_bound 30) (float_range 0.0 2.0))))

let replay seed evs =
  let cfg =
    { Fault.probe_loss_p = 0.1;
      reply_loss_p = 0.1;
      legacy_rl_p = 0.05;
      rl_share = 0.5;
      rl_rate = 2.0;
      rl_burst = 3.0;
      dark_share = 0.3;
      dark_after = 5;
      failures = [ { Fault.lid = 3; fail_at = 1.0; recover_at = 5.0 } ] }
  in
  let st = Fault.create ~seed cfg in
  let now = ref 0.0 in
  List.map
    (function
      | Probe -> Fault.probe_lost st && Fault.legacy_rate_limited st
      | Reply (rid, dt) ->
        now := !now +. dt;
        Fault.reply_allowed st ~rid ~now:!now)
    evs

let prop_same_seed_same_drops =
  QCheck.Test.make ~name:"same seed implies identical drop sequence" ~count:200
    arb_run (fun (seed, evs) -> replay seed evs = replay seed evs)

(* --- zero config is a strict no-op on the full pipeline --- *)

let pipeline_lines inputs engine =
  let w = Engine.world engine in
  let vp = List.hd w.Gen.vps in
  let r = Bdrmap.Pipeline.execute engine inputs ~vp in
  Bdrmap.Output.links_to_lines r.Bdrmap.Pipeline.graph r.Bdrmap.Pipeline.inference

let test_zero_config_noop () =
  let w = Gen.generate Topogen.Scenario.tiny in
  let bgp =
    Routing.Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
      ~selective:w.Gen.selective
  in
  let inputs = Bdrmap.Pipeline.inputs_of_world w bgp in
  let fwd = Routing.Forwarding.create w.Gen.net bgp in
  (* Default creation (tiny's fault profile is zero) vs an explicit zero
     config: the full run must be byte-identical, probe for probe. *)
  let eng_default = Engine.create w fwd in
  let eng_zero = Engine.create ~fault:Fault.zero w fwd in
  Alcotest.(check bool) "default profile is zero" true
    (Fault.is_zero (Engine.fault_config eng_default));
  let lines_default = pipeline_lines inputs eng_default in
  let lines_zero = pipeline_lines inputs eng_zero in
  Alcotest.(check (list string)) "border map byte-identical" lines_default
    lines_zero;
  Alcotest.(check int) "probe counts equal" (Engine.probe_count eng_default)
    (Engine.probe_count eng_zero);
  Alcotest.(check (float 1e-9)) "clocks equal" (Engine.now eng_default)
    (Engine.now eng_zero);
  let s = Engine.fault_stats eng_zero in
  Alcotest.(check int) "no probe drops" 0 s.Fault.probes_lost;
  Alcotest.(check int) "no reply drops" 0 s.Fault.replies_lost;
  Alcotest.(check int) "no rate limiting" 0 s.Fault.rate_limited;
  Alcotest.(check int) "no dark drops" 0 s.Fault.dark_dropped;
  Alcotest.(check int) "no failure hits" 0 s.Fault.failure_hits

let test_zero_profile_of_world () =
  (* [of_profile] on a zero-fault world is the zero config, and the
     impairment mapping hits it exactly at intensity 0. *)
  let w = Gen.generate Topogen.Scenario.tiny in
  Alcotest.(check bool) "of_profile zero" true
    (Fault.is_zero (Fault.of_profile w));
  Alcotest.(check bool) "impairment 0 is zero_fault" true
    (Topogen.Scenario.impairment ~intensity:0.0 = Gen.zero_fault)

let test_dark_quota_goes_dark () =
  (* A quota router answers exactly [dark_after] replies, then never
     again; an unaffected router is untouched. *)
  let cfg = { Fault.zero with Fault.dark_share = 1.0; dark_after = 4 } in
  let st = Fault.create ~seed:9 cfg in
  let answers = List.init 10 (fun i -> Fault.reply_allowed st ~rid:1 ~now:(float_of_int i)) in
  Alcotest.(check (list bool)) "4 replies then dark"
    [ true; true; true; true; false; false; false; false; false; false ]
    answers;
  Alcotest.(check int) "drops counted" 6 (Fault.stats st).Fault.dark_dropped

let test_failure_window () =
  let cfg =
    { Fault.zero with
      Fault.failures = [ { Fault.lid = 5; fail_at = 10.0; recover_at = 20.0 } ] }
  in
  let st = Fault.create ~seed:1 cfg in
  (* Build a fake two-step path whose second step enters link 5. *)
  let w = Gen.generate Topogen.Scenario.tiny in
  let l5 = Topogen.Net.link w.Gen.net 5 in
  let steps =
    [| { Routing.Forwarding.rid = 0; in_link = None };
       { Routing.Forwarding.rid = 1; in_link = Some l5 } |]
  in
  Alcotest.(check (option int)) "up before onset" None
    (Fault.first_failed_step st ~now:5.0 steps);
  Alcotest.(check (option int)) "down inside window" (Some 1)
    (Fault.first_failed_step st ~now:15.0 steps);
  Alcotest.(check (option int)) "up after recovery" None
    (Fault.first_failed_step st ~now:25.0 steps)

(* --- nonzero configs under the pool: extends the zero-config identity
   test to a corpus world with dark-router quotas AND transient link
   failure windows live. Per-router quota subsets and failure schedules
   are pure functions of (seed, rid), so per-VP engines built on worker
   domains must replay the exact serial drop sequence. --- *)

let test_nonzero_fault_pool_identity () =
  let sc = Option.get (Topogen.Corpus.by_name "silent_dark") in
  let p = sc.Topogen.Corpus.sc_params ~scale:0.1 in
  let fault =
    { Gen.zero_fault with
      Gen.f_dark_share = 0.3;
      f_dark_after = 40;
      f_fail_links = 3;
      f_fail_at = 10.0;
      f_fail_for = 60.0 }
  in
  let w = Gen.generate { p with Gen.fault } in
  let _bgp, fwd, _engine, inputs = Bdrmap.Pipeline.setup w in
  Alcotest.(check bool) "engines see a nonzero fault config" false
    (Fault.is_zero (Engine.fault_config (Engine.create w fwd)));
  let lines rs =
    List.concat_map
      (fun (r : Bdrmap.Pipeline.run) ->
        Bdrmap.Output.links_to_lines r.Bdrmap.Pipeline.graph
          r.Bdrmap.Pipeline.inference)
      rs
  in
  let probes rs =
    List.fold_left
      (fun acc (r : Bdrmap.Pipeline.run) -> acc + r.Bdrmap.Pipeline.probes)
      0 rs
  in
  let serial = Bdrmap.Pipeline.execute_all w inputs ~vps:w.Gen.vps in
  let pooled =
    Netcore.Pool.with_pool ~domains:4 (fun pool ->
        Bdrmap.Pipeline.execute_all ~pool w inputs ~vps:w.Gen.vps)
  in
  Alcotest.(check (list string)) "impaired border maps byte-identical"
    (lines serial) (lines pooled);
  Alcotest.(check int) "impaired probe counts identical" (probes serial)
    (probes pooled);
  (* The impairments genuinely engaged: the same world with a zero
     profile probes differently (quota routers go dark mid-collection,
     failed links eat probes into the retry ladder). *)
  let w0 = Gen.generate p in
  let _bgp, _fwd, _engine, inputs0 = Bdrmap.Pipeline.setup w0 in
  let clean = Bdrmap.Pipeline.execute_all w0 inputs0 ~vps:w0.Gen.vps in
  Alcotest.(check bool) "fault layer changed the collection" true
    (probes clean <> probes serial || lines clean <> lines serial)

let suite =
  [ Qc.to_alcotest prop_bucket_rate_bound;
    Qc.to_alcotest prop_same_seed_same_drops;
    Alcotest.test_case "nonzero fault config identical under pool" `Quick
      test_nonzero_fault_pool_identity;
    Alcotest.test_case "zero config strict no-op" `Quick test_zero_config_noop;
    Alcotest.test_case "zero profile of world" `Quick test_zero_profile_of_world;
    Alcotest.test_case "dark quota" `Quick test_dark_quota_goes_dark;
    Alcotest.test_case "failure window" `Quick test_failure_window ]
