open Netcore
open Bgpdata

let ip = Ipv4.of_string_exn

let sample () =
  let lines =
    [ "# RIR extended format";
      "arin|US|ipv4|192.0.2.0|256|20160101|allocated|org-a";
      "arin|US|ipv4|198.51.100.0|256|20160101|allocated|org-a";
      "ripencc|NL|ipv4|203.0.113.0|128|20150601|assigned|org-b";
      "apnic|AU|ipv4|100.64.0.0|1024|20140301|allocated|org-c" ]
  in
  match Delegation.of_lines lines with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_find () =
  let t = sample () in
  let check addr expect =
    Alcotest.(check (option string)) addr expect (Delegation.opaque_id_of t (ip addr))
  in
  check "192.0.2.0" (Some "org-a");
  check "192.0.2.255" (Some "org-a");
  check "192.0.3.0" None;
  check "203.0.113.127" (Some "org-b");
  check "203.0.113.128" None;
  check "100.64.3.255" (Some "org-c");
  check "100.64.4.0" None;
  check "8.8.8.8" None

let test_non_power_of_two () =
  (* RIR delegations can be e.g. 768 addresses; ensure interval logic holds. *)
  match Delegation.of_lines [ "arin|US|ipv4|10.0.0.0|768|20160101|allocated|org-x" ] with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check (option string)) "inside" (Some "org-x")
      (Delegation.opaque_id_of t (ip "10.0.2.255"));
    Alcotest.(check (option string)) "outside" None (Delegation.opaque_id_of t (ip "10.0.3.0"))

let test_same_org () =
  let t = sample () in
  Alcotest.(check bool) "same org across blocks" true
    (Delegation.same_org t (ip "192.0.2.7") (ip "198.51.100.9"));
  Alcotest.(check bool) "different orgs" false
    (Delegation.same_org t (ip "192.0.2.7") (ip "203.0.113.9"));
  Alcotest.(check bool) "unknown addr" false
    (Delegation.same_org t (ip "192.0.2.7") (ip "8.8.8.8"))

let test_blocks_of () =
  let t = sample () in
  Alcotest.(check int) "org-a address count" 512 (Ipset.cardinal (Delegation.blocks_of t "org-a"))

let test_roundtrip () =
  let t = sample () in
  match Delegation.of_lines (Delegation.to_lines t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    Alcotest.(check int) "records preserved" (Delegation.cardinal t) (Delegation.cardinal t');
    Alcotest.(check (option string)) "lookup preserved" (Some "org-b")
      (Delegation.opaque_id_of t' (ip "203.0.113.5"))

let test_parse_errors () =
  let bad l = Alcotest.(check bool) l true (Result.is_error (Delegation.of_lines [ l ])) in
  bad "arin|US|ipv6|::1|256|20160101|allocated|org-a";
  bad "arin|US|ipv4|999.0.0.1|256|20160101|allocated|org-a";
  bad "arin|US|ipv4|10.0.0.0|0|20160101|allocated|org-a";
  bad "arin|US|ipv4|10.0.0.0|256"

let suite =
  [ Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "non power of two size" `Quick test_non_power_of_two;
    Alcotest.test_case "same org" `Quick test_same_org;
    Alcotest.test_case "blocks of org" `Quick test_blocks_of;
    Alcotest.test_case "text roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors ]
