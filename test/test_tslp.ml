module Gen = Topogen.Gen
module Net = Topogen.Net
module Tslp = Probesim.Tslp
open Netcore

let setup = lazy (
  let w = Gen.generate Topogen.Scenario.tiny in
  let bgp =
    Routing.Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
      ~selective:w.Gen.selective
  in
  let fwd = Routing.Forwarding.create w.Gen.net bgp in
  let engine = Probesim.Engine.create w fwd in
  (w, fwd, engine, Tslp.create engine fwd))

(* A border the VP's traffic actually crosses: probe a far interface. *)
let crossed_border (w : Gen.world) fwd =
  let vp = List.hd w.vps in
  List.find_map
    (fun (l : Net.link) ->
      if l.Net.kind = Net.Internal then None
      else
        let ra = Net.router w.Gen.net (fst l.Net.a) in
        let near, far =
          if Asn.equal ra.Net.owner w.host_asn then (l.Net.a, l.Net.b)
          else (l.Net.b, l.Net.a)
        in
        let near_r = Net.router w.Gen.net (fst near) in
        let far_r = Net.router w.Gen.net (fst far) in
        if not (Asn.equal near_r.Net.owner w.host_asn) then None
        else if (Net.as_node w.Gen.net far_r.Net.owner).Net.filter <> Net.Open then None
        else
          (* Only borders on the actual forwarding path toward the far
             address produce the near/far RTT contrast. *)
          let crosses =
            List.exists
              (fun (s : Routing.Forwarding.step) ->
                match s.Routing.Forwarding.in_link with
                | Some l' -> l'.Net.lid = l.Net.lid
                | None -> false)
              (Routing.Forwarding.path fwd ~src_rid:vp.Gen.vp_rid ~dst:(snd far) ())
          in
          if crosses then Some (vp, l, snd near, snd far) else None)
    (Net.interdomain_links w.Gen.net)

let test_rtt_far_exceeds_near () =
  let w, fwd, _, tslp = Lazy.force setup in
  match crossed_border w fwd with
  | None -> Alcotest.fail "no crossable border in tiny world"
  | Some (vp, _, near, far) -> (
    match (Tslp.rtt tslp ~vp ~dst:near, Tslp.rtt tslp ~vp ~dst:far) with
    | Some n, Some f ->
      Alcotest.(check bool) (Printf.sprintf "far %.2f >= near %.2f" f n) true (f >= n)
    | _ -> Alcotest.fail "rtt unavailable")

let test_congested_link_detected () =
  let w, fwd, engine, tslp = Lazy.force setup in
  match crossed_border w fwd with
  | None -> Alcotest.fail "no crossable border"
  | Some (vp, l, near, far) ->
    (* Install a daily episode covering the second half of the day. *)
    Tslp.congest tslp ~lid:l.Net.lid ~peak_start_s:43200.0 ~peak_end_s:86400.0
      ~extra_ms:40.0;
    ignore engine;
    let samples = Tslp.monitor tslp ~vp ~near ~far ~interval_s:3600.0 ~samples:24 in
    Alcotest.(check int) "24 samples" 24 (List.length samples);
    (match Tslp.diagnose samples with
    | Some shift ->
      Alcotest.(check bool) (Printf.sprintf "shift %.1f ~ 40ms" shift) true
        (shift > 20.0 && shift < 60.0)
    | None -> Alcotest.fail "congestion not detected")

let test_clean_link_not_flagged () =
  let w, fwd, _, _ = Lazy.force setup in
  (* Fresh stack to avoid the congestion installed above. *)
  let bgp =
    Routing.Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
      ~selective:w.Gen.selective
  in
  let fwd2 = Routing.Forwarding.create w.Gen.net bgp in
  let engine2 = Probesim.Engine.create w fwd2 in
  let tslp2 = Tslp.create engine2 fwd2 in
  ignore fwd;
  match crossed_border w fwd2 with
  | None -> Alcotest.fail "no crossable border"
  | Some (vp, _, near, far) ->
    let samples = Tslp.monitor tslp2 ~vp ~near ~far ~interval_s:3600.0 ~samples:24 in
    Alcotest.(check bool) "no false congestion" true (Tslp.diagnose samples = None)

let test_episode_respects_schedule () =
  let w, fwd, _, _ = Lazy.force setup in
  let bgp =
    Routing.Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
      ~selective:w.Gen.selective
  in
  let fwd2 = Routing.Forwarding.create w.Gen.net bgp in
  let engine2 = Probesim.Engine.create w fwd2 in
  let tslp2 = Tslp.create engine2 fwd2 in
  ignore fwd;
  match crossed_border w fwd2 with
  | None -> Alcotest.fail "no crossable border"
  | Some (vp, l, _, far) ->
    Tslp.congest tslp2 ~lid:l.Net.lid ~peak_start_s:3600.0 ~peak_end_s:7200.0
      ~extra_ms:50.0;
    (* Off-peak now (clock ~0): no extra delay. *)
    let off = Option.get (Tslp.rtt tslp2 ~vp ~dst:far) in
    Probesim.Engine.advance engine2 5000.0;
    let peak = Option.get (Tslp.rtt tslp2 ~vp ~dst:far) in
    Alcotest.(check bool)
      (Printf.sprintf "peak %.1f = off %.1f + 50" peak off)
      true
      (abs_float (peak -. off -. 50.0) < 1.0)

let suite =
  [ Alcotest.test_case "far rtt exceeds near" `Quick test_rtt_far_exceeds_near;
    Alcotest.test_case "congested link detected" `Quick test_congested_link_detected;
    Alcotest.test_case "clean link not flagged" `Quick test_clean_link_not_flagged;
    Alcotest.test_case "episode schedule" `Quick test_episode_respects_schedule ]
