open Netcore

let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let check_pfx msg expected actual =
  Alcotest.(check string) msg expected (Prefix.to_string actual)

let test_parse () =
  check_pfx "parse /24" "192.0.2.0/24" (pfx "192.0.2.0/24");
  check_pfx "parse /0" "0.0.0.0/0" (pfx "0.0.0.0/0");
  check_pfx "parse /32" "10.1.2.3/32" (pfx "10.1.2.3/32");
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "reject %S" s) true (Prefix.of_string s = None))
    [ "192.0.2.0"; "192.0.2.0/33"; "192.0.2.0/-1"; "192.0.2.1/24"; "x/24"; "192.0.2.0/" ]

let test_canonical () =
  let p = Prefix.make (ip "192.0.2.129") 24 in
  check_pfx "host bits masked" "192.0.2.0/24" p

let test_mem () =
  let p = pfx "128.66.0.0/16" in
  Alcotest.(check bool) "first in" true (Prefix.mem (ip "128.66.0.0") p);
  Alcotest.(check bool) "last in" true (Prefix.mem (ip "128.66.255.255") p);
  Alcotest.(check bool) "below out" false (Prefix.mem (ip "128.65.255.255") p);
  Alcotest.(check bool) "above out" false (Prefix.mem (ip "128.67.0.0") p);
  Alcotest.(check bool) "default matches all" true (Prefix.mem (ip "8.8.8.8") (pfx "0.0.0.0/0"))

let test_subsumes () =
  Alcotest.(check bool) "/16 subsumes /24" true
    (Prefix.subsumes ~p:(pfx "128.66.0.0/16") ~q:(pfx "128.66.2.0/24"));
  Alcotest.(check bool) "/24 not subsumes /16" false
    (Prefix.subsumes ~p:(pfx "128.66.2.0/24") ~q:(pfx "128.66.0.0/16"));
  Alcotest.(check bool) "self subsumes" true
    (Prefix.subsumes ~p:(pfx "128.66.0.0/16") ~q:(pfx "128.66.0.0/16"))

let test_bounds () =
  let p = pfx "192.0.2.64/26" in
  Alcotest.(check string) "first" "192.0.2.64" (Ipv4.to_string (Prefix.first p));
  Alcotest.(check string) "last" "192.0.2.127" (Ipv4.to_string (Prefix.last p));
  Alcotest.(check int) "size" 64 (Prefix.size p)

let test_split () =
  let lo, hi = Prefix.split (pfx "10.0.0.0/8") in
  check_pfx "low half" "10.0.0.0/9" lo;
  check_pfx "high half" "10.128.0.0/9" hi;
  Alcotest.check_raises "split /32 raises" (Invalid_argument "Prefix.split: /32") (fun () ->
      ignore (Prefix.split (pfx "10.0.0.1/32")))

let test_of_first_last () =
  let some = Option.map Prefix.to_string in
  Alcotest.(check (option string)) "aligned /24" (Some "192.0.2.0/24")
    (some (Prefix.of_first_last (ip "192.0.2.0") (ip "192.0.2.255")));
  Alcotest.(check (option string)) "single addr" (Some "192.0.2.7/32")
    (some (Prefix.of_first_last (ip "192.0.2.7") (ip "192.0.2.7")));
  Alcotest.(check (option string)) "unaligned start" None
    (some (Prefix.of_first_last (ip "192.0.2.1") (ip "192.0.3.0")));
  Alcotest.(check (option string)) "non power of two" None
    (some (Prefix.of_first_last (ip "192.0.2.0") (ip "192.0.2.191")))

let test_subnet_mate () =
  let mate a len = Option.map Ipv4.to_string (Prefix.subnet_mate (ip a) len) in
  Alcotest.(check (option string)) "/31 even" (Some "10.0.0.1") (mate "10.0.0.0" 31);
  Alcotest.(check (option string)) "/31 odd" (Some "10.0.0.0") (mate "10.0.0.1" 31);
  Alcotest.(check (option string)) "/30 .1" (Some "10.0.0.2") (mate "10.0.0.1" 30);
  Alcotest.(check (option string)) "/30 .2" (Some "10.0.0.1") (mate "10.0.0.2" 30);
  Alcotest.(check (option string)) "/30 network has no mate" None (mate "10.0.0.0" 30);
  Alcotest.(check (option string)) "/30 broadcast has no mate" None (mate "10.0.0.3" 30)

let prefix_gen =
  QCheck.Gen.(
    map2
      (fun addr len -> Prefix.make (Ipv4.of_int addr) len)
      (int_bound 0xFFFFFFF |> map (fun i -> i * 16))
      (int_bound 32))

let arb_prefix = QCheck.make ~print:Prefix.to_string prefix_gen

let prop_roundtrip =
  QCheck.Test.make ~name:"prefix string roundtrip" ~count:500 arb_prefix (fun p ->
      match Prefix.of_string (Prefix.to_string p) with
      | Some q -> Prefix.equal p q
      | None -> false)

let prop_mem_bounds =
  QCheck.Test.make ~name:"first and last are members" ~count:500 arb_prefix (fun p ->
      Prefix.mem (Prefix.first p) p && Prefix.mem (Prefix.last p) p)

let prop_split_partition =
  QCheck.Test.make ~name:"split partitions the prefix" ~count:500
    (QCheck.make
       ~print:Prefix.to_string
       QCheck.Gen.(
         map2
           (fun addr len -> Prefix.make (Ipv4.of_int addr) len)
           (int_bound 0xFFFFFFF |> map (fun i -> i * 16))
           (int_bound 31)))
    (fun p ->
      let lo, hi = Prefix.split p in
      Ipv4.equal (Prefix.first lo) (Prefix.first p)
      && Ipv4.equal (Prefix.last hi) (Prefix.last p)
      && Ipv4.equal (Ipv4.succ (Prefix.last lo)) (Prefix.first hi))

let suite =
  [ Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "canonicalization" `Quick test_canonical;
    Alcotest.test_case "membership" `Quick test_mem;
    Alcotest.test_case "subsumption" `Quick test_subsumes;
    Alcotest.test_case "bounds and size" `Quick test_bounds;
    Alcotest.test_case "split" `Quick test_split;
    Alcotest.test_case "of_first_last" `Quick test_of_first_last;
    Alcotest.test_case "subnet mate" `Quick test_subnet_mate;
    Qc.to_alcotest prop_roundtrip;
    Qc.to_alcotest prop_mem_bounds;
    Qc.to_alcotest prop_split_partition ]
