(* The §5.8 device/controller split: running collection through the
   serialized offload channel must produce the same inference as the
   local binding, with all bdrmap state on the controller side. *)

module Gen = Topogen.Gen
module Offload = Probesim.Offload
open Netcore

let test_request_roundtrip () =
  let reqs =
    [ Offload.Trace { flow = 3; dst = Ipv4.of_string_exn "1.2.3.4"; ttl = 7 };
      Offload.Ping (Ipv4.of_string_exn "9.8.7.6");
      Offload.Udp (Ipv4.of_string_exn "5.5.5.5");
      Offload.Advance 300.0 ]
  in
  List.iter
    (fun r ->
      match Offload.request_of_line (Offload.request_to_line r) with
      | Ok r' -> Alcotest.(check bool) "roundtrip" true (r = r')
      | Error e -> Alcotest.fail e)
    reqs;
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Offload.request_of_line "X|nope"))

let test_response_roundtrip () =
  let replies =
    [ None;
      Some
        { Probesim.Engine.src = Ipv4.of_string_exn "1.2.3.4";
          kind = Probesim.Engine.Ttl_expired; ipid = 4242; responder = 99 } ]
  in
  List.iter
    (fun r ->
      match Offload.response_of_line (Offload.response_to_line r) with
      | Ok r' -> (
        match (r, r') with
        | None, None -> ()
        | Some a, Some b ->
          Alcotest.(check string) "src" (Ipv4.to_string a.Probesim.Engine.src)
            (Ipv4.to_string b.Probesim.Engine.src);
          Alcotest.(check int) "ipid" a.Probesim.Engine.ipid b.Probesim.Engine.ipid;
          (* The responder identity must NOT cross the wire. *)
          Alcotest.(check int) "responder hidden" (-1) b.Probesim.Engine.responder
        | _ -> Alcotest.fail "mismatch")
      | Error e -> Alcotest.fail e)
    replies

let test_offloaded_collection_equivalent () =
  let w = Gen.generate Topogen.Scenario.tiny in
  let vp = List.hd w.vps in
  let mk () =
    let bgp =
      Routing.Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
        ~selective:w.Gen.selective
    in
    let fwd = Routing.Forwarding.create w.Gen.net bgp in
    let engine = Probesim.Engine.create w fwd in
    let inputs = Bdrmap.Pipeline.inputs_of_world w bgp in
    (engine, inputs)
  in
  let collect prober inputs =
    let cfg = Bdrmap.Config.default ~vp_asns:inputs.Bdrmap.Pipeline.vp_asns in
    let ip2as =
      Bdrmap.Ip2as.create ~rib:inputs.Bdrmap.Pipeline.rib ~ixp:inputs.Bdrmap.Pipeline.ixp
        ~delegations:inputs.Bdrmap.Pipeline.delegations
        ~vp_asns:inputs.Bdrmap.Pipeline.vp_asns
    in
    let c = Bdrmap.Collect.run_with prober cfg ip2as
        (Bdrmap.Targets.blocks ~rib:inputs.Bdrmap.Pipeline.rib
           ~vp_asns:inputs.Bdrmap.Pipeline.vp_asns) in
    let g = Bdrmap.Rgraph.build c in
    (c, g, Bdrmap.Heuristics.infer cfg ip2as ~rels:inputs.Bdrmap.Pipeline.rels g c)
  in
  let engine1, inputs1 = mk () in
  let _, _, local = collect (Probesim.Prober.local engine1 ~vp) inputs1 in
  let engine2, inputs2 = mk () in
  let channel = Offload.Channel.create () in
  let c2, _, remote = collect (Offload.remote channel engine2 ~vp) inputs2 in
  let key (l : Bdrmap.Heuristics.border_link) =
    (l.neighbor, Bdrmap.Heuristics.tag_label l.tag)
  in
  Alcotest.(check int) "same link count"
    (List.length local.Bdrmap.Heuristics.links)
    (List.length remote.Bdrmap.Heuristics.links);
  Alcotest.(check bool) "same neighbor/tag multiset" true
    (List.sort compare (List.map key local.Bdrmap.Heuristics.links)
    = List.sort compare (List.map key remote.Bdrmap.Heuristics.links));
  (* The channel actually carried the probing session. *)
  Alcotest.(check bool) "messages flowed" true
    (Offload.Channel.messages channel > List.length c2.Bdrmap.Collect.traces);
  let kb_down = Offload.Channel.bytes_to_device channel / 1024 in
  let kb_up = Offload.Channel.bytes_to_controller channel / 1024 in
  Alcotest.(check bool)
    (Printf.sprintf "traffic accounted (%dKB down, %dKB up)" kb_down kb_up)
    true
    (kb_down > 10 && kb_up > 10)

(* The wire format accepts exactly what its printers emit — nothing
   else. Each rejected line here was accepted by the pre-hardening
   parser (liberal stdlib numeric parsing, or arity-blind field reads)
   and would have produced a silently wrong request: a NaN clock
   advance, a ttl of 0 (which the engine indexes at steps.(-1)), a
   non-canonical address, an out-of-range IP-ID. *)
let test_strict_parsing () =
  let bad_requests =
    [ "A|nan"; "A|inf"; "A|-1.000"; "A|1e3"; "A|1.0"; "A|1.0000"; "A|.500";
      "A|01.000"; "A|300"; "T|1|1.2.3.4|0"; "T|1|1.2.3.4|256";
      "T|1|1.2.3.4|-1"; "T|01|1.2.3.4|5"; "T|0x1|1.2.3.4|5";
      "T|1_0|1.2.3.4|5"; "T|+1|1.2.3.4|5"; "T|1|01.2.3.4|5";
      "T|1|1.2.3.4|5|trailing"; "T|1|1.2.3.4"; "P|1.2.3.04"; "P|1.2.3.4|x";
      "U|"; "" ]
  in
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "request %S rejected" line)
        true
        (Result.is_error (Offload.request_of_line line)))
    bad_requests;
  let bad_responses =
    [ "R|1.2.3.4|ttl|70000"; "R|1.2.3.4|ttl|-1"; "R|1.2.3.4|ttl|0xff";
      "R|1.2.3.4|bogus|1"; "R|01.2.3.4|ttl|1"; "R|1.2.3.4|ttl|1|extra";
      "R|1.2.3.4|ttl"; "N|trailing"; "" ]
  in
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "response %S rejected" line)
        true
        (Result.is_error (Offload.response_of_line line)))
    bad_responses;
  (* And the canonical forms still parse. *)
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "request %S accepted" line)
        true
        (Result.is_ok (Offload.request_of_line line)))
    [ "A|0.000"; "A|300.000"; "T|0|1.2.3.4|1"; "T|0|1.2.3.4|255";
      "P|255.255.255.255"; "U|0.0.0.0" ]

(* Round-trip properties that would have caught the liberal parsers:
   any value a printer can emit must parse back to itself, and the
   printed line must be the fixpoint of parse-then-print. Advances are
   drawn on the wire's 1ms grid — the format deliberately carries "%.3f"
   (the engine's 5-minute Ally spacings and per-probe 1/pps steps are
   all millisecond-exact), so sub-millisecond floats are out of its
   domain. *)
let gen_addr =
  QCheck.Gen.(map (fun i -> Ipv4.of_int i) (int_bound 0xFFFFFFF))

let gen_request =
  QCheck.Gen.(
    frequency
      [ ( 3,
          map3
            (fun flow dst ttl -> Offload.Trace { flow; dst; ttl })
            (int_bound 9999) gen_addr (int_range 1 255) );
        (1, map (fun a -> Offload.Ping a) gen_addr);
        (1, map (fun a -> Offload.Udp a) gen_addr);
        ( 1,
          map
            (fun ms -> Offload.Advance (float_of_int ms /. 1000.0))
            (int_bound 1_000_000_000) ) ])

let arb_request =
  QCheck.make ~print:Offload.request_to_line gen_request

let prop_request_roundtrip =
  QCheck.Test.make ~name:"offload request wire roundtrip" ~count:500
    arb_request (fun r ->
      let line = Offload.request_to_line r in
      match Offload.request_of_line line with
      | Error _ -> false
      | Ok r' -> (
        String.equal (Offload.request_to_line r') line
        &&
        match (r, r') with
        | Offload.Advance a, Offload.Advance b ->
          (* exact: every 1ms-grid value below 1e6 s is float-exact
             through "%.3f" *)
          Float.equal a b
        | _ -> r = r'))

let gen_reply =
  QCheck.Gen.(
    oneof
      [ return None;
        map3
          (fun src kind ipid ->
            Some { Probesim.Engine.src; kind; ipid; responder = -1 })
          gen_addr
          (oneofl
             [ Probesim.Engine.Ttl_expired; Probesim.Engine.Echo_reply;
               Probesim.Engine.Dest_unreach ])
          (int_bound 0xFFFF) ])

let arb_reply = QCheck.make ~print:Offload.response_to_line gen_reply

let prop_response_roundtrip =
  QCheck.Test.make ~name:"offload response wire roundtrip" ~count:500
    arb_reply (fun r ->
      let line = Offload.response_to_line r in
      match Offload.response_of_line line with
      | Error _ -> false
      | Ok r' -> String.equal (Offload.response_to_line r') line && r = r')

let test_serve_error_path () =
  let w = Gen.generate Topogen.Scenario.tiny in
  let bgp =
    Routing.Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
      ~selective:w.Gen.selective
  in
  let fwd = Routing.Forwarding.create w.Gen.net bgp in
  let engine = Probesim.Engine.create w fwd in
  let vp = List.hd w.vps in
  let resp = Offload.serve engine ~vp "garbage" in
  Alcotest.(check bool) "error response" true (String.length resp > 1 && resp.[0] = 'E')

let suite =
  [ Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
    Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
    Alcotest.test_case "strict wire parsing" `Quick test_strict_parsing;
    Qc.to_alcotest prop_request_roundtrip;
    Qc.to_alcotest prop_response_roundtrip;
    Alcotest.test_case "offloaded collection equivalent" `Quick
      test_offloaded_collection_equivalent;
    Alcotest.test_case "serve error path" `Quick test_serve_error_path ]
