(* The persistent run store: crash-safe entry format, typed miss
   reasons, byte-identical warm starts of the pipeline, checkpoint/
   resume semantics, and fallback-to-recompute on every corruption
   shape the format guards against. *)

module Gen = Topogen.Gen

let dir_counter = ref 0

(* A throwaway store directory per test, swept afterwards. *)
let with_store f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bdrmap-store-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  let st = Store.open_dir dir in
  Fun.protect
    ~finally:(fun () ->
      ignore (Store.gc ~all:true st : Store.gc_stats);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f st)

let k s = Digest.to_hex (Digest.string s)

let entry_path st key = Filename.concat (Store.dir st) (key ^ ".run")

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let test_blob_roundtrip () =
  with_store (fun st ->
      let key = k "blob-1" in
      Alcotest.(check bool) "absent before write" true
        (Store.read st ~key = Error Store.Absent);
      let payload = "hello\x00world \xff bytes" in
      let bytes = Store.write st ~key payload in
      Alcotest.(check int) "entry size = header + payload" (64 + String.length payload) bytes;
      Alcotest.(check bool) "read back" true (Store.read st ~key = Ok payload);
      Alcotest.(check bool) "mem" true (Store.mem st ~key);
      (match Store.entries st with
      | [ (key', bytes', None) ] ->
        Alcotest.(check string) "listed key" key key';
        Alcotest.(check int) "listed size" bytes bytes'
      | es -> Alcotest.fail (Printf.sprintf "unexpected listing (%d)" (List.length es)));
      (* Overwrite is atomic replace, not append. *)
      ignore (Store.write st ~key "v2");
      Alcotest.(check bool) "overwritten" true (Store.read st ~key = Ok "v2");
      Store.remove st ~key;
      Alcotest.(check bool) "absent after remove" true
        (Store.read st ~key = Error Store.Absent);
      Alcotest.(check bool) "malformed key rejected" true
        (try
           ignore (Store.read st ~key:"../escape");
           false
         with Invalid_argument _ -> true))

(* Each corruption shape the header guards against must surface as its
   typed miss, never as a wrong payload or an exception. *)
let test_corrupt_entries () =
  with_store (fun st ->
      let key = k "victim" in
      let corrupt name munge expect =
        ignore (Store.write st ~key "payload under test");
        let path = entry_path st key in
        write_bytes path (munge (read_bytes path));
        Alcotest.(check bool) name true (Store.read st ~key = Error expect)
      in
      corrupt "truncated header" (fun s -> String.sub s 0 10) Store.Truncated;
      corrupt "truncated payload"
        (fun s -> String.sub s 0 (String.length s - 3))
        Store.Truncated;
      corrupt "bad magic"
        (fun s -> "XXXX" ^ String.sub s 4 (String.length s - 4))
        Store.Bad_magic;
      corrupt "foreign version"
        (fun s ->
          let b = Bytes.of_string s in
          Bytes.set b 7 '\x63';
          Bytes.to_string b)
        (Store.Bad_version 99);
      corrupt "payload bit flip"
        (fun s ->
          let b = Bytes.of_string s in
          Bytes.set b 70 (Char.chr (Char.code (Bytes.get b 70) lxor 1));
          Bytes.to_string b)
        Store.Corrupt;
      (* An entry copied under another name: embedded key mismatch. *)
      let other = k "other" in
      ignore (Store.write st ~key "payload under test");
      write_bytes (entry_path st other) (read_bytes (entry_path st key));
      Alcotest.(check bool) "stale (renamed) entry" true
        (Store.read st ~key:other = Error Store.Stale);
      (* gc: sweeps the invalid entry and orphaned temp files, keeps the
         valid one. *)
      write_bytes (Filename.concat (Store.dir st) (key ^ ".run.tmp-1-0-0")) "torn";
      let stats = Store.gc st in
      Alcotest.(check int) "gc removed stale + tmp" 2 stats.Store.gc_removed;
      Alcotest.(check int) "gc kept valid" 1 stats.Store.gc_kept;
      Alcotest.(check bool) "gc freed bytes" true (stats.Store.gc_bytes_freed > 0);
      Alcotest.(check bool) "valid entry survived gc" true (Store.mem st ~key);
      let stats = Store.gc ~all:true st in
      Alcotest.(check int) "gc --all removed" 1 stats.Store.gc_removed;
      Alcotest.(check int) "gc --all kept" 0 stats.Store.gc_kept)

(* -- pipeline-level tests, on the tiny world -- *)

let tiny_env =
  lazy
    (let w = Gen.generate Topogen.Scenario.tiny in
     let _bgp, _fwd, _engine, inputs = Bdrmap.Pipeline.setup w in
     (w, inputs))

let fingerprint (r : Bdrmap.Pipeline.run) =
  Bdrmap.Output.collection_to_lines r.Bdrmap.Pipeline.collection
  @ Bdrmap.Output.links_to_lines r.Bdrmap.Pipeline.graph
      r.Bdrmap.Pipeline.inference
  @ [ Printf.sprintf "probes=%d" r.Bdrmap.Pipeline.probes ]

let counters () =
  let ms = Obs.Metrics.collect () in
  ( Obs.Metrics.find_counter ms "store.hits",
    Obs.Metrics.find_counter ms "store.misses",
    Obs.Metrics.find_counter ms "store.writes" )

let with_counters f =
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.reset ();
      Obs.Metrics.disable ())
    f

let test_warm_byte_identity () =
  let w, inputs = Lazy.force tiny_env in
  let vps = w.Gen.vps in
  let baseline =
    List.map fingerprint (Bdrmap.Pipeline.execute_all w inputs ~vps)
  in
  with_store (fun st ->
      with_counters (fun () ->
          let cold =
            List.map fingerprint
              (Bdrmap.Pipeline.execute_all ~store:st w inputs ~vps)
          in
          let h, m, wr = counters () in
          Alcotest.(check int) "cold: no hits" 0 h;
          Alcotest.(check int) "cold: one miss per vp" (List.length vps) m;
          Alcotest.(check int) "cold: one write per vp" (List.length vps) wr;
          Alcotest.(check bool) "cold = no-store" true (cold = baseline);
          Obs.Metrics.reset ();
          let warm =
            List.map fingerprint
              (Bdrmap.Pipeline.execute_all ~store:st w inputs ~vps)
          in
          let h, m, wr = counters () in
          Alcotest.(check int) "warm: one hit per vp" (List.length vps) h;
          Alcotest.(check int) "warm: no misses" 0 m;
          Alcotest.(check int) "warm: no writes" 0 wr;
          Alcotest.(check bool) "warm = cold" true (warm = cold);
          (* Warm over a pool: hits from worker domains, same bytes. *)
          Obs.Metrics.reset ();
          let warm_pooled =
            Netcore.Pool.with_pool ~domains:2 (fun pool ->
                List.map fingerprint
                  (Bdrmap.Pipeline.execute_all ~pool ~store:st w inputs ~vps))
          in
          let h, _, _ = counters () in
          Alcotest.(check int) "warm pooled: one hit per vp" (List.length vps) h;
          Alcotest.(check bool) "warm pooled = cold" true (warm_pooled = cold)))

let test_checkpoint_resume () =
  let w, inputs = Lazy.force tiny_env in
  let vps = w.Gen.vps in
  let first = [ List.hd vps ] in
  with_store (fun st ->
      with_counters (fun () ->
          (* A sweep that died after one VP left exactly that VP's
             checkpoint behind... *)
          ignore (Bdrmap.Pipeline.execute_all ~store:st w inputs ~vps:first);
          let cfg =
            Bdrmap.Config.default ~vp_asns:inputs.Bdrmap.Pipeline.vp_asns
          in
          List.iteri
            (fun i vp ->
              Alcotest.(check bool)
                (Printf.sprintf "vp %d checkpointed iff completed" i)
                (i = 0)
                (Store.mem st
                   ~key:(Bdrmap.Run_store.key ~world:w ~pps:100.0 ~cfg ~vp ())))
            vps;
          (* ...and the re-run reuses it instead of recomputing. *)
          Obs.Metrics.reset ();
          ignore (Bdrmap.Pipeline.execute_all ~store:st w inputs ~vps);
          let h, m, wr = counters () in
          Alcotest.(check int) "resume: completed vp hit" 1 h;
          Alcotest.(check int) "resume: remaining vps missed"
            (List.length vps - 1)
            m;
          Alcotest.(check int) "resume: remaining vps checkpointed"
            (List.length vps - 1)
            wr))

(* Corrupting a checkpoint (or leaving one from an incompatible config)
   must silently degrade to recomputation with unchanged output, and the
   recompute heals the entry. *)
let test_corruption_falls_back_to_recompute () =
  let w, inputs = Lazy.force tiny_env in
  let vps = w.Gen.vps in
  let cfg = Bdrmap.Config.default ~vp_asns:inputs.Bdrmap.Pipeline.vp_asns in
  let vp0_key =
    Bdrmap.Run_store.key ~world:w ~pps:100.0 ~cfg ~vp:(List.hd vps) ()
  in
  with_store (fun st ->
      with_counters (fun () ->
          let cold =
            List.map fingerprint
              (Bdrmap.Pipeline.execute_all ~store:st w inputs ~vps)
          in
          let flip path =
            let s = read_bytes path in
            let b = Bytes.of_string s in
            let i = String.length s - 1 in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
            write_bytes path (Bytes.to_string b)
          in
          flip (entry_path st vp0_key);
          Alcotest.(check bool) "entry is corrupt" true
            (Store.read st ~key:vp0_key = Error Store.Corrupt);
          Obs.Metrics.reset ();
          let healed =
            List.map fingerprint
              (Bdrmap.Pipeline.execute_all ~store:st w inputs ~vps)
          in
          let h, m, wr = counters () in
          Alcotest.(check bool) "output unchanged through corruption" true
            (healed = cold);
          Alcotest.(check int) "corrupt entry counted as miss" 1 m;
          Alcotest.(check int) "other vps hit" (List.length vps - 1) h;
          Alcotest.(check int) "recompute healed the entry" 1 wr;
          Alcotest.(check bool) "entry valid again" true
            (Store.mem st ~key:vp0_key)))

(* The experiments' crossing-link sweeps use the same store through
   [Run_store.memo]: warm equals cold equals store-less, and the second
   sweep is all hits. *)
let test_crossing_links_memo () =
  let env = Experiments.Exp_common.make Topogen.Scenario.tiny in
  let prefixes = Experiments.Exp_common.external_prefixes env in
  let baseline = Experiments.Exp_common.crossing_links_by_vp env prefixes in
  with_store (fun st ->
      with_counters (fun () ->
          let cold = Experiments.Exp_common.crossing_links_by_vp ~store:st env prefixes in
          Alcotest.(check bool) "cold = no-store" true (cold = baseline);
          Obs.Metrics.reset ();
          let warm = Experiments.Exp_common.crossing_links_by_vp ~store:st env prefixes in
          let h, m, _ = counters () in
          Alcotest.(check bool) "warm = cold" true (warm = cold);
          Alcotest.(check int) "warm: one hit per vp"
            (List.length env.Experiments.Exp_common.world.Gen.vps)
            h;
          Alcotest.(check int) "warm: no misses" 0 m))

let test_key_sensitivity () =
  let w, inputs = Lazy.force tiny_env in
  let cfg = Bdrmap.Config.default ~vp_asns:inputs.Bdrmap.Pipeline.vp_asns in
  let vp0 = List.hd w.Gen.vps in
  let key = Bdrmap.Run_store.key ~world:w ~pps:100.0 ~cfg ~vp:vp0 () in
  Alcotest.(check string) "key is deterministic" key
    (Bdrmap.Run_store.key ~world:w ~pps:100.0 ~cfg ~vp:vp0 ());
  Alcotest.(check bool) "pps changes the key" true
    (key <> Bdrmap.Run_store.key ~world:w ~pps:50.0 ~cfg ~vp:vp0 ());
  let cfg' = { cfg with Bdrmap.Config.gap_limit = cfg.Bdrmap.Config.gap_limit + 1 } in
  Alcotest.(check bool) "config changes the key" true
    (key <> Bdrmap.Run_store.key ~world:w ~pps:100.0 ~cfg:cfg' ~vp:vp0 ());
  Alcotest.(check bool) "epoch changes the key" true
    (key
    <> Bdrmap.Run_store.key ~epoch:"deadbeef" ~world:w ~pps:100.0 ~cfg ~vp:vp0
         ());
  (match w.Gen.vps with
  | _ :: vp1 :: _ ->
    Alcotest.(check bool) "vp changes the key" true
      (key <> Bdrmap.Run_store.key ~world:w ~pps:100.0 ~cfg ~vp:vp1 ())
  | _ -> ());
  Alcotest.(check bool) "epoch changes the bgp-snapshot key" true
    (Bdrmap.Run_store.bgp_snapshot_key ~world:w ()
    <> Bdrmap.Run_store.bgp_snapshot_key ~epoch:"deadbeef" ~world:w ())

let suite =
  [ Alcotest.test_case "blob roundtrip" `Quick test_blob_roundtrip;
    Alcotest.test_case "corrupt entries" `Quick test_corrupt_entries;
    Alcotest.test_case "warm byte identity" `Slow test_warm_byte_identity;
    Alcotest.test_case "checkpoint resume" `Slow test_checkpoint_resume;
    Alcotest.test_case "corruption falls back to recompute" `Slow
      test_corruption_falls_back_to_recompute;
    Alcotest.test_case "crossing-links memo" `Slow test_crossing_links_memo;
    Alcotest.test_case "key sensitivity" `Quick test_key_sensitivity ]
