(* The read side of observability: JSON parsing, trace round trips,
   percentile estimation from the fixed log buckets, run-diff verdict
   semantics, and the OpenMetrics exposition. Malformed input must
   surface as typed errors, never exceptions. *)

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* -- Json: parse / render round trips and typed parse errors -- *)

let test_json_roundtrip () =
  (* Everything our emitters produce must survive parse -> to_string
     byte-identically: that is what makes canonicalization a pure
     field filter rather than a re-formatting pass. *)
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok v -> Alcotest.(check string) ("roundtrip " ^ s) s (Obs.Json.to_string v)
      | Error e ->
        Alcotest.fail (Printf.sprintf "%s: %s" s (Obs.Json.error_to_string e)))
    [ "{\"type\":\"span\",\"stage\":\"collect\",\"seq\":3,\"sim_start_s\":0,\"wall_ns\":12345}";
      "{\"a\":-1,\"b\":true,\"c\":false,\"d\":null}";
      "{\"s\":\"he said \\\"hi\\\"\\n\",\"f\":1.5}";
      "[1,2.5,\"x\",[],{}]";
      "{\"nested\":{\"deep\":[{\"k\":0}]}}" ]

let test_json_errors () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S parsed but should not" s)
      | Error _ -> ())
    [ ""; "{"; "}"; "{\"a\":}"; "{\"a\":1,}"; "[1,"; "\"unterminated";
      "{\"a\":1} trailing"; "nul"; "+5"; "01x" ]

let test_json_numbers () =
  (* Ints stay Int (so re-render has no ".0"); fractions and exponents
     become Float. *)
  Alcotest.(check bool) "int" true (Obs.Json.parse "42" = Ok (Obs.Json.Int 42));
  Alcotest.(check bool) "negative int" true
    (Obs.Json.parse "-7" = Ok (Obs.Json.Int (-7)));
  Alcotest.(check bool) "float" true
    (Obs.Json.parse "2.5" = Ok (Obs.Json.Float 2.5));
  Alcotest.(check bool) "exponent" true
    (Obs.Json.parse "1e3" = Ok (Obs.Json.Float 1000.0))

let test_json_dup_keys () =
  (* Duplicate object keys are a parse error naming the key — never a
     silent first-wins or last-wins pick. The two artifacts we parse
     (manifests, BENCH.json) are generated with unique keys, so a
     duplicate always means a corrupt or hand-edited file. *)
  (match Obs.Json.parse {|{"a":1,"a":2}|} with
  | Ok _ -> Alcotest.fail "duplicate key parsed"
  | Error e ->
    Alcotest.(check bool) "error names the key" true
      (contains "duplicate object key \"a\"" (Obs.Json.error_to_string e)));
  (match Obs.Json.parse {|{"outer":{"k":1,"nested":0,"k":3}}|} with
  | Ok _ -> Alcotest.fail "nested duplicate key parsed"
  | Error e ->
    Alcotest.(check bool) "nested error names the key" true
      (contains "\"k\"" (Obs.Json.error_to_string e)));
  match Obs.Json.parse {|{"a":{"x":1},"b":{"x":2}}|} with
  | Ok _ -> () (* same key in sibling objects is fine *)
  | Error e -> Alcotest.fail (Obs.Json.error_to_string e)

let test_json_int_range () =
  (* Integer numerals that fit OCaml's int stay Int; anything past the
     63-bit range degrades to Float (losing low-bit precision), never
     wraps and never fails. *)
  Alcotest.(check bool) "max_int stays Int" true
    (Obs.Json.parse (string_of_int max_int) = Ok (Obs.Json.Int max_int));
  Alcotest.(check bool) "min_int stays Int" true
    (Obs.Json.parse (string_of_int min_int) = Ok (Obs.Json.Int min_int));
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok (Obs.Json.Float f) ->
        Alcotest.(check bool) (s ^ " magnitude preserved") true
          (Float.abs f > 4.6e18)
      | Ok v ->
        Alcotest.fail
          (Printf.sprintf "%s parsed as %s, expected Float" s (Obs.Json.to_string v))
      | Error e -> Alcotest.fail (Obs.Json.error_to_string e))
    [ "9223372036854775808"; "-9223372036854775809"; "18446744073709551616" ]

(* -- Trace_reader: typed errors, truncation tolerance, round trips -- *)

let span_line =
  "{\"type\":\"span\",\"stage\":\"collect\",\"vp\":\"vp-0\",\"seq\":0,\
   \"sim_start_s\":0,\"sim_end_s\":1.5,\"gc_minor_words\":880,\
   \"gc_major_words\":12,\"gc_compactions\":0,\"wall_ns\":123456}"

let test_parse_line () =
  (match Obs.Trace_reader.parse_line span_line with
  | Ok r ->
    Alcotest.(check string) "kind" "span" r.Obs.Trace_reader.kind;
    Alcotest.(check bool) "type field excluded" true
      (not (List.mem_assoc "type" r.Obs.Trace_reader.fields));
    Alcotest.(check string) "render roundtrip" span_line
      (Obs.Trace_reader.render r);
    let canon = Obs.Trace_reader.canonical r in
    Alcotest.(check bool) "canonical drops wall_ns" true
      (not (contains "wall_ns" canon));
    Alcotest.(check bool) "canonical drops gc fields" true
      (not (contains "gc_" canon));
    Alcotest.(check bool) "canonical keeps sim fields" true
      (contains "\"sim_end_s\":1.5" canon)
  | Error e -> Alcotest.fail (Obs.Trace_reader.err_label e));
  let expect_err name line =
    match Obs.Trace_reader.parse_line line with
    | Ok _ -> Alcotest.fail (name ^ ": parsed but should not")
    | Error _ -> ()
  in
  expect_err "garbage" "not json at all";
  expect_err "non-object" "[1,2,3]";
  expect_err "missing type" "{\"stage\":\"collect\"}";
  expect_err "non-string type" "{\"type\":7}"

let test_of_lines_tolerance () =
  (* Comments and blanks are skipped; a malformed FINAL line (crashed
     writer) is dropped and flagged; a malformed interior line is a
     typed error carrying its 1-based line number. *)
  (match Obs.Trace_reader.of_lines [ "# header"; ""; span_line; "  " ] with
  | Ok t ->
    Alcotest.(check int) "one record" 1 (List.length t.Obs.Trace_reader.records);
    Alcotest.(check bool) "not truncated" false t.Obs.Trace_reader.truncated
  | Error e -> Alcotest.fail (Obs.Trace_reader.error_to_string e));
  (match Obs.Trace_reader.of_lines [ span_line; "{\"type\":\"span\",\"st" ] with
  | Ok t ->
    Alcotest.(check int) "torn tail dropped" 1
      (List.length t.Obs.Trace_reader.records);
    Alcotest.(check bool) "truncated flagged" true t.Obs.Trace_reader.truncated
  | Error e -> Alcotest.fail (Obs.Trace_reader.error_to_string e));
  match Obs.Trace_reader.of_lines [ span_line; "garbage"; span_line ] with
  | Ok _ -> Alcotest.fail "interior garbage must be a hard error"
  | Error e -> Alcotest.(check int) "error names the line" 2 e.Obs.Trace_reader.line

let test_of_file_missing () =
  match Obs.Trace_reader.of_file "/nonexistent/bdrmap-trace.jsonl" with
  | Ok _ -> Alcotest.fail "read a nonexistent file"
  | Error { err = Obs.Trace_reader.Unreadable _; _ } -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Obs.Trace_reader.error_to_string e)

(* A live round trip: spans emitted through the memory sink parse back
   loss-free (render is byte-identical), and the summary sees every
   span with GC deltas attributed. *)
let test_live_roundtrip () =
  let sink, drain = Obs.Span.memory_sink () in
  Obs.Span.set_sink (Some sink);
  Fun.protect
    ~finally:(fun () -> Obs.Span.close_sink ())
    (fun () ->
      Obs.Span.with_span ~stage:"outer" ~vp:"vp-7"
        ~sim:(fun () -> 2.0)
        (fun () ->
          Obs.Span.with_span ~stage:"inner" ~vp:"vp-7" (fun () ->
              ignore (Sys.opaque_identity (Array.make 4096 0.0)));
          Obs.Span.event ~kind:"heuristic_fire"
            [ ("heuristic", Obs.Span.S "ixp"); ("count", Obs.Span.I 3) ]));
  let lines = drain () in
  match Obs.Trace_reader.of_lines lines with
  | Error e -> Alcotest.fail (Obs.Trace_reader.error_to_string e)
  | Ok t ->
    Alcotest.(check (list string)) "render is byte-identical"
      lines
      (List.map Obs.Trace_reader.render t.Obs.Trace_reader.records);
    let sm = Obs.Trace_reader.summarize t in
    Alcotest.(check int) "two spans" 2 sm.Obs.Trace_reader.sm_spans;
    Alcotest.(check int) "three records" 3 sm.Obs.Trace_reader.sm_records;
    Alcotest.(check bool) "fires counted" true
      (sm.Obs.Trace_reader.sm_fires = [ ("ixp", 3) ]);
    (match sm.Obs.Trace_reader.sm_vps with
    | [ { Obs.Trace_reader.vg_vp = Some "vp-7"; vg_stages } ] ->
      (* inner finishes (and is emitted) before outer *)
      Alcotest.(check (list string)) "stages in emission order"
        [ "inner"; "outer" ]
        (List.map (fun s -> s.Obs.Trace_reader.ss_stage) vg_stages);
      let inner = List.hd vg_stages in
      (* A 4096-word array allocates directly on the major heap. *)
      Alcotest.(check bool) "allocation attributed to inner" true
        (inner.Obs.Trace_reader.ss_minor_words
         + inner.Obs.Trace_reader.ss_major_words
        > 0)
    | _ -> Alcotest.fail "expected one vp group for vp-7");
    let report = Obs.Trace_reader.report_lines ~volatile:false sm in
    Alcotest.(check bool) "canonical report has no wall column" true
      (not (List.exists (contains "wall") report))

(* Property: any span tree emitted through the sink parses back with a
   byte-identical render, a volatile-free canonical form, and a summary
   that accounts for every span exactly once. *)
type tree = Node of string * string option * tree list

let tree_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let stage = oneofl [ "alpha"; "beta"; "gamma"; "delta" ] in
        let vp = opt (oneofl [ "vp-0"; "vp-1" ]) in
        if n <= 0 then map (fun (s, v) -> Node (s, v, [])) (pair stage vp)
        else
          map3
            (fun s v kids -> Node (s, v, kids))
            stage vp
            (list_size (int_bound 3) (self (n / 4)))))

let rec count_nodes (Node (_, _, kids)) =
  1 + List.fold_left (fun a k -> a + count_nodes k) 0 kids

let prop_span_tree_roundtrip =
  QCheck.Test.make ~name:"span tree round trip" ~count:50
    (QCheck.make tree_gen) (fun tree ->
      let sink, drain = Obs.Span.memory_sink () in
      Obs.Span.set_sink (Some sink);
      let clock = ref 0.0 in
      let sim () = !clock in
      let rec emit (Node (stage, vp, kids)) =
        Obs.Span.with_span ~stage ?vp ~sim (fun () ->
            clock := !clock +. 1.0;
            List.iter emit kids)
      in
      Fun.protect ~finally:(fun () -> Obs.Span.close_sink ()) (fun () -> emit tree);
      let lines = drain () in
      match Obs.Trace_reader.of_lines lines with
      | Error e -> QCheck.Test.fail_report (Obs.Trace_reader.error_to_string e)
      | Ok t ->
        let sm = Obs.Trace_reader.summarize t in
        let stage_count =
          List.fold_left
            (fun acc vg ->
              List.fold_left
                (fun acc st -> acc + st.Obs.Trace_reader.ss_count)
                acc vg.Obs.Trace_reader.vg_stages)
            0 sm.Obs.Trace_reader.sm_vps
        in
        List.map Obs.Trace_reader.render t.Obs.Trace_reader.records = lines
        && (not t.Obs.Trace_reader.truncated)
        && sm.Obs.Trace_reader.sm_spans = count_nodes tree
        && stage_count = count_nodes tree
        && List.for_all
             (fun r ->
               let c = Obs.Trace_reader.canonical r in
               not (contains "wall_ns" c || contains "gc_" c))
             t.Obs.Trace_reader.records)

(* -- Summary: percentile estimation from the fixed log buckets -- *)

let test_summary_quantiles () =
  Alcotest.(check bool) "empty histogram has no quantiles" true
    (Obs.Summary.quantiles_of_buckets ~count:0 [] = None);
  (* 100 observations of exactly 1.0 all land in one bucket: every
     percentile must stay inside that bucket's edges. *)
  let one_bucket = [ (1.0, 100) ] in
  (match Obs.Summary.quantiles_of_buckets ~count:100 one_bucket with
  | None -> Alcotest.fail "expected quantiles"
  | Some q ->
    List.iter
      (fun (name, v) ->
        Alcotest.(check bool) (name ^ " within bucket") true
          (v >= 1.0 && v <= Obs.Summary.bucket_upper 1.0))
      [ ("p50", q.Obs.Summary.p50); ("p90", q.Obs.Summary.p90);
        ("p99", q.Obs.Summary.p99); ("max", q.Obs.Summary.max_est) ];
    Alcotest.(check bool) "monotone" true
      (q.Obs.Summary.p50 <= q.Obs.Summary.p90
      && q.Obs.Summary.p90 <= q.Obs.Summary.p99
      && q.Obs.Summary.p99 <= q.Obs.Summary.max_est));
  (* 90 fast observations and 10 slow ones: p50 reads from the fast
     bucket, p99 from the slow one. *)
  let skewed = [ (0.001, 90); (100.0, 10) ] in
  match Obs.Summary.quantiles_of_buckets ~count:100 skewed with
  | None -> Alcotest.fail "expected quantiles"
  | Some q ->
    Alcotest.(check bool) "p50 in fast bucket" true
      (q.Obs.Summary.p50 <= Obs.Summary.bucket_upper 0.001);
    Alcotest.(check bool) "p99 in slow bucket" true (q.Obs.Summary.p99 >= 100.0)

let test_summary_of_hist () =
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.reset ();
      Obs.Metrics.disable ())
    (fun () ->
      for i = 1 to 100 do
        Obs.Metrics.observe "lat" (float_of_int i /. 100.0)
      done;
      match List.assoc "lat" (Obs.Metrics.collect ()) with
      | Obs.Metrics.Histogram h -> (
        match Obs.Summary.of_hist h with
        | None -> Alcotest.fail "expected quantiles"
        | Some q ->
          (* True p50 is 0.50; quarter-decade buckets bound the estimate
             within one bucket either side. *)
          Alcotest.(check bool) "p50 near 0.5" true
            (q.Obs.Summary.p50 > 0.2 && q.Obs.Summary.p50 < 1.0);
          Alcotest.(check bool) "max within top bucket edge" true
            (q.Obs.Summary.max_est >= 1.0))
      | _ -> Alcotest.fail "expected a histogram")

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentiles stay within observed bucket range" ~count:100
    QCheck.(make Gen.(list_size (int_range 1 50) (float_bound_exclusive 1000.0)))
    (fun vs ->
      QCheck.assume (vs <> []);
      Obs.Metrics.enable ();
      Obs.Metrics.reset ();
      Fun.protect
        ~finally:(fun () ->
          Obs.Metrics.reset ();
          Obs.Metrics.disable ())
        (fun () ->
          List.iter (Obs.Metrics.observe "p") vs;
          match List.assoc "p" (Obs.Metrics.collect ()) with
          | Obs.Metrics.Histogram h -> (
            match Obs.Summary.of_hist h with
            | None -> false
            | Some q ->
              let lo_edge =
                match h.Obs.Metrics.h_buckets with
                | (lo, _) :: _ -> lo
                | [] -> 0.0
              in
              let hi_edge =
                Obs.Summary.bucket_upper
                  (List.fold_left (fun _ (lo, _) -> lo) 0.0 h.Obs.Metrics.h_buckets)
              in
              q.Obs.Summary.p50 <= q.Obs.Summary.p90
              && q.Obs.Summary.p90 <= q.Obs.Summary.p99
              && q.Obs.Summary.p99 <= q.Obs.Summary.max_est
              && q.Obs.Summary.p50 >= lo_edge
              && q.Obs.Summary.max_est <= hi_edge +. 1e-9)
          | _ -> false))

let test_summary_degenerate () =
  (* An inconsistent histogram — a positive observation count but no
     populated buckets (or vice versa) — yields None, never a division
     by zero or a fabricated quantile. *)
  Alcotest.(check bool) "count with no buckets" true
    (Obs.Summary.percentile_of_buckets ~count:10 [] 0.5 = None);
  Alcotest.(check bool) "count with all-zero buckets" true
    (Obs.Summary.percentile_of_buckets ~count:10 [ (1.0, 0); (10.0, 0) ] 0.5
    = None);
  Alcotest.(check bool) "zero count with populated buckets" true
    (Obs.Summary.percentile_of_buckets ~count:0 [ (1.0, 5) ] 0.5 = None);
  Alcotest.(check bool) "consistent histogram still answers" true
    (Obs.Summary.percentile_of_buckets ~count:5 [ (1.0, 5) ] 0.5 <> None)

(* -- Run_diff: verdict semantics over flattened series -- *)

let manifest ~wall ~sim =
  Printf.sprintf
    {|{"schema": "bdrmap-manifest/2", "command": "run", "scale": 0.15, "jobs": 1,
  "stages": {"collect": {"count": 1, "wall_s": %g, "sim_s": %g, "gc_minor_words": 500, "gc_major_words": 10, "gc_compactions": 0}},
  "metrics": {"probes.sent": 42, "probe.rtt_s": {"sum": 5.0, "count": 10, "p50": 0.4, "buckets": [[0.1, 10]]}},
  "trace_records": 7, "created_unix": 1700000000}|}
    wall sim

let load s =
  match Obs.Run_diff.of_string s with
  | Ok r -> r
  | Error e -> Alcotest.fail ("run_diff parse: " ^ e)

let test_diff_identical () =
  let a = load (manifest ~wall:0.1 ~sim:12.5) in
  Alcotest.(check bool) "manifest kind" true (a.Obs.Run_diff.kind = Obs.Run_diff.Manifest);
  Alcotest.(check bool) "series flattened" true
    (List.mem_assoc "stage.collect.wall_s" a.Obs.Run_diff.series
    && List.mem_assoc "metric.probes.sent" a.Obs.Run_diff.series
    && List.mem_assoc "metric.probe.rtt_s.p50" a.Obs.Run_diff.series);
  Alcotest.(check bool) "created_unix not compared" true
    (not (List.mem_assoc "created_unix" a.Obs.Run_diff.series));
  let findings = Obs.Run_diff.diff a a in
  Alcotest.(check bool) "identical runs produce no findings" true (findings = [])

let test_diff_wall_regression () =
  let a = load (manifest ~wall:0.1 ~sim:12.5) in
  let b = load (manifest ~wall:0.25 ~sim:12.5) in
  let failing = Obs.Run_diff.regressions (Obs.Run_diff.diff a b) in
  (match failing with
  | [ f ] ->
    Alcotest.(check string) "names the stage series" "stage.collect.wall_s"
      f.Obs.Run_diff.f_name;
    Alcotest.(check bool) "verdict" true (f.Obs.Run_diff.f_verdict = Obs.Run_diff.Regression)
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 failing finding, got %d" (List.length fs)));
  (* The reverse direction is an improvement, not a failure. *)
  let back = Obs.Run_diff.diff b a in
  Alcotest.(check bool) "improvement is not failing" true
    (Obs.Run_diff.regressions back = []
    && List.exists
         (fun f -> f.Obs.Run_diff.f_verdict = Obs.Run_diff.Improvement)
         back)

let test_diff_noise_floor () =
  (* A 4x blow-up under the absolute noise floor is scheduler jitter,
     not a regression. *)
  let a = load (manifest ~wall:0.001 ~sim:12.5) in
  let b = load (manifest ~wall:0.004 ~sim:12.5) in
  Alcotest.(check bool) "sub-floor jitter ignored" true
    (Obs.Run_diff.regressions (Obs.Run_diff.diff a b) = [])

let test_diff_deterministic_changed () =
  (* Deterministic series must match exactly by default; --rel loosens. *)
  let a = load (manifest ~wall:0.1 ~sim:12.5) in
  let b = load (manifest ~wall:0.1 ~sim:13.0) in
  (match Obs.Run_diff.regressions (Obs.Run_diff.diff a b) with
  | [ f ] ->
    Alcotest.(check string) "names sim series" "stage.collect.sim_s" f.Obs.Run_diff.f_name;
    Alcotest.(check bool) "verdict changed" true
      (f.Obs.Run_diff.f_verdict = Obs.Run_diff.Changed)
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)));
  Alcotest.(check bool) "rel tolerance accepts it" true
    (Obs.Run_diff.regressions (Obs.Run_diff.diff ~rel:0.1 a b) = [])

let test_diff_missing () =
  let a = load (manifest ~wall:0.1 ~sim:12.5) in
  let b =
    load
      {|{"schema": "bdrmap-manifest/2", "scale": 0.15, "jobs": 1, "stages": {},
  "metrics": {}, "trace_records": 7}|}
  in
  let missing =
    List.filter
      (fun f -> f.Obs.Run_diff.f_verdict = Obs.Run_diff.Missing)
      (Obs.Run_diff.diff a b)
  in
  Alcotest.(check bool) "shrunk coverage is Missing (and failing)" true
    (missing <> [] && List.for_all Obs.Run_diff.failing missing)

let test_diff_bench_kind () =
  let bench =
    {|{"schema": "bdrmap-bench/8", "scale": 0.3, "domains": 4,
  "experiments": [{"name": "warm", "wall_s": 1.5, "gc_major_words": 100}],
  "corpus": [{"scenario": "moas_storm", "links_pct": 92.5}]}|}
  in
  let r = load bench in
  Alcotest.(check bool) "bench kind" true (r.Obs.Run_diff.kind = Obs.Run_diff.Bench);
  Alcotest.(check bool) "experiment + corpus series" true
    (List.mem_assoc "experiment.warm.wall_s" r.Obs.Run_diff.series
    && List.mem_assoc "corpus.moas_storm.links_pct" r.Obs.Run_diff.series);
  match Obs.Run_diff.of_string {|{"schema": "something-else/1"}|} with
  | Ok _ -> Alcotest.fail "unknown schema accepted"
  | Error _ -> ()

let test_diff_serve_rows () =
  (* Serve rows flatten under serve.<name>.<field>, and the load-derived
     fields (throughput, latency, allocation rate, query counts) are
     volatile: a jittery re-run must diff clean, only an over-ratio
     slowdown regresses. *)
  let bench qps =
    load
      (Printf.sprintf
         {|{"schema": "bdrmap-bench/9", "scale": 0.1, "domains": 1,
  "serve": [{"name": "owner-batch512", "batch": 512, "queries": 1000000,
             "qps": %g, "rtt_p50_us": 80.0, "rtt_p99_us": 300.0,
             "minor_words_per_query": 0.07, "wall_s": 0.5}]}|}
         qps)
  in
  let a = bench 5e6 in
  List.iter
    (fun f ->
      let name = "serve.owner-batch512." ^ f in
      Alcotest.(check bool) (name ^ " present") true
        (List.mem_assoc name a.Obs.Run_diff.series);
      if f <> "batch" then
        Alcotest.(check bool) (name ^ " volatile") true
          (Obs.Run_diff.volatile_series name))
    [ "qps"; "rtt_p50_us"; "rtt_p99_us"; "minor_words_per_query"; "queries";
      "batch" ];
  Alcotest.(check bool) "batch is deterministic" false
    (Obs.Run_diff.volatile_series "serve.owner-batch512.batch");
  Alcotest.(check bool) "jitter diffs clean" true
    (Obs.Run_diff.regressions (Obs.Run_diff.diff a (bench 4.5e6)) = []);
  match Obs.Run_diff.regressions (Obs.Run_diff.diff a (bench 1e6)) with
  | [ f ] ->
    Alcotest.(check string) "names the qps series" "serve.owner-batch512.qps"
      f.Obs.Run_diff.f_name
  | fs ->
    Alcotest.fail (Printf.sprintf "expected 1 regression, got %d" (List.length fs))

(* -- Openmetrics: exposition shape -- *)

let test_openmetrics () =
  match Obs.Openmetrics.of_string (manifest ~wall:0.1 ~sim:12.5) with
  | Error e -> Alcotest.fail e
  | Ok text ->
    List.iter
      (fun sub ->
        Alcotest.(check bool) ("exposition has " ^ sub) true (contains sub text))
      [ "bdrmap_run_info{schema=\"bdrmap-manifest/2\",command=\"run\"} 1";
        "bdrmap_stage_wall_s{stage=\"collect\"} 0.1";
        "bdrmap_stage_gc_minor_words{stage=\"collect\"} 500";
        "# TYPE bdrmap_probes_sent counter";
        "bdrmap_probes_sent_total 42";
        "# TYPE bdrmap_probe_rtt_s histogram";
        "bdrmap_probe_rtt_s_bucket{le=\"+Inf\"} 10";
        "bdrmap_probe_rtt_s_count 10" ];
    let eof = "# EOF\n" in
    Alcotest.(check bool) "ends with # EOF" true
      (String.length text >= String.length eof
      && String.sub text (String.length text - String.length eof)
           (String.length eof)
         = eof)

let suite =
  [ Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "json numbers" `Quick test_json_numbers;
    Alcotest.test_case "json duplicate keys" `Quick test_json_dup_keys;
    Alcotest.test_case "json int range" `Quick test_json_int_range;
    Alcotest.test_case "parse_line" `Quick test_parse_line;
    Alcotest.test_case "of_lines tolerance" `Quick test_of_lines_tolerance;
    Alcotest.test_case "of_file missing" `Quick test_of_file_missing;
    Alcotest.test_case "live roundtrip" `Quick test_live_roundtrip;
    Qc.to_alcotest prop_span_tree_roundtrip;
    Alcotest.test_case "summary quantiles" `Quick test_summary_quantiles;
    Alcotest.test_case "summary of_hist" `Quick test_summary_of_hist;
    Alcotest.test_case "summary degenerate histograms" `Quick
      test_summary_degenerate;
    Qc.to_alcotest prop_percentile_bounds;
    Alcotest.test_case "diff identical" `Quick test_diff_identical;
    Alcotest.test_case "diff wall regression" `Quick test_diff_wall_regression;
    Alcotest.test_case "diff noise floor" `Quick test_diff_noise_floor;
    Alcotest.test_case "diff deterministic changed" `Quick test_diff_deterministic_changed;
    Alcotest.test_case "diff missing" `Quick test_diff_missing;
    Alcotest.test_case "diff bench kind" `Quick test_diff_bench_kind;
    Alcotest.test_case "diff serve rows" `Quick test_diff_serve_rows;
    Alcotest.test_case "openmetrics exposition" `Quick test_openmetrics ]
