open Netcore
open Bgpdata

let sample () =
  let t = As2org.empty in
  let t = As2org.add t 7018 "att" in
  let t = As2org.add t 7132 "att" in
  let t = As2org.add t 3356 "level3" in
  let t = As2org.add t 3549 "level3" in
  let t = As2org.add t 15169 "google" in
  t

let test_org_of () =
  let t = sample () in
  Alcotest.(check (option string)) "known" (Some "att") (As2org.org_of t 7018);
  Alcotest.(check (option string)) "unknown" None (As2org.org_of t 1)

let test_siblings () =
  let t = sample () in
  Alcotest.(check (list int)) "siblings include self" [ 3356; 3549 ]
    (Asn.Set.elements (As2org.siblings t 3356));
  Alcotest.(check (list int)) "lone as" [ 15169 ] (Asn.Set.elements (As2org.siblings t 15169));
  Alcotest.(check (list int)) "unknown as maps to itself" [ 42 ]
    (Asn.Set.elements (As2org.siblings t 42))

let test_same_org () =
  let t = sample () in
  Alcotest.(check bool) "siblings" true (As2org.same_org t 7018 7132);
  Alcotest.(check bool) "not siblings" false (As2org.same_org t 7018 3356);
  Alcotest.(check bool) "unknown" false (As2org.same_org t 7018 42)

let test_roundtrip () =
  let t = sample () in
  match As2org.of_lines (As2org.to_lines t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    Alcotest.(check int) "cardinal" (As2org.cardinal t) (As2org.cardinal t');
    Alcotest.(check bool) "siblings preserved" true (As2org.same_org t' 3356 3549)

let test_parse_errors () =
  Alcotest.(check bool) "bad asn" true (Result.is_error (As2org.of_lines [ "x|org" ]));
  Alcotest.(check bool) "missing field" true (Result.is_error (As2org.of_lines [ "7018" ]))

let suite =
  [ Alcotest.test_case "org lookup" `Quick test_org_of;
    Alcotest.test_case "siblings" `Quick test_siblings;
    Alcotest.test_case "same org" `Quick test_same_org;
    Alcotest.test_case "text roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors ]
