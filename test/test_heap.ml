(* Netcore.Heap: unit coverage plus properties pinning it against the
   obvious reference (List.sort), including the lazy-deletion pattern
   the Dijkstra loops rely on. *)

open Netcore

let test_empty () =
  let h = Heap.create Int.compare in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check (option int)) "pop" None (Heap.pop_opt h);
  Alcotest.(check (option int)) "peek" None (Heap.peek_opt h)

let test_push_pop_order () =
  let h = Heap.of_list Int.compare [ 5; 1; 4; 1; 3; 9; 2 ] in
  Alcotest.(check int) "length" 7 (Heap.length h);
  Alcotest.(check (option int)) "peek is min" (Some 1) (Heap.peek_opt h);
  Alcotest.(check (list int)) "drains sorted" [ 1; 1; 2; 3; 4; 5; 9 ]
    (Heap.to_sorted_list h);
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let test_clear () =
  let h = Heap.of_list Int.compare [ 3; 1; 2 ] in
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Heap.push h 7;
  Alcotest.(check (option int)) "usable after clear" (Some 7) (Heap.pop_opt h)

let test_interleaved () =
  let h = Heap.create Int.compare in
  Heap.push h 4;
  Heap.push h 2;
  Alcotest.(check (option int)) "min of {4,2}" (Some 2) (Heap.pop_opt h);
  Heap.push h 1;
  Heap.push h 3;
  Alcotest.(check (option int)) "min of {4,1,3}" (Some 1) (Heap.pop_opt h);
  Alcotest.(check (option int)) "then 3" (Some 3) (Heap.pop_opt h);
  Alcotest.(check (option int)) "then 4" (Some 4) (Heap.pop_opt h);
  Alcotest.(check (option int)) "empty" None (Heap.pop_opt h)

let arb_ints = QCheck.(list_of_size (Gen.int_range 0 500) (int_range (-1000) 1000))

let prop_heapsort =
  QCheck.Test.make ~name:"heap drains like List.sort" ~count:300 arb_ints (fun l ->
      Heap.to_sorted_list (Heap.of_list Int.compare l) = List.sort Int.compare l)

let prop_total_order_ties =
  (* With a total comparison on (key, payload), the drain order is fully
     deterministic even among equal keys — what Bgp/Forwarding rely on
     for reproducible tie-breaking. *)
  QCheck.Test.make ~name:"total cmp gives deterministic drain" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 200) (pair (int_bound 5) (int_bound 1000)))
    (fun l ->
      let cmp (k1, p1) (k2, p2) =
        match Int.compare k1 k2 with 0 -> Int.compare p1 p2 | c -> c
      in
      Heap.to_sorted_list (Heap.of_list cmp l) = List.sort cmp l)

(* The Dijkstra usage: relax by pushing duplicates, skip stale pops.
   The resulting distance map must match a reference computed from the
   final (minimal) value per key. *)
let prop_lazy_deletion =
  QCheck.Test.make ~name:"lazy deletion yields per-key minima" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 300) (pair (int_bound 20) (int_bound 100)))
    (fun updates ->
      let cmp (d1, k1) (d2, k2) =
        match Int.compare d1 d2 with 0 -> Int.compare k1 k2 | c -> c
      in
      let h = Heap.create cmp in
      let best = Hashtbl.create 16 in
      (* "decrease-key": record the improvement and push a duplicate. *)
      List.iter
        (fun (k, d) ->
          match Hashtbl.find_opt best k with
          | Some d' when d' <= d -> ()
          | _ ->
            Hashtbl.replace best k d;
            Heap.push h (d, k))
        updates;
      (* Drain: the first non-stale pop per key is its minimum, and pops
         arrive in nondecreasing distance order. *)
      let seen = Hashtbl.create 16 in
      let ok = ref true in
      let last = ref min_int in
      let rec drain () =
        match Heap.pop_opt h with
        | None -> ()
        | Some (d, k) ->
          if d < !last then ok := false;
          last := d;
          if Hashtbl.find_opt best k = Some d && not (Hashtbl.mem seen k) then
            Hashtbl.replace seen k d;
          drain ()
      in
      drain ();
      !ok
      && Hashtbl.length seen = Hashtbl.length best
      && Hashtbl.fold (fun k d acc -> acc && Hashtbl.find_opt seen k = Some d) best true)

let suite =
  [ Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "push/pop order" `Quick test_push_pop_order;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Qc.to_alcotest prop_heapsort;
    Qc.to_alcotest prop_total_order_ties;
    Qc.to_alcotest prop_lazy_deletion ]
