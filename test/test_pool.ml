(* The domain pool: submission-order results, exception propagation,
   reuse across batches, worker-local init — under both a single worker
   domain and several — plus the end-to-end determinism guarantee:
   multi-VP inference output is byte-identical whatever the pool size. *)

open Netcore
module Gen = Topogen.Gen

(* Every structural test runs at both pool sizes: the 1-domain pool is
   the degenerate schedule (one worker drains everything), the 4-domain
   pool exercises contention on the shared cursor. *)
let sizes = [ 1; 4 ]

let test_map_ordering () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let items = List.init 100 Fun.id in
          let got = Pool.map pool (fun x -> x * x) items in
          Alcotest.(check (list int))
            (Printf.sprintf "squares in order (%d domains)" domains)
            (List.map (fun x -> x * x) items)
            got))
    sizes

let test_empty_and_single () =
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.(check (list int)) "empty batch" [] (Pool.map pool succ []);
      Alcotest.(check (list int)) "one item" [ 42 ] (Pool.map pool succ [ 41 ]))

let test_run_thunks () =
  Pool.with_pool ~domains:3 (fun pool ->
      let got = Pool.run pool (List.init 7 (fun i () -> i * 10)) in
      Alcotest.(check (list int)) "thunk results ordered"
        [ 0; 10; 20; 30; 40; 50; 60 ] got)

let test_exception_propagation () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          (match
             Pool.map pool
               (fun x -> if x = 42 then failwith "boom-42" else x)
               (List.init 100 Fun.id)
           with
          | _ -> Alcotest.fail "expected the batch to raise"
          | exception Failure m ->
            Alcotest.(check string)
              (Printf.sprintf "first failure in order (%d domains)" domains)
              "boom-42" m);
          (* The pool survives a failed batch. *)
          Alcotest.(check (list int)) "usable after failure" [ 2; 4 ]
            (Pool.map pool (fun x -> 2 * x) [ 1; 2 ])))
    sizes

let test_reuse_across_batches () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          for batch = 1 to 5 do
            let items = List.init (10 * batch) (fun i -> i + batch) in
            Alcotest.(check (list int))
              (Printf.sprintf "batch %d (%d domains)" batch domains)
              (List.map succ items)
              (Pool.map pool succ items)
          done))
    sizes

let test_map_init_worker_state () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let inits = Atomic.make 0 in
          let got =
            Pool.map_init pool
              ~init:(fun () ->
                Atomic.incr inits;
                (* Worker-local accumulator: mutation without locks must
                   be safe because each worker owns its own ref. *)
                ref 0)
              (fun acc x ->
                acc := !acc + x;
                x + 1)
              (List.init 50 Fun.id)
          in
          Alcotest.(check (list int)) "results use state" (List.init 50 succ) got;
          let n = Atomic.get inits in
          Alcotest.(check bool)
            (Printf.sprintf "init ran 1..%d times, got %d" domains n)
            true
            (n >= 1 && n <= domains)))
    sizes

let test_shutdown_rejects_use () =
  let pool = Pool.create ~domains:2 () in
  Alcotest.(check int) "size" 2 (Pool.size pool);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  match Pool.map pool succ [ 1 ] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ()

(* The tentpole guarantee: execute_all produces byte-identical per-VP
   link output with no pool, a 1-domain pool and a multi-domain pool. *)
let test_execute_all_determinism () =
  let w = Gen.generate Topogen.Scenario.tiny in
  let _bgp, _fwd, _engine, inputs = Bdrmap.Pipeline.setup w in
  let lines (r : Bdrmap.Pipeline.run) =
    Bdrmap.Output.links_to_lines r.Bdrmap.Pipeline.graph r.Bdrmap.Pipeline.inference
  in
  let serial =
    List.map lines (Bdrmap.Pipeline.execute_all w inputs ~vps:w.Gen.vps)
  in
  Alcotest.(check int) "every tiny VP ran" (List.length w.Gen.vps)
    (List.length serial);
  Alcotest.(check bool) "tiny world has several VPs" true
    (List.length w.Gen.vps > 1);
  List.iter
    (fun domains ->
      let pooled =
        Pool.with_pool ~domains (fun pool ->
            List.map lines
              (Bdrmap.Pipeline.execute_all ~pool w inputs ~vps:w.Gen.vps))
      in
      List.iteri
        (fun i (a, b) ->
          Alcotest.(check (list string))
            (Printf.sprintf "vp %d identical at %d domains" i domains)
            a b)
        (List.combine serial pooled))
    sizes

let suite =
  [ Alcotest.test_case "map ordering" `Quick test_map_ordering;
    Alcotest.test_case "empty and single" `Quick test_empty_and_single;
    Alcotest.test_case "run thunks" `Quick test_run_thunks;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "reuse across batches" `Quick test_reuse_across_batches;
    Alcotest.test_case "map_init worker state" `Quick test_map_init_worker_state;
    Alcotest.test_case "shutdown" `Quick test_shutdown_rejects_use;
    Alcotest.test_case "execute_all determinism" `Slow test_execute_all_determinism ]
