(* Hand-built micro-topologies mirroring the paper's figures 4-11: each
   test feeds the inference synthetic traces and checks which heuristic
   fires and what owner it assigns. *)

open Netcore
module B = Bgpdata
module H = Bdrmap.Heuristics

let ip = Ipv4.of_string_exn

let host_asn = 64500

(* Address plan: 10.0/16 host; 20.0/16 AS 65001 (A); 30.0/16 AS 65002 (B);
   40.0/16 AS 65003 (C); 50.0/16 unrouted (delegated to org-a);
   86.0.0.0/24 an IXP LAN. *)
let rib_lines =
  [ "81.0.0.0/16|900 64500";
    "82.0.0.0/16|900 65001";
    "83.0.0.0/16|900 65002";
    "84.0.0.0/16|900 65003" ]

let del_lines =
  [ "sim|US|ipv4|81.0.0.0|65536|20160101|allocated|org-host";
    "sim|US|ipv4|82.0.0.0|65536|20160101|allocated|org-a";
    "sim|US|ipv4|83.0.0.0|65536|20160101|allocated|org-b";
    "sim|US|ipv4|84.0.0.0|65536|20160101|allocated|org-c";
    "sim|US|ipv4|85.0.0.0|65536|20160101|allocated|org-a" ]

let ixp_lines = [ "prefix|86.0.0.0/24|test-ix" ]

let ip2as =
  let rib = Result.get_ok (B.Rib.of_lines rib_lines) in
  let dels = Result.get_ok (B.Delegation.of_lines del_lines) in
  let ixp = Result.get_ok (B.Ixp.of_lines ixp_lines) in
  Bdrmap.Ip2as.create ~rib ~ixp ~delegations:dels
    ~vp_asns:(Asn.Set.singleton host_asn)

let cfg = Bdrmap.Config.default ~vp_asns:(Asn.Set.singleton host_asn)

let trace ?(closing = Bdrmap.Trace.Nothing) ~target dst hops =
  { Bdrmap.Trace.dst = ip dst;
    target_asn = target;
    hops = List.mapi (fun i a -> (i + 1, ip a)) hops;
    closing;
    stopped = false }

let collection ?(aliases = []) ?(not_aliases = []) ?(mates = []) ?(other_icmp = [])
    traces =
  let g = Aliasres.Alias_graph.create () in
  List.iter (fun (a, b) -> Aliasres.Alias_graph.add_not_alias g (ip a) (ip b)) not_aliases;
  List.iter (fun (a, b) -> Aliasres.Alias_graph.add_alias g (ip a) (ip b)) aliases;
  { Bdrmap.Collect.traces;
    aliases = g;
    mates = List.map (fun (p, h, m) -> (ip p, ip h, ip m)) mates;
    other_icmp = List.map (fun (asn, a) -> (asn, ip a)) other_icmp;
    sched = Probesim.Scheduler.create ~pps:100.0;
    stopset_hits = 0;
    alias_pairs_tested = 0 }

let infer ?(rels = B.As_rel.empty) c =
  let g = Bdrmap.Rgraph.build c in
  (g, H.infer cfg ip2as ~rels g c)

let owner_at (g, (r : H.result)) addr =
  match Bdrmap.Rgraph.node_of_addr g (ip addr) with
  | None -> Alcotest.failf "no node holds %s" addr
  | Some n -> (List.nth r.H.routers n.Bdrmap.Rgraph.id).H.owner

let check_neighbor msg res addr asn tag =
  match owner_at res addr with
  | H.Neighbor (a, t) ->
    Alcotest.(check int) (msg ^ ": owner") asn a;
    Alcotest.(check string) (msg ^ ": tag") (H.tag_label tag) (H.tag_label t)
  | H.Host_router -> Alcotest.failf "%s: inferred host router" msg
  | H.Unknown -> Alcotest.failf "%s: unresolved" msg

let check_host msg res addr =
  match owner_at res addr with
  | H.Host_router -> ()
  | H.Neighbor (a, t) ->
    Alcotest.failf "%s: inferred AS%d via %s, expected host" msg a (H.tag_label t)
  | H.Unknown -> Alcotest.failf "%s: unresolved" msg

(* Figure 4 step 1.2: host-space router followed by more host space. *)
let test_fig4_host_routers () =
  let res =
    infer
      (collection
         [ trace ~target:65001 "82.0.0.1" [ "81.0.0.1"; "81.0.0.5"; "81.0.9.2" ] ])
  in
  check_host "R1 with host successors" res "81.0.0.1";
  check_host "R2 with host successor" res "81.0.0.5"

(* Figure 4 step 1.1: multihomed neighbor chain with A adjacent. *)
let test_fig4_multihomed () =
  let res =
    infer
      (collection
         [ trace ~target:65001 "82.0.0.1" [ "81.0.0.1"; "81.0.1.1"; "81.0.1.5" ];
           trace ~target:65001 "82.0.1.1" [ "81.0.0.1"; "81.0.1.1"; "82.0.0.9" ] ])
  in
  check_host "edge router stays host" res "81.0.0.1";
  check_neighbor "R1 of multihomed pair" res "81.0.1.1" 65001 H.T1_multihomed

(* Figure 4 step 1.1 guard: a successor owned by a host customer that is
   not a neighbor of A forces the router back to the host. *)
let test_fig4_multihomed_guard () =
  let rels = B.As_rel.add_c2p B.As_rel.empty ~provider:host_asn ~customer:65002 in
  let res =
    infer ~rels
      (collection
         [ trace ~target:65001 "82.0.0.1" [ "81.0.0.1"; "81.0.1.1"; "81.0.1.5" ];
           trace ~target:65001 "82.0.1.1" [ "81.0.0.1"; "81.0.1.1"; "82.0.0.9" ];
           trace ~target:65001 "82.0.2.1" [ "81.0.0.1"; "81.0.1.1"; "83.0.0.9" ] ])
  in
  check_host "guard reverts to host" res "81.0.1.1"

(* Figure 5: firewalled neighbor, last hop in host space. *)
let test_fig5_firewall () =
  let res =
    infer
      (collection
         [ trace ~target:65001 "82.0.0.1" [ "81.0.0.1"; "81.0.9.1" ];
           trace ~target:65001 "82.0.1.1" [ "81.0.0.1"; "81.0.9.1" ] ])
  in
  check_host "edge" res "81.0.0.1";
  check_neighbor "firewalled border" res "81.0.9.1" 65001 H.T2_firewall

(* Figure 6: unrouted interfaces, single routed AS beyond. *)
let test_fig6_unrouted_single () =
  let res =
    infer
      (collection
         [ trace ~target:65001 "82.0.0.1"
             [ "81.0.0.1"; "85.0.0.1"; "82.0.0.9" ] ])
  in
  check_neighbor "unrouted router" res "85.0.0.1" 65001 H.T3_unrouted

(* Figure 6 variant: multiple routed ASes beyond, provider wins. *)
let test_fig6_unrouted_multi () =
  let rels = B.As_rel.empty in
  let rels = B.As_rel.add_c2p rels ~provider:65003 ~customer:65001 in
  let rels = B.As_rel.add_c2p rels ~provider:65003 ~customer:65002 in
  let res =
    infer ~rels
      (collection
         [ trace ~target:65001 "82.0.0.1" [ "81.0.0.1"; "85.0.0.1"; "82.0.0.9" ];
           trace ~target:65002 "83.0.0.1" [ "81.0.0.1"; "85.0.0.1"; "83.0.0.9" ] ])
  in
  check_neighbor "most frequent provider" res "85.0.0.1" 65003 H.T3_unrouted

(* IXP LAN addresses behave like unrouted space (§5.4.3), and the host's
   router before the exchange stays with the host. *)
let test_ixp_lan () =
  let res =
    infer
      (collection
         [ trace ~target:65001 "82.0.0.1"
             [ "81.0.0.1"; "81.0.2.1"; "86.0.0.7"; "82.0.0.9" ] ])
  in
  check_host "host router before the LAN" res "81.0.2.1";
  check_neighbor "member router on the LAN" res "86.0.0.7" 65001 H.T3_unrouted

(* Figure 7 step 4.1: consecutive interfaces in one external AS. *)
let test_fig7_onenet_ext () =
  let res =
    infer
      (collection
         [ trace ~target:65001 "82.0.5.1"
             [ "81.0.0.1"; "82.0.0.9"; "82.0.1.9"; "82.0.2.9" ] ])
  in
  check_neighbor "4.1 first A router" res "82.0.0.9" 65001 H.T4_onenet

(* Figure 7 step 4.2: host-space border followed by two A routers. *)
let test_fig7_onenet_host () =
  let res =
    infer
      (collection
         [ trace ~target:65001 "82.0.5.1"
             [ "81.0.0.1"; "81.0.9.1"; "82.0.0.9"; "82.0.1.9" ] ])
  in
  check_neighbor "4.2 host-space border" res "81.0.9.1" 65001 H.T4_onenet

(* Figure 8 steps 5.1/5.2: third-party address from A (provider of B)
   on paths toward B only. *)
let test_fig8_third_party () =
  let rels = B.As_rel.add_c2p B.As_rel.empty ~provider:65001 ~customer:65002 in
  let res =
    infer ~rels
      (collection
         [ trace ~target:65002 "83.0.0.1" [ "81.0.0.1"; "81.0.9.1"; "82.0.0.9" ] ])
  in
  check_neighbor "5.2 third-party responder" res "82.0.0.9" 65002 H.T5_third_party;
  check_neighbor "5.1 host-space predecessor" res "81.0.9.1" 65002 H.T5_third_party

(* Figure 8 step 5.3: known customer beyond a host-space border. *)
let test_fig8_relationship () =
  let rels = B.As_rel.add_c2p B.As_rel.empty ~provider:host_asn ~customer:65001 in
  let res =
    infer ~rels
      (collection
         [ trace ~target:65001 "82.0.5.1" [ "81.0.0.1"; "81.0.9.1"; "82.0.0.9" ];
           trace ~target:65002 "83.0.0.1" [ "81.0.0.1"; "81.0.9.1"; "82.0.0.9"; "83.0.0.9" ] ])
  in
  check_neighbor "5.3 known customer" res "81.0.9.1" 65001 H.T5_relationship

(* Figure 8 step 5.4: missing customer via an intermediate provider. *)
let test_fig8_missing_customer () =
  let rels = B.As_rel.empty in
  let rels = B.As_rel.add_c2p rels ~provider:host_asn ~customer:65002 in
  let rels = B.As_rel.add_c2p rels ~provider:65002 ~customer:65001 in
  let res =
    infer ~rels
      (collection
         [ trace ~target:65001 "82.0.5.1" [ "81.0.0.1"; "81.0.9.1"; "82.0.0.9" ];
           trace ~target:65003 "84.0.0.1" [ "81.0.0.1"; "81.0.9.1"; "82.0.0.9"; "84.0.0.9" ] ])
  in
  check_neighbor "5.4 missing customer" res "81.0.9.1" 65002 H.T5_missing_customer

(* Figure 8 step 5.5: hidden peer - single AS beyond, no relationship. *)
let test_fig8_hidden_peer () =
  let res =
    infer
      (collection
         [ trace ~target:65001 "82.0.5.1" [ "81.0.0.1"; "81.0.9.1"; "82.0.0.9" ];
           trace ~target:65002 "83.0.0.1" [ "81.0.0.1"; "81.0.9.1"; "82.0.0.9"; "83.0.0.9" ] ])
  in
  check_neighbor "5.5 hidden peer" res "81.0.9.1" 65001 H.T5_hidden_peer

(* Figure 9 step 6.1: multiple adjacent ASes, majority count wins. *)
let test_fig9_count () =
  let res =
    infer
      (collection
         [ trace ~target:65001 "82.0.5.1" [ "81.0.0.1"; "81.0.9.1"; "82.0.0.9" ];
           trace ~target:65001 "82.0.6.1" [ "81.0.0.1"; "81.0.9.1"; "82.0.1.9" ];
           trace ~target:65002 "83.0.0.1" [ "81.0.0.1"; "81.0.9.1"; "83.0.0.9" ] ])
  in
  check_neighbor "6.1 majority" res "81.0.9.1" 65001 H.T6_count

(* Fallback 6: external addresses, no further constraint. *)
let test_fig9_ipas () =
  let res =
    infer
      (collection
         [ trace ~target:65001 "82.0.5.1" [ "81.0.0.1"; "82.0.0.9" ];
           trace ~target:65002 "83.0.0.1" [ "81.0.0.1"; "82.0.0.9" ] ])
  in
  check_neighbor "6 ip-as fallback" res "82.0.0.9" 65001 H.T6_ipas

(* Figure 10 step 7: single-interface host routers facing one neighbor
   router over a confirmed point-to-point link collapse into one. *)
let test_fig10_merge () =
  let c =
    collection
      ~mates:[ ("81.0.3.1", "82.0.0.9", "82.0.0.8") ]
      [ trace ~target:65001 "82.0.5.1" [ "81.0.0.1"; "81.0.3.1"; "82.0.0.9"; "82.0.1.9" ];
        trace ~target:65001 "82.0.6.1" [ "81.0.0.1"; "81.0.4.1"; "82.0.0.9"; "82.0.1.9" ];
        (* Host-space successors pin both near routers to the host, the
           step-1.2 precondition figure 10 relies on. *)
        trace ~target:65002 "83.0.0.1" [ "81.0.0.1"; "81.0.3.1"; "81.0.6.1"; "83.0.0.9" ];
        trace ~target:65002 "83.0.1.1" [ "81.0.0.1"; "81.0.4.1"; "81.0.6.1"; "83.0.0.9" ] ]
  in
  let g, r = infer c in
  let far = Option.get (Bdrmap.Rgraph.node_of_addr g (ip "82.0.0.9")) in
  ignore far;
  let merged_total =
    List.fold_left
      (fun acc (ri : H.router_inference) -> acc + List.length ri.H.merged_from)
      0 r.H.routers
  in
  Alcotest.(check int) "one router merged away" 1 merged_total

(* Figure 11 step 8.1: silent neighbor placed at the consistent last
   host router. *)
let test_fig11_silent () =
  let rels = B.As_rel.add_c2p B.As_rel.empty ~provider:host_asn ~customer:65002 in
  let c =
    collection
      [ trace ~target:65002 "83.0.0.1" [ "81.0.0.1"; "81.0.2.1" ];
        trace ~target:65002 "83.0.1.1" [ "81.0.0.1"; "81.0.2.1" ];
        (* another AS keeps 81.0.2.1 anchored as a host router *)
        trace ~target:65001 "82.0.0.1" [ "81.0.0.1"; "81.0.2.1"; "81.0.9.1"; "82.0.0.9" ] ]
  in
  let _, r = infer ~rels c in
  let silent =
    List.find_opt
      (fun (l : H.border_link) -> l.H.neighbor = 65002 && l.H.tag = H.T8_silent)
      r.H.links
  in
  Alcotest.(check bool) "silent link found" true (silent <> None);
  match silent with
  | Some l -> Alcotest.(check bool) "no far router" true (l.H.far_node = None)
  | None -> ()

(* Figure 11 step 8.2: firewalled neighbor that answers with other ICMP. *)
let test_fig11_other_icmp () =
  let rels = B.As_rel.add_c2p B.As_rel.empty ~provider:host_asn ~customer:65002 in
  let c =
    collection
      ~other_icmp:[ (65002, "83.0.0.1") ]
      [ trace ~target:65002 "83.0.0.1"
          ~closing:(Bdrmap.Trace.Echo (ip "83.0.0.1"))
          [ "81.0.0.1"; "81.0.2.1" ];
        trace ~target:65001 "82.0.0.1" [ "81.0.0.1"; "81.0.2.1"; "81.0.9.1"; "82.0.0.9" ] ]
  in
  let _, r = infer ~rels c in
  let found =
    List.find_opt
      (fun (l : H.border_link) -> l.H.neighbor = 65002 && l.H.tag = H.T8_other_icmp)
      r.H.links
  in
  Alcotest.(check bool) "other-icmp link found" true (found <> None)

(* §5.4.8 precondition: a neighbor with an already-inferred link is not
   revisited by step 8. *)
let test_fig11_skips_inferred () =
  let rels = B.As_rel.add_c2p B.As_rel.empty ~provider:host_asn ~customer:65001 in
  let c =
    collection
      [ trace ~target:65001 "82.0.0.1" [ "81.0.0.1"; "81.0.9.1"; "82.0.0.9"; "82.0.1.9" ] ]
  in
  let _, r = infer ~rels c in
  let silent_links =
    List.filter (fun (l : H.border_link) -> l.H.tag = H.T8_silent) r.H.links
  in
  Alcotest.(check int) "no step-8 link for covered neighbor" 0 (List.length silent_links)

(* Aliases collapse hops into single routers in the graph. *)
let test_alias_collapse () =
  let c =
    collection
      ~aliases:[ ("81.0.1.1", "81.0.1.9") ]
      [ trace ~target:65001 "82.0.0.1" [ "81.0.0.1"; "81.0.1.1"; "82.0.0.9" ];
        trace ~target:65001 "82.0.1.1" [ "81.0.0.1"; "81.0.1.9"; "82.0.0.9" ] ]
  in
  let g, _ = infer c in
  let n1 = Option.get (Bdrmap.Rgraph.node_of_addr g (ip "81.0.1.1")) in
  let n2 = Option.get (Bdrmap.Rgraph.node_of_addr g (ip "81.0.1.9")) in
  Alcotest.(check int) "same node" n1.Bdrmap.Rgraph.id n2.Bdrmap.Rgraph.id;
  Alcotest.(check int) "two addrs" 2 (Ipv4.Set.cardinal n1.Bdrmap.Rgraph.addrs)

(* The ablation knob suppresses a heuristic's inferences. *)
let test_ablation_disables () =
  let c =
    collection
      [ trace ~target:65001 "82.0.0.1" [ "81.0.0.1"; "81.0.9.1" ];
        trace ~target:65001 "82.0.1.1" [ "81.0.0.1"; "81.0.9.1" ] ]
  in
  let g = Bdrmap.Rgraph.build c in
  let r = H.infer ~disabled:[ H.T2_firewall ] cfg ip2as ~rels:B.As_rel.empty g c in
  let n = Option.get (Bdrmap.Rgraph.node_of_addr g (ip "81.0.9.1")) in
  let o = (List.nth r.H.routers n.Bdrmap.Rgraph.id).H.owner in
  Alcotest.(check bool) "firewall inference suppressed" true
    (match o with
    | H.Neighbor (_, H.T2_firewall) -> false
    | _ -> true)

let suite =
  [ Alcotest.test_case "fig4 host routers (1.2)" `Quick test_fig4_host_routers;
    Alcotest.test_case "fig4 multihomed pair (1.1)" `Quick test_fig4_multihomed;
    Alcotest.test_case "fig4 multihomed guard" `Quick test_fig4_multihomed_guard;
    Alcotest.test_case "fig5 firewall (2)" `Quick test_fig5_firewall;
    Alcotest.test_case "fig6 unrouted single (3.1)" `Quick test_fig6_unrouted_single;
    Alcotest.test_case "fig6 unrouted multi (3.2)" `Quick test_fig6_unrouted_multi;
    Alcotest.test_case "ixp lan router" `Quick test_ixp_lan;
    Alcotest.test_case "fig7 onenet external (4.1)" `Quick test_fig7_onenet_ext;
    Alcotest.test_case "fig7 onenet host border (4.2)" `Quick test_fig7_onenet_host;
    Alcotest.test_case "fig8 third party (5.1/5.2)" `Quick test_fig8_third_party;
    Alcotest.test_case "fig8 relationship (5.3)" `Quick test_fig8_relationship;
    Alcotest.test_case "fig8 missing customer (5.4)" `Quick test_fig8_missing_customer;
    Alcotest.test_case "fig8 hidden peer (5.5)" `Quick test_fig8_hidden_peer;
    Alcotest.test_case "fig9 count (6.1)" `Quick test_fig9_count;
    Alcotest.test_case "fig9 ip-as fallback (6)" `Quick test_fig9_ipas;
    Alcotest.test_case "fig10 alias merge (7)" `Quick test_fig10_merge;
    Alcotest.test_case "fig11 silent neighbor (8.1)" `Quick test_fig11_silent;
    Alcotest.test_case "fig11 other icmp (8.2)" `Quick test_fig11_other_icmp;
    Alcotest.test_case "fig11 skips inferred neighbors" `Quick test_fig11_skips_inferred;
    Alcotest.test_case "alias collapse in graph" `Quick test_alias_collapse;
    Alcotest.test_case "ablation disables a step" `Quick test_ablation_disables ]
