open Netcore
open Bgpdata

let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let sample () =
  let t = Ixp.empty in
  let t = Ixp.add_prefix t (pfx "206.126.236.0/22") "equinix-ash" in
  let t = Ixp.add_prefix t (pfx "80.249.208.0/21") "ams-ix" in
  let t = Ixp.add_member t (ip "206.126.236.17") 3356 "equinix-ash" in
  let t = Ixp.add_member t (ip "80.249.209.1") 1299 "ams-ix" in
  t

let test_lookup () =
  let t = sample () in
  Alcotest.(check (option string)) "in lan" (Some "equinix-ash")
    (Ixp.ixp_of t (ip "206.126.239.255"));
  Alcotest.(check (option string)) "other lan" (Some "ams-ix")
    (Ixp.ixp_of t (ip "80.249.215.1"));
  Alcotest.(check (option string)) "not ixp" None (Ixp.ixp_of t (ip "8.8.8.8"));
  Alcotest.(check bool) "is_ixp_addr" true (Ixp.is_ixp_addr t (ip "206.126.236.1"))

let test_membership () =
  let t = sample () in
  Alcotest.(check (option int)) "member" (Some 3356) (Ixp.member_of t (ip "206.126.236.17"));
  Alcotest.(check (option int)) "unregistered addr" None
    (Ixp.member_of t (ip "206.126.236.18"))

let test_roundtrip () =
  let t = sample () in
  match Ixp.of_lines (Ixp.to_lines t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    Alcotest.(check int) "prefixes" 2 (List.length (Ixp.prefixes t'));
    Alcotest.(check int) "members" 2 (List.length (Ixp.members t'));
    Alcotest.(check (option int)) "member preserved" (Some 1299)
      (Ixp.member_of t' (ip "80.249.209.1"))

let test_names () =
  Alcotest.(check (list string)) "names" [ "ams-ix"; "equinix-ash" ] (Ixp.ixp_names (sample ()))

let test_parse_errors () =
  Alcotest.(check bool) "bad kind" true (Result.is_error (Ixp.of_lines [ "lan|10.0.0.0/24|x" ]));
  Alcotest.(check bool) "bad member" true
    (Result.is_error (Ixp.of_lines [ "member|10.0.0.1|x|name" ]))

let suite =
  [ Alcotest.test_case "lan lookup" `Quick test_lookup;
    Alcotest.test_case "membership" `Quick test_membership;
    Alcotest.test_case "text roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "parse errors" `Quick test_parse_errors ]
