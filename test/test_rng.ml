open Netcore

let test_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000000) (Rng.int b 1000000)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000000) in
  Alcotest.(check bool) "different seeds diverge" true (xs <> ys)

let test_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let xs = List.init 20 (fun _ -> Rng.int parent 1000) in
  let ys = List.init 20 (fun _ -> Rng.int child 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_bounds () =
  let t = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int t 7 in
    Alcotest.(check bool) "int in bounds" true (v >= 0 && v < 7);
    let w = Rng.int_in t 10 12 in
    Alcotest.(check bool) "int_in bounds" true (w >= 10 && w <= 12);
    let f = Rng.float t in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_uniformity () =
  let t = Rng.create 11 in
  let buckets = Array.make 10 0 in
  let n = 20000 in
  for _ = 1 to n do
    let v = Rng.int t 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform (%d)" i c)
        true
        (c > (n / 10) - 400 && c < (n / 10) + 400))
    buckets

let test_shuffle_permutation () =
  let t = Rng.create 5 in
  let l = List.init 50 Fun.id in
  let s = Rng.shuffle t l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

let test_sample () =
  let t = Rng.create 5 in
  let l = List.init 50 Fun.id in
  let s = Rng.sample t 10 l in
  Alcotest.(check int) "sample size" 10 (List.length s);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s));
  Alcotest.(check int) "oversample returns all" 50 (List.length (Rng.sample t 100 l))

let test_weighted () =
  let t = Rng.create 9 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10000 do
    let v = Rng.weighted t [ (0.9, "a"); (0.1, "b") ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let a = Option.value ~default:0 (Hashtbl.find_opt counts "a") in
  Alcotest.(check bool) "weighted ratio" true (a > 8600 && a < 9400)

let test_bool_p () =
  let t = Rng.create 13 in
  let hits = ref 0 in
  for _ = 1 to 10000 do
    if Rng.bool t ~p:0.25 then incr hits
  done;
  Alcotest.(check bool) "p=0.25" true (!hits > 2200 && !hits < 2800)

let suite =
  [ Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "uniformity" `Quick test_uniformity;
    Alcotest.test_case "shuffle is permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample" `Quick test_sample;
    Alcotest.test_case "weighted pick" `Quick test_weighted;
    Alcotest.test_case "bool with probability" `Quick test_bool_p ]
