open Netcore

let ip = Ipv4.of_string_exn

let check_ip msg expected actual =
  Alcotest.(check string) msg expected (Ipv4.to_string actual)

let test_roundtrip () =
  List.iter
    (fun s -> check_ip s s (ip s))
    [ "0.0.0.0"; "255.255.255.255"; "192.0.2.1"; "10.0.0.1"; "1.2.3.4"; "128.66.255.0" ]

let test_parse_rejects () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "reject %S" s) true (Ipv4.of_string s = None))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "1.2.3.999"; "a.b.c.d"; "1..2.3"; "1.2.3.4 ";
      " 1.2.3.4"; "1.2.3.4/24"; "-1.2.3.4"; "1.2.3.4." ]

let test_octets () =
  let a = Ipv4.of_octets 192 0 2 129 in
  check_ip "octets build" "192.0.2.129" a;
  Alcotest.(check (list int)) "octets split" [ 192; 0; 2; 129 ]
    (let o1, o2, o3, o4 = Ipv4.to_octets a in
     [ o1; o2; o3; o4 ])

let test_arith () =
  check_ip "succ" "192.0.2.2" (Ipv4.succ (ip "192.0.2.1"));
  check_ip "succ carries" "192.0.3.0" (Ipv4.succ (ip "192.0.2.255"));
  check_ip "succ saturates" "255.255.255.255" (Ipv4.succ Ipv4.broadcast);
  check_ip "pred" "192.0.2.0" (Ipv4.pred (ip "192.0.2.1"));
  check_ip "pred saturates" "0.0.0.0" (Ipv4.pred Ipv4.zero);
  check_ip "add" "192.0.3.4" (Ipv4.add (ip "192.0.2.0") 260);
  Alcotest.(check int) "diff" 260 (Ipv4.diff (ip "192.0.3.4") (ip "192.0.2.0"))

let test_bits () =
  let a = ip "128.0.0.1" in
  Alcotest.(check bool) "msb" true (Ipv4.bit a 0);
  Alcotest.(check bool) "bit 1" false (Ipv4.bit a 1);
  Alcotest.(check bool) "lsb" true (Ipv4.bit a 31)

let test_classes () =
  Alcotest.(check bool) "10/8 private" true (Ipv4.private_use (ip "10.1.2.3"));
  Alcotest.(check bool) "172.16 private" true (Ipv4.private_use (ip "172.16.0.1"));
  Alcotest.(check bool) "172.32 public" false (Ipv4.private_use (ip "172.32.0.1"));
  Alcotest.(check bool) "192.168 private" true (Ipv4.private_use (ip "192.168.255.1"));
  Alcotest.(check bool) "loopback reserved" true (Ipv4.reserved (ip "127.0.0.1"));
  Alcotest.(check bool) "multicast reserved" true (Ipv4.reserved (ip "224.0.0.1"));
  Alcotest.(check bool) "class E reserved" true (Ipv4.reserved (ip "240.0.0.1"));
  Alcotest.(check bool) "linklocal reserved" true (Ipv4.reserved (ip "169.254.0.1"));
  Alcotest.(check bool) "unicast ok" false (Ipv4.reserved (ip "8.8.8.8"))

let prop_roundtrip =
  QCheck.Test.make ~name:"ipv4 string roundtrip" ~count:500
    QCheck.(int_bound 0xFFFFFFF |> map (fun i -> i * 16))
    (fun i ->
      let a = Ipv4.of_int i in
      match Ipv4.of_string (Ipv4.to_string a) with
      | Some b -> Ipv4.equal a b
      | None -> false)

let prop_succ_pred =
  QCheck.Test.make ~name:"succ then pred is identity away from bounds" ~count:500
    QCheck.(int_range 1 0xFFFFFFE)
    (fun i ->
      let a = Ipv4.of_int i in
      Ipv4.equal a (Ipv4.pred (Ipv4.succ a)))

let suite =
  [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "parse rejects malformed" `Quick test_parse_rejects;
    Alcotest.test_case "octets" `Quick test_octets;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "bit extraction" `Quick test_bits;
    Alcotest.test_case "address classes" `Quick test_classes;
    Qc.to_alcotest prop_roundtrip;
    Qc.to_alcotest prop_succ_pred ]
