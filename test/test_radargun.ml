module R = Aliasres.Radargun

let mk_series ~base ~rate times =
  List.map (fun t -> (t, int_of_float (base +. (rate *. t)) land 0xFFFF)) times

let times = [ 0.0; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 ]

let test_unwrap_simple () =
  match R.unwrap [ (0.0, 10); (1.0, 20); (2.0, 30) ] with
  | Some [ (_, a); (_, b); (_, c) ] ->
    Alcotest.(check (float 0.01)) "a" 10.0 a;
    Alcotest.(check (float 0.01)) "b" 20.0 b;
    Alcotest.(check (float 0.01)) "c" 30.0 c
  | _ -> Alcotest.fail "unwrap failed"

let test_unwrap_wrap () =
  match R.unwrap [ (0.0, 65530); (1.0, 4); (2.0, 14) ] with
  | Some [ (_, a); (_, b); (_, c) ] ->
    Alcotest.(check (float 0.01)) "pre-wrap" 65530.0 a;
    Alcotest.(check (float 0.01)) "post-wrap" 65540.0 b;
    Alcotest.(check (float 0.01)) "continues" 65550.0 c
  | _ -> Alcotest.fail "unwrap failed"

let test_velocity () =
  let s = mk_series ~base:100.0 ~rate:50.0 times in
  match R.velocity s with
  | Some v -> Alcotest.(check bool) "velocity ~50" true (abs_float (v -. 50.0) < 1.0)
  | None -> Alcotest.fail "no velocity"

let test_same_counter_aliases () =
  (* Two views of one counter, sampled at offset instants. *)
  let a = mk_series ~base:5000.0 ~rate:120.0 times in
  let b = mk_series ~base:5000.0 ~rate:120.0 (List.map (fun t -> t +. 0.4) times) in
  Alcotest.(check bool) "aliases" true (R.test a b = R.Aliases)

let test_different_rate_rejected () =
  let a = mk_series ~base:5000.0 ~rate:120.0 times in
  let b = mk_series ~base:5000.0 ~rate:400.0 times in
  Alcotest.(check bool) "different velocity" true (R.test a b = R.Not_aliases)

let test_same_rate_different_offset_rejected () =
  let a = mk_series ~base:1000.0 ~rate:120.0 times in
  let b = mk_series ~base:30000.0 ~rate:120.0 times in
  Alcotest.(check bool) "offset counters differ" true (R.test a b = R.Not_aliases)

let test_unusable_series () =
  Alcotest.(check bool) "too short" true (R.velocity [ (0.0, 1); (1.0, 2) ] = None);
  let constant = [ (0.0, 7); (1.0, 7); (2.0, 7) ] in
  Alcotest.(check bool) "constant counter" true (R.velocity constant = None);
  Alcotest.(check bool) "unresponsive verdict" true
    (R.test constant constant = R.Unresponsive)

let test_against_engine () =
  (* Cross-check against the simulated IP-ID behaviour: sample one
     shared-counter router twice; RadarGun must call it one counter. *)
  let w = Topogen.Gen.generate Topogen.Scenario.tiny in
  let _bgp, _fwd, engine, _ = Bdrmap.Pipeline.setup w in
  let module Net = Topogen.Net in
  let r =
    List.find
      (fun (r : Net.router) ->
        r.Net.behavior.ipid = Net.Shared_counter
        && r.Net.behavior.echo
        && List.length r.Net.ifaces >= 2
        && (Net.as_node w.net r.Net.owner).Net.filter = Net.Open)
      (List.init (Net.router_count w.net) (Net.router w.net))
  in
  let a = (List.nth r.Net.ifaces 0).Net.addr in
  let b = (List.nth r.Net.ifaces 1).Net.addr in
  let sample addr =
    List.filter_map
      (fun _ ->
        Probesim.Engine.advance engine 1.0;
        Option.map
          (fun (rep : Probesim.Engine.reply) -> (Probesim.Engine.now engine, rep.ipid))
          (Probesim.Engine.ping engine ~dst:addr))
      [ (); (); (); (); (); () ]
  in
  let sa = sample a and sb = sample b in
  Alcotest.(check bool) "engine counter recognized" true (R.test sa sb = R.Aliases)

let suite =
  [ Alcotest.test_case "unwrap simple" `Quick test_unwrap_simple;
    Alcotest.test_case "unwrap across wraparound" `Quick test_unwrap_wrap;
    Alcotest.test_case "velocity fit" `Quick test_velocity;
    Alcotest.test_case "same counter aliases" `Quick test_same_counter_aliases;
    Alcotest.test_case "different rate rejected" `Quick test_different_rate_rejected;
    Alcotest.test_case "offset counters rejected" `Quick test_same_rate_different_offset_rejected;
    Alcotest.test_case "unusable series" `Quick test_unusable_series;
    Alcotest.test_case "engine cross-check" `Quick test_against_engine ]
