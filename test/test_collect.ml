(* Collection-driver behaviour on the tiny simulated world. *)

module Gen = Topogen.Gen
module Net = Topogen.Net
open Netcore

let setup = lazy (
  let w = Gen.generate Topogen.Scenario.tiny in
  let _bgp, _fwd, engine, inputs = Bdrmap.Pipeline.setup w in
  let cfg = Bdrmap.Config.default ~vp_asns:inputs.vp_asns in
  let ip2as =
    Bdrmap.Ip2as.create ~rib:inputs.rib ~ixp:inputs.ixp
      ~delegations:inputs.delegations ~vp_asns:inputs.vp_asns
  in
  let blocks = Bdrmap.Targets.blocks ~rib:inputs.rib ~vp_asns:inputs.vp_asns in
  let vp = List.hd w.vps in
  let c = Bdrmap.Collect.run engine cfg ip2as ~vp blocks in
  (w, inputs, ip2as, blocks, c))

let test_traces_collected () =
  let _, _, _, blocks, c = Lazy.force setup in
  Alcotest.(check bool) "at least one trace per block set" true
    (List.length c.Bdrmap.Collect.traces >= List.length (Bdrmap.Targets.by_asn blocks))

let test_stop_sets_fire () =
  let _, _, _, _, c = Lazy.force setup in
  Alcotest.(check bool) "doubletree saved probes" true (c.Bdrmap.Collect.stopset_hits > 0)

let test_retry_bounded () =
  let _, _, _, _, c = Lazy.force setup in
  (* No more than addrs_per_block traces toward any single block. *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun t ->
      let key = (t.Bdrmap.Trace.target_asn, Ipv4.to_int t.Bdrmap.Trace.dst / 8) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    c.Bdrmap.Collect.traces;
  Hashtbl.iter
    (fun _ n -> Alcotest.(check bool) "at most 5 tries" true (n <= 5))
    tbl

let test_hops_are_ttl_expired_sources () =
  let w, _, _, _, c = Lazy.force setup in
  (* Every recorded hop address exists in the world (no synthesis). *)
  List.iter
    (fun t ->
      List.iter
        (fun (_, a) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s is a real interface" (Ipv4.to_string a))
            true
            (Net.owner_of_addr w.Gen.net a <> None))
        t.Bdrmap.Trace.hops)
    c.Bdrmap.Collect.traces

let test_mates_are_aliases_of_prev () =
  let _, _, _, _, c = Lazy.force setup in
  List.iter
    (fun (prev, _, mate) ->
      Alcotest.(check bool) "mate joined prev's group" true
        (Ipv4.equal prev mate
        || Aliasres.Alias_graph.same_router c.Bdrmap.Collect.aliases prev mate))
    c.Bdrmap.Collect.mates

let test_mates_confirmed_in_truth () =
  let w, _, _, _, c = Lazy.force setup in
  (* Prefixscan inferences must place mate and prev on one true router. *)
  List.iter
    (fun (prev, _, mate) ->
      match (Net.owner_of_addr w.Gen.net prev, Net.owner_of_addr w.Gen.net mate) with
      | Some r1, Some r2 ->
        Alcotest.(check int)
          (Printf.sprintf "%s mate of %s" (Ipv4.to_string mate) (Ipv4.to_string prev))
          r1.Net.rid r2.Net.rid
      | _ -> Alcotest.fail "mate not in world")
    c.Bdrmap.Collect.mates

let test_alias_groups_sound () =
  let w, _, _, _, c = Lazy.force setup in
  (* With repeated Ally + monotonicity, groups should not span routers. *)
  let bad =
    List.filter
      (fun group ->
        let rids =
          List.filter_map
            (fun a -> Option.map (fun (r : Net.router) -> r.Net.rid) (Net.owner_of_addr w.Gen.net a))
            group
          |> List.sort_uniq compare
        in
        List.length rids > 1)
      (Aliasres.Alias_graph.groups c.Bdrmap.Collect.aliases)
  in
  Alcotest.(check int) "no cross-router alias groups" 0 (List.length bad)

let test_scheduler_accounting () =
  let _, _, _, _, c = Lazy.force setup in
  let s = c.Bdrmap.Collect.sched in
  Alcotest.(check bool) "trace probes" true
    (Probesim.Scheduler.count s Probesim.Scheduler.Traceroute > 0);
  Alcotest.(check bool) "alias probes" true
    (Probesim.Scheduler.count s Probesim.Scheduler.Alias > 0);
  Alcotest.(check bool) "duration positive" true (Probesim.Scheduler.duration_s s > 0.0)

let suite =
  [ Alcotest.test_case "traces collected" `Quick test_traces_collected;
    Alcotest.test_case "stop sets fire" `Quick test_stop_sets_fire;
    Alcotest.test_case "retry bounded" `Quick test_retry_bounded;
    Alcotest.test_case "hops are real interfaces" `Quick test_hops_are_ttl_expired_sources;
    Alcotest.test_case "mates alias prev" `Quick test_mates_are_aliases_of_prev;
    Alcotest.test_case "mates confirmed in truth" `Quick test_mates_confirmed_in_truth;
    Alcotest.test_case "alias groups sound" `Quick test_alias_groups_sound;
    Alcotest.test_case "scheduler accounting" `Quick test_scheduler_accounting ]
