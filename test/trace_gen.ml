(* Golden-trace generator: the full pipeline on the fixed-seed tiny
   world, traced through a memory sink and canonicalized through the
   trace reader. Every remaining field — stage sequence,
   simulated-clock intervals, per-router provenance, per-heuristic fire
   counts — is deterministic, so `dune runtest` diffs this against
   golden_tiny_trace.txt and any change to stage structure or
   provenance shows up as a reviewable diff; `dune promote` accepts an
   intended change. *)

module Gen = Topogen.Gen

let () =
  let sink, drain = Obs.Span.memory_sink () in
  Obs.Span.set_sink (Some sink);
  let w = Gen.generate Topogen.Scenario.tiny in
  let _bgp, _fwd, engine, inputs = Bdrmap.Pipeline.setup w in
  let vp = List.hd w.Gen.vps in
  ignore (Bdrmap.Pipeline.execute engine inputs ~vp);
  Obs.Span.set_sink None;
  print_endline "# trace, scenario=tiny seed=7 vp=0 (volatile fields stripped)";
  (* Round trip through the reader: volatile fields (wall_ns and the
     GC deltas) are classified by name, not by record position. *)
  match Obs.Trace_reader.of_lines (drain ()) with
  | Error e -> failwith (Obs.Trace_reader.error_to_string e)
  | Ok t ->
    if t.Obs.Trace_reader.truncated then failwith "unexpected truncated trace";
    List.iter
      (fun r -> print_endline (Obs.Trace_reader.canonical r))
      t.Obs.Trace_reader.records
