(* Golden-trace generator: the full pipeline on the fixed-seed tiny
   world, traced through a memory sink and printed with the volatile
   wall-clock field stripped. Every remaining field — stage sequence,
   simulated-clock intervals, per-router provenance, per-heuristic fire
   counts — is deterministic, so `dune runtest` diffs this against
   golden_tiny_trace.txt and any change to stage structure or
   provenance shows up as a reviewable diff; `dune promote` accepts an
   intended change. *)

module Gen = Topogen.Gen

(* [wall_ns] is by construction the last field of a span record, so the
   volatile part is removed with a suffix cut. *)
let strip_wall line =
  let marker = ",\"wall_ns\":" in
  let n = String.length marker and m = String.length line in
  let rec find i =
    if i + n > m then None
    else if String.sub line i n = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i -> String.sub line 0 i ^ "}"
  | None -> line

let () =
  let sink, drain = Obs.Span.memory_sink () in
  Obs.Span.set_sink (Some sink);
  let w = Gen.generate Topogen.Scenario.tiny in
  let _bgp, _fwd, engine, inputs = Bdrmap.Pipeline.setup w in
  let vp = List.hd w.Gen.vps in
  ignore (Bdrmap.Pipeline.execute engine inputs ~vp);
  Obs.Span.set_sink None;
  print_endline "# trace, scenario=tiny seed=7 vp=0 (wall-clock stripped)";
  List.iter (fun l -> print_endline (strip_wall l)) (drain ())
