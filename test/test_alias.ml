open Netcore
module Ally = Aliasres.Ally
module Mercator = Aliasres.Mercator
module Prefixscan = Aliasres.Prefixscan
module Ag = Aliasres.Alias_graph

let ip = Ipv4.of_string_exn

(* Synthetic samplers ------------------------------------------------- *)

let shared_counter_sampler start =
  let c = ref start in
  fun _addr ->
    incr c;
    Some (!c land 0xFFFF)

let two_counter_sampler () =
  let c1 = ref 100 and c2 = ref 40000 in
  fun addr ->
    if Ipv4.to_int addr land 1 = 0 then begin
      c1 := !c1 + 3;
      Some (!c1 land 0xFFFF)
    end
    else begin
      c2 := !c2 + 3;
      Some (!c2 land 0xFFFF)
    end

let test_monotonic () =
  Alcotest.(check bool) "increasing" true (Ally.monotonic [ 1; 5; 9; 100 ]);
  Alcotest.(check bool) "wraps once" true (Ally.monotonic [ 65530; 65534; 3; 9 ]);
  Alcotest.(check bool) "flat fails" false (Ally.monotonic [ 7; 7; 8 ]);
  Alcotest.(check bool) "decrease fails" false (Ally.monotonic [ 9; 5 ]);
  Alcotest.(check bool) "big jump fails" false (Ally.monotonic [ 1; 40000 ]);
  Alcotest.(check bool) "empty ok" true (Ally.monotonic []);
  Alcotest.(check bool) "double wrap fails" false
    (Ally.monotonic [ 0; 30000; 60000; 25000; 55000; 20000 ])

let test_ally_same_router () =
  let s = shared_counter_sampler 1000 in
  Alcotest.(check bool) "aliases" true
    (Ally.trial s (ip "10.0.0.1") (ip "10.0.0.2") ~samples:5 = Ally.Aliases)

let test_ally_different_routers () =
  let s = two_counter_sampler () in
  Alcotest.(check bool) "not aliases" true
    (Ally.trial s (ip "10.0.0.2") (ip "10.0.0.3") ~samples:5 = Ally.Not_aliases)

let test_ally_unresponsive () =
  let none _ = None in
  Alcotest.(check bool) "unresponsive" true
    (Ally.trial none (ip "10.0.0.1") (ip "10.0.0.2") ~samples:3 = Ally.Unresponsive);
  let zero _ = Some 0 in
  Alcotest.(check bool) "constant ids unusable" true
    (Ally.trial zero (ip "10.0.0.1") (ip "10.0.0.2") ~samples:3 = Ally.Unresponsive)

let test_ally_random_ids_unusable () =
  let r = Rng.create 5 in
  let s _ = Some (Rng.int r 65536) in
  let verdict = Ally.trial s (ip "10.0.0.1") (ip "10.0.0.2") ~samples:6 in
  Alcotest.(check bool) "random ids never infer aliases" true (verdict <> Ally.Aliases)

let test_ally_repeat_rejects () =
  (* First trial happens to look like one counter, later trial reveals
     two counters: repetition must reject (§5.3 "Limit false aliases"). *)
  let phase = ref 0 in
  let c1 = ref 0 and c2 = ref 3 in
  let s addr =
    if !phase = 0 then begin
      (* Counters interleaved tightly: looks shared. *)
      if Ipv4.to_int addr land 1 = 0 then begin
        c1 := !c1 + 4;
        Some (!c1 land 0xFFFF)
      end
      else begin
        c2 := !c2 + 4;
        Some (!c2 land 0xFFFF)
      end
    end
    else begin
      (* Now the two counters drift far apart: per-address samples stay
         monotonic but the merged sequence cannot be. *)
      if Ipv4.to_int addr land 1 = 0 then begin
        c1 := !c1 + 4;
        Some (!c1 land 0xFFFF)
      end
      else begin
        if !c2 < 50000 then c2 := 50000;
        c2 := !c2 + 4;
        Some (!c2 land 0xFFFF)
      end
    end
  in
  (* Make the deceptive phase actually monotonic: c1 and c2 offset. *)
  c1 := 0;
  c2 := 2;
  let wait () = incr phase in
  let verdict =
    Ally.test s ~wait (ip "10.0.0.2") (ip "10.0.0.3") ~trials:3 ~samples:3
  in
  Alcotest.(check bool) "later trial rejects" true (verdict = Ally.Not_aliases)

let test_mercator () =
  let canonical = ip "10.9.9.9" in
  let p_common _ = Some canonical in
  Alcotest.(check bool) "common source" true
    (Mercator.test p_common (ip "10.0.0.1") (ip "10.0.0.2") = Mercator.Aliases);
  let p_echoes a = Some a in
  Alcotest.(check bool) "probed-addr source useless" true
    (Mercator.test p_echoes (ip "10.0.0.1") (ip "10.0.0.2") = Mercator.Unresponsive);
  let p_two a = if Ipv4.to_int a land 1 = 0 then Some (ip "10.1.1.1") else Some (ip "10.2.2.2") in
  Alcotest.(check bool) "distinct canonicals" true
    (Mercator.test p_two (ip "10.0.0.2") (ip "10.0.0.3") = Mercator.Not_aliases);
  let p_none _ = None in
  Alcotest.(check bool) "silent" true
    (Mercator.test p_none (ip "10.0.0.1") (ip "10.0.0.2") = Mercator.Unresponsive)

let test_prefixscan_31 () =
  (* hop 10.0.0.9 on a /31 with mate .8; oracle confirms mate aliases prev. *)
  let oracle m p =
    if Ipv4.equal m (ip "10.0.0.8") && Ipv4.equal p (ip "192.0.2.1") then `Aliases
    else `Not_aliases
  in
  match Prefixscan.scan oracle ~prev:(ip "192.0.2.1") ~hop:(ip "10.0.0.9") with
  | Some r ->
    Alcotest.(check int) "len" 31 r.Prefixscan.subnet_len;
    Alcotest.(check string) "mate" "10.0.0.8" (Ipv4.to_string r.Prefixscan.mate)
  | None -> Alcotest.fail "expected /31 inference"

let test_prefixscan_30 () =
  (* hop 10.0.0.6 (.5/.6 usable in .4/30): /31 mate is .7, /30 mate .5. *)
  let oracle m p =
    if Ipv4.equal m (ip "10.0.0.5") && Ipv4.equal p (ip "192.0.2.1") then `Aliases
    else `Not_aliases
  in
  match Prefixscan.scan oracle ~prev:(ip "192.0.2.1") ~hop:(ip "10.0.0.6") with
  | Some r -> Alcotest.(check int) "len 30" 30 r.Prefixscan.subnet_len
  | None -> Alcotest.fail "expected /30 inference"

let test_prefixscan_rejects () =
  let oracle _ _ = `Not_aliases in
  Alcotest.(check bool) "no inference" true
    (Prefixscan.scan oracle ~prev:(ip "192.0.2.1") ~hop:(ip "10.0.0.6") = None)

let test_prefixscan_direct_mate () =
  (* prev is itself the /31 mate of hop: inbound confirmed trivially. *)
  match Prefixscan.scan (fun _ _ -> `Unknown) ~prev:(ip "10.0.0.8") ~hop:(ip "10.0.0.9") with
  | Some r -> Alcotest.(check string) "mate is prev" "10.0.0.8" (Ipv4.to_string r.Prefixscan.mate)
  | None -> Alcotest.fail "expected direct mate"

let test_graph_closure () =
  let g = Ag.create () in
  Ag.add_alias g (ip "10.0.0.1") (ip "10.0.0.2");
  Ag.add_alias g (ip "10.0.0.2") (ip "10.0.0.3");
  Alcotest.(check bool) "transitive" true (Ag.same_router g (ip "10.0.0.1") (ip "10.0.0.3"));
  Alcotest.(check int) "one group of three" 3
    (List.length (Ag.group_of g (ip "10.0.0.1")))

let test_graph_negative_veto () =
  let g = Ag.create () in
  Ag.add_not_alias g (ip "10.0.0.1") (ip "10.0.0.3");
  Ag.add_alias g (ip "10.0.0.1") (ip "10.0.0.2");
  (* Positive evidence 2~3 would transitively merge 1 and 3 which is
     vetoed; the union must be refused. *)
  Ag.add_alias g (ip "10.0.0.2") (ip "10.0.0.3");
  Alcotest.(check bool) "veto blocks merge" false
    (Ag.same_router g (ip "10.0.0.1") (ip "10.0.0.3"));
  Alcotest.(check bool) "first merge survived" true
    (Ag.same_router g (ip "10.0.0.1") (ip "10.0.0.2"))

let test_graph_groups () =
  let g = Ag.create () in
  Ag.add_alias g (ip "10.0.0.1") (ip "10.0.0.2");
  Ag.add_alias g (ip "10.0.1.1") (ip "10.0.1.2");
  Ag.add_not_alias g (ip "10.0.2.1") (ip "10.0.0.1");
  let groups = Ag.groups g in
  Alcotest.(check int) "three groups" 3 (List.length groups);
  Alcotest.(check bool) "sizes" true
    (List.sort compare (List.map List.length groups) = [ 1; 2; 2 ])

let suite =
  [ Alcotest.test_case "monotonic test" `Quick test_monotonic;
    Alcotest.test_case "ally same router" `Quick test_ally_same_router;
    Alcotest.test_case "ally different routers" `Quick test_ally_different_routers;
    Alcotest.test_case "ally unresponsive" `Quick test_ally_unresponsive;
    Alcotest.test_case "ally random ids" `Quick test_ally_random_ids_unusable;
    Alcotest.test_case "ally repetition rejects" `Quick test_ally_repeat_rejects;
    Alcotest.test_case "mercator" `Quick test_mercator;
    Alcotest.test_case "prefixscan /31" `Quick test_prefixscan_31;
    Alcotest.test_case "prefixscan /30" `Quick test_prefixscan_30;
    Alcotest.test_case "prefixscan rejects" `Quick test_prefixscan_rejects;
    Alcotest.test_case "prefixscan direct mate" `Quick test_prefixscan_direct_mate;
    Alcotest.test_case "alias graph closure" `Quick test_graph_closure;
    Alcotest.test_case "alias graph negative veto" `Quick test_graph_negative_veto;
    Alcotest.test_case "alias graph groups" `Quick test_graph_groups ]
