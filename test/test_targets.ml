open Netcore
module B = Bgpdata

let ip = Ipv4.of_string_exn

let rib =
  Result.get_ok
    (B.Rib.of_lines
       [ "10.0.0.0/16|900 64500";
         "128.66.0.0/16|900 65001";
         "128.66.2.0/24|900 65002";
         "30.0.0.0/24|900 65003";
         "30.0.0.0/24|901 65004" ])

let vp_asns = Asn.Set.singleton 64500

let test_excludes_host () =
  let blocks = Bdrmap.Targets.blocks ~rib ~vp_asns in
  Alcotest.(check bool) "no host blocks" true
    (List.for_all (fun (b : Bdrmap.Targets.block) -> b.target_asn <> 64500) blocks)

let test_more_specific_carved () =
  let blocks = Bdrmap.Targets.blocks ~rib ~vp_asns in
  let for_65001 =
    List.filter (fun (b : Bdrmap.Targets.block) -> b.target_asn = 65001) blocks
  in
  Alcotest.(check int) "two ranges around the /24" 2 (List.length for_65001);
  List.iter
    (fun (b : Bdrmap.Targets.block) ->
      Alcotest.(check bool) "range avoids more specific" true
        (Ipv4.compare b.last (ip "128.66.1.255") <= 0
        || Ipv4.compare b.first (ip "128.66.3.0") >= 0))
    for_65001;
  let for_65002 =
    List.filter (fun (b : Bdrmap.Targets.block) -> b.target_asn = 65002) blocks
  in
  Alcotest.(check int) "the /24 is its own block" 1 (List.length for_65002)

let test_moas_attribution () =
  let blocks = Bdrmap.Targets.blocks ~rib ~vp_asns in
  let moas = List.filter (fun (b : Bdrmap.Targets.block) -> Prefix.mem b.first (Prefix.of_string_exn "30.0.0.0/24")) blocks in
  Alcotest.(check int) "one block for the moas prefix" 1 (List.length moas);
  Alcotest.(check int) "attributed to smallest origin" 65003
    (List.hd moas).Bdrmap.Targets.target_asn

let test_by_asn () =
  let blocks = Bdrmap.Targets.blocks ~rib ~vp_asns in
  let grouped = Bdrmap.Targets.by_asn blocks in
  Alcotest.(check int) "three target ASes" 3 (List.length grouped);
  List.iter
    (fun (asn, bs) ->
      List.iter
        (fun (b : Bdrmap.Targets.block) ->
          Alcotest.(check int) "group key matches" asn b.target_asn)
        bs)
    grouped

let test_candidates () =
  let b =
    { Bdrmap.Targets.target_asn = 65001; first = ip "128.66.0.0"; last = ip "128.66.1.255" }
  in
  let cands = Bdrmap.Targets.candidates ~per_block:5 b in
  Alcotest.(check (list string)) "starts at .1"
    [ "128.66.0.1"; "128.66.0.2"; "128.66.0.3"; "128.66.0.4"; "128.66.0.5" ]
    (List.map Ipv4.to_string cands);
  let small =
    { Bdrmap.Targets.target_asn = 65001; first = ip "10.0.0.0"; last = ip "10.0.0.2" }
  in
  Alcotest.(check int) "clipped to block" 2
    (List.length (Bdrmap.Targets.candidates ~per_block:5 small))

let suite =
  [ Alcotest.test_case "excludes host blocks" `Quick test_excludes_host;
    Alcotest.test_case "more specifics carved out" `Quick test_more_specific_carved;
    Alcotest.test_case "moas attribution" `Quick test_moas_attribution;
    Alcotest.test_case "grouping by asn" `Quick test_by_asn;
    Alcotest.test_case "candidate addresses" `Quick test_candidates ]
