(* The query server end to end: wire codec round trips, query-map
   semantics against the pipeline's own merged output, the zero-alloc
   guarantee of the per-frame handler, typed protocol errors on
   malformed peers (both directions), signal-driven teardown leaving no
   stale socket, and serial-vs-concurrent answer identity. *)

open Netcore
module Gen = Topogen.Gen

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* -- Shared fixture: the tiny world's merged map, built once -- *)

let fixture =
  lazy
    (let w = Gen.generate Topogen.Scenario.tiny in
     let shared = Bdrmap.Pipeline.freeze_routing w in
     let snapshot = shared.Bdrmap.Pipeline.snapshot in
     let bgp = Routing.Bgp.of_snapshot snapshot in
     let inputs = Bdrmap.Pipeline.inputs_of_world w bgp in
     let runs = Bdrmap.Pipeline.execute_all ~shared w inputs ~vps:w.Gen.vps in
     let merged =
       Bdrmap.Aggregate.merge_runs
         (List.map2
            (fun (vp : Gen.vp) (r : Bdrmap.Pipeline.run) ->
              (vp.Gen.vp_name, r.Bdrmap.Pipeline.graph, r.Bdrmap.Pipeline.inference))
            w.Gen.vps runs)
     in
     let mapfile = Bdrmap.Mapfile.make ~host_asns:w.Gen.siblings ~bgp merged in
     (w, snapshot, mapfile, Serve.Qmap.build ~snapshot mapfile))

let socket_counter = ref 0

let fresh_path () =
  incr socket_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "bdrmap-test-serve-%d-%d.sock" (Unix.getpid ())
       !socket_counter)

(* -- Protocol: codec and write-buffer round trips -- *)

let test_codec_roundtrip () =
  let wb = Serve.Protocol.wbuf_create 8 in
  let u32s = [ 0; 1; 0xFF; 0xFFFF; 0x1020304; 0xFFFFFFFF ] in
  let u64s = [ 0; 42; max_int ] in
  Serve.Protocol.put_u8 wb 0xAB;
  Serve.Protocol.put_u16 wb 0xCDEF;
  List.iter (Serve.Protocol.put_u32 wb) u32s;
  List.iter (Serve.Protocol.put_u64 wb) u64s;
  Serve.Protocol.put_string wb "border";
  let b = wb.Serve.Protocol.buf in
  Alcotest.(check int) "u8" 0xAB (Serve.Protocol.get_u8 b 0);
  Alcotest.(check int) "u16" 0xCDEF (Serve.Protocol.get_u16 b 1);
  List.iteri
    (fun i v ->
      Alcotest.(check int)
        (Printf.sprintf "u32 #%d" i)
        v
        (Serve.Protocol.get_u32 b (3 + (4 * i))))
    u32s;
  let off64 = 3 + (4 * List.length u32s) in
  List.iteri
    (fun i v ->
      Alcotest.(check int)
        (Printf.sprintf "u64 #%d" i)
        v
        (Serve.Protocol.get_u64 b (off64 + (8 * i))))
    u64s;
  let soff = off64 + (8 * List.length u64s) in
  Alcotest.(check string) "string bytes" "border"
    (Bytes.sub_string b soff 6);
  Alcotest.(check int) "length tracks" (soff + 6) wb.Serve.Protocol.len;
  (* patch_u32 back-fills without moving the cursor — the length-prefix
     idiom every response frame uses. *)
  Serve.Protocol.patch_u32 wb 3 0xDEADBEEF;
  Alcotest.(check int) "patched" 0xDEADBEEF
    (Serve.Protocol.get_u32 wb.Serve.Protocol.buf 3);
  Alcotest.(check int) "cursor unmoved" (soff + 6) wb.Serve.Protocol.len;
  (* clear resets the cursor but keeps the grown backing array. *)
  let cap = Bytes.length wb.Serve.Protocol.buf in
  Serve.Protocol.wbuf_clear wb;
  Alcotest.(check int) "cleared" 0 wb.Serve.Protocol.len;
  Alcotest.(check int) "capacity kept" cap (Bytes.length wb.Serve.Protocol.buf)

(* -- Qmap: semantics against the merged map it was built from -- *)

let test_qmap_owner_semantics () =
  let w, _snapshot, mapfile, qmap = Lazy.force fixture in
  let host = Serve.Qmap.host_asn qmap in
  Alcotest.(check bool) "host ASN is a sibling" true
    (Asn.Set.mem host w.Gen.siblings);
  Alcotest.(check bool) "border addresses indexed" true
    (Serve.Qmap.border_count qmap > 0);
  (* Every near-side address answers with a hosting AS; every far-side
     address answers with some neighbor of the merged map (an address
     can appear in several links, so "its" neighbor is not unique). *)
  let neighbors =
    List.fold_left
      (fun acc (m : Bdrmap.Aggregate.merged) ->
        Asn.Set.add m.Bdrmap.Aggregate.neighbor acc)
      Asn.Set.empty mapfile.Bdrmap.Mapfile.merged
  in
  (* An address can sit on the near side of one link and the far side
     of another (a router interface shared across adjacencies), so the
     side-exclusive claims only hold for addresses seen on exactly one
     side across the whole merged map. *)
  let near_all, far_all =
    List.fold_left
      (fun (near, far) (m : Bdrmap.Aggregate.merged) ->
        ( Ipv4.Set.union near m.Bdrmap.Aggregate.near_addrs,
          Ipv4.Set.union far m.Bdrmap.Aggregate.far_addrs ))
      (Ipv4.Set.empty, Ipv4.Set.empty)
      mapfile.Bdrmap.Mapfile.merged
  in
  Ipv4.Set.iter
    (fun a ->
      let o = Serve.Qmap.owner qmap a in
      Alcotest.(check bool)
        (Ipv4.to_string a ^ " border address owned by host or neighbor")
        true
        (Asn.Set.mem o w.Gen.siblings || Asn.Set.mem o neighbors))
    (Ipv4.Set.union near_all far_all);
  Ipv4.Set.iter
    (fun a ->
      Alcotest.(check bool)
        (Ipv4.to_string a ^ " near-only address owned by hosting org")
        true
        (Asn.Set.mem (Serve.Qmap.owner qmap a) w.Gen.siblings))
    (Ipv4.Set.diff near_all far_all);
  Ipv4.Set.iter
    (fun a ->
      Alcotest.(check bool)
        (Ipv4.to_string a ^ " far-only address owned by a neighbor")
        true
        (Asn.Set.mem (Serve.Qmap.owner qmap a) neighbors))
    (Ipv4.Set.diff far_all near_all);
  (* Routed non-border addresses resolve to their origin; unrouted space
     answers 0. *)
  (match mapfile.Bdrmap.Mapfile.origins with
  | (p, origin) :: _ ->
    let probe = Prefix.first p in
    if Serve.Qmap.owner qmap probe <> 0 && Serve.Qmap.border_count qmap > 0 then
      Alcotest.(check bool) "covered address answers an ASN" true
        (Serve.Qmap.owner qmap probe = origin
        || Asn.Set.mem (Serve.Qmap.owner qmap probe) w.Gen.siblings
        || Asn.Set.mem (Serve.Qmap.owner qmap probe) neighbors)
  | [] -> Alcotest.fail "mapfile derived no origins");
  Alcotest.(check int) "unrouted space is unknown" 0
    (Serve.Qmap.owner qmap (Ipv4.of_string_exn "8.8.8.8"))

let test_qmap_crossings_and_provenance () =
  let w, _snapshot, mapfile, qmap = Lazy.force fixture in
  let host = Serve.Qmap.host_asn qmap in
  (match mapfile.Bdrmap.Mapfile.merged with
  | [] -> Alcotest.fail "merged map is empty"
  | m :: _ ->
    let nb = m.Bdrmap.Aggregate.neighbor in
    let lines = Serve.Qmap.crossings qmap host nb in
    Alcotest.(check bool) "host x neighbor has lines" true (lines <> []);
    Alcotest.(check (list string)) "crossings are symmetric" lines
      (Serve.Qmap.crossings qmap nb host);
    List.iter
      (fun l ->
        Alcotest.(check bool) ("link line: " ^ l) true
          (contains ~sub:"link|" l
          && contains ~sub:(Printf.sprintf "|%d|" nb) l))
      lines;
    (* Neither side hosting: the map has nothing to say. *)
    Alcotest.(check (list string)) "foreign pair is empty" []
      (Serve.Qmap.crossings qmap 65001 65002));
  (* Every border address carries a provenance line naming its side and
     at least one witnessing VP. *)
  List.iter
    (fun (m : Bdrmap.Aggregate.merged) ->
      Ipv4.Set.iter
        (fun a ->
          match Serve.Qmap.provenance qmap a with
          | None -> Alcotest.fail (Ipv4.to_string a ^ ": no provenance")
          | Some line ->
            Alcotest.(check bool) ("provenance: " ^ line) true
              (contains ~sub:("provenance|" ^ Ipv4.to_string a ^ "|") line
              && (contains ~sub:"|near|" line || contains ~sub:"|far|" line)))
        (Ipv4.Set.union m.Bdrmap.Aggregate.near_addrs
           m.Bdrmap.Aggregate.far_addrs))
    mapfile.Bdrmap.Mapfile.merged;
  Alcotest.(check bool) "unknown address has no provenance" true
    (Serve.Qmap.provenance qmap (Ipv4.of_string_exn "8.8.8.8") = None);
  ignore w

(* -- Mapfile: header-validated round trip -- *)

let test_mapfile_roundtrip () =
  let _, _, mapfile, _ = Lazy.force fixture in
  let b = Bdrmap.Mapfile.to_bytes mapfile in
  (match Bdrmap.Mapfile.of_bytes b with
  | Error e -> Alcotest.fail (Bdrmap.Mapfile.error_label e)
  | Ok mf ->
    Alcotest.(check int) "merged links survive"
      (List.length mapfile.Bdrmap.Mapfile.merged)
      (List.length mf.Bdrmap.Mapfile.merged);
    Alcotest.(check int) "origins survive"
      (List.length mapfile.Bdrmap.Mapfile.origins)
      (List.length mf.Bdrmap.Mapfile.origins);
    Alcotest.(check bool) "host set survives" true
      (Asn.Set.equal mapfile.Bdrmap.Mapfile.host_asns mf.Bdrmap.Mapfile.host_asns));
  (* A flipped payload byte is a typed Corrupt, not a Marshal crash. *)
  let flipped = Bytes.copy b in
  Bytes.set flipped (Bytes.length flipped - 1)
    (Char.chr (Char.code (Bytes.get flipped (Bytes.length flipped - 1)) lxor 1));
  Alcotest.(check bool) "flipped byte is Corrupt" true
    (Bdrmap.Mapfile.of_bytes flipped = Error Bdrmap.Mapfile.Corrupt);
  let short = Bytes.sub b 0 (Bytes.length b - 1) in
  Alcotest.(check bool) "short payload is typed" true
    (match Bdrmap.Mapfile.of_bytes short with
    | Error (Bdrmap.Mapfile.Truncated | Bdrmap.Mapfile.Corrupt) -> true
    | _ -> false);
  let wrong = Bytes.copy b in
  Bytes.blit_string "NOPE" 0 wrong 0 4;
  Alcotest.(check bool) "wrong magic is typed" true
    (Bdrmap.Mapfile.of_bytes wrong = Error Bdrmap.Mapfile.Bad_magic)

(* -- Server.handle: the zero-alloc pin -- *)

let test_handle_zero_alloc () =
  let _, _, _, qmap = Lazy.force fixture in
  let ctx = Serve.Server.ctx_create qmap in
  let sample = Serve.Qmap.sample_addrs qmap in
  Alcotest.(check bool) "sample addresses exist" true (Array.length sample > 0);
  (* One owner request frame: opcode + 64 addresses. *)
  let batch = 64 in
  let req = Serve.Protocol.wbuf_create 16 in
  Serve.Protocol.put_u8 req Serve.Protocol.op_owner;
  for i = 0 to batch - 1 do
    Serve.Protocol.put_u32 req
      (Ipv4.to_int sample.(i mod Array.length sample))
  done;
  let payload = Bytes.sub req.Serve.Protocol.buf 0 req.Serve.Protocol.len in
  let wb = Serve.Protocol.wbuf_create 16 in
  let shoot () =
    Serve.Protocol.wbuf_clear wb;
    Serve.Server.handle ctx payload ~off:0 ~len:(Bytes.length payload) wb
  in
  (* Warmup grows the response buffer to its steady-state size. *)
  for _ = 1 to 100 do
    shoot ()
  done;
  let rounds = 10_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to rounds do
    shoot ()
  done;
  let dw = Gc.minor_words () -. w0 in
  (* 640k owner queries; the handler itself must stay off the
     allocator. The slack covers the two boxed floats of the
     Gc.minor_words probes themselves. *)
  Alcotest.(check bool)
    (Printf.sprintf "handler allocated %.0f minor words over %d frames" dw rounds)
    true (dw < 256.0);
  (* And the frames it produced are well-formed ok responses. *)
  let b = wb.Serve.Protocol.buf in
  Alcotest.(check int) "payload length" (1 + (4 * batch))
    (Serve.Protocol.get_u32 b 0);
  Alcotest.(check int) "ok status" 0 (Serve.Protocol.get_u8 b 4)

(* -- Typed protocol errors, both directions -- *)

(* A fake peer: accepts one connection on [path], sends [greeting],
   then closes. Exercises the client's greeting validation. *)
let with_fake_server greeting k =
  let path = fresh_path () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 1;
  let d =
    Domain.spawn (fun () ->
        let c, _ = Unix.accept fd in
        (try
           ignore (Unix.write_substring c greeting 0 (String.length greeting))
         with Unix.Unix_error _ -> ());
        Unix.close c)
  in
  Fun.protect
    ~finally:(fun () ->
      Domain.join d;
      Unix.close fd;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> k path)

let test_client_greeting_errors () =
  with_fake_server "JUNKAB" (fun path ->
      match Serve.Client.connect path with
      | Ok c ->
        Serve.Client.close c;
        Alcotest.fail "connected through a bad magic"
      | Error Serve.Protocol.Bad_magic -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ Serve.Protocol.error_label e));
  with_fake_server "BDQS\x00\x63" (fun path ->
      match Serve.Client.connect path with
      | Ok c ->
        Serve.Client.close c;
        Alcotest.fail "connected through a bad version"
      | Error (Serve.Protocol.Bad_version 99) -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ Serve.Protocol.error_label e));
  with_fake_server "BD" (fun path ->
      match Serve.Client.connect path with
      | Ok c ->
        Serve.Client.close c;
        Alcotest.fail "connected through a truncated greeting"
      | Error Serve.Protocol.Truncated -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ Serve.Protocol.error_label e))

(* A live server on its own domain for the duration of [k]. *)
let with_server ?exposition k =
  let _, _, _, qmap = Lazy.force fixture in
  let path = fresh_path () in
  let server = Serve.Server.create ?exposition ~path qmap in
  let d = Domain.spawn (fun () -> Serve.Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Domain.join d)
    (fun () -> k path qmap)

(* Raw framed exchange against a live server, bypassing the typed
   client: returns the response payload. *)
let raw_round_trip path payload =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let rec read_exact b off len =
        if len > 0 then
          match Unix.read fd b off len with
          | 0 -> failwith "peer closed"
          | n -> read_exact b (off + n) (len - n)
      in
      let greeting = Bytes.create 6 in
      read_exact greeting 0 6;
      let frame = Bytes.create (4 + Bytes.length payload) in
      Serve.Protocol.set_u32 frame 0 (Bytes.length payload);
      Bytes.blit payload 0 frame 4 (Bytes.length payload);
      ignore (Unix.write fd frame 0 (Bytes.length frame));
      let hdr = Bytes.create 4 in
      read_exact hdr 0 4;
      let n = Serve.Protocol.get_u32 hdr 0 in
      let resp = Bytes.create n in
      read_exact resp 0 n;
      resp)

let expect_error_frame name resp =
  Alcotest.(check bool) (name ^ ": error status") true
    (Bytes.length resp >= 2 && Serve.Protocol.get_u8 resp 0 = 1)

let test_server_error_frames () =
  with_server (fun path _qmap ->
      (* Unknown opcode. *)
      expect_error_frame "bad opcode" (raw_round_trip path (Bytes.make 1 '\xF0'));
      (* op_owner with a body that is not a multiple of 4. *)
      let bad = Bytes.create 3 in
      Bytes.set bad 0 (Char.chr Serve.Protocol.op_owner);
      expect_error_frame "malformed owner body" (raw_round_trip path bad);
      (* op_crossings with a short body. *)
      let short = Bytes.create 5 in
      Bytes.set short 0 (Char.chr Serve.Protocol.op_crossings);
      expect_error_frame "short crossings body" (raw_round_trip path short);
      (* The typed client surfaces these as Server_error, and the
         connection survives to answer the next (valid) request. *)
      match Serve.Client.connect path with
      | Error e -> Alcotest.fail (Serve.Protocol.error_label e)
      | Ok c ->
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            (match Serve.Client.stats c with
            | Ok s -> Alcotest.(check bool) "errors counted" true (s.Serve.Client.errors >= 3)
            | Error e -> Alcotest.fail (Serve.Protocol.error_label e))))

let test_server_oversized_frame () =
  with_server (fun path _qmap ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let rec read_exact b off len =
            if len > 0 then
              match Unix.read fd b off len with
              | 0 -> raise Exit
              | n -> read_exact b (off + n) (len - n)
          in
          let greeting = Bytes.create 6 in
          read_exact greeting 0 6;
          (* Declare a payload over max_frame: the server answers one
             error frame and closes the connection. *)
          let hdr = Bytes.create 4 in
          Serve.Protocol.set_u32 hdr 0 (Serve.Protocol.max_frame + 1);
          ignore (Unix.write fd hdr 0 4);
          let resp_hdr = Bytes.create 4 in
          read_exact resp_hdr 0 4;
          let n = Serve.Protocol.get_u32 resp_hdr 0 in
          let resp = Bytes.create n in
          read_exact resp 0 n;
          Alcotest.(check int) "error status" 1 (Serve.Protocol.get_u8 resp 0);
          (* ... and then EOF. *)
          match Unix.read fd resp_hdr 0 4 with
          | 0 -> ()
          | _ -> Alcotest.fail "connection stayed open past an oversized frame"
          | exception Exit -> ()))

(* -- Lifecycle: a signal-driven stop leaves no stale socket -- *)

let test_signal_stop_no_stale_socket () =
  let _, _, _, qmap = Lazy.force fixture in
  let path = fresh_path () in
  let server = Serve.Server.create ~path qmap in
  let prev =
    Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> Serve.Server.stop server))
  in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigusr1 prev)
    (fun () ->
      let d = Domain.spawn (fun () -> Serve.Server.run server) in
      (* Mid-query: a client is connected and has traffic in flight
         when the signal lands. *)
      (match Serve.Client.connect path with
      | Error e -> Alcotest.fail (Serve.Protocol.error_label e)
      | Ok c ->
        (match Serve.Client.owner c (Serve.Qmap.sample_addrs qmap).(0) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Serve.Protocol.error_label e));
        Unix.kill (Unix.getpid ()) Sys.sigusr1;
        Domain.join d;
        Serve.Client.close c);
      Alcotest.(check bool) "socket file unlinked" false (Sys.file_exists path);
      (* And a second lifecycle on the same path works (no stale-socket
         bind failure). *)
      let server2 = Serve.Server.create ~path qmap in
      let d2 = Domain.spawn (fun () -> Serve.Server.run server2) in
      (match Serve.Client.connect path with
      | Error e -> Alcotest.fail (Serve.Protocol.error_label e)
      | Ok c -> Serve.Client.close c);
      Serve.Server.stop server2;
      Domain.join d2;
      Alcotest.(check bool) "socket file unlinked again" false
        (Sys.file_exists path))

(* -- Concurrency: 4 client domains see byte-identical answers -- *)

let test_concurrent_identical () =
  with_server (fun path qmap ->
      let sample = Serve.Qmap.sample_addrs qmap in
      let addrs = Array.to_list sample in
      let query () =
        match Serve.Client.connect path with
        | Error e -> failwith (Serve.Protocol.error_label e)
        | Ok c ->
          Fun.protect
            ~finally:(fun () -> Serve.Client.close c)
            (fun () ->
              match Serve.Client.owner_batch c addrs with
              | Ok owners -> owners
              | Error e -> failwith (Serve.Protocol.error_label e))
      in
      let serial = query () in
      Alcotest.(check bool) "answers exist" true (serial <> []);
      let domains = Array.init 4 (fun _ -> Domain.spawn query) in
      Array.iter
        (fun d ->
          Alcotest.(check (list int)) "concurrent answers identical" serial
            (Domain.join d))
        domains;
      (* The answers agree with the in-process map. *)
      Alcotest.(check (list int)) "wire answers match Qmap.owner"
        (List.map (Serve.Qmap.owner qmap) addrs)
        serial)

(* -- Metrics exposition over the wire -- *)

let test_metrics_opcode () =
  with_server
    ~exposition:(fun () -> "# TYPE bdrmap_up gauge\nbdrmap_up 1\n# EOF\n")
    (fun path _qmap ->
      match Serve.Client.connect path with
      | Error e -> Alcotest.fail (Serve.Protocol.error_label e)
      | Ok c ->
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            match Serve.Client.metrics_text c with
            | Error e -> Alcotest.fail (Serve.Protocol.error_label e)
            | Ok text ->
              Alcotest.(check bool) "exposition served" true
                (contains ~sub:"bdrmap_up 1" text
                && contains ~sub:"# EOF" text)))

(* -- SIGHUP-style hot reload: swap the map under live connections -- *)

let test_hot_reload () =
  let _, _, mapfile, qmap = Lazy.force fixture in
  let path = fresh_path () in
  let reloads = Atomic.make 0 in
  let fail_next = Atomic.make false in
  (* A replacement map whose answers are distinguishable through the
     wire: it routes 8.8.8.0/24 (unrouted in the fixture, so the old
     map answers 0 for it) to a private ASN. *)
  let mf2 =
    { mapfile with
      Bdrmap.Mapfile.origins = [ (Prefix.of_string_exn "8.8.8.0/24", 65001) ]
    }
  in
  let reload () =
    Atomic.incr reloads;
    if Atomic.get fail_next then None else Some (Serve.Qmap.build mf2)
  in
  let server = Serve.Server.create ~reload ~path qmap in
  let d = Domain.spawn (fun () -> Serve.Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Domain.join d)
    (fun () ->
      match Serve.Client.connect path with
      | Error e -> Alcotest.fail (Serve.Protocol.error_label e)
      | Ok c ->
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            let addr = Ipv4.of_string_exn "8.8.8.8" in
            let owner () =
              match Serve.Client.owner c addr with
              | Ok o -> o
              | Error e -> Alcotest.fail (Serve.Protocol.error_label e)
            in
            Alcotest.(check int) "before reload: unrouted" 0 (owner ());
            Serve.Server.request_reload server;
            (* The swap is asynchronous (event loop); the connection
               opened before the reload must observe it without
               reconnecting. *)
            let rec await tries =
              if owner () = 65001 then ()
              else if tries = 0 then
                Alcotest.fail "reload never took effect"
              else begin
                Unix.sleepf 0.02;
                await (tries - 1)
              end
            in
            await 250;
            Alcotest.(check int) "reload callback ran once" 1
              (Atomic.get reloads);
            (* A rebuild that fails (callback returns None) keeps the
               current map serving. *)
            Atomic.set fail_next true;
            Serve.Server.request_reload server;
            let rec await_fail tries =
              if Atomic.get reloads >= 2 then ()
              else if tries = 0 then Alcotest.fail "second reload never ran"
              else begin
                Unix.sleepf 0.02;
                await_fail (tries - 1)
              end
            in
            await_fail 250;
            Alcotest.(check int) "failed rebuild keeps current map" 65001
              (owner ())))

let suite =
  [ Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "qmap owner semantics" `Quick test_qmap_owner_semantics;
    Alcotest.test_case "qmap crossings and provenance" `Quick
      test_qmap_crossings_and_provenance;
    Alcotest.test_case "mapfile roundtrip" `Quick test_mapfile_roundtrip;
    Alcotest.test_case "handle is zero-alloc" `Quick test_handle_zero_alloc;
    Alcotest.test_case "client greeting errors" `Quick test_client_greeting_errors;
    Alcotest.test_case "server error frames" `Quick test_server_error_frames;
    Alcotest.test_case "oversized frame closes connection" `Quick
      test_server_oversized_frame;
    Alcotest.test_case "signal stop leaves no stale socket" `Quick
      test_signal_stop_no_stale_socket;
    Alcotest.test_case "concurrent answers identical" `Slow
      test_concurrent_identical;
    Alcotest.test_case "metrics opcode" `Quick test_metrics_opcode;
    Alcotest.test_case "hot reload swaps map under live connections" `Quick
      test_hot_reload ]
