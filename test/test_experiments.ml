(* Small-scale smoke runs of every experiment: shapes and invariants
   rather than exact values. *)

let scale = 0.12

let test_table1 () =
  let rows = Experiments.Exp_table1.run ~scale () in
  Alcotest.(check int) "three scenarios" 3 (List.length rows);
  List.iter
    (fun (r : Experiments.Exp_table1.row) ->
      Alcotest.(check bool)
        (r.scenario ^ " coverage sane")
        true
        (r.table.Bdrmap.Report.coverage_pct >= 60.0
        && r.table.Bdrmap.Report.coverage_pct <= 100.0))
    rows

let test_validation () =
  let t = Experiments.Exp_validation.run ~scale () in
  let rows = t.Experiments.Exp_validation.rows in
  Alcotest.(check bool) "six rows (4 scenarios, 3 large-access VPs)" true
    (List.length rows = 6);
  List.iter
    (fun (r : Experiments.Exp_validation.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s accuracy %.1f" r.scenario r.vp_name
           r.links.Bdrmap.Validate.pct_correct)
        true
        (r.links.Bdrmap.Validate.total > 5
        && r.links.Bdrmap.Validate.pct_correct >= 60.0))
    rows;
  (* The merged large-access border map covers at least what any single
     VP validated and stays a sane multiple of it. *)
  Alcotest.(check int) "merged over three VPs" 3
    t.Experiments.Exp_validation.merged_vps;
  let la_totals =
    List.filter_map
      (fun (r : Experiments.Exp_validation.row) ->
        if r.scenario = "Large access network" then
          Some r.links.Bdrmap.Validate.total
        else None)
      rows
  in
  Alcotest.(check bool) "merged map at least as large as one VP's" true
    (t.Experiments.Exp_validation.merged_links
    >= List.fold_left max 0 la_totals)

let test_fig14 () =
  let t = Experiments.Exp_fig14.run ~scale () in
  Alcotest.(check int) "19 vps" 19 t.n_vps;
  Alcotest.(check bool) "prefixes measured" true (t.n_prefixes > 100);
  Alcotest.(check bool) "cdf monotone" true
    (let rec mono = function
       | (_, f1) :: ((_, f2) :: _ as rest) -> f1 <= f2 +. 1e-9 && mono rest
       | _ -> true
     in
     mono t.border_router_cdf);
  (match List.rev t.border_router_cdf with
  | (_, last) :: _ -> Alcotest.(check (float 0.001)) "cdf ends at 1" 1.0 last
  | [] -> Alcotest.fail "empty cdf");
  match t.remote with
  | Some (single, _, _, _) ->
    Alcotest.(check bool) "remote prefixes rarely single-exit" true (single < 10.0)
  | None -> Alcotest.fail "no remote breakdown"

let test_fig15 () =
  let t = Experiments.Exp_fig15.run ~scale () in
  Alcotest.(check bool) "series present" true (List.length t.series >= 4);
  List.iter
    (fun (s : Experiments.Exp_fig15.series) ->
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      Alcotest.(check bool) (s.neighbor ^ " cumulative nondecreasing") true
        (nondecreasing s.cumulative);
      Alcotest.(check bool) (s.neighbor ^ " bounded by truth") true
        (List.for_all (fun c -> c <= s.total_links) s.cumulative))
    t.series;
  (* The Akamai-like CDN must be fully discovered from the first VP. *)
  let akamai =
    List.find
      (fun (s : Experiments.Exp_fig15.series) ->
        String.length s.neighbor >= 6 && String.sub s.neighbor 0 6 = "akamai")
      t.series
  in
  Alcotest.(check int) "akamai-like from one VP" akamai.total_links
    (List.hd akamai.cumulative);
  (* The big peer needs many VPs: a single VP must not see everything. *)
  let big = List.hd t.series in
  Alcotest.(check bool) "level3-like needs several VPs" true
    (List.hd big.cumulative < big.total_links)

let test_fig16 () =
  let t = Experiments.Exp_fig16.run ~scale () in
  Alcotest.(check bool) "plots present" true (List.length t >= 2);
  List.iter
    (fun (p : Experiments.Exp_fig16.neighbor_plot) ->
      Alcotest.(check int) "19 rows" 19 (List.length p.rows);
      List.iter
        (fun (row : Experiments.Exp_fig16.vp_row) ->
          List.iter
            (fun (m : Experiments.Exp_fig16.mark) ->
              Alcotest.(check bool) "longitude in US range" true
                (m.lon > -130.0 && m.lon < -60.0))
            row.marks)
        p.rows)
    t

let test_runtime () =
  let rows = Experiments.Exp_runtime.run ~scale () in
  Alcotest.(check int) "two scenarios" 2 (List.length rows);
  List.iter
    (fun (r : Experiments.Exp_runtime.row) ->
      Alcotest.(check bool) (r.scenario ^ " probes positive") true (r.probes > 0);
      Alcotest.(check bool) (r.scenario ^ " stop sets save probes") true
        (r.trace_probes <= r.probes_without_stopset))
    rows

let test_resource () =
  let t =
    match Experiments.Exp_resource.run ~scale () with
    | Ok t -> t
    | Error e -> Alcotest.fail (Experiments.Exp_resource.error_to_string e)
  in
  Alcotest.(check bool) "standalone exceeds whitebox" true
    (not t.standalone_fits_whitebox);
  Alcotest.(check bool) "split prober fits whitebox" true t.split_fits_whitebox;
  Alcotest.(check bool) "controller holds the state" true
    (t.split.Probesim.Remote.controller_bytes
    > 10 * t.split.Probesim.Remote.device_bytes)

let test_ablation () =
  let t = Experiments.Exp_ablation.run ~scale () in
  let full = List.hd t.heuristics in
  Alcotest.(check string) "first row is full" "full" full.Experiments.Exp_ablation.label;
  List.iter
    (fun (r : Experiments.Exp_ablation.heuristic_row) ->
      Alcotest.(check bool) (r.label ^ " links sane") true (r.links >= 0))
    t.heuristics;
  (* The classic proximity Ally must not be cleaner than the monotonic
     discipline. *)
  (match t.alias with
  | prox :: _ :: mono5 :: _ ->
    Alcotest.(check bool) "monotonic discipline at least as clean" true
      (mono5.Experiments.Exp_ablation.false_alias_groups
      <= prox.Experiments.Exp_ablation.false_alias_groups)
  | _ -> Alcotest.fail "expected three alias rows");
  (* Disabling the firewall heuristic must lose customer links. *)
  let no_fw =
    List.find
      (fun (r : Experiments.Exp_ablation.heuristic_row) -> r.label = "no firewall (2)")
      t.heuristics
  in
  Alcotest.(check bool) "firewall step carries links" true
    (no_fw.links < full.Experiments.Exp_ablation.links);
  (* The relationship refinement must help host-neighbor agreement. *)
  match t.rels with
  | [ refined; votes_only ] ->
    (* At small scale the sparse collector view can cost the refinement a
       couple of customer edges; it must stay in the same band (its real
       benefit, fixing provider/peer inversions, is asserted at full
       scale by the pipeline accuracy tests). *)
    Alcotest.(check bool) "refinement within band" true
      (refined.Experiments.Exp_ablation.agree
      >= votes_only.Experiments.Exp_ablation.agree - 3)
  | _ -> Alcotest.fail "expected two rel rows"

let suite =
  [ Alcotest.test_case "table1" `Slow test_table1;
    Alcotest.test_case "validation" `Slow test_validation;
    Alcotest.test_case "fig14" `Slow test_fig14;
    Alcotest.test_case "fig15" `Slow test_fig15;
    Alcotest.test_case "fig16" `Slow test_fig16;
    Alcotest.test_case "runtime" `Slow test_runtime;
    Alcotest.test_case "resource" `Slow test_resource;
    Alcotest.test_case "ablation" `Slow test_ablation ]
