(* Observability layer: shard-merge determinism across pool sizes, the
   obs-off fast path, byte-identity of inference output under any obs
   configuration, and the trace's provenance invariants. *)

module Gen = Topogen.Gen

let with_metrics f =
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.reset ();
      Obs.Metrics.disable ())
    f

let test_metrics_basics () =
  with_metrics (fun () ->
      Obs.Metrics.add "a" 3;
      Obs.Metrics.incr "a";
      Obs.Metrics.gauge_max "g" 2.5;
      Obs.Metrics.gauge_max "g" 1.0;
      Obs.Metrics.observe "h" 5.0;
      Obs.Metrics.observe "h" 50.0;
      let ms = Obs.Metrics.collect () in
      Alcotest.(check int) "counter total" 4 (Obs.Metrics.find_counter ms "a");
      (match List.assoc "g" ms with
      | Obs.Metrics.Gauge g -> Alcotest.(check (float 1e-9)) "gauge keeps max" 2.5 g
      | _ -> Alcotest.fail "expected a gauge");
      match List.assoc "h" ms with
      | Obs.Metrics.Histogram h ->
        Alcotest.(check int) "hist count" 2 h.Obs.Metrics.h_count;
        Alcotest.(check (float 1e-9)) "hist sum" 55.0 h.Obs.Metrics.h_sum;
        Alcotest.(check int) "two distinct buckets" 2
          (List.length h.Obs.Metrics.h_buckets)
      | _ -> Alcotest.fail "expected a histogram")

let test_buckets () =
  (* Every observed value lands in a bucket whose lower bound does not
     exceed it, and the bucket index is monotone in the value. *)
  let vs = [ 0.0; 1e-10; 1e-9; 0.5; 1.0; 3.0; 999.0; 1e5; 1e7 ] in
  List.iter
    (fun v ->
      let i = Obs.Metrics.bucket_of v in
      Alcotest.(check bool)
        (Printf.sprintf "lower bound of bucket(%g)" v)
        true
        (Obs.Metrics.bucket_lower i <= v +. 1e-15))
    vs;
  let idx = List.map Obs.Metrics.bucket_of vs in
  Alcotest.(check bool) "bucket index monotone" true
    (List.for_all2 ( <= ) (List.filteri (fun i _ -> i < 8) idx) (List.tl idx))

let test_bucket_boundaries () =
  (* Table-driven over every bucket boundary: an exact decade/quarter-
     decade boundary value belongs to the bucket it opens (the lower
     bound is inclusive), the float just below it to the previous one,
     the float just above stays put. log10's rounding error used to
     push exact boundaries one bucket off. 62 buckets: 0 catches
     <= 1e-9, 61 catches everything from its lower bound up — including
     infinity, which routes there explicitly. *)
  for i = 1 to 61 do
    let lo = Obs.Metrics.bucket_lower i in
    let expect_at = if i = 1 then 0 else i in
    (* bucket 1's lower bound is exactly the 1e-9 underflow cut *)
    Alcotest.(check int)
      (Printf.sprintf "bucket_of (bucket_lower %d)" i)
      expect_at
      (Obs.Metrics.bucket_of lo);
    Alcotest.(check int)
      (Printf.sprintf "bucket_of (pred (bucket_lower %d))" i)
      (i - 1)
      (Obs.Metrics.bucket_of (Float.pred lo));
    Alcotest.(check int)
      (Printf.sprintf "bucket_of (succ (bucket_lower %d))" i)
      i
      (Obs.Metrics.bucket_of (Float.succ lo))
  done;
  Alcotest.(check int) "nan" 0 (Obs.Metrics.bucket_of Float.nan);
  Alcotest.(check int) "zero" 0 (Obs.Metrics.bucket_of 0.0);
  Alcotest.(check int) "negative" 0 (Obs.Metrics.bucket_of (-5.0));
  Alcotest.(check int) "neg infinity" 0 (Obs.Metrics.bucket_of Float.neg_infinity);
  Alcotest.(check int) "infinity" 61 (Obs.Metrics.bucket_of Float.infinity);
  Alcotest.(check int) "max_float" 61 (Obs.Metrics.bucket_of Float.max_float)

let test_disabled_noop () =
  Obs.Metrics.disable ();
  Obs.Metrics.reset ();
  Obs.Metrics.add "x" 5;
  Obs.Metrics.incr "x";
  Obs.Metrics.gauge_max "y" 1.0;
  Obs.Metrics.observe "z" 1.0;
  Alcotest.(check int) "nothing recorded while disabled" 0
    (List.length (Obs.Metrics.collect ()))

(* The same deterministic workload recorded through 1-domain and
   4-domain pools (different work distributions over shards) must merge
   to the same totals as a serial run. *)
let shard_workload pool =
  with_metrics (fun () ->
      let work i =
        Obs.Metrics.incr "w.count";
        Obs.Metrics.add "w.sum" i;
        Obs.Metrics.gauge_max "w.max" (float_of_int i);
        Obs.Metrics.observe "w.hist" (float_of_int (1 + (i mod 7)));
        i
      in
      let items = List.init 48 (fun i -> i) in
      ignore
        (match pool with
        | None -> List.map work items
        | Some p -> Netcore.Pool.map p work items);
      Obs.Metrics.collect ())

let test_shard_merge_determinism () =
  let serial = shard_workload None in
  let pooled n =
    Netcore.Pool.with_pool ~domains:n (fun p -> shard_workload (Some p))
  in
  Alcotest.(check bool) "1-domain pool merges like serial" true
    (serial = pooled 1);
  Alcotest.(check bool) "4-domain pool merges like serial" true
    (serial = pooled 4);
  Alcotest.(check int) "count" 48 (Obs.Metrics.find_counter serial "w.count");
  Alcotest.(check int) "sum" (48 * 47 / 2) (Obs.Metrics.find_counter serial "w.sum")

let tiny_lines () =
  let w = Gen.generate Topogen.Scenario.tiny in
  let _bgp, _fwd, engine, inputs = Bdrmap.Pipeline.setup w in
  let vp = List.hd w.Gen.vps in
  let r = Bdrmap.Pipeline.execute engine inputs ~vp in
  (Bdrmap.Output.links_to_lines r.Bdrmap.Pipeline.graph r.Bdrmap.Pipeline.inference, r)

(* The hard constraint of the layer: inference output is byte-identical
   whether observability is off, or fully on (metrics + trace sink). *)
let test_byte_identity_obs_on_off () =
  let off, _ = tiny_lines () in
  let on, r, trace =
    with_metrics (fun () ->
        let sink, drain = Obs.Span.memory_sink () in
        Obs.Span.set_sink (Some sink);
        Fun.protect
          ~finally:(fun () -> Obs.Span.close_sink ())
          (fun () ->
            let lines, r = tiny_lines () in
            (lines, r, drain ())))
  in
  Alcotest.(check (list string)) "border map identical obs on/off" off on;
  Alcotest.(check bool) "trace non-empty with sink" true (List.length trace > 0);
  (* Per-heuristic fire counts must sum to the number of owned routers:
     every decided router is attributed to exactly one heuristic. *)
  let owned =
    List.length
      (List.filter
         (fun (ri : Bdrmap.Heuristics.router_inference) ->
           ri.Bdrmap.Heuristics.owner <> Bdrmap.Heuristics.Unknown)
         r.Bdrmap.Pipeline.inference.Bdrmap.Heuristics.routers)
  in
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let routers_traced =
    List.length (List.filter (contains "\"type\":\"router\"") trace)
  in
  Alcotest.(check int) "one provenance record per owned router" owned
    routers_traced

let test_fire_counts_sum () =
  with_metrics (fun () ->
      let _, r = tiny_lines () in
      let owned =
        List.length
          (List.filter
             (fun (ri : Bdrmap.Heuristics.router_inference) ->
               ri.Bdrmap.Heuristics.owner <> Bdrmap.Heuristics.Unknown)
             r.Bdrmap.Pipeline.inference.Bdrmap.Heuristics.routers)
      in
      let prefix = "heuristics.fire." in
      let fired =
        List.fold_left
          (fun acc (name, v) ->
            match v with
            | Obs.Metrics.Counter n
              when String.length name > String.length prefix
                   && String.sub name 0 (String.length prefix) = prefix ->
              acc + n
            | _ -> acc)
          0 (Obs.Metrics.collect ())
      in
      Alcotest.(check bool) "some routers owned" true (owned > 0);
      Alcotest.(check int) "fire counts sum to owned routers" owned fired)

let all_vp_lines pool =
  let w = Gen.generate Topogen.Scenario.tiny in
  let _bgp, _fwd, _engine, inputs = Bdrmap.Pipeline.setup w in
  let runs = Bdrmap.Pipeline.execute_all ?pool w inputs ~vps:w.Gen.vps in
  List.concat_map
    (fun (r : Bdrmap.Pipeline.run) ->
      Bdrmap.Output.links_to_lines r.Bdrmap.Pipeline.graph
        r.Bdrmap.Pipeline.inference)
    runs

(* Volatile wall-clock and GC-delta counters are the only metrics
   allowed to differ between two runs of the same workload: allocation
   attribution shifts with pool overhead and domain distribution. *)
let stable_metrics ms =
  let has_suffix suffix name =
    let n = String.length name and m = String.length suffix in
    n >= m && String.sub name (n - m) m = suffix
  in
  let contains sub name =
    let n = String.length sub and m = String.length name in
    let rec go i = i + n <= m && (String.sub name i n = sub || go (i + 1)) in
    go 0
  in
  List.filter
    (fun (name, _) -> not (has_suffix ".wall_ns" name || contains ".gc_" name))
    ms

let test_multi_vp_j1_vs_j4 () =
  let run pool =
    with_metrics (fun () ->
        let lines = all_vp_lines pool in
        (lines, stable_metrics (Obs.Metrics.collect ())))
  in
  let lines1, ms1 = run None in
  let lines4, ms4 =
    Netcore.Pool.with_pool ~domains:4 (fun p -> run (Some p))
  in
  Alcotest.(check (list string)) "border maps identical -j1 vs -j4" lines1 lines4;
  Alcotest.(check bool) "metric totals identical -j1 vs -j4" true (ms1 = ms4)

let test_span_record_shape () =
  let sink, drain = Obs.Span.memory_sink () in
  Obs.Span.set_sink (Some sink);
  Fun.protect
    ~finally:(fun () -> Obs.Span.close_sink ())
    (fun () ->
      let r =
        Obs.Span.with_span ~stage:"demo" ~vp:"vp-test"
          ~sim:(fun () -> 1.5)
          (fun () -> 41 + 1)
      in
      Alcotest.(check int) "thunk result passed through" 42 r);
  match drain () with
  | [ line ] ->
    let starts_with p = String.length line >= String.length p
                        && String.sub line 0 (String.length p) = p in
    Alcotest.(check bool) "span record" true
      (starts_with "{\"type\":\"span\",\"stage\":\"demo\",\"vp\":\"vp-test\",");
    (* Volatile fields are stripped by name now, but wall_ns staying
       last keeps old traces and eyeball diffs tidy. *)
    let has_tail =
      match String.rindex_opt line ',' with
      | Some i ->
        String.length line - i > 11 && String.sub line (i + 1) 10 = "\"wall_ns\":"
      | None -> false
    in
    Alcotest.(check bool) "wall_ns is the last field" true has_tail
  | lines -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d" (List.length lines))

let test_manifest_render () =
  let json =
    with_metrics (fun () ->
        Obs.Span.with_span ~stage:"demo" (fun () -> ());
        Obs.Manifest.render ~command:"test" ~scale:0.5 ~jobs:2 ~seed:7
          ~config:"command=test scale=0.5" ())
  in
  let contains sub =
    let n = String.length sub and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sub -> Alcotest.(check bool) ("manifest has " ^ sub) true (contains sub))
    [ "\"schema\": \"bdrmap-manifest/2\"";
      "\"command\": \"test\"";
      "\"seed\": 7";
      "\"jobs\": 2";
      "\"config_hash\": \"" ^ Digest.to_hex (Digest.string "command=test scale=0.5") ^ "\"";
      "\"demo\"" ]

let suite =
  [ Alcotest.test_case "metrics basics" `Quick test_metrics_basics;
    Alcotest.test_case "histogram buckets" `Quick test_buckets;
    Alcotest.test_case "bucket boundary table" `Quick test_bucket_boundaries;
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "shard merge determinism" `Quick test_shard_merge_determinism;
    Alcotest.test_case "byte identity obs on/off" `Slow test_byte_identity_obs_on_off;
    Alcotest.test_case "fire counts sum" `Slow test_fire_counts_sum;
    Alcotest.test_case "multi-VP -j1 vs -j4" `Slow test_multi_vp_j1_vs_j4;
    Alcotest.test_case "span record shape" `Quick test_span_record_shape;
    Alcotest.test_case "manifest render" `Quick test_manifest_render ]
