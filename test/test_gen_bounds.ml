(* Generator domain boundaries: extreme parameter records must yield a
   valid (possibly trivial) world or a typed Invalid_argument from
   [Gen.validate_params] — never an uncaught exception from deep inside
   construction. These are the boundaries the world fuzzer steers
   around; each gets a direct unit test here. *)

module Gen = Topogen.Gen
module Net = Topogen.Net

(* A minimal in-domain base: one host metro, one Tier-1, nothing else. *)
let minimal =
  { Gen.default_params with
    Gen.name = "bounds";
    seed = 5;
    host_cities = 1;
    host_sibling_count = 0;
    n_tier1 = 1;
    n_transit = 0;
    n_ixp = 0;
    host_ixp_count = 0;
    n_host_providers = 0;
    n_host_peers = 0;
    n_host_ixp_peers = 0;
    n_host_customers = 0;
    big_peer_links = 0;
    n_cdn_peers = 0;
    n_remote = 0;
    n_vps = 0 }

let rejects name p =
  match Gen.validate_params p with
  | () -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_minimal_world () =
  (* The smallest valid world: host + one Tier-1, no VPs, no customers,
     no transits. Generation and the pipeline's input derivation must
     both survive it. *)
  let w = Gen.generate minimal in
  Alcotest.(check int) "no VPs" 0 (List.length w.Gen.vps);
  Alcotest.(check bool) "host present" true
    (Topogen.Net.router_count w.Gen.net > 0);
  let _bgp, _fwd, _engine, inputs = Bdrmap.Pipeline.setup w in
  let runs = Bdrmap.Pipeline.execute_all w inputs ~vps:w.Gen.vps in
  Alcotest.(check int) "zero-VP sweep is empty" 0 (List.length runs)

let test_zero_vp_bigger_world () =
  let p = { (Topogen.Scenario.small_access ~scale:0.1 ()) with Gen.n_vps = 0 } in
  let w = Gen.generate p in
  Alcotest.(check int) "no VPs" 0 (List.length w.Gen.vps)

let test_single_as_rejected () =
  (* A world without a Tier-1 clique has no Internet to route through:
     typed rejection, not a crash in backbone construction. *)
  rejects "n_tier1 = 0" { minimal with Gen.n_tier1 = 0 };
  rejects "host_cities = 0" { minimal with Gen.host_cities = 0 }

let test_negative_counts_rejected () =
  rejects "n_host_customers = -1" { minimal with Gen.n_host_customers = -1 };
  rejects "n_remote = -3" { minimal with Gen.n_remote = -3 };
  rejects "n_vps = -1" { minimal with Gen.n_vps = -1 };
  rejects "fault.f_fail_links = -1"
    { minimal with Gen.fault = { Gen.zero_fault with Gen.f_fail_links = -1 } }

let test_bad_probabilities_rejected () =
  rejects "p_moas = nan" { minimal with Gen.p_moas = Float.nan };
  rejects "p_cust_firewall = 1.5" { minimal with Gen.p_cust_firewall = 1.5 };
  rejects "p_hijack = -0.1" { minimal with Gen.p_hijack = -0.1 };
  rejects "avg_cust_links = inf"
    { minimal with Gen.avg_cust_links = Float.infinity };
  rejects "fault.f_probe_loss = 2.0"
    { minimal with Gen.fault = { Gen.zero_fault with Gen.f_probe_loss = 2.0 } }

let test_all_pathologies_maxed () =
  (* Every pathology knob at its maximum on a small but non-trivial
     world: generation and a full single-VP pipeline run must hold. *)
  let p =
    { (Topogen.Scenario.small_access ~scale:0.1 ()) with
      Gen.name = "maxed";
      n_vps = 1;
      p_cust_firewall = 1.0;
      p_cust_silent = 1.0;
      p_cust_echo_only = 1.0;
      p_third_party = 1.0;
      p_unrouted_infra = 1.0;
      p_pa_infra = 1.0;
      p_multihomed_pair = 1.0;
      p_ipid_shared = 1.0;
      p_ipid_periface = 1.0;
      p_ipid_random = 1.0;
      p_udp_canonical = 1.0;
      p_vrouter = 1.0;
      p_moas = 1.0;
      p_ixp_member = 0.0;
      p_sibling_hidden = 1.0;
      p_hijack = 1.0 }
  in
  let w = Gen.generate p in
  Alcotest.(check bool) "host never hidden" true
    (Netcore.Asn.Set.mem w.Gen.host_asn w.Gen.published_siblings);
  let _bgp, _fwd, _engine, inputs = Bdrmap.Pipeline.setup w in
  let runs = Bdrmap.Pipeline.execute_all w inputs ~vps:w.Gen.vps in
  Alcotest.(check int) "one run" 1 (List.length runs)

let test_published_siblings_default () =
  (* With the knob at 0, the published list IS the truth set: the
     default pipeline inputs are unchanged by the new field. *)
  let w = Gen.generate Topogen.Scenario.tiny in
  Alcotest.(check bool) "published = truth" true
    (Netcore.Asn.Set.equal w.Gen.siblings w.Gen.published_siblings)

let suite =
  [ Alcotest.test_case "minimal world generates and sweeps" `Quick
      test_minimal_world;
    Alcotest.test_case "zero-VP world is valid" `Quick test_zero_vp_bigger_world;
    Alcotest.test_case "single-AS inputs rejected typed" `Quick
      test_single_as_rejected;
    Alcotest.test_case "negative counts rejected typed" `Quick
      test_negative_counts_rejected;
    Alcotest.test_case "malformed probabilities rejected typed" `Quick
      test_bad_probabilities_rejected;
    Alcotest.test_case "all pathology knobs maxed" `Quick
      test_all_pathologies_maxed;
    Alcotest.test_case "published siblings default to truth" `Quick
      test_published_siblings_default ]
