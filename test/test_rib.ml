open Netcore
open Bgpdata

let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let sample () =
  let lines =
    [ "# collector snapshot";
      "128.66.0.0/16|64500 64501 64510";
      "128.66.0.0/16|64502 64510";
      "128.66.2.0/24|64500 64501 64511";
      "10.0.0.0/8|64500 64520";
      "192.0.2.0/24|64502 64501 64530";
      "192.0.2.0/24|64500 64531" ]
  in
  match Rib.of_lines lines with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_cardinal () = Alcotest.(check int) "prefixes" 4 (Rib.cardinal (sample ()))

let test_origins () =
  let t = sample () in
  Alcotest.(check (list int)) "single origin" [ 64510 ]
    (Asn.Set.elements (Rib.origins t (pfx "128.66.0.0/16")));
  Alcotest.(check (list int)) "moas prefix" [ 64530; 64531 ]
    (Asn.Set.elements (Rib.origins t (pfx "192.0.2.0/24")));
  Alcotest.(check (list int)) "unknown prefix" []
    (Asn.Set.elements (Rib.origins t (pfx "172.16.0.0/12")))

let test_lpm () =
  let t = sample () in
  Alcotest.(check (list int)) "more specific wins" [ 64511 ]
    (Asn.Set.elements (Rib.origin_asns t (ip "128.66.2.9")));
  Alcotest.(check (list int)) "covering" [ 64510 ]
    (Asn.Set.elements (Rib.origin_asns t (ip "128.66.3.9")));
  Alcotest.(check (list int)) "unrouted" []
    (Asn.Set.elements (Rib.origin_asns t (ip "8.8.8.8")))

let test_size_window () =
  let t = Rib.add_route Rib.empty (pfx "2.0.0.0/7") [ 64500; 1 ] in
  let t = Rib.add_route t (pfx "1.0.0.0/25") [ 64500; 1 ] in
  Alcotest.(check int) "outside /8-/24 ignored" 0 (Rib.cardinal t)

let test_prefixes_originated_by () =
  let t = sample () in
  let ps =
    Rib.prefixes_originated_by t (Asn.Set.singleton 64510) |> List.map Prefix.to_string
  in
  Alcotest.(check (list string)) "by origin" [ "128.66.0.0/16" ] ps;
  let ps2 =
    Rib.prefixes_originated_by t (Asn.Set.of_list [ 64530; 64520 ])
    |> List.map Prefix.to_string
  in
  Alcotest.(check (list string)) "by origin set" [ "10.0.0.0/8"; "192.0.2.0/24" ] ps2

let test_more_specifics () =
  let t = sample () in
  Alcotest.(check (list string)) "more specifics" [ "128.66.2.0/24" ]
    (List.map Prefix.to_string (Rib.more_specifics t (pfx "128.66.0.0/16")))

let test_roundtrip () =
  let t = sample () in
  match Rib.of_lines (Rib.to_lines t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    Alcotest.(check int) "cardinal preserved" (Rib.cardinal t) (Rib.cardinal t');
    List.iter
      (fun p ->
        Alcotest.(check (list int))
          (Prefix.to_string p)
          (Asn.Set.elements (Rib.origins t p))
          (Asn.Set.elements (Rib.origins t' p)))
      (Rib.prefixes t)

let test_parse_errors () =
  Alcotest.(check bool) "bad prefix" true
    (Result.is_error (Rib.of_lines [ "999.0.0.0/16|1 2" ]));
  Alcotest.(check bool) "bad path" true
    (Result.is_error (Rib.of_lines [ "10.0.0.0/16|1 x" ]));
  Alcotest.(check bool) "missing field" true (Result.is_error (Rib.of_lines [ "10.0.0.0/16" ]))

let test_paths () =
  let t = sample () in
  Alcotest.(check int) "two paths kept" 2 (List.length (Rib.paths t (pfx "128.66.0.0/16")));
  Alcotest.(check int) "all paths" 6 (List.length (Rib.all_paths t))

let suite =
  [ Alcotest.test_case "cardinal" `Quick test_cardinal;
    Alcotest.test_case "origins" `Quick test_origins;
    Alcotest.test_case "lpm" `Quick test_lpm;
    Alcotest.test_case "size window" `Quick test_size_window;
    Alcotest.test_case "prefixes by origin" `Quick test_prefixes_originated_by;
    Alcotest.test_case "more specifics" `Quick test_more_specifics;
    Alcotest.test_case "text roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "paths" `Quick test_paths ]
