open Netcore

let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let prefixes_str t = List.map Prefix.to_string (Ipset.to_prefixes t)

let test_paper_example () =
  (* From §5.3: X originates 128.66.0.0/16, Y originates 128.66.2.0/24;
     X's blocks are 128.66.0.0-128.66.1.255 and 128.66.3.0-128.66.255.255. *)
  let t = Ipset.add_prefix (pfx "128.66.0.0/16") Ipset.empty in
  let t = Ipset.remove_prefix (pfx "128.66.2.0/24") t in
  let rs =
    List.map (fun (a, b) -> (Ipv4.to_string a, Ipv4.to_string b)) (Ipset.ranges t)
  in
  Alcotest.(check (list (pair string string)))
    "ranges match paper"
    [ ("128.66.0.0", "128.66.1.255"); ("128.66.3.0", "128.66.255.255") ]
    rs;
  Alcotest.(check (list string))
    "prefix decomposition"
    [ "128.66.0.0/23"; "128.66.3.0/24"; "128.66.4.0/22"; "128.66.8.0/21"; "128.66.16.0/20";
      "128.66.32.0/19"; "128.66.64.0/18"; "128.66.128.0/17" ]
    (prefixes_str t)

let test_merge_adjacent () =
  let t = Ipset.empty in
  let t = Ipset.add_prefix (pfx "10.0.0.0/25") t in
  let t = Ipset.add_prefix (pfx "10.0.0.128/25") t in
  Alcotest.(check (list string)) "adjacent halves merge" [ "10.0.0.0/24" ] (prefixes_str t)

let test_overlap_add () =
  let t = Ipset.add_range (ip "10.0.0.0") (ip "10.0.0.200") Ipset.empty in
  let t = Ipset.add_range (ip "10.0.0.100") (ip "10.0.1.0") t in
  Alcotest.(check int) "single merged range" 1 (List.length (Ipset.ranges t));
  Alcotest.(check int) "cardinal" 257 (Ipset.cardinal t)

let test_mem () =
  let t = Ipset.add_prefix (pfx "192.0.2.0/24") Ipset.empty in
  Alcotest.(check bool) "in" true (Ipset.mem (ip "192.0.2.77") t);
  Alcotest.(check bool) "out" false (Ipset.mem (ip "192.0.3.0") t)

let test_remove_middle () =
  let t = Ipset.add_prefix (pfx "10.0.0.0/24") Ipset.empty in
  let t = Ipset.remove_range (ip "10.0.0.64") (ip "10.0.0.127") t in
  Alcotest.(check (list string)) "hole" [ "10.0.0.0/26"; "10.0.0.128/25" ] (prefixes_str t);
  Alcotest.(check int) "cardinal after hole" 192 (Ipset.cardinal t)

let test_setops () =
  let a = Ipset.add_prefix (pfx "10.0.0.0/24") Ipset.empty in
  let b = Ipset.add_prefix (pfx "10.0.0.128/25") Ipset.empty in
  Alcotest.(check bool) "inter" true (Ipset.equal (Ipset.inter a b) b);
  Alcotest.(check (list string)) "diff" [ "10.0.0.0/25" ] (prefixes_str (Ipset.diff a b));
  Alcotest.(check bool) "union" true (Ipset.equal (Ipset.union a b) a)

let range_gen =
  QCheck.Gen.(
    map2
      (fun a len ->
        let a = a * 7 in
        (a, min 0xFFFFFFFF (a + len)))
      (int_bound 0xFFFFF) (int_bound 5000))

let arb_ranges =
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) l))
    QCheck.Gen.(list_size (int_range 1 20) range_gen)

let build ranges =
  List.fold_left
    (fun t (a, b) -> Ipset.add_range (Ipv4.of_int a) (Ipv4.of_int b) t)
    Ipset.empty ranges

let prop_prefixes_cover_exactly =
  QCheck.Test.make ~name:"to_prefixes covers exactly the set" ~count:100 arb_ranges
    (fun ranges ->
      let t = build ranges in
      let rebuilt =
        List.fold_left (fun acc p -> Ipset.add_prefix p acc) Ipset.empty (Ipset.to_prefixes t)
      in
      Ipset.equal t rebuilt)

let prop_prefix_cardinal =
  QCheck.Test.make ~name:"prefix sizes sum to cardinal" ~count:100 arb_ranges (fun ranges ->
      let t = build ranges in
      let total = List.fold_left (fun n p -> n + Prefix.size p) 0 (Ipset.to_prefixes t) in
      total = Ipset.cardinal t)

let prop_disjoint_sorted =
  QCheck.Test.make ~name:"ranges stay sorted and disjoint" ~count:100 arb_ranges
    (fun ranges ->
      let t = build ranges in
      let rec ok = function
        | (_, b) :: ((c, _) :: _ as rest) -> Ipv4.to_int b + 1 < Ipv4.to_int c && ok rest
        | _ -> true
      in
      ok (Ipset.ranges t))

let suite =
  [ Alcotest.test_case "paper block example" `Quick test_paper_example;
    Alcotest.test_case "adjacent merge" `Quick test_merge_adjacent;
    Alcotest.test_case "overlapping add" `Quick test_overlap_add;
    Alcotest.test_case "membership" `Quick test_mem;
    Alcotest.test_case "remove middle" `Quick test_remove_middle;
    Alcotest.test_case "set operations" `Quick test_setops;
    Qc.to_alcotest prop_prefixes_cover_exactly;
    Qc.to_alcotest prop_prefix_cardinal;
    Qc.to_alcotest prop_disjoint_sorted ]
