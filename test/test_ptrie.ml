open Netcore

let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let sample_trie () =
  Ptrie.of_list
    [ (pfx "0.0.0.0/0", "default");
      (pfx "128.66.0.0/16", "X");
      (pfx "128.66.2.0/24", "Y");
      (pfx "128.66.2.128/25", "Z");
      (pfx "10.0.0.0/8", "ten") ]

let test_lpm () =
  let t = sample_trie () in
  let lookup a = Option.map snd (Ptrie.lpm (ip a) t) in
  Alcotest.(check (option string)) "most specific wins" (Some "Z") (lookup "128.66.2.200");
  Alcotest.(check (option string)) "mid specific" (Some "Y") (lookup "128.66.2.5");
  Alcotest.(check (option string)) "covering" (Some "X") (lookup "128.66.3.1");
  Alcotest.(check (option string)) "default" (Some "default") (lookup "8.8.8.8");
  Alcotest.(check (option string)) "ten" (Some "ten") (lookup "10.255.0.1")

let test_lpm_no_default () =
  let t = Ptrie.add (pfx "192.0.2.0/24") 1 Ptrie.empty in
  Alcotest.(check bool) "miss" true (Ptrie.lpm (ip "8.8.8.8") t = None);
  Alcotest.(check bool) "hit" true (Ptrie.lpm (ip "192.0.2.9") t = Some (pfx "192.0.2.0/24", 1))

let test_exact () =
  let t = sample_trie () in
  Alcotest.(check (option string)) "exact hit" (Some "Y")
    (Ptrie.find_exact (pfx "128.66.2.0/24") t);
  Alcotest.(check (option string)) "exact miss on different len" None
    (Ptrie.find_exact (pfx "128.66.2.0/23") t)

let test_matches_order () =
  let t = sample_trie () in
  let ms = List.map (fun (p, _) -> Prefix.to_string p) (Ptrie.matches (ip "128.66.2.200") t) in
  Alcotest.(check (list string)) "most specific first"
    [ "128.66.2.128/25"; "128.66.2.0/24"; "128.66.0.0/16"; "0.0.0.0/0" ]
    ms

let test_remove () =
  let t = sample_trie () in
  let t = Ptrie.remove (pfx "128.66.2.0/24") t in
  Alcotest.(check (option string)) "falls back to covering" (Some "X")
    (Option.map snd (Ptrie.lpm (ip "128.66.2.5") t));
  Alcotest.(check (option string)) "more specific unaffected" (Some "Z")
    (Option.map snd (Ptrie.lpm (ip "128.66.2.200") t));
  Alcotest.(check int) "cardinal drops" 4 (Ptrie.cardinal t)

let test_replace () =
  let t = Ptrie.add (pfx "10.0.0.0/8") "new" (sample_trie ()) in
  Alcotest.(check int) "cardinal unchanged" 5 (Ptrie.cardinal t);
  Alcotest.(check (option string)) "value replaced" (Some "new")
    (Ptrie.find_exact (pfx "10.0.0.0/8") t)

let test_subtree () =
  let t = sample_trie () in
  let sub = List.map (fun (p, _) -> Prefix.to_string p) (Ptrie.subtree (pfx "128.66.0.0/16") t) in
  Alcotest.(check (list string)) "subtree bindings"
    [ "128.66.0.0/16"; "128.66.2.0/24"; "128.66.2.128/25" ]
    (List.sort compare sub)

let test_bindings_roundtrip () =
  let t = sample_trie () in
  let t' = Ptrie.of_list (Ptrie.bindings t) in
  Alcotest.(check int) "same cardinal" (Ptrie.cardinal t) (Ptrie.cardinal t');
  List.iter
    (fun (p, v) ->
      Alcotest.(check (option string)) (Prefix.to_string p) (Some v) (Ptrie.find_exact p t'))
    (Ptrie.bindings t)

let prefix_gen =
  QCheck.Gen.(
    map2
      (fun addr len -> Prefix.make (Ipv4.of_int (addr * 1021)) len)
      (int_bound 0x3FFFFF)
      (int_range 4 32))

let arb_prefix_list =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map Prefix.to_string l))
    QCheck.Gen.(list_size (int_range 1 60) prefix_gen)

let prop_lpm_agrees_with_scan =
  QCheck.Test.make ~name:"lpm agrees with linear scan" ~count:200 arb_prefix_list (fun ps ->
      let t = Ptrie.of_list (List.map (fun p -> (p, Prefix.to_string p)) ps) in
      let addr = Prefix.first (List.hd ps) in
      let expected =
        List.filter (fun p -> Prefix.mem addr p) ps
        |> List.sort (fun a b -> Int.compare (Prefix.len b) (Prefix.len a))
      in
      match (Ptrie.lpm addr t, expected) with
      | None, [] -> true
      | Some (p, _), best :: _ -> Prefix.len p = Prefix.len best
      | _ -> false)

let prop_add_then_find =
  QCheck.Test.make ~name:"added prefixes are findable" ~count:200 arb_prefix_list (fun ps ->
      let t = Ptrie.of_list (List.map (fun p -> (p, ())) ps) in
      List.for_all (fun p -> Ptrie.find_exact p t = Some ()) ps)

let suite =
  [ Alcotest.test_case "longest prefix match" `Quick test_lpm;
    Alcotest.test_case "lpm without default" `Quick test_lpm_no_default;
    Alcotest.test_case "exact lookup" `Quick test_exact;
    Alcotest.test_case "matches ordering" `Quick test_matches_order;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "replace" `Quick test_replace;
    Alcotest.test_case "subtree" `Quick test_subtree;
    Alcotest.test_case "bindings roundtrip" `Quick test_bindings_roundtrip;
    Qc.to_alcotest prop_lpm_agrees_with_scan;
    Qc.to_alcotest prop_add_then_find ]
