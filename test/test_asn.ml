open Netcore

let test_parse () =
  Alcotest.(check (option int)) "plain" (Some 3356) (Asn.of_string "3356");
  Alcotest.(check (option int)) "AS prefix" (Some 3356) (Asn.of_string "AS3356");
  Alcotest.(check (option int)) "as prefix" (Some 174) (Asn.of_string "as174");
  Alcotest.(check (option int)) "negative" None (Asn.of_string "-2");
  Alcotest.(check (option int)) "garbage" None (Asn.of_string "ASX")

let test_pp () =
  Alcotest.(check string) "to_string" "AS65001" (Asn.to_string 65001)

let test_most_frequent () =
  Alcotest.(check (option int)) "simple majority" (Some 2)
    (Asn.most_frequent [ 1; 2; 2; 3; 2; 1 ]);
  Alcotest.(check (option int)) "tie -> smaller asn" (Some 1)
    (Asn.most_frequent [ 2; 1; 2; 1 ]);
  Alcotest.(check (option int)) "empty" None (Asn.most_frequent []);
  Alcotest.(check (option int)) "singleton" (Some 7) (Asn.most_frequent [ 7 ])

let test_counts () =
  Alcotest.(check (list (pair int int))) "counts sorted by asn"
    [ (1, 2); (2, 3); (3, 1) ]
    (Asn.counts [ 2; 1; 2; 3; 2; 1 ])

let suite =
  [ Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "pretty print" `Quick test_pp;
    Alcotest.test_case "most frequent" `Quick test_most_frequent;
    Alcotest.test_case "counts" `Quick test_counts ]
