open Netcore
open Bgpdata

let sample () =
  let t = As_rel.empty in
  let t = As_rel.add_c2p t ~provider:3356 ~customer:64500 in
  let t = As_rel.add_c2p t ~provider:7018 ~customer:64500 in
  let t = As_rel.add_c2p t ~provider:64500 ~customer:64501 in
  let t = As_rel.add_p2p t 3356 7018 in
  let t = As_rel.add_p2p t 64500 64502 in
  t

let test_rel_queries () =
  let t = sample () in
  Alcotest.(check bool) "provider seen from customer" true
    (As_rel.rel t ~of_:64500 ~with_:3356 = Some As_rel.Provider);
  Alcotest.(check bool) "customer seen from provider" true
    (As_rel.rel t ~of_:3356 ~with_:64500 = Some As_rel.Customer);
  Alcotest.(check bool) "peer symmetric" true
    (As_rel.rel t ~of_:3356 ~with_:7018 = Some As_rel.Peer
    && As_rel.rel t ~of_:7018 ~with_:3356 = Some As_rel.Peer);
  Alcotest.(check bool) "unknown" true (As_rel.rel t ~of_:64501 ~with_:3356 = None)

let test_sets () =
  let t = sample () in
  Alcotest.(check (list int)) "providers" [ 3356; 7018 ]
    (Asn.Set.elements (As_rel.providers t 64500));
  Alcotest.(check (list int)) "customers" [ 64501 ]
    (Asn.Set.elements (As_rel.customers t 64500));
  Alcotest.(check (list int)) "peers" [ 64502 ] (Asn.Set.elements (As_rel.peers t 64500));
  Alcotest.(check (list int)) "neighbors" [ 3356; 7018; 64501; 64502 ]
    (Asn.Set.elements (As_rel.neighbors t 64500));
  Alcotest.(check int) "degree" 4 (As_rel.degree t 64500)

let test_predicates () =
  let t = sample () in
  Alcotest.(check bool) "is_provider_of" true
    (As_rel.is_provider_of t ~provider:3356 ~customer:64500);
  Alcotest.(check bool) "not provider reversed" false
    (As_rel.is_provider_of t ~provider:64500 ~customer:3356);
  Alcotest.(check bool) "is_peer" true (As_rel.is_peer t 64500 64502);
  Alcotest.(check bool) "known" true (As_rel.known t 64500 64501);
  Alcotest.(check bool) "unknown pair" false (As_rel.known t 64501 64502)

let test_roundtrip () =
  let t = sample () in
  match As_rel.of_lines (As_rel.to_lines t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    Alcotest.(check int) "edges preserved" (As_rel.edge_count t) (As_rel.edge_count t');
    Asn.Set.iter
      (fun a ->
        Asn.Set.iter
          (fun b ->
            Alcotest.(check bool)
              (Printf.sprintf "rel %d-%d" a b)
              true
              (As_rel.rel t ~of_:a ~with_:b = As_rel.rel t' ~of_:a ~with_:b))
          (As_rel.asns t))
      (As_rel.asns t)

let test_parse_format () =
  match As_rel.of_lines [ "# comment"; "3356|64500|-1"; "3356|7018|0"; "" ] with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check bool) "c2p parsed" true
      (As_rel.is_provider_of t ~provider:3356 ~customer:64500);
    Alcotest.(check bool) "p2p parsed" true (As_rel.is_peer t 3356 7018);
    Alcotest.(check bool) "bad kind rejected" true
      (Result.is_error (As_rel.of_lines [ "1|2|7" ]))

let test_customer_cone () =
  let t = sample () in
  Alcotest.(check (list int)) "3356 cone" [ 3356; 64500; 64501 ]
    (Asn.Set.elements (As_rel.customer_cone t 3356));
  Alcotest.(check (list int)) "leaf cone is itself" [ 64501 ]
    (Asn.Set.elements (As_rel.customer_cone t 64501));
  (* Cycles must terminate. *)
  let cyc = As_rel.add_c2p As_rel.empty ~provider:1 ~customer:2 in
  let cyc = As_rel.add_c2p cyc ~provider:2 ~customer:1 in
  Alcotest.(check (list int)) "cycle cone" [ 1; 2 ]
    (Asn.Set.elements (As_rel.customer_cone cyc 1))

let test_edge_count () =
  Alcotest.(check int) "edges" 5 (As_rel.edge_count (sample ()))

let suite =
  [ Alcotest.test_case "relationship queries" `Quick test_rel_queries;
    Alcotest.test_case "neighbor sets" `Quick test_sets;
    Alcotest.test_case "predicates" `Quick test_predicates;
    Alcotest.test_case "text roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "parse format" `Quick test_parse_format;
    Alcotest.test_case "customer cone" `Quick test_customer_cone;
    Alcotest.test_case "edge count" `Quick test_edge_count ]
