open Netcore
module Net = Topogen.Net
module Gen = Topogen.Gen
module Fwd = Routing.Forwarding

let setup = lazy (
  let w = Gen.generate Topogen.Scenario.tiny in
  let bgp =
    Routing.Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
      ~selective:w.Gen.selective
  in
  (w, bgp, Fwd.create w.Gen.net bgp))

let first_addrs w =
  List.filter_map
    (fun (p, origins) ->
      if Asn.Set.mem w.Gen.host_asn origins then None
      else Some (Ipv4.add (Prefix.first p) 1))
    (Gen.originated w)

let test_paths_connected () =
  let w, _, fwd = Lazy.force setup in
  let vp = List.hd w.vps in
  List.iter
    (fun dst ->
      let path = Fwd.path fwd ~src_rid:vp.vp_rid ~dst () in
      let rec check prev = function
        | [] -> ()
        | (s : Fwd.step) :: rest ->
          (match s.in_link with
          | None -> Alcotest.fail "non-source step lacks in_link"
          | Some l ->
            let a = fst l.Net.a and b = fst l.Net.b in
            Alcotest.(check bool) "link connects prev to cur" true
              ((a = prev && b = s.rid) || (b = prev && a = s.rid)));
          check s.rid rest
      in
      check vp.vp_rid path)
    (first_addrs w)

let test_paths_reach_origin_as () =
  let w, bgp, fwd = Lazy.force setup in
  let vp = List.hd w.vps in
  let reached = ref 0 and total = ref 0 in
  List.iter
    (fun dst ->
      incr total;
      let path = Fwd.path fwd ~src_rid:vp.vp_rid ~dst () in
      match List.rev path with
      | [] -> ()
      | last :: _ ->
        let owner = (Net.router w.net last.Fwd.rid).Net.owner in
        let origins =
          match Routing.Bgp.lookup bgp w.host_asn dst with
          | Some (p, _) -> Routing.Bgp.origins bgp p
          | None -> Asn.Set.empty
        in
        if Asn.Set.mem owner origins then incr reached)
    (first_addrs w);
  (* Relationship-only sibling prefixes terminate on host routers, so a
     small shortfall is expected. *)
  Alcotest.(check bool)
    (Printf.sprintf "most paths end in origin AS (%d/%d)" !reached !total)
    true
    (float_of_int !reached >= 0.85 *. float_of_int !total)

let test_first_hops_in_host () =
  let w, _, fwd = Lazy.force setup in
  List.iter
    (fun (vp : Gen.vp) ->
      List.iter
        (fun dst ->
          match Fwd.path fwd ~src_rid:vp.vp_rid ~dst () with
          | [] -> ()
          | first :: _ ->
            Alcotest.(check int) "first hop in host AS" w.host_asn
              (Net.router w.net first.Fwd.rid).Net.owner)
        (List.filteri (fun i _ -> i < 20) (first_addrs w)))
    w.vps

let test_deliver_to_interface () =
  let w, _, fwd = Lazy.force setup in
  let vp = List.hd w.vps in
  (* Pick a far interdomain interface address and expect delivery. *)
  let l = List.hd (Net.interdomain_links w.net) in
  let dst = snd l.Net.a in
  let path = Fwd.path fwd ~src_rid:vp.vp_rid ~dst () in
  match List.rev path with
  | [] -> Alcotest.fail "no path to interface addr"
  | last :: _ ->
    let r = Net.router w.net last.Fwd.rid in
    Alcotest.(check bool) "delivered to a router holding or adjacent to addr" true
      (List.exists (fun (i : Net.iface) -> Ipv4.equal i.Net.addr dst) r.Net.ifaces
      || List.exists
           (fun ((l : Net.link), _) ->
             Ipv4.equal (snd l.Net.a) dst || Ipv4.equal (snd l.Net.b) dst)
           (Net.neighbors w.net last.Fwd.rid))

let test_hot_potato_prefers_near_egress () =
  let w, _, fwd = Lazy.force setup in
  (* For the big peer (links in several cities), each VP must use an
     egress whose IGP distance is minimal among that prefix's candidates. *)
  let peer_node = Net.as_node w.net w.big_peer in
  let target = Ipv4.add (Prefix.first (List.hd peer_node.Net.prefixes)) 1 in
  List.iter
    (fun (vp : Gen.vp) ->
      match Fwd.egress_link fwd ~rid:vp.vp_rid ~dst:target with
      | None -> Alcotest.fail "no egress for big peer prefix"
      | Some l ->
        let near =
          if Asn.equal (Net.router w.net (fst l.Net.a)).Net.owner w.host_asn then fst l.Net.a
          else fst l.Net.b
        in
        let d = Fwd.igp_distance fwd ~from_rid:vp.vp_rid ~to_rid:near in
        List.iter
          (fun (l' : Net.link) ->
            let near' =
              if Asn.equal (Net.router w.net (fst l'.Net.a)).Net.owner w.host_asn then
                fst l'.Net.a
              else fst l'.Net.b
            in
            let d' = Fwd.igp_distance fwd ~from_rid:vp.vp_rid ~to_rid:near' in
            Alcotest.(check bool)
              (Printf.sprintf "%s egress is nearest" vp.vp_name)
              true (d <= d' +. 1e-9))
          (Net.interdomain_links_between w.net w.host_asn w.big_peer))
    w.vps

let test_igp_distance_properties () =
  let w, _, fwd = Lazy.force setup in
  let host_routers = Net.routers_of w.net w.host_asn in
  let r1 = List.hd host_routers and r2 = List.nth host_routers 3 in
  Alcotest.(check (float 0.001)) "self distance" 0.0
    (Fwd.igp_distance fwd ~from_rid:r1.Net.rid ~to_rid:r1.Net.rid);
  let d12 = Fwd.igp_distance fwd ~from_rid:r1.Net.rid ~to_rid:r2.Net.rid in
  let d21 = Fwd.igp_distance fwd ~from_rid:r2.Net.rid ~to_rid:r1.Net.rid in
  Alcotest.(check bool) "symmetric" true (abs_float (d12 -. d21) < 1e-9);
  Alcotest.(check bool) "finite inside AS" true (d12 < infinity);
  (* Cross-AS distance is infinite. *)
  let foreign =
    List.find
      (fun (r : Net.router) -> not (Asn.equal r.Net.owner w.host_asn))
      (List.init (Net.router_count w.net) (Net.router w.net))
  in
  Alcotest.(check bool) "cross-AS infinite" true
    (Fwd.igp_distance fwd ~from_rid:r1.Net.rid ~to_rid:foreign.Net.rid = infinity)

let test_reply_iface_on_router () =
  let w, _, fwd = Lazy.force setup in
  let vp = List.hd w.vps in
  let checked = ref 0 in
  List.iter
    (fun dst ->
      let path = Fwd.path fwd ~src_rid:vp.vp_rid ~dst () in
      List.iter
        (fun (s : Fwd.step) ->
          match Fwd.reply_iface fwd ~rid:s.Fwd.rid ~reply_to:vp.vp_addr with
          | None -> ()
          | Some addr ->
            incr checked;
            let r = Net.router w.net s.Fwd.rid in
            Alcotest.(check bool) "reply iface belongs to router" true
              (List.exists (fun (i : Net.iface) -> Ipv4.equal i.Net.addr addr) r.Net.ifaces))
        path)
    (List.filteri (fun i _ -> i < 15) (first_addrs w));
  Alcotest.(check bool) "reply ifaces checked" true (!checked > 20)

let test_selective_prefix_pinned () =
  let w, bgp, fwd = Lazy.force setup in
  (* For a pinned CDN prefix, every VP must exit via an allowed link. *)
  let pinned =
    Asn.Map.fold
      (fun origin per_prefix acc ->
        Prefix.Map.fold (fun p lids acc -> (origin, p, lids) :: acc) per_prefix acc)
      w.selective []
  in
  Alcotest.(check bool) "some pinned prefixes exist" true (pinned <> []);
  List.iter
    (fun (origin, p, lids) ->
      ignore origin;
      let dst = Ipv4.add (Prefix.first p) 1 in
      List.iter
        (fun (vp : Gen.vp) ->
          match Fwd.egress_link fwd ~rid:vp.vp_rid ~dst with
          | None -> ()
          | Some l ->
            (* Only check when the host's next hop is the pinned origin. *)
            let far =
              let ra = fst l.Net.a in
              if Asn.equal (Net.router w.net ra).Net.owner w.host_asn then fst l.Net.b
              else ra
            in
            if Asn.equal (Net.router w.net far).Net.owner origin then
              Alcotest.(check bool)
                (Printf.sprintf "%s pinned egress for %s" vp.vp_name (Prefix.to_string p))
                true (List.mem l.Net.lid lids))
        w.vps;
      ignore bgp)
    pinned

let test_frozen_plan_equivalence () =
  let w, bgp, fwd = Lazy.force setup in
  (* Freeze the shared plan exactly as the pipeline does, then check
     that a plan-backed instance forwards identically to the lazy one. *)
  let snap = Routing.Bgp.freeze bgp in
  let plan =
    Fwd.freeze ~egress_for:w.Gen.siblings
      (Fwd.create w.Gen.net (Routing.Bgp.of_snapshot snap))
  in
  let fwd' = Fwd.create ~plan w.Gen.net (Routing.Bgp.of_snapshot snap) in
  let rids ss = List.map (fun (s : Fwd.step) -> s.Fwd.rid) ss in
  List.iter
    (fun (vp : Gen.vp) ->
      List.iter
        (fun dst ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s path to %s" vp.vp_name (Ipv4.to_string dst))
            (rids (Fwd.path fwd ~src_rid:vp.vp_rid ~dst ()))
            (rids (Fwd.path fwd' ~src_rid:vp.vp_rid ~dst ()));
          let lid = function None -> -1 | Some (l : Net.link) -> l.Net.lid in
          Alcotest.(check int)
            (Printf.sprintf "%s egress to %s" vp.vp_name (Ipv4.to_string dst))
            (lid (Fwd.egress_link fwd ~rid:vp.vp_rid ~dst))
            (lid (Fwd.egress_link fwd' ~rid:vp.vp_rid ~dst)))
        (List.filteri (fun i _ -> i < 25) (first_addrs w)))
    w.vps;
  (* IGP distances served from the plan match freshly computed ones. *)
  let l = List.hd (Net.interdomain_links w.net) in
  let near = fst l.Net.a in
  List.iter
    (fun (vp : Gen.vp) ->
      let d = Fwd.igp_distance fwd ~from_rid:vp.vp_rid ~to_rid:near in
      let d' = Fwd.igp_distance fwd' ~from_rid:vp.vp_rid ~to_rid:near in
      Alcotest.(check bool) "planned igp distance" true
        (d = d' || abs_float (d -. d') < 1e-9))
    w.vps

let suite =
  [ Alcotest.test_case "paths are connected" `Quick test_paths_connected;
    Alcotest.test_case "paths reach origin AS" `Quick test_paths_reach_origin_as;
    Alcotest.test_case "first hops in host AS" `Quick test_first_hops_in_host;
    Alcotest.test_case "delivery to interface addr" `Quick test_deliver_to_interface;
    Alcotest.test_case "hot potato nearest egress" `Quick test_hot_potato_prefers_near_egress;
    Alcotest.test_case "igp distance" `Quick test_igp_distance_properties;
    Alcotest.test_case "reply iface on router" `Quick test_reply_iface_on_router;
    Alcotest.test_case "selective prefixes pinned" `Quick test_selective_prefix_pinned;
    Alcotest.test_case "frozen plan equivalence" `Quick test_frozen_plan_equivalence ]
