(* Golden-fixture generator: the full pipeline on the fixed-seed tiny
   world, printed as the border map (near|far|neighbor|heuristic lines).
   `dune runtest` diffs this against golden_tiny_links.txt, so any
   change to collection, alias resolution, inference ordering, or the
   fault layer's zero-config path shows up as a reviewable diff;
   `dune promote` accepts an intended change. *)

module Gen = Topogen.Gen

let () =
  let w = Gen.generate Topogen.Scenario.tiny in
  let _bgp, _fwd, engine, inputs = Bdrmap.Pipeline.setup w in
  let vp = List.hd w.Gen.vps in
  let r = Bdrmap.Pipeline.execute engine inputs ~vp in
  print_endline "# border map, scenario=tiny seed=7 vp=0";
  List.iter print_endline
    (Bdrmap.Output.links_to_lines r.Bdrmap.Pipeline.graph
       r.Bdrmap.Pipeline.inference);
  Printf.printf "# probes=%d traces=%d\n"
    (Probesim.Engine.probe_count engine)
    (List.length r.Bdrmap.Pipeline.collection.Bdrmap.Collect.traces)
