(* The packed snapshot (flat route words + next-hop arena in
   GC-invisible Bigarrays) pinned against the lazy boxed evaluator over
   random worlds, plus the raw-byte codec: round-trip identity, and
   typed rejection of corrupted, truncated, and mislabeled entries in
   the lib/store miss style. *)

open Netcore
module Net = Topogen.Net
module Gen = Topogen.Gen
module Bgp = Routing.Bgp
module S = Bgp.Snapshot

let bgp_of (w : Gen.world) =
  Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
    ~selective:w.Gen.selective

(* Route records hold Asn.Set.t values; compare through a projection so
   the checks do not depend on balanced-tree internals. *)
let proj = function
  | None -> None
  | Some (r : Bgp.route) ->
    Some (r.cls, r.dist, Asn.Set.elements r.nexthops, r.parent)

(* Random worlds: the r_and_e preset (the smallest parameterized
   scenario) across random seeds and scales. Worlds are deterministic
   in (scale, seed), so shrinking stays meaningful. *)
let arb_world =
  QCheck.make
    ~print:(fun (scale, seed) -> Printf.sprintf "scale=%.2f seed=%d" scale seed)
    QCheck.Gen.(pair (map (fun n -> 0.3 +. (0.1 *. float_of_int n)) (int_bound 7))
                  (int_bound 10_000))

let prop_packed_equals_boxed =
  QCheck.Test.make ~name:"packed snapshot = boxed evaluator on random worlds"
    ~count:10 arb_world (fun (scale, seed) ->
      let w = Gen.generate (Topogen.Scenario.r_and_e ~scale ~seed ()) in
      let snap = Bgp.freeze (bgp_of w) in
      let boxed = bgp_of w in
      let asns = Asn.Set.elements (Net.asns w.Gen.net) in
      let prefixes = Bgp.prefixes boxed in
      (* route: every (ASN, prefix) cell of the packed matrix decodes to
         the boxed record. *)
      List.for_all
        (fun p ->
          List.for_all
            (fun asn -> proj (S.route snap asn p) = proj (Bgp.route boxed asn p))
            asns)
        prefixes
      (* lookup: LPM resolution agrees on hits, misses and boundaries. *)
      && (let lproj = Option.map (fun (p, r) -> (p, proj r)) in
          let probes =
            Ipv4.of_string_exn "203.0.113.9"
            :: List.concat_map
                 (fun p -> [ Prefix.first p; Prefix.last p ])
                 prefixes
          in
          List.for_all
            (fun addr ->
              lproj (S.lookup snap w.Gen.host_asn addr)
              = lproj (Bgp.lookup boxed w.Gen.host_asn addr))
            probes)
      (* as_path: the packed parent-slot walk reproduces the boxed
         parent chain for every AS in the world. *)
      && List.for_all
           (fun p ->
             List.for_all
               (fun asn -> S.as_path snap asn p = Bgp.as_path boxed asn p)
               asns)
           prefixes)

(* ------------------------------------------------------------------ *)
(* Serialization. *)

let tiny_snapshot =
  lazy (Bgp.freeze (bgp_of (Gen.generate Topogen.Scenario.tiny)))

let err_label = function
  | Ok _ -> "ok"
  | Error e -> S.error_label e

let test_roundtrip () =
  let snap = Lazy.force tiny_snapshot in
  let b = S.to_bytes snap in
  match S.of_bytes b with
  | Error e -> Alcotest.failf "round-trip rejected: %s" (S.error_label e)
  | Ok snap' ->
    Alcotest.(check int) "prefix_count" (S.prefix_count snap) (S.prefix_count snap');
    Alcotest.(check int) "asn_count" (S.asn_count snap) (S.asn_count snap');
    Alcotest.(check int) "arena_length" (S.arena_length snap) (S.arena_length snap');
    Alcotest.(check bool) "prefixes" true (S.prefixes snap' = S.prefixes snap);
    (* Every packed word survives: decode both sides cell by cell. *)
    let np = S.prefix_count snap and na = S.asn_count snap in
    for pslot = 0 to np - 1 do
      for aslot = 0 to na - 1 do
        if S.word snap' ~pslot ~aslot <> S.word snap ~pslot ~aslot then
          Alcotest.failf "word (%d, %d) drifted through the codec" pslot aslot
      done
    done;
    (* The decoded snapshot answers queries like the original. *)
    List.iter
      (fun p ->
        List.iter
          (fun asn ->
            Alcotest.(check bool)
              (Printf.sprintf "route AS%d %s" asn (Prefix.to_string p))
              true
              (proj (S.route snap' asn p) = proj (S.route snap asn p)))
          [ 64500; 64501; 65000 ])
      (S.prefixes snap);
    (* Re-encoding is byte-identical: the codec is canonical. *)
    Alcotest.(check bool) "re-encode is byte-identical" true
      (Bytes.equal (S.to_bytes snap') b)

let expect_error name b expected =
  let got = err_label (S.of_bytes b) in
  Alcotest.(check string) name expected got

let test_corrupted_byte_rejected () =
  let snap = Lazy.force tiny_snapshot in
  let b = S.to_bytes snap in
  (* Flip one payload byte at several depths: the packed words, the
     arena, and the marshaled metadata tail. Every flip must fail the
     digest, never decode to a different snapshot. *)
  List.iter
    (fun frac ->
      let b' = Bytes.copy b in
      let pos = 32 + (frac * (Bytes.length b - 33) / 100) in
      Bytes.set b' pos (Char.chr (Char.code (Bytes.get b' pos) lxor 0x40));
      expect_error (Printf.sprintf "flip at %d%%" frac) b' "corrupt")
    [ 0; 25; 50; 75; 100 ]

let test_truncation_rejected () =
  let snap = Lazy.force tiny_snapshot in
  let b = S.to_bytes snap in
  expect_error "empty" Bytes.empty "truncated";
  expect_error "header only" (Bytes.sub b 0 32) "truncated";
  expect_error "half payload" (Bytes.sub b 0 (Bytes.length b / 2)) "truncated";
  expect_error "one byte short" (Bytes.sub b 0 (Bytes.length b - 1)) "truncated"

let test_bad_magic_and_version () =
  let snap = Lazy.force tiny_snapshot in
  let b = S.to_bytes snap in
  let wrong_magic = Bytes.copy b in
  Bytes.set wrong_magic 0 'X';
  expect_error "wrong magic" wrong_magic "bad magic";
  let wrong_version = Bytes.copy b in
  Bytes.set_int32_be wrong_version 4 99l;
  expect_error "future version" wrong_version "unsupported version 99"

let suite =
  [ Qc.to_alcotest prop_packed_equals_boxed;
    Alcotest.test_case "to_bytes/of_bytes round-trip" `Quick test_roundtrip;
    Alcotest.test_case "corrupted byte rejected" `Quick test_corrupted_byte_rejected;
    Alcotest.test_case "truncation rejected" `Quick test_truncation_rejected;
    Alcotest.test_case "bad magic / bad version rejected" `Quick
      test_bad_magic_and_version ]
