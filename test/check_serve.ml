(* check-serve: the query service end to end as a golden artifact. A
   scale-0.15 world's all-VP merged map is served in-process (server on
   its own domain, metrics enabled), a deterministic scripted batch of
   owner/crossings/provenance/stats queries goes over the wire, and the
   answers land on stdout for the golden diff. The per-frame serve
   counters must then be visible in a rendered manifest
   (serve_manifest.json) and the METRICS opcode's exposition must be a
   terminated OpenMetrics document (serve_metrics.txt) — the dune rule
   greps both. *)

open Netcore
module Gen = Topogen.Gen

let scale = 0.15

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("check_serve: " ^ m); exit 1) fmt

let check = function
  | Ok v -> v
  | Error e -> die "%s" (Serve.Protocol.error_label e)

let () =
  Obs.Metrics.enable ();
  let w = Gen.generate (Topogen.Scenario.small_access ~scale ()) in
  let shared = Bdrmap.Pipeline.freeze_routing w in
  let snapshot = shared.Bdrmap.Pipeline.snapshot in
  let bgp = Routing.Bgp.of_snapshot snapshot in
  let inputs = Bdrmap.Pipeline.inputs_of_world w bgp in
  let runs = Bdrmap.Pipeline.execute_all ~shared w inputs ~vps:w.Gen.vps in
  let merged =
    Bdrmap.Aggregate.merge_runs
      (List.map2
         (fun (vp : Gen.vp) (r : Bdrmap.Pipeline.run) ->
           (vp.Gen.vp_name, r.Bdrmap.Pipeline.graph, r.Bdrmap.Pipeline.inference))
         w.Gen.vps runs)
  in
  let mapfile = Bdrmap.Mapfile.make ~host_asns:w.Gen.siblings ~bgp merged in
  let qmap = Serve.Qmap.build ~snapshot mapfile in
  let exposition () =
    match Obs.Json.parse (Obs.Manifest.render ~command:"check-serve" ~scale ~jobs:1 ()) with
    | Error _ -> "# EOF\n"
    | Ok j -> (
      match Obs.Openmetrics.of_manifest j with Ok t -> t | Error _ -> "# EOF\n")
  in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bdrmap-check-serve-%d.sock" (Unix.getpid ()))
  in
  let server = Serve.Server.create ~exposition ~path qmap in
  let domain = Domain.spawn (fun () -> Serve.Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Domain.join domain)
    (fun () ->
      let c = check (Serve.Client.connect path) in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          (* The scripted batch: every border address in address order,
             plus one address the map cannot know. *)
          let border =
            Ipv4.Set.elements
              (List.fold_left
                 (fun acc (m : Bdrmap.Aggregate.merged) ->
                   Ipv4.Set.union acc
                     (Ipv4.Set.union m.Bdrmap.Aggregate.near_addrs
                        m.Bdrmap.Aggregate.far_addrs))
                 Ipv4.Set.empty mapfile.Bdrmap.Mapfile.merged)
          in
          let probes = border @ [ Ipv4.of_string_exn "8.8.8.8" ] in
          Printf.printf "world: %d border addresses, host AS%d\n" (List.length border)
            (Serve.Qmap.host_asn qmap);
          List.iter2
            (fun a owner ->
              if owner = 0 then Printf.printf "owner %s unknown\n" (Ipv4.to_string a)
              else Printf.printf "owner %s AS%d\n" (Ipv4.to_string a) owner)
            probes
            (check (Serve.Client.owner_batch c probes));
          let neighbors =
            Asn.Set.elements
              (List.fold_left
                 (fun acc (m : Bdrmap.Aggregate.merged) ->
                   Asn.Set.add m.Bdrmap.Aggregate.neighbor acc)
                 Asn.Set.empty mapfile.Bdrmap.Mapfile.merged)
          in
          let host = Serve.Qmap.host_asn qmap in
          List.iter
            (fun nb ->
              Printf.printf "crossings AS%d AS%d:\n" host nb;
              List.iter (Printf.printf "  %s\n")
                (check (Serve.Client.crossings c host nb)))
            neighbors;
          List.iter
            (fun a ->
              match check (Serve.Client.provenance c a) with
              | Some line -> Printf.printf "%s\n" line
              | None -> Printf.printf "provenance %s unknown\n" (Ipv4.to_string a))
            probes;
          let s = check (Serve.Client.stats c) in
          Printf.printf "stats: %d queries, %d requests, %d connections, %d errors\n"
            s.Serve.Client.queries s.Serve.Client.requests
            s.Serve.Client.connections s.Serve.Client.errors;
          (* The exposition answered over the wire — kept out of the
             golden (it carries wall-clock) and grepped instead. *)
          let text = check (Serve.Client.metrics_text c) in
          let oc = open_out "serve_metrics.txt" in
          output_string oc text;
          close_out oc));
  (* The manifest rendered after serving: the per-frame serve counters
     recorded on the server domain must be visible here. *)
  Obs.Manifest.write ~path:"serve_manifest.json" ~command:"check-serve" ~scale
    ~jobs:1 ()
