(* Serialization round-trips for collections and inferred links. *)

module Gen = Topogen.Gen
open Netcore

let run = lazy (
  let w = Gen.generate Topogen.Scenario.tiny in
  let _bgp, _fwd, engine, inputs = Bdrmap.Pipeline.setup w in
  let vp = List.hd w.vps in
  (w, inputs, Bdrmap.Pipeline.execute engine inputs ~vp))

let test_collection_roundtrip () =
  let _, _, r = Lazy.force run in
  let lines = Bdrmap.Output.collection_to_lines r.collection in
  match Bdrmap.Output.collection_of_lines lines with
  | Error e -> Alcotest.fail e
  | Ok c ->
    Alcotest.(check int) "traces preserved"
      (List.length r.collection.traces)
      (List.length c.traces);
    Alcotest.(check int) "mates preserved"
      (List.length r.collection.mates)
      (List.length c.mates);
    Alcotest.(check int) "icmp preserved"
      (List.length r.collection.other_icmp)
      (List.length c.other_icmp);
    List.iter2
      (fun (t1 : Bdrmap.Trace.t) (t2 : Bdrmap.Trace.t) ->
        Alcotest.(check string) "dst" (Ipv4.to_string t1.dst) (Ipv4.to_string t2.dst);
        Alcotest.(check int) "target" t1.target_asn t2.target_asn;
        Alcotest.(check int) "hops" (List.length t1.hops) (List.length t2.hops);
        Alcotest.(check bool) "stopped" t1.stopped t2.stopped)
      r.collection.traces c.traces

let test_inference_stable_after_roundtrip () =
  let _, inputs, r = Lazy.force run in
  let lines = Bdrmap.Output.collection_to_lines r.collection in
  match Bdrmap.Output.collection_of_lines lines with
  | Error e -> Alcotest.fail e
  | Ok c ->
    let g = Bdrmap.Rgraph.build c in
    let inf = Bdrmap.Heuristics.infer r.cfg r.ip2as ~rels:inputs.rels g c in
    Alcotest.(check int) "same number of links"
      (List.length r.inference.links)
      (List.length inf.links);
    let key (l : Bdrmap.Heuristics.border_link) =
      (l.neighbor, Bdrmap.Heuristics.tag_label l.tag)
    in
    Alcotest.(check bool) "same neighbor/tag multiset" true
      (List.sort compare (List.map key r.inference.links)
      = List.sort compare (List.map key inf.links))

let test_links_roundtrip () =
  let _, _, r = Lazy.force run in
  let lines = Bdrmap.Output.links_to_lines r.graph r.inference in
  match Bdrmap.Output.links_of_lines lines with
  | Error e -> Alcotest.fail e
  | Ok records ->
    Alcotest.(check int) "links preserved" (List.length r.inference.links)
      (List.length records);
    List.iter2
      (fun (l : Bdrmap.Heuristics.border_link) (rec_ : Bdrmap.Output.link_record) ->
        Alcotest.(check int) "neighbor" l.neighbor rec_.neighbor;
        Alcotest.(check string) "tag" (Bdrmap.Output.tag_slug l.tag)
          (Bdrmap.Output.tag_slug rec_.tag))
      r.inference.links records

let test_tag_slug_roundtrip () =
  List.iter
    (fun tag ->
      Alcotest.(check bool)
        (Bdrmap.Output.tag_slug tag)
        true
        (Bdrmap.Output.tag_of_slug (Bdrmap.Output.tag_slug tag) = Some tag))
    [ Bdrmap.Heuristics.T1_multihomed; Bdrmap.Heuristics.T2_firewall;
      Bdrmap.Heuristics.T3_unrouted; Bdrmap.Heuristics.T4_onenet;
      Bdrmap.Heuristics.T5_third_party; Bdrmap.Heuristics.T5_relationship;
      Bdrmap.Heuristics.T5_missing_customer; Bdrmap.Heuristics.T5_hidden_peer;
      Bdrmap.Heuristics.T6_count; Bdrmap.Heuristics.T6_ipas;
      Bdrmap.Heuristics.T8_silent; Bdrmap.Heuristics.T8_other_icmp ];
  Alcotest.(check bool) "unknown slug" true (Bdrmap.Output.tag_of_slug "nope" = None)

let test_parse_errors () =
  Alcotest.(check bool) "bad trace line" true
    (Result.is_error (Bdrmap.Output.collection_of_lines [ "trace|x|y" ]));
  Alcotest.(check bool) "bad link line" true
    (Result.is_error (Bdrmap.Output.links_of_lines [ "link|1.2.3.4" ]));
  Alcotest.(check bool) "comments ok" true
    (Result.is_ok (Bdrmap.Output.collection_of_lines [ "# empty"; "" ]))

let suite =
  [ Alcotest.test_case "collection roundtrip" `Quick test_collection_roundtrip;
    Alcotest.test_case "inference stable after roundtrip" `Quick
      test_inference_stable_after_roundtrip;
    Alcotest.test_case "links roundtrip" `Quick test_links_roundtrip;
    Alcotest.test_case "tag slug roundtrip" `Quick test_tag_slug_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors ]
