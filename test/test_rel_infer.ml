open Netcore
open Bgpdata

(* A small hierarchy: 10 and 11 are Tier-1 peers; 20, 21 are transit
   providers buying from them; 30-33 are stubs buying from 20/21; 34/36
   buy directly from 10, 35/37 from 11. Collector paths are valley-free
   routes seen at collectors peering with 10 and 11, so the Tier-1s have
   the highest transit degree as in real collector data. *)
let paths : As_path.t list =
  [ [ 10; 20; 30 ];
    [ 10; 20; 31 ];
    [ 10; 34 ];
    [ 10; 36 ];
    [ 10; 11; 21; 32 ];
    [ 10; 11; 21; 33 ];
    [ 10; 11; 35 ];
    [ 10; 11; 37 ];
    [ 11; 21; 32 ];
    [ 11; 21; 33 ];
    [ 11; 35 ];
    [ 11; 37 ];
    [ 11; 10; 20; 30 ];
    [ 11; 10; 20; 31 ];
    [ 11; 10; 34 ];
    [ 11; 10; 36 ];
    [ 10; 20; 30; 30; 30 ];
    (* prepended *)
    [ 11; 21; 33 ] ]

let test_transit_degree () =
  let td = Rel_infer.transit_degree paths in
  let deg a = Option.value ~default:0 (Asn.Map.find_opt a td) in
  Alcotest.(check bool) "transit ASes have transit degree" true (deg 20 >= 3 && deg 21 >= 3);
  Alcotest.(check int) "stub has zero transit degree" 0 (deg 30);
  Alcotest.(check bool) "tier1 transits" true (deg 10 >= 2 && deg 11 >= 2)

let test_clique () =
  let clique = Rel_infer.infer_clique paths in
  Alcotest.(check bool) "clique contains both tier1s" true
    (Asn.Set.mem 10 clique && Asn.Set.mem 11 clique);
  Alcotest.(check bool) "stubs not in clique" true
    (not (Asn.Set.mem 30 clique || Asn.Set.mem 33 clique))

let test_infer_relationships () =
  let rels = Rel_infer.infer paths in
  Alcotest.(check bool) "tier1s are peers" true (As_rel.is_peer rels 10 11);
  Alcotest.(check bool) "20 customer of 10" true
    (As_rel.is_provider_of rels ~provider:10 ~customer:20);
  Alcotest.(check bool) "21 customer of 11" true
    (As_rel.is_provider_of rels ~provider:11 ~customer:21);
  Alcotest.(check bool) "30 customer of 20" true
    (As_rel.is_provider_of rels ~provider:20 ~customer:30);
  Alcotest.(check bool) "33 customer of 21" true
    (As_rel.is_provider_of rels ~provider:21 ~customer:33);
  Alcotest.(check bool) "no inverted relationship" false
    (As_rel.is_provider_of rels ~provider:30 ~customer:20)

let test_loops_dropped () =
  let td = Rel_infer.transit_degree [ [ 1; 2; 1; 3 ] ] in
  Alcotest.(check int) "looped path ignored" 0 (Asn.Map.cardinal td)

let test_hidden_links_absent () =
  (* A p2p link between 20 and 21 that never appears in collector paths
     must be absent from the inference: this is the "hidden peer" input
     condition that bdrmap's heuristic 5.5 handles downstream. *)
  let rels = Rel_infer.infer paths in
  Alcotest.(check bool) "hidden p2p absent" false (As_rel.known rels 20 21)

let test_with_known_clique () =
  let rels = Rel_infer.infer_with_clique (Asn.Set.of_list [ 10; 11 ]) paths in
  Alcotest.(check bool) "same result with supplied clique" true (As_rel.is_peer rels 10 11)

let suite =
  [ Alcotest.test_case "transit degree" `Quick test_transit_degree;
    Alcotest.test_case "clique inference" `Quick test_clique;
    Alcotest.test_case "relationship inference" `Quick test_infer_relationships;
    Alcotest.test_case "loops dropped" `Quick test_loops_dropped;
    Alcotest.test_case "hidden links absent" `Quick test_hidden_links_absent;
    Alcotest.test_case "supplied clique" `Quick test_with_known_clique ]
