open Netcore
module Gen = Topogen.Gen
module Ag = Bdrmap.Aggregate

let ip = Ipv4.of_string_exn

let rec_ near far neighbor tag =
  { Bdrmap.Output.near_addrs = List.map ip near;
    far_addrs = List.map ip far;
    neighbor;
    tag }

let test_merge_same_link () =
  let runs =
    [ { Ag.vp_name = "vp1";
        links = [ rec_ [ "81.0.0.1" ] [ "82.0.0.9" ] 65001 Bdrmap.Heuristics.T4_onenet ] };
      { Ag.vp_name = "vp2";
        links =
          [ rec_ [ "81.0.0.1"; "81.0.0.3" ] [ "82.0.0.9"; "82.0.1.9" ] 65001
              Bdrmap.Heuristics.T5_relationship ] } ]
  in
  let merged = Ag.merge runs in
  Alcotest.(check int) "one merged link" 1 (List.length merged);
  let m = List.hd merged in
  Alcotest.(check (list string)) "seen by both" [ "vp1"; "vp2" ] m.Ag.seen_by;
  Alcotest.(check int) "far addrs unioned" 2 (Ipv4.Set.cardinal m.Ag.far_addrs);
  Alcotest.(check int) "both tags kept" 2 (List.length m.Ag.tags)

let test_distinct_links_stay_apart () =
  let runs =
    [ { Ag.vp_name = "vp1";
        links =
          [ rec_ [ "81.0.0.1" ] [ "82.0.0.9" ] 65001 Bdrmap.Heuristics.T4_onenet;
            rec_ [ "81.0.0.5" ] [ "82.0.5.9" ] 65001 Bdrmap.Heuristics.T4_onenet;
            rec_ [ "81.0.0.1" ] [ "83.0.0.9" ] 65002 Bdrmap.Heuristics.T4_onenet ] } ]
  in
  Alcotest.(check int) "three distinct links" 3 (List.length (Ag.merge runs))

let test_silent_links_match_on_near () =
  let runs =
    [ { Ag.vp_name = "vp1";
        links = [ rec_ [ "81.0.0.1" ] [] 65001 Bdrmap.Heuristics.T8_silent ] };
      { Ag.vp_name = "vp2";
        links = [ rec_ [ "81.0.0.1" ] [] 65001 Bdrmap.Heuristics.T8_silent ] } ]
  in
  let merged = Ag.merge runs in
  Alcotest.(check int) "silent links merged" 1 (List.length merged);
  Alcotest.(check int) "two observers" 2 (List.length (List.hd merged).Ag.seen_by)

let test_per_neighbor () =
  let runs =
    [ { Ag.vp_name = "vp1";
        links =
          [ rec_ [ "81.0.0.1" ] [ "82.0.0.9" ] 65001 Bdrmap.Heuristics.T4_onenet;
            rec_ [ "81.0.0.5" ] [ "82.0.5.9" ] 65001 Bdrmap.Heuristics.T4_onenet;
            rec_ [ "81.0.0.7" ] [ "83.0.0.9" ] 65002 Bdrmap.Heuristics.T4_onenet ] } ]
  in
  Alcotest.(check (list (pair int int))) "counts" [ (65001, 2); (65002, 1) ]
    (Ag.per_neighbor (Ag.merge runs))

let test_marginal_utility () =
  let runs =
    [ { Ag.vp_name = "vp1";
        links = [ rec_ [ "81.0.0.1" ] [ "82.0.0.9" ] 65001 Bdrmap.Heuristics.T4_onenet ] };
      { Ag.vp_name = "vp2";
        links =
          [ rec_ [ "81.0.0.1" ] [ "82.0.0.9" ] 65001 Bdrmap.Heuristics.T4_onenet;
            rec_ [ "81.0.0.5" ] [ "82.0.5.9" ] 65001 Bdrmap.Heuristics.T4_onenet ] } ]
  in
  let merged = Ag.merge runs in
  Alcotest.(check (list int)) "cumulative" [ 1; 2 ]
    (Ag.marginal_utility ~vp_order:[ "vp1"; "vp2" ] merged)

(* End-to-end: merge real runs from two VPs of the tiny world. *)
let test_merge_real_runs () =
  let w = Gen.generate Topogen.Scenario.tiny in
  let _bgp, _fwd, engine, inputs = Bdrmap.Pipeline.setup w in
  let runs =
    List.filteri (fun i _ -> i < 2) w.vps
    |> List.map (fun vp ->
           let r = Bdrmap.Pipeline.execute engine inputs ~vp in
           Ag.of_run vp.Gen.vp_name r.Bdrmap.Pipeline.graph r.Bdrmap.Pipeline.inference)
  in
  let merged = Ag.merge runs in
  let individual = List.fold_left (fun n r -> n + List.length r.Ag.links) 0 runs in
  Alcotest.(check bool) "merging deduplicates" true (List.length merged <= individual);
  Alcotest.(check bool) "some links shared across VPs" true
    (List.exists (fun m -> List.length m.Ag.seen_by = 2) merged);
  Alcotest.(check bool) "nondecreasing marginal utility" true
    (let mu =
       Ag.marginal_utility
         ~vp_order:(List.map (fun r -> r.Ag.vp_name) runs)
         merged
     in
     List.sort compare mu = mu)

let suite =
  [ Alcotest.test_case "merge same link" `Quick test_merge_same_link;
    Alcotest.test_case "distinct links stay apart" `Quick test_distinct_links_stay_apart;
    Alcotest.test_case "silent links match on near" `Quick test_silent_links_match_on_near;
    Alcotest.test_case "per neighbor" `Quick test_per_neighbor;
    Alcotest.test_case "marginal utility" `Quick test_marginal_utility;
    Alcotest.test_case "merge real runs" `Quick test_merge_real_runs ]
