(* Seed-replayable QCheck -> Alcotest adapter. The stock
   [QCheck_alcotest.to_alcotest] self-initializes its generator state
   and only mentions the seed in a verbose-mode line that Alcotest
   swallows into its per-test log, so a failing property in CI is not
   reproducible one command later. Every property in this suite goes
   through this wrapper instead: one process-wide seed, taken from
   QCHECK_SEED when set and drawn randomly otherwise, with the exact
   replay recipe printed to stderr the moment a property fails. *)

let seed =
  lazy
    (match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
    | Some s -> s
    | None ->
      Random.self_init ();
      Random.int 1_000_000_000)

let to_alcotest test =
  let name, speed, run =
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| Lazy.force seed |])
      test
  in
  ( name,
    speed,
    fun x ->
      try run x
      with e ->
        Printf.eprintf
          "\nqcheck: property %S failed; replay with QCHECK_SEED=%d dune \
           runtest --force\n\
           %!"
          name (Lazy.force seed);
        raise e )
