(* Temporal churn: every evolution event class applied to a small
   world, with the incremental re-freeze (Bgp.refreeze + Lpm patching +
   Forwarding.patch) pinned byte-identical to a from-scratch freeze of
   the evolved world — packed words, arena, every LPM answer, every
   IGP row and egress cell. Plus a QCheck property chaining random
   multi-class event batches across epochs, shrinking to one seed. *)

open Netcore
module Gen = Topogen.Gen
module Evolve = Topogen.Evolve
module Bgp = Routing.Bgp
module Fwd = Routing.Forwarding

let fresh_bgp (w : Gen.world) =
  Bgp.create w.Gen.net w.Gen.rels_truth ~originated:(Gen.originated w)
    ~selective:w.Gen.selective

let base_world () =
  Gen.generate (Topogen.Scenario.small_access ~scale:0.15 ())

(* Freeze the pre-churn routing state: snapshot plus forwarding plan. *)
let freeze_world (w : Gen.world) =
  let snap = Bgp.freeze (fresh_bgp w) in
  let fwd = Fwd.create w.Gen.net (Bgp.of_snapshot snap) in
  let plan = Fwd.freeze ~egress_for:w.Gen.siblings fwd in
  (snap, plan)

(* [force] draws its site from the seed; eligibility does not. Scan a
   few seeds so classes whose site choice can collide (e.g. aggregate
   needs an adjacent same-length sibling pair) still land. *)
let force_kind kind w =
  let rec go seed =
    if seed > 50 then None
    else
      match Evolve.force ~seed kind w with
      | Some r -> Some r
      | None -> go (seed + 1)
  in
  go 1

let check_equal_snapshots ~what scratch patched =
  match Bgp.Snapshot.equal scratch patched with
  | Ok () -> ()
  | Error m -> Alcotest.fail (what ^ ": snapshot diverged: " ^ m)

let check_equal_plans ~what splan plan =
  match Fwd.plan_equal ~scratch:splan ~patched:plan with
  | Ok () -> ()
  | Error m -> Alcotest.fail (what ^ ": plan diverged: " ^ m)

(* Apply one forced event of [kind]; incremental refreeze + plan patch
   must match a scratch freeze of the evolved world exactly.
   [expect_dirty] pins the per-class dirtiness contract where it is
   deterministic. *)
let test_class ?expect_dirty kind () =
  let w = base_world () in
  let old_snap, old_plan = freeze_world w in
  match force_kind kind w with
  | None ->
    Alcotest.fail
      (Evolve.kind_label kind ^ ": no eligible site in the base world")
  | Some (w', te) ->
    Alcotest.(check string)
      "forced event has the requested class"
      (Evolve.kind_label kind)
      (Evolve.kind_label (Evolve.kind_of te.Evolve.ev));
    let churn = Bgp.churn_of_events [ te ] in
    let snap, stats = Bgp.refreeze (fresh_bgp w') ~old:old_snap churn in
    Alcotest.(check bool) "no full-recompute fallback" false
      stats.Bgp.rf_fallback;
    Option.iter
      (fun d ->
        Alcotest.(check int) "dirty prefix count" d stats.Bgp.rf_dirty)
      expect_dirty;
    let scratch =
      Bgp.freeze ~counter:"routing.snapshot.scratch_builds" (fresh_bgp w')
    in
    check_equal_snapshots ~what:(Evolve.kind_label kind) scratch snap;
    let fwd = Fwd.create w'.Gen.net (Bgp.of_snapshot snap) in
    let plan =
      Fwd.patch ~egress_for:w'.Gen.siblings fwd ~old:old_plan ~churn
        ~dirty:stats.Bgp.rf_dirty_prefixes
    in
    let sfwd = Fwd.create w'.Gen.net (Bgp.of_snapshot scratch) in
    let splan = Fwd.freeze ~egress_for:w'.Gen.siblings sfwd in
    check_equal_plans ~what:(Evolve.kind_label kind) splan plan

(* The zero-churn strict no-op: an empty batch patches nothing and the
   result is indistinguishable from the old snapshot. *)
let test_zero_churn () =
  let w = base_world () in
  let old_snap, old_plan = freeze_world w in
  let snap, stats = Bgp.refreeze (fresh_bgp w) ~old:old_snap Bgp.no_churn in
  Alcotest.(check int) "nothing re-propagated" 0 stats.Bgp.rf_dirty;
  Alcotest.(check bool) "no fallback" false stats.Bgp.rf_fallback;
  check_equal_snapshots ~what:"zero churn" old_snap snap;
  let fwd = Fwd.create w.Gen.net (Bgp.of_snapshot snap) in
  let plan =
    Fwd.patch ~egress_for:w.Gen.siblings fwd ~old:old_plan ~churn:Bgp.no_churn
      ~dirty:[]
  in
  check_equal_plans ~what:"zero churn" old_plan plan;
  Alcotest.(check string) "empty batch leaves the epoch digest alone"
    "prev-digest"
    (Evolve.log_digest "prev-digest" [])

(* The schedule validator fails fast on nonsense. *)
let test_schedule_validation () =
  Evolve.validate_schedule Evolve.default_schedule;
  let bad f =
    match Evolve.validate_schedule (f Evolve.default_schedule) with
    | () -> Alcotest.fail "invalid schedule accepted"
    | exception Invalid_argument _ -> ()
  in
  bad (fun s -> { s with Evolve.ev_epochs = -1 });
  bad (fun s -> { s with Evolve.ev_batch = -1 });
  bad (fun s -> { s with Evolve.ev_interval = 0.0 });
  bad (fun s -> { s with Evolve.w_link_add = -1.0 });
  bad (fun s ->
      { s with
        Evolve.w_link_add = 0.0;
        w_link_remove = 0.0;
        w_new_customer = 0.0;
        w_depeer = 0.0;
        w_aggregate = 0.0;
        w_deaggregate = 0.0
      })

(* -- Property: random event sequences over random worlds -- *)

let fuzz_arb = QCheck.(make ~print:Print.int Gen.(int_bound 1_000_000))

(* API-level equivalence on top of Snapshot.equal: every (asn, prefix)
   route and as_path, and the lookup at each prefix's first address,
   answered identically by the incremental and scratch snapshots. *)
let check_api_equiv inc scr =
  let asns =
    List.init (Bgp.Snapshot.asn_count inc) (Bgp.Snapshot.asn_of_slot inc)
  in
  let pfx = Bgp.Snapshot.prefixes inc in
  List.iter
    (fun a ->
      List.iter
        (fun p ->
          if Bgp.Snapshot.route inc a p <> Bgp.Snapshot.route scr a p then
            QCheck.Test.fail_reportf "route AS%d %s differs" a
              (Prefix.to_string p);
          if Bgp.Snapshot.as_path inc a p <> Bgp.Snapshot.as_path scr a p then
            QCheck.Test.fail_reportf "as_path AS%d %s differs" a
              (Prefix.to_string p);
          let addr = Prefix.first p in
          if Bgp.Snapshot.lookup inc a addr <> Bgp.Snapshot.lookup scr a addr
          then
            QCheck.Test.fail_reportf "lookup AS%d %s differs" a
              (Ipv4.to_string addr))
        pfx)
    asns

let prop_random_churn =
  QCheck.Test.make
    ~name:"random churn: incremental refreeze = scratch freeze, every epoch"
    ~count:8 fuzz_arb
    (fun fseed ->
      let st = Random.State.make [| fseed |] in
      let wseed = Random.State.int st 100_000 in
      let w =
        Gen.generate (Topogen.Scenario.small_access ~scale:0.15 ~seed:wseed ())
      in
      let schedule =
        { Evolve.default_schedule with
          Evolve.ev_seed = Random.State.int st 100_000;
          ev_epochs = 2;
          ev_batch = 4
        }
      in
      let world = ref w in
      let snap = ref (Bgp.freeze (fresh_bgp w)) in
      let plan =
        ref
          (Fwd.freeze ~egress_for:w.Gen.siblings
             (Fwd.create w.Gen.net (Bgp.of_snapshot !snap)))
      in
      for e = 1 to schedule.Evolve.ev_epochs do
        let w', events = Evolve.advance schedule ~epoch:e !world in
        world := w';
        let churn = Bgp.churn_of_events events in
        let s, stats = Bgp.refreeze (fresh_bgp w') ~old:!snap churn in
        let scratch =
          Bgp.freeze ~counter:"routing.snapshot.scratch_builds" (fresh_bgp w')
        in
        (match Bgp.Snapshot.equal scratch s with
        | Ok () -> ()
        | Error m -> QCheck.Test.fail_reportf "epoch %d: %s" e m);
        check_api_equiv s scratch;
        let fwd = Fwd.create w'.Gen.net (Bgp.of_snapshot s) in
        let p =
          Fwd.patch ~egress_for:w'.Gen.siblings fwd ~old:!plan ~churn
            ~dirty:stats.Bgp.rf_dirty_prefixes
        in
        let sfwd = Fwd.create w'.Gen.net (Bgp.of_snapshot scratch) in
        let sp = Fwd.freeze ~egress_for:w'.Gen.siblings sfwd in
        (match Fwd.plan_equal ~scratch:sp ~patched:p with
        | Ok () -> ()
        | Error m -> QCheck.Test.fail_reportf "epoch %d plan: %s" e m);
        snap := s;
        plan := p
      done;
      true)

let suite =
  [ Alcotest.test_case "zero churn is a strict no-op" `Quick test_zero_churn;
    Alcotest.test_case "schedule validation" `Quick test_schedule_validation;
    Alcotest.test_case "link add" `Quick
      (test_class ~expect_dirty:0 Evolve.Link_add);
    Alcotest.test_case "link remove" `Quick
      (test_class ~expect_dirty:0 Evolve.Link_remove);
    Alcotest.test_case "new customer" `Quick
      (test_class ~expect_dirty:1 Evolve.New_customer);
    Alcotest.test_case "depeer" `Quick (test_class Evolve.Depeer);
    Alcotest.test_case "aggregate" `Quick
      (test_class ~expect_dirty:1 Evolve.Aggregate);
    Alcotest.test_case "deaggregate" `Quick
      (test_class ~expect_dirty:2 Evolve.Deaggregate);
    Qc.to_alcotest prop_random_churn ]
