(* Property-based world fuzzer: random generator parameters (bounded
   small, pathology knobs anywhere in their domain) through the FULL
   pipeline, asserting structural invariants on every world. The
   QCheck input is a single fuzz seed; all parameter diversity derives
   from it through a private PRNG, so a failure shrinks to one integer
   and replays with the QCHECK_SEED recipe printed by [Qc]. *)

open Netcore
module Gen = Topogen.Gen
module Net = Topogen.Net
module H = Bdrmap.Heuristics

let with_metrics f =
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.reset ();
      Obs.Metrics.disable ())
    f

(* Worlds stay tiny (a few dozen routers) so 50+ full pipeline runs fit
   the test budget; knob extremes, not size, are what the fuzzer
   explores. [n_tier1 >= 1] and [host_cities >= 1] keep the draws
   inside the generator's documented domain — the boundary rejections
   themselves are unit-tested in [Test_gen_bounds]. *)
let params_of_fuzz fseed =
  let st = Random.State.make [| fseed |] in
  let i lo hi = lo + Random.State.int st (hi - lo + 1) in
  let f hi = Random.State.float st hi in
  { Gen.name = Printf.sprintf "fuzz-%d" fseed;
    seed = i 0 99_999;
    host_kind = (match i 0 2 with 0 -> Net.Access | 1 -> Net.Ree | _ -> Net.Tier1);
    host_cities = i 1 4;
    host_sibling_count = i 0 2;
    n_tier1 = i 1 3;
    n_transit = i 0 3;
    n_ixp = i 0 2;
    host_ixp_count = i 0 2;
    n_host_providers = i 0 3;
    n_host_peers = i 0 2;
    n_host_ixp_peers = i 0 3;
    n_host_customers = i 0 8;
    big_peer_links = i 0 3;
    n_cdn_peers = i 0 2;
    n_remote = i 0 6;
    n_vps = i 0 3;
    avg_cust_links = 1.0 +. f 1.0;
    p_cust_firewall = f 1.0;
    p_cust_silent = f 0.5;
    p_cust_echo_only = f 0.3;
    p_third_party = f 0.3;
    p_unrouted_infra = f 1.0;
    p_pa_infra = f 1.0;
    p_multihomed_pair = f 1.0;
    p_ipid_shared = f 1.0;
    p_ipid_periface = f 0.5;
    p_ipid_random = f 0.5;
    p_udp_canonical = f 1.0;
    p_vrouter = f 1.0;
    p_moas = f 1.0;
    p_ixp_member = f 1.0;
    p_sibling_hidden = f 1.0;
    p_hijack = f 1.0;
    fault = Gen.zero_fault }

let fuzz_arb = QCheck.(make ~print:Print.int Gen.(int_bound 1_000_000))

let run_lines (r : Bdrmap.Pipeline.run) =
  Bdrmap.Output.links_to_lines r.Bdrmap.Pipeline.graph
    r.Bdrmap.Pipeline.inference

let owned_count (r : Bdrmap.Pipeline.run) =
  List.length
    (List.filter
       (fun (ri : H.router_inference) -> ri.H.owner <> H.Unknown)
       r.Bdrmap.Pipeline.inference.H.routers)

(* The consistency invariants every generated world must satisfy after
   a full serial sweep:
   - [published_siblings] is a host-containing subset of the truth;
   - every border link anchors on routers the heuristics actually
     owned: near side Host_router, far side a Neighbor of the link's
     neighbor AS (silent placements carry no far node);
   - per-heuristic fire counters sum to exactly the owned routers;
   - merging duplicated per-VP observations adds no links (the
     aggregate merge is idempotent on its input set). *)
let prop_world_invariants =
  QCheck.Test.make ~name:"fuzzed world: pipeline invariants" ~count:50
    fuzz_arb
    (fun fseed ->
      let p = params_of_fuzz fseed in
      Gen.validate_params p;
      let w = Gen.generate p in
      if not (Asn.Set.subset w.Gen.published_siblings w.Gen.siblings) then
        QCheck.Test.fail_report "published siblings not a subset of truth";
      if not (Asn.Set.mem w.Gen.host_asn w.Gen.published_siblings) then
        QCheck.Test.fail_report "host AS hidden from published siblings";
      let _bgp, _fwd, _engine, inputs = Bdrmap.Pipeline.setup w in
      let runs =
        with_metrics (fun () ->
            let runs = Bdrmap.Pipeline.execute_all w inputs ~vps:w.Gen.vps in
            let owned =
              List.fold_left (fun acc r -> acc + owned_count r) 0 runs
            in
            let prefix = "heuristics.fire." in
            let fired =
              List.fold_left
                (fun acc (name, v) ->
                  match v with
                  | Obs.Metrics.Counter n
                    when String.length name > String.length prefix
                         && String.sub name 0 (String.length prefix) = prefix
                    ->
                    acc + n
                  | _ -> acc)
                0 (Obs.Metrics.collect ())
            in
            if owned <> fired then
              QCheck.Test.fail_reportf
                "fire counts sum to %d but %d routers owned" fired owned;
            runs)
      in
      List.iter
        (fun (r : Bdrmap.Pipeline.run) ->
          let res = r.Bdrmap.Pipeline.inference in
          List.iter
            (fun (l : H.border_link) ->
              (match l.H.near_node with
              | Some id ->
                if H.owner_of res id <> H.Host_router then
                  QCheck.Test.fail_report
                    "border link near side not owned by the host"
              | None -> ());
              match l.H.far_node with
              | Some id -> (
                match H.owner_of res id with
                | H.Neighbor (asn, _) ->
                  if not (Asn.equal asn l.H.neighbor) then
                    QCheck.Test.fail_report
                      "far router owned by a different AS than its link"
                | _ ->
                  QCheck.Test.fail_report
                    "border link far side not owned by a neighbor")
              | None -> ())
            res.H.links)
        runs;
      let vls =
        Bdrmap.Aggregate.of_runs
          (List.map2
             (fun (vp : Gen.vp) (r : Bdrmap.Pipeline.run) ->
               (vp.Gen.vp_name, r.Bdrmap.Pipeline.graph,
                r.Bdrmap.Pipeline.inference))
             w.Gen.vps runs)
      in
      let key (m : Bdrmap.Aggregate.merged) =
        ( m.Bdrmap.Aggregate.neighbor,
          Ipv4.Set.elements m.Bdrmap.Aggregate.near_addrs,
          Ipv4.Set.elements m.Bdrmap.Aggregate.far_addrs )
      in
      let links_of vls =
        List.sort compare (List.map key (Bdrmap.Aggregate.merge vls))
      in
      if links_of vls <> links_of (vls @ vls) then
        QCheck.Test.fail_report
          "merging duplicated observations changed the aggregate";
      true)

(* Fixed fuzz seed, serial sweep vs a 3-domain pool: the full pipeline
   output must be byte-identical. This is the fuzzer's arm of the
   repo-wide any-[-j] determinism invariant. *)
let prop_pool_identity =
  QCheck.Test.make ~name:"fuzzed world: -j1 and pooled sweeps identical"
    ~count:10 fuzz_arb
    (fun fseed ->
      let p = params_of_fuzz fseed in
      let w = Gen.generate p in
      let _bgp, _fwd, _engine, inputs = Bdrmap.Pipeline.setup w in
      let serial = Bdrmap.Pipeline.execute_all w inputs ~vps:w.Gen.vps in
      let pooled =
        Pool.with_pool ~domains:3 (fun pool ->
            Bdrmap.Pipeline.execute_all ~pool w inputs ~vps:w.Gen.vps)
      in
      let lines rs = List.concat_map run_lines rs in
      if lines serial <> lines pooled then
        QCheck.Test.fail_report "pooled sweep output diverged from serial";
      true)

let suite =
  [ Qc.to_alcotest prop_world_invariants;
    Qc.to_alcotest prop_pool_identity ]
