(* Property-based tests over the core inference data structures. *)

open Netcore
module Ag = Aliasres.Alias_graph

let addr_of_int i = Ipv4.of_int (0x51000000 + (i land 0xFFFF))

(* Random op sequences over a small address universe. *)
type op = Alias of int * int | Not_alias of int * int

let op_gen =
  QCheck.Gen.(
    map3
      (fun kind a b -> if kind then Alias (a, b) else Not_alias (a, b))
      bool (int_bound 15) (int_bound 15))

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Alias (a, b) -> Printf.sprintf "A%d-%d" a b
             | Not_alias (a, b) -> Printf.sprintf "N%d-%d" a b)
           ops))
    QCheck.Gen.(list_size (int_range 1 60) op_gen)

let apply ops =
  let g = Ag.create () in
  List.iter
    (function
      | Alias (a, b) -> Ag.add_alias g (addr_of_int a) (addr_of_int b)
      | Not_alias (a, b) -> Ag.add_not_alias g (addr_of_int a) (addr_of_int b))
    ops;
  g

let prop_vetoes_never_merged =
  (* The documented contract: a veto recorded while the two addresses are
     in different groups keeps them apart forever (vetoes never split
     existing groups retroactively). *)
  QCheck.Test.make ~name:"effective vetoes keep groups apart" ~count:300 arb_ops
    (fun ops ->
      let g = Ag.create () in
      let effective = ref [] in
      List.iter
        (function
          | Alias (a, b) -> Ag.add_alias g (addr_of_int a) (addr_of_int b)
          | Not_alias (a, b) ->
            if not (Ag.same_router g (addr_of_int a) (addr_of_int b)) then
              effective := (a, b) :: !effective;
            Ag.add_not_alias g (addr_of_int a) (addr_of_int b))
        ops;
      List.for_all
        (fun (a, b) -> not (Ag.same_router g (addr_of_int a) (addr_of_int b)))
        !effective)

let prop_groups_partition =
  QCheck.Test.make ~name:"groups form a partition" ~count:300 arb_ops (fun ops ->
      let g = apply ops in
      let groups = Ag.groups g in
      let all = List.concat groups in
      let uniq = List.sort_uniq Ipv4.compare all in
      List.length all = List.length uniq
      && List.for_all
           (fun grp ->
             List.for_all
               (fun a -> List.for_all (fun b -> Ag.same_router g a b) grp)
               grp)
           groups)

let prop_same_router_symmetric =
  QCheck.Test.make ~name:"same_router is symmetric" ~count:300 arb_ops (fun ops ->
      let g = apply ops in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              Ag.same_router g (addr_of_int a) (addr_of_int b)
              = Ag.same_router g (addr_of_int b) (addr_of_int a))
            [ 0; 3; 7; 11 ])
        [ 1; 5; 9; 14 ])

(* As_rel text format round-trips arbitrary relationship graphs. *)
let arb_rel_graph =
  QCheck.make
    ~print:(fun edges -> String.concat ";" (List.map (fun (a, b, k) ->
        Printf.sprintf "%d-%d:%b" a b k) edges))
    QCheck.Gen.(
      list_size (int_range 1 40)
        (map3
           (fun a b k -> (a + 1, a + 2 + b, k))
           (int_bound 50) (int_bound 50) bool))

let prop_as_rel_roundtrip =
  QCheck.Test.make ~name:"as_rel text roundtrip" ~count:200 arb_rel_graph (fun edges ->
      let t =
        List.fold_left
          (fun t (a, b, is_c2p) ->
            if is_c2p then Bgpdata.As_rel.add_c2p t ~provider:a ~customer:b
            else Bgpdata.As_rel.add_p2p t a b)
          Bgpdata.As_rel.empty edges
      in
      match Bgpdata.As_rel.of_lines (Bgpdata.As_rel.to_lines t) with
      | Error _ -> false
      | Ok t' ->
        Asn.Set.for_all
          (fun a ->
            Asn.Set.for_all
              (fun b ->
                Bgpdata.As_rel.rel t ~of_:a ~with_:b
                = Bgpdata.As_rel.rel t' ~of_:a ~with_:b)
              (Bgpdata.As_rel.asns t))
          (Bgpdata.As_rel.asns t))

(* Trace invariants. *)
let arb_hops =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(list_size (int_range 0 12) (int_range 1 30))

let prop_trace_pairs =
  QCheck.Test.make ~name:"trace pairs length and order" ~count:300 arb_hops (fun ttls ->
      let ttls = List.sort_uniq compare ttls in
      let t =
        { Bdrmap.Trace.dst = addr_of_int 999;
          target_asn = 1;
          hops = List.mapi (fun i ttl -> (ttl, addr_of_int i)) ttls;
          closing = Bdrmap.Trace.Nothing;
          stopped = false }
      in
      let pairs = Bdrmap.Trace.pairs t in
      List.length pairs = max 0 (List.length ttls - 1)
      && List.for_all
           (fun (a, b, _) -> not (Ipv4.equal a b))
           (List.filter (fun (a, b, _) -> not (Ipv4.equal a b)) pairs))

(* Rib LPM agrees with a linear scan over its own prefixes. *)
let prop_rib_lpm =
  QCheck.Test.make ~name:"rib lpm agrees with scan" ~count:150
    (QCheck.make
       ~print:(fun l -> string_of_int (List.length l))
       QCheck.Gen.(
         list_size (int_range 1 25)
           (map2
              (fun a len -> (a land 0x00FFFFFF, 8 + (len mod 17)))
              (int_bound 0xFFFFFF) (int_bound 16))))
    (fun specs ->
      let rib =
        List.fold_left
          (fun rib (a, len) ->
            let p = Prefix.make (Ipv4.of_int (0x50000000 lor a)) len in
            Bgpdata.Rib.add_route rib p [ 1; (a mod 97) + 2 ])
          Bgpdata.Rib.empty specs
      in
      let probe = Ipv4.of_int (0x50000000 lor (fst (List.hd specs))) in
      let expected =
        Bgpdata.Rib.prefixes rib
        |> List.filter (fun p -> Prefix.mem probe p)
        |> List.sort (fun a b -> Int.compare (Prefix.len b) (Prefix.len a))
      in
      match (Bgpdata.Rib.lpm rib probe, expected) with
      | None, [] -> true
      | Some (p, _), best :: _ -> Prefix.len p = Prefix.len best
      | _ -> false)

let suite =
  [ Qc.to_alcotest prop_vetoes_never_merged;
    Qc.to_alcotest prop_groups_partition;
    Qc.to_alcotest prop_same_router_symmetric;
    Qc.to_alcotest prop_as_rel_roundtrip;
    Qc.to_alcotest prop_trace_pairs;
    Qc.to_alcotest prop_rib_lpm ]
