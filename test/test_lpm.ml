(* Netcore.Lpm pinned against two references over random prefix sets:
   a naive linear scan (longest matching prefix by direct comparison)
   and Ptrie.lpm (the structure it replaces on the frozen fast path). *)

open Netcore

(* Random prefixes concentrated in a narrow address region so that
   lookups actually hit: nested and sibling prefixes across the /16
   slot boundary, including len < 16, = 16, > 16 and duplicates. *)
let prefix_gen =
  QCheck.Gen.(
    map2
      (fun addr len -> Prefix.make (Ipv4.of_int (0x0A000000 lor addr)) len)
      (int_bound 0x003F_FFFF) (int_range 4 32))

let arb_prefixes =
  QCheck.make
    ~print:(fun ps -> String.concat "," (List.map Prefix.to_string ps))
    QCheck.Gen.(list_size (int_range 0 80) prefix_gen)

let bindings_of ps = List.mapi (fun i p -> (p, i)) ps

(* Reference: longest match by linear scan; ties on length are
   impossible among distinct prefixes containing the same address. *)
let naive_lpm bindings addr =
  List.fold_left
    (fun acc (p, v) ->
      if Prefix.mem addr p then
        match acc with
        | Some (q, _) when Prefix.len q >= Prefix.len p -> acc
        | _ -> Some (p, v)
      else acc)
    None bindings

let probe_addrs ps =
  (* Probe each prefix's first/last address plus just-outside points,
     so both hits and misses are exercised. *)
  List.concat_map
    (fun p ->
      [ Prefix.first p; Prefix.last p;
        Ipv4.of_int (Ipv4.to_int (Prefix.first p) - 1);
        Ipv4.of_int (Ipv4.to_int (Prefix.last p) + 1) ])
    ps

(* Duplicate keys: Lpm.build keeps the later binding, like Ptrie.add. *)
let dedup_last bindings =
  List.fold_left (fun t (p, v) -> Ptrie.add p v t) Ptrie.empty bindings
  |> Ptrie.bindings

let prop_vs_naive =
  QCheck.Test.make ~name:"Lpm.lookup = naive longest-match scan" ~count:300
    arb_prefixes (fun ps ->
      let bindings = bindings_of ps in
      let t = Lpm.build bindings in
      let reference = dedup_last bindings in
      List.for_all
        (fun a -> Lpm.lookup t a = naive_lpm reference a)
        (probe_addrs ps))

let prop_vs_ptrie =
  QCheck.Test.make ~name:"Lpm.lookup = Ptrie.lpm" ~count:300 arb_prefixes (fun ps ->
      let bindings = bindings_of ps in
      let t = Lpm.build bindings in
      let trie = List.fold_left (fun t (p, v) -> Ptrie.add p v t) Ptrie.empty bindings in
      List.for_all (fun a -> Lpm.lookup t a = Ptrie.lpm a trie) (probe_addrs ps))

let prop_find_exact =
  QCheck.Test.make ~name:"Lpm.find_exact = Ptrie.find_exact" ~count:300 arb_prefixes
    (fun ps ->
      let bindings = bindings_of ps in
      let t = Lpm.build bindings in
      let trie = List.fold_left (fun t (p, v) -> Ptrie.add p v t) Ptrie.empty bindings in
      List.for_all (fun p -> Lpm.find_exact t p = Ptrie.find_exact p trie) ps
      (* and a prefix that was never inserted misses *)
      && Lpm.find_exact t (Prefix.of_string_exn "203.0.113.0/24") = None)

let test_empty () =
  let t = Lpm.build [] in
  Alcotest.(check int) "length" 0 (Lpm.length t);
  Alcotest.(check bool) "lookup misses" true (Lpm.lookup t (Ipv4.of_string_exn "10.0.0.1") = None)

let test_slot_boundaries () =
  (* A /8 spanning many slots, a /16 filling exactly one, a /24 bucket
     entry, and a /32 — the longest containing prefix must win at every
     level. *)
  let p8 = Prefix.of_string_exn "10.0.0.0/8" in
  let p16 = Prefix.of_string_exn "10.1.0.0/16" in
  let p24 = Prefix.of_string_exn "10.1.2.0/24" in
  let p32 = Prefix.of_string_exn "10.1.2.3/32" in
  let t = Lpm.build [ (p8, 8); (p16, 16); (p24, 24); (p32, 32) ] in
  let look s = Option.map fst (Lpm.lookup t (Ipv4.of_string_exn s)) in
  Alcotest.(check bool) "/32 wins" true (look "10.1.2.3" = Some p32);
  Alcotest.(check bool) "/24 wins" true (look "10.1.2.4" = Some p24);
  Alcotest.(check bool) "/16 wins" true (look "10.1.3.1" = Some p16);
  Alcotest.(check bool) "/8 wins" true (look "10.2.0.1" = Some p8);
  Alcotest.(check bool) "miss outside" true (look "11.0.0.1" = None);
  Alcotest.(check int) "length" 4 (Lpm.length t);
  Alcotest.(check int) "fold visits all" 4 (Lpm.fold (fun _ _ n -> n + 1) t 0)

let prop_lookup_idx =
  QCheck.Test.make ~name:"Lpm.lookup_idx resolves to Lpm.lookup" ~count:300
    arb_prefixes (fun ps ->
      let bindings = bindings_of ps in
      let t = Lpm.build bindings in
      List.for_all
        (fun a ->
          let i = Lpm.lookup_idx t a in
          if i < 0 then Lpm.lookup t a = None
          else Lpm.lookup t a = Some (Lpm.prefix_at t i, Lpm.value_at t i))
        (probe_addrs ps))

let test_lookup_idx_zero_alloc () =
  (* The CSR query path must not allocate: 100k lookup_idx calls over a
     table with both short-slot and bucket hits, misses included. The
     bound is a handful of words rather than exactly zero because
     [Gc.minor_words] itself returns a boxed float (2-3 words per
     call), and that noise must not hide a per-lookup allocation — one
     word per lookup would blow the bound by orders of magnitude. *)
  let t =
    Lpm.build
      (List.mapi
         (fun i s -> (Prefix.of_string_exn s, i))
         [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24"; "10.1.2.3/32";
           "10.1.2.128/25"; "192.0.2.0/24" ])
  in
  let addrs =
    Array.map Ipv4.of_string_exn
      [| "10.1.2.3"; "10.1.2.200"; "10.1.9.9"; "10.200.0.1"; "192.0.2.77";
         "11.0.0.1" |]
  in
  let n = Array.length addrs in
  let acc = ref 0 in
  let run rounds =
    for k = 0 to rounds - 1 do
      acc := !acc + Lpm.lookup_idx t (Array.unsafe_get addrs (k mod n))
    done
  in
  run 1000 (* warm up: fault in any lazy runtime state before measuring *);
  let before = Gc.minor_words () in
  run 100_000;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "100k lookups allocated %.0f minor words" delta)
    true (delta < 256.0);
  Alcotest.(check bool) "lookups actually ran" true (!acc <> 0)

(* patch must be indistinguishable from a rebuild over the edited
   binding set: same bindings in the same order, same answer for every
   probe — the contract the incremental snapshot re-freeze leans on. *)
let prop_patch_vs_rebuild =
  QCheck.Test.make ~name:"Lpm.patch = Lpm.build over edited bindings"
    ~count:200
    (QCheck.pair arb_prefixes arb_prefixes)
    (fun (base, adds) ->
      let t = Lpm.build (bindings_of base) in
      let remove = List.filteri (fun i _ -> i mod 3 = 0) base in
      let add = List.mapi (fun i p -> (p, 1000 + i)) adds in
      let remap v = (v * 7) + 1 in
      let patched = Lpm.patch t ~remove ~add ~remap in
      let survivors =
        List.rev
          (Lpm.fold
             (fun p v acc ->
               if List.mem p remove then acc else (p, remap v) :: acc)
             t [])
      in
      let reference = Lpm.build (survivors @ add) in
      let bindings u = List.rev (Lpm.fold (fun p v acc -> (p, v) :: acc) u []) in
      if bindings patched <> bindings reference then
        QCheck.Test.fail_report "patched bindings differ from rebuild";
      List.for_all
        (fun a -> Lpm.lookup patched a = Lpm.lookup reference a)
        (probe_addrs (base @ adds)))

let suite =
  [ Alcotest.test_case "empty table" `Quick test_empty;
    Alcotest.test_case "slot boundary cases" `Quick test_slot_boundaries;
    Alcotest.test_case "lookup_idx allocates nothing" `Quick
      test_lookup_idx_zero_alloc;
    Qc.to_alcotest prop_vs_naive;
    Qc.to_alcotest prop_vs_ptrie;
    Qc.to_alcotest prop_find_exact;
    Qc.to_alcotest prop_lookup_idx;
    Qc.to_alcotest prop_patch_vs_rebuild ]
