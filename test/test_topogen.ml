open Netcore
module Net = Topogen.Net
module Gen = Topogen.Gen

let world = lazy (Gen.generate Topogen.Scenario.tiny)

let test_deterministic () =
  let w1 = Gen.generate Topogen.Scenario.tiny in
  let w2 = Gen.generate Topogen.Scenario.tiny in
  Alcotest.(check int) "router count" (Net.router_count w1.net) (Net.router_count w2.net);
  Alcotest.(check int) "link count" (Net.link_count w1.net) (Net.link_count w2.net);
  let addrs w =
    List.concat_map
      (fun (l : Net.link) -> [ Ipv4.to_string (snd l.Net.a); Ipv4.to_string (snd l.Net.b) ])
      (Net.links w.Gen.net)
  in
  Alcotest.(check (list string)) "addresses identical" (addrs w1) (addrs w2)

let test_seed_changes_world () =
  let w1 = Gen.generate Topogen.Scenario.tiny in
  let w2 = Gen.generate { Topogen.Scenario.tiny with Gen.seed = 8 } in
  Alcotest.(check bool) "different seed differs" true
    (Net.router_count w1.net <> Net.router_count w2.net
    || Net.link_count w1.net <> Net.link_count w2.net
    ||
    let a w = List.map (fun (l : Net.link) -> snd l.Net.a) (Net.links w.Gen.net) in
    a w1 <> a w2)

let test_unique_addresses () =
  let w = Lazy.force world in
  (* An address may appear on several links only when it is an IXP LAN
     interface reused for multiple peerings, always on the same router. *)
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (l : Net.link) ->
      List.iter
        (fun (rid, addr) ->
          Hashtbl.replace tbl addr
            ((rid, l.Net.kind)
            :: Option.value ~default:[] (Hashtbl.find_opt tbl addr)))
        [ l.Net.a; l.Net.b ])
    (Net.links w.net);
  Hashtbl.iter
    (fun addr uses ->
      match uses with
      | [ _ ] -> ()
      | (rid0, _) :: _ ->
        List.iter
          (fun (rid, kind) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s reuse is same-router ixp lan" (Ipv4.to_string addr))
              true
              (rid = rid0
              &&
              match kind with
              | Net.Ixp_lan _ -> true
              | _ -> false))
          uses
      | [] -> ())
    tbl

let test_interdomain_links_match_rels () =
  let w = Lazy.force world in
  List.iter
    (fun (l : Net.link) ->
      let oa = (Net.router w.net (fst l.Net.a)).Net.owner in
      let ob = (Net.router w.net (fst l.Net.b)).Net.owner in
      Alcotest.(check bool)
        (Printf.sprintf "link %d AS%d-AS%d has a relationship" l.Net.lid oa ob)
        true
        (Bgpdata.As_rel.known w.rels_truth oa ob))
    (Net.interdomain_links w.net)

let test_internal_links_single_as () =
  let w = Lazy.force world in
  List.iter
    (fun (l : Net.link) ->
      if l.Net.kind = Net.Internal then
        let oa = (Net.router w.net (fst l.Net.a)).Net.owner in
        let ob = (Net.router w.net (fst l.Net.b)).Net.owner in
        Alcotest.(check int) (Printf.sprintf "internal link %d" l.Net.lid) oa ob)
    (Net.links w.net)

let test_interconnect_subnets () =
  let w = Lazy.force world in
  List.iter
    (fun (l : Net.link) ->
      match l.Net.kind with
      | Net.Private_interconnect subnet ->
        Alcotest.(check bool) "len 30 or 31" true
          (Prefix.len subnet = 30 || Prefix.len subnet = 31);
        Alcotest.(check bool) "a inside subnet" true (Prefix.mem (snd l.Net.a) subnet);
        Alcotest.(check bool) "b inside subnet" true (Prefix.mem (snd l.Net.b) subnet)
      | _ -> ())
    (Net.links w.net)

let test_customers_have_host_links () =
  let w = Lazy.force world in
  let truth = Gen.host_neighbor_truth w in
  Asn.Map.iter
    (fun asn kind ->
      if kind = `Customer && asn >= 40001 && asn < 50000 then
        Alcotest.(check bool)
          (Printf.sprintf "customer AS%d linked to host" asn)
          true
          (Net.interdomain_links_between w.net w.host_asn asn <> []))
    truth

let test_delegations_cover_interfaces () =
  let w = Lazy.force world in
  List.iter
    (fun (l : Net.link) ->
      match l.Net.kind with
      | Net.Ixp_lan _ -> ()
      | _ ->
        List.iter
          (fun addr ->
            Alcotest.(check bool)
              (Printf.sprintf "delegation covers %s" (Ipv4.to_string addr))
              true
              (Bgpdata.Delegation.find w.delegations addr <> None))
          [ snd l.Net.a; snd l.Net.b ])
    (Net.links w.net)

let test_ixp_lan_addresses_registered () =
  let w = Lazy.force world in
  List.iter
    (fun (l : Net.link) ->
      match l.Net.kind with
      | Net.Ixp_lan name ->
        List.iter
          (fun addr ->
            Alcotest.(check (option string))
              (Printf.sprintf "%s on ixp lan" (Ipv4.to_string addr))
              (Some name)
              (Bgpdata.Ixp.ixp_of w.ixp_registry addr))
          [ snd l.Net.a; snd l.Net.b ]
      | _ -> ())
    (Net.links w.net)

let test_vps_in_host () =
  let w = Lazy.force world in
  Alcotest.(check int) "vp count" 3 (List.length w.vps);
  List.iter
    (fun (vp : Gen.vp) ->
      Alcotest.(check int) (vp.vp_name ^ " owned by host") w.host_asn
        (Net.router w.net vp.vp_rid).Net.owner)
    w.vps

let test_neighbor_truth_counts () =
  let w = Lazy.force world in
  let truth = Gen.host_neighbor_truth w in
  let count k = Asn.Map.fold (fun _ v n -> if v = k then n + 1 else n) truth 0 in
  Alcotest.(check int) "customers" 12 (count `Customer);
  Alcotest.(check int) "providers" 2 (count `Provider);
  Alcotest.(check bool) "peers present" true (count `Peer >= 5);
  Alcotest.(check bool) "siblings excluded" true
    (Asn.Set.for_all (fun s -> not (Asn.Map.mem s truth)) w.siblings)

let test_homes_resolve () =
  let w = Lazy.force world in
  List.iter
    (fun (p, origins) ->
      match Net.home_of w.net (Prefix.first p) with
      | None -> Alcotest.failf "prefix %s has no home" (Prefix.to_string p)
      | Some home ->
        let owner_org r =
          Bgpdata.As2org.org_of w.as2org r
        in
        let origin = Asn.Set.min_elt origins in
        Alcotest.(check bool)
          (Printf.sprintf "home of %s owned by origin or sibling" (Prefix.to_string p))
          true
          (Asn.Set.mem home.Net.owner origins
          || owner_org home.Net.owner = owner_org origin))
    (Gen.originated w)

let test_big_peer_link_count () =
  let w = Lazy.force world in
  let links = Net.interdomain_links_between w.net w.host_asn w.big_peer in
  Alcotest.(check int) "big peer interconnects" 4 (List.length links)

let test_addressing_pools () =
  let alloc = Topogen.Addressing.create () in
  let b1 = Topogen.Addressing.alloc_block alloc 16 in
  let b2 = Topogen.Addressing.alloc_block alloc 20 in
  Alcotest.(check bool) "blocks disjoint" true
    (not (Prefix.subsumes ~p:b1 ~q:b2) && not (Prefix.subsumes ~p:b2 ~q:b1));
  let pool = Topogen.Addressing.pool_of b2 in
  let s1 = Topogen.Addressing.alloc_subnet pool 30 in
  let s2 = Topogen.Addressing.alloc_subnet pool 31 in
  Alcotest.(check bool) "subnets inside pool" true
    (Prefix.subsumes ~p:b2 ~q:s1 && Prefix.subsumes ~p:b2 ~q:s2);
  Alcotest.(check bool) "subnets disjoint" true (not (Prefix.equal s1 s2));
  let a, b = Topogen.Addressing.p2p_addrs s1 in
  Alcotest.(check bool) "/30 usable addrs" true
    (Ipv4.diff b a = 1 && Prefix.mem a s1 && Prefix.mem b s1)

let test_geo () =
  let sj = Option.get (Topogen.Geo.city_named "San Jose") in
  let ny = Option.get (Topogen.Geo.city_named "New York") in
  let d = Topogen.Geo.distance_km sj ny in
  Alcotest.(check bool) "SJ-NY ~4100km" true (d > 3900.0 && d < 4300.0);
  Alcotest.(check bool) "distance symmetric" true
    (abs_float (d -. Topogen.Geo.distance_km ny sj) < 1e-6);
  Alcotest.(check (float 0.001)) "self distance" 0.0 (Topogen.Geo.distance_km sj sj)

let suite =
  [ Alcotest.test_case "deterministic generation" `Quick test_deterministic;
    Alcotest.test_case "seed changes world" `Quick test_seed_changes_world;
    Alcotest.test_case "unique interface addresses" `Quick test_unique_addresses;
    Alcotest.test_case "interdomain links match relationships" `Quick
      test_interdomain_links_match_rels;
    Alcotest.test_case "internal links stay in one AS" `Quick test_internal_links_single_as;
    Alcotest.test_case "interconnect subnets" `Quick test_interconnect_subnets;
    Alcotest.test_case "customers linked to host" `Quick test_customers_have_host_links;
    Alcotest.test_case "delegations cover interfaces" `Quick test_delegations_cover_interfaces;
    Alcotest.test_case "ixp lan addresses registered" `Quick test_ixp_lan_addresses_registered;
    Alcotest.test_case "vps in host AS" `Quick test_vps_in_host;
    Alcotest.test_case "neighbor truth counts" `Quick test_neighbor_truth_counts;
    Alcotest.test_case "homes resolve" `Quick test_homes_resolve;
    Alcotest.test_case "big peer link count" `Quick test_big_peer_link_count;
    Alcotest.test_case "addressing pools" `Quick test_addressing_pools;
    Alcotest.test_case "geography" `Quick test_geo ]
